package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/sim"
)

// DefaultFlightCapacity is the ring size NewFlightRecorder uses when
// given a non-positive capacity: enough to hold the events leading up
// to a fault trip without ever growing.
const DefaultFlightCapacity = 4096

// FlightEvent is one entry in the flight recorder: a span boundary, a
// device health transition, a retry, or a fault decision.
type FlightEvent struct {
	// Seq is the event's global sequence number (1-based, never
	// reused); gaps in a snapshot mean the ring wrapped.
	Seq uint64 `json:"seq"`
	// WallS is the wall-clock offset from the recorder's epoch, in
	// seconds.
	WallS float64 `json:"wall_s"`
	// VirtualS is the virtual time of the event in seconds, when the
	// writer had one (token holders do; device workers do not).
	VirtualS float64 `json:"virtual_s,omitempty"`
	// Kind classifies the event: "span-open", "span-close",
	// "health", "timeout", "retry", "fault", ...
	Kind string `json:"kind"`
	// Name identifies the subject: a span name, a device name, a
	// fault target.
	Name string `json:"name"`
	// Detail is free-form context: a health state, an error, a proc.
	Detail string `json:"detail,omitempty"`
}

// FlightRecorder is an always-on ring buffer of recent FlightEvents —
// the run's black box. It is written from both token-holding
// simulation processes and device worker goroutines, so writes take a
// mutex; each write is a few fixed-size stores under the lock, cheap
// enough to leave on for every run. Snapshot copies the ring at any
// instant without stopping writers. A nil *FlightRecorder records
// nothing.
type FlightRecorder struct {
	mu    sync.Mutex
	epoch time.Time
	buf   []FlightEvent
	next  uint64 // total events ever recorded; buf[(next-1)%cap] is newest
}

// NewFlightRecorder returns a recorder holding the most recent
// capacity events (DefaultFlightCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{epoch: time.Now(), buf: make([]FlightEvent, 0, capacity)}
}

// Record appends an event stamped with wall time only — the form for
// device workers, which run off-token and have no virtual clock.
// Nil-safe and safe for concurrent use.
func (f *FlightRecorder) Record(kind, name, detail string) {
	f.record(FlightEvent{Kind: kind, Name: name, Detail: detail})
}

// RecordV appends an event carrying both clocks — the form for
// token-holding code, which knows the virtual time v. Nil-safe and
// safe for concurrent use.
func (f *FlightRecorder) RecordV(v sim.Time, kind, name, detail string) {
	f.record(FlightEvent{VirtualS: time.Duration(v).Seconds(), Kind: kind, Name: name, Detail: detail})
}

func (f *FlightRecorder) record(ev FlightEvent) {
	if f == nil {
		return
	}
	wall := time.Since(f.epoch)
	f.mu.Lock()
	f.next++
	ev.Seq = f.next
	ev.WallS = wall.Seconds()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[(f.next-1)%uint64(cap(f.buf))] = ev
	}
	f.mu.Unlock()
}

// Snapshot returns the buffered events oldest-first, without stopping
// writers. Nil-safe.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.buf))
	if len(f.buf) < cap(f.buf) {
		out = append(out, f.buf...)
		return out
	}
	start := f.next % uint64(cap(f.buf)) // oldest slot
	out = append(out, f.buf[start:]...)
	out = append(out, f.buf[:start]...)
	return out
}

// Total returns how many events were ever recorded, including those
// the ring has overwritten. Total - len(Snapshot()) is the drop count.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// WriteFlightJSONL writes a snapshot as JSON Lines, one event per
// line, oldest-first.
func WriteFlightJSONL(w io.Writer, events []FlightEvent) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
