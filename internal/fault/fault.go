// Package fault provides deterministic, seeded fault schedules for the
// simulated tape and disk devices. A Schedule decides, per device
// operation, whether the operation stalls, returns corrupted data,
// fails transiently (recovering after a bounded number of retries),
// fails with a hard media error, or finds its device permanently dead.
//
// Schedules are ordered and deterministic: rules are evaluated in
// insertion order, never via map iteration, so the same schedule
// produces the same decisions for the same operation sequence — the
// foundation of the repo's same-seed reproducibility guarantee.
package fault

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// Sentinel errors classifying injected faults. Device layers wrap
// these; recovery layers match them with errors.Is.
var (
	// ErrTransient marks a fault that a retry may clear (e.g. a tape
	// read error that succeeds after repositioning).
	ErrTransient = errors.New("transient device error")
	// ErrMedia marks a hard, unrecoverable media error: the data at
	// that address is gone and retries cannot help.
	ErrMedia = errors.New("unrecoverable media error")
	// ErrDeviceLost marks a permanently failed disk: every extent on
	// it is lost and the device serves no further requests.
	ErrDeviceLost = errors.New("device lost")
	// ErrDriveLost marks a permanently failed tape drive: the
	// transport is dead, though the cartridge itself survives and can
	// be mounted elsewhere.
	ErrDriveLost = errors.New("tape drive lost")
)

// IsTransient reports whether err stems from a retryable fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Op describes one device operation about to execute, as seen by an
// Injector.
type Op struct {
	// Device names the device: "tape:R", "tape:S", "disk" (array-wide
	// transfer), or "disk0", "disk1", ... (per-drive placement check).
	Device string
	// Write is true for writes/appends, false for reads.
	Write bool
	// Addr and N give the block range [Addr, Addr+N) the operation
	// covers, in the device's address space.
	Addr, N int64
	// Now is the current virtual time.
	Now sim.Time
}

// Decision is an Injector's verdict on one operation. Zero value means
// "proceed normally".
type Decision struct {
	// Err, if non-nil, fails the operation (wrapping ErrTransient,
	// ErrMedia, ErrDeviceLost or ErrDriveLost as appropriate).
	Err error
	// Corrupt asks the device to flip bits in the *delivered* copy of
	// the data. The stored data stays intact, so a re-read recovers —
	// this models transient ECC misses, unlike Media.Corrupt which
	// damages the medium itself.
	Corrupt bool
	// Stall adds a device hiccup of the given virtual duration before
	// the operation proceeds (charged while the device is held).
	Stall sim.Duration
}

// Injector decides the fate of device operations. Implementations must
// be deterministic functions of the operation sequence.
type Injector interface {
	Decide(op Op) Decision
}

// Decide consults inj, tolerating a nil injector.
func Decide(inj Injector, op Op) Decision {
	if inj == nil {
		return Decision{}
	}
	return inj.Decide(op)
}

// ruleKind enumerates the fault taxonomy.
type ruleKind int

const (
	kindTransient ruleKind = iota
	kindHard
	kindCorrupt
	kindStall
	kindDeviceLost
	kindDriveLost

	// OS-level kinds fire at the syscall layer of the file backend —
	// consulted through DecideOS, never through Decide — so one spec
	// string can drive both the simulated devices and real files.
	kindOSErr
	kindTornWrite
	kindWallStall
	kindFlipStored
)

// rule is one entry of a Schedule. Rules fire in insertion order; the
// first matching active rule decides the operation (and spends one of
// its remaining count, if bounded).
type rule struct {
	kind   ruleKind
	device string   // "" matches any device
	addr   int64    // start of matched address window
	n      int64    // window length; 0 with at==0 means any address
	at     sim.Time // rule activates at this virtual time
	count  int      // remaining firings; < 0 means unbounded
	stall  sim.Duration
	wall   time.Duration // wall-clock stall for kindWallStall
	err    error         // cause attached to transient/hard decisions
}

// osLevel reports whether the rule fires at the OS (file) layer rather
// than the device model layer.
func (r *rule) osLevel() bool {
	switch r.kind {
	case kindOSErr, kindTornWrite, kindWallStall, kindFlipStored:
		return true
	}
	return false
}

// matches reports whether the rule applies to op.
func (r *rule) matches(op Op) bool {
	if r.count == 0 {
		return false
	}
	if r.device != "" && r.device != op.Device {
		return false
	}
	if op.Now < r.at {
		return false
	}
	// Loss rules apply to every operation once active; the others only
	// to reads covering the address window.
	if r.kind == kindDeviceLost || r.kind == kindDriveLost {
		return true
	}
	if op.Write {
		return false
	}
	if r.n > 0 && (r.addr >= op.Addr+op.N || r.addr+r.n <= op.Addr) {
		return false
	}
	return true
}

// Schedule is a deterministic ordered fault schedule implementing
// Injector. The zero value injects nothing; builder methods append
// rules.
type Schedule struct {
	rules []*rule
}

// Decide implements Injector.
func (s *Schedule) Decide(op Op) Decision {
	if s == nil {
		return Decision{}
	}
	for _, r := range s.rules {
		if r.osLevel() || !r.matches(op) {
			continue
		}
		if r.count > 0 {
			r.count--
		}
		switch r.kind {
		case kindTransient:
			return Decision{Err: fmt.Errorf("%w: %s", ErrTransient, r.err)}
		case kindHard:
			return Decision{Err: fmt.Errorf("%w: %s", ErrMedia, r.err)}
		case kindCorrupt:
			return Decision{Corrupt: true}
		case kindStall:
			return Decision{Stall: r.stall}
		case kindDeviceLost:
			return Decision{Err: ErrDeviceLost}
		case kindDriveLost:
			return Decision{Err: ErrDriveLost}
		}
	}
	return Decision{}
}

// Empty reports whether the schedule has no rules.
func (s *Schedule) Empty() bool { return s == nil || len(s.rules) == 0 }

// Len returns the number of rules.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.rules)
}

// AddTransient makes the next count reads covering [addr, addr+1) on
// device fail with a retryable error; the count+1'th succeeds —
// modelling a tape error that clears after repositioning.
func (s *Schedule) AddTransient(device string, addr int64, count int) *Schedule {
	if count <= 0 {
		count = 1
	}
	s.rules = append(s.rules, &rule{
		kind: kindTransient, device: device, addr: addr, n: 1, count: count,
		err: fmt.Errorf("injected transient read error at block %d", addr),
	})
	return s
}

// AddHard makes every read covering [addr, addr+1) on device fail with
// an unrecoverable media error.
func (s *Schedule) AddHard(device string, addr int64) *Schedule {
	s.rules = append(s.rules, &rule{
		kind: kindHard, device: device, addr: addr, n: 1, count: -1,
		err: fmt.Errorf("injected hard media error at block %d", addr),
	})
	return s
}

// AddCorrupt makes the next count reads covering [addr, addr+1) on
// device deliver bit-flipped data. The stored blocks stay intact, so
// retries recover once the count is spent.
func (s *Schedule) AddCorrupt(device string, addr int64, count int) *Schedule {
	if count <= 0 {
		count = 1
	}
	s.rules = append(s.rules, &rule{
		kind: kindCorrupt, device: device, addr: addr, n: 1, count: count,
	})
	return s
}

// AddStall makes the next count reads on device (any address) stall
// for d before proceeding.
func (s *Schedule) AddStall(device string, d sim.Duration, count int) *Schedule {
	if count <= 0 {
		count = 1
	}
	s.rules = append(s.rules, &rule{kind: kindStall, device: device, count: count, stall: d})
	return s
}

// AddDiskFail kills disk number disk at virtual time at: every
// operation touching it from then on fails with ErrDeviceLost.
func (s *Schedule) AddDiskFail(disk int, at sim.Time) *Schedule {
	s.rules = append(s.rules, &rule{
		kind: kindDeviceLost, device: fmt.Sprintf("disk%d", disk), at: at, count: -1,
	})
	return s
}

// AddDriveFail kills the named tape drive at virtual time at.
func (s *Schedule) AddDriveFail(device string, at sim.Time) *Schedule {
	s.rules = append(s.rules, &rule{
		kind: kindDriveLost, device: device, at: at, count: -1,
	})
	return s
}
