package query

import (
	"testing"
	"testing/quick"
)

func demoSchema() Schema {
	return Schema{
		{Name: "id", Type: Int64},
		{Name: "amount", Type: Float64},
		{Name: "region", Type: String},
		{Name: "qty", Type: Int64},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := demoSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Schema{
		{},
		{{Name: "id", Type: Float64}}, // key not int64
		{{Name: "id", Type: Int64}, {Name: "", Type: Int64}},    // unnamed
		{{Name: "id", Type: Int64}, {Name: "id", Type: Int64}},  // duplicate
		{{Name: "id", Type: Int64}, {Name: "x", Type: Type(9)}}, // bad type
	}
	for i, s := range cases {
		if s.Validate() == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := demoSchema()
	if s.ColumnIndex("region") != 2 || s.ColumnIndex("nope") != -1 {
		t.Fatalf("ColumnIndex wrong: %d %d", s.ColumnIndex("region"), s.ColumnIndex("nope"))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := demoSchema()
	row := Row{int64(42), 3.25, "emea", int64(-7)}
	key, payload, err := s.Encode(row)
	if err != nil {
		t.Fatal(err)
	}
	if key != 42 {
		t.Fatalf("key = %d", key)
	}
	got, err := s.Decode(key, payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if got[i] != row[i] {
			t.Fatalf("column %d: %v != %v", i, got[i], row[i])
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	s := demoSchema()
	if _, _, err := s.Encode(Row{int64(1), 2.0}); err == nil {
		t.Error("short row should fail")
	}
	if _, _, err := s.Encode(Row{"str", 2.0, "x", int64(1)}); err == nil {
		t.Error("non-int64 key should fail")
	}
	if _, _, err := s.Encode(Row{int64(1), int64(2), "x", int64(1)}); err == nil {
		t.Error("type mismatch should fail")
	}
	if _, _, err := s.Encode(Row{int64(1), 2.0, "x", uint32(1)}); err == nil {
		t.Error("unsupported type should fail")
	}
}

func TestDecodeErrors(t *testing.T) {
	s := demoSchema()
	_, payload, _ := s.Encode(Row{int64(1), 2.0, "abc", int64(3)})
	if _, err := s.Decode(1, payload[:len(payload)-1]); err == nil {
		t.Error("truncated payload should fail")
	}
	if _, err := s.Decode(1, append(payload, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
	bad := append([]byte(nil), payload...)
	bad[0] = byte(String) // wrong tag for float column
	if _, err := s.Decode(1, bad); err == nil {
		t.Error("tag mismatch should fail")
	}
}

func TestQuickRowRoundTrip(t *testing.T) {
	s := Schema{
		{Name: "k", Type: Int64},
		{Name: "a", Type: Int64},
		{Name: "b", Type: Float64},
		{Name: "c", Type: String},
	}
	f := func(k, a int64, b float64, c string) bool {
		if len(c) > 4096 {
			c = c[:4096]
		}
		row := Row{k, a, b, c}
		key, payload, err := s.Encode(row)
		if err != nil {
			return false
		}
		got, err := s.Decode(key, payload)
		if err != nil || len(got) != 4 {
			return false
		}
		return got[0] == k && got[1] == a && got[2] == b && got[3] == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
