// Package query puts the tertiary join methods in their DBMS context:
// typed tables on tape, predicates and projections, and an executor
// that picks a join method with the paper's cost model. The paper's
// introduction motivates exactly this — making "database applications
// similar to data mining possible without mainframe-size machinery";
// this package is the thin relational layer a user of the library
// would write queries against.
//
// Predicates and projections are evaluated on the join output stream
// (the paper's joins are full-scan, index-less operators; Section 3.2
// treats downstream operators as pipelined consumers).
package query

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Type is a column type.
type Type int

// Column types.
const (
	Int64 Type = iota
	Float64
	String
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Column is a named, typed column.
type Column struct {
	Name string
	Type Type
}

// Schema describes a table's columns. Column 0 is always the join key
// and must be Int64 — the equi-join attribute the paper's methods hash
// and compare.
type Schema []Column

// Validate reports schema errors.
func (s Schema) Validate() error {
	if len(s) == 0 {
		return errors.New("query: empty schema")
	}
	if s[0].Type != Int64 {
		return fmt.Errorf("query: join key column %q must be int64", s[0].Name)
	}
	seen := map[string]bool{}
	for _, c := range s {
		if c.Name == "" {
			return errors.New("query: unnamed column")
		}
		if seen[c.Name] {
			return fmt.Errorf("query: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		switch c.Type {
		case Int64, Float64, String:
		default:
			return fmt.Errorf("query: column %q has unknown type %d", c.Name, int(c.Type))
		}
	}
	return nil
}

// ColumnIndex returns the index of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Value is a column value: int64, float64 or string.
type Value any

// Row is one tuple's typed values, aligned with the schema.
type Row []Value

// typeOf checks a value against a column type.
func typeOf(v Value) (Type, error) {
	switch v.(type) {
	case int64:
		return Int64, nil
	case float64:
		return Float64, nil
	case string:
		return String, nil
	}
	return 0, fmt.Errorf("query: unsupported value %T", v)
}

// Encode packs a row's non-key columns into a tuple payload and
// returns the join key (column 0). Layout per column: type tag byte,
// then the fixed 8-byte value or a uvarint-length-prefixed string.
func (s Schema) Encode(row Row) (key uint64, payload []byte, err error) {
	if len(row) != len(s) {
		return 0, nil, fmt.Errorf("query: row has %d values for %d columns", len(row), len(s))
	}
	k, ok := row[0].(int64)
	if !ok {
		return 0, nil, fmt.Errorf("query: join key is %T, want int64", row[0])
	}
	for i := 1; i < len(s); i++ {
		vt, err := typeOf(row[i])
		if err != nil {
			return 0, nil, err
		}
		if vt != s[i].Type {
			return 0, nil, fmt.Errorf("query: column %q: value is %v, want %v", s[i].Name, vt, s[i].Type)
		}
		payload = append(payload, byte(vt))
		switch v := row[i].(type) {
		case int64:
			payload = binary.LittleEndian.AppendUint64(payload, uint64(v))
		case float64:
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(v))
		case string:
			payload = binary.AppendUvarint(payload, uint64(len(v)))
			payload = append(payload, v...)
		}
	}
	return uint64(k), payload, nil
}

// Decode unpacks a tuple (key, payload) back into a typed row.
func (s Schema) Decode(key uint64, payload []byte) (Row, error) {
	row := make(Row, len(s))
	row[0] = int64(key)
	off := 0
	for i := 1; i < len(s); i++ {
		if off >= len(payload) {
			return nil, fmt.Errorf("query: payload truncated at column %q", s[i].Name)
		}
		tag := Type(payload[off])
		off++
		if tag != s[i].Type {
			return nil, fmt.Errorf("query: column %q: stored %v, want %v", s[i].Name, tag, s[i].Type)
		}
		switch tag {
		case Int64:
			if off+8 > len(payload) {
				return nil, fmt.Errorf("query: payload truncated in %q", s[i].Name)
			}
			row[i] = int64(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		case Float64:
			if off+8 > len(payload) {
				return nil, fmt.Errorf("query: payload truncated in %q", s[i].Name)
			}
			row[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		case String:
			n, used := binary.Uvarint(payload[off:])
			if used <= 0 || off+used+int(n) > len(payload) {
				return nil, fmt.Errorf("query: bad string length in %q", s[i].Name)
			}
			off += used
			row[i] = string(payload[off : off+int(n)])
			off += int(n)
		}
	}
	if off != len(payload) {
		return nil, fmt.Errorf("query: %d trailing payload bytes", len(payload)-off)
	}
	return row, nil
}
