package query

import (
	"strings"
	"testing"
)

func TestAggregateGlobalCountAndSum(t *testing.T) {
	customers, orders := buildTables(t)
	res, err := Run(Query{
		R: customers, S: orders,
		Aggregates: []Agg{
			{Fn: Count},
			{Fn: Sum, Arg: Col(SideS, "amount")},
			{Fn: Min, Arg: Col(SideS, "amount")},
			{Fn: Max, Arg: Col(SideS, "amount")},
		},
	}, execRes(10, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("global aggregate should produce one row, got %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0].(int64) != res.JoinMatches {
		t.Fatalf("count = %v, want %d", row[0], res.JoinMatches)
	}
	sum, minV, maxV := row[1].(float64), row[2].(float64), row[3].(float64)
	if minV > maxV || sum < maxV {
		t.Fatalf("sum=%v min=%v max=%v inconsistent", sum, minV, maxV)
	}
	// Cross-check the sum against a row-materializing run.
	full, err := Run(Query{
		R: customers, S: orders,
		Select: []Expr{Col(SideS, "amount")},
		Limit:  1 << 20,
	}, execRes(10, 64))
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	gotMin, gotMax := full.Rows[0][0].(float64), full.Rows[0][0].(float64)
	for _, r := range full.Rows {
		v := r[0].(float64)
		want += v
		if v < gotMin {
			gotMin = v
		}
		if v > gotMax {
			gotMax = v
		}
	}
	if sum != want || minV != gotMin || maxV != gotMax {
		t.Fatalf("agg (%v,%v,%v) != manual (%v,%v,%v)", sum, minV, maxV, want, gotMin, gotMax)
	}
}

func TestAggregateGroupBy(t *testing.T) {
	customers, orders := buildTables(t)
	res, err := Run(Query{
		R: customers, S: orders,
		GroupBy: []Expr{Col(SideS, "region")},
		Aggregates: []Agg{
			{Fn: Count},
			{Fn: Sum, Arg: Col(SideS, "amount")},
		},
	}, execRes(10, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // regions apac and emea
		t.Fatalf("groups = %d, want 2", len(res.Rows))
	}
	var total int64
	regions := map[string]bool{}
	for _, row := range res.Rows {
		regions[row[0].(string)] = true
		total += row[1].(int64)
	}
	if !regions["apac"] || !regions["emea"] {
		t.Fatalf("regions = %v", regions)
	}
	if total != res.JoinMatches {
		t.Fatalf("group counts sum to %d, want %d", total, res.JoinMatches)
	}
	// Deterministic group ordering (sorted by key).
	if res.Rows[0][0].(string) != "apac" {
		t.Fatalf("first group = %v, want apac", res.Rows[0][0])
	}
}

func TestAggregateWithWhere(t *testing.T) {
	customers, orders := buildTables(t)
	res, err := Run(Query{
		R: customers, S: orders,
		Where:      Cmp(Eq, Col(SideR, "tier"), Lit("gold")),
		GroupBy:    []Expr{Col(SideR, "tier")},
		Aggregates: []Agg{{Fn: Count}},
	}, execRes(10, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "gold" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// The R-only predicate is pushed down, so all joined pairs pass.
	if res.Rows[0][1].(int64) != res.Count || res.Count != res.JoinMatches {
		t.Fatalf("count = %d of %d", res.Count, res.JoinMatches)
	}
}

func TestAggregateIntSum(t *testing.T) {
	customers, orders := buildTables(t)
	res, err := Run(Query{
		R: customers, S: orders,
		Aggregates: []Agg{{Fn: Sum, Arg: Col(SideR, "id")}},
	}, execRes(10, 64))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Rows[0][0].(int64); !ok {
		t.Fatalf("int sum should stay int64, got %T", res.Rows[0][0])
	}
}

func TestAggregateStringMinMax(t *testing.T) {
	customers, orders := buildTables(t)
	res, err := Run(Query{
		R: customers, S: orders,
		Aggregates: []Agg{
			{Fn: Min, Arg: Col(SideS, "region")},
			{Fn: Max, Arg: Col(SideS, "region")},
		},
	}, execRes(10, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "apac" || res.Rows[0][1] != "emea" {
		t.Fatalf("min/max = %v", res.Rows[0])
	}
}

func TestAggregateErrors(t *testing.T) {
	customers, orders := buildTables(t)
	cases := []Query{
		{R: customers, S: orders, Aggregates: []Agg{{Fn: Sum}}},                                  // missing arg
		{R: customers, S: orders, Aggregates: []Agg{{Fn: Sum, Arg: Col(SideS, "region")}}},       // sum of string
		{R: customers, S: orders, Aggregates: []Agg{{Fn: Count}}, Select: []Expr{Lit(int64(1))}}, // both
		{R: customers, S: orders, GroupBy: []Expr{Col(SideS, "ghost")}, Aggregates: []Agg{{Fn: Count}}},
	}
	for i, q := range cases {
		if _, err := Run(q, execRes(10, 64)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestAggFnStrings(t *testing.T) {
	got := []string{Count.String(), Sum.String(), Min.String(), Max.String()}
	if strings.Join(got, ",") != "count,sum,min,max" {
		t.Fatalf("names = %v", got)
	}
}
