package join

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/buffer"
	"repro/internal/device"
	"repro/internal/hashutil"
	"repro/internal/obs"
	"repro/internal/sim"
)

// addr converts a block offset to a tape address.
func addr(n int64) device.Addr { return device.Addr(n) }

// bucketSource abstracts where a hash bucket lives: a disk file or a
// tape region. Reads charge the owning device.
type bucketSource interface {
	blocks() int64
	device() string
	read(p *sim.Proc, off, n int64) ([]block.Block, error)
}

type diskBucket struct{ f device.File }

func (d diskBucket) blocks() int64  { return d.f.Len() }
func (d diskBucket) device() string { return "disk:" + d.f.Name() }
func (d diskBucket) read(p *sim.Proc, off, n int64) ([]block.Block, error) {
	return d.f.ReadAt(p, off, n)
}

type tapeBucket struct {
	drive  device.Drive
	region device.Region
	// reverse reads the whole bucket backward (paper footnote 2):
	// used by CTT-GH's joiner on alternate iterations so the head
	// never seeks back across the bucket run. Applies only to a
	// full-bucket read; partial reads fall back to forward.
	reverse bool
}

func (t tapeBucket) blocks() int64  { return t.region.N }
func (t tapeBucket) device() string { return "tape:" + t.drive.Name() }
func (t tapeBucket) read(p *sim.Proc, off, n int64) ([]block.Block, error) {
	if t.reverse && off == 0 && n == t.region.N {
		return t.drive.ReadRegionReverse(p, t.region)
	}
	return t.drive.ReadAt(p, t.region.Start+addr(off), n)
}

// scanBufFor sizes the S-side streaming buffer for the join phase:
// whatever memory remains next to a full R bucket, aiming for the
// plan's input-buffer size. At minimal memory this is a single block,
// making bucket scans random-I/O-like (the Figure 8 small-M uptick).
func scanBufFor(plan hashutil.Plan, m int64) int64 {
	sb := m - plan.BucketBlocks
	if sb > plan.InBuf {
		sb = plan.InBuf
	}
	if sb < 1 {
		sb = 1
	}
	return sb
}

// joinBucketPair loads the R bucket into a memory hash table and
// streams the matching S bucket through it. Oversized R buckets
// (hash-value skew) fall back to multiple memory loads, each paying a
// full scan of the S bucket.
func joinBucketPair(e *env, p *sim.Proc, r, s bucketSource, maxLoad, scanBuf int64) error {
	if maxLoad < 1 {
		return fmt.Errorf("%w: no memory for R bucket", ErrNeedMemory)
	}
	sp := e.span(p, "bucket-pair",
		obs.AInt("r_blocks", r.blocks()), obs.AInt("s_blocks", s.blocks()))
	defer sp.Close(p)
	for roff := int64(0); roff < r.blocks(); roff += maxLoad {
		n := min64(maxLoad, r.blocks()-roff)
		err := func() error {
			e.mem.acquire(n)
			defer e.mem.release(n)
			rBlks, err := e.readSrc(p, r, roff, n)
			if err != nil {
				return err
			}
			table := newHashTable()
			if err := table.addBlocks(rBlks); err != nil {
				return err
			}

			e.mem.acquire(scanBuf)
			defer e.mem.release(scanBuf)
			for soff := int64(0); soff < s.blocks(); soff += scanBuf {
				g := min64(scanBuf, s.blocks()-soff)
				sBlks, err := e.readSrc(p, s, soff, g)
				if err != nil {
					return err
				}
				err = forEachTuple(sBlks, func(t block.Tuple) {
					table.probeWithS(e, p, t)
				})
				if err != nil {
					return err
				}
				if err := e.checkStop(); err != nil {
					return err
				}
			}
			return nil
		}()
		if err != nil {
			return err
		}
	}
	return nil
}

// partitionTapeToDisk hash-partitions a tape-resident relation (or a
// chunk of it) into per-partition striped disk files, following lay's
// partition count, buffers and routing. Returns the partition files.
// sk, when non-nil, observes every surviving key (the skew sketch).
// reserve, when non-nil, is called with the block count of each flush
// before the disk write — concurrent methods use it to acquire
// double-buffer space.
func partitionTapeToDisk(e *env, p *sim.Proc, drive device.Drive, region device.Region,
	tuplesPerBlock int, tag byte, lay layout, namePrefix string,
	keep keepFn, sk *hashutil.FreqSketch, reserve func(p *sim.Proc, n int64)) ([]device.File, error) {

	files := make([]device.File, lay.parts)
	ok := false
	defer func() {
		// A failed partition frees every bucket file, so retried units
		// never leak disk space.
		if !ok {
			freeAll(files)
		}
	}()
	for i := range files {
		f, err := e.disks.Create(fmt.Sprintf("%s%d", namePrefix, i), nil)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	e.mem.acquire(lay.memory())
	defer e.mem.release(lay.memory())

	pt := newPartitioner(lay.parts, lay.writeBuf, tuplesPerBlock, tag,
		func(fp *sim.Proc, bkt int, blks []block.Block) error {
			if reserve != nil {
				reserve(fp, int64(len(blks)))
			}
			return files[bkt].Append(fp, blks)
		})
	pt.route = lay.route
	pt.sketch = sk
	err := e.readTape(p, drive, region, lay.inBuf, func(_ int64, blks []block.Block) error {
		var addErr error
		err := forEachTuple(blks, func(t block.Tuple) {
			if addErr != nil || (keep != nil && !keep(t)) {
				return
			}
			addErr = pt.add(p, t)
		})
		if err != nil {
			return err
		}
		return addErr
	})
	if err != nil {
		return nil, err
	}
	if err := pt.finish(p); err != nil {
		return nil, err
	}
	ok = true
	return files, nil
}

// checkGH verifies the shared Grace Hash feasibility: the Table 2
// memory requirement M >= sqrt(|R|) (exact at block granularity) and
// disk room for R's buckets plus at least one block per S bucket.
func checkGH(spec Spec, res Resources) (hashutil.Plan, error) {
	plan, err := hashutil.PlanBuckets(spec.R.Region.N, res.MemoryBlocks)
	if err != nil {
		return plan, fmt.Errorf("%w: %v", ErrNeedMemory, err)
	}
	// R's bucket files may exceed |R| by up to one partial block per
	// bucket; an S chunk needs at least one block plus the same
	// partial-block slack.
	need := spec.R.Region.N + 2*int64(plan.B) + 2
	if res.DiskBlocks < need {
		return plan, fmt.Errorf("%w: D=%d < |R|+2B+2=%d", ErrNeedDiskForR, res.DiskBlocks, need)
	}
	return plan, nil
}

// totalLen sums file lengths.
func totalLen(files []device.File) int64 {
	var n int64
	for _, f := range files {
		n += f.Len()
	}
	return n
}

// freeAll frees every non-nil file.
func freeAll(files []device.File) {
	for _, f := range files {
		if f != nil {
			f.Free()
		}
	}
}

// ensureRBuckets (re)partitions R into disk bucket files when they are
// absent or lost extents to a failed disk. Re-entry pays a fresh tape
// scan of R, counted in RScans. When skew-aware partitioning is on,
// the pass sketches key frequencies while partitioning and then
// repairs oversized buckets on disk, publishing the refined plan
// through skp; both the sketch and the repair are deterministic, so a
// recovery replay rebuilds the identical layout.
func (e *env) ensureRBuckets(p *sim.Proc, plan hashutil.Plan, fRB *[]device.File, skp **hashutil.SkewPlan) error {
	if *fRB != nil && !anyLost(*fRB) {
		return nil
	}
	if *fRB != nil {
		freeAll(*fRB)
		*fRB = nil
	}
	sk := e.newSketch()
	sp := e.span(p, "hash-R", obs.AInt("buckets", int64(plan.B)))
	files, err := partitionTapeToDisk(e, p, e.driveR, e.spec.R.Region,
		e.spec.R.TuplesPerBlock, e.spec.R.Tag, layoutOf(plan), "rb", e.filterR(), sk, nil)
	sp.Close(p)
	if err != nil {
		return err
	}
	if sk != nil {
		files, *skp, err = e.repairRSkew(p, plan, files, sk,
			e.spec.R.TuplesPerBlock, e.spec.R.Tag, "rb")
		if err != nil {
			// repairRSkew freed every partition file already.
			return err
		}
	}
	*fRB = files
	e.stats.RScans++
	return nil
}

// ghStepIISeq is the sequential Step II of the Grace Hash methods and
// the recovery tail of the concurrent ones: starting at startOff,
// partition a disk-sized chunk of S into bucket files (following sLay,
// which matches R's final partition map when a skew plan refined it)
// and join each against its R partition. Each chunk is one restartable
// unit with bucket-granularity checkpoints: committed buckets are
// skipped on restart, ensureR re-stages R if a disk loss destroyed it,
// and chunk sizing follows the surviving disk capacity.
func ghStepIISeq(e *env, p *sim.Proc, plan hashutil.Plan, sLay layout, startOff int64,
	ensureR func(*sim.Proc) error, rSrc func(b int) bucketSource, rDiskLen func() int64) error {

	scanBuf := scanBufFor(plan, e.res.MemoryBlocks)
	maxLoad := e.res.MemoryBlocks - scanBuf
	s := e.spec.S.Region
	for off := startOff; off < s.N; {
		var n int64 // fixed once a bucket commits, so checkpoints stay valid
		doneB := 0
		var fSB []device.File
		err := e.runUnit(p, fmt.Sprintf("S-chunk@%d", off), func(up *sim.Proc) error {
			if err := ensureR(up); err != nil {
				return err
			}
			if doneB == 0 {
				d := e.effectiveD() - rDiskLen()
				chunk := d - int64(sLay.parts)
				if chunk < 1 {
					return fmt.Errorf("%w: %d blocks left to buffer S over %d buckets", ErrNeedDisk, d, sLay.parts)
				}
				n = min64(chunk, s.N-off)
			}
			if fSB != nil {
				freeAll(fSB)
				fSB = nil
			}
			sp := e.span(up, "stage-S", obs.AInt("off", off))
			var err error
			fSB, err = partitionTapeToDisk(e, up, e.driveS, s.Sub(off, n),
				e.spec.S.TuplesPerBlock, e.spec.S.Tag, sLay, "sb", e.filterS(), nil, nil)
			sp.Close(up)
			if err != nil {
				return err
			}
			for b := doneB; b < sLay.parts; b++ {
				b := b
				if err := e.staged(up, func() error {
					return joinBucketPair(e, up, rSrc(b), diskBucket{fSB[b]}, maxLoad, scanBuf)
				}); err != nil {
					return err
				}
				doneB = b + 1
			}
			return nil
		})
		if fSB != nil {
			freeAll(fSB)
		}
		if err != nil {
			return err
		}
		e.stats.Iterations++
		e.stats.RScans++
		off += n
	}
	return nil
}

// DTGH is Disk–Tape Grace Hash Join (Section 5.1.2): sequential; hash
// R from tape into disk buckets, then repeatedly hash a d = D - |R|
// chunk of S to disk and join it bucket by bucket.
type DTGH struct{}

// Name implements Method.
func (DTGH) Name() string { return "Disk-Tape Grace Hash Join" }

// Symbol implements Method.
func (DTGH) Symbol() string { return "DT-GH" }

// Check implements Method.
func (DTGH) Check(spec Spec, res Resources) error {
	_, err := checkGH(spec, res)
	return err
}

func (DTGH) run(e *env, p *sim.Proc) error {
	plan, err := checkGH(e.spec, e.res)
	if err != nil {
		return err
	}
	// Step I: hash R from tape to disk buckets, restartable as one unit.
	var fRB []device.File
	var skp *hashutil.SkewPlan
	ensure := func(up *sim.Proc) error { return e.ensureRBuckets(up, plan, &fRB, &skp) }
	if err := e.runUnit(p, "hash-R", ensure); err != nil {
		return err
	}
	e.markStepI(p)

	// Step II: iterate chunks of S sized to the spare disk space
	// (partitioning an n-block chunk can emit up to n + B blocks — one
	// partial per bucket — so each chunk leaves that slack). S follows
	// R's final partition map, skew-refined or not.
	err = ghStepIISeq(e, p, plan, probeLayout(plan, skp, e.res.MemoryBlocks), 0, ensure,
		func(b int) bucketSource { return diskBucket{fRB[b]} },
		func() int64 { return totalLen(fRB) })
	if err != nil {
		return err
	}
	freeAll(fRB)
	return nil
}

// CDTGH is Concurrent Disk–Tape Grace Hash Join (Section 5.1.4): as
// DT-GH, but the S bucket area on disk is double-buffered so hashing
// chunk i+1 from tape overlaps joining chunk i.
type CDTGH struct{}

// Name implements Method.
func (CDTGH) Name() string { return "Concurrent Disk-Tape Grace Hash Join" }

// Symbol implements Method.
func (CDTGH) Symbol() string { return "CDT-GH" }

// Check implements Method.
func (CDTGH) Check(spec Spec, res Resources) error {
	_, err := checkGH(spec, res)
	return err
}

func (CDTGH) run(e *env, p *sim.Proc) error {
	plan, err := checkGH(e.spec, e.res)
	if err != nil {
		return err
	}
	var fRB []device.File
	var skp *hashutil.SkewPlan
	ensure := func(up *sim.Proc) error { return e.ensureRBuckets(up, plan, &fRB, &skp) }
	if err := e.runUnit(p, "hash-R", ensure); err != nil {
		return err
	}
	e.markStepI(p)

	d := e.res.DiskBlocks - totalLen(fRB)
	scanBuf := scanBufFor(plan, e.res.MemoryBlocks)
	maxLoad := e.res.MemoryBlocks - scanBuf
	sLay := probeLayout(plan, skp, e.res.MemoryBlocks)

	dbuf := e.newDoubleBuffer("s-buckets", d)
	// Chunks leave one block of slack per partition for partial-block spill.
	chunkCap := dbuf.ChunkCapacity() - int64(sLay.parts)
	if chunkCap < int64(sLay.parts) {
		return fmt.Errorf("%w: %d blocks left to buffer S over %d buckets", ErrNeedDisk, d, sLay.parts)
	}

	q := sim.NewQueue[ghChunk](e.k, "gh-chunks", 1)
	hasher := spawnChunkHasher(e, q, sLay, chunkCap, dbuf)

	// Joiner: output is staged per chunk, so a mid-chunk fault leaves no
	// partial deliveries behind; the sequential tail redoes the chunk.
	var pipeErr error
	nextOff := int64(0)
	for {
		c, ok := q.Recv(p)
		if !ok {
			break
		}
		if c.err != nil || pipeErr != nil {
			drainChunk(e, p, dbuf, c, &pipeErr)
			continue
		}
		sp := e.span(p, "join-chunk", obs.AInt("off", c.off))
		err := e.staged(p, func() error {
			for b := 0; b < sLay.parts; b++ {
				if err := joinBucketPair(e, p, diskBucket{fRB[b]}, diskBucket{c.files[b]}, maxLoad, scanBuf); err != nil {
					for ; b < sLay.parts; b++ {
						dbuf.Release(p, c.iter, c.files[b].Len())
						c.files[b].Free()
					}
					return err
				}
				dbuf.Release(p, c.iter, c.files[b].Len())
				c.files[b].Free()
			}
			return nil
		})
		sp.Close(p)
		if err != nil {
			pipeErr = err
			e.abort = true
			continue
		}
		e.stats.Iterations++
		e.stats.RScans++
		nextOff = c.off + c.n
	}
	if err := p.Wait(hasher); err != nil {
		return err
	}
	e.abort = false
	if pipeErr != nil {
		if e.res.Recovery.Disabled || !e.unitRecoverable(pipeErr) {
			return pipeErr
		}
		// Degrade to the sequential Step II for the rest of S: same
		// chunks and buckets, no pipeline, checkpoints per bucket.
		err := ghStepIISeq(e, p, plan, sLay, nextOff, ensure,
			func(b int) bucketSource { return diskBucket{fRB[b]} },
			func() int64 { return totalLen(fRB) })
		if err != nil {
			return err
		}
	}
	freeAll(fRB)
	return nil
}

// ghChunk is one hashed chunk of S handed from the hasher to the
// joiner; a chunk with err set poisons the pipeline.
type ghChunk struct {
	iter  int64
	off   int64
	n     int64
	files []device.File
	err   error
}

// spawnChunkHasher starts the producer side of the concurrent Grace
// Hash Step II: partition successive chunks of S into double-buffered
// disk bucket files. On a fault it returns the chunk's buffer space,
// poisons the queue and stops; the joiner's sequential tail takes over.
func spawnChunkHasher(e *env, q *sim.Queue[ghChunk], sLay layout,
	chunkCap int64, dbuf buffer.DoubleBuffer) *sim.Proc {

	s := e.spec.S.Region
	return e.k.Spawn("s-hasher", func(hp *sim.Proc) {
		iter := int64(0)
		for off := int64(0); off < s.N && !e.abort; off += chunkCap {
			n := min64(chunkCap, s.N-off)
			it := iter // capture for the reserve closure
			var acq int64
			sp := e.span(hp, "stage-S", obs.AInt("off", off))
			files, err := partitionTapeToDisk(e, hp, e.driveS, s.Sub(off, n),
				e.spec.S.TuplesPerBlock, e.spec.S.Tag, sLay, "sb", e.filterS(), nil,
				func(fp *sim.Proc, blks int64) {
					dbuf.Acquire(fp, it, blks)
					acq += blks
				})
			sp.Close(hp)
			if err != nil {
				dbuf.Release(hp, it, acq)
				q.Send(hp, ghChunk{iter: it, off: off, err: err})
				break
			}
			q.Send(hp, ghChunk{iter: it, off: off, n: n, files: files})
			iter++
		}
		q.Close(hp)
	})
}

// drainChunk disposes of a chunk the joiner will not process, keeping
// buffer and disk accounting balanced while the pipeline winds down.
func drainChunk(e *env, p *sim.Proc, dbuf buffer.DoubleBuffer, c ghChunk, pipeErr *error) {
	if c.err != nil && *pipeErr == nil {
		*pipeErr = c.err
	}
	for _, f := range c.files {
		if f != nil {
			dbuf.Release(p, c.iter, f.Len())
			f.Free()
		}
	}
}
