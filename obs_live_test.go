package tapejoin

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/obs"
)

// httpGet fetches a live-telemetry endpoint and returns status + body.
func httpGet(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestObsServerScrapeDuringJoin runs a file-backend join with the obs
// server attached while goroutines hammer every endpoint, then checks
// the run's output against an unobserved reference: scraping must
// never perturb the result. Run under -race this is also the proof
// that scrape-during-run is data-race free end to end.
func TestObsServerScrapeDuringJoin(t *testing.T) {
	ref := func() *Result {
		sys, err := NewSystem(Config{
			Backend: "file", BackendDir: t.TempDir(),
			MemoryMB: 1, DiskMB: 4, Profile: IdealTape,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, s := makeRelations(t, sys)
		res, err := sys.Join(CDTGH, r, s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	sys, err := NewSystem(Config{
		Backend: "file", BackendDir: t.TempDir(),
		MemoryMB: 1, DiskMB: 4, Profile: IdealTape,
		FilePace: 200, // stretch the wall time so scrapes land mid-run
		ObsAddr:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addr := sys.ObsAddr()
	if addr == "" {
		t.Fatal("ObsAddr empty after NewSystem with ObsAddr config")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/health", "/flight"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + addr + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	r, s := makeRelations(t, sys)
	res, err := sys.Join(CDTGH, r, s)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Matches != ref.Stats.Matches {
		t.Errorf("matches = %d, reference %d", res.Stats.Matches, ref.Stats.Matches)
	}
	if res.Stats.OutputHash != ref.Stats.OutputHash {
		t.Errorf("scraping perturbed the output hash: %#x vs %#x",
			res.Stats.OutputHash, ref.Stats.OutputHash)
	}
	// No virtual-response comparison: the file backend charges measured
	// wall time into the virtual clock, so Response legitimately varies
	// run to run there. Determinism of Response under instrumentation
	// is asserted on the sim backend by paperbench -exp obsload.

	// The final scrape is valid Prometheus text and carries the device
	// engine's health gauges and the server's own scrape counter.
	code, body := httpGet(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := obs.CheckPromText(body); err != nil {
		t.Fatalf("/metrics is not valid prom text: %v\n%s", err, body)
	}
	for _, want := range []string{"iodev_health{", "obs_scrapes_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = httpGet(t, addr, "/health")
	if code != http.StatusOK {
		t.Fatalf("/health status %d after a clean run: %s", code, body)
	}
	var health struct {
		Status  string `json:"status"`
		Devices []struct {
			Device string `json:"device"`
			State  string `json:"state"`
		} `json:"devices"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("/health JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || len(health.Devices) == 0 {
		t.Errorf("clean run health = %+v", health)
	}

	// The flight recorder saw the run: span boundaries at minimum.
	_, body = httpGet(t, addr, "/flight")
	if !strings.Contains(string(body), `"kind":"span-open"`) {
		t.Errorf("/flight has no span events:\n%.400s", body)
	}
}

// TestObsServerReportsTrippedDevice drives a device into Failed —
// a disk op stalls past its deadline and the breaker is configured to
// trip on the first miss (a retry would re-run the op clean, since the
// armed OS fault is consumed by the first syscall, and the success
// would heal the breaker) — and asserts the telemetry tells the story
// after the fail-fast: /health goes 503 with the tripped device,
// /flight holds the timeout and health-transition events leading up
// to the trip.
func TestObsServerReportsTrippedDevice(t *testing.T) {
	sys, err := NewSystem(Config{
		Backend: "file", BackendDir: t.TempDir(),
		MemoryMB: 1, DiskMB: 4, Profile: IdealTape,
		Faults:          "oswait=disk:60ms:200",
		FileOpTimeout:   5 * time.Millisecond,
		FileTripAfter:   1,
		FileRetryMax:    -1,
		DisableRecovery: true,
		ObsAddr:         "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	r, s := makeRelations(t, sys)
	_, err = sys.Join(DTGH, r, s)
	if err == nil {
		t.Fatal("join should fail fast with every disk op stalling")
	}
	if !errors.Is(err, device.ErrIOTimeout) {
		t.Fatalf("want ErrIOTimeout in the chain, got %v", err)
	}

	code, body := httpGet(t, sys.ObsAddr(), "/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/health status %d, want 503: %s", code, body)
	}
	var health struct {
		Status  string `json:"status"`
		Devices []struct {
			Device   string `json:"device"`
			State    string `json:"state"`
			Timeouts int64  `json:"timeouts"`
		} `json:"devices"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("/health JSON: %v\n%s", err, body)
	}
	if health.Status != "failed" {
		t.Fatalf("health status %q, want failed: %+v", health.Status, health)
	}
	tripped := false
	for _, d := range health.Devices {
		if d.State == "failed" && d.Timeouts > 0 {
			tripped = true
		}
	}
	if !tripped {
		t.Fatalf("no failed device with timeouts in %+v", health.Devices)
	}

	// The black box holds the trip's history: the deadline miss and the
	// health transition that followed it.
	_, body = httpGet(t, sys.ObsAddr(), "/flight")
	kinds := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	var failedSeen bool
	for sc.Scan() {
		var ev obs.FlightEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad /flight line %q: %v", sc.Text(), err)
		}
		kinds[ev.Kind] = true
		if ev.Kind == "health" && ev.Detail == "failed" {
			failedSeen = true
		}
	}
	for _, want := range []string{"timeout", "health"} {
		if !kinds[want] {
			t.Errorf("/flight missing %q events; saw %v\n%.400s", want, kinds, body)
		}
	}
	if !failedSeen {
		t.Errorf("/flight has no health transition to failed:\n%.400s", body)
	}
}
