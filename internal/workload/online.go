package workload

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the online half of the workload engine: the same
// scheduler machinery as the batch Run — mounts, admission control,
// shared S-scans, the staging cache — hosted on one long-lived
// join.Session so queries can arrive continuously instead of as a
// closed batch. The bridge between wall-clock arrivals and the
// virtual-time kernel is the sim package's external-completion
// protocol: the scheduler proc parks in Await on an "arrival"
// completion whenever the queue is empty (or a merge window is open),
// and Submit — called from any goroutine — posts it with the measured
// wall wait, which the kernel charges as virtual time. Idle time on
// the service's clock is therefore real idle time, and everything the
// batch engine made real — head positions, cache hits, mount churn —
// persists across the service's lifetime.

// ErrDraining is returned by Submit once Drain has been called (or the
// engine's kernel has stopped): the service finishes admitted work but
// accepts no more.
var ErrDraining = errors.New("workload: engine draining")

// ReasonInternal marks a query that failed with a non-device scheduler
// or simulator error; the engine keeps serving other queries.
const ReasonInternal = "internal"

// OnlineQuery is one continuously-arriving join request.
type OnlineQuery struct {
	// Query carries the batch fields: ID, Method, R, S, filters, Sink.
	Query
	// Tenant labels the submitting tenant (quota accounting lives in
	// the service layer; the engine only echoes it).
	Tenant string
	// Priority orders the queue: higher runs first; equal priorities
	// run in arrival order. Zero is the default class.
	Priority int
	// Deadline, when non-zero, expires the query if service has not
	// started by that wall-clock instant: it then fails with a typed
	// ReasonDeadline instead of occupying a drive.
	Deadline time.Time
}

// OnlineResult is the engine's answer to one online query.
type OnlineResult struct {
	QueryResult
	// Tenant echoes the query.
	Tenant string
	// Arrived, Started and Finished stamp the query's wall-clock
	// lifecycle (Started/Finished are zero for queries rejected before
	// service).
	Arrived, Started, Finished time.Time
}

// WallWait is the wall-clock time from arrival to service start (or to
// rejection).
func (r OnlineResult) WallWait() time.Duration {
	if r.Started.IsZero() {
		return r.Finished.Sub(r.Arrived)
	}
	return r.Started.Sub(r.Arrived)
}

// WallLatency is the wall-clock time from arrival to completion.
func (r OnlineResult) WallLatency() time.Duration { return r.Finished.Sub(r.Arrived) }

// OnlineConfig tunes the resident engine.
type OnlineConfig struct {
	// Config is the batch configuration: resources, policy, cache,
	// mount time, MaxShared. ScheduleCap defaults to 4096 online.
	Config
	// MergeWindow holds a shared-scan seed query back for up to this
	// wall-clock duration so later same-S arrivals can merge into its
	// pass. Zero merges only what is already queued. Ignored by the
	// fifo and mount-aware policies and while draining.
	MergeWindow time.Duration
}

// OnlineStats is a point-in-time snapshot of the resident engine.
type OnlineStats struct {
	// Queued and InFlight count queries waiting and currently in
	// service; Served, Failed and Expired count delivered outcomes
	// (Failed ⊇ Expired).
	Queued, InFlight int
	Served, Failed   int64
	Expired          int64
	// Batch-engine counters, cumulative since Start.
	Mounts, RMounts, SMounts               int
	SharedPasses                           int
	SharedRiders                           int64
	Requeues, Demotions                    int
	CacheHits, CacheMisses, CacheEvictions int64
	TapeBlocksRead, TapeBlocksWritten      int64
	DiskHighWater                          int64
	// VirtualNow is the session clock; ScheduleTail the most recent
	// schedule-log lines (capped by Config.ScheduleCap).
	VirtualNow      sim.Duration
	ScheduleTail    []string
	ScheduleDropped int64
}

// pendingQ is one queued online query with its delivery channel.
type pendingQ struct {
	q       OnlineQuery
	seq     int64
	arrived time.Time
	started time.Time
	ch      chan OnlineResult
}

// arrivalWaiter is the armed wakeup of a parked scheduler proc. It is
// posted exactly once — by Submit, by a merge-window timer, or by
// Drain — whichever fires first; stale timers find the engine's waiter
// pointer moved on and do nothing.
type arrivalWaiter struct {
	c     *sim.Completion
	armed time.Time
}

// OnlineEngine is a resident scheduler serving continuously-arriving
// join queries on one long-lived session. Start it with StartOnline,
// feed it with Submit, stop it with Drain.
type OnlineEngine struct {
	cfg     OnlineConfig
	session *join.Session
	en      *engine

	mu       sync.Mutex
	queue    []*pendingQ
	serving  []*pendingQ
	waiter   *arrivalWaiter
	draining bool
	nextSeq  int64
	stats    OnlineStats
	runErr   error

	done chan struct{}
}

// StartOnline builds the device complex and starts the resident
// scheduler. The caller must eventually call Drain (or Close) to stop
// the kernel and release the session's devices.
func StartOnline(cfg OnlineConfig) (*OnlineEngine, error) {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.ScheduleCap == 0 {
		cfg.ScheduleCap = 4096
	}
	session, err := join.NewSession(cfg.Resources)
	if err != nil {
		return nil, err
	}
	res := session.Resources()
	if cfg.CacheBlocks < 0 || cfg.CacheBlocks >= res.DiskBlocks {
		session.Close()
		return nil, fmt.Errorf("workload: CacheBlocks %d outside [0, D=%d)", cfg.CacheBlocks, res.DiskBlocks)
	}
	reg := res.Metrics
	e := &OnlineEngine{
		cfg: cfg, session: session,
		done: make(chan struct{}),
	}
	e.en = &engine{
		cfg: cfg.Config, session: session,
		array: session.Disks(),
		cache: newStagingCache(cfg.CacheBlocks),
		out:   &BatchResult{Policy: cfg.Policy},
		queueWait: reg.Histogram("workload_queue_wait_seconds",
			"Virtual time queries waited before service started.", obs.BackoffBuckets),
		mountsC: reg.Counter("workload_mounts_total", "Cartridge switches charged by the scheduler."),
		hitsC:   reg.Counter("workload_cache_hits_total", "Staging-cache hits (R copies served from disk)."),
		missesC: reg.Counter("workload_cache_misses_total", "Staging-cache misses (R copies read from tape)."),
		sharedC: reg.Counter("workload_shared_passes_total", "Shared S-scan passes executed."),
	}
	session.Kernel().Spawn("online-scheduler", func(p *sim.Proc) {
		for {
			grp := e.nextGroup(p)
			if grp == nil {
				return
			}
			e.serveGroup(p, grp)
		}
	})
	go func() {
		err := session.Kernel().Run()
		session.Finish()
		if cerr := session.Close(); err == nil {
			err = cerr
		}
		e.shutdownSweep(err)
		close(e.done)
	}()
	return e, nil
}

// Submit enqueues one query and returns the channel its single result
// will be delivered on (the channel is buffered and closed after the
// send, so receivers never block the engine). Submit validates the
// spec up front; invalid queries are rejected synchronously. After
// Drain, Submit fails with ErrDraining.
func (e *OnlineEngine) Submit(q OnlineQuery) (<-chan OnlineResult, error) {
	spec := join.Spec{R: q.R, S: q.S, FilterR: q.FilterR, FilterS: q.FilterS}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("workload: query %q: %w", q.ID, err)
	}
	if q.Method != "" {
		if _, err := join.BySymbol(q.Method); err != nil {
			return nil, fmt.Errorf("workload: query %q: %w", q.ID, err)
		}
	}
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil, ErrDraining
	}
	e.nextSeq++
	if q.ID == "" {
		q.ID = fmt.Sprintf("oq%d", e.nextSeq)
	}
	pq := &pendingQ{
		q: q, seq: e.nextSeq, arrived: time.Now(),
		ch: make(chan OnlineResult, 1),
	}
	e.queue = append(e.queue, pq)
	e.fireLocked()
	e.mu.Unlock()
	return pq.ch, nil
}

// Drain stops admission, serves everything already queued, and shuts
// the engine down: the scheduler proc exits once the queue is empty,
// the kernel drains, and the session's devices are released. It
// returns the kernel's error, if any. Safe to call more than once.
func (e *OnlineEngine) Drain() error {
	e.mu.Lock()
	e.draining = true
	e.fireLocked()
	e.mu.Unlock()
	<-e.done
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runErr
}

// Stats returns the engine's latest published snapshot. It is updated
// after every served group, so a mid-pass scrape lags by at most one
// scheduling step.
func (e *OnlineEngine) Stats() OnlineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Queued = len(e.queue)
	st.InFlight = len(e.serving)
	st.ScheduleTail = append([]string(nil), st.ScheduleTail...)
	return st
}

// fireLocked posts the armed arrival completion, if any, with the
// measured wall wait. Call with e.mu held.
func (e *OnlineEngine) fireLocked() {
	if w := e.waiter; w != nil {
		e.waiter = nil
		w.c.Post(time.Since(w.armed), nil)
	}
}

// park arms an arrival waiter and blocks the scheduler proc on it.
// With window > 0 a timer fires the waiter when the merge window
// closes, even if nothing arrives. Called with e.mu held; returns with
// it released.
func (e *OnlineEngine) park(p *sim.Proc, window time.Duration) {
	w := &arrivalWaiter{c: p.StartIO("arrival"), armed: time.Now()}
	e.waiter = w
	if window > 0 {
		time.AfterFunc(window, func() {
			e.mu.Lock()
			if e.waiter == w {
				e.waiter = nil
				w.c.Post(time.Since(w.armed), nil)
			}
			e.mu.Unlock()
		})
	}
	e.mu.Unlock()
	p.Await(w.c)
}

// nextGroup blocks until there is work and returns the next group to
// serve — one query, or several same-S queries admitted onto a shared
// pass. A nil return means the engine is draining and the queue is
// empty: the scheduler proc should exit.
func (e *OnlineEngine) nextGroup(p *sim.Proc) []*pendingQ {
	for {
		e.mu.Lock()
		e.expireLocked()
		if len(e.queue) == 0 {
			if e.draining {
				e.mu.Unlock()
				return nil
			}
			e.park(p, 0) // releases e.mu
			continue
		}
		grp, wait := e.pickLocked()
		if wait > 0 {
			e.park(p, wait) // releases e.mu
			continue
		}
		e.removeLocked(grp)
		e.serving = append(e.serving, grp...)
		e.mu.Unlock()
		return grp
	}
}

// expireLocked fails queued queries whose deadlines have passed before
// service started. Call with e.mu held.
func (e *OnlineEngine) expireLocked() {
	now := time.Now()
	kept := e.queue[:0]
	for _, pq := range e.queue {
		if !pq.q.Deadline.IsZero() && now.After(pq.q.Deadline) {
			pq.ch <- OnlineResult{
				QueryResult: QueryResult{
					ID: pq.q.ID, Requested: pq.q.Method,
					Failed: true,
					Reason: typedReason(ReasonDeadline, fmt.Errorf("queued %v", now.Sub(pq.arrived).Round(time.Millisecond))),
				},
				Tenant:  pq.q.Tenant,
				Arrived: pq.arrived, Finished: now,
			}
			close(pq.ch)
			e.stats.Failed++
			e.stats.Expired++
			continue
		}
		kept = append(kept, pq)
	}
	e.queue = kept
}

// pickLocked chooses the next group under the policy. It returns
// either a non-empty group, or a positive wait meaning "park for up to
// this long — a merge window is still open". Call with e.mu held.
func (e *OnlineEngine) pickLocked() (grp []*pendingQ, wait time.Duration) {
	seed := e.queue[0]
	for _, pq := range e.queue[1:] {
		if pq.q.Priority > seed.q.Priority {
			seed = pq
		}
	}
	if e.cfg.Policy != FIFO {
		// Mount-awareness, online: among the seed's priority band,
		// prefer a query whose S cartridge is already in the drive —
		// the online analogue of the batch S-grouping.
		loaded := e.session.DriveS().Media()
		if loaded != nil && seed.q.S.Media != loaded {
			for _, pq := range e.queue {
				if pq.q.Priority == seed.q.Priority && pq.q.S.Media == loaded {
					seed = pq
					break
				}
			}
		}
	}
	if e.cfg.Policy != SharedScan || seed.q.StopAfter > 0 {
		// StopAfter queries run solo (see Query.StopAfter): a shared pass
		// streams the whole S scan to every rider.
		return []*pendingQ{seed}, 0
	}

	// Shared-scan: gather queued queries over the seed's S relation, in
	// queue order, and let admission control pack them onto one pass.
	cand := []*pendingQ{seed}
	for _, pq := range e.queue {
		if pq != seed && pq.q.S == seed.q.S && pq.q.StopAfter == 0 && len(cand) < e.cfg.MaxShared {
			cand = append(cand, pq)
		}
	}
	if len(cand) < e.cfg.MaxShared && !e.draining && e.cfg.MergeWindow > 0 {
		if open := e.cfg.MergeWindow - time.Since(seed.arrived); open > 0 {
			return nil, open
		}
	}
	if len(cand) == 1 {
		return cand, 0
	}
	qs := make([]Query, len(cand))
	idx := make([]int, len(cand))
	for i, pq := range cand {
		qs[i], idx[i] = pq.q.Query, i
	}
	admitted, _ := admitShared(e.cfg.Config, e.session.Resources(), qs, idx)
	if len(admitted) < 2 {
		return []*pendingQ{seed}, 0
	}
	for _, i := range admitted {
		grp = append(grp, cand[i])
	}
	return grp, 0
}

// removeLocked deletes the group's members from the queue. Call with
// e.mu held.
func (e *OnlineEngine) removeLocked(grp []*pendingQ) {
	drop := make(map[*pendingQ]bool, len(grp))
	for _, pq := range grp {
		drop[pq] = true
	}
	kept := e.queue[:0]
	for _, pq := range e.queue {
		if !drop[pq] {
			kept = append(kept, pq)
		}
	}
	e.queue = kept
}

// serveGroup runs one scheduling step on the engine — a solo query or
// a shared pass — and delivers each member's result. Non-device errors
// fail the group's queries with a typed reason instead of killing the
// resident service.
func (e *OnlineEngine) serveGroup(p *sim.Proc, grp []*pendingQ) {
	started := time.Now()
	base := len(e.en.queries)
	qis := make([]int, len(grp))
	for i, pq := range grp {
		pq.started = started
		e.en.queries = append(e.en.queries, pq.q.Query)
		e.en.results = append(e.en.results, QueryResult{})
		qis[i] = base + i
	}
	var err error
	if len(grp) > 1 {
		err = e.en.runShared(p, qis)
	} else {
		err = e.en.runSingle(p, qis[0])
	}
	finished := time.Now()
	e.mu.Lock()
	if len(grp) > 1 {
		e.stats.SharedRiders += int64(len(grp))
	}
	for i, pq := range grp {
		res := e.en.results[qis[i]]
		if err != nil && res.ID == "" {
			res = QueryResult{
				ID: pq.q.ID, Requested: pq.q.Method,
				Failed: true, Reason: typedReason(ReasonInternal, err),
			}
		}
		pq.ch <- OnlineResult{
			QueryResult: res,
			Tenant:      pq.q.Tenant,
			Arrived:     pq.arrived, Started: pq.started, Finished: finished,
		}
		close(pq.ch)
		if res.Failed {
			e.stats.Failed++
		} else {
			e.stats.Served++
		}
	}
	e.unserveLocked(grp)
	e.publishLocked()
	e.mu.Unlock()
}

// unserveLocked drops delivered queries from the serving set. Call
// with e.mu held.
func (e *OnlineEngine) unserveLocked(grp []*pendingQ) {
	drop := make(map[*pendingQ]bool, len(grp))
	for _, pq := range grp {
		drop[pq] = true
	}
	kept := e.serving[:0]
	for _, pq := range e.serving {
		if !drop[pq] {
			kept = append(kept, pq)
		}
	}
	e.serving = kept
}

// publishLocked refreshes the stats snapshot from the batch engine's
// counters and the session's devices. Runs on the scheduler proc with
// e.mu held, so readers never see a torn update.
func (e *OnlineEngine) publishLocked() {
	out := e.en.out
	e.stats.Mounts, e.stats.RMounts, e.stats.SMounts = out.Mounts, out.RMounts, out.SMounts
	e.stats.SharedPasses = out.SharedPasses
	e.stats.Requeues, e.stats.Demotions = out.Requeues, out.Demotions
	e.stats.CacheHits = e.en.cache.Hits
	e.stats.CacheMisses = e.en.cache.Misses
	e.stats.CacheEvictions = e.en.cache.Evictions
	rStats, sStats := e.session.DriveR().DriveStats(), e.session.DriveS().DriveStats()
	e.stats.TapeBlocksRead = rStats.BlocksRead + sStats.BlocksRead
	e.stats.TapeBlocksWritten = rStats.BlocksWritten + sStats.BlocksWritten
	if hw := e.session.Disks().HighWater(); hw > e.stats.DiskHighWater {
		e.stats.DiskHighWater = hw
	}
	e.stats.VirtualNow = sim.Duration(e.session.Kernel().Now())
	// Copy the tail: the scheduler proc keeps appending to the live log
	// outside the lock, so the snapshot must not alias it.
	tail := out.Schedule
	if len(tail) > 100 {
		tail = tail[len(tail)-100:]
	}
	e.stats.ScheduleTail = append(e.stats.ScheduleTail[:0], tail...)
	e.stats.ScheduleDropped = out.ScheduleDropped
}

// shutdownSweep runs after the kernel has stopped: it records the run
// error, marks the engine draining, and fails every undelivered query
// with a typed shutdown reason so no submitter hangs.
func (e *OnlineEngine) shutdownSweep(runErr error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.runErr = runErr
	e.draining = true
	cause := runErr
	if cause == nil {
		cause = errors.New("engine closed")
	}
	now := time.Now()
	for _, set := range [][]*pendingQ{e.queue, e.serving} {
		for _, pq := range set {
			pq.ch <- OnlineResult{
				QueryResult: QueryResult{
					ID: pq.q.ID, Requested: pq.q.Method,
					Failed: true, Reason: typedReason(ReasonShutdown, cause),
				},
				Tenant:  pq.q.Tenant,
				Arrived: pq.arrived, Started: pq.started, Finished: now,
			}
			close(pq.ch)
			e.stats.Failed++
		}
	}
	e.queue, e.serving = nil, nil
}
