package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// chromeEvent is one entry of a Chrome trace_event JSON document.
// Timestamps and durations are microseconds, per the format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// ChromeTrace renders spans and device events as Chrome trace_event
// JSON, loadable in Perfetto or chrome://tracing: each device is a
// track (thread) of I/O slices, each span-opening process is a track
// of phase slices, and zero-width events (faults, marks, restarts)
// are instants.
func ChromeTrace(spans []*Span, events []trace.Event) ([]byte, error) {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	pid := 1

	// Track (tid) assignment: devices first, sorted, then span
	// processes in first-span order, then a marks track if needed.
	tids := map[string]int{}
	var names []string
	devSet := map[string]bool{}
	for _, e := range events {
		if e.Kind != trace.Mark && e.Device != "-" {
			devSet[e.Device] = true
		}
	}
	devs := make([]string, 0, len(devSet))
	for d := range devSet {
		devs = append(devs, d)
	}
	sort.Strings(devs)
	names = append(names, devs...)
	for _, s := range spans {
		key := "proc:" + s.Proc
		if _, ok := tids[key]; !ok {
			tids[key] = 0
			names = append(names, key)
		}
	}
	hasMarks := false
	for _, e := range events {
		if e.Kind == trace.Mark || e.Device == "-" {
			hasMarks = true
			break
		}
	}
	if hasMarks {
		names = append(names, "marks")
	}
	for i, n := range names {
		tids[n] = i + 1
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
			Args: map[string]any{"name": n},
		})
	}

	for _, s := range spans {
		args := map[string]any{"span": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.HasWall() {
			args["wall_start_s"] = s.WallStart.Seconds()
			args["wall_dur_s"] = s.WallDuration().Seconds()
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		end := s.End
		if end < s.Start {
			end = s.Start
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name, Cat: "phase", Ph: "X",
			Ts: usec(s.Start), Dur: usec(end) - usec(s.Start),
			Pid: pid, Tid: tids["proc:"+s.Proc], Args: args,
		})
	}

	for _, e := range events {
		args := map[string]any{}
		if e.Blocks != 0 {
			args["blocks"] = e.Blocks
		}
		if e.Span != 0 {
			args["span"] = e.Span
		}
		if e.Note != "" {
			args["note"] = e.Note
		}
		ce := chromeEvent{Name: e.Kind.String(), Cat: "device", Pid: pid, Ts: usec(e.Start), Args: args}
		if e.Kind == trace.Mark || e.Device == "-" {
			ce.Tid = tids["marks"]
			ce.Ph = "i"
			ce.S = "g"
		} else if e.End <= e.Start {
			ce.Tid = tids[e.Device]
			ce.Ph = "i"
			ce.S = "t"
		} else {
			ce.Tid = tids[e.Device]
			ce.Ph = "X"
			ce.Dur = usec(e.End) - usec(e.Start)
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}

	return json.MarshalIndent(doc, "", " ")
}

// CheckChromeTrace decodes data as Chrome trace_event JSON and asserts
// the invariants Perfetto relies on: a traceEvents array, known phase
// letters, named threads for every track, non-negative timestamps and
// durations. Used by cmd/tracecheck and the CI trace-schema step.
func CheckChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("tracecheck: not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("tracecheck: traceEvents is empty")
	}
	named := map[float64]bool{}
	used := map[float64]bool{}
	slices := 0
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if name == "" {
			return fmt.Errorf("tracecheck: event %d has no name", i)
		}
		tid, ok := ev["tid"].(float64)
		if !ok {
			return fmt.Errorf("tracecheck: event %d (%s) has no numeric tid", i, name)
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("tracecheck: event %d (%s) has no numeric pid", i, name)
		}
		switch ph {
		case "M":
			if name == "thread_name" {
				named[tid] = true
			}
			continue
		case "X":
			slices++
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				return fmt.Errorf("tracecheck: complete event %d (%s) has bad dur", i, name)
			}
		case "i":
			// instant: nothing beyond the common checks
		default:
			return fmt.Errorf("tracecheck: event %d (%s) has unsupported ph %q", i, name, ph)
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			return fmt.Errorf("tracecheck: event %d (%s) has bad ts", i, name)
		}
		used[tid] = true
	}
	if slices == 0 {
		return fmt.Errorf("tracecheck: no complete (ph=X) events")
	}
	for tid := range used {
		if !named[tid] {
			return fmt.Errorf("tracecheck: tid %v has events but no thread_name metadata", tid)
		}
	}
	return nil
}

// jsonlSpan and jsonlEvent are the line formats of WriteJSONL.
type jsonlSpan struct {
	Type   string  `json:"type"`
	ID     int64   `json:"id"`
	Parent int64   `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Proc   string  `json:"proc"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	// Wall-clock stamps (seconds since the run's wall epoch), present
	// only when the run was wall-clocked.
	WallStartS float64 `json:"wall_start_s,omitempty"`
	WallEndS   float64 `json:"wall_end_s,omitempty"`
	Attrs      []Attr  `json:"attrs,omitempty"`
}

type jsonlEvent struct {
	Type   string  `json:"type"`
	Device string  `json:"device"`
	Kind   string  `json:"kind"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	Blocks int64   `json:"blocks,omitempty"`
	Span   int64   `json:"span,omitempty"`
	Note   string  `json:"note,omitempty"`
}

// WriteJSONL streams spans then events to w, one JSON object per line,
// timestamps in virtual seconds.
func WriteJSONL(w io.Writer, spans []*Span, events []trace.Event) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		line := jsonlSpan{
			Type: "span", ID: s.ID, Parent: s.Parent, Name: s.Name, Proc: s.Proc,
			StartS: s.Start.Seconds(), EndS: s.End.Seconds(), Attrs: s.Attrs,
		}
		if s.HasWall() {
			line.WallStartS = s.WallStart.Seconds()
			line.WallEndS = s.WallEnd.Seconds()
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, e := range events {
		line := jsonlEvent{
			Type: "event", Device: e.Device, Kind: e.Kind.String(),
			StartS: e.Start.Seconds(), EndS: e.End.Seconds(),
			Blocks: e.Blocks, Span: e.Span, Note: e.Note,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}
