package ioengine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// This file is the wall-clock fault-tolerance half of the engine:
// per-op deadlines, a per-device health state machine, and the circuit
// breaker that turns a wedged device into typed fast failures instead
// of an unbounded hang.
//
// The hard part of a deadline is the zombie: an op that overran it is
// still running on some goroutine and still owns the buffers its plan
// handed it. The worker therefore posts ErrTimeout to unblock the
// submitter, then *waits out the zombie* for a bounded grace period
// before serving the next request — worker serialization guarantees no
// two ops touch the same plan buffers concurrently. Only when the
// grace also expires does the worker declare the device Failed and
// stop executing entirely, so the still-lingering zombie can never
// race a later operation.

// ErrTimeout is returned when an operation exceeds the per-op deadline.
// It is retryable at the device layer.
var ErrTimeout = errors.New("ioengine: op deadline exceeded")

// ErrDeviceFailed is returned once a worker's circuit breaker has
// tripped: the device is considered dead and all traffic fails fast.
var ErrDeviceFailed = errors.New("ioengine: device failed")

// Health is a worker's position in the healthy → degraded → failed
// state machine. Deadline misses degrade; DefaultTripAfter consecutive
// misses (or one op stuck past its grace period) trip the breaker to
// Failed, which is terminal for the worker — replacement devices get
// fresh workers. Any completed operation restores Degraded to Healthy.
type Health int32

const (
	Healthy Health = iota
	Degraded
	Failed
)

func (h Health) String() string {
	switch h {
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	default:
		return "healthy"
	}
}

// DefaultTripAfter is the consecutive-timeout count that trips the
// breaker.
const DefaultTripAfter = 3

// DefaultRetry is the engine's default device-layer retry policy.
var DefaultRetry = RetryPolicy{Max: 2, Base: sim.Duration(100 * time.Millisecond)}

// RetryPolicy bounds Do's device-layer retries.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; 0 disables
	// retrying.
	Max int
	// Base is the first backoff, doubled per retry, plus up to half of
	// itself in deterministic jitter. Charged as virtual time.
	Base sim.Duration
}

// Policy is an engine's wall-clock fault policy, shared by its workers.
type Policy struct {
	// OpTimeout bounds each operation's wall-clock execution; 0
	// disables deadlines (the zero Policy is the pre-deadline engine).
	OpTimeout time.Duration
	// Grace bounds how long the worker waits for a timed-out op to
	// finish before declaring the device Failed. Defaults to
	// max(5×OpTimeout, 1s).
	Grace time.Duration
	// TripAfter is the consecutive-timeout count that trips the
	// breaker (DefaultTripAfter when <= 0).
	TripAfter int
	// Retry is Do's device-layer retry policy (DefaultRetry when both
	// fields are zero).
	Retry RetryPolicy
}

// withDefaults fills the derived and defaulted fields.
func (p Policy) withDefaults() Policy {
	if p.Grace <= 0 {
		p.Grace = 5 * p.OpTimeout
		if p.Grace < time.Second {
			p.Grace = time.Second
		}
	}
	if p.TripAfter <= 0 {
		p.TripAfter = DefaultTripAfter
	}
	if p.Retry == (RetryPolicy{}) {
		p.Retry = DefaultRetry
	}
	return p
}

// notEnqueued wraps errors posted by Submit itself — the request never
// reached the queue, so Await must not decrement the queue gauge.
type notEnqueued struct{ err error }

func (e notEnqueued) Error() string { return e.err.Error() }
func (e notEnqueued) Unwrap() error { return e.err }

// execute runs one request under the engine's deadline policy. Runs on
// the worker goroutine.
func (w *Worker) execute(req request) {
	timeout := w.e.policy.OpTimeout
	t0 := w.e.now()
	if timeout <= 0 {
		err := req.op()
		t1 := w.e.now()
		w.e.record(w.name, t0, t1)
		w.opDone()
		req.c.Post(sim.Duration(t1-t0), err)
		return
	}
	done := make(chan error, 1) // buffered: a zombie's send never blocks
	go func() { done <- req.op() }()
	timer := time.NewTimer(timeout)
	select {
	case err := <-done:
		timer.Stop()
		t1 := w.e.now()
		w.e.record(w.name, t0, t1)
		w.opDone()
		req.c.Post(sim.Duration(t1-t0), err)
		return
	case <-timer.C:
	}
	// Deadline missed: degrade (or trip), fail the submitter with a
	// typed error, then wait out the zombie before the next request.
	w.timeouts.Add(1)
	w.e.flight.Record("timeout", w.name, fmt.Sprintf("op exceeded %v deadline", timeout))
	if int(w.consec.Add(1)) >= w.e.policy.TripAfter {
		w.setState(Failed)
	} else {
		w.setState(Degraded)
	}
	t1 := w.e.now()
	w.e.record(w.name, t0, t1)
	req.c.Post(sim.Duration(t1-t0),
		fmt.Errorf("%s: op exceeded %v deadline: %w", w.name, timeout, ErrTimeout))
	grace := time.NewTimer(w.e.policy.Grace)
	select {
	case <-done:
		grace.Stop()
	case <-grace.C:
		// Truly stuck. Trip the breaker: no further op will execute on
		// this worker, so the lingering zombie cannot race anything.
		w.e.flight.Record("timeout", w.name, "zombie op outlived grace period")
		w.setState(Failed)
	}
}

// opDone records a completed (non-timed-out) operation: the device
// responded, so consecutive-miss tracking resets and a Degraded worker
// heals. Failed is terminal.
func (w *Worker) opDone() {
	w.consec.Store(0)
	if Health(w.state.Load()) == Degraded {
		w.setState(Healthy)
	}
}

// setState moves the health state machine, recording the transition in
// the flight recorder only when the state actually changes. Runs on
// the worker goroutine (execute) — the state machine's only writer.
func (w *Worker) setState(h Health) {
	if Health(w.state.Swap(int32(h))) != h {
		w.e.flight.Record("health", w.name, h.String())
	}
}
