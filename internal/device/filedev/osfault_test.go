package filedev

// OS-level fault injection through the real-file backend: the same
// seeded -faults grammar that drives the device model strikes the
// syscall layer here, and the per-record CRC framing turns silent
// stored corruption into typed device.ErrCorrupt.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/tape"
)

// newStore builds a file-backed store on b with a small geometry.
func newStore(t *testing.T, b *Backend, k *sim.Kernel) device.Store {
	t.Helper()
	s, err := b.NewStore(k, device.StoreConfig{NumDisks: 2, BlocksPerDisk: 64, AggregateRate: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestStoreOSErrorRetriedByWorker injects a transient EIO at the
// syscall layer of a scratch read. The error wraps fault.ErrTransient,
// so the device worker's own retry loop absorbs it — the caller sees a
// clean read.
func TestStoreOSErrorRetriedByWorker(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	s := newStore(t, b, k)
	sched, err := fault.Parse("oserr=disk:0")
	if err != nil {
		t.Fatal(err)
	}
	s.SetInjector(sched)
	run(t, k, func(p *sim.Proc) {
		f, err := s.Create("scratch", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(p, mkBlocks(1, 4, 0)); err != nil {
			t.Fatal(err)
		}
		blks, err := f.ReadAt(p, 0, 4)
		if err != nil {
			t.Fatalf("read with retryable OS error: %v", err)
		}
		if len(blks) != 4 || keyOf(t, blks[2]) != 2 {
			t.Fatalf("payload after retry: %d blocks", len(blks))
		}
	})
	if s.DiskStats().Faults == 0 {
		t.Error("injected fault not counted in DiskStats")
	}
}

// TestStoreFlipStoredSurfacesErrCorrupt injects a bit-flip into the
// stored bytes of a scratch write (corrupt-on-write). The frame CRC
// captured at plan time no longer matches, so the read fails with
// typed device.ErrCorrupt instead of delivering wrong bytes.
func TestStoreFlipStoredSurfacesErrCorrupt(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	s := newStore(t, b, k)
	sched, err := fault.Parse("flip=disk:0")
	if err != nil {
		t.Fatal(err)
	}
	s.SetInjector(sched)
	run(t, k, func(p *sim.Proc) {
		f, err := s.Create("scratch", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(p, mkBlocks(1, 3, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ReadAt(p, 0, 3); !errors.Is(err, device.ErrCorrupt) {
			t.Fatalf("read of flipped record: %v, want device.ErrCorrupt", err)
		}
	})
}

// TestStoreCorruptOnReadSurfacesErrCorrupt flips a bit of the bytes
// crossing the read syscall (corrupt-on-read): the stored copy is
// intact, only this delivery is damaged — a later re-read succeeds,
// which is what makes ErrCorrupt worth retrying at the join layer.
func TestStoreCorruptOnReadSurfacesErrCorrupt(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	s := newStore(t, b, k)
	run(t, k, func(p *sim.Proc) {
		f, err := s.Create("scratch", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(p, mkBlocks(1, 3, 0)); err != nil {
			t.Fatal(err)
		}
		// Arm after the append so the flip strikes the read delivery.
		sched := (&fault.Schedule{}).AddFlipStored("disk", 0, 1)
		s.SetInjector(readFlipper{sched})
		if _, err := f.ReadAt(p, 0, 3); !errors.Is(err, device.ErrCorrupt) {
			t.Fatalf("read with flipped delivery: %v, want device.ErrCorrupt", err)
		}
		s.SetInjector(nil)
		blks, err := f.ReadAt(p, 0, 3)
		if err != nil || len(blks) != 3 {
			t.Fatalf("re-read after transient delivery corruption: %v", err)
		}
	})
}

// readFlipper adapts a flip= schedule so it fires on reads: the grammar
// scopes flip to writes (stored corruption), and this shim rewrites the
// op direction to model a damaged delivery instead.
type readFlipper struct{ s *fault.Schedule }

func (r readFlipper) Decide(op fault.Op) fault.Decision { return r.s.Decide(op) }
func (r readFlipper) DecideOS(op fault.Op) fault.OSDecision {
	op.Write = true
	return r.s.DecideOS(op)
}

// TestStoreTornWriteTruncatedTail tears the final record of a scratch
// file: only a prefix reaches the OS file, yet the write reports
// success. The short read of the truncated tail surfaces as typed
// device.ErrCorrupt.
func TestStoreTornWriteTruncatedTail(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	s := newStore(t, b, k)
	run(t, k, func(p *sim.Proc) {
		f, err := s.Create("scratch", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(p, mkBlocks(1, 2, 0)); err != nil {
			t.Fatal(err)
		}
		// Tear the final record: the file ends mid-payload.
		s.SetInjector((&fault.Schedule{}).AddTornWrite("disk", 2, 1))
		if err := f.Append(p, mkBlocks(1, 1, 100)); err != nil {
			t.Fatalf("torn write must report success: %v", err)
		}
		if _, err := f.ReadAt(p, 2, 1); !errors.Is(err, device.ErrCorrupt) {
			t.Fatalf("read of torn tail: %v, want device.ErrCorrupt", err)
		}
		// Earlier records are untouched.
		blks, err := f.ReadAt(p, 0, 2)
		if err != nil || len(blks) != 2 {
			t.Fatalf("read of intact prefix: %v", err)
		}
	})
}

// TestDriveOSFaults runs the same OS-level taxonomy through the tape
// spool: oserr is absorbed by device retries, flip on the spooled copy
// surfaces as device.ErrCorrupt.
func TestDriveOSFaults(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	d, err := b.NewDrive(k, "R", device.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Load(tape.NewMedia("t1", 100))
	run(t, k, func(p *sim.Proc) {
		if _, err := d.Append(p, mkBlocks(1, 6, 0)); err != nil {
			t.Fatal(err)
		}
		sched, err := fault.Parse("oserr=R:1")
		if err != nil {
			t.Fatal(err)
		}
		d.SetInjector(sched)
		blks, err := d.ReadAt(p, 0, 6)
		if err != nil || len(blks) != 6 {
			t.Fatalf("read with retryable OS error: %v (%d blocks)", err, len(blks))
		}
		// A flip on the spool's stored copy: WriteAt repoints block 2 to
		// a fresh record whose stored bytes are damaged in flight.
		d.SetInjector((&fault.Schedule{}).AddFlipStored("tape:R", 2, 1))
		if err := d.WriteAt(p, 2, mkBlocks(2, 1, 200)); err != nil {
			t.Fatalf("flipped write must report success: %v", err)
		}
		if _, err := d.ReadAt(p, 2, 1); !errors.Is(err, device.ErrCorrupt) {
			t.Fatalf("read of flipped spool record: %v, want device.ErrCorrupt", err)
		}
	})
}

// TestStallTimeoutsTripBreaker wires a tight per-op deadline and a
// wall-clock stall through one store: the stalled attempt misses its
// deadline, the breaker trips, and the next operation fails fast with
// the device-loss error unit recovery reacts to. Device-layer retries
// are disabled — OS decisions are armed at plan time, so a retry runs
// clean and would heal the stall (that path is covered by
// TestStallRecoveredByRetry).
func TestStallTimeoutsTripBreaker(t *testing.T) {
	b := New(t.TempDir())
	b.OpTimeout = 5 * time.Millisecond
	b.TripAfter = 1
	b.RetryMax = -1
	k := sim.NewKernel()
	s := newStore(t, b, k)
	s.SetInjector((&fault.Schedule{}).AddWallStall("disk", 60*time.Millisecond, 50))
	run(t, k, func(p *sim.Proc) {
		f, err := s.Create("scratch", nil)
		if err != nil {
			t.Fatal(err)
		}
		err = f.Append(p, mkBlocks(1, 2, 0))
		if !errors.Is(err, device.ErrIOTimeout) {
			t.Fatalf("stalled append: %v, want device.ErrIOTimeout", err)
		}
		// The breaker is open now: the next operation never reaches the
		// stalled worker and surfaces the typed device-loss sentinel.
		err = f.Append(p, mkBlocks(1, 2, 0))
		if !errors.Is(err, fault.ErrDeviceLost) || !errors.Is(err, device.ErrDeviceFailed) {
			t.Fatalf("append after trip: %v, want ErrDeviceLost wrapping ErrDeviceFailed", err)
		}
	})
}

// TestStallRecoveredByRetry is the flip side of the breaker test: with
// the default retry policy, one stalled attempt times out, the retry
// re-runs the planned syscalls clean (the armed decision was consumed),
// and the operation — and the device's health — recover.
func TestStallRecoveredByRetry(t *testing.T) {
	b := New(t.TempDir())
	b.OpTimeout = 5 * time.Millisecond
	k := sim.NewKernel()
	s := newStore(t, b, k)
	s.SetInjector((&fault.Schedule{}).AddWallStall("disk", 30*time.Millisecond, 1))
	run(t, k, func(p *sim.Proc) {
		f, err := s.Create("scratch", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(p, mkBlocks(1, 2, 0)); err != nil {
			t.Fatalf("append with one stalled attempt: %v", err)
		}
		blks, err := f.ReadAt(p, 0, 2)
		if err != nil || len(blks) != 2 {
			t.Fatalf("read after recovered stall: %v", err)
		}
	})
}

// TestSyncPathIgnoresDeadlines confirms the synchronous escape hatch
// still works with OS faults armed: no worker, no watchdog, faults
// apply inline.
func TestSyncPathIgnoresDeadlines(t *testing.T) {
	b := New(t.TempDir())
	b.Synchronous = true
	b.OpTimeout = time.Millisecond
	k := sim.NewKernel()
	s := newStore(t, b, k)
	sched, err := fault.Parse("flip=disk:1")
	if err != nil {
		t.Fatal(err)
	}
	s.SetInjector(sched)
	run(t, k, func(p *sim.Proc) {
		f, err := s.Create("scratch", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(p, mkBlocks(1, 3, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ReadAt(p, 0, 3); !errors.Is(err, device.ErrCorrupt) {
			t.Fatalf("inline read of flipped record: %v, want device.ErrCorrupt", err)
		}
	})
}
