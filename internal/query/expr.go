package query

import (
	"fmt"
	"strings"
)

// Side selects which join input a column reference reads.
type Side int

// Join sides.
const (
	SideR Side = iota
	SideS
)

func (s Side) String() string {
	if s == SideR {
		return "R"
	}
	return "S"
}

// Expr is a scalar expression over a joined (R row, S row) pair.
type Expr interface {
	// Eval computes the expression's value.
	Eval(r, s Row) (Value, error)
	// Check verifies column references and type agreement against the
	// two schemas and returns the expression's type.
	Check(rs, ss Schema) (Type, error)
	fmt.Stringer
}

// Col references a column of one side by name.
func Col(side Side, name string) Expr { return colExpr{side, name, -1} }

type colExpr struct {
	side Side
	name string
	idx  int
}

func (c colExpr) String() string { return fmt.Sprintf("%v.%s", c.side, c.name) }

func (c colExpr) schemaFor(rs, ss Schema) Schema {
	if c.side == SideR {
		return rs
	}
	return ss
}

func (c colExpr) Check(rs, ss Schema) (Type, error) {
	sch := c.schemaFor(rs, ss)
	i := sch.ColumnIndex(c.name)
	if i < 0 {
		return 0, fmt.Errorf("query: no column %q on side %v", c.name, c.side)
	}
	return sch[i].Type, nil
}

func (c colExpr) Eval(r, s Row) (Value, error) {
	row := r
	if c.side == SideS {
		row = s
	}
	// Eval runs after bind (see Query.compile), which rewrites column
	// names to indexes; evaluating an unbound Col is a program error.
	if c.idx < 0 {
		return nil, fmt.Errorf("query: unbound column %v", c)
	}
	return row[c.idx], nil
}

// bind resolves the column index so per-row evaluation is a slice
// lookup rather than a name search.
func (c colExpr) bind(rs, ss Schema) (colExpr, error) {
	sch := c.schemaFor(rs, ss)
	i := sch.ColumnIndex(c.name)
	if i < 0 {
		return c, fmt.Errorf("query: no column %q on side %v", c.name, c.side)
	}
	c.idx = i
	return c, nil
}

// Lit is a literal value.
func Lit(v Value) Expr { return litExpr{v} }

type litExpr struct{ v Value }

func (l litExpr) String() string { return fmt.Sprintf("%v", l.v) }

func (l litExpr) Check(Schema, Schema) (Type, error) { return typeOf(l.v) }

func (l litExpr) Eval(Row, Row) (Value, error) { return l.v, nil }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (o CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

// Cmp compares two expressions of the same type. The result is an
// int64 0/1 (there is no separate boolean type).
func Cmp(op CmpOp, a, b Expr) Expr { return cmpExpr{op, a, b} }

type cmpExpr struct {
	op   CmpOp
	a, b Expr
}

func (c cmpExpr) String() string { return fmt.Sprintf("(%v %v %v)", c.a, c.op, c.b) }

func (c cmpExpr) Check(rs, ss Schema) (Type, error) {
	ta, err := c.a.Check(rs, ss)
	if err != nil {
		return 0, err
	}
	tb, err := c.b.Check(rs, ss)
	if err != nil {
		return 0, err
	}
	if ta != tb {
		return 0, fmt.Errorf("query: comparing %v to %v in %v", ta, tb, c)
	}
	return Int64, nil
}

func (c cmpExpr) Eval(r, s Row) (Value, error) {
	va, err := c.a.Eval(r, s)
	if err != nil {
		return nil, err
	}
	vb, err := c.b.Eval(r, s)
	if err != nil {
		return nil, err
	}
	var rel int
	switch a := va.(type) {
	case int64:
		b, ok := vb.(int64)
		if !ok {
			return nil, fmt.Errorf("query: type mismatch in %v", c)
		}
		rel = compare(a, b)
	case float64:
		b, ok := vb.(float64)
		if !ok {
			return nil, fmt.Errorf("query: type mismatch in %v", c)
		}
		rel = compare(a, b)
	case string:
		b, ok := vb.(string)
		if !ok {
			return nil, fmt.Errorf("query: type mismatch in %v", c)
		}
		rel = strings.Compare(a, b)
	default:
		return nil, fmt.Errorf("query: cannot compare %T", va)
	}
	var ok bool
	switch c.op {
	case Eq:
		ok = rel == 0
	case Ne:
		ok = rel != 0
	case Lt:
		ok = rel < 0
	case Le:
		ok = rel <= 0
	case Gt:
		ok = rel > 0
	case Ge:
		ok = rel >= 0
	}
	if ok {
		return int64(1), nil
	}
	return int64(0), nil
}

func compare[T int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// And is true when every operand is non-zero.
func And(es ...Expr) Expr { return boolExpr{all: true, es: es} }

// Or is true when any operand is non-zero.
func Or(es ...Expr) Expr { return boolExpr{all: false, es: es} }

type boolExpr struct {
	all bool
	es  []Expr
}

func (b boolExpr) String() string {
	op := " OR "
	if b.all {
		op = " AND "
	}
	parts := make([]string, len(b.es))
	for i, e := range b.es {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, op) + ")"
}

func (b boolExpr) Check(rs, ss Schema) (Type, error) {
	if len(b.es) == 0 {
		return 0, fmt.Errorf("query: empty boolean expression")
	}
	for _, e := range b.es {
		t, err := e.Check(rs, ss)
		if err != nil {
			return 0, err
		}
		if t != Int64 {
			return 0, fmt.Errorf("query: boolean operand %v is %v, want int64", e, t)
		}
	}
	return Int64, nil
}

func (b boolExpr) Eval(r, s Row) (Value, error) {
	for _, e := range b.es {
		v, err := e.Eval(r, s)
		if err != nil {
			return nil, err
		}
		truthy := v.(int64) != 0
		if b.all && !truthy {
			return int64(0), nil
		}
		if !b.all && truthy {
			return int64(1), nil
		}
	}
	if b.all {
		return int64(1), nil
	}
	return int64(0), nil
}

// Not negates a boolean expression.
func Not(e Expr) Expr { return notExpr{e} }

type notExpr struct{ e Expr }

func (n notExpr) String() string { return "NOT " + n.e.String() }

func (n notExpr) Check(rs, ss Schema) (Type, error) {
	t, err := n.e.Check(rs, ss)
	if err != nil {
		return 0, err
	}
	if t != Int64 {
		return 0, fmt.Errorf("query: NOT of %v", t)
	}
	return Int64, nil
}

func (n notExpr) Eval(r, s Row) (Value, error) {
	v, err := n.e.Eval(r, s)
	if err != nil {
		return nil, err
	}
	if v.(int64) != 0 {
		return int64(0), nil
	}
	return int64(1), nil
}

// exprSides reports which join sides an expression reads.
func exprSides(e Expr) (usesR, usesS bool) {
	switch x := e.(type) {
	case colExpr:
		if x.side == SideR {
			return true, false
		}
		return false, true
	case litExpr:
		return false, false
	case cmpExpr:
		ar, as := exprSides(x.a)
		br, bs := exprSides(x.b)
		return ar || br, as || bs
	case boolExpr:
		for _, sub := range x.es {
			r, s := exprSides(sub)
			usesR = usesR || r
			usesS = usesS || s
		}
		return usesR, usesS
	case notExpr:
		return exprSides(x.e)
	}
	return true, true // unknown expression: assume both
}

// splitConjuncts partitions a predicate into R-only, S-only and
// residual (both-sided) parts for pushdown. Only a top-level AND is
// split; anything else is classified whole.
func splitConjuncts(where Expr) (rOnly, sOnly, residual []Expr) {
	conjuncts := []Expr{where}
	if b, ok := where.(boolExpr); ok && b.all {
		conjuncts = b.es
	}
	for _, c := range conjuncts {
		usesR, usesS := exprSides(c)
		switch {
		case usesR && !usesS:
			rOnly = append(rOnly, c)
		case usesS && !usesR:
			sOnly = append(sOnly, c)
		default:
			residual = append(residual, c)
		}
	}
	return rOnly, sOnly, residual
}

// bindExpr rewrites column references to bound indexes, recursively.
func bindExpr(e Expr, rs, ss Schema) (Expr, error) {
	switch x := e.(type) {
	case colExpr:
		return x.bind(rs, ss)
	case cmpExpr:
		a, err := bindExpr(x.a, rs, ss)
		if err != nil {
			return nil, err
		}
		b, err := bindExpr(x.b, rs, ss)
		if err != nil {
			return nil, err
		}
		return cmpExpr{x.op, a, b}, nil
	case boolExpr:
		out := boolExpr{all: x.all, es: make([]Expr, len(x.es))}
		for i, sub := range x.es {
			bound, err := bindExpr(sub, rs, ss)
			if err != nil {
				return nil, err
			}
			out.es[i] = bound
		}
		return out, nil
	case notExpr:
		sub, err := bindExpr(x.e, rs, ss)
		if err != nil {
			return nil, err
		}
		return notExpr{sub}, nil
	default:
		return e, nil
	}
}
