package join

import (
	"errors"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/device/simdev"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/tape"
)

// simNewKernelForSM and mkSMBlocks are small local helpers for the
// workspace tests.
func simNewKernelForSM() *sim.Kernel { return sim.NewKernel() }

func mkSMBlocks(n int, base uint64) []block.Block {
	out := make([]block.Block, n)
	for i := range out {
		b := block.NewBuilder(1)
		b.Append(block.Tuple{Key: base + uint64(i)})
		out[i] = b.Finish()
	}
	return out
}

// smSpec gives the sort-merge baseline the generous scratch it needs.
func smSpec(t *testing.T, rBlocks, sBlocks int64) Spec {
	t.Helper()
	mR := tape.NewMedia("sm-r", (rBlocks+sBlocks)*3+64)
	mS := tape.NewMedia("sm-s", (rBlocks+sBlocks)*3+64)
	r, err := relation.WriteToTape(relation.Config{
		Name: "R", Tag: 1, Blocks: rBlocks, TuplesPerBlock: 4, KeySpace: 150, Seed: 11,
	}, mR)
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: sBlocks, TuplesPerBlock: 4, KeySpace: 150, Seed: 22,
	}, mS)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{R: r, S: s}
}

func TestTTSMProducesExactOutput(t *testing.T) {
	spec := smSpec(t, 24, 96)
	want := relation.ExpectedMatches(spec.R, spec.S)
	sink := &CountSink{}
	result, err := Run(TTSM{}, spec, fastRes(10, 64), sink)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Matches != want {
		t.Fatalf("matches = %d, want %d", sink.Matches, want)
	}
	// Sorting both relations takes multiple passes over each.
	if result.Stats.RScans < 2 {
		t.Fatalf("RScans = %d, want >= 2 (run formation + merges)", result.Stats.RScans)
	}
	if result.Stats.TapeBlocksWritten < spec.R.Region.N+spec.S.Region.N {
		t.Fatalf("tape writes = %d, want >= |R|+|S|", result.Stats.TapeBlocksWritten)
	}
}

func TestTTSMChecksumMatchesHashMethods(t *testing.T) {
	spec := smSpec(t, 24, 96)
	smSink := &CountSink{}
	if _, err := Run(TTSM{}, spec, fastRes(10, 64), smSink); err != nil {
		t.Fatal(err)
	}
	spec2 := smSpec(t, 24, 96)
	ghSink := &CountSink{}
	if _, err := Run(DTGH{}, spec2, fastRes(10, 64), ghSink); err != nil {
		t.Fatal(err)
	}
	if smSink.Matches != ghSink.Matches || smSink.KeySum != ghSink.KeySum {
		t.Fatalf("TT-SM (%d/%d) disagrees with DT-GH (%d/%d)",
			smSink.Matches, smSink.KeySum, ghSink.Matches, ghSink.KeySum)
	}
}

func TestTTSMTinyMemoryManyPasses(t *testing.T) {
	// M = 4 blocks forces 2-way merges: many passes, still exact.
	spec := smSpec(t, 16, 48)
	want := relation.ExpectedMatches(spec.R, spec.S)
	sink := &CountSink{}
	result, err := Run(TTSM{}, spec, fastRes(4, 32), sink)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Matches != want {
		t.Fatalf("matches = %d, want %d", sink.Matches, want)
	}
	if result.Stats.Iterations < 3 {
		t.Fatalf("merge passes = %d, want several at M=4", result.Stats.Iterations)
	}
}

func TestTTSMFeasibility(t *testing.T) {
	spec := smSpec(t, 24, 96)
	if err := (TTSM{}).Check(spec, fastRes(3, 64)); !errors.Is(err, ErrNeedMemory) {
		t.Fatalf("err = %v, want ErrNeedMemory", err)
	}
	// Tight cartridges: no workspace room.
	mR := tape.NewMedia("t1", 130)
	mS := tape.NewMedia("t2", 130)
	r, _ := relation.WriteToTape(relation.Config{
		Name: "R", Tag: 1, Blocks: 24, TuplesPerBlock: 2, KeySpace: 100, Seed: 1}, mR)
	s, _ := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: 96, TuplesPerBlock: 2, KeySpace: 100, Seed: 2}, mS)
	if err := (TTSM{}).Check(Spec{R: r, S: s}, fastRes(10, 64)); !errors.Is(err, ErrNeedTapeScratch) {
		t.Fatalf("err = %v, want ErrNeedTapeScratch", err)
	}
}

func TestTTSMLosesToHashingOnRealTape(t *testing.T) {
	// The baseline's raison d'etre: with DLT-4000 seeks, interleaved
	// merge reads make sort-merge far slower than CTT-GH.
	run := func(m Method) time.Duration {
		spec := smSpec(t, 24, 96)
		res := fastRes(8, 24)
		res.Tape = tape.DLT4000()
		result, err := Run(m, spec, res, nil)
		if err != nil {
			t.Fatal(err)
		}
		return result.Stats.Response
	}
	sm := run(TTSM{})
	gh := run(CTTGH{})
	if sm < 2*gh {
		t.Fatalf("TT-SM (%v) should lose to CTT-GH (%v) by a wide margin", sm, gh)
	}
}

func TestBySymbolFindsBaseline(t *testing.T) {
	m, err := BySymbol("TT-SM")
	if err != nil || m.Symbol() != "TT-SM" {
		t.Fatalf("BySymbol: %v %v", m, err)
	}
	if len(AllMethods()) != 9 {
		t.Fatalf("AllMethods = %d, want 9", len(AllMethods()))
	}
	// Methods() remains the paper's seven.
	if len(Methods()) != 7 {
		t.Fatalf("Methods = %d, want 7", len(Methods()))
	}
}

func TestSMFanIn(t *testing.T) {
	cases := []struct {
		m, ioChunk int64
		minK       int
	}{
		{4, 32, 2},
		{12, 32, 2},
		{48, 32, 2},
		{256, 32, 4},
		{1024, 32, 4},
	}
	for _, c := range cases {
		k, inBuf, outBuf := smFanIn(c.m, c.ioChunk)
		if k < c.minK {
			t.Errorf("smFanIn(%d): k = %d, want >= %d", c.m, k, c.minK)
		}
		if inBuf < 1 || outBuf < 1 {
			t.Errorf("smFanIn(%d): inBuf=%d outBuf=%d", c.m, inBuf, outBuf)
		}
		if int64(k)*inBuf+outBuf > c.m {
			t.Errorf("smFanIn(%d): k*inBuf+outBuf = %d exceeds M", c.m, int64(k)*inBuf+outBuf)
		}
	}
}

func TestSMWorkspaceOverwriteReuse(t *testing.T) {
	k := simNewKernelForSM()
	cfg := tape.DriveConfig{NativeRate: 64 * 1024, CompressionFactor: 1}
	d := simdev.Drive{Drive: tape.NewDrive(k, "w", cfg)}
	m := tape.NewMedia("t", 100)
	m.AppendSetup(mkSMBlocks(5, 0))
	d.Load(m)
	ws := &smWorkspace{drive: d}
	k.Spawn("p", func(p *sim.Proc) {
		// Pass 1 appends at EOD=5.
		r1, err := ws.write(p, mkSMBlocks(4, 100))
		if err != nil {
			t.Error(err)
		}
		if r1.Start != 5 || r1.N != 4 {
			t.Errorf("pass1 region = %+v", r1)
		}
		// Pass 2 overwrites in place from the same base.
		ws.reset()
		r2, err := ws.write(p, mkSMBlocks(3, 200))
		if err != nil {
			t.Error(err)
		}
		if r2.Start != 5 || r2.N != 3 {
			t.Errorf("pass2 region = %+v", r2)
		}
		// Contents reflect the second pass.
		blks, err := m.ReadSetup(tape.Region{Start: 5, N: 3})
		if err != nil {
			t.Error(err)
		}
		_, tuples := blks[0].MustDecode()
		if tuples[0].Key != 200 {
			t.Errorf("key = %d, want 200", tuples[0].Key)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestProbeNarrowSkipsMatchlessStretches runs TT-SM on a pair where
// R's keys cluster at the bottom of a wide keyspace S covers uniformly:
// the trailing S stream has long sorted stretches with no R key, which
// the fence-index narrowing must leap over — with output identical to
// the plain merge and no more virtual time.
func TestProbeNarrowSkipsMatchlessStretches(t *testing.T) {
	mkSpec := func() Spec {
		mR := tape.NewMedia("pn-r", 1024)
		mS := tape.NewMedia("pn-s", 1024)
		r, err := relation.WriteToTape(relation.Config{
			Name: "R", Tag: 1, Blocks: 16, TuplesPerBlock: 4, KeySpace: 100000,
			HotFraction: 0.0005, HotProb: 0.95, Seed: 31,
		}, mR)
		if err != nil {
			t.Fatal(err)
		}
		s, err := relation.WriteToTape(relation.Config{
			Name: "S", Tag: 2, Blocks: 128, TuplesPerBlock: 4, KeySpace: 100000, Seed: 32,
		}, mS)
		if err != nil {
			t.Fatal(err)
		}
		return Spec{R: r, S: s}
	}
	run := func(narrow bool) (Stats, int64, uint64) {
		sink := &CountSink{}
		res := fastRes(10, 64)
		res.ProbeNarrow = narrow
		result, err := Run(TTSM{}, mkSpec(), res, sink)
		if err != nil {
			t.Fatal(err)
		}
		return result.Stats, sink.Matches, sink.KeySum
	}
	plain, plainMatches, plainSum := run(false)
	if plain.ProbeJumps != 0 || plain.ProbeSkippedBlocks != 0 {
		t.Fatalf("plain run recorded probe jumps: %+v", plain)
	}
	narrowed, matches, sum := run(true)
	if matches != plainMatches || sum != plainSum {
		t.Fatalf("narrowed output differs: %d/%d vs %d/%d", matches, sum, plainMatches, plainSum)
	}
	if narrowed.ProbeJumps < 1 || narrowed.ProbeSkippedBlocks < 1 {
		t.Fatalf("no narrowing happened: jumps=%d skipped=%d",
			narrowed.ProbeJumps, narrowed.ProbeSkippedBlocks)
	}
	if narrowed.TapeBlocksRead >= plain.TapeBlocksRead {
		t.Fatalf("narrowing read %d tape blocks, plain read %d",
			narrowed.TapeBlocksRead, plain.TapeBlocksRead)
	}
	if narrowed.Response > plain.Response {
		t.Fatalf("narrowing slower: %v vs %v", narrowed.Response, plain.Response)
	}
	t.Logf("jumps=%d skipped=%d blocks, response %v -> %v",
		narrowed.ProbeJumps, narrowed.ProbeSkippedBlocks, plain.Response, narrowed.Response)
}
