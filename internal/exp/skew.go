package exp

import (
	"fmt"
	"time"

	tapejoin "repro"
)

// SkewRow is one (backend, method) point of the skew experiment: the
// method's virtual response on uniform keys, on Zipf(0.99) keys under
// the uniform hash planner (paying the multi-load fallback when a
// bucket outgrows memory), and on the same Zipf input with skew-aware
// partitioning.
type SkewRow struct {
	Backend string
	Method  tapejoin.Method
	// Uniform, Zipf and ZipfAware are virtual response times; the
	// same Zipf input feeds the last two, so their difference is the
	// planner's doing alone.
	Uniform   time.Duration
	Zipf      time.Duration
	ZipfAware time.Duration
	// HeavyHitters and SkewPartitions report the ZipfAware run's plan
	// repair (zero for the non-hash methods, which ignore the knob).
	HeavyHitters   int
	SkewPartitions int
	// Matches is the Zipf join's cardinality; the experiment verifies
	// the two Zipf runs also agree on OutputHash before reporting.
	Matches  int64
	Feasible bool
	Reason   string
}

// skewMethods is every runnable method: the paper's seven plus the
// sort-merge and streaming baselines.
func skewMethods() []tapejoin.Method {
	return append(tapejoin.Methods(), tapejoin.TTSM, tapejoin.SYMH)
}

// skewGeometry returns the experiment's sizes: memory is squeezed so
// the uniform planner's largest Zipf bucket (uniform share plus the
// heaviest key's ~12% of R) overflows one load and pays the
// multi-load fallback, yet one load still holds the heaviest single
// key — the regime where isolating it genuinely removes the penalty
// instead of relabeling an unsplittable partition. M >= sqrt(|R|)
// keeps the Grace Hash family feasible throughout.
func skewGeometry(scale float64, quick bool) (rMB, sMB int64, memMB, diskMB float64) {
	if quick {
		return 4, 16, 0.75, 24
	}
	return 16, scaleMB(64, scale), 2.5, 96
}

// skewRun executes one join: Zipf(theta) keys when theta > 0, with or
// without skew-aware partitioning.
func skewRun(backend string, method tapejoin.Method, rMB, sMB int64,
	memMB, diskMB, theta float64, skewAware bool) (*tapejoin.Result, error) {
	sys, err := newSystem(tapejoin.Config{
		Backend:   backend,
		MemoryMB:  memMB,
		DiskMB:    diskMB,
		Profile:   tapejoin.DLT4000,
		SkewAware: skewAware,
	})
	if err != nil {
		return nil, err
	}
	// TT-SM sorts in place on tape (~1.5×(|R|+|S|) of workspace beyond
	// the resident relation); the hash methods just need the other
	// relation's worth of scratch, which this covers too.
	tR, err := sys.NewTape("tape-R", 3*(rMB+sMB))
	if err != nil {
		return nil, err
	}
	tS, err := sys.NewTape("tape-S", 3*(sMB+rMB))
	if err != nil {
		return nil, err
	}
	r, err := sys.CreateRelation(tR, tapejoin.RelationConfig{
		Name: "R", SizeMB: rMB, TuplesPerBlock: 4, KeySpace: 4096,
		ZipfTheta: theta, Seed: 11,
	})
	if err != nil {
		return nil, err
	}
	s, err := sys.CreateRelation(tS, tapejoin.RelationConfig{
		Name: "S", SizeMB: sMB, TuplesPerBlock: 4, KeySpace: 4096,
		ZipfTheta: theta, Seed: 22,
	})
	if err != nil {
		return nil, err
	}
	return sys.Join(method, r, s)
}

// Skew runs the skew experiment: all nine methods on both storage
// backends, uniform vs Zipf(0.99) keys, and — on the Zipf input — the
// uniform planner vs skew-aware partitioning. The two Zipf runs of
// each method must produce the identical output multiset (OutputHash);
// a mismatch fails the experiment. quick shrinks the workload for the
// CI smoke step.
func Skew(scale float64, quick bool) ([]SkewRow, error) {
	const theta = 0.99
	rMB, sMB, memMB, diskMB := skewGeometry(scale, quick)
	backends := []string{"sim", "file"}
	var rows []SkewRow
	for _, backend := range backends {
		for _, method := range skewMethods() {
			row := SkewRow{Backend: backend, Method: method}
			uni, err := skewRun(backend, method, rMB, sMB, memMB, diskMB, 0, false)
			if err != nil {
				row.Reason = err.Error()
				rows = append(rows, row)
				continue
			}
			zipf, err := skewRun(backend, method, rMB, sMB, memMB, diskMB, theta, false)
			if err != nil {
				row.Reason = err.Error()
				rows = append(rows, row)
				continue
			}
			aware, err := skewRun(backend, method, rMB, sMB, memMB, diskMB, theta, true)
			if err != nil {
				row.Reason = err.Error()
				rows = append(rows, row)
				continue
			}
			if zipf.Stats.OutputHash != aware.Stats.OutputHash ||
				zipf.Stats.Matches != aware.Stats.Matches {
				return nil, fmt.Errorf("skew: %s/%s: skew-aware output diverges from uniform planner (%d/%d matches)",
					backend, method, aware.Stats.Matches, zipf.Stats.Matches)
			}
			row.Feasible = true
			row.Uniform = uni.Stats.Response
			row.Zipf = zipf.Stats.Response
			row.ZipfAware = aware.Stats.Response
			row.HeavyHitters = aware.Stats.HeavyHitters
			row.SkewPartitions = aware.Stats.SkewPartitions
			row.Matches = zipf.Stats.Matches
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// SkewVerdict enforces the experiment's contract on the sim backend:
// every Grace Hash method must be feasible, detect the skew (a
// non-trivial plan), and at least one of them must beat the uniform
// planner on the Zipf input in virtual time.
func SkewVerdict(rows []SkewRow) error {
	gh := map[tapejoin.Method]bool{
		tapejoin.DTGH: true, tapejoin.CDTGH: true,
		tapejoin.CTTGH: true, tapejoin.TTGH: true,
	}
	wins := 0
	seen := 0
	for _, r := range rows {
		if r.Backend != "sim" || !gh[r.Method] {
			continue
		}
		seen++
		if !r.Feasible {
			return fmt.Errorf("skew: %s infeasible on sim: %s", r.Method, r.Reason)
		}
		if r.SkewPartitions == 0 {
			return fmt.Errorf("skew: %s: plan stayed trivial under Zipf 0.99", r.Method)
		}
		if r.ZipfAware < r.Zipf {
			wins++
		}
	}
	if seen == 0 {
		return fmt.Errorf("skew: no GH rows on the sim backend")
	}
	if wins == 0 {
		return fmt.Errorf("skew: skew-aware partitioning beat the uniform planner for no GH method")
	}
	return nil
}
