// Package exp defines the paper's evaluation as runnable experiments:
// Table 3 (Experiment 1), Figure 4 (buffer utilization), Figure 5
// (Experiment 2), Figures 6–11 (Experiment 3), and the analytical
// Figures 1–3. Each experiment returns structured rows that the
// paperbench command and the benchmark harness print in the paper's
// format.
//
// Every experiment takes a scale factor: 1.0 reproduces the paper's
// exact sizes (|S| up to 10 000 MB); smaller scales shrink the
// workload while preserving each experiment's geometry. Experiment 1
// scales |R|, |S| and D linearly and M by sqrt(scale), which keeps the
// Grace Hash constraint M >= sqrt(|R|) satisfiable; Experiments 2 and
// 3 study the ratios among |R|, M and D, so only |S| — the pure
// workload axis — is scaled.
package exp

import (
	"fmt"
	"math"
	"time"

	tapejoin "repro"
	"repro/internal/obs/obsserver"
)

// ObsServer, when set before experiments run (paperbench -obs-addr),
// is attached to every system the experiments build: one live scrape
// endpoint whose /metrics, /health and /flight follow whichever run
// is currently in flight. Attaching a server implies observability.
var ObsServer *obsserver.Server

// newSystem builds a system, attaching the shared ObsServer when one
// is configured.
func newSystem(cfg tapejoin.Config) (*tapejoin.System, error) {
	cfg.ObsServer = ObsServer
	return tapejoin.NewSystem(cfg)
}

// scaleMB scales a paper size, keeping at least 1 MB.
func scaleMB(mb int64, scale float64) int64 {
	v := int64(math.Round(float64(mb) * scale))
	if v < 1 {
		v = 1
	}
	return v
}

// scaleMBf scales a fractional-MB quantity, keeping at least 2 blocks.
func scaleMBf(mb float64, scale float64) float64 {
	v := mb * scale
	if v < 2.0/float64(tapejoin.BlocksPerMB) {
		v = 2.0 / float64(tapejoin.BlocksPerMB)
	}
	return v
}

// buildJoin creates a system and a pair of relations sized in MB, with
// scratch space for tape-tape methods.
func buildJoin(cfg tapejoin.Config, rMB, sMB int64, seed int64) (*tapejoin.System, *tapejoin.Relation, *tapejoin.Relation, error) {
	sys, err := newSystem(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	// Scratch: CTT-GH appends hashed R to R's tape; TT-GH appends
	// hashed S to R's tape and hashed R to S's tape.
	tR, err := sys.NewTape("tape-R", rMB+sMB+2)
	if err != nil {
		return nil, nil, nil, err
	}
	tS, err := sys.NewTape("tape-S", sMB+rMB+2)
	if err != nil {
		return nil, nil, nil, err
	}
	r, err := sys.CreateRelation(tR, tapejoin.RelationConfig{
		Name: "R", SizeMB: rMB, TuplesPerBlock: 2, KeySpace: 1 << 20, Seed: seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := sys.CreateRelation(tS, tapejoin.RelationConfig{
		Name: "S", SizeMB: sMB, TuplesPerBlock: 2, KeySpace: 1 << 20, Seed: seed + 1,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, r, s, nil
}

// Table3Row is one join of Experiment 1 (Section 7).
type Table3Row struct {
	Join     string
	SMB, RMB int64
	DMB      int64
	BareRead time.Duration // reading S and R once, no processing
	StepI    time.Duration
	Total    time.Duration
	RelCost  float64 // Total / BareRead
}

// Table3 reproduces Experiment 1: Concurrent Tape–Tape Grace Hash Join
// over four parameter points with |S| from 1 000 to 10 000 MB,
// D = |R|/5 on two disks and M = 16 MB, on the calibrated DLT-4000
// profile.
func Table3(scale float64) ([]Table3Row, error) {
	points := []struct {
		name     string
		sMB, rMB int64
	}{
		{"Join I", 1000, 500},
		{"Join II", 2500, 1250},
		{"Join III", 5000, 2500},
		{"Join IV", 10000, 2500},
	}
	rows := make([]Table3Row, 0, len(points))
	for _, pt := range points {
		sMB := scaleMB(pt.sMB, scale)
		rMB := scaleMB(pt.rMB, scale)
		dMB := float64(rMB) / 5
		cfg := tapejoin.Config{
			MemoryMB: scaleMBf(16, math.Sqrt(scale)),
			DiskMB:   dMB,
			Profile:  tapejoin.DLT4000,
		}
		sys, r, s, err := buildJoin(cfg, rMB, sMB, 1000)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pt.name, err)
		}
		res, err := sys.Join(tapejoin.CTTGH, r, s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pt.name, err)
		}
		bare := sys.BareReadTime(float64(sMB + rMB))
		rows = append(rows, Table3Row{
			Join: pt.name, SMB: sMB, RMB: rMB, DMB: int64(dMB + 0.5),
			BareRead: bare,
			StepI:    res.Stats.StepI,
			Total:    res.Stats.Response,
			RelCost:  float64(res.Stats.Response) / float64(bare),
		})
	}
	return rows, nil
}

// Fig4Point is one sample of the disk-buffer utilization trace
// (Section 7, Figure 4).
type Fig4Point struct {
	Seconds    float64
	EvenPct    float64 // even-iteration usage, % of buffer
	OddPct     float64
	TotalPct   float64
	CapacityMB float64
}

// Figure4 reproduces the interleaved double-buffering utilization
// trace of CTT-GH Step II at the Join III parameters.
func Figure4(scale float64) ([]Fig4Point, error) {
	sMB := scaleMB(5000, scale)
	rMB := scaleMB(2500, scale)
	cfg := tapejoin.Config{
		MemoryMB: scaleMBf(16, math.Sqrt(scale)),
		DiskMB:   float64(rMB) / 5,
		Profile:  tapejoin.DLT4000,
	}
	sys, r, s, err := buildJoin(cfg, rMB, sMB, 1000)
	if err != nil {
		return nil, err
	}
	res, err := sys.Join(tapejoin.CTTGH, r, s)
	if err != nil {
		return nil, err
	}
	out := make([]Fig4Point, 0, len(res.BufferTrace))
	capMB := res.BufferCapacityMB
	for _, smp := range res.BufferTrace {
		out = append(out, Fig4Point{
			Seconds:    smp.Seconds,
			EvenPct:    100 * smp.EvenMB / capMB,
			OddPct:     100 * smp.OddMB / capMB,
			TotalPct:   100 * (smp.EvenMB + smp.OddMB) / capMB,
			CapacityMB: capMB,
		})
	}
	return out, nil
}

// Fig5Row is one disk-space point of Experiment 2 (Section 8).
type Fig5Row struct {
	DiskMB   float64
	CDTGH    time.Duration // 0 when infeasible
	CTTGH    time.Duration
	CDTGHOk  bool
	CDTGHWhy string
}

// Figure5 reproduces Experiment 2: response time of CDT-GH and CTT-GH
// as disk space shrinks from 3|R| to 0.5|R|, with |R| = 18 MB,
// M = 0.1|R|, |S| = 1000 MB.
func Figure5(scale float64) ([]Fig5Row, error) {
	rMB := int64(18) // the R/M/D geometry is the experiment; only |S| scales
	sMB := scaleMB(1000, scale)
	fractions := []float64{3, 2.5, 2, 1.5, 1.25, 1.11, 1, 0.75, 0.5}
	rows := make([]Fig5Row, 0, len(fractions))
	for _, f := range fractions {
		dMB := f * float64(rMB)
		cfg := tapejoin.Config{
			MemoryMB: 0.1 * float64(rMB),
			DiskMB:   dMB,
			Profile:  tapejoin.DLT4000,
		}
		row := Fig5Row{DiskMB: dMB}

		sys, r, s, err := buildJoin(cfg, rMB, sMB, 2000)
		if err != nil {
			return nil, err
		}
		if res, err := sys.Join(tapejoin.CDTGH, r, s); err == nil {
			row.CDTGH = res.Stats.Response
			row.CDTGHOk = true
		} else {
			row.CDTGHWhy = err.Error()
		}

		// Fresh tapes for the tape-tape run.
		sys2, r2, s2, err := buildJoin(cfg, rMB, sMB, 2000)
		if err != nil {
			return nil, err
		}
		res, err := sys2.Join(tapejoin.CTTGH, r2, s2)
		if err != nil {
			return nil, fmt.Errorf("CTT-GH at D=%.1f MB: %w", dMB, err)
		}
		row.CTTGH = res.Stats.Response
		rows = append(rows, row)
	}
	return rows, nil
}

// Exp3Row is one (method, memory) point of Experiment 3 (Section 9).
type Exp3Row struct {
	Method   tapejoin.Method
	MemFrac  float64 // M / |R|
	Feasible bool
	Reason   string

	Response    time.Duration
	Overhead    float64 // (response - optimum) / optimum
	DiskSpaceMB float64 // Figure 6
	DiskIOMB    float64 // Figure 7
}

// exp3Methods are the disk–tape methods compared in Figures 6–11.
var exp3Methods = []tapejoin.Method{
	tapejoin.DTNB, tapejoin.CDTNBMB, tapejoin.CDTNBDB, tapejoin.DTGH, tapejoin.CDTGH,
}

// Exp3MemFractions is the memory sweep of Experiment 3 (fractions of
// |R|).
var Exp3MemFractions = []float64{0.07, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Experiment3 reproduces Section 9: disk–tape joins with |R| = 18 MB
// comparable to M, |S| = 1000 MB, D = 50 MB, sweeping memory from
// 0.07|R| to |R| at the given compressibility (the paper's Figures
// 6–9 use 25%, Figure 10 uses 0%, Figure 11 uses 50%).
func Experiment3(scale float64, compression tapejoin.Compression) ([]Exp3Row, error) {
	rMB := int64(18) // the M/|R| sweep is the experiment; only |S| scales
	sMB := scaleMB(1000, scale)
	dMB := float64(50)

	var rows []Exp3Row
	for _, frac := range Exp3MemFractions {
		for _, method := range exp3Methods {
			cfg := tapejoin.Config{
				MemoryMB:    frac * float64(rMB),
				DiskMB:      dMB,
				Profile:     tapejoin.DLT4000,
				Compression: compression,
			}
			row := Exp3Row{Method: method, MemFrac: frac}
			sys, r, s, err := buildJoin(cfg, rMB, sMB, 3000)
			if err != nil {
				return nil, err
			}
			res, err := sys.Join(method, r, s)
			if err != nil {
				row.Reason = err.Error()
				rows = append(rows, row)
				continue
			}
			optimum := sys.BareReadTime(float64(sMB))
			row.Feasible = true
			row.Response = res.Stats.Response
			row.Overhead = float64(res.Stats.Response-optimum) / float64(optimum)
			row.DiskSpaceMB = res.Stats.DiskPeakMB
			row.DiskIOMB = res.Stats.DiskTrafficMB()
			rows = append(rows, row)
		}
	}
	return rows, nil
}
