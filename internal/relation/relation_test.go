package relation

import (
	"math"
	"testing"

	"repro/internal/hashutil"
	"repro/internal/tape"
)

func cfgR() Config {
	return Config{
		Name:           "R",
		Tag:            1,
		Blocks:         10,
		TuplesPerBlock: 8,
		KeySpace:       100,
		PayloadBytes:   4,
		Seed:           42,
	}
}

func TestWriteToTape(t *testing.T) {
	m := tape.NewMedia("t", 100)
	r, err := WriteToTape(cfgR(), m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Region.N != 10 || r.Region.Start != 0 {
		t.Fatalf("region = %+v", r.Region)
	}
	if m.EOD() != 10 {
		t.Fatalf("EOD = %d", m.EOD())
	}
	if r.Tuples() != 80 {
		t.Fatalf("tuples = %d, want 80", r.Tuples())
	}
}

func TestWriteToTapeTooBig(t *testing.T) {
	m := tape.NewMedia("t", 5)
	if _, err := WriteToTape(cfgR(), m); err == nil {
		t.Fatal("want error for oversized relation")
	}
}

func TestValidate(t *testing.T) {
	good := cfgR()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Blocks = 0 },
		func(c *Config) { c.TuplesPerBlock = 0 },
		func(c *Config) { c.KeySpace = 0 },
		func(c *Config) { c.HotFraction = 2 },
		func(c *Config) { c.HotProb = -1 },
		func(c *Config) { c.PayloadBytes = -1 },
	}
	for i, mutate := range cases {
		c := cfgR()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	m1 := tape.NewMedia("t1", 100)
	m2 := tape.NewMedia("t2", 100)
	r1, _ := WriteToTape(cfgR(), m1)
	r2, _ := WriteToTape(cfgR(), m2)
	c1, c2 := r1.KeyCounts(), r2.KeyCounts()
	if len(c1) != len(c2) {
		t.Fatalf("distinct keys differ: %d vs %d", len(c1), len(c2))
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("key %d: %d vs %d", k, v, c2[k])
		}
	}
}

func TestKeyCountsMatchTapeContents(t *testing.T) {
	m := tape.NewMedia("t", 100)
	r, _ := WriteToTape(cfgR(), m)
	counts := r.KeyCounts()
	var total int64
	for _, v := range counts {
		total += v
	}
	if total != r.Tuples() {
		t.Fatalf("counts cover %d tuples, want %d", total, r.Tuples())
	}
	// Decode the tape blocks and compare key multiset.
	fromTape := make(map[uint64]int64)
	blks, err := m.ReadSetup(r.Region)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range blks {
		tag, tuples := blk.MustDecode()
		if tag != r.Tag {
			t.Fatalf("tag = %d", tag)
		}
		for _, tp := range tuples {
			fromTape[tp.Key]++
			if len(tp.Payload) != r.PayloadBytes {
				t.Fatalf("payload = %d bytes", len(tp.Payload))
			}
		}
	}
	for k, v := range counts {
		if fromTape[k] != v {
			t.Fatalf("key %d: generator says %d, tape has %d", k, v, fromTape[k])
		}
	}
}

func TestExpectedMatchesSelfJoin(t *testing.T) {
	// Self-join cardinality equals sum of squared multiplicities.
	m := tape.NewMedia("t", 100)
	r, _ := WriteToTape(cfgR(), m)
	var want int64
	for _, v := range r.KeyCounts() {
		want += v * v
	}
	if got := ExpectedMatches(r, r); got != want {
		t.Fatalf("self-join = %d, want %d", got, want)
	}
}

func TestExpectedMatchesDisjointKeySpaces(t *testing.T) {
	m := tape.NewMedia("t", 200)
	r, _ := WriteToTape(cfgR(), m)
	sCfg := cfgR()
	sCfg.Name, sCfg.Tag, sCfg.Seed = "S", 2, 7
	sCfg.KeySpace = 100
	s, _ := WriteToTape(sCfg, m)
	got := ExpectedMatches(r, s)
	// Overlapping uniform key spaces of 100 with 80 tuples each:
	// expect roughly 80*80/100 = 64 matches; exact value is
	// deterministic, just sanity-bound it.
	if got < 20 || got > 150 {
		t.Fatalf("matches = %d, outside sane range", got)
	}
}

func TestSkewedGenerator(t *testing.T) {
	c := cfgR()
	c.Blocks = 100
	c.KeySpace = 1000
	c.HotFraction = 0.01 // keys [0,10)
	c.HotProb = 0.5
	m := tape.NewMedia("t", 200)
	r, err := WriteToTape(c, m)
	if err != nil {
		t.Fatal(err)
	}
	counts := r.KeyCounts()
	var hot int64
	for k, v := range counts {
		if k < 10 {
			hot += v
		}
	}
	frac := float64(hot) / float64(r.Tuples())
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("hot fraction = %.2f, want ~0.5", frac)
	}
}

func TestValidateRejectsInconsistentHotPair(t *testing.T) {
	// One skew knob without the other used to silently generate
	// uniform keys; both one-sided pairs must be rejected.
	c := cfgR()
	c.HotFraction, c.HotProb = 0.1, 0
	if c.Validate() == nil {
		t.Fatal("HotFraction without HotProb must be rejected")
	}
	c = cfgR()
	c.HotFraction, c.HotProb = 0, 0.5
	if c.Validate() == nil {
		t.Fatal("HotProb without HotFraction must be rejected")
	}
	c = cfgR()
	c.HotFraction, c.HotProb = 0.1, 0.5
	if err := c.Validate(); err != nil {
		t.Fatalf("consistent pair rejected: %v", err)
	}
}

func TestValidateZipf(t *testing.T) {
	c := cfgR()
	c.ZipfTheta = 0.99
	if err := c.Validate(); err != nil {
		t.Fatalf("zipf 0.99 rejected: %v", err)
	}
	c.ZipfTheta = 1.0
	if c.Validate() == nil {
		t.Fatal("theta = 1 must be rejected (normalization diverges)")
	}
	c.ZipfTheta = -0.1
	if c.Validate() == nil {
		t.Fatal("negative theta must be rejected")
	}
	c = cfgR()
	c.ZipfTheta, c.HotFraction, c.HotProb = 0.5, 0.1, 0.5
	if c.Validate() == nil {
		t.Fatal("mixing ZipfTheta with hot/cold knobs must be rejected")
	}
}

func TestHugeKeySpaceDoesNotPanic(t *testing.T) {
	// Regression: KeySpace > math.MaxInt64 used to reach rand.Int63n
	// through an overflowing int64 cast and panic.
	for _, space := range []uint64{
		math.MaxInt64,     // largest Int63n-representable bound
		math.MaxInt64 + 1, // first bound that used to overflow
		math.MaxUint64,    // full-width key space
	} {
		c := cfgR()
		c.KeySpace = space
		s := newKeyStream(c)
		for i := 0; i < 2000; i++ {
			if k := s.next(); k >= space {
				t.Fatalf("space %d: key %d out of range", space, k)
			}
		}
	}
	// The hot branch clamps through the same helper.
	c := cfgR()
	c.KeySpace = math.MaxUint64
	c.HotFraction, c.HotProb = 0.9999, 0.5
	s := newKeyStream(c)
	for i := 0; i < 2000; i++ {
		s.next()
	}
}

func TestSmallKeySpaceSequenceUnchanged(t *testing.T) {
	// The overflow fix must not disturb historical sequences: bounds
	// representable in int64 still take the Int63n path, so a pinned
	// prefix from the pre-fix generator must replay exactly.
	s := newKeyStream(cfgR())
	want := []uint64{75, 11, 60, 9, 57, 61, 47, 8}
	for i, w := range want {
		if got := s.next(); got != w {
			t.Fatalf("draw %d: got %d, want %d (sequence drifted)", i, got, w)
		}
	}
}

func TestZipfGenerator(t *testing.T) {
	c := cfgR()
	c.Blocks = 250
	c.TuplesPerBlock = 8
	c.KeySpace = 4096
	c.ZipfTheta = 0.99
	m := tape.NewMedia("t", 300)
	r, err := WriteToTape(c, m)
	if err != nil {
		t.Fatal(err)
	}
	counts := r.KeyCounts()
	n := float64(r.Tuples())
	// Key 0 carries ~1/H_{4096,0.99} ≈ 10.5% of the mass.
	want := 1 / hashutil.Zeta(4096, 0.99)
	got := float64(counts[0]) / n
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("top-key mass = %.3f, want ~%.3f", got, want)
	}
	// Rank-frequency must actually decay: key 0 beats key 1 beats the
	// uniform share.
	if counts[0] <= counts[1] || counts[1] <= int64(n)/4096 {
		t.Fatalf("no Zipf decay: counts[0]=%d counts[1]=%d uniform=%d",
			counts[0], counts[1], int64(n)/4096)
	}
	// Determinism: a second stream replays the same counts.
	again := (&Relation{Config: c}).KeyCounts()
	for k, v := range counts {
		if again[k] != v {
			t.Fatalf("key %d: %d vs %d on replay", k, v, again[k])
		}
	}
}
