package join

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/block"
	"repro/internal/cost"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrFaultExhausted marks a read whose retry budget ran out: the fault
// persisted through every reposition + re-read attempt. It always
// wraps the underlying cause, so errors.Is finds both.
var ErrFaultExhausted = errors.New("join: retries exhausted")

// Recovery is the fault-recovery policy of a join run. The zero value
// enables recovery with the defaults below.
type Recovery struct {
	// Disabled turns all recovery off: the first device error aborts
	// the join (the pre-fault-subsystem behavior).
	Disabled bool
	// MaxReadRetries bounds re-read attempts per device read before
	// the read fails with ErrFaultExhausted. Default 4.
	MaxReadRetries int
	// Backoff is the virtual-time cost of the first reposition +
	// re-read attempt; it doubles per attempt. Recovery is charged in
	// virtual time, so it shows up in response time. Default 2s.
	Backoff sim.Duration
	// MaxUnitRestarts bounds how many times one recoverable unit of
	// work (an iteration, bucket or chunk) restarts. Default 3.
	MaxUnitRestarts int
	// MaxRecovery bounds the total virtual time one read may spend in
	// backoff before giving up regardless of retries left. Default
	// 10m.
	MaxRecovery sim.Duration
}

// withDefaults fills zero fields.
func (r Recovery) withDefaults() Recovery {
	if r.MaxReadRetries == 0 {
		r.MaxReadRetries = 4
	}
	if r.Backoff == 0 {
		r.Backoff = 2 * time.Second
	}
	if r.MaxUnitRestarts == 0 {
		r.MaxUnitRestarts = 3
	}
	if r.MaxRecovery == 0 {
		r.MaxRecovery = 10 * time.Minute
	}
	return r
}

// retryableRead reports whether a failed read may succeed on re-read:
// injected transient faults, checksum mismatches in delivered data
// (block-level or device-frame — the stored copy may be fine), and
// per-op deadline misses that survived the device layer's own retries
// (the device may only be degraded; if its breaker has tripped, the
// re-read fails fast with a non-retryable loss error instead of
// looping). Hard media errors, lost devices and simulator bugs are not
// retryable.
func retryableRead(err error) bool {
	return fault.IsTransient(err) || errors.Is(err, block.ErrBadChecksum) ||
		errors.Is(err, device.ErrCorrupt) || errors.Is(err, device.ErrIOTimeout)
}

// unitRecoverable reports whether an error is worth restarting a work
// unit over: exhausted read retries (the unit can re-stage its inputs)
// and lost disks (the unit can rebuild on the surviving array). Once a
// disk has been lost, a full-disk error is recoverable too: in-flight
// allocations sized for the original array may overflow the shrunken
// one, and the restarted unit re-derives its sizing from effectiveD.
func (e *env) unitRecoverable(err error) bool {
	if errors.Is(err, ErrFaultExhausted) || errors.Is(err, fault.ErrDeviceLost) {
		return true
	}
	return errors.Is(err, device.ErrDiskFull) && len(e.disks.DeadDisks()) > 0
}

// verifyBlocks checks every delivered block's checksum, converting
// silent corruption into a typed error at the point of transfer.
func verifyBlocks(blks []block.Block) error {
	for i, blk := range blks {
		if err := blk.Verify(); err != nil {
			return fmt.Errorf("block %d of read: %w", i, err)
		}
	}
	return nil
}

// readDev is the retrying device-read path every join read goes
// through: execute the read, verify the delivered blocks, and on a
// retryable failure reposition + re-read with bounded exponential
// backoff charged in virtual time. A spent retry budget converts the
// last cause into ErrFaultExhausted.
func (e *env) readDev(p *sim.Proc, device string, read func() ([]block.Block, error)) ([]block.Block, error) {
	rec := e.res.Recovery
	var deadline sim.Deadline
	backoff := rec.Backoff
	for attempt := 0; ; attempt++ {
		// Early-termination poll: a satisfied (or cancelled) run stops
		// issuing device work here, before the next transfer — this is
		// what keeps a StopAfter run's tape/disk counters strictly below
		// the full run's.
		if err := e.checkStop(); err != nil {
			return nil, err
		}
		blks, err := read()
		if err == nil {
			err = verifyBlocks(blks)
			if err == nil {
				return blks, nil
			}
		}
		if rec.Disabled || !retryableRead(err) {
			return nil, err
		}
		if attempt == 0 {
			deadline = sim.NewDeadline(p, rec.MaxRecovery)
		}
		if attempt >= rec.MaxReadRetries || deadline.Exceeded(p) {
			return nil, fmt.Errorf("%w after %d attempts on %s: %w",
				ErrFaultExhausted, attempt+1, device, err)
		}
		// Reposition + re-read: the backoff stands in for rewinding
		// past the bad spot and restreaming, charged in virtual time.
		hold := backoff
		if r := deadline.Remaining(p); hold > r {
			hold = r
		}
		e.stats.Retries++
		e.stats.RecoveryTime += hold
		sp := e.span(p, "retry-backoff", obs.A("device", device))
		t0 := p.Now()
		p.Hold(hold)
		e.res.Trace.AddFor(p, trace.Event{
			Device: device, Kind: trace.Retry,
			Start: t0, End: p.Now(), Note: "read retry backoff",
		})
		sp.Close(p)
		e.retryBackoff.Observe(hold.Seconds())
		e.res.Flight.RecordV(p.Now(), "retry", device,
			fmt.Sprintf("join-layer re-read %d after %v backoff", attempt+1, hold))
		backoff *= 2
	}
}

// tapeRead is readDev over a drive read.
func (e *env) tapeRead(p *sim.Proc, drive device.Drive, a device.Addr, n int64) ([]block.Block, error) {
	return e.readDev(p, "tape:"+drive.Name(), func() ([]block.Block, error) {
		return drive.ReadAt(p, a, n)
	})
}

// diskRead is readDev over a file read.
func (e *env) diskRead(p *sim.Proc, f device.File, off, n int64) ([]block.Block, error) {
	return e.readDev(p, "disk:"+f.Name(), func() ([]block.Block, error) {
		return f.ReadAt(p, off, n)
	})
}

// readSrc is readDev over a bucket source.
func (e *env) readSrc(p *sim.Proc, src bucketSource, off, n int64) ([]block.Block, error) {
	return e.readDev(p, src.device(), func() ([]block.Block, error) {
		return src.read(p, off, n)
	})
}

// stagedSink buffers emissions until commit, so a retried unit of work
// never double-delivers output. reset discards the uncommitted pairs.
type stagedSink struct {
	inner     Sink
	pairs     [][2]block.Tuple
	committed int64
}

// Emit implements Sink.
func (s *stagedSink) Emit(_ *sim.Proc, r, t block.Tuple) {
	s.pairs = append(s.pairs, [2]block.Tuple{r, t})
}

// Count implements Sink.
func (s *stagedSink) Count() int64 { return s.committed + int64(len(s.pairs)) }

// commit replays the staged pairs into the inner sink.
func (s *stagedSink) commit(p *sim.Proc) {
	for _, pr := range s.pairs {
		s.inner.Emit(p, pr[0], pr[1])
	}
	s.committed += int64(len(s.pairs))
	s.pairs = nil
}

// reset discards uncommitted pairs.
func (s *stagedSink) reset() { s.pairs = nil }

// staged runs work with output staged: committed on success, discarded
// on failure. A unit stopped by the output cut-off commits what it
// emitted — those pairs are delivered, the stop just cut the unit
// short — while a real failure also rolls the emission count back so
// the restarted unit re-counts from the committed baseline. With
// recovery disabled it runs work directly.
func (e *env) staged(p *sim.Proc, work func() error) error {
	if e.res.Recovery.Disabled {
		return work()
	}
	outer := e.sink
	st := &stagedSink{inner: outer}
	e.sink = st
	before := e.emitted
	err := work()
	e.sink = outer
	if err == nil || errors.Is(err, ErrStopped) {
		sp := e.span(p, "stage-commit", obs.AInt("pairs", int64(len(st.pairs))))
		st.commit(p)
		sp.Close(p)
		return err
	}
	e.emitted = before
	return err
}

// runUnit retries one recoverable unit of work (an iteration, bucket
// or chunk). work is responsible for staging its own output (see
// staged) and for re-staging lost inputs on re-entry. Unrecoverable
// errors and exhausted restart budgets propagate.
func (e *env) runUnit(p *sim.Proc, name string, work func(*sim.Proc) error) error {
	for attempt := 0; ; attempt++ {
		err := work(p)
		if err == nil || e.res.Recovery.Disabled {
			return err
		}
		if !e.unitRecoverable(err) || attempt >= e.res.Recovery.MaxUnitRestarts {
			return err
		}
		e.stats.UnitRestarts++
		e.unitRestarts.Inc()
		e.res.Trace.AddFor(p, trace.Event{
			Device: "-", Kind: trace.Retry,
			Start: p.Now(), End: p.Now(),
			Note: fmt.Sprintf("restart %s after: %v", name, err),
		})
	}
}

// effectiveD returns the live disk budget: the configured D shrunk in
// proportion to any drives the array has lost.
func (e *env) effectiveD() int64 {
	if cap := e.disks.TotalCapacity(); cap < e.res.DiskBlocks {
		return cap
	}
	return e.res.DiskBlocks
}

// anyLost reports whether any file lost extents to a dead drive.
func anyLost(files []device.File) bool {
	for _, f := range files {
		if f.Lost() {
			return true
		}
	}
	return false
}

// degradeCandidates are the sequential fallbacks considered when a
// tape drive dies, in preference order for equal cost. All run on a
// single shared transport without drive-contention pathologies.
var degradeCandidates = []string{"DT-GH", "DT-NB", "TT-GH"}

// degradeRerun handles a permanent tape-drive loss: mount both
// cartridges behind one shared transport, discard the failed attempt's
// staged output and disk space, re-advise via the cost model to a
// feasible sequential method, and run it to completion in the same
// virtual timeline — so the degraded run's response time includes
// everything the failed attempt cost.
func (e *env) degradeRerun(p *sim.Proc, cause error) error {
	e.stats.DriveLost = true
	replan := e.span(p, "degrade-replan")
	e.res.Trace.AddFor(p, trace.Event{
		Device: "-", Kind: trace.Degrade,
		Start: p.Now(), End: p.Now(),
		Note: fmt.Sprintf("drive lost, re-planning: %v", cause),
	})

	// Discard the failed attempt: staged output, leaked memory
	// accounting, disk space, and tape scratch garbage. The emission
	// count and first-tuple stamp restart with the rerun — nothing the
	// failed attempt produced was delivered (Exec only degrades when
	// the whole run is staged or nothing streamed out yet).
	if e.outer != nil {
		e.outer.reset()
	}
	e.emitted = 0
	e.firstEmitSet = false
	e.stats.FirstTuple = 0
	e.mem.used = 0
	e.retireDisks()
	if m, ok := e.spec.R.Media.(device.Truncatable); ok && m.EOD() > e.eodR {
		m.Truncate(e.eodR)
	}
	if m, ok := e.spec.S.Media.(device.Truncatable); ok && m.EOD() > e.eodS {
		m.Truncate(e.eodS)
	}

	// Mount both cartridges behind one surviving transport. The new
	// logical drives carry fresh names so device-keyed fault rules
	// that killed the old drive do not re-fire.
	e.retiredDrives = append(e.retiredDrives, e.driveR, e.driveS)
	dr, ds, err := e.res.Backend.NewSharedDrivePair(e.k, "R2", "S2", e.res.Tape)
	if err != nil {
		replan.Close(p)
		return fmt.Errorf("join: no shared transport after drive loss: %w", err)
	}
	dr.Load(e.spec.R.Media)
	ds.Load(e.spec.S.Media)
	dr.SetRecorder(e.res.Trace)
	ds.SetRecorder(e.res.Trace)
	dr.SetMetrics(e.res.Metrics)
	ds.SetMetrics(e.res.Metrics)
	dr.SetInjector(e.inj)
	ds.SetInjector(e.inj)
	e.driveR, e.driveS = dr, ds
	e.res.DiskBlocks = e.effectiveD()
	e.dbuf, e.dbufCap = nil, 0

	// Re-advise: rank the sequential candidates by modelled cost on
	// the surviving resources, then take the cheapest that passes its
	// own feasibility check.
	params := cost.Params{
		RBlocks: e.spec.R.Region.N, SBlocks: e.spec.S.Region.N,
		MBlocks: e.res.MemoryBlocks, DBlocks: e.res.DiskBlocks,
		TapeRate: e.res.Tape.EffectiveRate(), DiskRate: e.res.DiskRate,
	}
	type scored struct {
		m       Method
		seconds float64
	}
	var ranked []scored
	for _, sym := range degradeCandidates {
		m, err := BySymbol(sym)
		if err != nil {
			continue
		}
		est := cost.EstimateMethod(sym, params)
		if est.Err != nil {
			continue
		}
		if err := m.Check(e.spec, e.res); err != nil {
			continue
		}
		ranked = append(ranked, scored{m, est.Seconds})
	}
	if len(ranked) == 0 {
		replan.Close(p)
		return fmt.Errorf("join: no feasible fallback after drive loss: %w", cause)
	}
	best := ranked[0]
	for _, c := range ranked[1:] {
		if c.seconds < best.seconds {
			best = c
		}
	}
	e.stats.DegradedTo = best.m.Symbol()
	e.res.Trace.AddFor(p, trace.Event{
		Device: "-", Kind: trace.Degrade,
		Start: p.Now(), End: p.Now(),
		Note: "degraded to " + best.m.Symbol() + " on shared transport",
	})
	// Close before the rerun so the fallback's phases stay top-level.
	replan.Close(p)
	return best.m.run(e, p)
}

// retireDisks replaces the array with a fresh one on the same kernel,
// pushing the old array (and its space accounting) onto the retired
// list for final stats. Pending disk-failure rules re-fire against the
// new array's drives, so a dead disk stays dead.
func (e *env) retireDisks() {
	e.retiredArrays = append(e.retiredArrays, e.disks)
	a, err := e.res.Backend.NewStore(e.k, e.disks.Config())
	if err != nil {
		panic(err) // config was valid for the original array
	}
	a.SetRecorder(e.res.Trace)
	a.SetMetrics(e.res.Metrics)
	a.SetInjector(e.inj)
	e.disks = a
}
