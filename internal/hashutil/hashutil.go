// Package hashutil provides the join-key hash and bucket-partitioning
// plan shared by the Grace-Hash-based join methods. The paper assumes
// uniformly distributed hash values (Section 5.1.2); the finalizer mix
// here gives that for any key distribution without skewed low bits.
package hashutil

import (
	"errors"
	"fmt"
)

// Hash mixes a 64-bit join key into a uniformly distributed 64-bit
// value (the splitmix64 finalizer).
func Hash(key uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Bucket maps a key to one of b hash buckets.
func Bucket(key uint64, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("hashutil: %d buckets", b))
	}
	return int(Hash(key) % uint64(b))
}

// ErrInsufficientMemory is returned when no bucket count lets each R
// bucket fit in memory while leaving an input block for partitioning —
// the paper's M >= sqrt(|R|) requirement made exact at block
// granularity.
var ErrInsufficientMemory = errors.New("hashutil: memory below sqrt(|R|) requirement")

// Plan describes a Grace Hash bucket layout for partitioning a
// relation of RBlocks using MBlocks of memory.
type Plan struct {
	// B is the number of hash buckets.
	B int
	// BucketBlocks is the expected size of one R bucket in blocks
	// (uniform hashing), rounded up.
	BucketBlocks int64
	// WriteBuf is the per-bucket memory write buffer in blocks used
	// while partitioning; flushes happen at this granularity, so small
	// values make bucket writes random-I/O-like (Section 9).
	WriteBuf int64
	// InBuf is the memory input buffer in blocks used while
	// partitioning.
	InBuf int64
}

// PlanBuckets computes the bucket layout. The layout must satisfy, at
// block granularity, the paper's two conditions (Section 5.1.2):
//
//   - each R bucket fits in memory when read back, next to one input
//     block for streaming the other relation: BucketBlocks <= M-1;
//   - partitioning fits in memory: B write buffers of at least one
//     block plus an input buffer: B*WriteBuf + InBuf <= M.
//
// Buckets target nine tenths of the join-phase memory so that a
// useful streaming buffer remains next to a loaded bucket; leftover
// memory widens the write buffers, and a tenth of memory (at least
// one block) is kept as the input buffer. When even full-memory
// buckets would not fit, the target relaxes to M-1 before giving up.
func PlanBuckets(rBlocks, mBlocks int64) (Plan, error) {
	return PlanBucketsBounded(rBlocks, mBlocks, 0)
}

// PlanBucketsBounded is PlanBuckets with an additional upper bound on
// the bucket size (0 = unbounded). Tape–tape methods bound buckets by
// the disk assembly area: with ample memory they simply use more,
// smaller buckets rather than failing.
func PlanBucketsBounded(rBlocks, mBlocks, maxBucket int64) (Plan, error) {
	if rBlocks < 1 {
		return Plan{}, fmt.Errorf("hashutil: relation of %d blocks", rBlocks)
	}
	if mBlocks < 2 {
		return Plan{}, fmt.Errorf("%w: M=%d blocks", ErrInsufficientMemory, mBlocks)
	}
	target := (mBlocks - 1) * 9 / 10
	if target < 1 {
		target = 1
	}
	if maxBucket > 0 && target > maxBucket {
		target = maxBucket
	}
	b := (rBlocks + target - 1) / target // ceil(|R| / target)
	if b+1 > mBlocks && (maxBucket <= 0 || maxBucket >= mBlocks-1) {
		// Fall back to the largest buckets that can possibly fit.
		b = (rBlocks + mBlocks - 2) / (mBlocks - 1)
	}
	if b+1 > mBlocks {
		return Plan{}, fmt.Errorf("%w: |R|=%d blocks needs %d buckets but M=%d holds %d write buffers",
			ErrInsufficientMemory, rBlocks, b, mBlocks, mBlocks-1)
	}
	inBuf := mBlocks / 10
	if inBuf < 1 {
		inBuf = 1
	}
	writeBuf := (mBlocks - inBuf) / b
	if writeBuf < 1 {
		writeBuf = 1
		inBuf = mBlocks - b // >= 1 by the feasibility check
	}
	return Plan{
		B:            int(b),
		BucketBlocks: (rBlocks + b - 1) / b,
		WriteBuf:     writeBuf,
		InBuf:        inBuf,
	}, nil
}

// PartitionMemory returns the memory in blocks the partitioning phase
// holds: B write buffers plus the input buffer.
func (p Plan) PartitionMemory() int64 {
	return int64(p.B)*p.WriteBuf + p.InBuf
}
