package cost

import (
	"errors"
	"math"
	"testing"

	"repro/internal/block"
)

// dParams builds a parameter point where the disk budget D is the
// interesting variable; everything else sits comfortably inside
// Table 2's memory constraints.
func dParams(r, s, m, d int64) Params {
	return Params{
		RBlocks: r, SBlocks: s, MBlocks: m, DBlocks: d,
		TapeRate: 1e6, DiskRate: 2e6,
	}
}

// TestDConstrainedRegion walks the disk-budget axis across the Table 2
// feasibility boundaries of the disk-staging methods. The NB family
// needs D >= |R| to hold the copied R; CDT-NB/DB additionally needs an
// S chunk's worth of disk (ms = M - max(1, M/10), i.e. ~0.9M), so
// there is a band |R| <= D < |R| + ms where CDT-NB/MB runs and
// CDT-NB/DB does not. This is exactly the region the workload engine's
// admission control navigates when the staging cache eats into D.
func TestDConstrainedRegion(t *testing.T) {
	const (
		r = 512
		s = 5120
		m = 256
	)
	// Table 2 memory split for the NB family: mr = max(1, M/10) blocks
	// scan R, the rest buffers S.
	ms := float64(m) - math.Max(1, float64(m)/10) // 230.4 at M=256
	dbFloor := int64(math.Ceil(r + ms))           // first D where CDT-NB/DB fits

	cases := []struct {
		name     string
		d        int64
		feasible map[string]bool
	}{
		{
			name: "below-R",
			d:    r - 1,
			feasible: map[string]bool{
				"DT-NB": false, "CDT-NB/MB": false, "CDT-NB/DB": false,
			},
		},
		{
			name: "exactly-R",
			d:    r,
			feasible: map[string]bool{
				"DT-NB": true, "CDT-NB/MB": true, "CDT-NB/DB": false,
			},
		},
		{
			name: "R-plus-partial-chunk",
			d:    dbFloor - 1,
			feasible: map[string]bool{
				"DT-NB": true, "CDT-NB/MB": true, "CDT-NB/DB": false,
			},
		},
		{
			name: "R-plus-chunk",
			d:    dbFloor,
			feasible: map[string]bool{
				"DT-NB": true, "CDT-NB/MB": true, "CDT-NB/DB": true,
			},
		},
		{
			name: "ample",
			d:    4 * r,
			feasible: map[string]bool{
				"DT-NB": true, "CDT-NB/MB": true, "CDT-NB/DB": true,
			},
		},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p := dParams(r, s, m, c.d)
			for method, want := range c.feasible {
				e := EstimateMethod(method, p)
				got := e.Err == nil
				if got != want {
					t.Errorf("%s at D=%d: feasible=%v, want %v (err: %v)",
						method, c.d, got, want, e.Err)
				}
				if !want {
					if !errors.Is(e.Err, Infeasible) {
						t.Errorf("%s at D=%d: error %v does not wrap Infeasible", method, c.d, e.Err)
					}
					if !math.IsInf(e.Seconds, 1) {
						t.Errorf("%s at D=%d: infeasible but Seconds=%v", method, c.d, e.Seconds)
					}
				}
			}
		})
	}
}

// TestDConstrainedSeconds pins the feasible NB estimates in the
// D-constrained band to the Table 2 formulas, recomputed here
// independently:
//
//	DT-NB:     t_T(R) + t_D(R) + t_T(S) + ceil(S/ms) t_D(R)
//	CDT-NB/MB: t_T(R) + t_D(R) + t_T(ms/2) + ceil(S/(ms/2)) max(t_T(ms/2), t_D(R))
//	CDT-NB/DB: t_T(R) + t_D(R) + ceil(S/ms) max(t_T(ms), t_D(2 ms + R)) + t_T(ms)
//
// so a future change to the model's arithmetic cannot slip through as
// a "shape-preserving" refactor.
func TestDConstrainedSeconds(t *testing.T) {
	const (
		r = 512
		s = 5120
		m = 256
	)
	p := dParams(r, s, m, r) // minimum D for the memory-buffered methods
	tT := func(n float64) float64 { return n * block.VirtualSize / p.TapeRate }
	tD := func(n float64) float64 { return n * block.VirtualSize / p.DiskRate }
	ms := float64(m) - math.Max(1, float64(m)/10)

	check := func(method string, pp Params, want float64) {
		t.Helper()
		e := EstimateMethod(method, pp)
		if e.Err != nil {
			t.Fatalf("%s: %v", method, e.Err)
		}
		if math.Abs(e.Seconds-want) > 1e-9*want {
			t.Errorf("%s Seconds = %v, want %v", method, e.Seconds, want)
		}
		// The copied-R methods' disk footprint starts at |R| blocks —
		// the quantity the workload admission test charges against
		// D - CacheBlocks.
		if e.DiskSpaceBlocks < r {
			t.Errorf("%s DiskSpaceBlocks = %d, want >= %d", method, e.DiskSpaceBlocks, r)
		}
	}

	check("DT-NB", p,
		tT(r)+tD(r)+tT(s)+math.Ceil(s/ms)*tD(r))

	half := ms / 2
	check("CDT-NB/MB", p,
		tT(r)+tD(r)+tT(half)+math.Ceil(s/half)*math.Max(tT(half), tD(r)))

	pdb := dParams(r, s, m, int64(math.Ceil(r+ms)))
	check("CDT-NB/DB", pdb,
		tT(r)+tD(r)+math.Ceil(s/ms)*math.Max(tT(ms), tD(2*ms+r))+tT(ms))
}

// TestDConstrainedEscapeHatches confirms the advisor still has
// somewhere to go when D drops below |R|. CTT-GH uses disk only as a
// bucket assembly area (any D >= 1 works, at the price of more R
// scans), and TT-SM uses no disk at all; TT-GH by contrast needs
// S/D < M for its shared bucket count, so at this starved point it
// must report infeasible rather than a bogus cost.
func TestDConstrainedEscapeHatches(t *testing.T) {
	p := dParams(512, 5120, 256, 16) // D far below |R|
	for _, method := range []string{"CTT-GH", "TT-SM"} {
		e := EstimateMethod(method, p)
		if e.Err != nil {
			t.Errorf("%s at tiny D: %v (must survive the D-starved region)", method, e.Err)
		}
	}
	if e := EstimateMethod("TT-SM", p); e.DiskSpaceBlocks != 0 {
		t.Errorf("TT-SM DiskSpaceBlocks = %d, want 0", e.DiskSpaceBlocks)
	}
	if e := EstimateMethod("TT-GH", p); !errors.Is(e.Err, Infeasible) {
		t.Errorf("TT-GH at S/D=%d >= M=%d: err = %v, want Infeasible",
			p.SBlocks/p.DBlocks, p.MBlocks, e.Err)
	}
	// CTT-GH's Step I pays one extra full R scan per ceil(|R|/D): the
	// D-starved estimate must be strictly costlier than an ample-disk
	// one, or admission control would never prefer staging.
	ample := EstimateMethod("CTT-GH", dParams(512, 5120, 256, 4096))
	starved := EstimateMethod("CTT-GH", p)
	if starved.Seconds <= ample.Seconds {
		t.Errorf("CTT-GH: starved D cost %v not above ample D cost %v",
			starved.Seconds, ample.Seconds)
	}
}
