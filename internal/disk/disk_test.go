package disk

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/block"
	"repro/internal/sim"
)

func mkBlocks(n int) []block.Block {
	out := make([]block.Block, n)
	for i := range out {
		b := block.NewBuilder(1)
		b.Append(block.Tuple{Key: uint64(i)})
		out[i] = b.Finish()
	}
	return out
}

// cfg2 returns a 2-disk array where each disk moves 1 block/second
// (aggregate 2 blocks/s) with no request overhead.
func cfg2(blocksPerDisk int64) Config {
	return Config{
		NumDisks:      2,
		AggregateRate: 2 * block.VirtualSize,
		BlocksPerDisk: blocksPerDisk,
	}
}

func TestValidate(t *testing.T) {
	if err := cfg2(10).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg2(10)
	bad.NumDisks = 0
	if bad.Validate() == nil {
		t.Fatal("want error for 0 disks")
	}
	bad = cfg2(10)
	bad.AggregateRate = 0
	if bad.Validate() == nil {
		t.Fatal("want error for 0 rate")
	}
	bad = cfg2(10)
	bad.BlocksPerDisk = 0
	if bad.Validate() == nil {
		t.Fatal("want error for 0 capacity")
	}
	if err := SCSI2Pair(100).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStripedTransferRunsAtAggregateRate(t *testing.T) {
	// 10 blocks over 2 disks at 1 block/s each: 5 s, not 10 s.
	k := sim.NewKernel()
	a, err := NewArray(k, cfg2(100))
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("w", func(p *sim.Proc) {
		f, err := a.Create("f", nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.Append(p, mkBlocks(10)); err != nil {
			t.Error(err)
		}
		if p.Now() != sim.Time(5*time.Second) {
			t.Errorf("append took %v, want 5s", p.Now())
		}
		got, err := f.ReadAt(p, 0, 10)
		if err != nil {
			t.Error(err)
		}
		if len(got) != 10 {
			t.Errorf("read %d blocks", len(got))
		}
		if p.Now() != sim.Time(10*time.Second) {
			t.Errorf("read finished at %v, want 10s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Stats.BlocksWritten != 10 || a.Stats.BlocksRead != 10 {
		t.Fatalf("stats = %+v", a.Stats)
	}
}

func TestSingleDiskPlacement(t *testing.T) {
	// 10 blocks on 1 of 2 disks: 10 s at the per-disk rate.
	k := sim.NewKernel()
	a, _ := NewArray(k, cfg2(100))
	k.Spawn("w", func(p *sim.Proc) {
		f, err := a.Create("f", []int{1})
		if err != nil {
			t.Error(err)
			return
		}
		f.Append(p, mkBlocks(10))
		if p.Now() != sim.Time(10*time.Second) {
			t.Errorf("append took %v, want 10s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestOverheadCharged(t *testing.T) {
	cfg := cfg2(100)
	cfg.RequestOverhead = time.Second
	k := sim.NewKernel()
	a, _ := NewArray(k, cfg)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := a.Create("f", []int{0})
		// Ten 1-block writes: each 1s overhead + 1s transfer = 20s.
		for i := 0; i < 10; i++ {
			f.Append(p, mkBlocks(1))
		}
		if p.Now() != sim.Time(20*time.Second) {
			t.Errorf("ten small writes took %v, want 20s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Stats.Requests != 10 || a.Stats.OverheadTime != 10*time.Second {
		t.Fatalf("stats = %+v", a.Stats)
	}
}

func TestLargeRequestAmortizesOverhead(t *testing.T) {
	cfg := cfg2(100)
	cfg.RequestOverhead = time.Second
	k := sim.NewKernel()
	a, _ := NewArray(k, cfg)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := a.Create("f", []int{0})
		// One 10-block write: 1s overhead + 10s transfer = 11s.
		f.Append(p, mkBlocks(10))
		if p.Now() != sim.Time(11*time.Second) {
			t.Errorf("one large write took %v, want 11s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentFilesOnDistinctDisksOverlap(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewArray(k, cfg2(100))
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("w", func(p *sim.Proc) {
			f, _ := a.Create("f", []int{i})
			f.Append(p, mkBlocks(10))
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != sim.Time(10*time.Second) {
		t.Fatalf("makespan %v, want 10s (parallel disks)", k.Now())
	}
}

func TestConcurrentFilesOnSameDiskSerialize(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewArray(k, cfg2(100))
	for i := 0; i < 2; i++ {
		k.Spawn("w", func(p *sim.Proc) {
			f, _ := a.Create("f", []int{0})
			f.Append(p, mkBlocks(10))
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != sim.Time(20*time.Second) {
		t.Fatalf("makespan %v, want 20s (serialized disk)", k.Now())
	}
}

func TestSpaceAccounting(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewArray(k, cfg2(10)) // 20 blocks total
	k.Spawn("w", func(p *sim.Proc) {
		f1, _ := a.Create("f1", nil)
		f1.Append(p, mkBlocks(12))
		if a.Used != 12 || a.Free() != 8 {
			t.Errorf("used=%d free=%d", a.Used, a.Free())
		}
		f2, _ := a.Create("f2", nil)
		f2.Append(p, mkBlocks(6))
		if a.HighWater != 18 {
			t.Errorf("high water = %d, want 18", a.HighWater)
		}
		f1.Free()
		if a.Used != 6 {
			t.Errorf("used after free = %d, want 6", a.Used)
		}
		f1.Free() // double free is a no-op
		if a.Used != 6 {
			t.Errorf("used after double free = %d", a.Used)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a.HighWater != 18 {
		t.Fatalf("high water = %d, want 18", a.HighWater)
	}
}

func TestDiskFull(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewArray(k, cfg2(5)) // 10 blocks total
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := a.Create("f", nil)
		if err := f.Append(p, mkBlocks(11)); !errors.Is(err, ErrDiskFull) {
			t.Errorf("err = %v, want ErrDiskFull", err)
		}
		// A failed append charges nothing.
		if a.Used != 0 {
			t.Errorf("used = %d after failed append", a.Used)
		}
		// Single-disk file bounded by that disk's capacity.
		f1, _ := a.Create("f1", []int{0})
		if err := f1.Append(p, mkBlocks(6)); !errors.Is(err, ErrDiskFull) {
			t.Errorf("err = %v, want ErrDiskFull for single-disk overflow", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadBounds(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewArray(k, cfg2(100))
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := a.Create("f", nil)
		f.Append(p, mkBlocks(5))
		if _, err := f.ReadAt(p, 3, 3); err == nil {
			t.Error("want error reading past end")
		}
		if _, err := f.ReadAt(p, -1, 1); err == nil {
			t.Error("want error for negative offset")
		}
		got, err := f.ReadAt(p, 2, 3)
		if err != nil || len(got) != 3 {
			t.Errorf("ReadAt: %d blocks, err %v", len(got), err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateErrors(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewArray(k, cfg2(100))
	if _, err := a.Create("f", []int{}); err == nil {
		t.Fatal("empty placement should fail")
	}
	if _, err := a.Create("f", []int{7}); err == nil {
		t.Fatal("bad drive id should fail")
	}
}

func TestDataRoundTripPreserved(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewArray(k, cfg2(100))
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := a.Create("f", nil)
		in := mkBlocks(7)
		f.Append(p, in)
		out, err := f.ReadAt(p, 0, 7)
		if err != nil {
			t.Error(err)
			return
		}
		for i := range in {
			_, inT := in[i].MustDecode()
			_, outT := out[i].MustDecode()
			if inT[0].Key != outT[0].Key {
				t.Errorf("block %d key %d != %d", i, outT[0].Key, inT[0].Key)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUseAfterFreePanics(t *testing.T) {
	k := sim.NewKernel()
	a, _ := NewArray(k, cfg2(100))
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := a.Create("f", nil)
		f.Append(p, mkBlocks(2))
		f.Free()
		f.Append(p, mkBlocks(1)) // must panic
	})
	if err := k.Run(); err == nil {
		t.Fatal("expected captured panic for use-after-free")
	}
}

func TestQuickAllocatorConservation(t *testing.T) {
	// Random interleavings of file growth and frees never lose or
	// leak space, and appends only fail when the array is genuinely
	// out of room.
	f := func(ops []uint16, capSeed uint8) bool {
		capacity := int64(capSeed%32)*2 + 16
		k := sim.NewKernel()
		a, err := NewArray(k, Config{
			NumDisks:      2,
			AggregateRate: 2 * block.VirtualSize,
			BlocksPerDisk: capacity / 2,
		})
		if err != nil {
			return false
		}
		ok := true
		k.Spawn("driver", func(p *sim.Proc) {
			var live []*File
			var ledger int64
			for _, op := range ops {
				switch {
				case op%3 != 0 || len(live) == 0:
					n := int64(op%7) + 1
					f, err := a.Create("f", nil)
					if err != nil {
						ok = false
						return
					}
					err = f.Append(p, mkBlocks(int(n)))
					if errors.Is(err, ErrDiskFull) {
						if a.Free() >= n {
							ok = false // spurious full
							return
						}
						continue
					}
					if err != nil {
						ok = false
						return
					}
					live = append(live, f)
					ledger += n
				default:
					idx := int(op) % len(live)
					ledger -= live[idx].Len()
					live[idx].Free()
					live = append(live[:idx], live[idx+1:]...)
				}
				if a.Used != ledger || a.Free() != a.TotalCapacity()-ledger {
					ok = false
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
