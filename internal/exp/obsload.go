package exp

import (
	"fmt"
	"math"
	"time"

	tapejoin "repro"
	"repro/internal/obs"
)

// ObsloadRow is one check of the instrumentation-overhead experiment:
// a measured value against its stated budget. A budget of "report"
// marks a characterization row that informs thresholds elsewhere
// (benchreg's wall-metric gate) but never fails the experiment.
type ObsloadRow struct {
	Check  string
	Value  string
	Budget string
	Pass   bool
}

const (
	// obsloadRecorderBudget is the flight recorder's per-event budget.
	// One Record is a mutex acquire plus a few fixed-size stores; 2µs
	// leaves two orders of magnitude of headroom over the measured cost
	// so the assertion documents "cheap enough to leave always-on"
	// without flaking on loaded CI machines.
	obsloadRecorderBudget = 2 * time.Microsecond
	// obsloadRecorderEvents sizes the recorder microbenchmark.
	obsloadRecorderEvents = 1_000_000
	// obsloadRuns is how many file-backend runs feed the overhead and
	// variance measurements.
	obsloadRuns = 3
	// obsloadWallBudget bounds the relative wall-clock overhead of
	// running with spans, metrics and the recorder on versus all off.
	// The join is I/O bound, so instrumentation should vanish in the
	// noise; 30% (or the absolute slack below on very short runs)
	// absorbs scheduler jitter without hiding a real regression.
	obsloadWallBudget = 0.30
	// obsloadWallSlack is the absolute overhead always tolerated, so
	// sub-100ms runs cannot fail on a single descheduling.
	obsloadWallSlack = 50 * time.Millisecond
)

// Obsload measures what the observability machinery costs: it runs
// the same join with instrumentation off and on, asserting the virtual
// result is bit-identical (scraping must never perturb the run) and
// the wall-clock overhead on the file backend stays within budget;
// microbenchmarks the flight recorder against its per-event budget;
// and characterizes run-to-run variance of the wall metrics, the data
// behind benchreg's wall-overlap threshold.
func Obsload(scale float64) ([]ObsloadRow, error) {
	rMB := scaleMB(4, scale)
	sMB := scaleMB(16, scale)
	base := tapejoin.Config{
		MemoryMB: scaleMBf(8, scale),
		DiskMB:   scaleMBf(64, scale),
	}
	runOnce := func(cfg tapejoin.Config, method tapejoin.Method) (*tapejoin.Result, time.Duration, error) {
		sys, r, s, err := chaosBuild(cfg, rMB, sMB)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		res, err := sys.Join(method, r, s)
		return res, time.Since(start), err
	}
	var rows []ObsloadRow

	// 1. The virtual result must not depend on instrumentation: same
	// sim-backend join with Observe off and on, compared exactly.
	off, _, err := runOnce(base, tapejoin.DTGH)
	if err != nil {
		return nil, fmt.Errorf("sim reference: %w", err)
	}
	onCfg := base
	onCfg.Observe = true
	on, _, err := runOnce(onCfg, tapejoin.DTGH)
	if err != nil {
		return nil, fmt.Errorf("sim observed run: %w", err)
	}
	rows = append(rows, ObsloadRow{
		Check:  "virtual response unperturbed",
		Value:  fmt.Sprintf("off=%v on=%v", off.Stats.Response, on.Stats.Response),
		Budget: "exact",
		Pass:   off.Stats.Response == on.Stats.Response,
	})
	rows = append(rows, ObsloadRow{
		Check:  "output hash unperturbed",
		Value:  fmt.Sprintf("off=%#x on=%#x", off.Stats.OutputHash, on.Stats.OutputHash),
		Budget: "exact",
		Pass:   off.Stats.OutputHash == on.Stats.OutputHash,
	})

	// 2. Flight recorder microbenchmark: the always-on path must stay
	// within its per-event budget.
	rec := obs.NewFlightRecorder(0)
	start := time.Now()
	for i := 0; i < obsloadRecorderEvents; i++ {
		rec.Record("bench", "disk", "flight-recorder microbenchmark event")
	}
	perEvent := time.Since(start) / obsloadRecorderEvents
	rows = append(rows, ObsloadRow{
		Check:  "flight recorder cost/event",
		Value:  perEvent.String(),
		Budget: "<= " + obsloadRecorderBudget.String(),
		Pass:   perEvent <= obsloadRecorderBudget,
	})

	// 3. File-backend wall overhead: instrumentation on vs off, best of
	// obsloadRuns each (min is the least noisy wall estimator), plus
	// run-to-run variance of the wall metrics from the observed runs.
	// The geometry mirrors BenchmarkFileBackendOverlap (paced device
	// emulation, a disk-staging method) so the variance figures speak
	// to the same wall-sec / wall-overlap series benchreg snapshots.
	fileOff := base
	fileOff.Backend = "file"
	fileOff.FilePace = 100
	fileOff.MemoryMB = scaleMBf(2, scale)
	fileOff.DiskMB = scaleMBf(16, scale)
	fileOn := fileOff
	fileOn.Observe = true
	var offWall, onWall, wallSecs, overlaps []float64
	for i := 0; i < obsloadRuns; i++ {
		if _, w, err := runOnce(fileOff, tapejoin.CDTGH); err != nil {
			return nil, fmt.Errorf("file run (observe off): %w", err)
		} else {
			offWall = append(offWall, w.Seconds())
		}
		res, w, err := runOnce(fileOn, tapejoin.CDTGH)
		if err != nil {
			return nil, fmt.Errorf("file run (observe on): %w", err)
		}
		onWall = append(onWall, w.Seconds())
		wallSecs = append(wallSecs, res.Stats.WallElapsed.Seconds())
		overlaps = append(overlaps, res.Stats.WallOverlap)
	}
	offBest, onBest := minOf(offWall), minOf(onWall)
	overhead := onBest - offBest
	budget := math.Max(offBest*obsloadWallBudget, obsloadWallSlack.Seconds())
	rows = append(rows, ObsloadRow{
		Check: "file wall overhead (spans+metrics+recorder)",
		Value: fmt.Sprintf("off=%.3fs on=%.3fs overhead=%+.1f%%",
			offBest, onBest, 100*overhead/offBest),
		Budget: fmt.Sprintf("<= %.3fs", budget),
		Pass:   overhead <= budget,
	})
	for _, m := range []struct {
		name    string
		samples []float64
	}{
		{"wall-sec", wallSecs},
		{"wall-overlap", overlaps},
	} {
		mean, cv := meanCV(m.samples)
		rows = append(rows, ObsloadRow{
			Check:  m.name + " run-to-run variance",
			Value:  fmt.Sprintf("mean=%.4f cv=%.1f%% (n=%d)", mean, 100*cv, len(m.samples)),
			Budget: "report",
			Pass:   true,
		})
	}
	return rows, nil
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// meanCV returns the sample mean and the coefficient of variation
// (stddev/mean; 0 when the mean is 0).
func meanCV(xs []float64) (mean, cv float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / float64(len(xs)))
	return mean, sd / mean
}

// ObsloadVerdict returns a non-nil error when any budgeted check
// failed, so callers can exit nonzero after printing the table.
func ObsloadVerdict(rows []ObsloadRow) error {
	bad := 0
	for _, r := range rows {
		if !r.Pass {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("obsload: %d of %d checks over budget", bad, len(rows))
	}
	return nil
}

// FormatObsload renders the overhead checks as a table.
func FormatObsload(rows []ObsloadRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		status := "ok"
		if !r.Pass {
			status = "OVER BUDGET"
		}
		out = append(out, []string{r.Check, r.Value, r.Budget, status})
	}
	return FormatTable([]string{"Check", "Value", "Budget", "Status"}, out)
}
