package service

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzServiceRequest fuzzes the daemon's query-decode path. The
// contract under fuzz: DecodeRequest either rejects with a typed
// ErrBadRequest or returns a request that (a) passes Validate and
// (b) survives a marshal/decode round trip unchanged — so nothing the
// wire can carry ever reaches the scheduler out of bounds, and the
// decoder never panics.
func FuzzServiceRequest(f *testing.F) {
	seeds := []string{
		`{"r":"R1","s":"S1"}`,
		`{"id":"q1","tenant":"t0","method":"CDT-NB/MB","r":"R1","s":"S2","priority":5,"deadline_ms":1500,"stream":true}`,
		`{"r":"R1","s":"S1","priority":-101}`,
		`{"r":"R1","s":"S1","unknown":true}`,
		`{"r":"","s":"S1"}`,
		`{"r":"R1","s":"S1"}{"r":"R2","s":"S2"}`,
		`null`,
		`[]`,
		`{"r":"�","s":"S1","deadline_ms":99999999999}`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("rejection not typed ErrBadRequest: %v", err)
			}
			return
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("decoded request fails Validate: %v", err)
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		req2, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("round trip rejected: %v (body %s)", err, enc)
		}
		if *req != *req2 {
			t.Fatalf("round trip changed the request: %+v != %+v", req, req2)
		}
	})
}
