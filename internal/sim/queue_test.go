package sim

import (
	"testing"
	"time"
)

func TestQueueSendRecv(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 2)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			q.Send(p, i)
			p.Hold(time.Millisecond)
		}
		q.Close(p)
	})
	k.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got %v, want 1..5 in order", got)
		}
	}
}

func TestQueueSendBlocksWhenFull(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string](k, "q", 1)
	var sentSecondAt Time
	k.Spawn("producer", func(p *Proc) {
		q.Send(p, "a")
		q.Send(p, "b") // blocks until consumer receives "a"
		sentSecondAt = p.Now()
		q.Close(p)
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Hold(4 * time.Second)
		for {
			if _, ok := q.Recv(p); !ok {
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sentSecondAt != Time(4*time.Second) {
		t.Fatalf("second send at %v, want 4s", sentSecondAt)
	}
}

func TestQueueRecvBlocksWhenEmpty(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 4)
	var recvAt Time
	k.Spawn("consumer", func(p *Proc) {
		q.Recv(p)
		recvAt = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Hold(2 * time.Second)
		q.Send(p, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != Time(2*time.Second) {
		t.Fatalf("recv at %v, want 2s", recvAt)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 4)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		q.Send(p, 1)
		q.Send(p, 2)
		q.Close(p)
		q.Close(p) // double close is a no-op
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Hold(time.Second)
		for {
			v, ok := q.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueCloseWakesBlockedReceiver(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 4)
	var ok bool = true
	k.Spawn("consumer", func(p *Proc) {
		_, ok = q.Recv(p)
	})
	k.Spawn("closer", func(p *Proc) {
		p.Hold(time.Second)
		q.Close(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Recv on closed empty queue should report ok=false")
	}
}

func TestQueueSendOnClosedPanics(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 1)
	k.Spawn("bad", func(p *Proc) {
		q.Close(p)
		q.Send(p, 1)
	})
	if err := k.Run(); err == nil {
		t.Fatal("expected captured panic")
	}
}

func TestQueueLen(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, "q", 4)
	k.Spawn("a", func(p *Proc) {
		q.Send(p, 1)
		q.Send(p, 2)
		if q.Len() != 2 {
			t.Errorf("len = %d, want 2", q.Len())
		}
		q.Recv(p)
		if q.Len() != 1 {
			t.Errorf("len = %d, want 1", q.Len())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Name() != "q" {
		t.Fatalf("name = %q", q.Name())
	}
}

func TestQueueBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue[int](NewKernel(), "q", 0)
}
