package tapejoin

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DeviceBusyReport is one device's contribution to a phase.
type DeviceBusyReport struct {
	// Device names the device ("R", "S", "disk0", ...).
	Device string
	// Busy is the device's busy time within the phase, with
	// overlapping requests merged (never exceeds the phase wall time).
	Busy time.Duration
	// Blocks counts blocks moved by the device within the phase.
	Blocks int64
}

// PhaseReport is the critical-path analysis of one join phase: all
// top-level spans sharing a name ("copy-R", "stage-S", "join-chunk",
// ...) and every device event attributed to them.
type PhaseReport struct {
	// Name is the phase (span) name.
	Name string
	// Count is the number of span instances merged into this phase.
	Count int
	// Wall is the summed wall-clock time of the phase's spans
	// (overlapping instances merged).
	Wall time.Duration
	// RealWall is the phase's real elapsed time (union of its spans'
	// wall-clock intervals). Zero on the "sim" backend; measured on the
	// "file" backend, where comparing it to Wall shows how modeled and
	// real time diverge per phase.
	RealWall time.Duration
	// Busy breaks the phase down by device, busiest first.
	Busy []DeviceBusyReport
	// Bottleneck is the busiest device — the phase's critical path.
	Bottleneck string
	// BottleneckBusy is the bottleneck device's busy time.
	BottleneckBusy time.Duration
	// Overlap is the fraction of device busy time hidden behind other
	// devices: 0 when devices take strict turns, approaching 1 when
	// they run fully in parallel. Concurrent methods should report
	// measurably higher overlap than their sequential counterparts.
	Overlap float64
}

// Report is the structured observability output of a Join run on a
// system configured with Observe.
type Report struct {
	// Total analyzes the whole run across all phases.
	Total PhaseReport
	// Phases lists per-phase analyses in first-execution order.
	Phases []PhaseReport

	spans  []*obs.Span
	events []trace.Event
	reg    *obs.Registry
	end    sim.Time
}

func toPhaseReport(s obs.PhaseStat) PhaseReport {
	out := PhaseReport{
		Name:           s.Name,
		Count:          s.Count,
		Wall:           time.Duration(s.Wall),
		RealWall:       s.RealWall,
		Bottleneck:     s.Bottleneck,
		BottleneckBusy: time.Duration(s.BottleneckBusy),
		Overlap:        s.Overlap,
	}
	for _, b := range s.Busy {
		out.Busy = append(out.Busy, DeviceBusyReport{
			Device: b.Device,
			Busy:   time.Duration(b.Busy),
			Blocks: b.Blocks,
		})
	}
	sort.SliceStable(out.Busy, func(i, j int) bool { return out.Busy[i].Busy > out.Busy[j].Busy })
	return out
}

func newReport(tr *obs.Tracker, rec *trace.Recorder, reg *obs.Registry, end sim.Time) *Report {
	spans := tr.Spans()
	a := obs.Analyze(spans, rec.Events, end)
	r := &Report{
		Total:  toPhaseReport(a.Total),
		spans:  spans,
		events: rec.Events,
		reg:    reg,
		end:    end,
	}
	for _, ph := range a.Phases {
		r.Phases = append(r.Phases, toPhaseReport(ph))
	}
	return r
}

// ChromeTrace renders the run as Chrome trace_event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing: one track per
// device, one per process span stack, slices for spans and device
// requests, instants for faults and marks.
func (r *Report) ChromeTrace() ([]byte, error) {
	return obs.ChromeTrace(r.spans, r.events)
}

// WriteJSONL streams the run as JSON Lines: one span or device event
// per line, timestamps in virtual seconds.
func (r *Report) WriteJSONL(w io.Writer) error {
	return obs.WriteJSONL(w, r.spans, r.events)
}

// MetricsText renders the metrics registry in Prometheus text
// exposition format.
func (r *Report) MetricsText() string { return r.reg.Exposition() }

// MetricsJSON renders the metrics registry as a JSON document.
func (r *Report) MetricsJSON() ([]byte, error) { return r.reg.JSON() }

// String renders the per-phase table: wall time, bottleneck device,
// and overlap fraction per phase, with the whole-run total first. A
// wall-clocked (file backend) run gains a "real" column: the phase's
// measured elapsed time alongside its modeled virtual time.
func (r *Report) String() string {
	real := r.Total.RealWall > 0
	var b strings.Builder
	if real {
		fmt.Fprintf(&b, "%-14s %5s %10s %10s %10s %-6s %7s\n",
			"phase", "count", "wall", "real", "busy", "dev", "overlap")
	} else {
		fmt.Fprintf(&b, "%-14s %5s %10s %10s %-6s %7s\n",
			"phase", "count", "wall", "busy", "dev", "overlap")
	}
	row := func(p PhaseReport) {
		if real {
			fmt.Fprintf(&b, "%-14s %5d %10s %10s %10s %-6s %6.1f%%\n",
				p.Name, p.Count, fmtDur(p.Wall), fmtDur(p.RealWall),
				fmtDur(p.BottleneckBusy), p.Bottleneck, p.Overlap*100)
		} else {
			fmt.Fprintf(&b, "%-14s %5d %10s %10s %-6s %6.1f%%\n",
				p.Name, p.Count, fmtDur(p.Wall), fmtDur(p.BottleneckBusy),
				p.Bottleneck, p.Overlap*100)
		}
	}
	row(r.Total)
	for _, p := range r.Phases {
		row(p)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}
