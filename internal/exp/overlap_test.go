package exp

import (
	"strings"
	"testing"
)

func TestOverlapConcurrentBeatsSequential(t *testing.T) {
	rows, err := Overlap(0.2, "sim")
	if err != nil {
		t.Fatal(err)
	}
	totals := map[string]float64{}
	for _, r := range rows {
		if r.Phase == "TOTAL" {
			totals[r.Method] = r.Overlap
		}
	}
	if len(totals) != 7 {
		t.Fatalf("want TOTAL rows for all 7 methods, got %v", totals)
	}
	for _, pair := range [][2]string{
		{"CDT-NB/MB", "DT-NB"},
		{"CDT-NB/DB", "DT-NB"},
		{"CDT-GH", "DT-GH"},
		{"CTT-GH", "TT-GH"},
	} {
		conc, seq := totals[pair[0]], totals[pair[1]]
		if conc <= seq {
			t.Errorf("%s overlap %.3f not above %s %.3f", pair[0], conc, pair[1], seq)
		}
	}
	for m, v := range totals {
		if v < 0 || v >= 1 {
			t.Errorf("%s overlap %v outside [0, 1)", m, v)
		}
	}

	text := FormatOverlap(rows)
	if !strings.Contains(text, "Bottleneck") || !strings.Contains(text, "CTT-GH") {
		t.Errorf("table:\n%s", text)
	}
}
