package tapejoin_test

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	tapejoin "repro"
)

// TestSystemCloseIdempotentRace pins System.Close's concurrency
// contract: many goroutines closing the system while others scrape its
// obs server must neither race nor double-close, and every Close call
// — concurrent or sequential — returns the same outcome. Run under
// -race in CI.
func TestSystemCloseIdempotentRace(t *testing.T) {
	sys, err := tapejoin.NewSystem(tapejoin.Config{
		MemoryMB: 2, DiskMB: 8, ObsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := sys.ObsAddr()
	if addr == "" {
		t.Fatal("no obs address")
	}

	var wg sync.WaitGroup
	// Scrapers hammer /metrics and /health across the close; requests
	// may succeed or fail with a connection error, but must never hang
	// or crash the server.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				resp, err := http.Get("http://" + addr + "/metrics")
				if err != nil {
					return // server went down mid-scrape: expected
				}
				resp.Body.Close()
			}
		}()
	}
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- sys.Close()
		}()
	}
	wg.Wait()
	close(errs)
	var outcomes []string
	for err := range errs {
		outcomes = append(outcomes, fmt.Sprint(err))
	}
	for _, o := range outcomes {
		if o != outcomes[0] {
			t.Fatalf("divergent Close outcomes: %v", outcomes)
		}
	}
	// Sequential closes after the fact return the recorded outcome.
	if got := fmt.Sprint(sys.Close()); got != outcomes[0] {
		t.Fatalf("later Close returned %q, concurrent ones %q", got, outcomes[0])
	}
	if outcomes[0] != "<nil>" {
		t.Fatalf("close error: %s", outcomes[0])
	}
	// The obs server must actually be gone.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("obs server still serving after Close")
	}
}
