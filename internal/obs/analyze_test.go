package obs

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

func span(id, parent int64, name string, start, end sim.Time) *Span {
	return &Span{ID: id, Parent: parent, Name: name, Start: start, End: end}
}

func ev(dev string, kind trace.Kind, start, end sim.Time, blocks, spanID int64) trace.Event {
	return trace.Event{Device: dev, Kind: kind, Start: start, End: end, Blocks: blocks, Span: spanID}
}

func TestAnalyzeOverlapAndBottleneck(t *testing.T) {
	// Phase "par": tape and disk fully concurrent for 10s each.
	// Phase "seq": tape 10s then disk 10s, strictly alternating.
	spans := []*Span{
		span(1, 0, "par", 0, secs(10)),
		span(2, 0, "seq", secs(10), secs(30)),
	}
	events := []trace.Event{
		ev("tape:S", trace.TapeRead, 0, secs(10), 100, 1),
		ev("disk0", trace.DiskWrite, 0, secs(10), 80, 1),
		ev("tape:S", trace.TapeRead, secs(10), secs(20), 100, 2),
		ev("disk0", trace.DiskWrite, secs(20), secs(30), 80, 2),
	}
	r := Analyze(spans, events, secs(30))

	if len(r.Phases) != 2 {
		t.Fatalf("got %d phases", len(r.Phases))
	}
	par, seq := r.Phases[0], r.Phases[1]
	if par.Name != "par" || par.Overlap != 0.5 {
		t.Errorf("par overlap = %v, want 0.5", par.Overlap)
	}
	if seq.Overlap != 0 {
		t.Errorf("seq overlap = %v, want 0", seq.Overlap)
	}
	if par.Wall != sim.Duration(10*time.Second) || seq.Wall != sim.Duration(20*time.Second) {
		t.Errorf("walls = %v, %v", par.Wall, seq.Wall)
	}
	// Equal busy times: the alphabetically first device wins the tie.
	if par.Bottleneck != "disk0" || par.BottleneckBusy != sim.Duration(10*time.Second) {
		t.Errorf("par bottleneck = %s (%v)", par.Bottleneck, par.BottleneckBusy)
	}
	// Total: 40s of device busy over a 30s union.
	if got := r.Total.Overlap; got != 0.25 {
		t.Errorf("total overlap = %v, want 0.25", got)
	}
	if r.Total.Wall != sim.Duration(30*time.Second) {
		t.Errorf("total wall = %v", r.Total.Wall)
	}
	if len(par.Busy) != 2 || par.Busy[0].Blocks != 80 || par.Busy[1].Blocks != 100 {
		t.Errorf("par busy = %+v", par.Busy)
	}
}

func TestAnalyzeRollsChildEventsUpToPhase(t *testing.T) {
	spans := []*Span{
		span(1, 0, "join-chunk", 0, secs(10)),
		span(2, 1, "bucket-pair", 0, secs(5)),        // child
		span(3, 2, "retry-backoff", 0, secs(1)),      // grandchild
		span(4, 0, "join-chunk", secs(10), secs(20)), // second instance merges
	}
	events := []trace.Event{
		ev("disk0", trace.DiskRead, 0, secs(4), 4, 3), // via grandchild
		ev("disk0", trace.DiskRead, secs(12), secs(16), 4, 4),
		ev("disk0", trace.DiskRead, secs(25), secs(26), 1, 0), // unattributed
		{Device: "-", Kind: trace.Mark, Start: secs(5), End: secs(5), Span: 1},
	}
	r := Analyze(spans, events, secs(30))
	if len(r.Phases) != 1 {
		t.Fatalf("phases = %+v", r.Phases)
	}
	p := r.Phases[0]
	if p.Name != "join-chunk" || p.Count != 2 {
		t.Errorf("phase = %s count %d", p.Name, p.Count)
	}
	if p.Wall != sim.Duration(20*time.Second) {
		t.Errorf("wall = %v", p.Wall)
	}
	// Both attributed reads (4s each) land in the phase; the
	// unattributed one only shows in TOTAL.
	if p.BottleneckBusy != sim.Duration(8*time.Second) || p.Busy[0].Blocks != 8 {
		t.Errorf("busy = %v blocks %d", p.BottleneckBusy, p.Busy[0].Blocks)
	}
	if r.Total.BottleneckBusy != sim.Duration(9*time.Second) {
		t.Errorf("total busy = %v", r.Total.BottleneckBusy)
	}
}
