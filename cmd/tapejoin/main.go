// Command tapejoin runs a single tertiary join on the simulated
// device complex and reports its statistics:
//
//	tapejoin -method CTT-GH -r 2500 -s 10000 -mem 16 -disk 500
//
// Sizes are in megabytes (the paper's units). The output reports the
// virtual response time, phase breakdown, device traffic, and the
// verified join cardinality.
//
// With -batch N the command instead runs a synthetic N-query workload
// through the multi-query engine, scheduling the batch over the shared
// drives under -policy (fifo, mount-aware or shared-scan):
//
//	tapejoin -batch 9 -policy shared-scan -r 4 -s 64 -mem 16 -disk 128 -cache 32
package main

import (
	"flag"
	"fmt"
	"os"

	tapejoin "repro"
)

func main() {
	method := flag.String("method", "CTT-GH", "join method: DT-NB, CDT-NB/MB, CDT-NB/DB, DT-GH, CDT-GH, CTT-GH, TT-GH (also TT-SM, SYM-H)")
	rMB := flag.Int64("r", 100, "size of R, the smaller relation (MB)")
	sMB := flag.Int64("s", 1000, "size of S, the larger relation (MB)")
	memMB := flag.Float64("mem", 16, "main memory M (MB)")
	diskMB := flag.Float64("disk", 100, "disk scratch space D (MB)")
	disks := flag.Int("disks", 2, "number of disk drives n")
	ratio := flag.Float64("speed-ratio", 2, "disk/tape speed ratio X_D/X_T")
	compress := flag.Int("compress", 25, "tape data compressibility: 0, 25 or 50 (%)")
	ideal := flag.Bool("ideal", false, "use the paper's idealized cost model (no seeks or penalties)")
	split := flag.Bool("split-buffer", false, "use naive split double-buffering instead of interleaved")
	seed := flag.Int64("seed", 42, "data generator seed")
	keyspace := flag.Uint64("keyspace", 1<<20, "join key space size")
	verify := flag.Bool("verify", true, "check output cardinality against the generator's expectation")
	limit := flag.Int64("limit", 0, "print the first n matched pairs as a sample; presentation-only — the join still runs to completion and the match count stays exact (0 = print none)")
	stopAfter := flag.Int64("stop-after", 0, "stop the join itself after n output pairs — a true LIMIT-n: tape reads cease, the pipelines unwind, and the reported count covers only the delivered prefix (0 = run to completion; SYM-H streams matches earliest)")
	timeline := flag.Bool("timeline", false, "render a device-activity timeline of the run")
	faults := flag.String("faults", "", `fault schedule to inject, e.g. "transient=R:100:2,diskfail=1@40s" or "random=7:3"`)
	noRecover := flag.Bool("no-recover", false, "disable retry/checkpoint/degrade recovery (faults become fatal)")
	phases := flag.Bool("phases", false, "print the per-phase critical-path analysis (bottleneck device, overlap)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file (load in Perfetto / chrome://tracing)")
	eventsOut := flag.String("events-out", "", "write the span/event stream as JSON Lines")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry in Prometheus text format")
	batch := flag.Int("batch", 0, "run a synthetic batch of this many queries through the workload engine (0 = single join)")
	policy := flag.String("policy", "mount-aware", "batch scheduling policy: fifo, mount-aware or shared-scan")
	cacheMB := flag.Float64("cache", 0, "disk staging cache for the batch engine (MB, 0 = disabled)")
	backend := flag.String("backend", "sim", "storage backend: sim (virtual-time simulator) or file (real OS files, wall-clock transfers)")
	backendDir := flag.String("backend-dir", "", "scratch directory for -backend=file (default: the OS temp directory)")
	fileSync := flag.String("file-sync", "interval", "-backend=file fsync policy: none, interval or always")
	fileSynchronous := flag.Bool("file-synchronous", false, "-backend=file: disable the async I/O engine (transfers serialize in wall-clock time)")
	filePace := flag.Float64("file-pace", 0, "-backend=file: emulate modeled device bandwidths sped up this factor in wall-clock (0 = page-cache speed)")
	fileTimeout := flag.Duration("file-timeout", 0, "-backend=file: wall-clock deadline per device operation; overruns degrade the device and trip its breaker (0 = no deadline)")
	obsAddr := flag.String("obs-addr", "", "serve live telemetry (/metrics, /health, /flight, /debug/pprof) on this address while the run is in flight, e.g. 127.0.0.1:9100 (implies observability)")
	flag.Parse()

	obsOut := obsOutputs{
		phases:  *phases,
		trace:   *traceOut,
		events:  *eventsOut,
		metrics: *metricsOut,
	}
	cfg := tapejoin.Config{
		Backend:            *backend,
		BackendDir:         *backendDir,
		FileSync:           *fileSync,
		FileSynchronous:    *fileSynchronous,
		FilePace:           *filePace,
		FileOpTimeout:      *fileTimeout,
		MemoryMB:           *memMB,
		DiskMB:             *diskMB,
		NumDisks:           *disks,
		DiskTapeSpeedRatio: *ratio,
		ObsAddr:            *obsAddr,
	}
	var err error
	if *batch > 0 {
		err = runBatch(cfg, *batch, *policy, *cacheMB, *rMB, *sMB, *seed, *keyspace, *verify)
	} else {
		err = run(cfg, *method, *rMB, *sMB, *compress, *ideal, *split, *seed,
			*keyspace, *verify, *timeline, *faults, *noRecover, *limit, *stopAfter, obsOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapejoin:", err)
		os.Exit(1)
	}
}

// obsOutputs collects the observability flags; any of them enables
// Config.Observe.
type obsOutputs struct {
	phases                 bool
	trace, events, metrics string
}

func (o obsOutputs) enabled() bool {
	return o.phases || o.trace != "" || o.events != "" || o.metrics != ""
}

func run(cfg tapejoin.Config, method string, rMB, sMB int64, compress int,
	ideal, split bool, seed int64, keyspace uint64,
	verify, timeline bool, faults string, noRecover bool,
	limit, stopAfter int64, obsOut obsOutputs) error {

	cfg.SplitBuffering = split
	cfg.CollectTrace = timeline
	cfg.Observe = obsOut.enabled()
	cfg.Faults = faults
	cfg.DisableRecovery = noRecover
	switch compress {
	case 0:
		cfg.Compression = tapejoin.Compress0
	case 25:
		cfg.Compression = tapejoin.Compress25
	case 50:
		cfg.Compression = tapejoin.Compress50
	default:
		return fmt.Errorf("compress must be 0, 25 or 50, got %d", compress)
	}
	if ideal {
		cfg.Profile = tapejoin.IdealTape
	}

	sys, err := tapejoin.NewSystem(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	if addr := sys.ObsAddr(); addr != "" {
		fmt.Printf("obs server listening on http://%s (/metrics /health /flight /debug/pprof)\n", addr)
	}
	tR, err := sys.NewTape("tape-R", rMB+sMB+2)
	if err != nil {
		return err
	}
	tS, err := sys.NewTape("tape-S", sMB+rMB+2)
	if err != nil {
		return err
	}
	r, err := sys.CreateRelation(tR, tapejoin.RelationConfig{
		Name: "R", SizeMB: rMB, KeySpace: keyspace, Seed: seed,
	})
	if err != nil {
		return err
	}
	s, err := sys.CreateRelation(tS, tapejoin.RelationConfig{
		Name: "S", SizeMB: sMB, KeySpace: keyspace, Seed: seed + 1,
	})
	if err != nil {
		return err
	}

	res, err := sys.JoinWith(tapejoin.Method(method), r, s, tapejoin.JoinOptions{
		StopAfter: stopAfter,
		Sample:    int(limit),
	})
	if err != nil {
		return err
	}
	st := res.Stats

	fmt.Printf("%s: R=%d MB  S=%d MB  M=%g MB  D=%g MB  n=%d disks  backend=%s\n",
		method, rMB, sMB, cfg.MemoryMB, cfg.DiskMB, cfg.NumDisks, cfg.Backend)
	fmt.Printf("  response time     %v\n", st.Response.Round(0))
	fmt.Printf("  step I (setup)    %v\n", st.StepI.Round(0))
	fmt.Printf("  bare read of S+R  %v\n", sys.BareReadTime(float64(sMB+rMB)).Round(0))
	fmt.Printf("  relative cost     %.1f\n",
		float64(st.Response)/float64(sys.BareReadTime(float64(sMB+rMB))))
	fmt.Printf("  iterations        %d\n", st.Iterations)
	fmt.Printf("  passes over R     %d\n", st.RScans)
	fmt.Printf("  tape read/write   %.0f / %.0f MB (%d seeks)\n", st.TapeReadMB, st.TapeWrittenMB, st.TapeSeeks)
	fmt.Printf("  disk read/write   %.0f / %.0f MB (peak %.1f MB)\n", st.DiskReadMB, st.DiskWrittenMB, st.DiskPeakMB)
	fmt.Printf("  memory peak       %.2f MB\n", st.MemPeakMB)
	fmt.Printf("  device util       tapeR %.0f%%  tapeS %.0f%%  disks %.0f%%\n",
		100*st.TapeRUtil, 100*st.TapeSUtil, 100*st.DiskUtil)
	fmt.Printf("  output tuples     %d\n", st.Matches)
	if st.FirstTuple > 0 {
		fmt.Printf("  first tuple       %v\n", st.FirstTuple.Round(0))
	}
	if st.Stopped {
		fmt.Printf("  stopped early     after %d pairs (stop-after %d)\n", st.Matches, stopAfter)
	}
	if len(res.Sample) > 0 {
		fmt.Printf("  sample pairs      first %d of %d:\n", len(res.Sample), st.Matches)
		for _, pr := range res.Sample {
			fmt.Printf("    r.key=%d s.key=%d\n", pr.RKey, pr.SKey)
		}
	}
	if st.WallElapsed > 0 {
		fmt.Printf("  wall elapsed      %v (real I/O, overlap %.0f%%)\n",
			st.WallElapsed.Round(0), 100*st.WallOverlap)
	}
	if faults != "" {
		fmt.Printf("  faults injected   %d (%d retries, %d unit restarts)\n",
			st.Faults, st.Retries, st.UnitRestarts)
		fmt.Printf("  recovery time     %v\n", st.RecoveryTime.Round(0))
		if st.DisksLost > 0 {
			fmt.Printf("  disks lost        %d\n", st.DisksLost)
		}
		if st.DriveLost {
			fmt.Printf("  drive lost        degraded to %s\n", st.DegradedTo)
		}
	}

	if timeline {
		fmt.Println("\ndevice timeline (r=read w=write s=seek x=exchange . idle):")
		fmt.Print(res.Timeline)
		fmt.Println("\nper-device busy breakdown:")
		fmt.Print(res.DeviceSummary)
		fmt.Println()
	}

	if obsOut.enabled() {
		if err := writeObs(res.Report, obsOut); err != nil {
			return err
		}
	}

	if verify {
		want := tapejoin.ExpectedMatches(r, s)
		if stopAfter > 0 && want > stopAfter {
			// A stopped run delivers an exact prefix: min(n, |R ⋈ S|).
			want = stopAfter
		}
		if st.Matches != want {
			return fmt.Errorf("VERIFICATION FAILED: %d matches, expected %d", st.Matches, want)
		}
		fmt.Printf("  verification      ok (%d expected matches)\n", want)
	}
	return nil
}

// runBatch builds a synthetic n-query batch — S relations spread over
// three cartridges, R relations over two, submission order alternating
// S cartridges — and runs it through the workload engine under the
// given policy.
func runBatch(cfg tapejoin.Config, n int, policy string, cacheMB float64,
	rMB, sMB int64, seed int64, keyspace uint64, verify bool) error {

	sys, err := tapejoin.NewSystem(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	if addr := sys.ObsAddr(); addr != "" {
		fmt.Printf("obs server listening on http://%s (/metrics /health /flight /debug/pprof)\n", addr)
	}

	nS := 3
	if n < nS {
		nS = n
	}
	sRels := make([]*tapejoin.Relation, nS)
	for i := range sRels {
		t, err := sys.NewTape(fmt.Sprintf("tape-S%d", i+1), sMB+2)
		if err != nil {
			return err
		}
		sRels[i], err = sys.CreateRelation(t, tapejoin.RelationConfig{
			Name: fmt.Sprintf("S%d", i+1), SizeMB: sMB,
			KeySpace: keyspace, Seed: seed + int64(100+i),
		})
		if err != nil {
			return err
		}
	}
	nR := 4
	if n < nR {
		nR = n
	}
	rRels := make([]*tapejoin.Relation, nR)
	for i := range rRels {
		t, err := sys.NewTape(fmt.Sprintf("tape-R%d", i/2+1), 2*rMB+2)
		if err != nil {
			return err
		}
		rRels[i], err = sys.CreateRelation(t, tapejoin.RelationConfig{
			Name: fmt.Sprintf("R%d", i+1), SizeMB: rMB,
			KeySpace: keyspace, Seed: seed + int64(i),
		})
		if err != nil {
			return err
		}
	}

	queries := make([]tapejoin.BatchQuery, n)
	expected := make([]int64, n)
	for i := range queries {
		r, s := rRels[i%nR], sRels[i%nS]
		queries[i] = tapejoin.BatchQuery{R: r, S: s}
		expected[i] = tapejoin.ExpectedMatches(r, s)
	}

	rep, err := sys.RunBatch(queries, tapejoin.BatchOptions{
		Policy:  tapejoin.BatchPolicy(policy),
		CacheMB: cacheMB,
	})
	if err != nil {
		return err
	}

	fmt.Printf("batch: %d queries  policy=%s  M=%g MB  D=%g MB  cache=%g MB\n",
		n, rep.Policy, cfg.MemoryMB, cfg.DiskMB, cacheMB)
	fmt.Printf("  makespan          %v\n", rep.Makespan.Round(0))
	fmt.Printf("  mounts            %d (R %d, S %d)\n", rep.Mounts, rep.RMounts, rep.SMounts)
	fmt.Printf("  shared passes     %d\n", rep.SharedPasses)
	fmt.Printf("  cache             %d hits, %d misses, %d evictions\n",
		rep.CacheHits, rep.CacheMisses, rep.CacheEvictions)
	fmt.Printf("  tape read/write   %.0f / %.0f MB\n", rep.TapeReadMB, rep.TapeWrittenMB)
	fmt.Printf("  disk peak         %.1f MB\n", rep.DiskPeakMB)
	fmt.Println("  queries:")
	for i, qr := range rep.Queries {
		flagStr := ""
		if qr.Shared {
			flagStr += " shared"
		}
		if qr.CacheHit {
			flagStr += " cache-hit"
		}
		if qr.Failed {
			fmt.Printf("    %-4s FAILED: %s\n", qr.ID, qr.Reason)
			continue
		}
		fmt.Printf("    %-4s %-10s wait %8v  run %8v  %d matches%s\n",
			qr.ID, qr.Method, qr.Wait.Round(0), (qr.End - qr.Start).Round(0), qr.Matches, flagStr)
		if verify && qr.Matches != expected[i] {
			return fmt.Errorf("VERIFICATION FAILED: query %s got %d matches, expected %d",
				qr.ID, qr.Matches, expected[i])
		}
	}
	if verify {
		fmt.Println("  verification      ok (all queries match expected cardinalities)")
	}
	return nil
}

// writeObs prints the phase analysis and writes the requested export
// files from a Join's observability report.
func writeObs(rep *tapejoin.Report, out obsOutputs) error {
	if out.phases {
		fmt.Println("\nphase analysis (critical path per phase):")
		fmt.Print(rep.String())
	}
	if out.trace != "" {
		data, err := rep.ChromeTrace()
		if err != nil {
			return err
		}
		if err := os.WriteFile(out.trace, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("  chrome trace      %s (load in ui.perfetto.dev)\n", out.trace)
	}
	if out.events != "" {
		f, err := os.Create(out.events)
		if err != nil {
			return err
		}
		if err := rep.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  event stream      %s\n", out.events)
	}
	if out.metrics != "" {
		if err := os.WriteFile(out.metrics, []byte(rep.MetricsText()), 0o644); err != nil {
			return err
		}
		fmt.Printf("  metrics           %s\n", out.metrics)
	}
	return nil
}
