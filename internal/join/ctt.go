package join

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/disk"
	"repro/internal/hashutil"
	"repro/internal/sim"
	"repro/internal/tape"
)

// estBucketBlocks estimates one bucket's on-disk size for a relation
// of n blocks over b buckets, with slack for the partial trailing
// block and hash-value variance.
func estBucketBlocks(n int64, b int) int64 {
	est := (n + int64(b) - 1) / int64(b)
	// Hash-variance slack: relative variance grows as buckets shrink,
	// so small buckets get proportionally more headroom.
	return est + est/8 + 2
}

// assemblableBucket returns the largest bucket (in blocks) whose
// estimated on-disk size fits in d blocks of assembly area — the
// inverse of estBucketBlocks' slack.
func assemblableBucket(d int64) int64 {
	// Buckets are bounded to half the assembly area: the window keeps
	// one estimated bucket of headroom so that hash-variance outliers
	// never overflow the disk (see hashRelationToTape).
	v := (d/2 - 2) * 8 / 9
	if v < 1 {
		v = 1
	}
	return v
}

// planTapeTape computes the bucket plan for a tape-tape method:
// buckets are bounded both by memory (join phase) and by the disk
// assembly area (Step I).
func planTapeTape(rBlocks, mBlocks, dBlocks int64) (hashutil.Plan, error) {
	return hashutil.PlanBucketsBounded(rBlocks, mBlocks, assemblableBucket(dBlocks))
}

// appendFileToTape streams a disk file to the drive's end of data and
// returns the contiguous region written. When pipelined, disk reads
// overlap tape writes through a small queue (the concurrent methods);
// otherwise the two alternate in one process (the sequential TT-GH).
func appendFileToTape(e *env, p *sim.Proc, f *disk.File, dst *tape.Drive, pipelined bool) (tape.Region, error) {
	var region tape.Region
	write := func(wp *sim.Proc, blks []block.Block) error {
		reg, err := dst.Append(wp, blks)
		if err != nil {
			return err
		}
		if region.N == 0 {
			region = reg
		} else {
			if reg.Start != region.End() {
				return fmt.Errorf("join: bucket append not contiguous at %d", reg.Start)
			}
			region.N += reg.N
		}
		return nil
	}

	if !pipelined {
		for off := int64(0); off < f.Len(); off += e.res.IOChunk {
			g := min64(e.res.IOChunk, f.Len()-off)
			blks, err := f.ReadAt(p, off, g)
			if err != nil {
				return tape.Region{}, err
			}
			if err := write(p, blks); err != nil {
				return tape.Region{}, err
			}
		}
		return region, nil
	}

	q := sim.NewQueue[[]block.Block](e.k, "append-pipe", 2)
	reader := e.k.Spawn("bucket-reader", func(rp *sim.Proc) {
		for off := int64(0); off < f.Len(); off += e.res.IOChunk {
			g := min64(e.res.IOChunk, f.Len()-off)
			blks, err := f.ReadAt(rp, off, g)
			if err != nil {
				panic(err)
			}
			q.Send(rp, blks)
		}
		q.Close(rp)
	})
	for {
		blks, ok := q.Recv(p)
		if !ok {
			break
		}
		if err := write(p, blks); err != nil {
			return tape.Region{}, err
		}
	}
	if err := p.Wait(reader); err != nil {
		return tape.Region{}, err
	}
	return region, nil
}

// hashRelationToTape implements Step I of the tape–tape methods: the
// source relation is hash-partitioned into plan.B buckets, a disk-load
// of buckets at a time. Each scan reads the source end to end, keeps
// the tuples of the current bucket window, assembles those buckets in
// full on disk, and appends them to dst's scratch space. Returns the
// per-bucket tape regions, stored contiguously in bucket order.
func hashRelationToTape(e *env, p *sim.Proc, src *tape.Drive, region tape.Region,
	tuplesPerBlock int, tag byte, plan hashutil.Plan, dst *tape.Drive,
	pipelined bool, keep keepFn, scans *int) ([]tape.Region, error) {

	b := plan.B
	est := estBucketBlocks(region.N, b)
	// Window sizing: per-bucket estimates already carry variance
	// slack, and over a wide window those margins pool, so large
	// windows need no extra headroom. Narrow windows (1-2 buckets)
	// cannot pool, so they reserve one whole estimated bucket against
	// a hash-variance outlier.
	g := e.res.DiskBlocks / est
	if g <= 2 {
		g = (e.res.DiskBlocks - est) / est
	}
	if g < 1 {
		return nil, fmt.Errorf("%w: D=%d cannot assemble one %d-block bucket with headroom",
			ErrNeedDisk, e.res.DiskBlocks, est)
	}
	if g > int64(b) {
		g = int64(b)
	}

	regions := make([]tape.Region, b)
	for lo := 0; lo < b; lo += int(g) {
		hi := lo + int(g)
		if hi > b {
			hi = b
		}
		window := hi - lo

		files := make([]*disk.File, 0, window)
		for i := 0; i < window; i++ {
			f, err := e.disks.Create(fmt.Sprintf("hb%d", lo+i), nil)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}

		memNeed := int64(window)*plan.WriteBuf + plan.InBuf
		e.mem.acquire(memNeed)
		pt := newPartitioner(b, plan.WriteBuf, tuplesPerBlock, tag,
			func(fp *sim.Proc, bkt int, blks []block.Block) error {
				return files[bkt-lo].Append(fp, blks)
			})
		pt.only = func(bkt int) bool { return bkt >= lo && bkt < hi }

		err := readTape(p, src, region, plan.InBuf, func(_ int64, blks []block.Block) error {
			var addErr error
			forEachTuple(blks, func(t block.Tuple) {
				if addErr != nil || (keep != nil && !keep(t)) {
					return
				}
				addErr = pt.add(p, t)
			})
			return addErr
		})
		if err != nil {
			return nil, err
		}
		if err := pt.finish(p); err != nil {
			return nil, err
		}
		e.mem.release(memNeed)
		*scans++

		// Append the completed buckets to the destination tape in
		// bucket order.
		for i, f := range files {
			reg, err := appendFileToTape(e, p, f, dst, pipelined)
			if err != nil {
				return nil, err
			}
			regions[lo+i] = reg
			f.Free()
		}
	}
	return regions, nil
}

// CTTGH is Concurrent Tape–Tape Grace Hash Join (Section 5.2.1): R is
// hashed from tape to tape using disk as an assembly area, then S is
// hashed to disk a chunk at a time (double-buffered) and joined with
// the tape-resident R buckets. The only method whose disk requirement
// is independent of |R| — the paper's sole candidate for very large
// joins.
type CTTGH struct{}

// Name implements Method.
func (CTTGH) Name() string { return "Concurrent Tape-Tape Grace Hash Join" }

// Symbol implements Method.
func (CTTGH) Symbol() string { return "CTT-GH" }

// Check implements Method: M >= sqrt(|R|); D holds one R bucket and
// one block per S bucket; R's tape has scratch space for its hashed
// copy (T_R = |R| in Table 2).
func (CTTGH) Check(spec Spec, res Resources) error {
	plan, err := planTapeTape(spec.R.Region.N, res.MemoryBlocks, res.DiskBlocks)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNeedMemory, err)
	}
	if est := estBucketBlocks(spec.R.Region.N, plan.B); res.DiskBlocks < 2*est {
		return fmt.Errorf("%w: D=%d cannot assemble one %d-block R bucket with headroom", ErrNeedDisk, res.DiskBlocks, est)
	}
	if res.DiskBlocks < int64(plan.B)+1 {
		return fmt.Errorf("%w: D=%d cannot buffer S over %d buckets", ErrNeedDisk, res.DiskBlocks, plan.B)
	}
	if scratch := spec.R.Media.Free(); scratch < spec.R.Region.N+int64(plan.B) {
		return fmt.Errorf("%w: R tape has %d free, hashed R needs ~%d",
			ErrNeedTapeScratch, scratch, spec.R.Region.N+int64(plan.B))
	}
	return nil
}

func (CTTGH) run(e *env, p *sim.Proc) error {
	plan, err := planTapeTape(e.spec.R.Region.N, e.res.MemoryBlocks, e.res.DiskBlocks)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNeedMemory, err)
	}
	// Step I: hash R from the R tape back onto the R tape's scratch
	// space, assembling a disk-load of buckets per scan.
	rRegions, err := hashRelationToTape(e, p, e.driveR, e.spec.R.Region,
		e.spec.R.TuplesPerBlock, e.spec.R.Tag, plan, e.driveR, true, e.filterR(), &e.stats.RScans)
	if err != nil {
		return err
	}
	e.markStepI(p)

	scanBuf := scanBufFor(plan, e.res.MemoryBlocks)
	maxLoad := e.res.MemoryBlocks - scanBuf

	// Step II: all of D double-buffers the S buckets (|S_i| = d = D).
	dbuf := e.newDoubleBuffer("s-buckets", e.res.DiskBlocks)
	chunkCap := dbuf.ChunkCapacity() - int64(plan.B)
	if chunkCap < 1 {
		return fmt.Errorf("%w: D=%d cannot buffer S over %d buckets", ErrNeedDisk, e.res.DiskBlocks, plan.B)
	}
	s := e.spec.S.Region

	type iterChunk struct {
		iter  int64
		files []*disk.File
	}
	q := sim.NewQueue[iterChunk](e.k, "ctt-chunks", 1)

	hasher := e.k.Spawn("s-hasher", func(hp *sim.Proc) {
		iter := int64(0)
		for off := int64(0); off < s.N; off += chunkCap {
			n := min64(chunkCap, s.N-off)
			it := iter
			files, err := partitionTapeToDisk(e, hp, e.driveS, s.Sub(off, n),
				e.spec.S.TuplesPerBlock, e.spec.S.Tag, plan, "sb", e.filterS(),
				func(fp *sim.Proc, blks int64) { dbuf.Acquire(fp, it, blks) })
			if err != nil {
				panic(err)
			}
			q.Send(hp, iterChunk{iter, files})
			iter++
		}
		q.Close(hp)
	})

	// With a bi-directional drive, alternate the bucket scan direction
	// each iteration: the head finishes iteration i exactly where
	// iteration i+1 begins, eliminating the long seek back across the
	// hashed-R run (the paper's footnote-2 observation that the
	// algorithms are independent of scan direction).
	biDir := e.driveR.Config().BiDirectional
	for {
		c, ok := q.Recv(p)
		if !ok {
			break
		}
		backward := biDir && c.iter%2 == 1
		for b := 0; b < plan.B; b++ {
			idx := b
			if backward {
				idx = plan.B - 1 - b
			}
			rSrc := tapeBucket{drive: e.driveR, region: rRegions[idx], reverse: backward}
			if err := joinBucketPair(e, p, rSrc, diskBucket{c.files[idx]}, maxLoad, scanBuf); err != nil {
				return err
			}
			dbuf.Release(p, c.iter, c.files[idx].Len())
			c.files[idx].Free()
		}
		e.stats.Iterations++
		e.stats.RScans++
	}
	return p.Wait(hasher)
}
