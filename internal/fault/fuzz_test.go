package fault

import (
	"testing"
)

// FuzzParse throws arbitrary specs at the fault-schedule grammar. The
// property is total robustness: Parse never panics, and a nil error
// implies a usable schedule. The parser fronts the cmd/tapejoin
// -faults flag, so every byte sequence a user can type must come back
// as either a schedule or an error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"transient=R:100:2",
		"hard=S:42",
		"corrupt=disk:7:3",
		"stall=R:90s:2",
		"diskfail=1@40s",
		"drivefail=R@1h10m",
		"random=7:3",
		"transient=R:100:2,diskfail=1@40s,random=7:3",
		"stall=disk0:500ms",
		// OS-level directives for the file backend.
		"oserr=S:12:2",
		"torn=disk:5",
		"oswait=disk:200ms:3",
		"flip=disk0:9",
		"oserr=R:0,torn=R:0,oswait=R:1ns,flip=R:0",
		"transient=R:5,oswait=disk:2s:50,flip=disk:40,drivefail=S@30s",
		"oswait=disk:-1s",
		"torn=disk",
		"flip=:3",
		// Near-misses that must error cleanly, not crash.
		"transient=R",
		"transient=R:x:y",
		"diskfail=@",
		"drivefail=Q@-5s",
		"random=",
		"=",
		"unknown=1",
		"transient=R:9223372036854775807:2147483647",
		",,,",
		"stall=R:1ns:0,stall=R:1ns:0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := Parse(spec)
		if err != nil {
			if s != nil {
				t.Fatalf("Parse(%q) returned both a schedule and error %v", spec, err)
			}
			return
		}
		if s == nil {
			t.Fatalf("Parse(%q) returned nil schedule and nil error", spec)
		}
		// Round-trip property: every accepted spec renders back into
		// the grammar, and the rendered form is a fixed point.
		rendered := s.String()
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", spec, rendered, err)
		}
		if again := s2.String(); again != rendered {
			t.Fatalf("String not a fixed point for %q: %q -> %q", spec, rendered, again)
		}
		if s2.Len() != s.Len() {
			t.Fatalf("round-trip of %q changed rule count: %d -> %d", spec, s.Len(), s2.Len())
		}
	})
}
