package tapejoin

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/obsserver"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/workload"
)

// ServiceOptions configures the resident join daemon started by
// System.StartService.
type ServiceOptions struct {
	// Addr is the HTTP bind address (default "127.0.0.1:0"; read the
	// bound address from Service.Addr).
	Addr string
	// Policy selects the online scheduler (default mount-aware).
	Policy BatchPolicy
	// CacheMB, MountSeconds and MaxShared tune the engine exactly as in
	// BatchOptions.
	CacheMB      float64
	MountSeconds float64
	MaxShared    int
	// MergeWindow holds a shared-scan seed query back for up to this
	// wall-clock duration so later same-S arrivals merge into its tape
	// pass. Only meaningful under BatchSharedScan.
	MergeWindow time.Duration
	// TenantQuota caps each tenant's outstanding queries (0 =
	// unlimited).
	TenantQuota int
	// Catalog names the relations queries may reference.
	Catalog map[string]*Relation
}

// Service is a running resident join daemon: an HTTP/JSON front end
// (POST /join, GET /relations, GET /stats, plus the live-telemetry
// routes when the system has an obs server) over an online scheduler
// that shares the system's two drives, disk array and memory across
// continuously-arriving queries. Stop it with Drain.
type Service struct {
	srv  *service.Server
	addr string
}

// StartService starts the resident daemon on the system's device
// complex. Unlike Join and RunBatch — which build a fresh device
// complex per call — the service keeps one session resident: head
// positions, staged partitions and mounted cartridges persist across
// queries, and compatible same-S queries merge onto shared tape
// passes. The system's obs server (ObsAddr/ObsServer), when present,
// is pointed at the service's registry and mounted on the service mux,
// so one scrape endpoint covers the daemon.
func (s *System) StartService(opts ServiceOptions) (*Service, error) {
	if len(opts.Catalog) == 0 {
		return nil, errors.New("tapejoin: StartService needs a non-empty catalog")
	}
	if opts.Policy == "" {
		opts.Policy = BatchMountAware
	}
	policy, err := workload.ParsePolicy(string(opts.Policy))
	if err != nil {
		return nil, err
	}
	runRes := s.res
	// A resident service keeps only bounded telemetry: the metrics
	// registry and the flight-recorder ring. The unbounded span tracker
	// stays per-run (Join/RunBatch) where it has an end.
	runRes.Metrics = obs.NewRegistry()
	runRes.Flight = s.flight
	if s.cfg.Faults != "" {
		sched, err := fault.Parse(s.cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("tapejoin: %w", err)
		}
		runRes.Faults = sched
	}
	runRes.Recovery.Disabled = s.cfg.DisableRecovery

	cat := make(map[string]*relation.Relation, len(opts.Catalog))
	for name, r := range opts.Catalog {
		if r == nil {
			return nil, fmt.Errorf("tapejoin: catalog relation %q is nil", name)
		}
		cat[name] = r.rel
	}
	// The daemon always serves the live-telemetry routes on its own
	// mux: reuse the system's obs server when it has one (its separate
	// listener keeps working too), otherwise embed an unstarted one.
	obsSrv := s.obs
	if obsSrv == nil {
		obsSrv = obsserver.New()
	}
	srv, err := service.New(service.Config{
		Engine: workload.OnlineConfig{
			Config: workload.Config{
				Resources:   runRes,
				Policy:      policy,
				CacheBlocks: MBf(opts.CacheMB),
				MountTime:   time.Duration(opts.MountSeconds * float64(time.Second)),
				MaxShared:   opts.MaxShared,
			},
			MergeWindow: opts.MergeWindow,
		},
		Catalog:     cat,
		TenantQuota: opts.TenantQuota,
		Obs:         obsSrv,
		Health:      s.healthSource(),
	})
	if err != nil {
		return nil, err
	}
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	bound, err := srv.Start(addr)
	if err != nil {
		srv.Drain()
		return nil, err
	}
	return &Service{srv: srv, addr: bound}, nil
}

// Addr returns the daemon's bound address.
func (sv *Service) Addr() string { return sv.addr }

// URL returns the daemon's base URL.
func (sv *Service) URL() string { return "http://" + sv.addr }

// Drain shuts the daemon down gracefully: new queries get 503
// immediately, admitted queries are served to completion, in-flight
// responses finish streaming, then the listener closes. Safe to call
// more than once.
func (sv *Service) Drain() error { return sv.srv.Drain() }

// Close is Drain.
func (sv *Service) Close() error { return sv.srv.Drain() }

// Stats snapshots the daemon: admission counters, per-tenant
// outstanding queries, and the online engine's scheduler counters.
func (sv *Service) Stats() service.StatsBody { return sv.srv.Stats() }
