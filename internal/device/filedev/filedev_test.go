package filedev

import (
	"errors"
	"testing"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/tape"
)

func mkBlocks(tag byte, n int, keyBase uint64) []block.Block {
	out := make([]block.Block, n)
	for i := range out {
		b := block.NewBuilder(tag)
		b.Append(block.Tuple{Key: keyBase + uint64(i)})
		out[i] = b.Finish()
	}
	return out
}

func keyOf(t *testing.T, b block.Block) uint64 {
	t.Helper()
	_, tuples, err := b.Decode()
	if err != nil || len(tuples) == 0 {
		t.Fatalf("decode: %v", err)
	}
	return tuples[0].Key
}

// run spawns fn as a proc on a fresh kernel and drains it.
func run(t *testing.T, k *sim.Kernel, fn func(p *sim.Proc)) {
	t.Helper()
	k.Spawn("t", fn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func biDirCfg() device.DriveConfig {
	cfg := device.Ideal()
	cfg.BiDirectional = true
	return cfg
}

func TestDriveSpoolRoundTrip(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	d, err := b.NewDrive(k, "R", biDirCfg())
	if err != nil {
		t.Fatal(err)
	}
	m := tape.NewMedia("t1", 100)
	d.Load(m)
	run(t, k, func(p *sim.Proc) {
		reg, err := d.Append(p, mkBlocks(1, 10, 0))
		if err != nil {
			t.Fatal(err)
		}
		if reg.Start != 0 || reg.N != 10 {
			t.Fatalf("region = %+v", reg)
		}
		// Forward read through the OS-file spool.
		blks, err := d.ReadRegion(p, reg)
		if err != nil || len(blks) != 10 {
			t.Fatalf("ReadRegion: %d blocks, err %v", len(blks), err)
		}
		if keyOf(t, blks[3]) != 3 {
			t.Errorf("block 3 key = %d", keyOf(t, blks[3]))
		}
		// Reverse reading changes head motion only; like the simulated
		// drive, the blocks come back in forward order.
		rev, err := d.ReadRegionReverse(p, reg)
		if err != nil || len(rev) != 10 {
			t.Fatalf("ReadRegionReverse: %d blocks, err %v", len(rev), err)
		}
		if keyOf(t, rev[0]) != 0 || keyOf(t, rev[9]) != 9 {
			t.Errorf("reverse read reordered blocks: first key %d, last key %d",
				keyOf(t, rev[0]), keyOf(t, rev[9]))
		}
	})
}

// TestDriveWriteAtRepoints overwrites recorded blocks: the spool is
// append-only, so the overwrite lands as fresh records and the index
// repoints — later reads must see the new data, and the authoritative
// medium must agree.
func TestDriveWriteAtRepoints(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	d, err := b.NewDrive(k, "R", device.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	d.Load(tape.NewMedia("t1", 100))
	run(t, k, func(p *sim.Proc) {
		if _, err := d.Append(p, mkBlocks(1, 8, 0)); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteAt(p, 2, mkBlocks(2, 3, 100)); err != nil {
			t.Fatal(err)
		}
		blks, err := d.ReadAt(p, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range []uint64{0, 1, 100, 101, 102, 5, 6, 7} {
			if got := keyOf(t, blks[i]); got != want {
				t.Errorf("block %d key = %d, want %d", i, got, want)
			}
		}
	})
}

// TestDriveLoadRespoolsMedium mounts a cartridge that already carries
// data (written by a generator or another drive): Load must respool it
// into the drive's OS file so reads serve the recorded blocks.
func TestDriveLoadRespoolsMedium(t *testing.T) {
	m := tape.NewMedia("t1", 100)
	b := New(t.TempDir())
	k := sim.NewKernel()
	d1, _ := b.NewDrive(k, "A", device.Ideal())
	d1.Load(m)
	run(t, k, func(p *sim.Proc) {
		if _, err := d1.Append(p, mkBlocks(1, 6, 40)); err != nil {
			t.Fatal(err)
		}
	})

	k2 := sim.NewKernel()
	d2, _ := b.NewDrive(k2, "B", device.Ideal())
	d2.Load(m)
	run(t, k2, func(p *sim.Proc) {
		blks, err := d2.ReadAt(p, 0, 6)
		if err != nil || len(blks) != 6 {
			t.Fatalf("ReadAt after respool: %d blocks, err %v", len(blks), err)
		}
		if keyOf(t, blks[5]) != 45 {
			t.Errorf("respooled block 5 key = %d, want 45", keyOf(t, blks[5]))
		}
	})
}

func TestDriveReadOutOfRange(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	d, _ := b.NewDrive(k, "R", biDirCfg())
	d.Load(tape.NewMedia("t1", 100))
	run(t, k, func(p *sim.Proc) {
		d.Append(p, mkBlocks(1, 5, 0))
		for _, c := range []struct{ addr, n int64 }{
			{4, 2}, {5, 1}, {-1, 1}, {0, -1}, {0, 6},
		} {
			if _, err := d.ReadAt(p, device.Addr(c.addr), c.n); err == nil {
				t.Errorf("ReadAt(%d, %d): want out-of-range error", c.addr, c.n)
			}
			if _, err := d.ReadRegionReverse(p, device.Region{Start: device.Addr(c.addr), N: c.n}); err == nil {
				t.Errorf("ReadRegionReverse(%d, %d): want out-of-range error", c.addr, c.n)
			}
		}
	})
}

func TestStoreRoundTripAndBounds(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	st, err := b.NewStore(k, device.StoreConfig{
		NumDisks: 2, AggregateRate: 4, BlocksPerDisk: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalCapacity() != 100 {
		t.Fatalf("capacity = %d, want 100", st.TotalCapacity())
	}
	run(t, k, func(p *sim.Proc) {
		f, err := st.Create("scratch", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(p, mkBlocks(3, 7, 0)); err != nil {
			t.Fatal(err)
		}
		if f.Len() != 7 || st.Used() != 7 {
			t.Fatalf("len %d used %d", f.Len(), st.Used())
		}
		blks, err := f.ReadAt(p, 2, 3)
		if err != nil || len(blks) != 3 || keyOf(t, blks[0]) != 2 {
			t.Fatalf("ReadAt: %d blocks, err %v", len(blks), err)
		}
		if _, err := f.ReadAt(p, 5, 3); err == nil {
			t.Error("want error reading past end")
		}
		if _, err := f.ReadAt(p, -1, 1); err == nil {
			t.Error("want error for negative offset")
		}
		f.Free()
		if st.Used() != 0 {
			t.Errorf("used %d after Free", st.Used())
		}
	})
}

func TestStoreDiskFull(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	st, _ := b.NewStore(k, device.StoreConfig{
		NumDisks: 1, AggregateRate: 4, BlocksPerDisk: 4,
	})
	run(t, k, func(p *sim.Proc) {
		f, _ := st.Create("tight", nil)
		if err := f.Append(p, mkBlocks(3, 4, 0)); err != nil {
			t.Fatal(err)
		}
		err := f.Append(p, mkBlocks(3, 1, 0))
		if !errors.Is(err, device.ErrDiskFull) {
			t.Fatalf("err = %v, want ErrDiskFull", err)
		}
	})
}

// TestSharedPairRepositionsOnSwitch checks the shared-transport pair:
// both drives use one mechanism, so switching drives invalidates the
// head position and charges a reposition, and transfers serialize on
// the shared resource.
func TestSharedPairRepositionsOnSwitch(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	dA, dB, err := b.NewSharedDrivePair(k, "A", "B", device.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	dA.Load(tape.NewMedia("tA", 100))
	dB.Load(tape.NewMedia("tB", 100))
	run(t, k, func(p *sim.Proc) {
		if _, err := dA.Append(p, mkBlocks(1, 4, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := dB.Append(p, mkBlocks(2, 4, 50)); err != nil {
			t.Fatal(err)
		}
		// Back to A: its cached head position is stale after B held the
		// transport; the read must still deliver the right blocks.
		blks, err := dA.ReadAt(p, 0, 4)
		if err != nil || len(blks) != 4 || keyOf(t, blks[0]) != 0 {
			t.Fatalf("A after switch: %d blocks, err %v", len(blks), err)
		}
		blks, err = dB.ReadAt(p, 0, 4)
		if err != nil || len(blks) != 4 || keyOf(t, blks[0]) != 50 {
			t.Fatalf("B after switch: %d blocks, err %v", len(blks), err)
		}
	})
}

func TestBackendName(t *testing.T) {
	if got := New(t.TempDir()).Name(); got != "file" {
		t.Fatalf("Name() = %q", got)
	}
}
