package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestHoldAdvancesClock(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("a", func(p *Proc) {
		p.Hold(3 * time.Second)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(3*time.Second) {
		t.Fatalf("end = %v, want 3s", end)
	}
}

func TestHoldZeroAndNegative(t *testing.T) {
	k := NewKernel()
	k.Spawn("a", func(p *Proc) {
		p.Hold(0)
		p.Hold(-time.Second)
		if p.Now() != 0 {
			t.Errorf("now = %v, want 0", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelHoldsOverlap(t *testing.T) {
	// Two processes holding 5s and 7s concurrently finish at max, not sum.
	k := NewKernel()
	var endA, endB Time
	k.Spawn("a", func(p *Proc) { p.Hold(5 * time.Second); endA = p.Now() })
	k.Spawn("b", func(p *Proc) { p.Hold(7 * time.Second); endB = p.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if endA != Time(5*time.Second) || endB != Time(7*time.Second) {
		t.Fatalf("endA=%v endB=%v", endA, endB)
	}
	if k.Now() != Time(7*time.Second) {
		t.Fatalf("kernel now = %v, want 7s", k.Now())
	}
}

func TestSequentialHoldsAccumulate(t *testing.T) {
	k := NewKernel()
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Hold(time.Second)
		}
		if p.Now() != Time(10*time.Second) {
			t.Errorf("now = %v, want 10s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitForProcess(t *testing.T) {
	k := NewKernel()
	var waited Time
	child := k.Spawn("child", func(p *Proc) { p.Hold(4 * time.Second) })
	k.Spawn("parent", func(p *Proc) {
		if err := p.Wait(child); err != nil {
			t.Errorf("wait: %v", err)
		}
		waited = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if waited != Time(4*time.Second) {
		t.Fatalf("waited until %v, want 4s", waited)
	}
}

func TestWaitOnFinishedProcess(t *testing.T) {
	k := NewKernel()
	child := k.Spawn("child", func(p *Proc) {})
	k.Spawn("parent", func(p *Proc) {
		p.Hold(time.Second) // child finishes first
		if err := p.Wait(child); err != nil {
			t.Errorf("wait: %v", err)
		}
		if !child.Done() {
			t.Error("child not done")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllCollectsFirstError(t *testing.T) {
	k := NewKernel()
	a := k.Spawn("a", func(p *Proc) {})
	b := k.Spawn("b", func(p *Proc) { panic("boom") })
	k.Spawn("parent", func(p *Proc) {
		err := p.WaitAll(a, b)
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Errorf("WaitAll err = %v, want boom", err)
		}
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Run err = %v, want boom", err)
	}
}

func TestSpawnFromWithinProcess(t *testing.T) {
	k := NewKernel()
	var childEnd Time
	k.Spawn("parent", func(p *Proc) {
		p.Hold(time.Second)
		child := p.Kernel().Spawn("child", func(c *Proc) {
			c.Hold(2 * time.Second)
			childEnd = c.Now()
		})
		if err := p.Wait(child); err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != Time(3*time.Second) {
		t.Fatalf("child end = %v, want 3s", childEnd)
	}
}

func TestPanicIsCapturedAsError(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(p *Proc) { panic("kaput") })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v, want kaput", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "dev", 1)
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		// Never releases; the waiter below deadlocks.
		q := NewQueue[int](k, "never", 1)
		q.Recv(p)
	})
	k.Spawn("waiter", func(p *Proc) { r.Acquire(p) })
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "waiter") || !strings.Contains(err.Error(), "holder") {
		t.Fatalf("deadlock error should name stuck processes: %v", err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	k := NewKernel()
	k.Spawn("a", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestEmptyKernelRuns(t *testing.T) {
	k := NewKernel()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcessesFIFOAtSameTime(t *testing.T) {
	// Processes scheduled at the same instant run in spawn order.
	k := NewKernel()
	var order []string
	for _, name := range []string{"p0", "p1", "p2", "p3"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Hold(time.Second)
			order = append(order, name)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "p0,p1,p2,p3"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestTimeSeconds(t *testing.T) {
	if s := Time(1500 * time.Millisecond).Seconds(); s != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", s)
	}
	if str := Time(2 * time.Second).String(); str != "2s" {
		t.Fatalf("String = %q, want 2s", str)
	}
}

func TestProcName(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("my-proc", func(p *Proc) {})
	if p.Name() != "my-proc" {
		t.Fatalf("name = %q", p.Name())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	// The same program produces the same event trace on every run.
	run := func() ([]string, int64) {
		k := NewKernel()
		var trace []string
		r := NewResource(k, "dev", 1)
		c := NewContainer(k, "pool", 100, 100)
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			d := time.Duration(i+1) * time.Second
			k.Spawn(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					c.Get(p, 30)
					r.Acquire(p)
					p.Hold(d)
					trace = append(trace, name+"@"+p.Now().String())
					r.Release(p)
					c.Put(p, 30)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return trace, k.EventsProcessed
	}
	t1, e1 := run()
	t2, e2 := run()
	if e1 != e2 {
		t.Fatalf("event counts differ: %d vs %d", e1, e2)
	}
	if strings.Join(t1, " ") != strings.Join(t2, " ") {
		t.Fatalf("traces differ:\n%v\n%v", t1, t2)
	}
}

func TestStressManyProcessesSharedResources(t *testing.T) {
	// 200 processes contending on resources, containers and queues:
	// no deadlock, conserved units, monotone virtual time.
	k := NewKernel()
	devs := []*Resource{
		NewResource(k, "d0", 1), NewResource(k, "d1", 2), NewResource(k, "d2", 1),
	}
	pool := NewContainer(k, "pool", 500, 500)
	q := NewQueue[int](k, "work", 8)
	var produced, consumed int

	for i := 0; i < 100; i++ {
		i := i
		k.Spawn("producer", func(p *Proc) {
			for j := 0; j < 5; j++ {
				pool.Get(p, int64(i%7)+1)
				devs[i%3].Acquire(p)
				p.Hold(time.Duration(i%11+1) * time.Millisecond)
				devs[i%3].Release(p)
				pool.Put(p, int64(i%7)+1)
				q.Send(p, i*10+j)
				produced++
			}
		})
	}
	done := make([]*Proc, 0, 4)
	for w := 0; w < 4; w++ {
		done = append(done, k.Spawn("consumer", func(p *Proc) {
			for {
				_, ok := q.Recv(p)
				if !ok {
					return
				}
				consumed++
				p.Hold(2 * time.Millisecond)
			}
		}))
	}
	k.Spawn("closer", func(p *Proc) {
		// Close the queue once all producers are finished: poll the
		// consumed count through time.
		for produced < 500 {
			p.Hold(time.Millisecond)
		}
		for q.Len() > 0 {
			p.Hold(time.Millisecond)
		}
		q.Close(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	_ = done
	if produced != 500 || consumed != 500 {
		t.Fatalf("produced %d consumed %d", produced, consumed)
	}
	if pool.Level() != 500 {
		t.Fatalf("pool level %d, want 500", pool.Level())
	}
}
