package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/join"
	"repro/internal/obs/obsserver"
	"repro/internal/relation"
	"repro/internal/tape"
	"repro/internal/workload"
)

// fixture is a small catalog on fresh media plus the daemon config
// over it: two S cartridges, one R cartridge, four relations.
type fixture struct {
	cfg    Config
	expect map[string]int64 // "R|S" -> exact cardinality
}

func makeFixture(t *testing.T, policy workload.Policy) *fixture {
	t.Helper()
	mS1 := tape.NewMedia("S1", 4096)
	mS2 := tape.NewMedia("S2", 4096)
	mR := tape.NewMedia("RA", 4096)
	rel := func(name string, tag byte, blocks, seed int64, m tape.Medium) *relation.Relation {
		t.Helper()
		r, err := relation.WriteToTape(relation.Config{
			Name: name, Tag: tag, Blocks: blocks, TuplesPerBlock: 4,
			KeySpace: 200, PayloadBytes: 8, Seed: seed,
		}, m)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cat := map[string]*relation.Relation{
		"S1": rel("S1", 100, 96, 1, mS1),
		"S2": rel("S2", 101, 96, 2, mS2),
		"R1": rel("R1", 1, 16, 11, mR),
		"R2": rel("R2", 2, 16, 12, mR),
	}
	f := &fixture{expect: make(map[string]int64)}
	for _, rn := range []string{"R1", "R2"} {
		for _, sn := range []string{"S1", "S2"} {
			f.expect[rn+"|"+sn] = relation.ExpectedMatches(cat[rn], cat[sn])
		}
	}
	f.cfg = Config{
		Engine: workload.OnlineConfig{
			Config: workload.Config{
				Resources: join.Resources{
					MemoryBlocks: 20,
					DiskBlocks:   400,
					NumDisks:     2,
					DiskRate:     2 * tape.Ideal().EffectiveRate(),
					Tape:         tape.Ideal(),
					IOChunk:      8,
				},
				Policy:    policy,
				MountTime: 30 * time.Second,
			},
		},
		Catalog: cat,
	}
	return f
}

// postJoin POSTs one request and returns the parsed response lines.
func postJoin(t *testing.T, base string, req Request) (int, []PairLine, *ResultLine) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/join", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, nil
	}
	var pairs []PairLine
	var res *ResultLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &kind); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		switch kind.Type {
		case "pair":
			var p PairLine
			json.Unmarshal(sc.Bytes(), &p)
			pairs = append(pairs, p)
		case "result":
			if res != nil {
				t.Fatal("second result line")
			}
			res = &ResultLine{}
			if err := json.Unmarshal(sc.Bytes(), res); err != nil {
				t.Fatal(err)
			}
		}
	}
	if res == nil {
		t.Fatal("no result line")
	}
	return resp.StatusCode, pairs, res
}

// TestServiceRoundTrip serves one streamed query end to end: accepted
// line, every pair streamed, result line with the exact cardinality.
func TestServiceRoundTrip(t *testing.T) {
	f := makeFixture(t, workload.MountAware)
	s, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	base = "http://" + base

	code, pairs, res := postJoin(t, base, Request{ID: "rt1", R: "R1", S: "S1", Stream: true})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if res.Failed {
		t.Fatalf("query failed: %s", res.Reason)
	}
	want := f.expect["R1|S1"]
	if res.Matches != want {
		t.Errorf("matches = %d, want %d", res.Matches, want)
	}
	if int64(len(pairs)) != want || res.Streamed != want || res.StreamDropped != 0 {
		t.Errorf("streamed %d pairs (reported %d, dropped %d), want %d",
			len(pairs), res.Streamed, res.StreamDropped, want)
	}
	if res.OutputHash == fmt.Sprintf("%016x", 0) {
		t.Error("zero output hash")
	}
	if res.ID != "rt1" {
		t.Errorf("result ID %q", res.ID)
	}

	// Unstreamed query over the same pair: same count, same hash.
	code2, pairs2, res2 := postJoin(t, base, Request{R: "R1", S: "S1"})
	if code2 != http.StatusOK || res2.Failed {
		t.Fatalf("unstreamed query: status %d, failed=%v", code2, res2 != nil && res2.Failed)
	}
	if len(pairs2) != 0 {
		t.Errorf("unstreamed query leaked %d pair lines", len(pairs2))
	}
	if res2.OutputHash != res.OutputHash {
		t.Errorf("hash %s != %s across stream modes", res2.OutputHash, res.OutputHash)
	}
}

// TestServiceRejections pins the typed HTTP error contract: strict
// decode (400), unknown relation (404), quota (429), draining (503),
// and that /stats accounts for each kind.
func TestServiceRejections(t *testing.T) {
	f := makeFixture(t, workload.FIFO)
	f.cfg.TenantQuota = 2
	s, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base = "http://" + base

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+"/join", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb.Error
	}

	if code, msg := post(`{"r":"R1","s":"S1","nope":1}`); code != http.StatusBadRequest ||
		!strings.HasPrefix(msg, ReasonBadRequest+":") {
		t.Errorf("unknown field: %d %q", code, msg)
	}
	if code, msg := post(`{"r":"R1"}`); code != http.StatusBadRequest ||
		!strings.HasPrefix(msg, ReasonBadRequest+":") {
		t.Errorf("missing s: %d %q", code, msg)
	}
	if code, msg := post(`{"r":"R1","s":"NOSUCH"}`); code != http.StatusNotFound ||
		!strings.HasPrefix(msg, ReasonUnknownRelation+":") {
		t.Errorf("unknown relation: %d %q", code, msg)
	}

	// Quota: pre-load the tenant's outstanding count to the cap; the
	// next request must bounce without touching the engine.
	s.mu.Lock()
	s.outstanding["t1"] = 2
	s.mu.Unlock()
	if code, msg := post(`{"r":"R1","s":"S1","tenant":"t1"}`); code != http.StatusTooManyRequests ||
		!strings.HasPrefix(msg, ReasonQuota+":") {
		t.Errorf("quota: %d %q", code, msg)
	}
	s.mu.Lock()
	delete(s.outstanding, "t1")
	s.draining = true
	s.mu.Unlock()
	if code, msg := post(`{"r":"R1","s":"S1"}`); code != http.StatusServiceUnavailable ||
		!strings.HasPrefix(msg, ReasonDraining+":") {
		t.Errorf("draining: %d %q", code, msg)
	}
	s.mu.Lock()
	s.draining = false
	s.mu.Unlock()

	st := s.Stats()
	for _, kind := range []string{ReasonBadRequest, ReasonUnknownRelation, ReasonQuota, ReasonDraining} {
		if st.Rejected[kind] == 0 {
			t.Errorf("stats missing rejected[%s]", kind)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	// Post-drain: the listener is down; a second Drain is a no-op.
	if err := s.Drain(); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestServiceEndpoints covers /relations, /stats and the mounted obs
// routes while the daemon is live.
func TestServiceEndpoints(t *testing.T) {
	f := makeFixture(t, workload.SharedScan)
	f.cfg.Obs = obsserver.New()
	s, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	base = "http://" + base

	rows, err := FetchRelations(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("relations: %d rows, want 4", len(rows))
	}
	rNames, sNames := SplitCatalog(rows)
	if len(rNames) != 2 || len(sNames) != 2 {
		t.Fatalf("split: R=%v S=%v", rNames, sNames)
	}

	if code, _, res := postJoin(t, base, Request{R: rNames[0], S: sNames[0]}); code != 200 || res.Failed {
		t.Fatalf("join via discovered catalog failed: %d %v", code, res)
	}

	st, err := FetchStats(base)
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy != "shared-scan" || st.Accepted != 1 || st.Engine.Served != 1 {
		t.Errorf("stats: policy=%q accepted=%d served=%d", st.Policy, st.Accepted, st.Engine.Served)
	}

	for _, path := range []string{"/metrics", "/health", "/flight"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestServiceDeadline pins the wire path of the engine's deadline
// expiry: an already-expired deadline yields a 200 with a typed failed
// result, not an HTTP error.
func TestServiceDeadline(t *testing.T) {
	f := makeFixture(t, workload.FIFO)
	s, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	base = "http://" + base

	// Hold the scheduler with a slow-ish first query, then submit one
	// with a 1 ms deadline: it expires in queue.
	first := make(chan struct{})
	go func() {
		postJoin(t, base, Request{ID: "hold", R: "R1", S: "S1"})
		close(first)
	}()
	code, _, res := postJoin(t, base, Request{ID: "dl", R: "R2", S: "S2", DeadlineMS: 1})
	<-first
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if res.Failed && !strings.HasPrefix(res.Reason, workload.ReasonDeadline+":") {
		t.Errorf("failed with untyped reason %q", res.Reason)
	}
}
