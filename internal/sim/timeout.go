package sim

// Deadline bounds a stretch of work in virtual time — e.g. the total
// recovery budget a retry loop may spend on one device read. It has no
// goroutine or event of its own: processes check it between holds.
type Deadline struct {
	at Time
}

// NewDeadline returns a deadline d of virtual time from now.
func NewDeadline(p *Proc, d Duration) Deadline {
	return Deadline{at: p.Now() + Time(d)}
}

// Exceeded reports whether the deadline has passed.
func (dl Deadline) Exceeded(p *Proc) bool { return p.Now() >= dl.at }

// Remaining returns the virtual time left before the deadline (zero
// once exceeded).
func (dl Deadline) Remaining(p *Proc) Duration {
	if r := dl.at - p.Now(); r > 0 {
		return Duration(r)
	}
	return 0
}
