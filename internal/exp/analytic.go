package exp

import (
	"math"

	"repro/internal/cost"
	"repro/internal/tape"
)

// AnalyticPoint is one x position of Figures 1–3: the relative
// response time of every method at a given |R|/M ratio.
type AnalyticPoint struct {
	ROverM float64
	// Relative maps method symbol to response time relative to the
	// bare tape read time of S; +Inf when infeasible.
	Relative map[string]float64
}

// figureRange returns the |R|/M grid of each analytical chart.
func figureRange(fig int) []float64 {
	switch fig {
	case 1: // small |R|
		return []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
	case 2: // medium |R|, up to D = 32M
		return []float64{5, 8, 11, 14, 17, 20, 23, 26, 29, 31}
	default: // large |R|, far beyond M and D
		return []float64{10, 30, 50, 70, 90, 110, 130, 150}
	}
}

// AnalyticFigure computes Figure 1, 2 or 3 of the paper from the
// analytical cost model: |S| = 10|R|, D = 32M, X_D = 2 X_T, with
// |R|/M on the x axis.
func AnalyticFigure(fig int) []AnalyticPoint {
	const m = 256 // 16 MB of 64 KB blocks; only ratios matter
	xt := tape.DLT4000().EffectiveRate()
	var out []AnalyticPoint
	for _, ratio := range figureRange(fig) {
		p := cost.Params{
			RBlocks:  int64(math.Round(ratio * m)),
			MBlocks:  m,
			DBlocks:  32 * m,
			TapeRate: xt,
			DiskRate: 2 * xt,
		}
		p.SBlocks = 10 * p.RBlocks
		pt := AnalyticPoint{ROverM: ratio, Relative: map[string]float64{}}
		for _, e := range cost.EstimateAll(p) {
			pt.Relative[e.Method] = e.Relative(p)
		}
		out = append(out, pt)
	}
	return out
}
