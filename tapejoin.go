// Package tapejoin joins relations stored on magnetic tape, directly
// on the tertiary devices, reproducing Myllymaki & Livny, "Relational
// Joins for Data on Tertiary Storage" (ICDE 1997; UW-Madison TR
// #1331).
//
// The package wraps a simulated device complex — two tape drives, a
// disk array and a memory budget — and seven join methods:
//
//	DT-NB      Disk-Tape Nested Block Join (sequential)
//	CDT-NB/MB  Concurrent DT-NB, memory double-buffering
//	CDT-NB/DB  Concurrent DT-NB, disk double-buffering
//	DT-GH      Disk-Tape Grace Hash Join (sequential)
//	CDT-GH     Concurrent DT-GH, parallel tape/disk I/O
//	CTT-GH     Concurrent Tape-Tape Grace Hash Join
//	TT-GH      Tape-Tape Grace Hash Join (sequential)
//
// Joins move real tuple data and produce verified output; response
// times come from a deterministic discrete-event simulation calibrated
// to the paper's Quantum DLT-4000 / Fast-SCSI-2 platform. An
// analytical cost model (Estimate, Advise) predicts response times and
// picks the cheapest feasible method for a resource configuration.
//
// Sizes follow the paper's convention: megabytes, with one paper block
// = 64 KB (so 1 MB = 16 blocks).
package tapejoin

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/cost"
	"repro/internal/device"
	"repro/internal/device/filedev"
	"repro/internal/fault"
	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/obs/obsserver"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/tape"
	"repro/internal/trace"
)

// BlocksPerMB converts the paper's megabyte units to paper blocks.
const BlocksPerMB = 1024 * 1024 / block.VirtualSize

// MB converts megabytes to blocks.
func MB(megabytes int64) int64 { return megabytes * BlocksPerMB }

// MBf converts fractional megabytes to blocks, rounding to nearest.
func MBf(megabytes float64) int64 { return int64(megabytes*BlocksPerMB + 0.5) }

// Method identifies a join method by the paper's abbreviation.
type Method string

// The seven methods of the paper.
const (
	DTNB    Method = "DT-NB"
	CDTNBMB Method = "CDT-NB/MB"
	CDTNBDB Method = "CDT-NB/DB"
	DTGH    Method = "DT-GH"
	CDTGH   Method = "CDT-GH"
	CTTGH   Method = "CTT-GH"
	TTGH    Method = "TT-GH"
)

// TTSM is the tape sort-merge join baseline — the classical
// alternative (Knuth's tape sorting) the paper's hashing methods
// displace. Not part of the paper's seven; runnable for comparison.
const TTSM Method = "TT-SM"

// SYMH is the symmetric streaming hash join: both relations stream
// concurrently and matches are emitted as they are discovered, so the
// first output pair arrives while the materializing methods are still
// staging R. Not part of the paper's seven; it is the method of choice
// for JoinOptions.StopAfter / QuerySpec.StopAfter early termination.
const SYMH Method = "SYM-H"

// Methods lists all seven methods in the paper's order.
func Methods() []Method {
	return []Method{DTNB, CDTNBMB, CDTNBDB, DTGH, CDTGH, CTTGH, TTGH}
}

// TapeProfile selects the tape drive performance model.
type TapeProfile int

const (
	// DLT4000 is the calibrated profile of the paper's platform:
	// seeks, start/stop penalties, and a sustained rate that
	// reproduces Table 3's bare-read times at 25% compressibility.
	DLT4000 TapeProfile = iota
	// IdealTape is the paper's simplified cost model: pure transfer
	// cost, no seeks or repositioning.
	IdealTape
)

// Compression mirrors Section 9's three dataset compressibilities,
// which change the tape drive's effective rate.
type Compression int

const (
	// Compress25 is the paper's base case (25% compressible data).
	Compress25 Compression = iota
	// Compress0 models incompressible data: a slower tape drive.
	Compress0
	// Compress50 models highly compressible data: a faster drive.
	Compress50
)

func (c Compression) factor() float64 {
	switch c {
	case Compress0:
		return 1.0
	case Compress50:
		return 2.0
	default:
		return 1.33
	}
}

// Config sizes the device complex, in the paper's units.
type Config struct {
	// Backend selects the storage backend: "sim" (default) runs the
	// deterministic virtual-time simulator; "file" maps cartridges and
	// disk scratch to real OS files and reports honest wall-clock
	// transfer timing.
	Backend string
	// BackendDir is the scratch directory for the "file" backend
	// (default: the OS temp directory).
	BackendDir string
	// FileSync selects the "file" backend's fsync policy: "interval"
	// (default: flush every few MiB written), "none", or "always".
	FileSync string
	// FileSynchronous disables the "file" backend's async I/O engine:
	// transfers then run inline under the simulation's control token
	// and serialize in wall-clock time (the pre-engine behavior, kept
	// for comparison and debugging).
	FileSynchronous bool
	// FileOpTimeout, when positive, bounds each "file" backend device
	// operation's wall-clock time: an operation that overruns fails
	// with device.ErrIOTimeout, degrades the device's health, and
	// FileTripAfter consecutive misses trip its circuit breaker —
	// further operations then fail fast with device.ErrDeviceFailed.
	// Zero disables deadlines (operations may block indefinitely on a
	// stuck syscall).
	FileOpTimeout time.Duration
	// FileTripAfter overrides the consecutive-timeout count that trips
	// a "file" backend device's breaker (default 3).
	FileTripAfter int
	// FileRetryMax overrides the "file" backend's device-layer retry
	// count for timed-out or transiently failed operations: zero keeps
	// the default, negative disables device-layer retries entirely so
	// every fault surfaces to the join's own recovery machinery.
	FileRetryMax int
	// FilePace, when positive, paces the "file" backend's transfers to
	// emulate the modeled device bandwidths sped up FilePace× in
	// wall-clock time. Local files run at page-cache speed, so without
	// pacing every transfer is a near-instant memcpy and overlap is
	// unmeasurable; with it the concurrent methods' real elapsed-time
	// advantage shows on any machine. Zero (the default) disables
	// pacing: transfers take only the time the OS takes.
	FilePace float64
	// MemoryMB is M, main memory allocated to the join. Fractional
	// megabytes are honored at block (64 KB) granularity.
	MemoryMB float64
	// DiskMB is D, total disk scratch space. Fractional megabytes are
	// honored at block granularity.
	DiskMB float64
	// NumDisks is n (default 2, the paper's platform).
	NumDisks int
	// Profile selects the tape model (default DLT4000).
	Profile TapeProfile
	// Compression selects the dataset compressibility (default 25%).
	Compression Compression
	// DiskTapeSpeedRatio is X_D / X_T (default 2, the paper's
	// Section 5.3 assumption). The disk rate scales with the tape
	// rate chosen by Profile and Compression.
	DiskTapeSpeedRatio float64
	// SplitBuffering replaces the paper's interleaved
	// double-buffering with the naive two-halves scheme (ablation).
	SplitBuffering bool
	// SkewAware enables skew-aware partitioning in the Grace Hash
	// methods: a top-k key-frequency sketch rides R's partitioning
	// pass, heavy hitters get dedicated partitions, and overweight
	// buckets are split so no partition exceeds one memory load.
	// Uniform inputs are unaffected (the plan stays trivial). Also
	// steers Estimate/Advise: the cost model then assumes the skew
	// penalty is absorbed.
	SkewAware bool
	// ProbeNarrow enables CDF-model probe-range narrowing in the
	// TT-SM merge join: each sorted run keeps a per-block first-key
	// fence index, and the trailing stream jumps over provably
	// matchless stretches instead of scanning them.
	ProbeNarrow bool
	// BiDirectionalTape enables the optional SCSI READ REVERSE of the
	// paper's footnote 2: CTT-GH then alternates its bucket-scan
	// direction each iteration, eliminating the seek back across the
	// hashed R run.
	BiDirectionalTape bool
	// OutputDiskShare reserves a fraction of disk bandwidth for
	// writing the join output locally. Zero means output is pipelined
	// to a downstream consumer at no I/O cost; Section 3.2 prescribes
	// folding locally-stored output into a reduced X_D, which is
	// exactly what this does.
	OutputDiskShare float64
	// CollectTrace records every device I/O event during Join and
	// renders Result.Timeline and Result.DeviceSummary.
	CollectTrace bool
	// Observe enables the structured observability layer: phase spans,
	// a metrics registry, and trace export. Join then attaches a
	// Result.Report with per-phase critical-path analysis and
	// Chrome-trace / JSONL / Prometheus exporters. Implies event
	// recording (but not the text Timeline, which stays behind
	// CollectTrace).
	Observe bool
	// Faults injects a deterministic fault schedule into the devices of
	// every Join, in the internal/fault spec grammar, e.g.
	// "transient=R:100:2,diskfail=1@40s,random=7:3". Each Join parses a
	// fresh schedule, so runs stay independent and reproducible. See
	// the fault.Parse documentation for the full grammar.
	Faults string
	// DisableRecovery turns off retry/checkpoint/degrade handling: the
	// first device fault aborts the join.
	DisableRecovery bool
	// ObsAddr, when non-empty, starts a live-telemetry HTTP server on
	// the address (host:port; ":0" binds an ephemeral port — read the
	// bound address from System.ObsAddr). The server serves /metrics
	// (Prometheus text), /health (per-device health), /flight (flight-
	// recorder JSONL) and /debug/pprof, and can be scraped while a run
	// is in flight. Implies Observe. Close the system to stop it.
	ObsAddr string
	// ObsServer, when non-nil, attaches the system to an existing obs
	// server instead of starting one: the system points the server's
	// sources at each run's registry and its flight recorder. The
	// caller owns the server's lifecycle. Implies Observe.
	ObsServer *obsserver.Server
}

// System is a configured tertiary-storage device complex on which
// relations are created and joined.
type System struct {
	cfg      Config
	res      join.Resources
	tapeRate float64
	nextTag  byte

	flight *obs.FlightRecorder
	obs    *obsserver.Server
	ownObs bool // we started the server; Close stops it

	closeOnce sync.Once
	closeErr  error
}

// NewSystem validates the configuration and builds a system.
func NewSystem(cfg Config) (*System, error) {
	if MBf(cfg.MemoryMB) < 2 {
		return nil, fmt.Errorf("tapejoin: MemoryMB = %v (need at least 2 blocks)", cfg.MemoryMB)
	}
	if MBf(cfg.DiskMB) < 1 {
		return nil, fmt.Errorf("tapejoin: DiskMB = %v", cfg.DiskMB)
	}
	// Resource defaulting is owned by join.Resources.WithDefaults —
	// the facade only rejects invalid values and leaves zero fields
	// for the single source of truth to fill, so a new resource knob
	// cannot drift between the two layers.
	if cfg.NumDisks < 0 {
		return nil, fmt.Errorf("tapejoin: NumDisks = %d", cfg.NumDisks)
	}
	if cfg.DiskTapeSpeedRatio < 0 {
		return nil, errors.New("tapejoin: DiskTapeSpeedRatio must be positive")
	}
	if cfg.OutputDiskShare < 0 || cfg.OutputDiskShare >= 1 {
		return nil, fmt.Errorf("tapejoin: OutputDiskShare %v outside [0, 1)", cfg.OutputDiskShare)
	}
	ratio := cfg.DiskTapeSpeedRatio
	if ratio == 0 {
		ratio = join.DefaultDiskTapeSpeedRatio
	}

	var tc tape.DriveConfig
	if cfg.Profile == IdealTape {
		tc = tape.Ideal()
	} else {
		tc = tape.DLT4000()
	}
	// The disks are fixed hardware: their rate is anchored to the
	// base-case (25% compressible) tape rate, so changing Compression
	// moves only the tape speed — Section 9's experiment.
	baseTapeRate := tc.EffectiveRate()
	tc.CompressionFactor = cfg.Compression.factor()
	tc.BiDirectional = cfg.BiDirectionalTape

	res := join.Resources{
		MemoryBlocks: MBf(cfg.MemoryMB),
		DiskBlocks:   MBf(cfg.DiskMB),
		NumDisks:     cfg.NumDisks,
		DiskRate:     ratio * baseTapeRate * (1 - cfg.OutputDiskShare),
		Tape:         tc,
	}
	switch cfg.Backend {
	case "", "sim":
		// Leave res.Backend nil: WithDefaults fills the simulator.
	case "file":
		fb := filedev.New(cfg.BackendDir)
		pol, err := filedev.ParseSyncPolicy(cfg.FileSync)
		if err != nil {
			return nil, fmt.Errorf("tapejoin: %w", err)
		}
		fb.Sync = pol
		fb.Synchronous = cfg.FileSynchronous
		fb.PaceScale = cfg.FilePace
		fb.OpTimeout = cfg.FileOpTimeout
		fb.TripAfter = cfg.FileTripAfter
		fb.RetryMax = cfg.FileRetryMax
		res.Backend = fb
	default:
		return nil, fmt.Errorf("tapejoin: unknown backend %q (want \"sim\" or \"file\")", cfg.Backend)
	}
	if cfg.Profile == IdealTape {
		res.DiskOverhead = time.Nanosecond // effectively zero, skips the default
	}
	if cfg.SplitBuffering {
		res.Discipline = join.SplitHalves
	}
	res.SkewAware = cfg.SkewAware
	res.ProbeNarrow = cfg.ProbeNarrow
	if cfg.ObsAddr != "" || cfg.ObsServer != nil {
		cfg.Observe = true // live endpoints need a registry to scrape
	}
	// The flight recorder is always on: it is the black box every run
	// writes regardless of whether anyone is watching.
	flight := obs.NewFlightRecorder(0)
	if fb, ok := res.Backend.(*filedev.Backend); ok {
		fb.Flight = flight
	}
	res.Flight = flight
	res = res.WithDefaults()
	// Reflect the resolved defaults back into the public config.
	cfg.NumDisks = res.NumDisks
	cfg.DiskTapeSpeedRatio = ratio
	cfg.Backend = res.Backend.Name()
	sys := &System{cfg: cfg, res: res, tapeRate: tc.EffectiveRate(), flight: flight}
	if cfg.ObsServer != nil {
		sys.obs = cfg.ObsServer
	} else if cfg.ObsAddr != "" {
		sys.obs = obsserver.New()
		sys.ownObs = true
		if _, err := sys.obs.Start(cfg.ObsAddr); err != nil {
			return nil, fmt.Errorf("tapejoin: %w", err)
		}
	}
	if sys.obs != nil {
		sys.obs.SetSources(nil, flight, sys.healthSource())
	}
	return sys, nil
}

// healthSource adapts the backend's live device-health reporting for
// the obs server, or nil when the backend has none (the simulator).
func (s *System) healthSource() obsserver.HealthSource {
	hr, ok := s.res.Backend.(device.HealthReporter)
	if !ok {
		return nil
	}
	return func() []obsserver.DeviceHealth {
		rows := hr.DeviceHealths()
		out := make([]obsserver.DeviceHealth, 0, len(rows))
		for _, r := range rows {
			out = append(out, obsserver.DeviceHealth{
				Device: r.Device, State: r.State.String(),
				Timeouts: r.Timeouts, Retries: r.Retries,
			})
		}
		return out
	}
}

// ObsAddr returns the live-telemetry server's bound address, or ""
// when the system has none.
func (s *System) ObsAddr() string {
	if s.obs == nil {
		return ""
	}
	return s.obs.Addr()
}

// Flight returns the system's always-on flight recorder.
func (s *System) Flight() *obs.FlightRecorder { return s.flight }

// Close releases system-owned resources: the obs server, when the
// system started one (an attached Config.ObsServer stays up — its
// owner closes it). Idempotent and safe to call concurrently, even
// while a scrape is in flight: the first call tears the server down
// and records the outcome, every later call returns the same error.
func (s *System) Close() error {
	s.closeOnce.Do(func() {
		if s.obs != nil && s.ownObs {
			s.closeErr = s.obs.Close()
		}
	})
	return s.closeErr
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// BareReadTime returns the time to stream the given volume from one
// tape drive — the paper's baseline: Table 3's "Read S + R" column and
// the "optimum join time" of Section 9.
func (s *System) BareReadTime(megabytes float64) time.Duration {
	bytes := megabytes * 1024 * 1024
	return time.Duration(bytes / s.tapeRate * float64(time.Second))
}

// Tape is a tape cartridge — or a robot-managed set of cartridges
// presenting one linear space — managed by the system.
type Tape struct {
	media tape.Medium
}

// NewTape creates an empty cartridge with the given capacity.
// Tape-tape join methods need scratch space beyond the relations
// themselves (Table 2): CTT-GH needs |R| free on R's cartridge, TT-GH
// needs |S| free on R's cartridge and |R| free on S's.
func (s *System) NewTape(name string, capacityMB int64) (*Tape, error) {
	if capacityMB < 1 {
		return nil, fmt.Errorf("tapejoin: tape %q capacity %d MB", name, capacityMB)
	}
	return &Tape{media: tape.NewMedia(name, MB(capacityMB))}, nil
}

// NewTapeSet creates a volume set of `volumes` cartridges of
// perVolumeMB each behind a media robot. Requests crossing a
// cartridge boundary cost a media exchange (~30 s on the DLT-4000
// profile) — Section 3.2 argues, and BenchmarkAblationMultiVolume
// confirms, that this is negligible against sequential scan times.
func (s *System) NewTapeSet(name string, volumes int, perVolumeMB int64) (*Tape, error) {
	if volumes < 1 || perVolumeMB < 1 {
		return nil, fmt.Errorf("tapejoin: tape set %q: %d volumes of %d MB", name, volumes, perVolumeMB)
	}
	vols := make([]*tape.Media, volumes)
	for i := range vols {
		vols[i] = tape.NewMedia(fmt.Sprintf("%s/vol%d", name, i), MB(perVolumeMB))
	}
	mv, err := tape.NewMultiVolume(name, vols...)
	if err != nil {
		return nil, err
	}
	return &Tape{media: mv}, nil
}

// FreeMB returns the cartridge's remaining scratch space.
func (t *Tape) FreeMB() int64 { return t.media.Free() / BlocksPerMB }

// RelationConfig describes a synthetic relation to generate onto tape.
type RelationConfig struct {
	// Name identifies the relation.
	Name string
	// SizeMB is the relation size (the paper's |R| or |S|).
	SizeMB int64
	// TuplesPerBlock is the real-data density per 64 KB paper block
	// (default 4). Density does not affect timing.
	TuplesPerBlock int
	// KeySpace draws join keys uniformly from [0, KeySpace); smaller
	// spaces give more matches (default 1e6).
	KeySpace uint64
	// HotFraction and HotProb skew the key distribution with the
	// crude two-level hot/cold model (optional; set both or neither).
	HotFraction, HotProb float64
	// ZipfTheta draws keys from a Zipf(θ) rank-frequency distribution
	// over the key space, 0 <= θ < 1 (0 = uniform). Mutually
	// exclusive with HotFraction/HotProb.
	ZipfTheta float64
	// Seed makes generation reproducible.
	Seed int64
}

// Relation is a synthetic relation materialized on a cartridge.
type Relation struct {
	rel *relation.Relation
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.rel.Name }

// SizeMB returns the relation size.
func (r *Relation) SizeMB() int64 { return r.rel.Region.N / BlocksPerMB }

// Blocks returns the relation size in paper blocks.
func (r *Relation) Blocks() int64 { return r.rel.Region.N }

// Tuples returns the tuple count.
func (r *Relation) Tuples() int64 { return r.rel.Tuples() }

// CreateRelation generates a synthetic relation and writes it to the
// cartridge (outside simulated time; input tapes exist before a join
// is measured).
func (s *System) CreateRelation(t *Tape, cfg RelationConfig) (*Relation, error) {
	if cfg.TuplesPerBlock == 0 {
		cfg.TuplesPerBlock = 4
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 1_000_000
	}
	s.nextTag++
	rel, err := relation.WriteToTape(relation.Config{
		Name:           cfg.Name,
		Tag:            s.nextTag,
		Blocks:         MB(cfg.SizeMB),
		TuplesPerBlock: cfg.TuplesPerBlock,
		KeySpace:       cfg.KeySpace,
		HotFraction:    cfg.HotFraction,
		HotProb:        cfg.HotProb,
		ZipfTheta:      cfg.ZipfTheta,
		PayloadBytes:   8,
		Seed:           cfg.Seed,
	}, t.media)
	if err != nil {
		return nil, err
	}
	return &Relation{rel: rel}, nil
}

// ExpectedMatches returns the exact equi-join cardinality of r ⋈ s,
// computed analytically from the generators.
func ExpectedMatches(r, s *Relation) int64 {
	return relation.ExpectedMatches(r.rel, s.rel)
}

// UtilizationSample is one point of the disk-buffer utilization trace
// (the paper's Figure 4).
type UtilizationSample struct {
	// Seconds is the virtual time of the sample.
	Seconds float64
	// EvenMB and OddMB are the space held by even- and odd-numbered
	// iterations.
	EvenMB, OddMB float64
}

// Stats reports what a join did and what it cost.
type Stats struct {
	// Response is the join's virtual response time.
	Response time.Duration
	// StepI is when the setup phase finished.
	StepI time.Duration
	// Iterations counts Step II iterations.
	Iterations int
	// RScans counts full passes over R's data.
	RScans int
	// Matches is the output cardinality.
	Matches int64
	// OutputHash is an order-independent digest of the emitted pairs
	// (keys and payload bytes): two runs over the same inputs must
	// report equal hashes regardless of method, backend or injected
	// faults — the end-to-end integrity oracle.
	OutputHash uint64
	// TapeReadMB, TapeWrittenMB aggregate both drives.
	TapeReadMB, TapeWrittenMB float64
	// DiskReadMB, DiskWrittenMB aggregate the array.
	DiskReadMB, DiskWrittenMB float64
	// DiskPeakMB is the peak disk footprint (Figure 6).
	DiskPeakMB float64
	// MemPeakMB is the peak accounted memory.
	MemPeakMB float64
	// TapeSeeks counts head repositionings.
	TapeSeeks int64
	// TapeRUtil, TapeSUtil and DiskUtil report each device's busy
	// fraction of the response time.
	TapeRUtil, TapeSUtil, DiskUtil float64
	// Fault-recovery accounting (zero on fault-free runs): Faults
	// counts injected faults hit, Retries the re-read attempts,
	// UnitRestarts the restarted work units, and RecoveryTime the
	// virtual time spent in retry backoff (already part of Response).
	Faults       int64
	Retries      int64
	UnitRestarts int64
	RecoveryTime time.Duration
	// DisksLost counts permanently failed disk drives. DriveLost
	// reports a permanent tape-drive failure; DegradedTo then names the
	// sequential method the join re-planned to on the surviving drive.
	DisksLost  int
	DriveLost  bool
	DegradedTo string
	// HeavyHitters and SkewPartitions report the skew-aware planner's
	// work (Config.SkewAware): keys isolated into dedicated
	// partitions, and the refined partition count (> the uniform
	// bucket count only when skew was detected).
	HeavyHitters   int
	SkewPartitions int
	// ProbeJumps and ProbeSkippedBlocks report the merge join's
	// CDF-model narrowing (Config.ProbeNarrow): forward jumps taken
	// by a trailing stream and the blocks they skipped.
	ProbeJumps         int64
	ProbeSkippedBlocks int64
	// FirstTuple is the virtual time from run start to the first pair
	// delivered to the output (zero when the join produced none).
	FirstTuple time.Duration
	// Stopped reports that the join terminated early because
	// JoinOptions.StopAfter was reached rather than by exhausting its
	// inputs; Matches and OutputHash then cover the delivered prefix.
	Stopped bool
	// WallElapsed is the real elapsed time of the run and WallOverlap
	// the fraction of wall-clock device busy time that overlapped
	// across devices. Both are zero on the "sim" backend; on the
	// "file" backend they are measured, not simulated, and vary run
	// to run.
	WallElapsed time.Duration
	WallOverlap float64
}

// DiskTrafficMB is the paper's Figure 7 metric.
func (s Stats) DiskTrafficMB() float64 { return s.DiskReadMB + s.DiskWrittenMB }

// Result is the outcome of a join.
type Result struct {
	Method Method
	Stats  Stats
	// BufferTrace samples the shared disk buffer's per-parity usage
	// for methods that double-buffer S through disk (Figure 4).
	BufferTrace []UtilizationSample
	// BufferCapacityMB is the traced buffer's size.
	BufferCapacityMB float64
	// Timeline is a text Gantt chart of device activity, and
	// DeviceSummary the per-device busy breakdown, when the system
	// was configured with CollectTrace.
	Timeline      string
	DeviceSummary string
	// Report carries the structured observability data when the system
	// was configured with Observe: per-phase critical-path analysis
	// plus Chrome-trace, JSONL and metrics exporters.
	Report *Report
	// Sample holds the first JoinOptions.Sample output pairs.
	Sample []SampledPair
}

func mbOf(blocks int64) float64 { return float64(blocks) / BlocksPerMB }

// JoinOptions are per-join execution options for JoinWith.
type JoinOptions struct {
	// StopAfter, when positive, terminates the join after n output
	// pairs: the join stops reading the tapes, unwinds its pipelines,
	// and returns with Stats.Stopped set. The delivered pairs are a
	// prefix of some complete run's output (a sub-multiset of the full
	// result). Distinct from QuerySpec.Limit, which only caps
	// materialized rows while the join runs to completion.
	StopAfter int64
	// Sample captures the first n output pairs into Result.Sample.
	// Presentation-only, like QuerySpec.Limit: the join still runs to
	// completion (unless StopAfter also ends it) and Stats.Matches
	// stays exact.
	Sample int
}

// SampledPair is one captured output pair (join keys only).
type SampledPair struct {
	RKey, SKey uint64
}

// sampleSink counts and digests like CountSink and additionally keeps
// the first cap pairs for presentation.
type sampleSink struct {
	join.CountSink
	cap   int
	pairs []SampledPair
}

// Emit implements join.Sink.
func (s *sampleSink) Emit(p *sim.Proc, r, t block.Tuple) {
	s.CountSink.Emit(p, r, t)
	if len(s.pairs) < s.cap {
		s.pairs = append(s.pairs, SampledPair{RKey: r.Key, SKey: t.Key})
	}
}

// Join runs the given method over r (the smaller relation) and s,
// returning measured statistics. The relations must live on distinct
// cartridges.
func (s *System) Join(method Method, r, bigS *Relation) (*Result, error) {
	return s.JoinWith(method, r, bigS, JoinOptions{})
}

// JoinWith is Join with per-run execution options.
func (s *System) JoinWith(method Method, r, bigS *Relation, opts JoinOptions) (*Result, error) {
	m, err := join.BySymbol(string(method))
	if err != nil {
		return nil, err
	}
	runRes := s.res
	var rec *trace.Recorder
	if s.cfg.CollectTrace || s.cfg.Observe {
		rec = &trace.Recorder{}
		runRes.Trace = rec
	}
	var tracker *obs.Tracker
	var reg *obs.Registry
	if s.cfg.Observe {
		tracker = obs.NewTracker()
		reg = obs.NewRegistry()
		runRes.Spans = tracker
		runRes.Metrics = reg
	}
	runRes.Flight = s.flight
	if s.obs != nil {
		// Point the live endpoints at this run's registry so a scrape
		// mid-run sees the numbers as they accumulate.
		s.obs.SetSources(reg, s.flight, s.healthSource())
	}
	if s.cfg.Faults != "" {
		sched, err := fault.Parse(s.cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("tapejoin: %w", err)
		}
		runRes.Faults = sched
	}
	runRes.Recovery.Disabled = s.cfg.DisableRecovery
	var sink interface {
		join.Sink
		join.Hasher
	} = &join.CountSink{}
	var sampler *sampleSink
	if opts.Sample > 0 {
		sampler = &sampleSink{cap: opts.Sample}
		sink = sampler
	}
	res, err := join.RunWith(m, join.Spec{R: r.rel, S: bigS.rel}, runRes, sink,
		join.ExecOptions{StopAfter: opts.StopAfter})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Method: method,
		Stats: Stats{
			Response:           res.Stats.Response,
			StepI:              res.Stats.StepI,
			Iterations:         res.Stats.Iterations,
			RScans:             res.Stats.RScans,
			Matches:            res.Stats.OutputTuples,
			OutputHash:         sink.Hash(),
			TapeReadMB:         mbOf(res.Stats.TapeBlocksRead),
			TapeWrittenMB:      mbOf(res.Stats.TapeBlocksWritten),
			DiskReadMB:         mbOf(res.Stats.DiskBlocksRead),
			DiskWrittenMB:      mbOf(res.Stats.DiskBlocksWritten),
			DiskPeakMB:         mbOf(res.Stats.DiskHighWater),
			MemPeakMB:          mbOf(res.Stats.MemHighWater),
			TapeSeeks:          res.Stats.TapeSeeks,
			TapeRUtil:          float64(res.Stats.TapeRBusy) / float64(res.Stats.Response),
			TapeSUtil:          float64(res.Stats.TapeSBusy) / float64(res.Stats.Response),
			DiskUtil:           float64(res.Stats.DiskBusy) / float64(res.Stats.Response),
			Faults:             res.Stats.Faults,
			Retries:            res.Stats.Retries,
			UnitRestarts:       res.Stats.UnitRestarts,
			RecoveryTime:       time.Duration(res.Stats.RecoveryTime),
			DisksLost:          res.Stats.DisksLost,
			DriveLost:          res.Stats.DriveLost,
			DegradedTo:         res.Stats.DegradedTo,
			HeavyHitters:       res.Stats.HeavyHitters,
			SkewPartitions:     res.Stats.SkewPartitions,
			ProbeJumps:         res.Stats.ProbeJumps,
			ProbeSkippedBlocks: res.Stats.ProbeSkippedBlocks,
			FirstTuple:         time.Duration(res.Stats.FirstTuple),
			Stopped:            res.Stats.Stopped,
			WallElapsed:        time.Duration(res.Stats.WallElapsed),
			WallOverlap:        res.Stats.WallOverlap,
		},
		BufferCapacityMB: mbOf(res.BufferCapacity),
	}
	if sampler != nil {
		out.Sample = sampler.pairs
	}
	for _, smp := range res.BufferTrace {
		out.BufferTrace = append(out.BufferTrace, UtilizationSample{
			Seconds: smp.T.Seconds(),
			EvenMB:  mbOf(smp.Even),
			OddMB:   mbOf(smp.Odd),
		})
	}
	if s.cfg.CollectTrace {
		end := sim.Time(res.Stats.Response)
		out.Timeline = rec.Timeline(end, 100)
		out.DeviceSummary = rec.Summary(end)
	}
	if s.cfg.Observe {
		out.Report = newReport(tracker, rec, reg, sim.Time(res.Stats.Response))
	}
	return out, nil
}

// CheckFeasible reports whether the method can run r ⋈ s on this
// system, per the paper's Table 2 resource requirements.
func (s *System) CheckFeasible(method Method, r, bigS *Relation) error {
	m, err := join.BySymbol(string(method))
	if err != nil {
		return err
	}
	return m.Check(join.Spec{R: r.rel, S: bigS.rel}, s.res)
}

// Estimate predicts a method's response time for relation sizes in MB
// using the paper's analytical cost model (no simulation).
type Estimate struct {
	Method Method
	// Response is the predicted response time; infeasible methods
	// report Feasible = false.
	Response time.Duration
	StepI    time.Duration
	Feasible bool
	// Reason explains infeasibility.
	Reason string
	// RelativeCost is response / bare S read time (Figures 1–3).
	RelativeCost float64
}

func (s *System) costParams(rMB, sMB int64) cost.Params {
	return cost.Params{
		RBlocks:   MB(rMB),
		SBlocks:   MB(sMB),
		MBlocks:   s.res.MemoryBlocks,
		DBlocks:   s.res.DiskBlocks,
		TapeRate:  s.tapeRate,
		DiskRate:  s.res.DiskRate,
		SkewAware: s.cfg.SkewAware,
	}
}

func toEstimate(e cost.Estimate, p cost.Params) Estimate {
	out := Estimate{Method: Method(e.Method)}
	if e.Err != nil {
		out.Reason = e.Err.Error()
		return out
	}
	out.Feasible = true
	out.Response = time.Duration(e.Seconds * float64(time.Second))
	out.StepI = time.Duration(e.StepISeconds * float64(time.Second))
	out.RelativeCost = e.Relative(p)
	return out
}

// Estimate predicts one method's cost for |R| = rMB, |S| = sMB.
func (s *System) Estimate(method Method, rMB, sMB int64) Estimate {
	p := s.costParams(rMB, sMB)
	return toEstimate(cost.EstimateMethod(string(method), p), p)
}

// EstimateSkewed is Estimate for skewed keys: maxKeyFrac is the
// fraction of tuples carried by the most frequent join key
// (hashutil exposes ZipfMaxKeyFrac for Zipf(θ) data). Without
// Config.SkewAware the Grace Hash estimates inflate by the multi-load
// re-scans of the overweight bucket; with it the penalty is absorbed.
func (s *System) EstimateSkewed(method Method, rMB, sMB int64, maxKeyFrac float64) Estimate {
	p := s.costParams(rMB, sMB)
	p.MaxKeyFrac = maxKeyFrac
	return toEstimate(cost.EstimateMethod(string(method), p), p)
}

// Advise ranks all methods for |R| = rMB, |S| = sMB given the
// available tape scratch space, returning the cheapest feasible method
// first. It codifies the paper's conclusions: CTT-GH for very large
// joins, CDT-GH with ample disk but little memory, CDT-NB when most of
// R fits in memory.
func (s *System) Advise(rMB, sMB, rTapeScratchMB, sTapeScratchMB int64) []Estimate {
	p := s.costParams(rMB, sMB)
	adv := cost.Advise(p, cost.Scratch{RTape: MB(rTapeScratchMB), STape: MB(sTapeScratchMB)})
	out := make([]Estimate, 0, len(adv.Ranked))
	for _, e := range adv.Ranked {
		out = append(out, toEstimate(e, p))
	}
	return out
}
