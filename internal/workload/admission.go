package workload

import (
	"repro/internal/cost"
	"repro/internal/join"
)

// admitShared decides which of a same-S candidate group may join one
// shared tape pass, partitioning M and D across the riders with the
// cost model so every admitted query still satisfies its method's
// Table 2 row. A shared rider behaves like DT-NB on its partition: a
// disk-resident R probed against memory-buffered S chunks, so DT-NB's
// feasibility row (D >= |R|, M >= mr + 2) is the one each share must
// clear. Candidates that don't fit fall back to solo execution.
//
// The packing is greedy in candidate order (deterministic): a rider is
// admitted while
//
//   - its equal M share keeps DT-NB feasible per the cost model,
//   - the staged R copies of all admitted riders fit the disk that is
//     left after the cache carve-out,
//   - the residual S buffers stay >= 1 block per double buffer.
func admitShared(cfg Config, res join.Resources, queries []Query, cand []int) (admitted, rejected []int) {
	dFree := res.DiskBlocks - cfg.CacheBlocks
	var rTotal int64
	for _, qi := range cand {
		q := queries[qi]
		k := int64(len(admitted) + 1)
		mShare := res.MemoryBlocks / k
		est := cost.EstimateMethod("DT-NB", cost.Params{
			RBlocks: q.R.Region.N, SBlocks: q.S.Region.N,
			MBlocks: mShare, DBlocks: q.R.Region.N,
			TapeRate: res.Tape.EffectiveRate(), DiskRate: res.DiskRate,
		})
		// mr is the rider's R-scan buffer under the engine's rule
		// (half the share, capped at IOChunk); the rest of everyone's
		// shares must still leave two S buffers.
		mr := mShare / 2
		if mr > res.IOChunk {
			mr = res.IOChunk
		}
		if mr < 1 {
			mr = 1
		}
		msLeft := (res.MemoryBlocks - mr*k) / 2
		switch {
		case est.Err != nil,
			rTotal+q.R.Region.N > dFree,
			msLeft < 1:
			rejected = append(rejected, qi)
		default:
			admitted = append(admitted, qi)
			rTotal += q.R.Region.N
		}
	}
	return admitted, rejected
}
