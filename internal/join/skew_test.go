package join

import (
	"testing"

	"repro/internal/hashutil"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/tape"
)

// specZipf builds an R/S pair drawn from a Zipf(theta) key
// distribution, with scratch space for the tape-tape methods.
func specZipf(t *testing.T, rBlocks, sBlocks int64, theta float64) Spec {
	t.Helper()
	mR := tape.NewMedia("tapeR", rBlocks+sBlocks+256)
	mS := tape.NewMedia("tapeS", sBlocks+rBlocks+256)
	r, err := relation.WriteToTape(relation.Config{
		Name: "R", Tag: 1, Blocks: rBlocks, TuplesPerBlock: 4,
		KeySpace: 4096, PayloadBytes: 8, Seed: 11, ZipfTheta: theta,
	}, mR)
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: sBlocks, TuplesPerBlock: 4,
		KeySpace: 4096, PayloadBytes: 8, Seed: 22, ZipfTheta: theta,
	}, mS)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{R: r, S: s}
}

// uniformBucketBlocks replays R's key stream through the uniform plan
// and returns each primary bucket's exact on-disk size in blocks.
func uniformBucketBlocks(spec Spec, plan hashutil.Plan) []int64 {
	tuples := make([]int64, plan.B)
	for k, c := range spec.R.KeyCounts() {
		tuples[hashutil.Bucket(k, plan.B)] += c
	}
	tpb := int64(spec.R.TuplesPerBlock)
	sizes := make([]int64, plan.B)
	for i, c := range tuples {
		sizes[i] = (c + tpb - 1) / tpb
	}
	return sizes
}

// TestSkewAwarePartitioningGHFamily is the acceptance test for the
// skew-aware partitioning layer: under Zipf 0.99 at a scale where the
// uniform planner's largest bucket exceeds M-1 (forcing the multi-load
// fallback), every GH method with SkewAware on must (a) detect heavy
// hitters and refine the partition map, (b) produce output identical
// to its own uniform run and to the replayed expectation, and (c) at
// least one method must finish in less virtual time than its uniform
// twin.
func TestSkewAwarePartitioningGHFamily(t *testing.T) {
	const (
		m     = 12
		d     = 256
		r     = 64
		s     = 256
		theta = 0.99
	)
	premise := specZipf(t, r, s, theta)
	plan, err := hashutil.PlanBuckets(premise.R.Region.N, m)
	if err != nil {
		t.Fatal(err)
	}
	sizes := uniformBucketBlocks(premise, plan)
	var maxBucket int64
	for _, sz := range sizes {
		if sz > maxBucket {
			maxBucket = sz
		}
	}
	if maxBucket <= m-1 {
		t.Fatalf("premise broken: uniform max bucket %d fits M-1=%d; buckets %v",
			maxBucket, m-1, sizes)
	}
	want := relation.ExpectedMatches(premise.R, premise.S)
	if want == 0 {
		t.Fatal("zipf relations share no keys; bad generator config")
	}

	wins := 0
	for _, sym := range []string{"DT-GH", "CDT-GH", "CTT-GH", "TT-GH"} {
		method, err := BySymbol(sym)
		if err != nil {
			t.Fatal(err)
		}
		run := func(skewAware bool) (Stats, uint64, sim.Duration) {
			sink := &CountSink{}
			res := fastRes(m, d)
			res.SkewAware = skewAware
			result, err := Run(method, specZipf(t, r, s, theta), res, sink)
			if err != nil {
				t.Fatalf("%s (skew=%v): %v", sym, skewAware, err)
			}
			if sink.Matches != want {
				t.Fatalf("%s (skew=%v): %d matches, want %d", sym, skewAware, sink.Matches, want)
			}
			return result.Stats, sink.KeySum, result.Stats.Response
		}
		uniStats, uniSum, uniResp := run(false)
		skewStats, skewSum, skewResp := run(true)

		if uniStats.HeavyHitters != 0 || uniStats.SkewPartitions != 0 {
			t.Fatalf("%s: uniform run reports skew stats %+v", sym, uniStats)
		}
		if skewStats.HeavyHitters < 1 {
			t.Fatalf("%s: skew run isolated no heavy hitters", sym)
		}
		if skewStats.SkewPartitions <= plan.B {
			t.Fatalf("%s: SkewPartitions = %d, want > B=%d", sym, skewStats.SkewPartitions, plan.B)
		}
		if skewSum != uniSum {
			t.Fatalf("%s: key checksum %d (skew) != %d (uniform)", sym, skewSum, uniSum)
		}
		// Sequential methods must stay inside the memory budget; the
		// concurrent ones overlap a partition phase and a join phase
		// (uniform runs included), so each phase — and the skew repair
		// — must stay within M, bounding the overlapped peak by 2M.
		budget := int64(m)
		if sym == "CDT-GH" || sym == "CTT-GH" {
			budget = 2 * m
		}
		if skewStats.MemHighWater > budget {
			t.Fatalf("%s: skew run peaked at %d blocks, budget %d (uniform peak %d)",
				sym, skewStats.MemHighWater, budget, uniStats.MemHighWater)
		}
		t.Logf("%s: uniform %v, skew %v (heavy=%d parts=%d)",
			sym, uniResp, skewResp, skewStats.HeavyHitters, skewStats.SkewPartitions)
		if skewResp < uniResp {
			wins++
		}
	}
	if wins == 0 {
		t.Fatal("skew-aware partitioning beat the uniform planner for no GH method")
	}
}

// TestSkewAwareNoopOnUniformKeys checks the other direction: with a
// uniform key distribution and enough memory that hash variance stays
// inside the single-load budget, the sketch finds nothing, the plan
// stays trivial, and the skew-aware run is the uniform run.
func TestSkewAwareNoopOnUniformKeys(t *testing.T) {
	for _, sym := range []string{"DT-GH", "CTT-GH", "TT-GH"} {
		method, err := BySymbol(sym)
		if err != nil {
			t.Fatal(err)
		}
		run := func(skewAware bool) (Stats, uint64) {
			sink := &CountSink{}
			res := fastRes(24, 128)
			res.SkewAware = skewAware
			result, err := Run(method, testSpec(t), res, sink)
			if err != nil {
				t.Fatalf("%s (skew=%v): %v", sym, skewAware, err)
			}
			return result.Stats, sink.KeySum
		}
		uniStats, uniSum := run(false)
		skewStats, skewSum := run(true)
		if skewStats.HeavyHitters != 0 || skewStats.SkewPartitions != 0 {
			t.Fatalf("%s: uniform keys produced a skew plan: %+v", sym, skewStats)
		}
		if skewSum != uniSum {
			t.Fatalf("%s: checksum changed with SkewAware on", sym)
		}
		if skewStats.Response != uniStats.Response {
			t.Fatalf("%s: response %v (skew) != %v (uniform) on uniform keys",
				sym, skewStats.Response, uniStats.Response)
		}
	}
}
