package join

import (
	"errors"
	"fmt"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/sim"
)

// SharedQuery is one rider of a shared S-scan: a query whose R side is
// already disk-resident and that piggybacks on a single tape pass over
// the common S relation. The scan fans every streamed S chunk out to
// each rider's probe operator.
type SharedQuery struct {
	// R is the rider's small relation (used for sizing and stats).
	R *relation.Relation
	// StagedR is R's disk-resident copy, staged via Session.StageR or
	// the workload cache. Required; ownership stays with the caller.
	StagedR device.File
	// FilterS, when non-nil, drops S tuples from this rider's output
	// only — the other riders still see them.
	FilterS func(block.Tuple) bool
	// Sink receives the rider's output pairs; nil counts matches only.
	Sink Sink
	// MrBlocks is the rider's R-scan buffer (admission control's
	// per-query memory partition). Minimum 1.
	MrBlocks int64
}

// SharedResult reports one shared S-scan pass.
type SharedResult struct {
	// Stats aggregates the pass across all riders: Response is the
	// pass's own duration, tape/disk counters are per-pass deltas,
	// Iterations counts S chunks.
	Stats Stats
	// Matches holds each rider's output cardinality, index-aligned
	// with the queries argument.
	Matches []int64
}

// ExecShared runs one shared pass over bigS for all riders: S streams
// from tape once in double-buffered chunks (CDT-NB/MB style, one
// reader proc ahead of the join); for each chunk one shared hash
// table is built, and every rider's disk-resident R scans against it
// in turn. Compared to running the riders back to back, S's tape cost
// is paid once instead of len(queries) times.
//
// memBlocks is the memory budget for the pass (0 = the session's M):
// each rider reserves MrBlocks for its R scan and the remainder splits
// into two S chunk buffers.
func (s *Session) ExecShared(p *sim.Proc, bigS *relation.Relation, queries []SharedQuery, memBlocks int64) (*SharedResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("join: shared scan with no riders")
	}
	if memBlocks <= 0 {
		memBlocks = s.res.MemoryBlocks
	}
	var mrTotal int64
	for i := range queries {
		q := &queries[i]
		if q.StagedR == nil || q.StagedR.Lost() {
			return nil, fmt.Errorf("join: shared-scan rider %d has no staged R", i)
		}
		if q.Sink == nil {
			q.Sink = &CountSink{}
		}
		if q.MrBlocks < 1 {
			q.MrBlocks = 1
		}
		mrTotal += q.MrBlocks
	}
	// Two S buffers share what the R scans leave: the reader fills one
	// chunk while the riders drain the other.
	ms := (memBlocks - mrTotal) / 2
	if ms < 1 {
		return nil, fmt.Errorf("%w: M=%d cannot buffer S for %d shared riders",
			ErrNeedMemory, memBlocks, len(queries))
	}

	if s.driveS.Media() != bigS.Media {
		s.driveS.Load(bigS.Media)
	}
	snap := s.snapshot()
	s.disks.ResetHighWater()

	res := s.res
	res.MemoryBlocks = memBlocks
	// The env's spec is only a carrier here: shared scans read S via
	// the region below and each rider's R from its staged file.
	e := s.newEnv(p.Now(), Spec{R: queries[0].R, S: bigS}, res, &CountSink{})
	sp := e.span(p, "shared-scan",
		obs.AInt("riders", int64(len(queries))), obs.AInt("s_blocks", bigS.Region.N))

	region := bigS.Region
	type chunk struct {
		blks []block.Block
		off  int64
		n    int64
		err  error
	}
	bufs := sim.NewContainer(e.k, "shared-bufs", 2, 2)
	q := sim.NewQueue[chunk](e.k, "shared-chunks", 1)

	reader := e.k.Spawn("shared-s-reader", func(rp *sim.Proc) {
		for off := int64(0); off < region.N && !e.abort; off += ms {
			n := min64(ms, region.N-off)
			bufs.Get(rp, 1)
			e.mem.acquire(n)
			ssp := e.span(rp, "stage-S", obs.AInt("off", off))
			blks, err := e.tapeRead(rp, e.driveS, region.Start+addr(off), n)
			ssp.Close(rp)
			if err != nil {
				e.mem.release(n)
				bufs.Put(rp, 1)
				q.Send(rp, chunk{off: off, err: err})
				break
			}
			q.Send(rp, chunk{blks: blks, off: off, n: n})
		}
		q.Close(rp)
	})

	var pipeErr error
	for {
		c, ok := q.Recv(p)
		if !ok {
			break
		}
		if c.err != nil || pipeErr != nil {
			if c.err != nil && pipeErr == nil {
				pipeErr = c.err
			}
			if c.blks != nil {
				e.mem.release(c.n)
				bufs.Put(p, 1)
			}
			continue
		}
		err := sharedJoinChunk(e, p, c.blks, c.off, queries)
		e.mem.release(c.n)
		bufs.Put(p, 1)
		if errors.Is(err, ErrStopped) {
			// Every rider satisfied: stop the scan but keep draining the
			// queue so the reader can finish its Send and exit.
			e.stats.Stopped = true
			e.abort = true
			continue
		}
		if err != nil {
			pipeErr = err
			e.abort = true
			continue
		}
		e.stats.Iterations++
	}
	if err := p.Wait(reader); err != nil {
		sp.Close(p)
		return nil, err
	}
	e.abort = false
	sp.Close(p)
	if pipeErr != nil {
		return nil, fmt.Errorf("shared-scan: %w", pipeErr)
	}

	s.finishStats(e, p.Now(), snap)
	out := &SharedResult{Stats: *e.stats}
	out.Stats.OutputTuples = 0
	for i := range queries {
		out.Matches = append(out.Matches, queries[i].Sink.Count())
		out.Stats.OutputTuples += queries[i].Sink.Count()
	}
	return out, nil
}

// sharedJoinChunk builds one hash table over an S chunk and probes
// every rider's disk-resident R against it. Riders run sequentially —
// the disk array is the shared resource and its contention is what the
// simulation accounts — with per-rider S filters applied at emission.
// Riders whose StreamSink is already satisfied skip their probe scan;
// once every rider is satisfied the chunk returns ErrStopped so the
// pass can stop pulling S from tape.
func sharedJoinChunk(e *env, p *sim.Proc, blks []block.Block, off int64, queries []SharedQuery) error {
	if err := e.checkStop(); err != nil {
		return err
	}
	if allRidersSatisfied(queries) {
		return ErrStopped
	}
	sp := e.span(p, "join-chunk", obs.AInt("off", off))
	defer sp.Close(p)
	table := newHashTable()
	if err := table.addBlocks(blks); err != nil {
		return err
	}
	for i := range queries {
		q := &queries[i]
		if ss, ok := q.Sink.(StreamSink); ok && ss.Satisfied() {
			continue
		}
		psp := e.span(p, "probe", obs.AInt("rider", int64(i)))
		e.mem.acquire(q.MrBlocks)
		err := func() error {
			fR := q.StagedR
			for roff := int64(0); roff < fR.Len(); roff += q.MrBlocks {
				n := min64(q.MrBlocks, fR.Len()-roff)
				rBlks, err := e.diskRead(p, fR, roff, n)
				if err != nil {
					return err
				}
				err = forEachTuple(rBlks, func(rt block.Tuple) {
					for _, st := range table.m[rt.Key] {
						if q.FilterS != nil && !q.FilterS(st) {
							continue
						}
						q.Sink.Emit(p, rt, st)
					}
				})
				if err != nil {
					return err
				}
			}
			return nil
		}()
		e.mem.release(q.MrBlocks)
		psp.Close(p)
		if err != nil {
			return err
		}
	}
	return nil
}

// allRidersSatisfied reports whether every rider's sink is a satisfied
// StreamSink — the shared pass has nothing left to produce.
func allRidersSatisfied(queries []SharedQuery) bool {
	for i := range queries {
		ss, ok := queries[i].Sink.(StreamSink)
		if !ok || !ss.Satisfied() {
			return false
		}
	}
	return true
}
