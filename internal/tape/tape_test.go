package tape

import (
	"errors"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/sim"
)

func mkBlocks(tag byte, n int, keyBase uint64) []block.Block {
	out := make([]block.Block, n)
	for i := range out {
		b := block.NewBuilder(tag)
		b.Append(block.Tuple{Key: keyBase + uint64(i)})
		out[i] = b.Finish()
	}
	return out
}

func TestMediaAppendRead(t *testing.T) {
	m := NewMedia("t1", 100)
	if m.Name() != "t1" || m.Capacity() != 100 || m.EOD() != 0 || m.Free() != 100 {
		t.Fatalf("fresh media state wrong: %+v", m)
	}
	r1, err := m.append(mkBlocks(1, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Start != 0 || r1.N != 10 || r1.End() != 10 {
		t.Fatalf("region = %+v", r1)
	}
	r2, err := m.append(mkBlocks(2, 5, 100))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start != 10 || m.EOD() != 15 || m.Free() != 85 {
		t.Fatalf("second region %+v, EOD %d", r2, m.EOD())
	}
	blks, err := m.read(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	tag, tuples, err := blks[0].Decode()
	if err != nil || tag != 2 || tuples[0].Key != 100 {
		t.Fatalf("decode: tag=%d key=%d err=%v", tag, tuples[0].Key, err)
	}
}

func TestMediaFull(t *testing.T) {
	m := NewMedia("t1", 3)
	if _, err := m.append(mkBlocks(1, 4, 0)); !errors.Is(err, ErrTapeFull) {
		t.Fatalf("err = %v, want ErrTapeFull", err)
	}
}

func TestMediaReadBeyondEOD(t *testing.T) {
	m := NewMedia("t1", 10)
	m.append(mkBlocks(1, 2, 0))
	if _, err := m.read(0, 3); err == nil {
		t.Fatal("want error reading past EOD")
	}
	if _, err := m.read(-1, 1); err == nil {
		t.Fatal("want error for negative address")
	}
}

func TestMediaTruncate(t *testing.T) {
	m := NewMedia("t1", 10)
	m.append(mkBlocks(1, 8, 0))
	m.Truncate(3)
	if m.EOD() != 3 || m.Free() != 7 {
		t.Fatalf("EOD = %d free = %d", m.EOD(), m.Free())
	}
}

func TestRegionSub(t *testing.T) {
	r := Region{Start: 10, N: 20}
	s := r.Sub(5, 10)
	if s.Start != 15 || s.N != 10 {
		t.Fatalf("sub = %+v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Sub")
		}
	}()
	r.Sub(15, 10)
}

// idealCfg has rate 1 block per second for easy arithmetic.
func idealCfg() DriveConfig {
	return DriveConfig{NativeRate: block.VirtualSize, CompressionFactor: 1}
}

func TestDriveTransferTime(t *testing.T) {
	k := sim.NewKernel()
	d := NewDrive(k, "r", idealCfg())
	m := NewMedia("t", 1000)
	m.append(mkBlocks(1, 100, 0))
	d.Load(m)
	k.Spawn("reader", func(p *sim.Proc) {
		blks, err := d.ReadAt(p, 0, 50)
		if err != nil {
			t.Error(err)
		}
		if len(blks) != 50 {
			t.Errorf("read %d blocks, want 50", len(blks))
		}
		if p.Now() != sim.Time(50*time.Second) {
			t.Errorf("read of 50 blocks took %v, want 50s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.BlocksRead != 50 || d.Stats.Requests != 1 {
		t.Fatalf("stats = %+v", d.Stats)
	}
}

func TestDriveCompressionSpeedsTransfers(t *testing.T) {
	cfg := idealCfg()
	cfg.CompressionFactor = 2
	k := sim.NewKernel()
	d := NewDrive(k, "r", cfg)
	m := NewMedia("t", 100)
	m.append(mkBlocks(1, 20, 0))
	d.Load(m)
	k.Spawn("reader", func(p *sim.Proc) {
		d.ReadAt(p, 0, 20)
		if p.Now() != sim.Time(10*time.Second) {
			t.Errorf("compressed read took %v, want 10s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDriveSeekCharged(t *testing.T) {
	cfg := idealCfg()
	cfg.SeekFixed = 5 * time.Second
	cfg.SeekPerBlock = 100 * time.Millisecond
	k := sim.NewKernel()
	d := NewDrive(k, "r", cfg)
	m := NewMedia("t", 1000)
	m.append(mkBlocks(1, 200, 0))
	d.Load(m)
	k.Spawn("reader", func(p *sim.Proc) {
		d.ReadAt(p, 0, 10)  // t=10 (no seek: head at 0)
		d.ReadAt(p, 10, 10) // sequential: no seek, t=20
		// Jump back to 0: seek 5s fixed + 20 blocks * 0.1s = 7s; then 10s read.
		d.ReadAt(p, 0, 10)
		if p.Now() != sim.Time(37*time.Second) {
			t.Errorf("now = %v, want 37s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Seeks != 1 || d.Stats.SeekTime != 7*time.Second {
		t.Fatalf("seek stats = %+v", d.Stats)
	}
}

func TestDriveStartStopPenalty(t *testing.T) {
	cfg := idealCfg()
	cfg.StartStopPenalty = 2 * time.Second
	k := sim.NewKernel()
	d := NewDrive(k, "r", cfg)
	m := NewMedia("t", 100)
	m.append(mkBlocks(1, 30, 0))
	d.Load(m)
	k.Spawn("reader", func(p *sim.Proc) {
		d.ReadAt(p, 0, 10)      // first transfer: no penalty, ends t=10
		d.ReadAt(p, 10, 10)     // back-to-back: streaming, no penalty, ends t=20
		p.Hold(5 * time.Second) // drive stops
		d.ReadAt(p, 20, 10)     // resume: 2s penalty + 10s, ends t=37
		if p.Now() != sim.Time(37*time.Second) {
			t.Errorf("now = %v, want 37s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.StartStops != 1 {
		t.Fatalf("start/stops = %d, want 1", d.Stats.StartStops)
	}
}

func TestDriveAppendSeeksToEOD(t *testing.T) {
	cfg := idealCfg()
	cfg.SeekFixed = 3 * time.Second
	k := sim.NewKernel()
	d := NewDrive(k, "r", cfg)
	m := NewMedia("t", 1000)
	m.append(mkBlocks(1, 100, 0))
	d.Load(m)
	k.Spawn("writer", func(p *sim.Proc) {
		// Head at 0; EOD at 100: seek (3s) + write 10 blocks (10s).
		reg, err := d.Append(p, mkBlocks(9, 10, 500))
		if err != nil {
			t.Error(err)
		}
		if reg.Start != 100 || reg.N != 10 {
			t.Errorf("region = %+v", reg)
		}
		if p.Now() != sim.Time(13*time.Second) {
			t.Errorf("now = %v, want 13s", p.Now())
		}
		// Second append: head already at EOD, no seek.
		d.Append(p, mkBlocks(9, 5, 600))
		if p.Now() != sim.Time(18*time.Second) {
			t.Errorf("now = %v, want 18s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.BlocksWritten != 15 {
		t.Fatalf("written = %d", d.Stats.BlocksWritten)
	}
}

func TestDriveSerializesConcurrentRequests(t *testing.T) {
	// A reader and an appender sharing one drive serialize.
	k := sim.NewKernel()
	d := NewDrive(k, "r", idealCfg())
	m := NewMedia("t", 1000)
	m.append(mkBlocks(1, 100, 0))
	d.Load(m)
	k.Spawn("reader", func(p *sim.Proc) { d.ReadAt(p, 0, 40) })
	k.Spawn("appender", func(p *sim.Proc) { d.Append(p, mkBlocks(2, 40, 0)) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != sim.Time(80*time.Second) {
		t.Fatalf("makespan = %v, want 80s (serialized)", k.Now())
	}
}

func TestTwoDrivesOverlap(t *testing.T) {
	k := sim.NewKernel()
	d1 := NewDrive(k, "r", idealCfg())
	d2 := NewDrive(k, "s", idealCfg())
	m1, m2 := NewMedia("t1", 100), NewMedia("t2", 100)
	m1.append(mkBlocks(1, 50, 0))
	m2.append(mkBlocks(2, 50, 0))
	d1.Load(m1)
	d2.Load(m2)
	k.Spawn("r1", func(p *sim.Proc) { d1.ReadAt(p, 0, 50) })
	k.Spawn("r2", func(p *sim.Proc) { d2.ReadAt(p, 0, 50) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != sim.Time(50*time.Second) {
		t.Fatalf("makespan = %v, want 50s (parallel)", k.Now())
	}
}

func TestDriveRewind(t *testing.T) {
	cfg := idealCfg()
	cfg.SeekFixed = time.Second
	cfg.SeekPerBlock = 10 * time.Millisecond
	k := sim.NewKernel()
	d := NewDrive(k, "r", cfg)
	m := NewMedia("t", 100)
	m.append(mkBlocks(1, 50, 0))
	d.Load(m)
	k.Spawn("p", func(p *sim.Proc) {
		d.ReadAt(p, 0, 50) // ends t=50, head at 50
		d.Rewind(p)        // 1s + 50*10ms = 1.5s
		if p.Now() != sim.Time(51500*time.Millisecond) {
			t.Errorf("now = %v, want 51.5s", p.Now())
		}
		d.Rewind(p) // already at 0: free
		if p.Now() != sim.Time(51500*time.Millisecond) {
			t.Errorf("now = %v after no-op rewind", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDriveNoMedia(t *testing.T) {
	k := sim.NewKernel()
	d := NewDrive(k, "r", idealCfg())
	k.Spawn("p", func(p *sim.Proc) {
		if _, err := d.ReadAt(p, 0, 1); err == nil {
			t.Error("read with no cartridge should fail")
		}
		if _, err := d.Append(p, mkBlocks(1, 1, 0)); err == nil {
			t.Error("append with no cartridge should fail")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DLT4000()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Ideal().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.NativeRate = 0
	if bad.Validate() == nil {
		t.Fatal("zero rate should be invalid")
	}
	bad = good
	bad.CompressionFactor = 0.5
	if bad.Validate() == nil {
		t.Fatal("compression < 1 should be invalid")
	}
	bad = good
	bad.SeekFixed = -time.Second
	if bad.Validate() == nil {
		t.Fatal("negative delay should be invalid")
	}
}

func TestDLT4000Calibration(t *testing.T) {
	// The calibrated profile reads 25%-compressible data at ~1.676 MB/s:
	// Table 3 Join III read S+R (7500 MB) in 4475 seconds.
	cfg := DLT4000()
	rate := cfg.EffectiveRate()
	secs := 7500.0 * 1e6 / rate
	if secs < 4300 || secs > 4650 {
		t.Fatalf("7500 MB at calibrated rate takes %.0f s, want ~4475 s", secs)
	}
}

func TestDriveReadOutOfRange(t *testing.T) {
	k := sim.NewKernel()
	cfg := idealCfg()
	cfg.BiDirectional = true
	d := NewDrive(k, "r", cfg)
	m := NewMedia("t", 100)
	m.append(mkBlocks(1, 10, 0))
	d.Load(m)
	k.Spawn("p", func(p *sim.Proc) {
		// Every malformed request must come back as an error before any
		// head movement — not a panic out of the medium's block store.
		for _, c := range []struct{ addr, n int64 }{
			{8, 3},  // runs past EOD
			{10, 1}, // starts at EOD
			{-1, 1}, // negative address
			{0, -1}, // negative count
			{0, 11}, // longer than the recorded data
		} {
			if _, err := d.ReadAt(p, Addr(c.addr), c.n); err == nil {
				t.Errorf("ReadAt(%d, %d): want out-of-range error", c.addr, c.n)
			}
			if _, err := d.ReadRegion(p, Region{Start: Addr(c.addr), N: c.n}); err == nil {
				t.Errorf("ReadRegion(%d, %d): want out-of-range error", c.addr, c.n)
			}
			if _, err := d.ReadRegionReverse(p, Region{Start: Addr(c.addr), N: c.n}); err == nil {
				t.Errorf("ReadRegionReverse(%d, %d): want out-of-range error", c.addr, c.n)
			}
		}
		// The drive still works after rejecting garbage.
		if blks, err := d.ReadAt(p, 0, 10); err != nil || len(blks) != 10 {
			t.Errorf("in-range read after rejections: %d blocks, err %v", len(blks), err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
