package join

import (
	"errors"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/tape"
)

// testSpec builds a small R (24 blocks) and S (96 blocks) pair with
// generous scratch space on both cartridges.
func testSpec(t *testing.T) Spec {
	t.Helper()
	return specWithSizes(t, 24, 96, 4)
}

func specWithSizes(t *testing.T, rBlocks, sBlocks int64, tuplesPerBlock int) Spec {
	t.Helper()
	mR := tape.NewMedia("tapeR", rBlocks+sBlocks+256)
	mS := tape.NewMedia("tapeS", sBlocks+rBlocks+256)
	r, err := relation.WriteToTape(relation.Config{
		Name: "R", Tag: 1, Blocks: rBlocks, TuplesPerBlock: tuplesPerBlock,
		KeySpace: 200, PayloadBytes: 8, Seed: 11,
	}, mR)
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: sBlocks, TuplesPerBlock: tuplesPerBlock,
		KeySpace: 200, PayloadBytes: 8, Seed: 22,
	}, mS)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{R: r, S: s}
}

// fastRes returns ideal-model resources (no seeks or penalties) sized
// for the small test spec.
func fastRes(m, d int64) Resources {
	return Resources{
		MemoryBlocks: m,
		DiskBlocks:   d,
		NumDisks:     2,
		DiskRate:     2 * tape.Ideal().EffectiveRate(),
		Tape:         tape.Ideal(),
		IOChunk:      8,
	}
}

func TestAllMethodsProduceIdenticalCorrectOutput(t *testing.T) {
	spec := testSpec(t)
	want := relation.ExpectedMatches(spec.R, spec.S)
	if want == 0 {
		t.Fatal("test relations have no matches; bad generator config")
	}
	var wantKeySum uint64
	first := true

	for _, m := range Methods() {
		m := m
		t.Run(m.Symbol(), func(t *testing.T) {
			// Fresh media per method: tape-tape methods consume
			// scratch space.
			spec := testSpec(t)
			sink := &CountSink{}
			res := fastRes(10, 64)
			result, err := Run(m, spec, res, sink)
			if err != nil {
				t.Fatal(err)
			}
			if sink.Matches != want {
				t.Fatalf("matches = %d, want %d", sink.Matches, want)
			}
			if result.Stats.OutputTuples != want {
				t.Fatalf("stats.OutputTuples = %d, want %d", result.Stats.OutputTuples, want)
			}
			if first {
				wantKeySum = sink.KeySum
				first = false
			} else if sink.KeySum != wantKeySum {
				t.Fatalf("key checksum = %d, want %d", sink.KeySum, wantKeySum)
			}
			if result.Stats.Response <= 0 {
				t.Fatal("no virtual time elapsed")
			}
			if result.Stats.StepI <= 0 || result.Stats.StepI > result.Stats.Response {
				t.Fatalf("StepI = %v outside (0, %v]", result.Stats.StepI, result.Stats.Response)
			}
		})
	}
}

func TestMethodsMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Methods() {
		if m.Name() == "" || m.Symbol() == "" {
			t.Fatalf("method %T lacks name/symbol", m)
		}
		if seen[m.Symbol()] {
			t.Fatalf("duplicate symbol %s", m.Symbol())
		}
		seen[m.Symbol()] = true
		got, err := BySymbol(m.Symbol())
		if err != nil || got.Symbol() != m.Symbol() {
			t.Fatalf("BySymbol(%s): %v", m.Symbol(), err)
		}
	}
	if len(seen) != 7 {
		t.Fatalf("%d methods, want 7", len(seen))
	}
	if _, err := BySymbol("nope"); err == nil {
		t.Fatal("BySymbol should fail for unknown method")
	}
}

func TestSequentialMethodsRespectMemoryBudget(t *testing.T) {
	for _, sym := range []string{"DT-NB", "DT-GH", "TT-GH"} {
		m, _ := BySymbol(sym)
		spec := testSpec(t)
		res := fastRes(10, 64)
		result, err := Run(m, spec, res, nil)
		if err != nil {
			t.Fatalf("%s: %v", sym, err)
		}
		if result.Stats.MemHighWater > res.MemoryBlocks {
			t.Errorf("%s: memory high water %d > M %d", sym, result.Stats.MemHighWater, res.MemoryBlocks)
		}
	}
}

func TestConcurrentMethodsBoundedMemory(t *testing.T) {
	// Concurrent methods may overlap producer and consumer memory
	// (the paper's Table 2 idealization); the combined peak stays
	// within 2M.
	for _, sym := range []string{"CDT-NB/MB", "CDT-NB/DB", "CDT-GH", "CTT-GH"} {
		m, _ := BySymbol(sym)
		spec := testSpec(t)
		res := fastRes(10, 64)
		result, err := Run(m, spec, res, nil)
		if err != nil {
			t.Fatalf("%s: %v", sym, err)
		}
		if result.Stats.MemHighWater > 2*res.MemoryBlocks {
			t.Errorf("%s: memory high water %d > 2M %d", sym, result.Stats.MemHighWater, 2*res.MemoryBlocks)
		}
	}
}

func TestDiskHighWaterMatchesTable2(t *testing.T) {
	spec := testSpec(t) // |R| = 24
	res := fastRes(10, 64)

	run := func(sym string) Stats {
		m, _ := BySymbol(sym)
		spec := testSpec(t)
		result, err := Run(m, spec, res, nil)
		if err != nil {
			t.Fatalf("%s: %v", sym, err)
		}
		return result.Stats
	}

	r := spec.R.Region.N
	// DT-NB and CDT-NB/MB use exactly |R| of disk.
	if st := run("DT-NB"); st.DiskHighWater != r {
		t.Errorf("DT-NB disk high water = %d, want |R| = %d", st.DiskHighWater, r)
	}
	if st := run("CDT-NB/MB"); st.DiskHighWater != r {
		t.Errorf("CDT-NB/MB disk high water = %d, want |R| = %d", st.DiskHighWater, r)
	}
	// CDT-NB/DB adds the S chunk buffer.
	if st := run("CDT-NB/DB"); st.DiskHighWater <= r {
		t.Errorf("CDT-NB/DB disk high water = %d, want > |R|", st.DiskHighWater)
	}
	// GH methods use roughly |R| (+ partial blocks) for R's buckets
	// plus the S buffer; more than |R|, bounded by D.
	for _, sym := range []string{"DT-GH", "CDT-GH"} {
		if st := run(sym); st.DiskHighWater <= r || st.DiskHighWater > res.DiskBlocks {
			t.Errorf("%s disk high water = %d, want in (|R|, D]", sym, st.DiskHighWater)
		}
	}
	// Tape-tape methods use disk only as an assembly/buffer area,
	// bounded by D, never staging all of R plus a buffer.
	for _, sym := range []string{"CTT-GH", "TT-GH"} {
		if st := run(sym); st.DiskHighWater > res.DiskBlocks {
			t.Errorf("%s disk high water = %d > D = %d", sym, st.DiskHighWater, res.DiskBlocks)
		}
	}
}

func TestCTTGHUsesTapeScratchNotDiskForR(t *testing.T) {
	spec := testSpec(t)
	r := spec.R.Region.N
	eodBefore := spec.R.Media.EOD()
	m, _ := BySymbol("CTT-GH")
	res := fastRes(10, 20) // D < |R|: disk-tape methods cannot run
	result, err := Run(m, spec, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The hashed copy of R was appended to the R tape.
	grew := int64(spec.R.Media.EOD() - eodBefore)
	if grew < r {
		t.Fatalf("R tape grew %d blocks, want >= |R| = %d", grew, r)
	}
	if result.Stats.DiskHighWater > 20 {
		t.Fatalf("disk high water %d > D", result.Stats.DiskHighWater)
	}
}

func TestFeasibilityErrors(t *testing.T) {
	spec := testSpec(t)

	t.Run("disk-tape methods need D >= |R|", func(t *testing.T) {
		for _, sym := range []string{"DT-NB", "CDT-NB/MB", "CDT-NB/DB", "DT-GH", "CDT-GH"} {
			m, _ := BySymbol(sym)
			if err := m.Check(spec, fastRes(10, 10)); !errors.Is(err, ErrNeedDiskForR) {
				t.Errorf("%s: err = %v, want ErrNeedDiskForR", sym, err)
			}
		}
	})
	t.Run("GH methods need M >= sqrt(|R|)", func(t *testing.T) {
		big := specWithSizes(t, 200, 400, 2)
		for _, sym := range []string{"DT-GH", "CDT-GH", "CTT-GH", "TT-GH"} {
			m, _ := BySymbol(sym)
			if err := m.Check(big, fastRes(5, 1000)); !errors.Is(err, ErrNeedMemory) {
				t.Errorf("%s: err = %v, want ErrNeedMemory", sym, err)
			}
		}
	})
	t.Run("tape-tape methods need scratch tape", func(t *testing.T) {
		mR := tape.NewMedia("tr", 25) // no room beyond R itself
		mS := tape.NewMedia("ts", 200)
		r, err := relation.WriteToTape(relation.Config{
			Name: "R", Tag: 1, Blocks: 24, TuplesPerBlock: 2, KeySpace: 100, Seed: 1,
		}, mR)
		if err != nil {
			t.Fatal(err)
		}
		s, err := relation.WriteToTape(relation.Config{
			Name: "S", Tag: 2, Blocks: 96, TuplesPerBlock: 2, KeySpace: 100, Seed: 2,
		}, mS)
		if err != nil {
			t.Fatal(err)
		}
		tight := Spec{R: r, S: s}
		for _, sym := range []string{"CTT-GH", "TT-GH"} {
			m, _ := BySymbol(sym)
			if err := m.Check(tight, fastRes(10, 64)); !errors.Is(err, ErrNeedTapeScratch) {
				t.Errorf("%s: err = %v, want ErrNeedTapeScratch", sym, err)
			}
		}
	})
	t.Run("run surfaces check errors", func(t *testing.T) {
		m, _ := BySymbol("DT-NB")
		if _, err := Run(m, spec, fastRes(10, 5), nil); !errors.Is(err, ErrNeedDiskForR) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestSpecValidation(t *testing.T) {
	spec := testSpec(t)
	m, _ := BySymbol("DT-NB")

	if _, err := Run(m, Spec{R: spec.R}, fastRes(10, 64), nil); err == nil {
		t.Error("nil S should fail")
	}
	swapped := Spec{R: spec.S, S: spec.R}
	if _, err := Run(m, swapped, fastRes(10, 64), nil); err == nil {
		t.Error("|R| > |S| should fail")
	}
	same := Spec{R: spec.R, S: spec.R}
	if _, err := Run(m, same, fastRes(10, 64), nil); err == nil {
		t.Error("same cartridge should fail")
	}
}

func TestResourceValidation(t *testing.T) {
	spec := testSpec(t)
	m, _ := BySymbol("DT-NB")
	bad := fastRes(1, 64) // M < 2
	if _, err := Run(m, spec, bad, nil); err == nil {
		t.Error("M=1 should fail validation")
	}
	bad = fastRes(10, 0)
	if _, err := Run(m, spec, bad, nil); err == nil {
		t.Error("D=0 should fail validation")
	}
}

// measure runs a method on a fresh spec and returns its response time.
func measure(t *testing.T, sym string, mk func(t *testing.T) Spec, res Resources) time.Duration {
	t.Helper()
	m, _ := BySymbol(sym)
	result, err := Run(m, mk(t), res, nil)
	if err != nil {
		t.Fatalf("%s: %v", sym, err)
	}
	return result.Stats.Response
}

func TestConcurrentVariantsOverlapIO(t *testing.T) {
	// The paper's Section 9 findings, at small scale:
	//
	// (a) When a large fraction of R fits in memory and disks are
	// fast, CDT-NB/MB overlaps tape input with the join and beats
	// DT-NB despite its doubled iterations.
	mkSmallR := func(t *testing.T) Spec { return specWithSizes(t, 12, 96, 4) }
	bigM := fastRes(16, 96)
	bigM.DiskRate = 4 * tape.Ideal().EffectiveRate()
	bigM.DiskOverhead = time.Millisecond
	if mb, seq := measure(t, "CDT-NB/MB", mkSmallR, bigM), measure(t, "DT-NB", mkSmallR, bigM); mb >= seq {
		t.Errorf("large M: CDT-NB/MB (%v) not faster than DT-NB (%v)", mb, seq)
	}

	// (b) With little memory the join is dominated by R scans;
	// CDT-NB/DB hides the whole tape read behind them and beats
	// DT-NB. Disks faster relative to tape make the staging cost
	// negligible (the paper's slower-tape case, Figure 10).
	mkBigR := func(t *testing.T) Spec { return specWithSizes(t, 24, 96, 4) }
	smallM := fastRes(4, 96)
	smallM.DiskRate = 4 * tape.Ideal().EffectiveRate()
	smallM.DiskOverhead = time.Millisecond
	if db, seq := measure(t, "CDT-NB/DB", mkBigR, smallM), measure(t, "DT-NB", mkBigR, smallM); db >= seq {
		t.Errorf("small M: CDT-NB/DB (%v) not faster than DT-NB (%v)", db, seq)
	}

	// (c) CDT-GH overlaps hashing chunk i+1 with joining chunk i and
	// beats DT-GH across the range ("the wide margin between CDT-GH
	// and DT-GH demonstrates the advantage of parallel I/O").
	midM := fastRes(10, 64)
	midM.DiskOverhead = time.Millisecond
	if gh, seq := measure(t, "CDT-GH", mkBigR, midM), measure(t, "DT-GH", mkBigR, midM); gh >= seq {
		t.Errorf("CDT-GH (%v) not faster than DT-GH (%v)", gh, seq)
	}
}

func TestStatsAccounting(t *testing.T) {
	m, _ := BySymbol("DT-GH")
	spec := testSpec(t)
	res := fastRes(10, 64)
	result, err := Run(m, spec, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := result.Stats
	// Both relations read from tape exactly once.
	if st.TapeBlocksRead != spec.R.Region.N+spec.S.Region.N {
		t.Errorf("tape blocks read = %d, want %d", st.TapeBlocksRead, spec.R.Region.N+spec.S.Region.N)
	}
	if st.TapeBlocksWritten != 0 {
		t.Errorf("DT-GH wrote %d tape blocks, want 0", st.TapeBlocksWritten)
	}
	// Disk traffic: write R buckets once; per iteration write + read
	// the S chunk and re-read R's buckets.
	if st.DiskBlocksWritten < spec.R.Region.N+spec.S.Region.N {
		t.Errorf("disk writes = %d, want >= %d", st.DiskBlocksWritten, spec.R.Region.N+spec.S.Region.N)
	}
	wantReads := int64(st.Iterations)*spec.R.Region.N + spec.S.Region.N
	if st.DiskBlocksRead < wantReads {
		t.Errorf("disk reads = %d, want >= %d", st.DiskBlocksRead, wantReads)
	}
	if st.Iterations < 1 || st.RScans != 1+st.Iterations {
		t.Errorf("iterations=%d rscans=%d", st.Iterations, st.RScans)
	}
}

func TestSkewedRelationTriggersOverflowFallbackCorrectly(t *testing.T) {
	// Heavy skew makes one R bucket exceed memory; the fallback must
	// still produce exact output.
	mR := tape.NewMedia("tr", 1024)
	mS := tape.NewMedia("ts", 1024)
	r, err := relation.WriteToTape(relation.Config{
		Name: "R", Tag: 1, Blocks: 24, TuplesPerBlock: 4, KeySpace: 500,
		HotFraction: 0.002, HotProb: 0.7, Seed: 5,
	}, mR)
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: 96, TuplesPerBlock: 4, KeySpace: 500,
		HotFraction: 0.002, HotProb: 0.3, Seed: 6,
	}, mS)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{R: r, S: s}
	want := relation.ExpectedMatches(r, s)
	for _, sym := range []string{"DT-GH", "CDT-GH", "CTT-GH", "TT-GH"} {
		m, _ := BySymbol(sym)
		sink := &CountSink{}
		if _, err := Run(m, spec, fastRes(8, 96), sink); err != nil {
			t.Fatalf("%s: %v", sym, err)
		}
		if sink.Matches != want {
			t.Fatalf("%s: matches = %d, want %d", sym, sink.Matches, want)
		}
		// Fresh media for the next tape-tape run.
		mR.Truncate(r.Region.End())
		mS.Truncate(s.Region.End())
	}
}

func TestSplitDisciplineDoublesIterations(t *testing.T) {
	mRun := func(d Discipline) Stats {
		m, _ := BySymbol("CDT-NB/DB")
		spec := testSpec(t)
		res := fastRes(10, 64)
		res.Discipline = d
		result, err := Run(m, spec, res, nil)
		if err != nil {
			t.Fatal(err)
		}
		return result.Stats
	}
	inter := mRun(Interleaved)
	split := mRun(SplitHalves)
	if split.Iterations < 2*inter.Iterations-1 {
		t.Fatalf("split iterations = %d, interleaved = %d; want ~double", split.Iterations, inter.Iterations)
	}
	if split.Response <= inter.Response {
		t.Fatalf("split (%v) should be slower than interleaved (%v)", split.Response, inter.Response)
	}
}

func TestBufferTraceExposedForBufferedMethods(t *testing.T) {
	m, _ := BySymbol("CTT-GH")
	spec := testSpec(t)
	result, err := Run(m, spec, fastRes(10, 24), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.BufferTrace) == 0 || result.BufferCapacity == 0 {
		t.Fatal("CTT-GH should expose a buffer trace")
	}
	for _, s := range result.BufferTrace {
		if s.Total() > result.BufferCapacity {
			t.Fatalf("trace sample %+v exceeds capacity %d", s, result.BufferCapacity)
		}
	}
}

func TestPairSinkRecordsMatchingKeys(t *testing.T) {
	m, _ := BySymbol("DT-NB")
	spec := testSpec(t)
	sink := &PairSink{}
	if _, err := Run(m, spec, fastRes(10, 64), sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.Pairs) == 0 {
		t.Fatal("no pairs")
	}
	for _, pr := range sink.Pairs {
		if pr[0] != pr[1] {
			t.Fatalf("emitted non-matching pair %v", pr)
		}
	}
}
