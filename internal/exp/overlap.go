package exp

import (
	"fmt"
	"math"
	"time"

	tapejoin "repro"
)

// OverlapRow is one line of the device-overlap experiment: a method's
// whole-run critical path ("TOTAL") or one of its phases, with the
// bottleneck device and the fraction of device busy time hidden behind
// other devices. Concurrent methods earn their "C" by overlapping tape
// and disk I/O; sequential methods should report near-zero overlap
// outside the striped disk array's internal parallelism.
type OverlapRow struct {
	Method     string
	Phase      string // "TOTAL" or the phase (span) name
	Count      int    // span instances merged into the phase
	Wall       time.Duration
	Bottleneck string
	Busy       time.Duration // the bottleneck device's busy time
	Overlap    float64       // fraction of busy time overlapped, in [0, 1)
}

// Overlap runs all seven methods with the observability layer enabled
// and reports each method's per-phase critical path: which device
// bounds each phase, and how much device work the method overlaps.
// This is the structural claim behind the paper's Section 5
// "concurrent" variants, made measurable: CDT-* and CTT-GH should
// report higher whole-run overlap than DT-* and TT-GH.
func Overlap(scale float64) ([]OverlapRow, error) {
	rMB := scaleMB(50, scale)
	sMB := scaleMB(200, scale)
	cfg := tapejoin.Config{
		MemoryMB: scaleMBf(16, math.Sqrt(scale)),
		DiskMB:   scaleMBf(120, scale),
		Observe:  true,
	}
	var rows []OverlapRow
	for _, m := range tapejoin.Methods() {
		sys, r, s, err := buildJoin(cfg, rMB, sMB, 99)
		if err != nil {
			return nil, err
		}
		res, err := sys.Join(m, r, s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		rep := res.Report
		add := func(p tapejoin.PhaseReport) {
			rows = append(rows, OverlapRow{
				Method:     string(m),
				Phase:      p.Name,
				Count:      p.Count,
				Wall:       p.Wall,
				Bottleneck: p.Bottleneck,
				Busy:       p.BottleneckBusy,
				Overlap:    p.Overlap,
			})
		}
		add(rep.Total)
		for _, p := range rep.Phases {
			add(p)
		}
	}
	return rows, nil
}

// FormatOverlap renders the overlap experiment as a table.
func FormatOverlap(rows []OverlapRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		method := r.Method
		if r.Phase != "TOTAL" {
			method = "" // group phases under their method's TOTAL line
		}
		out = append(out, []string{
			method,
			r.Phase,
			fmt.Sprintf("%d", r.Count),
			secs(r.Wall),
			r.Bottleneck,
			secs(r.Busy),
			fmt.Sprintf("%.1f%%", r.Overlap*100),
		})
	}
	return FormatTable(
		[]string{"Join", "Phase", "Count", "Wall", "Bottleneck", "Busy", "Overlap"},
		out)
}
