// Command tracecheck validates Chrome trace_event JSON files produced
// by tapejoin -trace-out (or any Perfetto-loadable trace following the
// same subset): it decodes each file and asserts the structural
// invariants the exporter guarantees. Used by CI to keep the trace
// export loadable.
//
//	tracecheck trace.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			bad = true
			continue
		}
		if err := obs.CheckChromeTrace(data); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}
