package exp

import (
	"math"
	"strings"
	"testing"

	tapejoin "repro"
)

// Small scales keep these tests fast; the geometry (and therefore the
// paper's shapes) is preserved by construction.

func TestTable3ShapeAndMonotoneRelCost(t *testing.T) {
	rows, err := Table3(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.RelCost < 3 || r.RelCost > 20 {
			t.Errorf("%s: relative cost %.1f outside sane band", r.Join, r.RelCost)
		}
		if r.StepI <= 0 || r.StepI >= r.Total {
			t.Errorf("%s: StepI %v vs Total %v", r.Join, r.StepI, r.Total)
		}
		if r.BareRead >= r.Total {
			t.Errorf("%s: join faster than reading the tapes", r.Join)
		}
	}
	// Join III -> IV: same R and D, bigger S amortizes setup: relative
	// cost falls (the paper's Section 7 observation).
	if rows[3].RelCost >= rows[2].RelCost {
		t.Errorf("relative cost should fall from Join III (%.2f) to Join IV (%.2f)",
			rows[2].RelCost, rows[3].RelCost)
	}
}

func TestFigure4UtilizationNearFull(t *testing.T) {
	points, err := Figure4(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 100 {
		t.Fatalf("only %d trace points", len(points))
	}
	// Time-weighted mean utilization across the middle 80% of the
	// trace should be near 100% (the paper's Figure 4).
	lo, hi := len(points)/10, len(points)*9/10
	var sum float64
	for _, p := range points[lo:hi] {
		if p.TotalPct > 100.0001 {
			t.Fatalf("utilization above 100%%: %+v", p)
		}
		sum += p.TotalPct
	}
	mean := sum / float64(hi-lo)
	if mean < 85 {
		t.Fatalf("steady-state utilization %.1f%%, want >= 85%%", mean)
	}
	// Both parities must actually be exercised (shark teeth).
	var evenPeak, oddPeak float64
	for _, p := range points {
		evenPeak = math.Max(evenPeak, p.EvenPct)
		oddPeak = math.Max(oddPeak, p.OddPct)
	}
	if evenPeak < 50 || oddPeak < 50 {
		t.Fatalf("parity peaks %.0f%%/%.0f%%; want both sides used", evenPeak, oddPeak)
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5(0.2)
	if err != nil {
		t.Fatal(err)
	}
	// CDT-GH must blow up as D approaches |R| and become infeasible
	// below; CTT-GH must stay feasible throughout and degrade gently.
	var lastFeasible Fig5Row
	sawInfeasible := false
	for _, r := range rows {
		if r.CDTGHOk {
			lastFeasible = r
		} else {
			sawInfeasible = true
			if r.CDTGHWhy == "" {
				t.Error("infeasible point lacks a reason")
			}
		}
		if r.CTTGH <= 0 {
			t.Fatalf("CTT-GH missing at D=%.1f", r.DiskMB)
		}
	}
	if !sawInfeasible {
		t.Fatal("CDT-GH should become infeasible as D falls below |R|")
	}
	// At the last feasible (smallest) D, CDT-GH should be far worse
	// than CTT-GH; at the largest D it should win.
	if lastFeasible.CDTGH < 2*lastFeasible.CTTGH {
		t.Errorf("near D=|R|: CDT-GH %v should be much worse than CTT-GH %v",
			lastFeasible.CDTGH, lastFeasible.CTTGH)
	}
	first := rows[0]
	if !first.CDTGHOk || first.CDTGH > first.CTTGH {
		t.Errorf("at D=3|R|: CDT-GH %v should beat CTT-GH %v", first.CDTGH, first.CTTGH)
	}
}

func TestExperiment3Shapes(t *testing.T) {
	rows, err := Experiment3(0.15, tapejoin.Compress25)
	if err != nil {
		t.Fatal(err)
	}
	get := func(m tapejoin.Method, frac float64) Exp3Row {
		for _, r := range rows {
			if r.Method == m && r.MemFrac == frac {
				return r
			}
		}
		t.Fatalf("missing row %s@%v", m, frac)
		return Exp3Row{}
	}
	small, large := 0.1, 1.0

	// Figure 6: NB methods need |R| = 18 MB of disk; DB needs more;
	// GH methods sit at ~D.
	if r := get(tapejoin.DTNB, large); math.Abs(r.DiskSpaceMB-18) > 1 {
		t.Errorf("DT-NB disk space %.1f, want ~18", r.DiskSpaceMB)
	}
	if r := get(tapejoin.CDTNBDB, large); r.DiskSpaceMB < 19 {
		t.Errorf("CDT-NB/DB disk space %.1f, want > |R|", r.DiskSpaceMB)
	}
	if r := get(tapejoin.CDTGH, small); r.DiskSpaceMB < 40 {
		t.Errorf("CDT-GH disk space %.1f, want ~D=50", r.DiskSpaceMB)
	}

	// Figure 7: NB traffic explodes at small M; MB is roughly double
	// DT-NB; GH traffic is flat in M.
	nbSmall, nbLarge := get(tapejoin.DTNB, small), get(tapejoin.DTNB, large)
	if nbSmall.DiskIOMB < 4*nbLarge.DiskIOMB {
		t.Errorf("DT-NB traffic %.0f at small M vs %.0f at large; want explosion", nbSmall.DiskIOMB, nbLarge.DiskIOMB)
	}
	mbSmall := get(tapejoin.CDTNBMB, small)
	if mbSmall.DiskIOMB < 1.5*nbSmall.DiskIOMB {
		t.Errorf("CDT-NB/MB traffic %.0f vs DT-NB %.0f; want ~2x", mbSmall.DiskIOMB, nbSmall.DiskIOMB)
	}
	ghSmall, ghLarge := get(tapejoin.DTGH, small), get(tapejoin.DTGH, large)
	ratio := ghSmall.DiskIOMB / ghLarge.DiskIOMB
	if ratio < 0.7 || ratio > 1.5 {
		t.Errorf("DT-GH traffic should be flat in M: %.0f vs %.0f", ghSmall.DiskIOMB, ghLarge.DiskIOMB)
	}

	// Figure 8/9: CDT-GH dominates at small M; CDT-NB/MB wins at
	// M = |R|; CDT-GH beats DT-GH throughout.
	if a, b := get(tapejoin.CDTGH, small), get(tapejoin.DTNB, small); a.Response >= b.Response {
		t.Errorf("small M: CDT-GH %v should beat DT-NB %v", a.Response, b.Response)
	}
	if a, b := get(tapejoin.CDTNBMB, large), get(tapejoin.CDTGH, large); a.Response >= b.Response {
		t.Errorf("large M: CDT-NB/MB %v should beat CDT-GH %v", a.Response, b.Response)
	}
	for _, frac := range []float64{small, 0.5, large} {
		if a, b := get(tapejoin.CDTGH, frac), get(tapejoin.DTGH, frac); a.Response >= b.Response {
			t.Errorf("M=%v: CDT-GH %v should beat DT-GH %v", frac, a.Response, b.Response)
		}
	}
	// Overheads are consistent with responses.
	for _, r := range rows {
		if r.Feasible && r.Overhead <= 0 {
			t.Errorf("%s@%v: overhead %.2f should be positive", r.Method, r.MemFrac, r.Overhead)
		}
	}
}

func TestExperiment3CompressionEffect(t *testing.T) {
	base, err := Experiment3(0.1, tapejoin.Compress25)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Experiment3(0.1, tapejoin.Compress0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Experiment3(0.1, tapejoin.Compress50)
	if err != nil {
		t.Fatal(err)
	}
	// Section 9: a slower tape reduces the concurrent methods' join
	// overhead, a faster tape increases it. Compare CDT-GH at its
	// sweet spot.
	pick := func(rows []Exp3Row) float64 {
		for _, r := range rows {
			if r.Method == tapejoin.CDTGH && r.MemFrac == 0.5 && r.Feasible {
				return r.Overhead
			}
		}
		t.Fatal("missing CDT-GH@0.5")
		return 0
	}
	s, b, f := pick(slow), pick(base), pick(fast)
	if !(s < b && b < f) {
		t.Fatalf("overhead ordering wrong: slow %.2f, base %.2f, fast %.2f", s, b, f)
	}
}

func TestAnalyticFiguresRender(t *testing.T) {
	for fig := 1; fig <= 3; fig++ {
		points := AnalyticFigure(fig)
		if len(points) < 5 {
			t.Fatalf("figure %d: %d points", fig, len(points))
		}
		text := FormatAnalytic(points)
		if !strings.Contains(text, "CTT-GH") || !strings.Contains(text, "|R|/M") {
			t.Fatalf("figure %d render missing headers:\n%s", fig, text)
		}
	}
	// Figure 3's large ratios leave only tape-tape methods feasible.
	last := AnalyticFigure(3)
	end := last[len(last)-1]
	if !math.IsInf(end.Relative["DT-NB"], 1) || math.IsInf(end.Relative["CTT-GH"], 1) {
		t.Fatalf("figure 3 feasibility wrong: %+v", end.Relative)
	}
}

func TestFormatters(t *testing.T) {
	rows, err := Table3(0.05)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatTable3(rows)
	if !strings.Contains(text, "Rel. Cost") || !strings.Contains(text, "Join IV") {
		t.Fatalf("table 3 render:\n%s", text)
	}

	points, err := Figure4(0.05)
	if err != nil {
		t.Fatal(err)
	}
	f4 := FormatFigure4(points, 10)
	if strings.Count(f4, "\n") > 15 {
		t.Fatalf("figure 4 not downsampled:\n%s", f4)
	}

	generic := FormatTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(generic, "333") {
		t.Fatal("generic table broken")
	}
}

func TestAblationsQuantifyDesignChoices(t *testing.T) {
	rows, err := Ablations(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d ablations", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Baseline <= 0 || r.Variant <= 0 {
			t.Fatalf("%s: empty timings %+v", r.Name, r)
		}
	}
	// Every paper design choice must win (ratio > 1), with sensible
	// magnitudes.
	if r := byName["double-buffering"]; r.Ratio < 1.3 {
		t.Errorf("split buffering should cost >= 1.3x, got %.2f", r.Ratio)
	}
	if r := byName["scan direction"]; r.Ratio <= 1.0 {
		t.Errorf("forward-only should cost more, got %.2f", r.Ratio)
	}
	if r := byName["device penalties"]; r.Ratio <= 1.1 {
		t.Errorf("DLT penalties should cost > 1.1x ideal, got %.2f", r.Ratio)
	}
	if r := byName["random bucket I/O"]; r.Ratio <= 1.05 {
		t.Errorf("positioning at minimal M should cost > 1.05x, got %.2f", r.Ratio)
	}
	// The sort-merge baseline must lose to hashing by a wide margin
	// on the calibrated drive (seek-bound merge passes).
	if r := byName["hashing vs sorting"]; r.Ratio < 3 {
		t.Errorf("sort-merge should lose >= 3x, got %.2f", r.Ratio)
	}
	// Media exchanges cost a fixed ~120 s: noticeable at small scale,
	// negligible at paper scale (the Section 3.2 claim).
	if r := byName["media exchanges"]; r.Ratio <= 1.0 || r.Ratio > 2.0 {
		t.Errorf("exchange overhead ratio %.2f out of band", r.Ratio)
	}
	text := FormatAblations(rows)
	if !strings.Contains(text, "alt/paper") {
		t.Fatalf("render:\n%s", text)
	}
}

func TestTable2MeasuredRequirements(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	get := func(sym string) Table2Row {
		for _, r := range rows {
			if r.Symbol == sym {
				return r
			}
		}
		t.Fatalf("missing %s", sym)
		return Table2Row{}
	}
	// The probe workload: |R| = 16 MB, |S| = 64 MB.
	// Disk-tape methods need D >= |R| (Table 2).
	for _, sym := range []string{"DT-NB", "CDT-NB/MB", "DT-GH", "CDT-GH"} {
		if d := get(sym).DiskMB; d < 16 || d > 18 {
			t.Errorf("%s min disk = %.2f, want ~|R| = 16", sym, d)
		}
	}
	// CDT-NB/DB adds the chunk buffer.
	if d := get("CDT-NB/DB").DiskMB; d <= 16 {
		t.Errorf("CDT-NB/DB min disk = %.2f, want > |R|", d)
	}
	// GH methods need M >= sqrt(|R|): sqrt(256 blocks) = 16 blocks = 1 MB.
	for _, sym := range []string{"DT-GH", "CDT-GH", "CTT-GH", "TT-GH"} {
		if m := get(sym).MemoryMB; m < 0.9 || m > 1.5 {
			t.Errorf("%s min memory = %.2f, want ~sqrt(|R|) = 1 MB", sym, m)
		}
	}
	// Tape-tape methods run with tiny disk.
	for _, sym := range []string{"CTT-GH", "TT-GH", "TT-SM"} {
		if d := get(sym).DiskMB; d >= 16 {
			t.Errorf("%s min disk = %.2f, want << |R|", sym, d)
		}
	}
	// Tape scratch: CTT-GH consumes ~|R| on R's tape; TT-GH consumes
	// ~|S| on R's tape and ~|R| on S's; disk-tape methods none.
	if r := get("CTT-GH"); r.TapeRMB < 16 || r.TapeRMB > 18 || r.TapeSMB != 0 {
		t.Errorf("CTT-GH scratch = %.1f/%.1f, want ~16/0", r.TapeRMB, r.TapeSMB)
	}
	if r := get("TT-GH"); r.TapeRMB < 64 || r.TapeRMB > 67 || r.TapeSMB < 16 || r.TapeSMB > 18 {
		t.Errorf("TT-GH scratch = %.1f/%.1f, want ~64/~16", r.TapeRMB, r.TapeSMB)
	}
	if r := get("DT-NB"); r.TapeRMB != 0 || r.TapeSMB != 0 {
		t.Errorf("DT-NB scratch = %.1f/%.1f, want 0/0", r.TapeRMB, r.TapeSMB)
	}
	text := FormatTable2(rows)
	if !strings.Contains(text, "min M (MB)") {
		t.Fatalf("render:\n%s", text)
	}
}
