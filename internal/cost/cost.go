// Package cost implements the paper's transfer-only analytical cost
// model (Sections 3.2 and 5.3) for the seven tertiary join methods.
// The formulas below regenerate Figures 1–3 and drive the method
// advisor; Section 5.3 derives them "based on [13]" without printing
// them, so each function documents its own derivation from the
// method's structure.
//
// Conventions: sizes are in paper blocks; t_T(n) and t_D(n) are the
// tape and disk transfer times of n blocks; the memory split follows
// Section 6 (10% of M scans R in NB methods); Grace Hash uses the
// idealized B = |R|/M buckets of M blocks each. Concurrent methods
// overlap device legs with max(), treating the disk array as one
// shared resource whose work adds up.
package cost

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/block"
)

// Params are the inputs to the model: the paper's |R|, |S|, M, D, X_T
// and X_D.
type Params struct {
	RBlocks, SBlocks int64
	MBlocks, DBlocks int64
	// TapeRate is X_T in bytes/second (effective, after compression).
	TapeRate float64
	// DiskRate is X_D, the aggregate disk rate in bytes/second.
	DiskRate float64
	// MaxKeyFrac is the fraction of tuples carried by the single most
	// frequent join key (0 = uniform keys; hashutil.ZipfMaxKeyFrac
	// supplies it for Zipf(theta) data). Under the uniform hash planner
	// the bucket receiving that key outgrows one memory load, and Step
	// II re-scans the matching S bucket once per extra load — the
	// multi-load fallback the Grace Hash methods pay for skew.
	MaxKeyFrac float64
	// SkewAware models the skew-aware partitioning layer: heavy keys
	// get dedicated partitions and collision-overflow buckets are
	// split, so no partition exceeds one memory load and the
	// multi-load penalty vanishes (the sketch and plan repair ride on
	// scans the methods make anyway, so their cost is second-order in
	// the transfer-only model).
	SkewAware bool
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.RBlocks < 1 || p.SBlocks < p.RBlocks {
		return fmt.Errorf("cost: need 1 <= |R| <= |S|, got %d, %d", p.RBlocks, p.SBlocks)
	}
	if p.MBlocks < 1 || p.DBlocks < 1 {
		return fmt.Errorf("cost: need M, D >= 1, got %d, %d", p.MBlocks, p.DBlocks)
	}
	if p.TapeRate <= 0 || p.DiskRate <= 0 {
		return errors.New("cost: rates must be positive")
	}
	if p.MaxKeyFrac < 0 || p.MaxKeyFrac > 1 {
		return fmt.Errorf("cost: MaxKeyFrac %v outside [0, 1]", p.MaxKeyFrac)
	}
	return nil
}

// tT returns the tape transfer time of n blocks in seconds.
func (p Params) tT(n float64) float64 { return n * block.VirtualSize / p.TapeRate }

// tD returns the disk transfer time of n blocks in seconds.
func (p Params) tD(n float64) float64 { return n * block.VirtualSize / p.DiskRate }

// SReadSeconds is the bare tape read time of S: the paper's "optimum
// join time" baseline of Section 9.
func (p Params) SReadSeconds() float64 { return p.tT(float64(p.SBlocks)) }

// nbSplit mirrors Section 6: 10% of M (>= 1 block) scans R.
func (p Params) nbSplit() (mr, ms float64) {
	mr = math.Max(1, float64(p.MBlocks)/10)
	return mr, float64(p.MBlocks) - mr
}

// Infeasible is returned inside Estimate.Err when a method cannot run
// with the given parameters.
var Infeasible = errors.New("cost: infeasible")

// Estimate is the model's prediction for one method.
type Estimate struct {
	Method string
	// Seconds is the predicted response time; +Inf when infeasible.
	Seconds float64
	// StepISeconds is the predicted setup-phase time.
	StepISeconds float64
	// DiskSpaceBlocks is the predicted peak disk footprint (Figure 6).
	DiskSpaceBlocks int64
	// DiskTrafficBlocks is the predicted total disk I/O (Figure 7).
	DiskTrafficBlocks int64
	// Err wraps Infeasible with the reason, or is nil.
	Err error
}

// Relative returns the response time divided by the bare S read time
// (the y axis of Figures 1–3).
func (e Estimate) Relative(p Params) float64 {
	if e.Err != nil {
		return math.Inf(1)
	}
	return e.Seconds / p.SReadSeconds()
}

// Overhead returns the relative join overhead of Section 9:
// (response - optimum) / optimum.
func (e Estimate) Overhead(p Params) float64 {
	if e.Err != nil {
		return math.Inf(1)
	}
	return e.Seconds/p.SReadSeconds() - 1
}

func infeasible(method, format string, args ...any) Estimate {
	return Estimate{
		Method:  method,
		Seconds: math.Inf(1),
		Err:     fmt.Errorf("%w: %s: %s", Infeasible, method, fmt.Sprintf(format, args...)),
	}
}

// ghBuckets returns the idealized Grace Hash bucket count B = |R|/M,
// requiring M >= sqrt(|R|) (Section 5.1.2).
func (p Params) ghBuckets() (float64, error) {
	r, m := float64(p.RBlocks), float64(p.MBlocks)
	if m < math.Sqrt(r) {
		return 0, fmt.Errorf("M=%d < sqrt(|R|)=%.0f", p.MBlocks, math.Sqrt(r))
	}
	return math.Ceil(r / m), nil
}

// ghSkewExtra returns the extra S blocks the uniform Grace Hash
// planner re-scans under key skew, given B buckets: the heaviest
// bucket holds its uniform share |R|/B plus the heavy key's f*|R|,
// needs ceil of that over one memory load (M-1 blocks; one block
// scans S), and every load past the first re-reads the bucket's S
// share (|S|/B + f*|S|). Zero when uniform, when the bucket still
// fits one load, or when the skew-aware planner absorbs the skew.
func (p Params) ghSkewExtra(b float64) float64 {
	if p.MaxKeyFrac <= 0 || p.SkewAware {
		return 0
	}
	r, s, m := float64(p.RBlocks), float64(p.SBlocks), float64(p.MBlocks)
	heavyR := r/b + p.MaxKeyFrac*r
	loads := math.Ceil(heavyR / math.Max(1, m-1))
	if loads <= 1 {
		return 0
	}
	return (loads - 1) * (s/b + p.MaxKeyFrac*s)
}

// EstimateMethod predicts one method's cost. Method symbols follow the
// paper ("DT-NB", "CDT-NB/MB", "CDT-NB/DB", "DT-GH", "CDT-GH",
// "CTT-GH", "TT-GH").
func EstimateMethod(method string, p Params) Estimate {
	if err := p.Validate(); err != nil {
		return Estimate{Method: method, Seconds: math.Inf(1), Err: err}
	}
	switch method {
	case "DT-NB":
		return p.dtNB()
	case "CDT-NB/MB":
		return p.cdtNBMB()
	case "CDT-NB/DB":
		return p.cdtNBDB()
	case "DT-GH":
		return p.dtGH()
	case "CDT-GH":
		return p.cdtGH()
	case "CTT-GH":
		return p.cttGH()
	case "TT-GH":
		return p.ttGH()
	case "TT-SM":
		return p.ttSM()
	}
	return Estimate{Method: method, Seconds: math.Inf(1), Err: fmt.Errorf("cost: unknown method %q", method)}
}

// ttSM estimates the tape sort-merge baseline under the transfer-only
// model: each relation forms ceil(N/M) runs, then log_k passes of
// read-all + write-all with fan-in k ~ M-2, then one streaming merge
// join. The model is charitable to the baseline — it ignores the tape
// seek per merge-input refill that dominates on real drives — and the
// baseline still loses to the hash methods.
//
//	T = sum over X in {R, S} of (1 + passes(X)) * 2 t_T(X)  +  t_T(R) + t_T(S)
func (p Params) ttSM() Estimate {
	r, s, m := float64(p.RBlocks), float64(p.SBlocks), float64(p.MBlocks)
	if p.MBlocks < 4 {
		return infeasible("TT-SM", "M=%d < 4 blocks for a 2-way tape merge", p.MBlocks)
	}
	k := math.Max(2, m-2)
	passes := func(n float64) float64 {
		runs := math.Ceil(n / m)
		if runs <= 1 {
			return 0
		}
		return math.Ceil(math.Log(runs) / math.Log(k))
	}
	sortCost := func(n float64) float64 {
		return (1 + passes(n)) * 2 * p.tT(n)
	}
	stepI := sortCost(r) + sortCost(s)
	return Estimate{
		Method:            "TT-SM",
		StepISeconds:      stepI,
		Seconds:           stepI + p.tT(r) + p.tT(s),
		DiskSpaceBlocks:   0,
		DiskTrafficBlocks: 0,
	}
}

// MethodSymbols lists the seven methods in the paper's order.
func MethodSymbols() []string {
	return []string{"DT-NB", "CDT-NB/MB", "CDT-NB/DB", "DT-GH", "CDT-GH", "CTT-GH", "TT-GH"}
}

// EstimateAll predicts every method.
func EstimateAll(p Params) []Estimate {
	out := make([]Estimate, 0, 7)
	for _, m := range MethodSymbols() {
		out = append(out, EstimateMethod(m, p))
	}
	return out
}

// dtNB: Step I copies R (tape read + disk write, sequential). Step II
// makes ceil(|S|/Ms) iterations, each reading Ms blocks of S from tape
// and scanning R from disk:
//
//	T = t_T(R) + t_D(R) + t_T(S) + ceil(S/Ms) * t_D(R)
func (p Params) dtNB() Estimate {
	r, s := float64(p.RBlocks), float64(p.SBlocks)
	if p.DBlocks < p.RBlocks {
		return infeasible("DT-NB", "D=%d < |R|=%d", p.DBlocks, p.RBlocks)
	}
	_, ms := p.nbSplit()
	if ms < 1 {
		return infeasible("DT-NB", "M=%d too small", p.MBlocks)
	}
	iters := math.Ceil(s / ms)
	stepI := p.tT(r) + p.tD(r)
	return Estimate{
		Method:            "DT-NB",
		StepISeconds:      stepI,
		Seconds:           stepI + p.tT(s) + iters*p.tD(r),
		DiskSpaceBlocks:   p.RBlocks,
		DiskTrafficBlocks: p.RBlocks + int64(iters)*p.RBlocks,
	}
}

// cdtNBMB: as DT-NB but with two half-size S buffers; each iteration
// overlaps the tape read of the next chunk with the R scan of the
// current one:
//
//	T = t_T(R) + t_D(R) + t_T(Ms) + ceil(S/Ms) * max(t_T(Ms), t_D(R))
//
// (the leading t_T(Ms) fills the pipeline).
func (p Params) cdtNBMB() Estimate {
	r, s := float64(p.RBlocks), float64(p.SBlocks)
	if p.DBlocks < p.RBlocks {
		return infeasible("CDT-NB/MB", "D=%d < |R|=%d", p.DBlocks, p.RBlocks)
	}
	_, msTotal := p.nbSplit()
	ms := msTotal / 2
	if ms < 1 {
		return infeasible("CDT-NB/MB", "M=%d cannot hold two S buffers", p.MBlocks)
	}
	iters := math.Ceil(s / ms)
	stepI := p.tT(r) + p.tD(r)
	return Estimate{
		Method:            "CDT-NB/MB",
		StepISeconds:      stepI,
		Seconds:           stepI + p.tT(ms) + iters*math.Max(p.tT(ms), p.tD(r)),
		DiskSpaceBlocks:   p.RBlocks,
		DiskTrafficBlocks: p.RBlocks + int64(iters)*p.RBlocks,
	}
}

// cdtNBDB: full-size chunks staged through a disk buffer. Per
// iteration the producer leg costs t_T(Ms) of tape, and the disk (one
// shared resource) moves the chunk in and out plus the R scan:
//
//	T = t_T(R) + t_D(R) + ceil(S/Ms) * max(t_T(Ms), t_D(2 Ms + R)) + t_T(Ms)
func (p Params) cdtNBDB() Estimate {
	r, s := float64(p.RBlocks), float64(p.SBlocks)
	_, ms := p.nbSplit()
	if ms < 1 {
		return infeasible("CDT-NB/DB", "M=%d too small", p.MBlocks)
	}
	if float64(p.DBlocks) < r+ms {
		return infeasible("CDT-NB/DB", "D=%d < |R|+|S_i|=%.0f", p.DBlocks, r+ms)
	}
	iters := math.Ceil(s / ms)
	stepI := p.tT(r) + p.tD(r)
	return Estimate{
		Method:            "CDT-NB/DB",
		StepISeconds:      stepI,
		Seconds:           stepI + iters*math.Max(p.tT(ms), p.tD(2*ms+r)) + p.tT(ms),
		DiskSpaceBlocks:   p.RBlocks + int64(ms),
		DiskTrafficBlocks: p.RBlocks + int64(iters)*p.RBlocks + 2*p.SBlocks,
	}
}

// dtGH: Step I hashes R to disk. Step II iterates d = D - |R| chunks
// of S: hash the chunk to disk, read it back, and re-read R's buckets:
//
//	T = t_T(R) + t_D(R) + ceil(S/d) * [t_T(d) + 2 t_D(d) + t_D(R)]
func (p Params) dtGH() Estimate {
	r, s := float64(p.RBlocks), float64(p.SBlocks)
	b, err := p.ghBuckets()
	if err != nil {
		return infeasible("DT-GH", "%v", err)
	}
	d := float64(p.DBlocks - p.RBlocks)
	if d < 1 {
		return infeasible("DT-GH", "D=%d <= |R|=%d leaves no S buffer", p.DBlocks, p.RBlocks)
	}
	iters := math.Ceil(s / d)
	extra := p.ghSkewExtra(b)
	stepI := p.tT(r) + p.tD(r)
	return Estimate{
		Method:            "DT-GH",
		StepISeconds:      stepI,
		Seconds:           stepI + p.tT(s) + 2*p.tD(s) + iters*p.tD(r) + p.tD(extra),
		DiskSpaceBlocks:   p.DBlocks,
		DiskTrafficBlocks: p.RBlocks + int64(iters)*p.RBlocks + 2*p.SBlocks + int64(extra),
	}
}

// cdtGH: as DT-GH with the S-side pipeline overlapped. With chunks of
// c = S/ceil(S/d) blocks, the first chunk's tape hash fills the
// pipeline, each steady-state iteration costs the larger of the tape
// leg t_T(c) and the shared disk's t_D(2c + R), and the final join
// drains with no hashing behind it:
//
//	T = t_T(R) + t_D(R) + t_T(c) + (iters-1) max(t_T(c), t_D(2c+R)) + t_D(c+R)
func (p Params) cdtGH() Estimate {
	r, s := float64(p.RBlocks), float64(p.SBlocks)
	b, err := p.ghBuckets()
	if err != nil {
		return infeasible("CDT-GH", "%v", err)
	}
	d := float64(p.DBlocks - p.RBlocks)
	if d < 1 {
		return infeasible("CDT-GH", "D=%d <= |R|=%d leaves no S buffer", p.DBlocks, p.RBlocks)
	}
	iters := math.Ceil(s / d)
	c := s / iters
	extra := p.ghSkewExtra(b)
	stepI := p.tT(r) + p.tD(r)
	return Estimate{
		Method:            "CDT-GH",
		StepISeconds:      stepI,
		Seconds:           stepI + p.tT(c) + (iters-1)*math.Max(p.tT(c), p.tD(2*c+r)) + p.tD(c+r) + p.tD(extra),
		DiskSpaceBlocks:   p.DBlocks,
		DiskTrafficBlocks: p.RBlocks + int64(iters)*p.RBlocks + 2*p.SBlocks + int64(extra),
	}
}

// cttGH: Step I scans R ceil(|R|/D) times on its own tape, appending a
// disk-load of finished buckets per scan (t_T of the appended blocks,
// |R| in total across scans); disk assembly traffic overlaps the tape.
// Step II iterates d = D chunks of S; the joiner re-reads hashed R
// from tape each iteration while the hasher fills the next chunk:
//
//	StepI = ceil(R/D) t_T(R) + t_T(R)
//	T     = StepI + t_T(c) + t_D(c)
//	      + (iters-1) max(t_T(R) + t_D(c), t_T(c) + t_D(2c))
//	      + t_T(R) + t_D(c)
//
// with c = S/ceil(S/D): the first chunk's hash fills the pipeline,
// each steady-state iteration is bounded by the slower of the joiner
// (re-reading hashed R from tape, scanning c from disk) and the hasher
// (reading c from the S tape, c through disk both ways), and the last
// chunk's join drains the pipeline.
func (p Params) cttGH() Estimate {
	r, s, dd := float64(p.RBlocks), float64(p.SBlocks), float64(p.DBlocks)
	b, err := p.ghBuckets()
	if err != nil {
		return infeasible("CTT-GH", "%v", err)
	}
	// Buckets are bounded by both memory and the disk assembly area:
	// ample memory simply means more, smaller buckets (bucket =
	// min(M, D)), so any D >= one block works.
	scans := math.Ceil(r / dd)
	stepI := scans*p.tT(r) + p.tT(r)
	iters := math.Ceil(s / dd)
	c := s / iters
	extra := p.ghSkewExtra(b)
	joiner := p.tT(r) + p.tD(c)
	hasher := p.tT(c) + p.tD(2*c)
	return Estimate{
		Method:            "CTT-GH",
		StepISeconds:      stepI,
		Seconds:           stepI + p.tT(c) + p.tD(c) + (iters-1)*math.Max(joiner, hasher) + joiner + p.tD(extra),
		DiskSpaceBlocks:   p.DBlocks,
		DiskTrafficBlocks: 2*p.RBlocks + 2*p.SBlocks + int64(extra),
	}
}

// ttGH: hash R onto the S tape (ceil(R/D) scans of R, sequential tape
// read + disk in/out + tape write per disk-load), then hash S onto the
// R tape the same way, then read both hashed relations once:
//
//	Ia = ceil(R/D) t_T(R) + 2 t_D(R) + t_T(R)
//	Ib = ceil(S/D) t_T(S) + 2 t_D(S) + t_T(S)
//	T  = Ia + Ib + t_T(R) + t_T(S)
func (p Params) ttGH() Estimate {
	r, s, dd := float64(p.RBlocks), float64(p.SBlocks), float64(p.DBlocks)
	b, err := p.ghBuckets()
	if err != nil {
		return infeasible("TT-GH", "%v", err)
	}
	// The shared bucket count must keep an S bucket within the disk
	// assembly area while B+1 write buffers fit memory: B >= |S|/D
	// and B < M.
	if s/dd >= float64(p.MBlocks) {
		return infeasible("TT-GH", "D=%d needs %.0f buckets for S, beyond M=%d",
			p.DBlocks, math.Ceil(s/dd), p.MBlocks)
	}
	ia := math.Ceil(r/dd)*p.tT(r) + 2*p.tD(r) + p.tT(r)
	ib := math.Ceil(s/dd)*p.tT(s) + 2*p.tD(s) + p.tT(s)
	stepI := ia + ib
	// TT-GH's S partitions live on tape, so its multi-load re-scans
	// pay the tape rate, not the disk rate.
	return Estimate{
		Method:            "TT-GH",
		StepISeconds:      stepI,
		Seconds:           stepI + p.tT(r) + p.tT(s) + p.tT(p.ghSkewExtra(b)),
		DiskSpaceBlocks:   p.DBlocks,
		DiskTrafficBlocks: 2*p.RBlocks + 2*p.SBlocks,
	}
}
