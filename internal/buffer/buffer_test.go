package buffer

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestInterleavedChunkIsFullCapacity(t *testing.T) {
	k := sim.NewKernel()
	b := NewInterleaved(k, "buf", 100)
	if b.ChunkCapacity() != 100 {
		t.Fatalf("chunk = %d, want 100", b.ChunkCapacity())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitChunkIsHalfCapacity(t *testing.T) {
	k := sim.NewKernel()
	b := NewSplit(k, "buf", 100)
	if b.ChunkCapacity() != 50 {
		t.Fatalf("chunk = %d, want 50", b.ChunkCapacity())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// pipeline runs a producer filling iteration chunks and a consumer
// draining them, returning the makespan.
func pipeline(t *testing.T, mk func(k *sim.Kernel) DoubleBuffer, iters int64) (sim.Time, DoubleBuffer) {
	t.Helper()
	k := sim.NewKernel()
	b := mk(k)
	chunk := b.ChunkCapacity()
	ready := sim.NewQueue[int64](k, "ready", 1)
	k.Spawn("producer", func(p *sim.Proc) {
		for i := int64(0); i < iters; i++ {
			for got := int64(0); got < chunk; got += 10 {
				b.Acquire(p, i, 10)
				p.Hold(time.Second) // fill 10 blocks
			}
			ready.Send(p, i)
		}
		ready.Close(p)
	})
	k.Spawn("consumer", func(p *sim.Proc) {
		for {
			i, ok := ready.Recv(p)
			if !ok {
				return
			}
			// Fixed per-iteration cost: in a tertiary join every chunk
			// of S triggers a full scan of R, regardless of chunk size.
			p.Hold(8 * time.Second)
			for done := int64(0); done < chunk; done += 10 {
				p.Hold(time.Second) // consume 10 blocks
				b.Release(p, i, 10)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return k.Now(), b
}

func TestInterleavedOverlapsProducerAndConsumer(t *testing.T) {
	// 4 iterations of 100 blocks at 10 blocks/s per side plus an 8s
	// per-iteration fixed cost. Pipelined: ~10s fill + 4*18s consume.
	// Fully serial would be 4*(10+18) = 112s.
	makespan, _ := pipeline(t, func(k *sim.Kernel) DoubleBuffer {
		return NewInterleaved(k, "buf", 100)
	}, 4)
	if makespan > sim.Time(90*time.Second) {
		t.Fatalf("makespan = %v, want pipelined (< 90s)", makespan)
	}
}

func TestSplitDoublesIterationsAndLoses(t *testing.T) {
	// Moving the same 400 blocks through the same 100 blocks of space:
	// split halves the chunk, doubling the iterations and hence the
	// per-iteration fixed cost (the extra R scans of Section 4).
	inter, _ := pipeline(t, func(k *sim.Kernel) DoubleBuffer {
		return NewInterleaved(k, "buf", 100)
	}, 4)
	split, _ := pipeline(t, func(k *sim.Kernel) DoubleBuffer {
		return NewSplit(k, "buf", 100)
	}, 8)
	// Interleaved consumer busy 4*18s = 72s; split consumer 8*13s =
	// 104s. Require a clear win for interleaved.
	if split <= inter+sim.Time(20*time.Second) {
		t.Fatalf("interleaved %v should beat split %v by the extra fixed costs", inter, split)
	}
}

func TestInterleavedUtilizationNearFull(t *testing.T) {
	// During steady state the shared buffer stays near 100% utilized
	// (the paper's Figure 4).
	makespan, b := pipeline(t, func(k *sim.Kernel) DoubleBuffer {
		return NewInterleaved(k, "buf", 100)
	}, 6)
	u := MeanUtilization(b.Trace(), 100, makespan)
	if u < 0.80 {
		t.Fatalf("mean utilization = %.2f, want >= 0.80", u)
	}
	// No sample may exceed capacity.
	for _, s := range b.Trace() {
		if s.Total() > 100 {
			t.Fatalf("sample exceeds capacity: %+v", s)
		}
	}
}

func TestTraceParitiesAlternate(t *testing.T) {
	// Even-iteration usage must rise then fall; odd likewise, offset.
	_, b := pipeline(t, func(k *sim.Kernel) DoubleBuffer {
		return NewInterleaved(k, "buf", 100)
	}, 4)
	trace := b.Trace()
	var evenPeak, oddPeak int64
	for _, s := range trace {
		if s.Even > evenPeak {
			evenPeak = s.Even
		}
		if s.Odd > oddPeak {
			oddPeak = s.Odd
		}
	}
	if evenPeak != 100 || oddPeak != 100 {
		t.Fatalf("peaks = %d/%d, want 100/100", evenPeak, oddPeak)
	}
	// The trace must end with both parities empty.
	last := trace[len(trace)-1]
	if last.Total() != 0 {
		t.Fatalf("final sample = %+v, want empty", last)
	}
}

func TestReleaseMoreThanHeldPanics(t *testing.T) {
	k := sim.NewKernel()
	b := NewInterleaved(k, "buf", 10)
	k.Spawn("bad", func(p *sim.Proc) {
		b.Acquire(p, 0, 5)
		b.Release(p, 0, 6)
	})
	if err := k.Run(); err == nil {
		t.Fatal("expected captured panic")
	}
}

func TestSplitReleaseMoreThanHeldPanics(t *testing.T) {
	k := sim.NewKernel()
	b := NewSplit(k, "buf", 10)
	k.Spawn("bad", func(p *sim.Proc) {
		b.Release(p, 1, 1)
	})
	if err := k.Run(); err == nil {
		t.Fatal("expected captured panic")
	}
}

func TestMeanUtilizationEdgeCases(t *testing.T) {
	if MeanUtilization(nil, 100, sim.Time(time.Second)) != 0 {
		t.Fatal("empty trace should be 0")
	}
	trace := []Sample{{T: 0, Even: 50}}
	if u := MeanUtilization(trace, 100, sim.Time(10*time.Second)); u != 0.5 {
		t.Fatalf("u = %v, want 0.5", u)
	}
	if MeanUtilization(trace, 0, sim.Time(time.Second)) != 0 {
		t.Fatal("zero capacity should be 0")
	}
}
