package faultfile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
)

func open(t *testing.T) *File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "t.dat"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return Wrap(f)
}

func TestPassthrough(t *testing.T) {
	f := open(t)
	data := []byte("hello, tape")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestArmedErrorStrikesOnce(t *testing.T) {
	f := open(t)
	boom := errors.New("injected EIO")
	f.Arm(fault.OSDecision{Err: boom})
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("second write should pass through, got %v", err)
	}
}

func TestTornWriteLiesAboutLength(t *testing.T) {
	f := open(t)
	data := bytes.Repeat([]byte{0xAB}, 64)
	f.Arm(fault.OSDecision{Torn: true})
	n, err := f.WriteAt(data, 0)
	if err != nil || n != len(data) {
		t.Fatalf("torn write must report full success, got n=%d err=%v", n, err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err == nil && bytes.Equal(got, data) {
		t.Fatal("torn write stored all bytes; wanted a prefix only")
	}
}

func TestFlipCorruptsStoredBytes(t *testing.T) {
	f := open(t)
	data := bytes.Repeat([]byte{0x55}, 32)
	f.Arm(fault.OSDecision{Flip: true})
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("stored bytes survived a flip decision intact")
	}
	// Exactly one bit differs, and the caller's buffer was untouched.
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("flip touched %d bytes, want 1", diff)
	}
	if data[len(data)/2] != 0x55 {
		t.Fatal("flip mutated the caller's write buffer")
	}
}

func TestStallDelaysOp(t *testing.T) {
	f := open(t)
	f.Arm(fault.OSDecision{Stall: 30 * time.Millisecond})
	t0 := time.Now()
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("stalled write returned after %v, want >= 30ms", d)
	}
}

func TestArmedDecisionsApplyFIFO(t *testing.T) {
	f := open(t)
	boom := errors.New("first")
	f.Arm(fault.OSDecision{Err: boom})
	f.Arm(fault.OSDecision{Torn: true})
	if _, err := f.WriteAt([]byte("aa"), 0); !errors.Is(err, boom) {
		t.Fatalf("first armed decision should fire first, got %v", err)
	}
	if n, err := f.WriteAt([]byte("bb"), 0); err != nil || n != 2 {
		t.Fatalf("second decision should be the torn write, got n=%d err=%v", n, err)
	}
	if _, err := f.WriteAt([]byte("cc"), 0); err != nil {
		t.Fatalf("queue drained, want passthrough, got %v", err)
	}
}

func TestZeroDecisionNotQueued(t *testing.T) {
	f := open(t)
	f.Arm(fault.OSDecision{})
	f.mu.Lock()
	n := len(f.armed)
	f.mu.Unlock()
	if n != 0 {
		t.Fatalf("zero decision queued (%d armed)", n)
	}
}
