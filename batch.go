package tapejoin

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BatchPolicy selects how a batch of joins is scheduled over the
// shared drives: "fifo", "mount-aware" or "shared-scan".
type BatchPolicy string

const (
	// BatchFIFO runs queries in submission order.
	BatchFIFO BatchPolicy = "fifo"
	// BatchMountAware reorders queries to minimize cartridge switches.
	BatchMountAware BatchPolicy = "mount-aware"
	// BatchSharedScan additionally fuses same-S queries onto shared
	// tape passes.
	BatchSharedScan BatchPolicy = "shared-scan"
)

// Typed failure-reason kinds: every failed query's Reason is
// "<kind>: <detail>" with kind one of these, so callers can switch on
// the class without parsing free text.
const (
	// ReasonInfeasible: no method fits the query on its resource
	// partition (admission rejection).
	ReasonInfeasible = workload.ReasonInfeasible
	// ReasonDeviceFailed: the query failed again after a
	// device-failure requeue.
	ReasonDeviceFailed = workload.ReasonDeviceFailed
	// ReasonDeadline: an online query's deadline passed before
	// service started.
	ReasonDeadline = workload.ReasonDeadline
	// ReasonShutdown: the online engine shut down before the query
	// was served.
	ReasonShutdown = workload.ReasonShutdown
)

// BatchQuery is one join request in a multi-query batch.
type BatchQuery struct {
	// ID labels the query in results (default "q<index>").
	ID string
	// Method requests a join method; empty lets the cost advisor pick.
	Method Method
	// R is the smaller relation, S the larger.
	R, S *Relation
}

// BatchOptions tunes the workload engine.
type BatchOptions struct {
	// Policy selects the scheduler (default mount-aware).
	Policy BatchPolicy
	// CacheMB reserves disk space as a staging cache that retains
	// copied-R partitions across queries (LRU). Zero disables it.
	CacheMB float64
	// MountSeconds is the cartridge exchange cost (default 30).
	MountSeconds float64
	// MaxShared caps riders per shared S-pass (default 4).
	MaxShared int
}

// BatchQueryResult reports one query of a batch.
type BatchQueryResult struct {
	ID string
	// Requested and Method are the asked-for and executed join methods;
	// a shared-scan rider reports "SHARED".
	Requested, Method Method
	// Substituted, Shared, CacheHit and Failed mirror the scheduler's
	// decisions for this query; Reason explains a failure.
	Substituted, Shared, CacheHit, Failed bool
	Reason                                string
	// Requeued marks a query that was re-admitted on the surviving
	// device complex after a device-class failure (including shared-
	// pass riders demoted to solo service). A requeued query may still
	// succeed; Failed reports the final outcome.
	Requeued bool
	// Start, End and Wait position the query's service in virtual time.
	Start, End, Wait time.Duration
	// Matches is the output cardinality.
	Matches int64
	// OutputHash is the order-independent digest of the query's output
	// pairs: equal hashes mean the same multiset of pairs byte for
	// byte, whether the query ran solo, in a batch, or on the resident
	// service. Zero only for failed queries, which emit nothing.
	OutputHash uint64
}

// BatchReport is the outcome of a batch run.
type BatchReport struct {
	Policy BatchPolicy
	// Makespan is batch arrival to last completion, in virtual time.
	Makespan time.Duration
	// Mounts counts cartridge switches (RMounts + SMounts).
	Mounts, RMounts, SMounts int
	// SharedPasses counts shared S-scans executed.
	SharedPasses int
	// Requeues counts device-failure re-admissions of single queries;
	// Demotions counts riders of failed shared passes that fell back
	// to solo service.
	Requeues, Demotions int
	// Staging-cache activity.
	CacheHits, CacheMisses, CacheEvictions int64
	// TapeReadMB and TapeWrittenMB aggregate both drives.
	TapeReadMB, TapeWrittenMB float64
	// DiskPeakMB is the batch's peak disk footprint, cache included.
	DiskPeakMB float64
	// Queries holds per-query results in submission order.
	Queries []BatchQueryResult
	// Schedule is the engine's deterministic schedule log.
	Schedule []string
	// Timeline and DeviceSummary render device activity when the
	// system was configured with CollectTrace.
	Timeline, DeviceSummary string
	// Report carries structured observability when Observe is set.
	Report *Report
}

// RunBatch executes a batch of join queries on the system under the
// given scheduling policy. All queries share the system's two drives,
// disk array and memory; the engine orders them to minimize cartridge
// mounts, fuses same-S queries onto shared tape passes, and retains
// staged R partitions in a disk cache, depending on the policy.
func (s *System) RunBatch(queries []BatchQuery, opts BatchOptions) (*BatchReport, error) {
	if opts.Policy == "" {
		opts.Policy = BatchMountAware
	}
	policy, err := workload.ParsePolicy(string(opts.Policy))
	if err != nil {
		return nil, err
	}
	runRes := s.res
	var rec *trace.Recorder
	if s.cfg.CollectTrace || s.cfg.Observe {
		rec = &trace.Recorder{}
		runRes.Trace = rec
	}
	var tracker *obs.Tracker
	var reg *obs.Registry
	if s.cfg.Observe {
		tracker = obs.NewTracker()
		reg = obs.NewRegistry()
		runRes.Spans = tracker
		runRes.Metrics = reg
	}
	runRes.Flight = s.flight
	if s.obs != nil {
		s.obs.SetSources(reg, s.flight, s.healthSource())
	}
	if s.cfg.Faults != "" {
		sched, err := fault.Parse(s.cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("tapejoin: %w", err)
		}
		runRes.Faults = sched
	}
	runRes.Recovery.Disabled = s.cfg.DisableRecovery

	cfg := workload.Config{
		Resources:   runRes,
		Policy:      policy,
		CacheBlocks: MBf(opts.CacheMB),
		MountTime:   time.Duration(opts.MountSeconds * float64(time.Second)),
		MaxShared:   opts.MaxShared,
	}
	wq := make([]workload.Query, len(queries))
	for i, q := range queries {
		if q.R == nil || q.S == nil {
			return nil, fmt.Errorf("tapejoin: batch query %d missing a relation", i)
		}
		wq[i] = workload.Query{
			ID: q.ID, Method: string(q.Method),
			R: q.R.rel, S: q.S.rel,
		}
	}
	out, err := workload.Run(cfg, wq)
	if err != nil {
		return nil, err
	}

	rep := &BatchReport{
		Policy:         BatchPolicy(out.Policy.String()),
		Makespan:       out.Makespan,
		Mounts:         out.Mounts,
		RMounts:        out.RMounts,
		SMounts:        out.SMounts,
		SharedPasses:   out.SharedPasses,
		Requeues:       out.Requeues,
		Demotions:      out.Demotions,
		CacheHits:      out.CacheHits,
		CacheMisses:    out.CacheMisses,
		CacheEvictions: out.CacheEvictions,
		TapeReadMB:     mbOf(out.TapeBlocksRead),
		TapeWrittenMB:  mbOf(out.TapeBlocksWritten),
		DiskPeakMB:     mbOf(out.DiskHighWater),
		Schedule:       out.Schedule,
	}
	for _, qr := range out.Queries {
		rep.Queries = append(rep.Queries, BatchQueryResult{
			ID:          qr.ID,
			Requested:   Method(qr.Requested),
			Method:      Method(qr.Method),
			Substituted: qr.Substituted,
			Shared:      qr.Shared,
			CacheHit:    qr.CacheHit,
			Failed:      qr.Failed,
			Reason:      qr.Reason,
			Requeued:    qr.Requeued,
			Start:       qr.Start,
			End:         qr.End,
			Wait:        qr.Wait,
			Matches:     qr.Matches,
			OutputHash:  qr.OutputHash,
		})
	}
	end := sim.Time(out.Makespan)
	if s.cfg.CollectTrace {
		rep.Timeline = rec.Timeline(end, 100)
		rep.DeviceSummary = rec.Summary(end)
	}
	if s.cfg.Observe {
		rep.Report = newReport(tracker, rec, reg, end)
	}
	return rep, nil
}
