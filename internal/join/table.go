package join

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/hashutil"
	"repro/internal/sim"
)

// hashTable is the in-memory build side of a join phase. CPU cost is
// outside the paper's cost model, so building and probing consume no
// virtual time.
type hashTable struct {
	m map[uint64][]block.Tuple
}

func newHashTable() *hashTable {
	return &hashTable{m: make(map[uint64][]block.Tuple)}
}

// addBlocks inserts every tuple of blks. Corrupt blocks surface as the
// decoder's typed error, never a panic: the blocks come from device
// reads, and delivered-copy corruption is an input condition here.
func (h *hashTable) addBlocks(blks []block.Block) error {
	return h.addBlocksFiltered(blks, nil)
}

// addBlocksFiltered inserts tuples surviving keep (nil keeps all).
func (h *hashTable) addBlocksFiltered(blks []block.Block, keep keepFn) error {
	for _, blk := range blks {
		_, tuples, err := blk.Decode()
		if err != nil {
			return fmt.Errorf("join: build side: %w", err)
		}
		for _, t := range tuples {
			if keep != nil && !keep(t) {
				continue
			}
			h.m[t.Key] = append(h.m[t.Key], t)
		}
	}
	return nil
}

// probeWithR probes with an R tuple against a table built on S tuples,
// emitting (r, s) pairs through the env's emission funnel.
func (h *hashTable) probeWithR(e *env, p *sim.Proc, r block.Tuple) {
	for _, s := range h.m[r.Key] {
		e.emit(p, r, s)
	}
}

// probeWithS probes with an S tuple against a table built on R tuples,
// emitting (r, s) pairs through the env's emission funnel.
func (h *hashTable) probeWithS(e *env, p *sim.Proc, s block.Tuple) {
	for _, r := range h.m[s.Key] {
		e.emit(p, r, s)
	}
}

func (h *hashTable) len() int {
	n := 0
	for _, v := range h.m {
		n += len(v)
	}
	return n
}

// forEachTuple decodes blocks and applies fn to every tuple. A corrupt
// block stops the walk with the decoder's typed error — device-read
// corruption must never panic a join.
func forEachTuple(blks []block.Block, fn func(block.Tuple)) error {
	for _, blk := range blks {
		_, tuples, err := blk.Decode()
		if err != nil {
			return fmt.Errorf("join: decode: %w", err)
		}
		for _, t := range tuples {
			fn(t)
		}
	}
	return nil
}

// keepFn reports whether a tuple survives a pushed-down selection.
type keepFn func(block.Tuple) bool

// filterRepack drops tuples failing keep and repacks the survivors at
// the original density, returning the smaller block run and the number
// of tuples dropped. A nil keep returns the input unchanged.
func filterRepack(blks []block.Block, keep keepFn, perBlk int, tag byte) ([]block.Block, int64, error) {
	if keep == nil {
		return blks, 0, nil
	}
	bld := block.NewBuilder(tag)
	out := make([]block.Block, 0, len(blks))
	var dropped int64
	err := forEachTuple(blks, func(t block.Tuple) {
		if !keep(t) {
			dropped++
			return
		}
		bld.Append(t)
		if bld.Len() >= perBlk {
			out = append(out, bld.Finish())
		}
	})
	if err != nil {
		return nil, 0, err
	}
	if bld.Len() > 0 {
		out = append(out, bld.Finish())
	}
	return out, dropped, nil
}

// filterFor returns the pushed-down filter for a relation tag, with
// drop accounting wired to the right stat.
func (e *env) filterR() keepFn {
	if e.spec.FilterR == nil {
		return nil
	}
	return func(t block.Tuple) bool {
		if e.spec.FilterR(t) {
			return true
		}
		e.stats.RFiltered++
		return false
	}
}

func (e *env) filterS() keepFn {
	if e.spec.FilterS == nil {
		return nil
	}
	return func(t block.Tuple) bool {
		if e.spec.FilterS(t) {
			return true
		}
		e.stats.SFiltered++
		return false
	}
}

// readTape streams region from drive in chunk-block requests, calling
// fn with each batch. The stream is strictly sequential, keeping the
// drive streaming when fn is fast. Reads go through the retrying
// device-read path, so transient faults are absorbed here.
func (e *env) readTape(p *sim.Proc, drive device.Drive, region device.Region, chunk int64, fn func(off int64, blks []block.Block) error) error {
	if chunk < 1 {
		return fmt.Errorf("join: readTape chunk %d", chunk)
	}
	for off := int64(0); off < region.N; off += chunk {
		n := min64(chunk, region.N-off)
		blks, err := e.tapeRead(p, drive, region.Start+device.Addr(off), n)
		if err != nil {
			return err
		}
		if err := fn(off, blks); err != nil {
			return err
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// flushFn receives a run of freshly packed blocks for one bucket.
type flushFn func(p *sim.Proc, bucket int, blks []block.Block) error

// partitioner hash-partitions a tuple stream into B buckets, packing
// tuples into blocks at the relation's density and flushing each
// bucket's write buffer at writeBuf-block granularity. Flush size is
// the knob that makes bucket writes degrade into random I/O when
// memory is scarce (Section 9).
type partitioner struct {
	b              int
	writeBuf       int64
	tuplesPerBlock int
	tag            byte
	builders       []*block.Builder
	pending        [][]block.Block
	flush          flushFn
	// only, when non-nil, keeps just the buckets it accepts and
	// discards other tuples (the multi-scan assembly of CTT-GH and
	// TT-GH Step I).
	only func(bucket int) bool
	// route maps a key to its bucket; defaults to the uniform hash
	// over b buckets. Skew-aware layouts install a SkewPlan router.
	route func(key uint64) int
	// sketch, when non-nil, observes every key before the only-filter,
	// so one full scan completes the frequency sketch even when the
	// partitioner keeps only a window of buckets.
	sketch *hashutil.FreqSketch
	// produced counts blocks flushed per bucket.
	produced []int64
}

func newPartitioner(b int, writeBuf int64, tuplesPerBlock int, tag byte, flush flushFn) *partitioner {
	pt := &partitioner{
		b: b, writeBuf: writeBuf, tuplesPerBlock: tuplesPerBlock, tag: tag,
		builders: make([]*block.Builder, b),
		pending:  make([][]block.Block, b),
		produced: make([]int64, b),
		flush:    flush,
	}
	for i := range pt.builders {
		pt.builders[i] = block.NewBuilder(tag)
	}
	pt.route = func(key uint64) int { return hashutil.Bucket(key, b) }
	return pt
}

// add routes one tuple.
func (pt *partitioner) add(p *sim.Proc, t block.Tuple) error {
	if pt.sketch != nil {
		pt.sketch.Add(t.Key)
	}
	bkt := pt.route(t.Key)
	if pt.only != nil && !pt.only(bkt) {
		return nil
	}
	bld := pt.builders[bkt]
	bld.Append(t)
	if bld.Len() < pt.tuplesPerBlock {
		return nil
	}
	pt.pending[bkt] = append(pt.pending[bkt], bld.Finish())
	if int64(len(pt.pending[bkt])) >= pt.writeBuf {
		return pt.drain(p, bkt)
	}
	return nil
}

// drain flushes one bucket's pending blocks.
func (pt *partitioner) drain(p *sim.Proc, bkt int) error {
	blks := pt.pending[bkt]
	if len(blks) == 0 {
		return nil
	}
	pt.pending[bkt] = nil
	pt.produced[bkt] += int64(len(blks))
	return pt.flush(p, bkt, blks)
}

// finish packs partially filled blocks and flushes every bucket.
func (pt *partitioner) finish(p *sim.Proc) error {
	for bkt, bld := range pt.builders {
		if bld.Len() > 0 {
			pt.pending[bkt] = append(pt.pending[bkt], bld.Finish())
		}
		if err := pt.drain(p, bkt); err != nil {
			return err
		}
	}
	return nil
}
