package workload

import (
	"repro/internal/device"
	"repro/internal/join"
	"repro/internal/relation"
)

// step is one scheduler action: a single query, or a shared S-pass
// over several.
type step struct {
	indices []int
	shared  bool
}

// plan turns a batch into an ordered step list under the policy. All
// ordering is stable with respect to submission order, so plans — and
// therefore whole runs — are deterministic.
func plan(cfg Config, res join.Resources, queries []Query) []step {
	switch cfg.Policy {
	case MountAware:
		return singles(mountAwareOrder(queries))
	case SharedScan:
		return sharedPlan(cfg, res, queries)
	default:
		order := make([]int, len(queries))
		for i := range order {
			order[i] = i
		}
		return singles(order)
	}
}

func singles(order []int) []step {
	steps := make([]step, len(order))
	for i, qi := range order {
		steps[i] = step{indices: []int{qi}}
	}
	return steps
}

// mountAwareOrder groups queries by S cartridge in order of first
// appearance, and within each S group by R cartridge likewise. With
// two drives the S mount is the expensive one to churn (S is the big
// relation, re-reading it dominates), so S grouping is the outer key.
func mountAwareOrder(queries []Query) []int {
	var order []int
	bySMedia := groupBy(indices(len(queries)), func(qi int) device.Medium { return queries[qi].S.Media })
	for _, sGroup := range bySMedia {
		byRMedia := groupBy(sGroup, func(qi int) device.Medium { return queries[qi].R.Media })
		for _, rGroup := range byRMedia {
			order = append(order, rGroup...)
		}
	}
	return order
}

// sharedPlan is the mount-aware order with same-S-relation runs fused
// into shared passes where admission control allows.
func sharedPlan(cfg Config, res join.Resources, queries []Query) []step {
	order := mountAwareOrder(queries)
	var steps []step
	// Fuse runs of queries over the same S *relation* (not merely the
	// same cartridge: a shared pass streams one region once).
	byS := groupBy(order, func(qi int) *relation.Relation { return queries[qi].S })
	for _, full := range byS {
		// StopAfter queries never ride a shared pass: the pass streams the
		// whole S scan to every rider, so a prefix query would either see
		// too much or force the pass to stop early for everyone.
		group := full[:0:0]
		for _, qi := range full {
			if queries[qi].StopAfter > 0 {
				steps = append(steps, step{indices: []int{qi}})
				continue
			}
			group = append(group, qi)
		}
		for len(group) > 0 {
			take := len(group)
			if take > cfg.MaxShared {
				take = cfg.MaxShared
			}
			cand := group[:take]
			group = group[take:]
			admitted, rejected := admitShared(cfg, res, queries, cand)
			if len(admitted) >= 2 {
				steps = append(steps, step{indices: admitted, shared: true})
			} else {
				rejected = append(admitted, rejected...)
			}
			for _, qi := range rejected {
				steps = append(steps, step{indices: []int{qi}})
			}
		}
	}
	return steps
}

func indices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// groupBy partitions items into groups keyed by key(item), preserving
// first-appearance order of groups and submission order within each.
func groupBy[K comparable](items []int, key func(int) K) [][]int {
	var order []K
	groups := make(map[K][]int)
	for _, it := range items {
		k := key(it)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], it)
	}
	out := make([][]int, len(order))
	for i, k := range order {
		out[i] = groups[k]
	}
	return out
}
