package ioengine

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestDoChargesAndReturns(t *testing.T) {
	e := New(0)
	k := sim.NewKernel()
	w := e.Worker("disk")
	defer w.Close()
	k.Spawn("p", func(p *sim.Proc) {
		d, err := w.Do(p, func() error { time.Sleep(3 * time.Millisecond); return nil })
		if err != nil {
			t.Errorf("Do: %v", err)
		}
		if d < 3*time.Millisecond {
			t.Errorf("measured %v, want >= 3ms", d)
		}
		if sim.Duration(p.Now()) != d {
			t.Errorf("virtual now %v != measured %v", p.Now(), d)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.WallStats()
	if len(st.PerDevice) != 1 || st.PerDevice[0].Device != "disk" || st.PerDevice[0].Busy < 3*time.Millisecond {
		t.Errorf("WallStats = %+v", st)
	}
}

func TestTwoWorkersOverlap(t *testing.T) {
	e := New(0)
	k := sim.NewKernel()
	wa, wb := e.Worker("tape:R"), e.Worker("disk")
	defer wa.Close()
	defer wb.Close()
	const d = 30 * time.Millisecond
	spawn := func(w *Worker) {
		k.Spawn(w.Name(), func(p *sim.Proc) {
			if _, err := w.Do(p, func() error { time.Sleep(d); return nil }); err != nil {
				t.Errorf("%s: %v", w.Name(), err)
			}
		})
	}
	spawn(wa)
	spawn(wb)
	t0 := time.Now()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(t0); wall > 2*d-5*time.Millisecond {
		t.Errorf("wall %v: workers did not overlap", wall)
	}
	st := e.WallStats()
	if st.Overlap() <= 0.2 {
		t.Errorf("wall overlap %.2f (busy %v union %v), want clearly > 0", st.Overlap(), st.Busy, st.Union)
	}
}

func TestSameWorkerSerializesFIFO(t *testing.T) {
	e := New(0)
	k := sim.NewKernel()
	w := e.Worker("tape:S")
	defer w.Close()
	var order []int
	k.Spawn("p", func(p *sim.Proc) {
		// Split-phase: two submissions in flight on one worker must
		// execute in submission order.
		c1 := w.Submit(p, func() error { order = append(order, 1); return nil })
		c2 := w.Submit(p, func() error { order = append(order, 2); return nil })
		if _, err := w.Await(p, c1); err != nil {
			t.Error(err)
		}
		if _, err := w.Await(p, c2); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("execution order %v, want [1 2]", order)
	}
}

func TestErrorAndClosedWorker(t *testing.T) {
	e := New(0)
	k := sim.NewKernel()
	w := e.Worker("disk")
	boom := errors.New("boom")
	k.Spawn("p", func(p *sim.Proc) {
		if _, err := w.Do(p, func() error { return boom }); !errors.Is(err, boom) {
			t.Errorf("err = %v, want boom", err)
		}
		w.Close()
		w.Close() // idempotent
		if _, err := w.Do(p, func() error { return nil }); !errors.Is(err, ErrClosed) {
			t.Errorf("err after close = %v, want ErrClosed", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueDepthGauge(t *testing.T) {
	e := New(0)
	k := sim.NewKernel()
	reg := obs.NewRegistry()
	w := e.Worker("disk")
	defer w.Close()
	w.SetMetrics(reg)
	gate := make(chan struct{})
	k.Spawn("p", func(p *sim.Proc) {
		c := w.Submit(p, func() error { <-gate; return nil })
		if v := reg.Gauge("iodev_queue_depth", "", obs.A("device", "disk")).Value(); v != 1 {
			t.Errorf("gauge during flight = %v, want 1", v)
		}
		close(gate)
		if _, err := w.Await(p, c); err != nil {
			t.Error(err)
		}
		if v := reg.Gauge("iodev_queue_depth", "", obs.A("device", "disk")).Value(); v != 0 {
			t.Errorf("gauge after await = %v, want 0", v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	e.PublishMetrics(reg)
	if v := reg.Gauge("iodev_wall_busy_seconds", "", obs.A("device", "disk")).Value(); v <= 0 {
		t.Errorf("published wall busy = %v, want > 0", v)
	}
}

func TestMergedTotal(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	got := mergedTotal([]wallInterval{
		{ms(0), ms(10)}, {ms(5), ms(15)}, {ms(20), ms(30)}, {ms(30), ms(31)},
	})
	if got != ms(26) {
		t.Errorf("mergedTotal = %v, want 26ms", got)
	}
	if mergedTotal(nil) != 0 {
		t.Error("empty mergedTotal != 0")
	}
}
