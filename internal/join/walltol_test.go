package join

// Join-layer behavior of the wall-clock fault taxonomy on the file
// backend: OS-level errors absorbed below the join, stored corruption
// surfacing as typed device.ErrCorrupt through the PR-1 retry
// machinery, and recovery (or typed fail-fast) depending on whether
// the method can re-stage the damaged scratch.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/device/filedev"
	"repro/internal/fault"
)

func TestRetryableReadClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("read: %w", fault.ErrTransient), true},
		{fmt.Errorf("blk: %w", block.ErrBadChecksum), true},
		{fmt.Errorf("filedev: record 3: %w", device.ErrCorrupt), true},
		{fmt.Errorf("disk: deadline: %w", device.ErrIOTimeout), true},
		{fmt.Errorf("gone: %w", fault.ErrDeviceLost), false},
		{fmt.Errorf("gone: %w", fault.ErrDriveLost), false},
		{fmt.Errorf("tripped: %w", device.ErrDeviceFailed), false},
		{fmt.Errorf("media: %w", fault.ErrMedia), false},
		{errors.New("plain"), false},
	}
	for _, c := range cases {
		if got := retryableRead(c.err); got != c.want {
			t.Errorf("retryableRead(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// fileRes is fastRes on the file backend.
func fileRes(t *testing.T, m, d int64) Resources {
	t.Helper()
	res := fastRes(m, d)
	res.Backend = filedev.New(t.TempDir())
	return res
}

// TestOSErrorsAbsorbedBelowJoin injects syscall-level EIO on both the
// scratch store and the tape spool: the device worker's retries absorb
// them, so the join completes correctly without spending its own
// retry budget.
func TestOSErrorsAbsorbedBelowJoin(t *testing.T) {
	sched, err := fault.Parse("oserr=disk:2,oserr=R:1")
	if err != nil {
		t.Fatal(err)
	}
	result, want, err := runWith(t, "DT-GH", fileRes(t, 10, 64), sched)
	if err != nil {
		t.Fatalf("join with OS errors: %v", err)
	}
	if result.Stats.OutputTuples != want {
		t.Fatalf("matches = %d, want %d", result.Stats.OutputTuples, want)
	}
	if result.Stats.Retries != 0 {
		t.Errorf("join-level retries = %d, want 0 (device layer absorbs)", result.Stats.Retries)
	}
}

// TestStoredCorruptionRecoversViaRestage flips a stored bit of scratch
// block 0 (and, separately, tears its final write): every re-read of
// the damaged record fails checksum verification with typed
// device.ErrCorrupt, the read retry budget drains into
// ErrFaultExhausted, and the unit restart re-stages the scratch from
// tape — this time clean — for a correct join.
func TestStoredCorruptionRecoversViaRestage(t *testing.T) {
	for _, spec := range []string{"flip=disk:0", "torn=disk:0"} {
		t.Run(spec, func(t *testing.T) {
			sched, err := fault.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			result, want, err := runWith(t, "CTT-GH", fileRes(t, 10, 64), sched)
			if err != nil {
				t.Fatalf("join with stored corruption: %v", err)
			}
			if result.Stats.OutputTuples != want {
				t.Fatalf("matches = %d, want %d", result.Stats.OutputTuples, want)
			}
			if result.Stats.Retries == 0 || result.Stats.UnitRestarts == 0 {
				t.Errorf("retries=%d restarts=%d, want both > 0",
					result.Stats.Retries, result.Stats.UnitRestarts)
			}
		})
	}
}

// TestStoredCorruptionFailsTyped runs the same stored flip through a
// method whose staging is not re-run by unit restarts: the join must
// fail fast with both ErrFaultExhausted and device.ErrCorrupt in the
// chain — never hang, never deliver wrong tuples.
func TestStoredCorruptionFailsTyped(t *testing.T) {
	sched, err := fault.Parse("flip=disk:0")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = runWith(t, "DT-NB", fileRes(t, 10, 64), sched)
	if !errors.Is(err, ErrFaultExhausted) || !errors.Is(err, device.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrFaultExhausted wrapping device.ErrCorrupt", err)
	}
}
