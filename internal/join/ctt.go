package join

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/hashutil"
	"repro/internal/obs"
	"repro/internal/sim"
)

// estBucketBlocks estimates one bucket's on-disk size for a relation
// of n blocks over b buckets, with slack for the partial trailing
// block and hash-value variance.
func estBucketBlocks(n int64, b int) int64 {
	est := (n + int64(b) - 1) / int64(b)
	// Hash-variance slack: relative variance grows as buckets shrink,
	// so small buckets get proportionally more headroom.
	return est + est/8 + 2
}

// assemblableBucket returns the largest bucket (in blocks) whose
// estimated on-disk size fits in d blocks of assembly area — the
// inverse of estBucketBlocks' slack.
func assemblableBucket(d int64) int64 {
	// Buckets are bounded to half the assembly area: the window keeps
	// one estimated bucket of headroom so that hash-variance outliers
	// never overflow the disk (see hashRelationToTape).
	v := (d/2 - 2) * 8 / 9
	if v < 1 {
		v = 1
	}
	return v
}

// planTapeTape computes the bucket plan for a tape-tape method:
// buckets are bounded both by memory (join phase) and by the disk
// assembly area (Step I).
func planTapeTape(rBlocks, mBlocks, dBlocks int64) (hashutil.Plan, error) {
	return hashutil.PlanBucketsBounded(rBlocks, mBlocks, assemblableBucket(dBlocks))
}

// appendFileToTape streams a disk file to the drive's end of data and
// returns the contiguous region written. xform, when non-nil, rewrites
// each batch of blocks before the tape write (with eof set on the last
// batch so a stateful transform can flush) — the skew spool uses it to
// project one partition out of a bucket file. When pipelined, disk
// reads overlap tape writes through a small queue (the concurrent
// methods); otherwise the two alternate in one process (the sequential
// TT-GH).
func appendFileToTape(e *env, p *sim.Proc, f device.File, dst device.Drive, pipelined bool,
	xform func(blks []block.Block, eof bool) ([]block.Block, error)) (device.Region, error) {
	sp := e.span(p, "spool-bucket", obs.AInt("blocks", f.Len()))
	defer sp.Close(p)
	var region device.Region
	write := func(wp *sim.Proc, blks []block.Block) error {
		reg, err := dst.Append(wp, blks)
		if err != nil {
			return err
		}
		if region.N == 0 {
			region = reg
		} else {
			if reg.Start != region.End() {
				return fmt.Errorf("join: bucket append not contiguous at %d", reg.Start)
			}
			region.N += reg.N
		}
		return nil
	}

	if !pipelined {
		for off := int64(0); off < f.Len(); off += e.res.IOChunk {
			g := min64(e.res.IOChunk, f.Len()-off)
			blks, err := e.diskRead(p, f, off, g)
			if err != nil {
				return device.Region{}, err
			}
			if xform != nil {
				if blks, err = xform(blks, off+g >= f.Len()); err != nil {
					return device.Region{}, err
				}
			}
			if len(blks) == 0 {
				continue
			}
			if err := write(p, blks); err != nil {
				return device.Region{}, err
			}
		}
		return region, nil
	}

	type readMsg struct {
		blks []block.Block
		err  error
	}
	q := sim.NewQueue[readMsg](e.k, "append-pipe", 2)
	reader := e.k.Spawn("bucket-reader", func(rp *sim.Proc) {
		for off := int64(0); off < f.Len(); off += e.res.IOChunk {
			g := min64(e.res.IOChunk, f.Len()-off)
			blks, err := e.diskRead(rp, f, off, g)
			if err == nil && xform != nil {
				blks, err = xform(blks, off+g >= f.Len())
			}
			if err != nil {
				q.Send(rp, readMsg{err: err})
				break
			}
			if len(blks) == 0 {
				continue
			}
			q.Send(rp, readMsg{blks: blks})
		}
		q.Close(rp)
	})
	var pipeErr error
	for {
		m, ok := q.Recv(p)
		if !ok {
			break
		}
		if m.err != nil || pipeErr != nil {
			if m.err != nil && pipeErr == nil {
				pipeErr = m.err
			}
			continue
		}
		if err := write(p, m.blks); err != nil {
			pipeErr = err
		}
	}
	if err := p.Wait(reader); err != nil {
		return device.Region{}, err
	}
	if pipeErr != nil {
		return device.Region{}, pipeErr
	}
	return region, nil
}

// hashRelationToTape implements Step I of the tape–tape methods: the
// source relation is hash-partitioned into plan.B buckets, a disk-load
// of buckets at a time. Each scan reads the source end to end, keeps
// the tuples of the current bucket window, assembles those buckets in
// full on disk, and appends them to dst's scratch space. Returns the
// per-partition tape regions, stored contiguously in spool order.
//
// skew, when non-nil, is the in/out skew-refinement handle. On the
// build-side pass (sketch true, *skew nil) the first full scan
// sketches key frequencies and counts exact bucket sizes, then builds
// a SkewPlan before anything is spooled; with sketch false the
// handle's plan — R's, possibly nil — is applied as-is, so TT-GH's S
// pass lands on exactly R's partition map and never invents its own
// (an oversized S bucket is harmless: only R partitions must fit
// memory). A refined bucket is still assembled whole on disk, but
// spooled one partition at a time: each sub-partition or isolated key
// becomes its own tape region, read back by the join phase as an
// ordinary (now memory-sized) bucket. Sketch, counts and plan are
// deterministic, so a recovery replay lands on the same tape layout.
func hashRelationToTape(e *env, p *sim.Proc, src device.Drive, region device.Region,
	tuplesPerBlock int, tag byte, plan hashutil.Plan, dst device.Drive,
	pipelined bool, keep keepFn, scans *int, skew **hashutil.SkewPlan, sketch bool) ([]device.Region, error) {

	b := plan.B
	est := estBucketBlocks(region.N, b)

	cur := func() *hashutil.SkewPlan {
		if skew == nil {
			return nil
		}
		return *skew
	}
	partsOf := func(bkt int) []int {
		if sp := cur(); sp != nil {
			return sp.PartsOf(bkt)
		}
		return []int{bkt}
	}
	nparts := b
	if sp := cur(); sp != nil {
		nparts = sp.NParts
	}
	regions := make([]device.Region, nparts)
	// Sketch only while the plan is still open: the build-side pass.
	sketched := !sketch || skew == nil || *skew != nil
	done := 0
	for done < b {
		lo := done
		hi := lo // set inside the unit; a restart may shrink the window

		// One window is one restartable unit. Buckets already appended
		// to tape by an earlier attempt keep their regions; a restart
		// re-scans the source for the missing buckets only. A partially
		// appended bucket leaves garbage at the scratch EOD, which is
		// simply abandoned — tape appends are monotonic.
		err := e.runUnit(p, fmt.Sprintf("hash-window@%d", lo), func(up *sim.Proc) error {
			sp := e.span(up, "hash-window", obs.AInt("lo", int64(lo)))
			defer sp.Close(up)
			// Window sizing happens per attempt against the surviving
			// array, so a disk lost mid-run shrinks subsequent windows
			// (costing extra scans) instead of overflowing the disks.
			g := windowBuckets(e.effectiveD(), est)
			if g < 1 {
				return fmt.Errorf("%w: D=%d cannot assemble one %d-block bucket with headroom",
					ErrNeedDisk, e.effectiveD(), est)
			}
			if g > int64(b-lo) {
				g = int64(b - lo)
			}
			hi = lo + int(g)
			window := hi - lo
			need := make([]bool, window)
			anyNeed := false
			for i := 0; i < window; i++ {
				// A bucket is outstanding while any of its partitions
				// lacks a tape region (all of them, before a skew plan).
				for _, part := range partsOf(lo + i) {
					if regions[part].N == 0 {
						need[i] = true
						anyNeed = true
						break
					}
				}
			}
			if !anyNeed {
				return nil
			}
			files := make([]device.File, window)
			defer freeAll(files)
			for i := 0; i < window; i++ {
				if !need[i] {
					continue
				}
				f, err := e.disks.Create(fmt.Sprintf("hb%d", lo+i), nil)
				if err != nil {
					return err
				}
				files[i] = f
			}

			var sk *hashutil.FreqSketch
			var counts []int64
			if !sketched {
				if sk = e.newSketch(); sk == nil {
					sketched = true
				} else {
					counts = make([]int64, b)
				}
			}
			err := func() error {
				memNeed := int64(window)*plan.WriteBuf + plan.InBuf
				e.mem.acquire(memNeed)
				defer e.mem.release(memNeed)
				pt := newPartitioner(b, plan.WriteBuf, tuplesPerBlock, tag,
					func(fp *sim.Proc, bkt int, blks []block.Block) error {
						return files[bkt-lo].Append(fp, blks)
					})
				pt.only = func(bkt int) bool { return bkt >= lo && bkt < hi && need[bkt-lo] }
				pt.sketch = sk

				err := e.readTape(up, src, region, plan.InBuf, func(_ int64, blks []block.Block) error {
					var addErr error
					err := forEachTuple(blks, func(t block.Tuple) {
						if addErr != nil || (keep != nil && !keep(t)) {
							return
						}
						if counts != nil {
							counts[hashutil.Bucket(t.Key, b)]++
						}
						addErr = pt.add(up, t)
					})
					if err != nil {
						return err
					}
					return addErr
				})
				if err != nil {
					return err
				}
				return pt.finish(up)
			}()
			if err != nil {
				return err
			}
			*scans++

			// The full scan just completed the sketch and the exact
			// bucket census; refine the plan before anything spools so
			// every region lands at its final partition index.
			if sk != nil {
				sizes := make([]int64, b)
				for i, c := range counts {
					sizes[i] = (c + int64(tuplesPerBlock) - 1) / int64(tuplesPerBlock)
				}
				nsp := hashutil.BuildSkewPlan(plan, sizes, sk, tuplesPerBlock,
					skewTarget(plan, e.res.MemoryBlocks), int(e.res.MemoryBlocks-1))
				sketched = true
				if !nsp.Trivial() {
					*skew = nsp
					e.stats.HeavyHitters = len(nsp.Heavy)
					e.stats.SkewPartitions = nsp.NParts
					regions = append(regions, make([]device.Region, nsp.NParts-len(regions))...)
				}
			}

			// Append the completed buckets to the destination tape in
			// bucket order, refined buckets one partition at a time.
			for i, f := range files {
				if f == nil {
					continue
				}
				parts := partsOf(lo + i)
				if len(parts) == 1 {
					reg, err := appendFileToTape(e, up, f, dst, pipelined, nil)
					if err != nil {
						return err
					}
					regions[lo+i] = reg
				} else {
					for _, part := range parts {
						if regions[part].N != 0 {
							continue // spooled by an attempt this restart superseded
						}
						reg, err := appendFileToTape(e, up, f, dst, pipelined,
							partFilter(cur(), part, tuplesPerBlock, tag))
						if err != nil {
							return err
						}
						regions[part] = reg
					}
				}
				f.Free()
				files[i] = nil
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		done = hi
	}
	return regions, nil
}

// windowBuckets sizes a Step I assembly window for d blocks of disk:
// per-bucket estimates already carry variance slack, and over a wide
// window those margins pool, so large windows need no extra headroom.
// Narrow windows (1-2 buckets) cannot pool, so they reserve one whole
// estimated bucket against a hash-variance outlier.
func windowBuckets(d, est int64) int64 {
	g := d / est
	if g <= 2 {
		g = (d - est) / est
	}
	return g
}

// CTTGH is Concurrent Tape–Tape Grace Hash Join (Section 5.2.1): R is
// hashed from tape to tape using disk as an assembly area, then S is
// hashed to disk a chunk at a time (double-buffered) and joined with
// the tape-resident R buckets. The only method whose disk requirement
// is independent of |R| — the paper's sole candidate for very large
// joins.
type CTTGH struct{}

// Name implements Method.
func (CTTGH) Name() string { return "Concurrent Tape-Tape Grace Hash Join" }

// Symbol implements Method.
func (CTTGH) Symbol() string { return "CTT-GH" }

// Check implements Method: M >= sqrt(|R|); D holds one R bucket and
// one block per S bucket; R's tape has scratch space for its hashed
// copy (T_R = |R| in Table 2).
func (CTTGH) Check(spec Spec, res Resources) error {
	plan, err := planTapeTape(spec.R.Region.N, res.MemoryBlocks, res.DiskBlocks)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNeedMemory, err)
	}
	if est := estBucketBlocks(spec.R.Region.N, plan.B); res.DiskBlocks < 2*est {
		return fmt.Errorf("%w: D=%d cannot assemble one %d-block R bucket with headroom", ErrNeedDisk, res.DiskBlocks, est)
	}
	if res.DiskBlocks < int64(plan.B)+1 {
		return fmt.Errorf("%w: D=%d cannot buffer S over %d buckets", ErrNeedDisk, res.DiskBlocks, plan.B)
	}
	if scratch := spec.R.Media.Free(); scratch < spec.R.Region.N+int64(plan.B) {
		return fmt.Errorf("%w: R tape has %d free, hashed R needs ~%d",
			ErrNeedTapeScratch, scratch, spec.R.Region.N+int64(plan.B))
	}
	return nil
}

func (CTTGH) run(e *env, p *sim.Proc) error {
	plan, err := planTapeTape(e.spec.R.Region.N, e.res.MemoryBlocks, e.res.DiskBlocks)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNeedMemory, err)
	}
	// Step I: hash R from the R tape back onto the R tape's scratch
	// space, assembling a disk-load of buckets per scan.
	var skp *hashutil.SkewPlan
	rRegions, err := hashRelationToTape(e, p, e.driveR, e.spec.R.Region,
		e.spec.R.TuplesPerBlock, e.spec.R.Tag, plan, e.driveR, true, e.filterR(), &e.stats.RScans, &skp, true)
	if err != nil {
		return err
	}
	e.markStepI(p)

	scanBuf := scanBufFor(plan, e.res.MemoryBlocks)
	maxLoad := e.res.MemoryBlocks - scanBuf
	sLay := probeLayout(plan, skp, e.res.MemoryBlocks)

	// Step II: all of the (surviving) disk space double-buffers the S
	// buckets (|S_i| = d = D).
	dbuf := e.newDoubleBuffer("s-buckets", e.effectiveD())
	chunkCap := dbuf.ChunkCapacity() - int64(sLay.parts)
	if chunkCap < 1 {
		return fmt.Errorf("%w: D=%d cannot buffer S over %d buckets", ErrNeedDisk, e.effectiveD(), sLay.parts)
	}

	q := sim.NewQueue[ghChunk](e.k, "ctt-chunks", 1)
	hasher := spawnChunkHasher(e, q, sLay, chunkCap, dbuf)

	// With a bi-directional drive, alternate the bucket scan direction
	// each iteration: the head finishes iteration i exactly where
	// iteration i+1 begins, eliminating the long seek back across the
	// hashed-R run (the paper's footnote-2 observation that the
	// algorithms are independent of scan direction).
	biDir := e.driveR.Config().BiDirectional
	var pipeErr error
	nextOff := int64(0)
	for {
		c, ok := q.Recv(p)
		if !ok {
			break
		}
		if c.err != nil || pipeErr != nil {
			drainChunk(e, p, dbuf, c, &pipeErr)
			continue
		}
		backward := biDir && c.iter%2 == 1
		sp := e.span(p, "join-chunk", obs.AInt("off", c.off))
		err := e.staged(p, func() error {
			for b := 0; b < sLay.parts; b++ {
				idx := b
				if backward {
					idx = sLay.parts - 1 - b
				}
				rSrc := tapeBucket{drive: e.driveR, region: rRegions[idx], reverse: backward}
				if err := joinBucketPair(e, p, rSrc, diskBucket{c.files[idx]}, maxLoad, scanBuf); err != nil {
					for ; b < sLay.parts; b++ {
						idx := b
						if backward {
							idx = sLay.parts - 1 - b
						}
						dbuf.Release(p, c.iter, c.files[idx].Len())
						c.files[idx].Free()
					}
					return err
				}
				dbuf.Release(p, c.iter, c.files[idx].Len())
				c.files[idx].Free()
			}
			return nil
		})
		sp.Close(p)
		if err != nil {
			pipeErr = err
			e.abort = true
			continue
		}
		e.stats.Iterations++
		e.stats.RScans++
		nextOff = c.off + c.n
	}
	if err := p.Wait(hasher); err != nil {
		return err
	}
	e.abort = false
	if pipeErr != nil {
		if e.res.Recovery.Disabled || !e.unitRecoverable(pipeErr) {
			return pipeErr
		}
		// Sequential tail for the rest of S. The hashed R buckets live
		// on tape, untouched by any disk loss, so ensureR is a no-op
		// and chunk sizing gets the whole surviving disk.
		return ghStepIISeq(e, p, plan, sLay, nextOff,
			func(*sim.Proc) error { return nil },
			func(b int) bucketSource { return tapeBucket{drive: e.driveR, region: rRegions[b]} },
			func() int64 { return 0 })
	}
	return nil
}
