// Package filedev is the real-I/O backend: cartridges and disk
// scratch map to OS files, and transfers cost the wall-clock time the
// OS actually took, charged into the simulation clock so phase spans
// and stats report honest hardware numbers.
//
// Tape files are sequential-only: every read and write streams
// length-prefixed block records through an OS file, and head
// repositioning charges the drive profile's modeled seek latency
// (SeekFixed + distance * SeekPerBlock) — an OS file seeks for free,
// a tape transport does not, so the position model is the one part of
// the virtual cost model that survives into this backend. Disk
// scratch files are direct-offset: any block is one pread away and
// only the measured transfer time is charged.
//
// Transfers run through per-device ioengine workers: the calling proc
// plans the operation while it holds the simulation's control token
// (index bookkeeping, offset reservation), submits the pure OS
// syscalls to the device's worker goroutine, and yields the token
// until the worker posts completion. Independent devices therefore
// overlap in wall-clock time — the paper's max() cost composition —
// while the kernel's virtual schedule stays deterministic. Setting
// Backend.Synchronous restores the old inline path, where every
// transfer runs under the token and devices take strict turns.
//
// The mounted tape.Medium stays authoritative for content: appends
// and overwrites dual-write through the medium's setup interface, and
// Load respools the medium's current contents into the drive's
// spool file. That keeps media state consistent across unload/reload,
// shared-transport degrades, and the workload engine's mount
// scheduling, while every in-run transfer still moves real bytes
// through the OS.
package filedev

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/device/faultfile"
	"repro/internal/device/ioengine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ErrFreed is returned for operations on a freed scratch file. It is a
// plain error, not a panic: a join that races recovery against cleanup
// must degrade through the recovery machinery, not crash the process.
var ErrFreed = errors.New("filedev: file freed")

// SyncPolicy controls when written data is fsynced to the underlying
// device. Without syncing, OS writes land in the page cache and the
// "measured transfer" is mostly a memcpy.
type SyncPolicy int

const (
	// SyncInterval fsyncs after every SyncBytes of writes to a file
	// (the default): real storage is hit regularly without paying a
	// barrier per record.
	SyncInterval SyncPolicy = iota
	// SyncNone never fsyncs; data durability is the page cache's
	// problem. Fastest, least honest.
	SyncNone
	// SyncAlways fsyncs after every write operation before its
	// transfer is charged done.
	SyncAlways
)

// DefaultSyncBytes is the SyncInterval flush threshold.
const DefaultSyncBytes = 8 << 20

func (s SyncPolicy) String() string {
	switch s {
	case SyncNone:
		return "none"
	case SyncAlways:
		return "always"
	default:
		return "interval"
	}
}

// ParseSyncPolicy maps the CLI spelling of a sync policy to its value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("filedev: unknown sync policy %q (want none, interval or always)", s)
}

// Backend builds file-backed drives and stores rooted in one scratch
// directory. The zero Dir uses the process temp directory.
type Backend struct {
	// Dir is the root scratch directory; it is created on demand.
	Dir string
	// Synchronous disables the async I/O engine: transfers run inline
	// under the control token and serialize in wall-clock time. Used
	// by equivalence tests and as an escape hatch.
	Synchronous bool
	// Sync selects the fsync policy for written data (default
	// SyncInterval).
	Sync SyncPolicy
	// SyncBytes is the SyncInterval flush threshold
	// (DefaultSyncBytes when zero).
	SyncBytes int64
	// QueueDepth bounds each device worker's request queue
	// (ioengine.DefaultQueueDepth when zero).
	QueueDepth int
	// OpTimeout, when positive, bounds each device operation's
	// wall-clock execution on its worker: an op past the deadline
	// fails with a typed, retryable error, repeated misses degrade the
	// device's health, and TripAfter consecutive misses trip its
	// circuit breaker (the device then fails fast with
	// device.ErrDeviceFailed and the join's recovery machinery rebuilds
	// on surviving resources). Zero disables deadlines. Ignored by the
	// synchronous path, which has no worker to watchdog.
	OpTimeout time.Duration
	// TripAfter overrides the consecutive-timeout count that trips a
	// device's breaker (ioengine.DefaultTripAfter when zero).
	TripAfter int
	// RetryMax overrides the device-layer retry count for timed-out
	// and transient operations (negative disables retries; zero keeps
	// the engine default).
	RetryMax int
	// PaceScale, when positive, paces every transfer to occupy at
	// least the modeled device time divided by PaceScale in
	// wall-clock: the backend emulates the paper's device bandwidths
	// sped up PaceScale×, instead of running at page-cache speed where
	// every transfer is a near-instant memcpy. The sleep happens on
	// the device worker, off the control token, so paced transfers on
	// independent devices genuinely overlap in real time — this is
	// what makes the concurrent methods' wall-clock advantage
	// measurable on local files. Zero (the default) disables pacing.
	PaceScale float64
	// Flight, when set before the first device is built, receives the
	// engine's timeout / health-transition / retry events for live
	// observability. Nil records nothing.
	Flight *obs.FlightRecorder

	engine *ioengine.Engine
}

var _ device.Backend = &Backend{}
var _ device.WallStatser = &Backend{}
var _ device.HealthReporter = &Backend{}
var _ device.OpCanceller = &Backend{}

// New returns a backend rooted at dir.
func New(dir string) *Backend { return &Backend{Dir: dir} }

// Name implements device.Backend.
func (b *Backend) Name() string { return "file" }

// Engine returns the backend's async I/O engine, or nil when the
// backend is synchronous. The engine is shared by every device the
// backend builds, so its wall stats cover the whole device complex.
func (b *Backend) Engine() *ioengine.Engine {
	if b.Synchronous {
		return nil
	}
	if b.engine == nil {
		b.engine = ioengine.New(b.QueueDepth)
		pol := ioengine.Policy{OpTimeout: b.OpTimeout, TripAfter: b.TripAfter}
		if b.RetryMax != 0 {
			pol.Retry = ioengine.RetryPolicy{Max: b.RetryMax, Base: ioengine.DefaultRetry.Base}
			if b.RetryMax < 0 {
				pol.Retry = ioengine.RetryPolicy{Max: 0, Base: 1}
			}
		}
		b.engine.SetPolicy(pol)
		b.engine.SetFlight(b.Flight)
	}
	return b.engine
}

// DeviceHealths implements device.HealthReporter: the live health of
// every device worker the backend has built. Nil for a synchronous
// backend (no workers, nothing to watchdog).
func (b *Backend) DeviceHealths() []ioengine.DeviceHealth {
	if b.engine == nil {
		return nil
	}
	return b.engine.DeviceHealths()
}

// WallStats implements device.WallStatser: merged wall-clock busy time
// per device and the cross-device overlap fraction. Zero for a
// synchronous backend.
func (b *Backend) WallStats() ioengine.WallStats {
	if b.engine == nil {
		return ioengine.WallStats{}
	}
	return b.engine.WallStats()
}

// PublishWallMetrics implements device.WallStatser: per-device wall
// busy-seconds gauges plus the overlap fraction.
func (b *Backend) PublishWallMetrics(reg *obs.Registry) {
	if b.engine != nil {
		b.engine.PublishMetrics(reg)
	}
}

// CancelOps implements device.OpCanceller: every operation queued on
// the backend's device workers at the time of the call completes with
// device.ErrOpCancelled (wrapping cause) without touching the device or
// its health state; operations submitted afterwards run normally. A
// no-op for a synchronous backend, which has no queues to drain.
func (b *Backend) CancelOps(cause error) {
	if b.engine != nil {
		b.engine.CancelAll(cause)
	}
}

// worker builds a device worker, or nil for a synchronous backend.
func (b *Backend) worker(name string) *ioengine.Worker {
	if e := b.Engine(); e != nil {
		return e.Worker(name)
	}
	return nil
}

// syncBytes returns the effective SyncInterval threshold.
func (b *Backend) syncBytes() int64 {
	if b.SyncBytes > 0 {
		return b.SyncBytes
	}
	return DefaultSyncBytes
}

// mkdirTemp is a test hook for injecting constructor failures.
var mkdirTemp = os.MkdirTemp

// scratch makes a fresh unique directory for one device under the
// backend root.
func (b *Backend) scratch(kind, name string) (string, error) {
	root := b.Dir
	if root == "" {
		root = os.TempDir()
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return "", err
	}
	return mkdirTemp(root, fmt.Sprintf("%s-%s-", kind, sanitize(name)))
}

// sanitize keeps device names path-safe.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// NewDrive implements device.Backend.
func (b *Backend) NewDrive(k *sim.Kernel, name string, cfg device.DriveConfig) (device.Drive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dir, err := b.scratch("tape", name)
	if err != nil {
		return nil, err
	}
	return &Drive{name: name, k: k, cfg: cfg, dir: dir, b: b,
		w:   b.worker("tape:" + name),
		res: sim.NewResource(k, "tape:"+name, 1)}, nil
}

// NewSharedDrivePair implements device.Backend: two logical drives
// serialized on one transport resource, for the post-drive-loss
// degraded configuration. Switching the transport between the drives
// forces a reposition on the next request, like moving one physical
// head between two mounted cartridges.
func (b *Backend) NewSharedDrivePair(k *sim.Kernel, nameA, nameB string, cfg device.DriveConfig) (device.Drive, device.Drive, error) {
	da, err := b.NewDrive(k, nameA, cfg)
	if err != nil {
		return nil, nil, err
	}
	db, err := b.NewDrive(k, nameB, cfg)
	if err != nil {
		da.Close() // release the first drive's worker and scratch dir
		return nil, nil, err
	}
	a, bb := da.(*Drive), db.(*Drive)
	t := &transport{res: a.res}
	a.shared, bb.shared = t, t
	bb.res = a.res
	return a, bb, nil
}

// NewStore implements device.Backend.
func (b *Backend) NewStore(k *sim.Kernel, cfg device.StoreConfig) (device.Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dir, err := b.scratch("disk", "store")
	if err != nil {
		return nil, err
	}
	return &Store{k: k, cfg: cfg, dir: dir, b: b, w: b.worker("disk")}, nil
}

// transport is the shared-head state of a degraded drive pair.
type transport struct {
	res  *sim.Resource
	last *Drive
}

// syncer applies the backend's SyncPolicy to one file. It is touched
// only by the goroutine executing that file's writes — the device
// worker, or the token holder in synchronous mode — so it needs no
// locking.
type syncer struct {
	policy SyncPolicy
	every  int64
	dirty  int64
}

// wrote records n freshly written bytes and fsyncs per policy.
func (s *syncer) wrote(f *faultfile.File, n int64) error {
	switch s.policy {
	case SyncNone:
		return nil
	case SyncAlways:
		return f.Sync()
	default:
		s.dirty += n
		if s.dirty >= s.every {
			s.dirty = 0
			return f.Sync()
		}
		return nil
	}
}

// flush forces out any deferred dirty bytes.
func (s *syncer) flush(f *faultfile.File) error {
	if s.policy == SyncInterval && s.dirty > 0 {
		s.dirty = 0
		return f.Sync()
	}
	return nil
}

// recFile is a checksummed length-prefixed block-record file with an
// in-memory index: record i of the logical device lives at index[i]
// with length lens[i] and stored CRC crcs[i]. Overwrites append a
// fresh record and repoint the index — the file itself is append-only,
// like a tape with block remapping.
//
// Every record frame is [len u32][crc32(payload) u32][payload], both
// little-endian, and every read verifies the payload against the CRC
// captured at plan time: torn writes, bit rot and truncated tails all
// surface as typed device.ErrCorrupt instead of silently joining wrong
// bytes. (The join layer re-verifies the block-level checksum on top —
// the frame CRC catches corruption below the block encoding.)
//
// Operations are split so the async path has no shared mutable state:
// planAppend/planRead mutate the index and reserve offsets on the
// token-holding proc, and the returned ops run pure positioned
// syscalls on the device worker (positioned I/O is goroutine-safe).
// FIFO submission on one worker orders a write before any read of the
// same reserved offset. The underlying OS file is wrapped by
// faultfile.File, so fault decisions made at plan time can strike the
// syscalls themselves.
type recFile struct {
	// f is accessed atomically: close runs on the token-holding proc,
	// but a zombie op — one that outlived its deadline grace and was
	// abandoned by the engine — may still be executing on the worker
	// goroutine when the join tears the file down. The zombie loads the
	// pointer once; if it lost the race it sees nil (or a closed OS
	// file) and returns an error nobody is waiting for. os.File's own
	// fd refcounting makes Close concurrent with WriteAt/ReadAt safe.
	f     atomic.Pointer[faultfile.File]
	index []int64
	lens  []int32
	crcs  []uint32
	end   int64 // append offset
	sync  syncer
}

// recHeader is the per-record frame overhead: length + payload CRC.
const recHeader = 8

func (b *Backend) createRecFile(path string) (*recFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	r := &recFile{sync: syncer{policy: b.Sync, every: b.syncBytes()}}
	r.f.Store(faultfile.Wrap(f))
	return r, nil
}

// arm queues one OS-level fault decision against the file's next
// syscall. Called under the control token, before the planned ops are
// submitted.
func (r *recFile) arm(dec fault.OSDecision) {
	if f := r.f.Load(); f != nil {
		f.Arm(dec)
	}
}

// writeOp is one planned record write: frame header and payload,
// contiguous at a reserved offset.
type writeOp struct {
	off  int64
	data []byte
}

// readOp is one planned record read: the payload offset, a destination
// buffer sized from the index, and the expected payload CRC.
type readOp struct {
	off int64
	buf []byte
	crc uint32
}

// planAppend registers blks at logical positions pos, pos+1, ... and
// reserves their file offsets, returning the write ops to execute;
// pos may repoint existing entries or extend the index by exactly one
// record at a time. The index is updated before any byte is written —
// the ops must be submitted to the file's worker (or run inline)
// before the token is released.
func (r *recFile) planAppend(pos int64, blks []block.Block) ([]writeOp, error) {
	ops := make([]writeOp, 0, len(blks))
	for _, blk := range blks {
		off := r.end
		crc := crc32.ChecksumIEEE(blk)
		data := make([]byte, recHeader+len(blk))
		binary.LittleEndian.PutUint32(data[:4], uint32(len(blk)))
		binary.LittleEndian.PutUint32(data[4:8], crc)
		copy(data[recHeader:], blk)
		r.end = off + int64(len(data))
		switch {
		case pos < int64(len(r.index)):
			r.index[pos], r.lens[pos], r.crcs[pos] = off, int32(len(blk)), crc
		case pos == int64(len(r.index)):
			r.index = append(r.index, off)
			r.lens = append(r.lens, int32(len(blk)))
			r.crcs = append(r.crcs, crc)
		default:
			return nil, fmt.Errorf("filedev: write at %d leaves a gap (len %d)", pos, len(r.index))
		}
		ops = append(ops, writeOp{off: off, data: data})
		pos++
	}
	return ops, nil
}

// execWrites performs planned writes and applies the sync policy.
// Safe to run off the control token.
func (r *recFile) execWrites(ops []writeOp) error {
	f := r.f.Load()
	if f == nil {
		return fmt.Errorf("filedev: write on released file: %w", os.ErrClosed)
	}
	var n int64
	for _, op := range ops {
		if _, err := f.WriteAt(op.data, op.off); err != nil {
			return err
		}
		n += int64(len(op.data))
	}
	return r.sync.wrote(f, n)
}

// planRead resolves n records starting at logical position off into
// positioned reads with preallocated buffers and expected checksums.
func (r *recFile) planRead(off, n int64) ([]readOp, error) {
	if off < 0 || n < 0 || off+n > int64(len(r.index)) {
		return nil, fmt.Errorf("filedev: read [%d,%d) out of range [0,%d)", off, off+n, len(r.index))
	}
	ops := make([]readOp, n)
	for i := int64(0); i < n; i++ {
		ops[i] = readOp{off: r.index[off+i] + recHeader,
			buf: make([]byte, r.lens[off+i]), crc: r.crcs[off+i]}
	}
	return ops, nil
}

// execReads performs planned reads and verifies each record against
// its stored checksum, converting short reads and payload mismatches
// into typed device.ErrCorrupt. Safe to run off the control token:
// verification is pure CPU over op-owned buffers.
func (r *recFile) execReads(ops []readOp) error {
	f := r.f.Load()
	if f == nil {
		return fmt.Errorf("filedev: read on released file: %w", os.ErrClosed)
	}
	for i, op := range ops {
		n, err := f.ReadAt(op.buf, op.off)
		switch {
		case errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF):
			return fmt.Errorf("filedev: record %d truncated (%d of %d bytes): %w",
				i, n, len(op.buf), device.ErrCorrupt)
		case err != nil:
			return fmt.Errorf("filedev: record %d: %w", i, err)
		}
		if got := crc32.ChecksumIEEE(op.buf); got != op.crc {
			return fmt.Errorf("filedev: record %d: stored crc %08x, read %08x: %w",
				i, op.crc, got, device.ErrCorrupt)
		}
	}
	return nil
}

// assemble converts executed read ops into blocks.
func assemble(ops []readOp) []block.Block {
	out := make([]block.Block, len(ops))
	for i, op := range ops {
		out[i] = block.Block(op.buf)
	}
	return out
}

// appendRecords plans and executes inline — for mount-time respooling
// and the synchronous path.
func (r *recFile) appendRecords(pos int64, blks []block.Block) error {
	ops, err := r.planAppend(pos, blks)
	if err != nil {
		return err
	}
	return r.execWrites(ops)
}

// truncate drops all records from logical position n onward.
func (r *recFile) truncate(n int64) {
	if n < int64(len(r.index)) {
		r.index = r.index[:n]
		r.lens = r.lens[:n]
		r.crcs = r.crcs[:n]
	}
}

func (r *recFile) close() error {
	f := r.f.Swap(nil)
	if f == nil {
		return nil
	}
	return f.Close()
}

// hold charges the measured wall-clock duration of a completed OS
// operation into the simulation clock.
func hold(p *sim.Proc, t0 time.Time) sim.Duration {
	d := sim.Duration(time.Since(t0))
	if d > 0 {
		p.Hold(d)
	}
	return d
}

// pace returns the minimum wall-clock occupancy of an n-block
// transfer on a device sustaining rate bytes/second, or zero when
// pacing is off.
func (b *Backend) pace(rate float64, n int64) time.Duration {
	if b.PaceScale <= 0 || rate <= 0 {
		return 0
	}
	secs := float64(n) * block.VirtualSize / rate / b.PaceScale
	return time.Duration(secs * float64(time.Second))
}

// paced wraps op so it occupies at least min of wall-clock time. The
// sleep runs wherever the op runs — the device worker in async mode —
// so paced transfers on independent devices overlap like the hardware
// they emulate.
func paced(min time.Duration, op func() error) func() error {
	if min <= 0 {
		return op
	}
	return func() error {
		t0 := time.Now()
		err := op()
		if rest := min - time.Since(t0); rest > 0 {
			time.Sleep(rest)
		}
		return err
	}
}

// doIO runs one planned device operation: through the worker when the
// backend is async (the proc yields the control token while the
// worker performs the syscalls), inline under the token otherwise.
// Either way the measured wall duration is charged to virtual time
// and returned.
func doIO(p *sim.Proc, w *ioengine.Worker, op func() error) (sim.Duration, error) {
	if w != nil {
		return w.Do(p, op)
	}
	t0 := time.Now()
	err := op()
	return hold(p, t0), err
}

// remove deletes a device's scratch directory, ignoring errors — the
// OS temp cleaner is the backstop.
func remove(dir string) {
	if dir != "" && dir != string(filepath.Separator) {
		os.RemoveAll(dir)
	}
}
