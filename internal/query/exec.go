package query

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/cost"
	"repro/internal/join"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/tape"
)

// Table is a typed relation materialized on tape.
type Table struct {
	Rel    *relation.Relation
	Schema Schema
}

// RowGen supplies the non-key column values of a row given its ordinal
// position and generated join key. It must be deterministic.
type RowGen func(ordinal int64, key uint64) []Value

// TableConfig describes a typed table to generate onto tape.
type TableConfig struct {
	// Name, Tag, Blocks, TuplesPerBlock, KeySpace, Seed mirror
	// relation.Config.
	Name           string
	Tag            byte
	Blocks         int64
	TuplesPerBlock int
	KeySpace       uint64
	Seed           int64
	// Schema gives the table's columns; column 0 is the join key.
	Schema Schema
	// Rows supplies non-key values; nil uses defaultRows.
	Rows RowGen
}

// defaultRows derives deterministic values from the ordinal.
func defaultRows(schema Schema) RowGen {
	return func(ordinal int64, key uint64) []Value {
		out := make([]Value, 0, len(schema)-1)
		for _, c := range schema[1:] {
			switch c.Type {
			case Int64:
				out = append(out, ordinal)
			case Float64:
				out = append(out, float64(ordinal)/2)
			case String:
				out = append(out, fmt.Sprintf("v%03d", ordinal%997))
			}
		}
		return out
	}
}

// CreateTable generates a typed table onto the medium. The join keys
// come from the same seeded stream as relation.WriteToTape, so
// relation.ExpectedMatches still predicts join cardinalities exactly.
func CreateTable(m tape.Medium, cfg TableConfig) (*Table, error) {
	if err := cfg.Schema.Validate(); err != nil {
		return nil, err
	}
	rows := cfg.Rows
	if rows == nil {
		rows = defaultRows(cfg.Schema)
	}
	var genErr error
	rel, err := relation.WriteToTape(relation.Config{
		Name:           cfg.Name,
		Tag:            cfg.Tag,
		Blocks:         cfg.Blocks,
		TuplesPerBlock: cfg.TuplesPerBlock,
		KeySpace:       cfg.KeySpace,
		Seed:           cfg.Seed,
		PayloadGen: func(ordinal int64, key uint64) []byte {
			row := append(Row{int64(key)}, rows(ordinal, key)...)
			_, payload, err := cfg.Schema.Encode(row)
			if err != nil && genErr == nil {
				genErr = fmt.Errorf("query: table %q row %d: %w", cfg.Name, ordinal, err)
			}
			return payload
		},
	}, m)
	if err != nil {
		return nil, err
	}
	if genErr != nil {
		return nil, genErr
	}
	return &Table{Rel: rel, Schema: cfg.Schema}, nil
}

// Query is an equi-join of two tables on their key columns, with an
// optional post-join predicate and a projection.
type Query struct {
	R, S *Table
	// Where filters joined pairs; nil keeps everything. Must be
	// int64-typed (0 = drop, nonzero = keep).
	Where Expr
	// Select lists the output expressions; empty counts rows without
	// materializing any. Mutually exclusive with Aggregates.
	Select []Expr
	// GroupBy and Aggregates fold the (filtered) join output into
	// grouped aggregates instead of materializing rows: the result has
	// one row per group, group-by values first, then one column per
	// aggregate. Empty GroupBy with Aggregates produces one global
	// row.
	GroupBy    []Expr
	Aggregates []Agg
	// Method forces a join method by symbol; empty lets the paper's
	// cost model choose among feasible methods.
	Method string
	// Limit caps the rows materialized into Result.Rows; 0 means 1000.
	// It is presentation-only: the join still runs to completion and
	// Count / JoinMatches stay exact. To stop the join itself after n
	// pairs, use StopAfter.
	Limit int
	// StopAfter, when positive, terminates the join after n output
	// pairs (counted before the residual WHERE): a true top-k /
	// LIMIT-n execution that stops reading the tapes, not just a
	// materialization cap. The delivered pairs are a prefix of some
	// complete run's output; Count and JoinMatches then reflect only
	// the delivered prefix and Result.Stopped reports the early exit.
	// Method selection prefers the streaming SYM-H join when feasible.
	StopAfter int64
}

// Result is a query's outcome.
type Result struct {
	// Method is the join method that ran.
	Method string
	// Rows holds up to Limit projected rows.
	Rows []Row
	// Count is the exact number of joined pairs passing Where.
	Count int64
	// JoinMatches is the raw join cardinality before Where.
	JoinMatches int64
	// Stopped reports that the join terminated early because
	// Query.StopAfter was reached; Count and JoinMatches then cover
	// only the delivered prefix.
	Stopped bool
	// Stats is the underlying join's device accounting.
	Stats join.Stats
}

// querySink evaluates the predicate and projection on the join's
// output stream.
type querySink struct {
	q       *Query
	where   Expr
	selects []Expr
	limit   int

	matches int64
	count   int64
	rows    []Row
	err     error
}

func (qs *querySink) Emit(_ *sim.Proc, r, s block.Tuple) {
	qs.matches++
	if qs.err != nil {
		return
	}
	rRow, err := qs.q.R.Schema.Decode(r.Key, r.Payload)
	if err != nil {
		qs.err = err
		return
	}
	sRow, err := qs.q.S.Schema.Decode(s.Key, s.Payload)
	if err != nil {
		qs.err = err
		return
	}
	if qs.where != nil {
		keep, err := qs.where.Eval(rRow, sRow)
		if err != nil {
			qs.err = err
			return
		}
		if keep.(int64) == 0 {
			return
		}
	}
	qs.count++
	if len(qs.selects) == 0 || len(qs.rows) >= qs.limit {
		return
	}
	out := make(Row, len(qs.selects))
	for i, e := range qs.selects {
		v, err := e.Eval(rRow, sRow)
		if err != nil {
			qs.err = err
			return
		}
		out[i] = v
	}
	qs.rows = append(qs.rows, out)
}

func (qs *querySink) Count() int64 { return qs.matches }

// compiled is the executable form of a query's expressions: the
// residual predicate runs on the join output, and the single-sided
// conjuncts are pushed into the join as input filters.
type compiled struct {
	where   Expr // residual predicate (nil if fully pushed down)
	selects []Expr
	filterR keepRowFn
	filterS keepRowFn
}

// keepRowFn evaluates a pushed-down predicate on one side's row.
type keepRowFn func(row Row) (bool, error)

// compile validates, binds and splits the query's expressions.
func (q *Query) compile() (*compiled, error) {
	if q.R == nil || q.S == nil {
		return nil, fmt.Errorf("query: missing table")
	}
	rs, ss := q.R.Schema, q.S.Schema
	out := &compiled{}
	if q.Where != nil {
		t, err := q.Where.Check(rs, ss)
		if err != nil {
			return nil, err
		}
		if t != Int64 {
			return nil, fmt.Errorf("query: WHERE is %v, want int64", t)
		}
		rOnly, sOnly, residual := splitConjuncts(q.Where)
		bindSide := func(es []Expr, rSide bool) (keepRowFn, error) {
			if len(es) == 0 {
				return nil, nil
			}
			bound, err := bindExpr(And(es...), rs, ss)
			if err != nil {
				return nil, err
			}
			return func(row Row) (bool, error) {
				var v Value
				var err error
				if rSide {
					v, err = bound.Eval(row, nil)
				} else {
					v, err = bound.Eval(nil, row)
				}
				if err != nil {
					return false, err
				}
				return v.(int64) != 0, nil
			}, nil
		}
		if out.filterR, err = bindSide(rOnly, true); err != nil {
			return nil, err
		}
		if out.filterS, err = bindSide(sOnly, false); err != nil {
			return nil, err
		}
		if len(residual) > 0 {
			bound, err := bindExpr(And(residual...), rs, ss)
			if err != nil {
				return nil, err
			}
			out.where = bound
		}
	}
	for _, e := range q.Select {
		if _, err := e.Check(rs, ss); err != nil {
			return nil, err
		}
		bound, err := bindExpr(e, rs, ss)
		if err != nil {
			return nil, err
		}
		out.selects = append(out.selects, bound)
	}
	return out, nil
}

// specFilters converts the pushed-down predicates into tuple filters
// for the join layer. Evaluation errors (impossible after Check) drop
// the tuple and are surfaced via the sink error slot.
func (q *Query) specFilters(c *compiled, reportErr func(error)) (fr, fs func(block.Tuple) bool) {
	if c.filterR != nil {
		schema := q.R.Schema
		fr = func(t block.Tuple) bool {
			row, err := schema.Decode(t.Key, t.Payload)
			if err != nil {
				reportErr(err)
				return false
			}
			keep, err := c.filterR(row)
			if err != nil {
				reportErr(err)
				return false
			}
			return keep
		}
	}
	if c.filterS != nil {
		schema := q.S.Schema
		fs = func(t block.Tuple) bool {
			row, err := schema.Decode(t.Key, t.Payload)
			if err != nil {
				reportErr(err)
				return false
			}
			keep, err := c.filterS(row)
			if err != nil {
				reportErr(err)
				return false
			}
			return keep
		}
	}
	return fr, fs
}

// runAggregate executes the query with a grouped-aggregate sink.
func (q *Query) runAggregate(res join.Resources, method join.Method, c *compiled) (*Result, error) {
	if len(q.Select) > 0 {
		return nil, fmt.Errorf("query: Select and Aggregates are mutually exclusive")
	}
	rs, ss := q.R.Schema, q.S.Schema
	sink := &aggSink{
		q: q, where: c.where,
		groups:  map[string]*aggGroup{},
		argType: make([]Type, len(q.Aggregates)),
	}
	for _, e := range q.GroupBy {
		if _, err := e.Check(rs, ss); err != nil {
			return nil, err
		}
		bound, err := bindExpr(e, rs, ss)
		if err != nil {
			return nil, err
		}
		sink.groupBy = append(sink.groupBy, bound)
	}
	for i, a := range q.Aggregates {
		if err := a.check(rs, ss); err != nil {
			return nil, err
		}
		if a.Arg != nil {
			t, _ := a.Arg.Check(rs, ss)
			sink.argType[i] = t
			bound, err := bindExpr(a.Arg, rs, ss)
			if err != nil {
				return nil, err
			}
			a.Arg = bound
		}
		sink.aggs = append(sink.aggs, a)
	}

	spec := join.Spec{R: q.R.Rel, S: q.S.Rel}
	spec.FilterR, spec.FilterS = q.specFilters(c, func(err error) {
		if sink.err == nil {
			sink.err = err
		}
	})
	result, err := join.Run(method, spec, res, sink)
	if err != nil {
		return nil, err
	}
	if sink.err != nil {
		return nil, sink.err
	}
	return &Result{
		Method:      method.Symbol(),
		Rows:        sink.rows(),
		Count:       sink.count,
		JoinMatches: sink.matches,
		Stats:       result.Stats,
	}, nil
}

// chooseMethod picks the cheapest feasible join method with the
// paper's analytical model, given the actual tape scratch space.
func (q *Query) chooseMethod(res join.Resources) (join.Method, error) {
	if q.Method != "" {
		return join.BySymbol(q.Method)
	}
	// A stopped query wants time-to-first-tuple, not total throughput:
	// the symmetric streaming join emits pairs while the materializing
	// methods are still staging R, so it wins for any early cut-off.
	// The cost model ranks whole-run response and would never pick it.
	if q.StopAfter > 0 {
		if m, err := join.BySymbol("SYM-H"); err == nil &&
			m.Check(join.Spec{R: q.R.Rel, S: q.S.Rel}, res) == nil {
			return m, nil
		}
	}
	p := cost.Params{
		RBlocks:  q.R.Rel.Region.N,
		SBlocks:  q.S.Rel.Region.N,
		MBlocks:  res.MemoryBlocks,
		DBlocks:  res.DiskBlocks,
		TapeRate: res.Tape.EffectiveRate(),
		DiskRate: res.DiskRate,
	}
	adv := cost.Advise(p, cost.Scratch{
		RTape: q.R.Rel.Media.Free(),
		STape: q.S.Rel.Media.Free(),
	})
	if adv.Best == "" {
		return nil, fmt.Errorf("query: no feasible join method for these resources")
	}
	return join.BySymbol(adv.Best)
}

// Run executes the query on the given device complex. Single-sided
// WHERE conjuncts are pushed into the join as input filters, shrinking
// R's staged copy and S's buffered chunks; only join-level conjuncts
// evaluate on the output stream.
func Run(q Query, res join.Resources) (*Result, error) {
	res = res.WithDefaults()
	c, err := q.compile()
	if err != nil {
		return nil, err
	}
	method, err := q.chooseMethod(res)
	if err != nil {
		return nil, err
	}
	limit := q.Limit
	if limit == 0 {
		limit = 1000
	}

	if len(q.Aggregates) > 0 {
		if q.StopAfter > 0 {
			return nil, fmt.Errorf("query: StopAfter with Aggregates is unsupported: an aggregate over an arbitrary output prefix is not a meaningful result")
		}
		return q.runAggregate(res, method, c)
	}
	sink := &querySink{q: &q, where: c.where, selects: c.selects, limit: limit}
	// R must be the smaller side; swap transparently if needed, since
	// the equi-join is symmetric. The sink sees (r, s) in the
	// schema's order either way.
	spec := join.Spec{R: q.R.Rel, S: q.S.Rel}
	if q.R.Rel.Region.N > q.S.Rel.Region.N {
		return nil, fmt.Errorf("query: R (%d blocks) must be the smaller table", q.R.Rel.Region.N)
	}
	spec.FilterR, spec.FilterS = q.specFilters(c, func(err error) {
		if sink.err == nil {
			sink.err = err
		}
	})
	result, err := join.RunWith(method, spec, res, sink, join.ExecOptions{StopAfter: q.StopAfter})
	if err != nil {
		return nil, err
	}
	if sink.err != nil {
		return nil, sink.err
	}
	return &Result{
		Method:      method.Symbol(),
		Rows:        sink.rows,
		Count:       sink.count,
		JoinMatches: sink.matches,
		Stopped:     result.Stats.Stopped,
		Stats:       result.Stats,
	}, nil
}
