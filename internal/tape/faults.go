package tape

import (
	"errors"
	"fmt"

	"repro/internal/block"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SetInjector attaches a fault injector consulted on every drive
// request (nil disables injection).
func (d *Drive) SetInjector(inj fault.Injector) { d.inj = inj }

// consult asks the injector about one request while the drive is held.
// Stalls are charged immediately (the drive hiccups while holding the
// transport); injected errors are returned wrapped with the drive
// identity and charge no transfer time, like hard media errors.
// corrupt=true asks the caller to bit-flip the delivered copy.
func (d *Drive) consult(p *sim.Proc, write bool, addr Addr, n int64) (corrupt bool, err error) {
	dec := fault.Decide(d.inj, fault.Op{
		Device: "tape:" + d.name, Write: write,
		Addr: int64(addr), N: n, Now: p.Now(),
	})
	if dec.Stall > 0 {
		d.Stats.Stalls++
		d.Stats.StallTime += dec.Stall
		t0 := p.Now()
		p.Hold(dec.Stall)
		d.record(p, trace.Fault, t0, 0)
	}
	if dec.Err != nil {
		d.Stats.InjectedFaults++
		if errors.Is(dec.Err, fault.ErrDriveLost) {
			d.lost = true
		}
		return false, fmt.Errorf("tape: drive %q: %w", d.name, dec.Err)
	}
	if dec.Corrupt {
		d.Stats.InjectedFaults++
	}
	return dec.Corrupt, nil
}

// Lost reports whether an injected drive failure has killed this
// drive's transport.
func (d *Drive) Lost() bool { return d.lost }

// corruptDelivered bit-flips one block of a delivered read without
// touching the stored data, so a re-read of the same region recovers.
func corruptDelivered(blks []block.Block) {
	if len(blks) == 0 {
		return
	}
	i := len(blks) / 2
	bad := append(block.Block(nil), blks[i]...)
	bad[len(bad)-1] ^= 0xff
	blks[i] = bad
}

// transport is the single physical drive behind a shared drive pair.
type transport struct {
	res    *sim.Resource
	active *Drive
}

// NewSharedDrivePair returns two logical drives multiplexed onto ONE
// physical transport — the degraded configuration after a drive
// failure leaves a two-tape join with a single working drive. The
// drives serialize on the shared transport, and switching between them
// charges a media exchange (the robot swaps cartridges) plus the
// repositioning seek back to where that cartridge's head was needed.
func NewSharedDrivePair(k *sim.Kernel, nameA, nameB string, cfg DriveConfig) (*Drive, *Drive) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	tr := &transport{res: sim.NewResource(k, "tape:"+nameA+"+"+nameB, 1)}
	a := &Drive{name: nameA, k: k, cfg: cfg, res: tr.res, shared: tr}
	b := &Drive{name: nameB, k: k, cfg: cfg, res: tr.res, shared: tr}
	return a, b
}

// switchIn makes d the transport's active cartridge, charging the
// exchange and losing the head position (a freshly mounted cartridge
// rewinds to the start of its current volume). Called with the
// transport held. No-op for dedicated drives.
func (d *Drive) switchIn(p *sim.Proc) {
	if d.shared == nil || d.shared.active == d {
		return
	}
	if d.shared.active != nil {
		if d.cfg.ExchangeTime > 0 {
			t0 := p.Now()
			p.Hold(d.cfg.ExchangeTime)
			d.record(p, trace.TapeExchange, t0, 0)
		}
		d.Stats.Exchanges++
		d.Stats.ExchangeTime += d.cfg.ExchangeTime
		if d.media != nil {
			d.pos = d.media.volumeSpan(d.curVol).Start
		}
		d.started = false
		d.reverse = false
	}
	d.shared.active = d
}
