package hashutil

import (
	"math"
	"math/rand"
)

// Zeta returns the generalized harmonic number H_{n,theta} =
// sum_{i=1..n} 1/i^theta, the normalization constant of a Zipf(theta)
// distribution over n keys. The first zetaCutoff terms are summed
// exactly; the tail is the integral approximation
// (n^(1-theta) - cutoff^(1-theta)) / (1-theta), accurate to well under
// a percent for the key spaces the generator cares about. theta must
// be in [0, 1).
func Zeta(n float64, theta float64) float64 {
	const zetaCutoff = 10000
	if n <= zetaCutoff {
		return zetaExact(n, theta)
	}
	tail := (math.Pow(n, 1-theta) - math.Pow(zetaCutoff, 1-theta)) / (1 - theta)
	return zetaExact(zetaCutoff, theta) + tail
}

func zetaExact(n float64, theta float64) float64 {
	sum := 0.0
	for i := 1.0; i <= n; i++ {
		sum += 1 / math.Pow(i, theta)
	}
	return sum
}

// ZipfMaxKeyFrac returns the probability of the single most frequent
// key under Zipf(theta) over keys distinct values: 1/H_{n,theta}. This
// is the irreducible single-key mass a partitioner cannot split, and
// what the cost model uses to size the largest Grace-Hash bucket under
// skew. Returns 0 for theta <= 0 (uniform) or keys == 0.
func ZipfMaxKeyFrac(theta float64, keys uint64) float64 {
	if theta <= 0 || keys == 0 {
		return 0
	}
	return 1 / Zeta(float64(keys), theta)
}

// ZipfGen draws keys in [0, n) with rank-frequency following
// Zipf(theta), 0 < theta < 1, using the rejection-free inverse method
// of Gray et al. ("Quickly generating billion-record synthetic
// databases", SIGMOD '94). Key 0 is the most frequent. One uniform
// variate is consumed per draw, so a seeded *rand.Rand replays the
// exact sequence.
type ZipfGen struct {
	n     uint64
	nf    float64
	theta float64
	alpha float64
	zetan float64
	zeta2 float64
	eta   float64
}

// NewZipfGen builds a generator over n keys. Panics if theta is
// outside (0, 1) or n == 0; callers validate first.
func NewZipfGen(n uint64, theta float64) *ZipfGen {
	if n == 0 || theta <= 0 || theta >= 1 {
		panic("hashutil: ZipfGen needs n > 0 and 0 < theta < 1")
	}
	nf := float64(n)
	g := &ZipfGen{
		n:     n,
		nf:    nf,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: Zeta(nf, theta),
		zeta2: 1 + math.Pow(0.5, theta),
	}
	// eta is undefined (division by zero direction) at n == 1, where
	// every draw short-circuits to key 0 below anyway.
	if n > 1 {
		g.eta = (1 - math.Pow(2/nf, 1-theta)) / (1 - g.zeta2/g.zetan)
	}
	return g
}

// Next draws the next key using one Float64 from rng.
func (g *ZipfGen) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < g.zeta2 {
		return 1
	}
	k := g.nf * math.Pow(g.eta*u-g.eta+1, g.alpha)
	if k >= g.nf {
		return g.n - 1
	}
	return uint64(k)
}
