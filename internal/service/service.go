// Package service is the daemon layer of the resident join system: an
// HTTP/JSON front end over workload.OnlineEngine. Queries arrive as
// POST /join bodies, are admitted continuously under the engine's M/k
// cost-model budget, merge into in-flight shared S-scans when
// compatible, and stream their results back as JSONL. The server adds
// what the engine deliberately leaves out: per-tenant outstanding
// quotas (429), strict request decoding (400), graceful drain (503 for
// new work while admitted work finishes), a /stats snapshot, a
// /relations catalog listing, and the obsserver telemetry routes
// (/metrics, /health, /flight, /debug/pprof) mounted on the same mux.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/obs/obsserver"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/workload"
)

// HTTP-level rejection kinds. Like the engine's Reason* constants,
// every error body is "<kind>: <detail>".
const (
	// ReasonBadRequest marks a body the strict decoder refused.
	ReasonBadRequest = "bad-request"
	// ReasonUnknownRelation marks an R or S name missing from the
	// catalog.
	ReasonUnknownRelation = "unknown-relation"
	// ReasonQuota marks a tenant at its outstanding-query quota.
	ReasonQuota = "quota-exceeded"
	// ReasonDraining marks a query arriving after drain began.
	ReasonDraining = "draining"
)

// Config assembles a Server.
type Config struct {
	// Engine is the resident scheduler's configuration: resources,
	// policy, cache, merge window.
	Engine workload.OnlineConfig
	// Catalog names the relations queries may reference.
	Catalog map[string]*relation.Relation
	// TenantQuota caps each tenant's outstanding (accepted, not yet
	// finished) queries; 0 means unlimited.
	TenantQuota int
	// StreamBuffer is the per-query buffered-pair window for streaming
	// responses (default 4096). A client that reads slower than the
	// join emits loses pairs beyond the window — counted in the result
	// line's stream_dropped — rather than stalling the scheduler; the
	// result line's matches and output_hash are always exact.
	StreamBuffer int
	// Obs, when non-nil, serves live telemetry on the service mux. The
	// server points it at the engine's registry and flight recorder.
	Obs *obsserver.Server
	// Health is the obs health source (backend-dependent; may be nil).
	Health obsserver.HealthSource
}

// Server is the resident join daemon. Build with New, expose with
// Start (or embed Handler), stop with Drain.
type Server struct {
	cfg Config
	eng *workload.OnlineEngine
	mux *http.ServeMux

	mu          sync.Mutex
	outstanding map[string]int
	draining    bool
	nextID      int64
	accepted    int64
	rejected    map[string]int64 // by Reason* kind

	ln  net.Listener
	srv *http.Server

	drainOnce sync.Once
	drainErr  error
}

// New starts the resident engine and returns the daemon wrapped around
// it. The caller must eventually call Drain.
func New(cfg Config) (*Server, error) {
	if len(cfg.Catalog) == 0 {
		return nil, errors.New("service: empty catalog")
	}
	if cfg.StreamBuffer <= 0 {
		cfg.StreamBuffer = 4096
	}
	if cfg.Obs != nil {
		// The resident service owns its telemetry: make sure the engine
		// writes somewhere scrapeable, then point the obs routes there.
		if cfg.Engine.Resources.Metrics == nil {
			cfg.Engine.Resources.Metrics = obs.NewRegistry()
		}
		if cfg.Engine.Resources.Flight == nil {
			cfg.Engine.Resources.Flight = obs.NewFlightRecorder(0)
		}
		cfg.Obs.SetSources(cfg.Engine.Resources.Metrics, cfg.Engine.Resources.Flight, cfg.Health)
	}
	eng, err := workload.StartOnline(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Server{
		cfg:         cfg,
		eng:         eng,
		outstanding: make(map[string]int),
		rejected:    make(map[string]int64),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/join", s.handleJoin)
	s.mux.HandleFunc("/relations", s.handleRelations)
	s.mux.HandleFunc("/stats", s.handleStats)
	if cfg.Obs != nil {
		s.mux.Handle("/metrics", cfg.Obs.Handler())
		s.mux.Handle("/health", cfg.Obs.Handler())
		s.mux.Handle("/flight", cfg.Obs.Handler())
		s.mux.Handle("/debug/pprof/", cfg.Obs.Handler())
	}
	return s, nil
}

// Engine exposes the resident scheduler (stats, direct submission).
func (s *Server) Engine() *workload.OnlineEngine { return s.eng }

// Handler returns the daemon's routes, for embedding or tests.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (":0" for ephemeral) and serves in the background,
// returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("service: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Drain shuts the daemon down gracefully: new queries are rejected
// with 503 immediately, everything already admitted is served to
// completion, and only then does the HTTP listener close (in-flight
// responses finish streaming first). Safe to call more than once;
// returns the engine's run error, if any.
func (s *Server) Drain() error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		srv := s.srv
		s.mu.Unlock()
		s.drainErr = s.eng.Drain()
		if srv != nil {
			// Admitted work is delivered, so handlers are finishing their
			// final writes; Shutdown waits for those, with a backstop for
			// clients that stopped reading mid-stream.
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				srv.Close()
			}
			cancel()
		}
	})
	return s.drainErr
}

// Close is Drain: the daemon has no non-graceful teardown.
func (s *Server) Close() error { return s.Drain() }

// AcceptedLine is the first JSONL line of a /join response.
type AcceptedLine struct {
	Type   string `json:"type"` // "accepted"
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
}

// PairLine is one streamed output pair. Keys are decimal strings so
// full-range uint64 keys survive JSON number precision.
type PairLine struct {
	Type string `json:"type"` // "pair"
	R    string `json:"r"`
	S    string `json:"s"`
}

// ResultLine is the final JSONL line of a /join response.
type ResultLine struct {
	Type      string `json:"type"` // "result"
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	Requested string `json:"requested,omitempty"`
	Method    string `json:"method,omitempty"`
	Shared    bool   `json:"shared,omitempty"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Requeued  bool   `json:"requeued,omitempty"`
	Failed    bool   `json:"failed,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Matches   int64  `json:"matches"`
	// Stopped marks a join terminated early — stop_after reached, or the
	// streaming client went away; matches then counts only the delivered
	// prefix. FirstTupleMS is the virtual time to the first output pair.
	Stopped      bool    `json:"stopped,omitempty"`
	FirstTupleMS float64 `json:"first_tuple_ms,omitempty"`
	// OutputHash is the order-independent pair digest, "%016x" — the
	// cross-schedule equivalence oracle, hex so the full uint64
	// survives JSON.
	OutputHash string `json:"output_hash"`
	// WaitMS and LatencyMS are wall-clock queue wait and total latency.
	WaitMS    float64 `json:"wait_ms"`
	LatencyMS float64 `json:"latency_ms"`
	// VirtualMS is the query's service time on the session clock.
	VirtualMS float64 `json:"virtual_ms"`
	// Streamed and StreamDropped count pairs sent on the stream and
	// pairs beyond the stream window (matches is always exact).
	Streamed      int64 `json:"streamed,omitempty"`
	StreamDropped int64 `json:"stream_dropped,omitempty"`
}

// errorBody is every non-200 response: {"error": "<kind>: <detail>"}.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) reject(w http.ResponseWriter, code int, kind, detail string) {
	s.mu.Lock()
	s.rejected[kind]++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: kind + ": " + detail})
}

// streamSink counts and digests like CountSink (so the engine can lift
// OutputHash from it) and additionally fans pairs into a bounded
// channel for the response stream. Emit runs on the scheduler proc and
// must never block on a slow client: beyond the window it drops the
// pair and counts it. All Emits happen before the engine delivers the
// result, so reading dropped after the result is race-free.
//
// It is a join.StreamSink: cancel flips the satisfied flag from the
// handler's goroutine when the client goes away, and the join layer —
// which polls Satisfied before every device read and at every emission
// point — unwinds the query with a clean partial result. Only this
// query stops; the resident kernel and every other tenant's work are
// untouched.
type streamSink struct {
	join.CountSink
	ch        chan [2]uint64
	dropped   int64
	cancelled atomic.Bool
}

// Emit implements join.Sink.
func (s *streamSink) Emit(p *sim.Proc, r, t block.Tuple) {
	s.CountSink.Emit(p, r, t)
	select {
	case s.ch <- [2]uint64{r.Key, t.Key}:
	default:
		s.dropped++
	}
}

// Satisfied implements join.StreamSink.
func (s *streamSink) Satisfied() bool { return s.cancelled.Load() }

// cancel asks the join to stop at its next poll. Safe from any
// goroutine.
func (s *streamSink) cancel() { s.cancelled.Store(true) }

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.reject(w, http.StatusMethodNotAllowed, ReasonBadRequest, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		s.reject(w, http.StatusBadRequest, ReasonBadRequest, "read body: "+err.Error())
		return
	}
	req, err := DecodeRequest(body)
	if err != nil {
		s.reject(w, http.StatusBadRequest, ReasonBadRequest, err.Error())
		return
	}
	relR, okR := s.cfg.Catalog[req.R]
	relS, okS := s.cfg.Catalog[req.S]
	if !okR || !okS {
		missing := req.R
		if okR {
			missing = req.S
		}
		s.reject(w, http.StatusNotFound, ReasonUnknownRelation, missing)
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}

	// Admission bookkeeping: the draining check and the quota slot are
	// taken under one lock so drain never races an admission.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reject(w, http.StatusServiceUnavailable, ReasonDraining, "server is draining")
		return
	}
	if q := s.cfg.TenantQuota; q > 0 && s.outstanding[tenant] >= q {
		n := s.outstanding[tenant]
		s.mu.Unlock()
		s.reject(w, http.StatusTooManyRequests, ReasonQuota,
			fmt.Sprintf("tenant %q has %d outstanding (quota %d)", tenant, n, q))
		return
	}
	s.outstanding[tenant]++
	s.nextID++
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("sq%d", s.nextID)
	}
	s.mu.Unlock()
	release := func() {
		s.mu.Lock()
		if s.outstanding[tenant]--; s.outstanding[tenant] == 0 {
			delete(s.outstanding, tenant)
		}
		s.mu.Unlock()
	}

	var pairCh chan [2]uint64 // nil when not streaming: its select case never fires
	var sink join.Sink
	var ssink *streamSink
	if req.Stream {
		ssink = &streamSink{ch: make(chan [2]uint64, s.cfg.StreamBuffer)}
		pairCh = ssink.ch
		sink = ssink
	} else {
		sink = &join.CountSink{}
	}
	oq := workload.OnlineQuery{
		Query: workload.Query{
			ID: id, Method: req.Method,
			R: relR, S: relS, Sink: sink,
			StopAfter: req.StopAfter,
		},
		Tenant:   tenant,
		Priority: req.Priority,
	}
	if req.DeadlineMS > 0 {
		oq.Deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	resCh, err := s.eng.Submit(oq)
	if err != nil {
		release()
		if errors.Is(err, workload.ErrDraining) {
			s.reject(w, http.StatusServiceUnavailable, ReasonDraining, err.Error())
			return
		}
		s.reject(w, http.StatusBadRequest, ReasonBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	s.accepted++
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(AcceptedLine{Type: "accepted", ID: id, Tenant: tenant})
	flush()

	// The engine delivers exactly one result, even across drain and
	// kernel shutdown, so this loop always terminates. Streamed pairs
	// all precede the result delivery; any still buffered when the
	// result arrives are flushed by the drain loop below.
	var streamed int64
	var res workload.OnlineResult
	writePair := func(p [2]uint64) {
		enc.Encode(PairLine{Type: "pair", R: fmt.Sprintf("%d", p[0]), S: fmt.Sprintf("%d", p[1])})
		if streamed++; streamed%64 == 0 {
			flush()
		}
	}
	// A streaming client that goes away mid-join cancels its query: the
	// sink's satisfied flag flips, the join unwinds at its next poll
	// with a clean partial result, and the drives stop reading for it.
	// Non-streaming queries run to completion (their sink has no cancel
	// path) — the result is simply discarded with the connection.
	ctxDone := r.Context().Done()
wait:
	for {
		select {
		case p := <-pairCh:
			writePair(p)
		case <-ctxDone:
			if ssink != nil {
				ssink.cancel()
			}
			ctxDone = nil
		case got, ok := <-resCh:
			if ok {
				res = got
			}
			break wait
		}
	}
drain:
	for {
		select {
		case p := <-pairCh:
			writePair(p)
		default:
			break drain
		}
	}
	release()

	line := ResultLine{
		Type: "result", ID: res.ID, Tenant: tenant,
		Requested: res.Requested, Method: res.Method,
		Shared: res.Shared, CacheHit: res.CacheHit, Requeued: res.Requeued,
		Failed: res.Failed, Reason: res.Reason,
		Matches:      res.Matches,
		Stopped:      res.Stopped,
		FirstTupleMS: float64(res.FirstTuple) / float64(time.Millisecond),
		OutputHash:   fmt.Sprintf("%016x", res.OutputHash),
		WaitMS:       float64(res.WallWait()) / float64(time.Millisecond),
		LatencyMS:    float64(res.WallLatency()) / float64(time.Millisecond),
		VirtualMS:    float64(res.End-res.Start) / float64(time.Millisecond),
		Streamed:     streamed,
	}
	if ssink != nil {
		line.StreamDropped = ssink.dropped
	}
	enc.Encode(line)
	flush()
}

// RelationInfo is one row of GET /relations.
type RelationInfo struct {
	Name   string `json:"name"`
	Media  string `json:"media"`
	Blocks int64  `json:"blocks"`
	Tuples int64  `json:"tuples"`
}

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	rows := make([]RelationInfo, 0, len(s.cfg.Catalog))
	for name, rel := range s.cfg.Catalog {
		rows = append(rows, RelationInfo{
			Name: name, Media: rel.Media.Name(),
			Blocks: rel.Blocks, Tuples: rel.Tuples(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rows)
}

// StatsBody is the GET /stats document.
type StatsBody struct {
	Policy   string `json:"policy"`
	Draining bool   `json:"draining"`
	Accepted int64  `json:"accepted"`
	// Rejected counts HTTP-level rejections by kind.
	Rejected map[string]int64 `json:"rejected"`
	// Outstanding is the per-tenant count of accepted, unfinished
	// queries.
	Outstanding map[string]int `json:"outstanding"`
	// Engine is the scheduler's snapshot.
	Engine workload.OnlineStats `json:"engine"`
}

// Stats snapshots the daemon.
func (s *Server) Stats() StatsBody {
	st := StatsBody{Engine: s.eng.Stats()}
	s.mu.Lock()
	st.Policy = s.cfg.Engine.Policy.String()
	st.Draining = s.draining
	st.Accepted = s.accepted
	st.Rejected = make(map[string]int64, len(s.rejected))
	for k, v := range s.rejected {
		st.Rejected[k] = v
	}
	st.Outstanding = make(map[string]int, len(s.outstanding))
	for k, v := range s.outstanding {
		st.Outstanding[k] = v
	}
	s.mu.Unlock()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}
