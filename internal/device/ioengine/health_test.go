package ioengine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// deadlineEngine returns an engine with a short deadline, no retries,
// and a short grace, so health transitions are fast to provoke.
func deadlineEngine(timeout, grace time.Duration, trip int) *Engine {
	e := New(0)
	e.SetPolicy(Policy{OpTimeout: timeout, Grace: grace, TripAfter: trip,
		Retry: RetryPolicy{Max: 0, Base: 1}})
	return e
}

func TestDeadlinePostsTypedTimeout(t *testing.T) {
	e := deadlineEngine(10*time.Millisecond, 200*time.Millisecond, 3)
	k := sim.NewKernel()
	w := e.Worker("disk")
	defer w.Close()
	k.Spawn("p", func(p *sim.Proc) {
		_, err := w.Do(p, func() error { time.Sleep(40 * time.Millisecond); return nil })
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("want ErrTimeout, got %v", err)
		}
		if h := w.Health(); h != Degraded {
			t.Errorf("health after one miss = %v, want degraded", h)
		}
		if w.Timeouts() != 1 {
			t.Errorf("timeouts = %d, want 1", w.Timeouts())
		}
		// A completed op heals a degraded worker.
		if _, err := w.Do(p, func() error { return nil }); err != nil {
			t.Errorf("fast op after heal: %v", err)
		}
		if h := w.Health(); h != Healthy {
			t.Errorf("health after success = %v, want healthy", h)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerTripsAfterConsecutiveTimeouts(t *testing.T) {
	e := deadlineEngine(5*time.Millisecond, 500*time.Millisecond, 2)
	k := sim.NewKernel()
	w := e.Worker("disk")
	defer w.Close()
	slow := func() error { time.Sleep(25 * time.Millisecond); return nil }
	k.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			if _, err := w.Do(p, slow); !errors.Is(err, ErrTimeout) {
				t.Errorf("miss %d: want ErrTimeout, got %v", i, err)
			}
		}
		if h := w.Health(); h != Failed {
			t.Errorf("health after %d misses = %v, want failed", 2, h)
		}
		// Breaker open: submissions fail fast with a typed error and
		// never reach the device.
		ran := false
		if _, err := w.Do(p, func() error { ran = true; return nil }); !errors.Is(err, ErrDeviceFailed) {
			t.Errorf("want ErrDeviceFailed, got %v", err)
		}
		if ran {
			t.Error("op executed on a failed device")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGraceExpiryTripsBreaker(t *testing.T) {
	e := deadlineEngine(5*time.Millisecond, 20*time.Millisecond, 100)
	k := sim.NewKernel()
	w := e.Worker("disk")
	defer w.Close()
	release := make(chan struct{})
	k.Spawn("p", func(p *sim.Proc) {
		_, err := w.Do(p, func() error { <-release; return nil })
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("want ErrTimeout, got %v", err)
		}
		// The zombie outlives the grace period: one stuck op is enough
		// to fail the device even below the trip count.
		deadline := time.Now().Add(2 * time.Second)
		for w.Health() != Failed && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if h := w.Health(); h != Failed {
			t.Errorf("health after grace expiry = %v, want failed", h)
		}
		close(release)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoRetriesTransientAndTimeout(t *testing.T) {
	e := New(0)
	e.SetPolicy(Policy{OpTimeout: 10 * time.Millisecond, Grace: 200 * time.Millisecond,
		TripAfter: 5, Retry: RetryPolicy{Max: 3, Base: sim.Duration(time.Millisecond)}})
	k := sim.NewKernel()
	w := e.Worker("disk")
	defer w.Close()
	k.Spawn("p", func(p *sim.Proc) {
		// Two transient failures, then success: Do's device-layer
		// retries absorb them.
		calls := 0
		_, err := w.Do(p, func() error {
			calls++
			if calls <= 2 {
				return fmt.Errorf("flaky: %w", fault.ErrTransient)
			}
			return nil
		})
		if err != nil || calls != 3 {
			t.Errorf("transient retry: err=%v calls=%d, want nil/3", err, calls)
		}
		if w.Retries() != 2 {
			t.Errorf("retries = %d, want 2", w.Retries())
		}
		// One stall past the deadline, then fast: the timeout is
		// retried too, and the device heals.
		stalls := 0
		_, err = w.Do(p, func() error {
			stalls++
			if stalls == 1 {
				time.Sleep(30 * time.Millisecond)
			}
			return nil
		})
		if err != nil || stalls != 2 {
			t.Errorf("timeout retry: err=%v stalls=%d, want nil/2", err, stalls)
		}
		if h := w.Health(); h != Healthy {
			t.Errorf("health after recovery = %v, want healthy", h)
		}
		// Hard errors are not retried.
		boom := errors.New("hard failure")
		calls = 0
		if _, err := w.Do(p, func() error { calls++; return boom }); !errors.Is(err, boom) || calls != 1 {
			t.Errorf("hard error: err=%v calls=%d, want boom/1", err, calls)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitOnClosedWorkerTyped(t *testing.T) {
	e := New(0)
	k := sim.NewKernel()
	w := e.Worker("tape:R")
	reg := obs.NewRegistry()
	w.SetMetrics(reg)
	k.Spawn("p", func(p *sim.Proc) {
		w.Close()
		c := w.Submit(p, func() error { return nil })
		if _, err := w.Await(p, c); !errors.Is(err, ErrClosed) {
			t.Errorf("want typed ErrClosed, got %v", err)
		}
		// The fast-failed submission was never enqueued: the queue
		// gauge must not go negative.
		if v := reg.Gauge("iodev_queue_depth", "", obs.A("device", "tape:R")).Value(); v != 0 {
			t.Errorf("queue gauge after closed submit = %v, want 0", v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHealthMetricsPublished(t *testing.T) {
	e := deadlineEngine(5*time.Millisecond, 500*time.Millisecond, 2)
	k := sim.NewKernel()
	reg := obs.NewRegistry()
	w := e.Worker("disk")
	defer w.Close()
	w.SetMetrics(reg)
	k.Spawn("p", func(p *sim.Proc) {
		w.Do(p, func() error { time.Sleep(20 * time.Millisecond); return nil })
		if v := reg.Gauge("iodev_health", "", obs.A("device", "disk")).Value(); v != float64(Degraded) {
			t.Errorf("iodev_health = %v, want %d (degraded)", v, Degraded)
		}
		if v := reg.Counter("iodev_timeouts_total", "", obs.A("device", "disk")).Value(); v != 1 {
			t.Errorf("iodev_timeouts_total = %v, want 1", v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{Healthy: "healthy", Degraded: "degraded", Failed: "failed"} {
		if h.String() != want {
			t.Errorf("%d.String() = %q, want %q", h, h.String(), want)
		}
	}
}
