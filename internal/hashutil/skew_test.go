package hashutil

import (
	"math/rand"
	"testing"
)

func TestFreqSketchExactUnderCapacity(t *testing.T) {
	s := NewFreqSketch(8)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Add(uint64(i))
		}
	}
	if s.Total() != 15 {
		t.Fatalf("total = %d", s.Total())
	}
	for i := int64(0); i < 5; i++ {
		if got := s.Count(uint64(i)); got != i+1 {
			t.Fatalf("count[%d] = %d, want %d", i, got, i+1)
		}
	}
	top := s.TopK(2)
	if len(top) != 4 || top[0].Key != 4 || top[0].Count != 5 {
		t.Fatalf("top = %+v", top)
	}
}

func TestFreqSketchSurfacesHeavyHitterPastCapacity(t *testing.T) {
	// One key holds 30% of a stream with 1000 distinct light keys; a
	// 16-slot sketch must still report it on top with a count within
	// the space-saving error bound (true count + Total/cap).
	s := NewFreqSketch(16)
	rng := rand.New(rand.NewSource(1))
	const heavy, total = uint64(99999), 10000
	heavyTrue := int64(0)
	for i := 0; i < total; i++ {
		if rng.Float64() < 0.3 {
			s.Add(heavy)
			heavyTrue++
		} else {
			s.Add(uint64(rng.Intn(1000)))
		}
	}
	top := s.TopK(heavyTrue / 2)
	if len(top) == 0 || top[0].Key != heavy {
		t.Fatalf("heavy hitter not on top: %+v", top)
	}
	if c := top[0].Count; c < heavyTrue || c > heavyTrue+int64(total)/16 {
		t.Fatalf("heavy count %d outside [%d, %d]", c, heavyTrue, heavyTrue+total/16)
	}
}

func TestFreqSketchDeterministic(t *testing.T) {
	feed := func() *FreqSketch {
		s := NewFreqSketch(4)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			s.Add(uint64(rng.Intn(300)))
		}
		return s
	}
	a, b := feed().TopK(0), feed().TopK(0)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// buildSkewFixture makes a base plan and a synthetic key stream where
// one key dominates, returning measured bucket sizes and the sketch —
// the same inputs the join layer hands BuildSkewPlan.
func buildSkewFixture(t *testing.T, b int, tpb int, heavyKey uint64, heavyTuples, lightTuples int64) (Plan, []int64, *FreqSketch) {
	t.Helper()
	base := Plan{B: b, BucketBlocks: (heavyTuples + lightTuples) / int64(tpb*b), WriteBuf: 1, InBuf: 1}
	sizes := make([]int64, b)
	tuples := make([]int64, b)
	sk := NewFreqSketch(16)
	rng := rand.New(rand.NewSource(3))
	add := func(key uint64) {
		sk.Add(key)
		tuples[Bucket(key, b)]++
	}
	for i := int64(0); i < heavyTuples; i++ {
		add(heavyKey)
	}
	for i := int64(0); i < lightTuples; i++ {
		add(uint64(rng.Intn(1 << 20)))
	}
	for i := range sizes {
		sizes[i] = (tuples[i] + int64(tpb) - 1) / int64(tpb)
	}
	return base, sizes, sk
}

func TestBuildSkewPlanIsolatesHeavyKeyAndRoutesConsistently(t *testing.T) {
	const tpb, target = 4, 9
	base, sizes, sk := buildSkewFixture(t, 8, tpb, 424242, 200, 800)
	sp := BuildSkewPlan(base, sizes, sk, tpb, target, 64)
	if sp.Trivial() {
		t.Fatalf("plan stayed trivial; sizes = %v", sizes)
	}
	if len(sp.Heavy) == 0 || sp.Heavy[0].Key != 424242 {
		t.Fatalf("heavy key not isolated: %+v", sp.Heavy)
	}
	hk := sp.Heavy[0]
	if got := sp.Partition(424242); got != hk.Part || got < base.B {
		t.Fatalf("heavy key routed to %d, want dedicated partition %d", got, hk.Part)
	}
	// Non-heavy keys stay inside [0, NParts) and agree with PartsOf.
	fed := map[int][]int{}
	for _, b := range []int{0, 1, 2, 3, 4, 5, 6, 7} {
		for _, p := range sp.PartsOf(b) {
			fed[p] = append(fed[p], b)
		}
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		k := uint64(rng.Intn(1 << 20))
		p := sp.Partition(k)
		if p < 0 || p >= sp.NParts {
			t.Fatalf("key %d -> partition %d outside [0, %d)", k, p, sp.NParts)
		}
		srcs := fed[p]
		if len(srcs) != 1 || srcs[0] != Bucket(k, base.B) {
			t.Fatalf("partition %d fed by %v, but key %d has primary bucket %d",
				p, srcs, k, Bucket(k, base.B))
		}
	}
	// Deterministic rebuild: same inputs, same layout.
	again := BuildSkewPlan(base, sizes, sk, tpb, target, 64)
	if again.NParts != sp.NParts || len(again.Heavy) != len(sp.Heavy) {
		t.Fatalf("rebuild differs: %+v vs %+v", again, sp)
	}
}

func TestBuildSkewPlanSplitsCollisionOverflow(t *testing.T) {
	// No single heavy key, but one bucket measured far over target —
	// a pileup of light keys. The planner must split it by the
	// secondary hash rather than isolate anything.
	base := Plan{B: 4, BucketBlocks: 10, WriteBuf: 1, InBuf: 1}
	sizes := []int64{40, 8, 8, 8}
	sp := BuildSkewPlan(base, sizes, nil, 4, 10, 64)
	if len(sp.Heavy) != 0 {
		t.Fatalf("no sketch, but keys isolated: %+v", sp.Heavy)
	}
	if sp.Splits[0] != 4 {
		t.Fatalf("bucket 0 split %d ways, want 4", sp.Splits[0])
	}
	if sp.NParts != 4+3 {
		t.Fatalf("NParts = %d, want 7", sp.NParts)
	}
	// The split spreads bucket 0's keys across its sub-partitions.
	seen := map[int]int{}
	for k := uint64(0); k < 40000; k++ {
		if Bucket(k, 4) != 0 {
			continue
		}
		seen[sp.Partition(k)]++
	}
	if len(seen) != 4 {
		t.Fatalf("split reached %d sub-partitions, want 4: %v", len(seen), seen)
	}
}

func TestBuildSkewPlanRespectsMaxParts(t *testing.T) {
	base := Plan{B: 4, BucketBlocks: 10, WriteBuf: 1, InBuf: 1}
	sizes := []int64{100, 100, 100, 100}
	sp := BuildSkewPlan(base, sizes, nil, 4, 5, 6)
	if sp.NParts > 6 {
		t.Fatalf("NParts = %d exceeds cap 6", sp.NParts)
	}
	// Degrades gracefully: still a valid router.
	for k := uint64(0); k < 1000; k++ {
		if p := sp.Partition(k); p < 0 || p >= sp.NParts {
			t.Fatalf("key %d -> %d", k, p)
		}
	}
}
