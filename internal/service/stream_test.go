package service

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/join"
	"repro/internal/relation"
	"repro/internal/tape"
	"repro/internal/workload"
)

// TestServiceStopAfterWire pins the stop_after wire contract: a
// LIMIT-n request delivers exactly n pairs, the result line reports
// stopped with a first-tuple stamp, and the same cut-off works without
// streaming. A negative stop_after is a 400.
func TestServiceStopAfterWire(t *testing.T) {
	f := makeFixture(t, workload.FIFO)
	s, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	base = "http://" + base

	const n = 5
	if total := f.expect["R1|S1"]; total <= n {
		t.Fatalf("fixture has %d matches, need > %d", total, n)
	}

	code, pairs, res := postJoin(t, base, Request{ID: "sa", R: "R1", S: "S1", Stream: true, StopAfter: n})
	if code != http.StatusOK || res.Failed {
		t.Fatalf("status %d, failed=%v (%s)", code, res.Failed, res.Reason)
	}
	if !res.Stopped {
		t.Error("result not marked stopped")
	}
	if res.Matches != n || int64(len(pairs)) != n {
		t.Errorf("matches=%d, %d pairs streamed, want exactly %d", res.Matches, len(pairs), n)
	}
	if res.FirstTupleMS <= 0 {
		t.Errorf("first_tuple_ms = %v, want > 0", res.FirstTupleMS)
	}

	// Same cut-off, no stream: the join still stops on the device side.
	code2, pairs2, res2 := postJoin(t, base, Request{R: "R1", S: "S1", StopAfter: n})
	if code2 != http.StatusOK || res2.Failed {
		t.Fatalf("unstreamed: status %d, failed=%v", code2, res2 != nil && res2.Failed)
	}
	if res2.Matches != n || !res2.Stopped || len(pairs2) != 0 {
		t.Errorf("unstreamed: matches=%d stopped=%v pairs=%d, want %d/true/0",
			res2.Matches, res2.Stopped, len(pairs2), n)
	}

	resp, err := http.Post(base+"/join", "application/json",
		strings.NewReader(`{"r":"R1","s":"S1","stop_after":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative stop_after: status %d, want 400", resp.StatusCode)
	}
}

// TestServiceClientCancelStopsDeviceWork covers the mid-flight client
// disconnect: a streamed query whose connection dies is cancelled
// through its sink's satisfied flag, so the engine serves it with far
// fewer tape reads than a full run — the drives stop working for a
// client that went away, while other tenants' queries are untouched.
func TestServiceClientCancelStopsDeviceWork(t *testing.T) {
	// A larger S than the shared fixture so the hold query keeps the
	// engine busy long enough for the cancellation to land in queue.
	mS := tape.NewMedia("S1", 4096)
	mR := tape.NewMedia("RA", 4096)
	rS, err := relation.WriteToTape(relation.Config{
		Name: "S1", Tag: 100, Blocks: 1024, TuplesPerBlock: 4,
		KeySpace: 200, PayloadBytes: 8, Seed: 1,
	}, mS)
	if err != nil {
		t.Fatal(err)
	}
	rR, err := relation.WriteToTape(relation.Config{
		Name: "R1", Tag: 1, Blocks: 16, TuplesPerBlock: 4,
		KeySpace: 200, PayloadBytes: 8, Seed: 11,
	}, mR)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Engine: workload.OnlineConfig{
			Config: workload.Config{
				Resources: join.Resources{
					MemoryBlocks: 20,
					DiskBlocks:   2048,
					NumDisks:     2,
					DiskRate:     2 * tape.Ideal().EffectiveRate(),
					Tape:         tape.Ideal(),
					IOChunk:      8,
				},
				Policy:    workload.FIFO,
				MountTime: 30 * time.Second,
			},
		},
		Catalog: map[string]*relation.Relation{"S1": rS, "R1": rR},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	base = "http://" + base

	waitServed := func(n int64) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for s.Stats().Engine.Served < n {
			if time.Now().After(deadline) {
				t.Fatalf("engine served %d of %d queries", s.Stats().Engine.Served, n)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Reference: one full run's tape traffic.
	if code, _, res := postJoin(t, base, Request{ID: "full", R: "R1", S: "S1", Stream: true}); code != 200 || res.Failed {
		t.Fatalf("full run: %d %v", code, res)
	}
	waitServed(1)
	fullRead := s.Stats().Engine.TapeBlocksRead

	// Hold the FIFO engine with a second full query, then submit the
	// victim behind it and kill its connection immediately: the cancel
	// flips the sink while the victim is still queued, so its run stops
	// at the first poll.
	holdDone := make(chan struct{})
	go func() {
		defer close(holdDone)
		postJoin(t, base, Request{ID: "hold", R: "R1", S: "S1"})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Accepted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("hold query never accepted")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	body := strings.NewReader(`{"id":"victim","r":"R1","s":"S1","stream":true}`)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/join", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// The handler has enqueued the query and written the accepted line by
	// the time the response headers arrive; cancelling now reaches its
	// context watcher while the victim is still behind the hold query.
	cancel()
	resp.Body.Close()

	<-holdDone
	waitServed(3)

	totalRead := s.Stats().Engine.TapeBlocksRead
	victimRead := totalRead - 2*fullRead
	if victimRead >= fullRead {
		t.Errorf("cancelled query read %d tape blocks, full run reads %d; cancellation saved no device work",
			victimRead, fullRead)
	}
	if out := s.Stats().Outstanding; len(out) != 0 {
		t.Errorf("outstanding queries leaked: %v", out)
	}

	// The daemon is still healthy for the next tenant.
	if code, _, res := postJoin(t, base, Request{ID: "after", R: "R1", S: "S1"}); code != 200 || res.Failed {
		t.Fatalf("post-cancel query: %d %v", code, res)
	}
}
