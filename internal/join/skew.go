package join

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/hashutil"
	"repro/internal/obs"
	"repro/internal/sim"
)

// layout describes how a relation is routed into partitions on disk:
// the partition count, per-partition write buffer, input buffer and
// the routing function. The zero-skew layout of a uniform Plan routes
// by the primary hash and is byte-for-byte the paper's behavior.
type layout struct {
	parts    int
	writeBuf int64
	inBuf    int64
	// sp, when non-nil, routes keys through the skew plan's refined
	// partition map instead of the uniform hash.
	sp *hashutil.SkewPlan
}

func layoutOf(plan hashutil.Plan) layout {
	return layout{parts: plan.B, writeBuf: plan.WriteBuf, inBuf: plan.InBuf}
}

// probeLayout sizes the probe-side (S) partition layout for a plan and
// its optional skew refinement: every final partition needs a write
// buffer next to the input buffer, so more partitions mean narrower
// buffers, never more memory.
func probeLayout(plan hashutil.Plan, sp *hashutil.SkewPlan, m int64) layout {
	if sp.Trivial() {
		return layoutOf(plan)
	}
	lay := layout{parts: sp.NParts, sp: sp}
	lay.inBuf = m / 10
	if lay.inBuf < 1 {
		lay.inBuf = 1
	}
	lay.writeBuf = (m - lay.inBuf) / int64(lay.parts)
	if lay.writeBuf < 1 {
		lay.writeBuf = 1
		if lay.inBuf = m - int64(lay.parts); lay.inBuf < 1 {
			lay.inBuf = 1
		}
	}
	return lay
}

// memory returns the blocks the partition phase holds under this
// layout: one write buffer per partition plus the input buffer.
func (l layout) memory() int64 { return int64(l.parts)*l.writeBuf + l.inBuf }

// route maps a key to its final partition.
func (l layout) route(key uint64) int {
	if l.sp != nil {
		return l.sp.Partition(key)
	}
	return hashutil.Bucket(key, l.parts)
}

// skewTarget is the single-load budget a repaired partition must meet:
// whatever memory remains next to the join phase's streaming buffer.
func skewTarget(plan hashutil.Plan, m int64) int64 {
	return m - scanBufFor(plan, m)
}

// newSketch returns a frequency sketch when skew-aware partitioning is
// on, nil otherwise.
func (e *env) newSketch() *hashutil.FreqSketch {
	if !e.res.SkewAware {
		return nil
	}
	return hashutil.NewFreqSketch(e.res.SkewSketchK)
}

// fileLens returns the length in blocks of each file.
func fileLens(files []device.File) []int64 {
	out := make([]int64, len(files))
	for i, f := range files {
		out[i] = f.Len()
	}
	return out
}

// splitBucketFile redistributes one provisional bucket file into the
// final partitions the skew plan assigns to primary bucket b, reading
// the file back in IOChunk batches and writing one new file per
// partition (named prefix<part>). The input file is freed on success.
// Memory held is one block per target partition plus the read chunk —
// bounded by maxParts <= M-1 at plan time.
func (e *env) splitBucketFile(p *sim.Proc, f device.File, sp *hashutil.SkewPlan, b int,
	tuplesPerBlock int, tag byte, prefix string) (map[int]device.File, error) {

	parts := sp.PartsOf(b)
	isPart := make(map[int]bool, len(parts))
	out := make(map[int]device.File, len(parts))
	ok := false
	defer func() {
		if !ok {
			for _, nf := range out {
				nf.Free()
			}
		}
	}()
	for _, part := range parts {
		nf, err := e.disks.Create(fmt.Sprintf("%s%d", prefix, part), nil)
		if err != nil {
			return nil, err
		}
		out[part] = nf
		isPart[part] = true
	}

	chunk := min64(e.res.IOChunk, e.res.MemoryBlocks-int64(len(parts)))
	if chunk < 1 {
		chunk = 1
	}
	mem := int64(len(parts)) + chunk
	e.mem.acquire(mem)
	defer e.mem.release(mem)

	pt := newPartitioner(sp.NParts, 1, tuplesPerBlock, tag,
		func(fp *sim.Proc, part int, blks []block.Block) error {
			return out[part].Append(fp, blks)
		})
	pt.route = sp.Partition
	pt.only = func(part int) bool { return isPart[part] }
	for off := int64(0); off < f.Len(); off += chunk {
		n := min64(chunk, f.Len()-off)
		blks, err := e.diskRead(p, f, off, n)
		if err != nil {
			return nil, err
		}
		var addErr error
		err = forEachTuple(blks, func(t block.Tuple) {
			if addErr == nil {
				addErr = pt.add(p, t)
			}
		})
		if err != nil {
			return nil, err
		}
		if addErr != nil {
			return nil, addErr
		}
	}
	if err := pt.finish(p); err != nil {
		return nil, err
	}
	ok = true
	f.Free()
	return out, nil
}

// partFilter returns an appendFileToTape transform that keeps only the
// tuples routed to part, repacking survivors at the relation's density.
// The builder carries across batches, so only the partition's final
// block is partial — the spooled region is as dense as a directly
// partitioned one.
func partFilter(sp *hashutil.SkewPlan, part, tuplesPerBlock int, tag byte) func(blks []block.Block, eof bool) ([]block.Block, error) {
	bld := block.NewBuilder(tag)
	return func(blks []block.Block, eof bool) ([]block.Block, error) {
		var out []block.Block
		err := forEachTuple(blks, func(t block.Tuple) {
			if sp.Partition(t.Key) != part {
				return
			}
			bld.Append(t)
			if bld.Len() >= tuplesPerBlock {
				out = append(out, bld.Finish())
			}
		})
		if err != nil {
			return nil, err
		}
		if eof && bld.Len() > 0 {
			out = append(out, bld.Finish())
		}
		return out, nil
	}
}

// repairRSkew inspects the uniform R bucket files against the
// single-load budget and, when any overflows, builds a SkewPlan from
// the sketch and rewrites the overflowing buckets into their refined
// partitions on disk. Returns the final partition files (indexed by
// partition) and the plan; a trivial refinement returns the input
// files and a nil plan, leaving the uniform path untouched. The
// rewrite is deterministic, so a recovery replay lands on the same
// layout.
func (e *env) repairRSkew(p *sim.Proc, plan hashutil.Plan, files []device.File,
	sk *hashutil.FreqSketch, tuplesPerBlock int, tag byte, prefix string) ([]device.File, *hashutil.SkewPlan, error) {

	target := skewTarget(plan, e.res.MemoryBlocks)
	sp := hashutil.BuildSkewPlan(plan, fileLens(files), sk, tuplesPerBlock,
		target, int(e.res.MemoryBlocks-1))
	if sp.Trivial() {
		return files, nil, nil
	}
	e.stats.HeavyHitters = len(sp.Heavy)
	e.stats.SkewPartitions = sp.NParts

	span := e.span(p, "skew-repair",
		obs.AInt("heavy", int64(len(sp.Heavy))), obs.AInt("parts", int64(sp.NParts)))
	defer span.Close(p)

	// repairRSkew owns files from here: on error everything still
	// allocated — unsplit originals and finished splits alike — is
	// freed, and the caller must not free the input slice again.
	out := make([]device.File, sp.NParts)
	copy(out, files)
	for b := 0; b < plan.B; b++ {
		if len(sp.PartsOf(b)) == 1 {
			continue
		}
		split, err := e.splitBucketFile(p, files[b], sp, b, tuplesPerBlock, tag, prefix)
		if err != nil {
			freeAll(out)
			return nil, nil, err
		}
		// splitBucketFile freed files[b] and produced a replacement for
		// every partition of b, index b included.
		for part, nf := range split {
			out[part] = nf
		}
	}
	return out, sp, nil
}
