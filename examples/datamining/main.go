// Data mining on tape: the paper's motivating scenario. A retailer
// keeps a year of point-of-sale transactions (10 GB) on tape and wants
// to join it against a promoted-products table (2.5 GB), also on tape,
// using a workstation with 32 MB of RAM and half a gigabyte of spare
// disk — not a mainframe. The example asks the advisor which method to
// use, runs it, and shows why the naive alternative (staging to disk)
// is impossible.
//
//	go run ./examples/datamining
package main

import (
	"fmt"
	"log"

	tapejoin "repro"
)

func main() {
	sys, err := tapejoin.NewSystem(tapejoin.Config{
		MemoryMB: 16, // half of the workstation's 32 MB, like the paper
		DiskMB:   500,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Cartridges: the transactions tape is full; the products tape
	// has scratch space left, which is what makes a tape-tape join
	// possible.
	products := mustTape(sys, "products-1996", 6000)
	transactions := mustTape(sys, "pos-archive-1996", 11000)

	r, err := sys.CreateRelation(products, tapejoin.RelationConfig{
		Name: "promoted_products", SizeMB: 2500,
		KeySpace: 2_000_000, Seed: 96,
	})
	if err != nil {
		log.Fatal(err)
	}
	s, err := sys.CreateRelation(transactions, tapejoin.RelationConfig{
		Name: "transactions", SizeMB: 10000,
		KeySpace: 2_000_000, Seed: 97,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ask the analytical advisor what is feasible with these
	// resources. Staging 2.5 GB of R to 500 MB of disk is not.
	fmt.Println("method ranking for this configuration:")
	ranked := sys.Advise(r.SizeMB(), s.SizeMB(), products.FreeMB(), transactions.FreeMB())
	for _, e := range ranked {
		if e.Feasible {
			fmt.Printf("  %-10s predicted %v (relative cost %.1f)\n",
				e.Method, e.Response.Round(0), e.RelativeCost)
		} else {
			fmt.Printf("  %-10s ruled out: %s\n", e.Method, e.Reason)
		}
	}
	best := ranked[0]
	if !best.Feasible {
		log.Fatal("no feasible method")
	}

	fmt.Printf("\nrunning %s ...\n", best.Method)
	res, err := sys.Join(best.Method, r, s)
	if err != nil {
		log.Fatal(err)
	}

	hours := res.Stats.Response.Hours()
	fmt.Printf("  joined %d MB with %d MB in %.1f simulated hours\n",
		s.SizeMB(), r.SizeMB(), hours)
	fmt.Printf("  (the paper's Join IV: 14 hours on the same class of hardware)\n")
	fmt.Printf("  matched transactions: %d\n", res.Stats.Matches)
	fmt.Printf("  tape traffic %.0f MB read / %.0f MB written; disk peak %.0f MB\n",
		res.Stats.TapeReadMB, res.Stats.TapeWrittenMB, res.Stats.DiskPeakMB)
	fmt.Printf("  relative cost %.1f x the bare tape read\n",
		float64(res.Stats.Response)/float64(sys.BareReadTime(float64(r.SizeMB()+s.SizeMB()))))
}

func mustTape(sys *tapejoin.System, name string, capacityMB int64) *tapejoin.Tape {
	t, err := sys.NewTape(name, capacityMB)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
