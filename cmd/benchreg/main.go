// Command benchreg is the benchmark regression harness: it parses
// `go test -bench` output into a JSON snapshot and compares runs
// against a previous snapshot, warning when a benchmark regressed
// beyond a threshold.
//
// Snapshot the current benchmarks:
//
//	go test -run='^$' -bench=. -benchtime=1x . | benchreg -snapshot BENCH.json
//
// Compare a fresh run against the checked-in snapshot (prints WARN
// lines for >15% regressions; -strict turns warnings into a non-zero
// exit):
//
//	go test -run='^$' -bench=. -benchtime=1x . | benchreg -compare BENCH.json
//
// Wall-clock ns/op is noisy across machines, so ns/op is compared
// only when both snapshots carry it and drift is reported as a
// warning. Custom metrics (the virtual-time quantities the benchmarks
// report via b.ReportMetric, e.g. "vsec" or "relcost") come from the
// deterministic simulation: any drift there is a real behavioral
// change, and is flagged at the same threshold.
//
// Metrics whose unit starts with "wall" measure the file backend's
// real clock and split two ways. Pure durations ("wall-sec") measure
// the machine, not the code: recorded in snapshots for the history,
// never compared. Dimensionless wall ratios ("wall-overlap", the
// cross-device overlap fraction) are stable enough to gate — measured
// run-to-run variation is under 10% (paperbench -exp obsload
// characterizes it) — so they are compared under the separate, wider
// -wall-threshold, loose enough to absorb machine-to-machine spread
// while still catching an overlap collapse.
//
// Metrics whose unit starts with "first_tuple" (the streaming
// experiment's time-to-first-tuple figures) are likewise recorded but
// never compared: a first pair's arrival time is a point event that
// moves with any intentional partition-layout change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's parsed result.
type Bench struct {
	// NsPerOp is wall time per iteration (noisy; compared loosely).
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds custom b.ReportMetric values by unit. These are
	// virtual quantities from the deterministic simulator.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the JSON document benchreg reads and writes.
type Snapshot struct {
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	snapshot := flag.String("snapshot", "", "write parsed benchmarks from stdin to this JSON file")
	compare := flag.String("compare", "", "compare benchmarks from stdin against this JSON snapshot")
	threshold := flag.Float64("threshold", 15, "regression warning threshold (%)")
	wallThreshold := flag.Float64("wall-threshold", 60, "drift threshold (%) for the compared wall-clock ratios (wall-overlap)")
	strict := flag.Bool("strict", false, "exit non-zero when any warning fires")
	wall := flag.Bool("ns", true, "also compare wall-clock ns/op (disable on shared CI runners)")
	flag.Parse()

	if (*snapshot == "") == (*compare == "") {
		fmt.Fprintln(os.Stderr, "benchreg: exactly one of -snapshot or -compare is required")
		os.Exit(2)
	}

	cur, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreg:", err)
		os.Exit(2)
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreg: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *snapshot != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreg:", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*snapshot, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchreg:", err)
			os.Exit(2)
		}
		fmt.Printf("benchreg: wrote %d benchmarks to %s\n", len(cur.Benchmarks), *snapshot)
		return
	}

	old, err := load(*compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreg:", err)
		os.Exit(2)
	}
	warnings := diff(old, cur, *threshold, *wallThreshold, *wall)
	for _, w := range warnings {
		fmt.Println(w)
	}
	fmt.Printf("benchreg: %d benchmarks compared against %s, %d warnings (threshold %.0f%%)\n",
		len(cur.Benchmarks), *compare, len(warnings), *threshold)
	if *strict && len(warnings) > 0 {
		os.Exit(1)
	}
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// parse extracts benchmark result lines from `go test -bench` output.
// A line looks like:
//
//	BenchmarkName-8   100   123456 ns/op   42.5 vsec   1.9 relcost
//
// i.e. name, iteration count, then (value, unit) pairs.
func parse(r io.Reader) (*Snapshot, error) {
	out := &Snapshot{Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so snapshots compare across
		// machines with different core counts.
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		b := Bench{Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
			} else if !strings.HasSuffix(unit, "/op") || isCustom(unit) {
				b.Metrics[unit] = v
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		out.Benchmarks[name] = b
	}
	return out, sc.Err()
}

// isCustom keeps custom per-op metrics (anything that is not the
// standard B/op and allocs/op memory counters).
func isCustom(unit string) bool {
	return unit != "B/op" && unit != "allocs/op"
}

// isWall reports whether a metric unit is a wall-clock measurement
// ("wall-sec", "wall-overlap", ...).
func isWall(unit string) bool {
	return strings.HasPrefix(unit, "wall")
}

// wallCompared lists the wall metrics stable enough to gate: ratios
// of wall quantities, whose machine dependence largely cancels. Every
// other wall metric is recorded in snapshots but never compared.
var wallCompared = map[string]bool{
	"wall-overlap": true,
}

// wallExcluded reports whether a unit is a wall metric outside the
// compared set.
func wallExcluded(unit string) bool {
	return isWall(unit) && !wallCompared[unit]
}

// firstTupleExcluded reports whether a unit is a time-to-first-tuple
// metric ("first_tuple-SYM-H", ...). These are deterministic virtual
// quantities, but point events: the arrival of a single pair shifts
// with any intentional change to partition layout or batch sizing, so
// gating them at the drift threshold would cry wolf on every plan
// tweak. Recorded in snapshots for the history, never compared.
func firstTupleExcluded(unit string) bool {
	return strings.HasPrefix(unit, "first_tuple")
}

// excluded reports whether a metric is recorded but never compared.
func excluded(unit string) bool {
	return wallExcluded(unit) || firstTupleExcluded(unit)
}

// diff reports regressions of cur against old beyond pct percent
// (wallPct percent for the compared wall ratios). Missing and new
// benchmarks are reported too: a silently vanished benchmark is how
// coverage rots.
func diff(old, cur *Snapshot, pct, wallPct float64, wall bool) []string {
	var warnings []string
	names := make([]string, 0, len(old.Benchmarks))
	for name := range old.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := old.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("WARN %s: benchmark missing from current run", name))
			continue
		}
		if wall && o.NsPerOp > 0 && c.NsPerOp > 0 {
			if d := change(o.NsPerOp, c.NsPerOp); d > pct {
				warnings = append(warnings, fmt.Sprintf(
					"WARN %s: ns/op regressed %.1f%% (%.0f -> %.0f)", name, d, o.NsPerOp, c.NsPerOp))
			}
		}
		units := make([]string, 0, len(o.Metrics))
		for unit := range o.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			if excluded(unit) {
				continue // pure wall-clock or first-tuple: recorded, never compared
			}
			limit := pct
			if isWall(unit) {
				limit = wallPct // compared wall ratio: wider gate
			}
			ov := o.Metrics[unit]
			cv, ok := c.Metrics[unit]
			if !ok {
				warnings = append(warnings, fmt.Sprintf("WARN %s: metric %q missing from current run", name, unit))
				continue
			}
			// Deterministic virtual metrics: drift in either direction
			// beyond the threshold is a behavioral change worth eyes.
			if d := change(ov, cv); d > limit {
				warnings = append(warnings, fmt.Sprintf(
					"WARN %s: %s drifted %.1f%% (%g -> %g, threshold %.0f%%)", name, unit, d, ov, cv, limit))
			}
		}
		for _, unit := range newKeys(o.Metrics, c.Metrics) {
			if excluded(unit) {
				continue
			}
			warnings = append(warnings, fmt.Sprintf(
				"WARN %s: metric %q missing from snapshot (re-snapshot to start guarding it)", name, unit))
		}
	}
	// A benchmark or metric the snapshot has never seen passes every
	// comparison vacuously; surface it so the snapshot gets refreshed
	// and the new quantity comes under guard.
	curNames := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := old.Benchmarks[name]; !ok {
			curNames = append(curNames, name)
		}
	}
	sort.Strings(curNames)
	for _, name := range curNames {
		warnings = append(warnings, fmt.Sprintf(
			"WARN %s: benchmark missing from snapshot (re-snapshot to start guarding it)", name))
	}
	return warnings
}

// newKeys returns the keys of cur absent from old, sorted.
func newKeys(old, cur map[string]float64) []string {
	var keys []string
	for k := range cur {
		if _, ok := old[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// change returns the absolute percent change from a to b.
func change(a, b float64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(b-a) / math.Abs(a) * 100
}
