package query

import (
	"testing"
)

// fuzzSchemas are the fixed schemas the fuzzer builds expressions
// against. Column 0 is the join key by the package's convention.
var fuzzRS = Schema{
	{Name: "k", Type: Int64}, {Name: "a", Type: Int64},
	{Name: "b", Type: Float64}, {Name: "c", Type: String},
}

var fuzzSS = Schema{
	{Name: "k", Type: Int64}, {Name: "x", Type: Int64},
	{Name: "y", Type: Float64}, {Name: "z", Type: String},
}

// fuzzRows are schema-conformant rows for evaluation.
var (
	fuzzRRow = Row{int64(7), int64(-3), 2.5, "abc"}
	fuzzSRow = Row{int64(7), int64(9), -0.5, "xyz"}
)

// exprBuilder derives an expression tree deterministically from fuzz
// bytes: each byte drives one construction decision, so the fuzzer
// explores tree shapes (including invalid column names and mixed-type
// comparisons) by mutating the input.
type exprBuilder struct {
	data []byte
	pos  int
}

func (b *exprBuilder) next() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	c := b.data[b.pos]
	b.pos++
	return c
}

// cols includes one name absent from either schema so Check's error
// path gets exercised.
var fuzzCols = []string{"k", "a", "b", "c", "x", "y", "z", "missing"}

func (b *exprBuilder) build(depth int) Expr {
	op := b.next()
	if depth <= 0 {
		op %= 4 // leaves only
	}
	switch op % 8 {
	case 0:
		return Col(SideR, fuzzCols[int(b.next())%len(fuzzCols)])
	case 1:
		return Col(SideS, fuzzCols[int(b.next())%len(fuzzCols)])
	case 2:
		return Lit(int64(int8(b.next())))
	case 3:
		if b.next()%2 == 0 {
			return Lit(float64(int8(b.next())) / 2)
		}
		return Lit(string(rune('a' + b.next()%26)))
	case 4:
		opc := CmpOp(b.next() % 6)
		return Cmp(opc, b.build(depth-1), b.build(depth-1))
	case 5:
		n := int(b.next()%3) + 1
		es := make([]Expr, n)
		for i := range es {
			es[i] = b.build(depth - 1)
		}
		return And(es...)
	case 6:
		n := int(b.next()%3) + 1
		es := make([]Expr, n)
		for i := range es {
			es[i] = b.build(depth - 1)
		}
		return Or(es...)
	default:
		return Not(b.build(depth - 1))
	}
}

// FuzzExpr builds arbitrary expression trees and asserts the
// evaluator's contract: Check never panics; a tree that passes Check
// must bind, evaluate without error on conforming rows, and produce a
// value of exactly the type Check reported. This is the guard against
// Check accepting a tree whose Eval would hit the unchecked int64
// assertions in the boolean operators.
func FuzzExpr(f *testing.F) {
	seeds := [][]byte{
		{},
		{0, 0},                               // R.k
		{4, 0, 0, 2, 1},                      // R.k = 1
		{7, 4, 0, 0, 1, 0},                   // NOT (R.k = S.k)
		{5, 2, 4, 0, 0, 1, 0, 4, 2, 3, 2, 5}, // AND of comparisons
		{6, 1, 7, 4, 0, 1, 1, 1},
		{4, 3, 2, 0, 3, 1, 0}, // string vs int comparison (must fail Check)
		{0, 7},                // missing column
		{5, 2, 2, 9, 2, 9},    // AND over int literals
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b := &exprBuilder{data: data}
		e := b.build(6)
		_ = e.String() // must not panic on any tree

		typ, err := e.Check(fuzzRS, fuzzSS)
		if err != nil {
			return
		}
		bound, err := bindExpr(e, fuzzRS, fuzzSS)
		if err != nil {
			t.Fatalf("Check accepted %v but bind failed: %v", e, err)
		}
		v, err := bound.Eval(fuzzRRow, fuzzSRow)
		if err != nil {
			t.Fatalf("Check accepted %v but Eval failed: %v", e, err)
		}
		got, err := typeOf(v)
		if err != nil {
			t.Fatalf("%v evaluated to unsupported value %T", e, v)
		}
		if got != typ {
			t.Fatalf("%v: Check said %v, Eval produced %v", e, typ, got)
		}
	})
}
