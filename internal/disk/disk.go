// Package disk simulates the secondary-storage complex of the paper: n
// disk drives with an aggregate sustained rate X_D, explicit file
// placement (the paper's "special disk striping routines" of Section
// 4), and a per-request positioning overhead that is negligible for
// multi-block requests but dominates small ones — the Section 3.2 cost
// model, where requests of 30+ blocks make seek and rotational latency
// negligible.
package disk

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/block"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config sets the performance and capacity model of a disk array.
type Config struct {
	// NumDisks is the number of drives (paper: n >= 2).
	NumDisks int
	// AggregateRate is the combined sustained transfer rate of all
	// drives in bytes per second (the paper's X_D). Each drive
	// sustains AggregateRate/NumDisks.
	AggregateRate float64
	// RequestOverhead is the per-request positioning cost (seek +
	// rotational latency) charged on each per-disk request.
	RequestOverhead sim.Duration
	// BlocksPerDisk is the scratch capacity of each drive in paper
	// blocks. Total array capacity D = NumDisks * BlocksPerDisk.
	BlocksPerDisk int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumDisks < 1 {
		return fmt.Errorf("disk: NumDisks %d < 1", c.NumDisks)
	}
	if c.AggregateRate <= 0 {
		return fmt.Errorf("disk: AggregateRate %v <= 0", c.AggregateRate)
	}
	if c.RequestOverhead < 0 {
		return errors.New("disk: negative RequestOverhead")
	}
	if c.BlocksPerDisk < 1 {
		return fmt.Errorf("disk: BlocksPerDisk %d < 1", c.BlocksPerDisk)
	}
	return nil
}

// SCSI2Pair returns a profile resembling the paper's platform: two
// drives on Fast SCSI-2 with an aggregate rate of twice the calibrated
// tape rate (the X_D = 2 X_T assumption of Section 5.3) and an ~18 ms
// positioning overhead per request.
func SCSI2Pair(totalBlocks int64) Config {
	return Config{
		NumDisks:        2,
		AggregateRate:   2 * 1.676e6,
		RequestOverhead: 18 * time.Millisecond,
		BlocksPerDisk:   (totalBlocks + 1) / 2,
	}
}

// ErrDiskFull is returned when an allocation exceeds the capacity of
// the disks a file is placed on.
var ErrDiskFull = errors.New("disk: out of space")

// LostError reports an operation that needed a permanently failed
// drive. It unwraps to fault.ErrDeviceLost so recovery layers can
// match it with errors.Is.
type LostError struct {
	Disk int
}

// Error implements error.
func (e *LostError) Error() string { return fmt.Sprintf("disk: drive disk%d lost", e.Disk) }

// Unwrap classifies the loss.
func (e *LostError) Unwrap() error { return fault.ErrDeviceLost }

// Stats accumulates array-wide activity.
type Stats struct {
	BlocksRead    int64
	BlocksWritten int64
	Requests      int64 // per-disk requests issued
	TransferTime  sim.Duration
	OverheadTime  sim.Duration
	// Fault-injection activity (see internal/fault).
	Faults    int64
	StallTime sim.Duration
}

type dev struct {
	id   int
	res  *sim.Resource
	used int64
	dead bool // permanently failed; extents on it are lost
}

// Array is a simulated disk array with explicit placement control.
type Array struct {
	k     *sim.Kernel
	cfg   Config
	disks []*dev

	// Used is the total blocks currently allocated; HighWater its max.
	Used      int64
	HighWater int64
	Stats     Stats

	rec      *trace.Recorder
	met      arrayMetrics
	inj      fault.Injector
	nextFile int
}

// arrayMetrics are the array's series exported to an obs.Registry.
// The handles are nil-safe, so instrumentation calls unconditionally.
type arrayMetrics struct {
	blocksRead    *obs.Counter
	blocksWritten *obs.Counter
	latency       *obs.Histogram
	used          *obs.Gauge
}

// NewArray returns an array attached to the kernel.
func NewArray(k *sim.Kernel, cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{k: k, cfg: cfg}
	for i := 0; i < cfg.NumDisks; i++ {
		a.disks = append(a.disks, &dev{id: i, res: sim.NewResource(k, fmt.Sprintf("disk%d", i), 1)})
	}
	return a, nil
}

// Config returns the array configuration.
func (a *Array) Config() Config { return a.cfg }

// SetRecorder attaches an event recorder (nil disables tracing).
func (a *Array) SetRecorder(r *trace.Recorder) { a.rec = r }

// SetInjector attaches a fault injector consulted on every file
// operation (nil disables injection).
func (a *Array) SetInjector(inj fault.Injector) { a.inj = inj }

// SetMetrics registers the array's counters, per-request latency
// histogram, and occupancy gauge in reg (nil detaches).
func (a *Array) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		a.met = arrayMetrics{}
		return
	}
	a.met = arrayMetrics{
		blocksRead:    reg.Counter("disk_blocks_read_total", "Blocks read from the disk array."),
		blocksWritten: reg.Counter("disk_blocks_written_total", "Blocks written to the disk array."),
		latency: reg.Histogram("disk_request_seconds",
			"Virtual latency of per-drive disk requests.", obs.DeviceLatencyBuckets),
		used: reg.Gauge("disk_used_blocks", "Blocks currently allocated on the array."),
	}
}

// DeadDisks returns the ids of permanently failed drives, in order.
func (a *Array) DeadDisks() []int {
	var out []int
	for _, d := range a.disks {
		if d.dead {
			out = append(out, d.id)
		}
	}
	return out
}

// LiveDisks returns the number of surviving drives.
func (a *Array) LiveDisks() int {
	n := 0
	for _, d := range a.disks {
		if !d.dead {
			n++
		}
	}
	return n
}

// record emits a per-drive trace event stamped with span — captured by
// the caller, because striped transfers run on helper processes that
// carry no span stack of their own.
func (a *Array) record(p *sim.Proc, id int, write bool, from sim.Time, blocks, span int64) {
	kind := trace.DiskRead
	if write {
		kind = trace.DiskWrite
	}
	a.rec.AddFor(p, trace.Event{
		Device: fmt.Sprintf("disk%d", id), Kind: kind,
		Start: from, End: p.Now(), Blocks: blocks, Span: span,
	})
}

// TotalCapacity returns the array capacity in blocks across surviving
// drives — a disk failure shrinks the effective D the planner sees.
func (a *Array) TotalCapacity() int64 {
	return int64(a.LiveDisks()) * a.cfg.BlocksPerDisk
}

// Free returns unallocated blocks across the whole array.
func (a *Array) Free() int64 { return a.TotalCapacity() - a.Used }

// ResetHighWater restarts peak-space tracking from the current usage.
// A session running several joins on one array calls this between
// runs so each reports its own disk footprint rather than the
// session's maximum.
func (a *Array) ResetHighWater() { a.HighWater = a.Used }

// BusyTime returns the summed busy time of all drives.
func (a *Array) BusyTime() sim.Duration {
	var t sim.Duration
	for _, d := range a.disks {
		t += d.res.BusyTime
	}
	return t
}

// perDiskRate returns one drive's sustained rate.
func (a *Array) perDiskRate() float64 {
	return a.cfg.AggregateRate / float64(a.cfg.NumDisks)
}

// transferTime returns the service time of an n-block request on one
// drive, including positioning overhead.
func (a *Array) transferTime(n int64) sim.Duration {
	bytes := float64(n) * block.VirtualSize
	return a.cfg.RequestOverhead + sim.Duration(bytes/a.perDiskRate()*float64(time.Second))
}

// File is a logical disk file striped round-robin over a set of
// drives. Reads and writes are charged to the owning drives in
// parallel: a request of n blocks over k drives completes in the time
// of the largest per-drive share, so large striped transfers run at
// the aggregate rate while single-block writes pay one drive's
// positioning overhead.
type File struct {
	a       *Array
	name    string
	disks   []*dev // placement, round-robin targets
	blocks  []block.Block
	perDisk []int64 // blocks charged to each placement drive
	freed   bool
}

// Create makes an empty file placed on the given drives (nil = all
// drives). Space is charged as the file grows.
func (a *Array) Create(name string, placement []int) (*File, error) {
	f := &File{a: a, name: fmt.Sprintf("%s#%d", name, a.nextFile)}
	a.nextFile++
	if placement == nil {
		// Default placement snapshots the surviving drives, so files
		// created after a disk failure spread over the live array.
		for _, d := range a.disks {
			if !d.dead {
				f.disks = append(f.disks, d)
			}
		}
		if len(f.disks) == 0 {
			return nil, fmt.Errorf("disk: file %q: no surviving drives", name)
		}
		return f, nil
	}
	if len(placement) == 0 {
		return nil, fmt.Errorf("disk: file %q: empty placement", name)
	}
	for _, id := range placement {
		if id < 0 || id >= len(a.disks) {
			return nil, fmt.Errorf("disk: file %q: no drive %d", name, id)
		}
		if a.disks[id].dead {
			return nil, &LostError{Disk: id}
		}
		f.disks = append(f.disks, a.disks[id])
	}
	return f, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Len returns the file length in blocks.
func (f *File) Len() int64 { return int64(len(f.blocks)) }

// shares splits an n-block transfer round-robin over the file's
// surviving drives, starting at the drive owning block offset off.
func (f *File) shares(off, n int64) []int64 {
	out := make([]int64, len(f.disks))
	live := make([]int, 0, len(f.disks))
	for i, d := range f.disks {
		if !d.dead {
			live = append(live, i)
		}
	}
	k := int64(len(live))
	if k == 0 {
		return out
	}
	base := n / k
	rem := n % k
	for _, i := range live {
		out[i] = base
	}
	// The remainder lands on the drives following the starting one.
	for i := int64(0); i < rem; i++ {
		out[live[(off+i)%k]]++
	}
	return out
}

// lostOn returns a dead drive holding extents of this file, if any.
func (f *File) lostOn() (int, bool) {
	for i, d := range f.disks {
		if d.dead && f.perDisk != nil && f.perDisk[i] > 0 {
			return d.id, true
		}
	}
	return 0, false
}

// Lost reports whether the file lost extents to a failed drive.
// Striping spreads every block range over all placement drives, so a
// lost file is unreadable regardless of offset.
func (f *File) Lost() bool {
	_, lost := f.lostOn()
	return lost
}

// markDead records a permanent drive failure.
func (a *Array) markDead(p *sim.Proc, id int) {
	d := a.disks[id]
	if d.dead {
		return
	}
	d.dead = true
	a.rec.AddFor(p, trace.Event{
		Device: fmt.Sprintf("disk%d", id), Kind: trace.Fault,
		Start: p.Now(), End: p.Now(), Note: "disk lost",
	})
}

// checkFaults consults the array's injector about one request before
// any time is charged: first the array-wide transfer path ("disk"),
// then each placement drive the request would touch (where a pending
// disk-failure rule can kill the drive). corrupt=true asks the caller
// to bit-flip the delivered read data.
func (f *File) checkFaults(p *sim.Proc, off, n int64, write bool) (corrupt bool, err error) {
	if id, lost := f.lostOn(); lost {
		return false, &LostError{Disk: id}
	}
	alive := 0
	for _, d := range f.disks {
		if !d.dead {
			alive++
		}
	}
	if alive == 0 {
		return false, &LostError{Disk: f.disks[0].id}
	}
	if f.a.inj == nil {
		return false, nil
	}
	dec := fault.Decide(f.a.inj, fault.Op{Device: "disk", Write: write, Addr: off, N: n, Now: p.Now()})
	if dec.Stall > 0 {
		f.a.Stats.Faults++
		f.a.Stats.StallTime += dec.Stall
		t0 := p.Now()
		p.Hold(dec.Stall)
		f.a.rec.AddFor(p, trace.Event{Device: "disk", Kind: trace.Fault, Start: t0, End: p.Now(), Note: "stall"})
	}
	if dec.Err != nil {
		f.a.Stats.Faults++
		return false, fmt.Errorf("disk: file %q: %w", f.name, dec.Err)
	}
	if dec.Corrupt {
		f.a.Stats.Faults++
		corrupt = true
	}
	sh := f.shares(off, n)
	for i, d := range f.disks {
		if sh[i] == 0 {
			continue
		}
		pd := fault.Decide(f.a.inj, fault.Op{
			Device: fmt.Sprintf("disk%d", d.id), Write: write,
			Addr: off, N: sh[i], Now: p.Now(),
		})
		if pd.Err == nil {
			continue
		}
		f.a.Stats.Faults++
		if errors.Is(pd.Err, fault.ErrDeviceLost) {
			f.a.markDead(p, d.id)
			return false, &LostError{Disk: d.id}
		}
		return false, fmt.Errorf("disk: file %q: %w", f.name, pd.Err)
	}
	return corrupt, nil
}

// doIO charges an n-block transfer at offset off across the file's
// drives, overlapping the per-drive requests in virtual time. write
// selects which stat to bump.
func (f *File) doIO(p *sim.Proc, off, n int64, write bool) {
	if n <= 0 {
		return
	}
	sh := f.shares(off, n)
	var single *dev
	singles := 0
	for i, d := range f.disks {
		if sh[i] > 0 {
			single = d
			singles++
		}
	}
	span := f.a.rec.SpanAt(p)
	if singles == 1 {
		// Fast path: one drive involved, no helper process needed.
		t := f.a.transferTime(n)
		f.a.Stats.Requests++
		f.a.Stats.OverheadTime += f.a.cfg.RequestOverhead
		f.a.Stats.TransferTime += t - f.a.cfg.RequestOverhead
		single.res.Acquire(p)
		t0 := p.Now()
		p.Hold(t)
		f.a.record(p, single.id, write, t0, n, span)
		f.a.met.latency.Observe(sim.Duration(p.Now() - t0).Seconds())
		single.res.Release(p)
	} else {
		active := make([]*sim.Proc, 0, singles)
		for i, d := range f.disks {
			cnt := sh[i]
			if cnt == 0 {
				continue
			}
			d, cnt := d, cnt
			t := f.a.transferTime(cnt)
			f.a.Stats.Requests++
			f.a.Stats.OverheadTime += f.a.cfg.RequestOverhead
			f.a.Stats.TransferTime += t - f.a.cfg.RequestOverhead
			child := p.Kernel().Spawn(f.name+"-io", func(c *sim.Proc) {
				d.res.Acquire(c)
				t0 := c.Now()
				c.Hold(t)
				f.a.record(c, d.id, write, t0, cnt, span)
				f.a.met.latency.Observe(sim.Duration(c.Now() - t0).Seconds())
				d.res.Release(c)
			})
			active = append(active, child)
		}
		if err := p.WaitAll(active...); err != nil {
			panic(err) // children cannot fail
		}
	}
	if write {
		f.a.Stats.BlocksWritten += n
		f.a.met.blocksWritten.Add(float64(n))
	} else {
		f.a.Stats.BlocksRead += n
		f.a.met.blocksRead.Add(float64(n))
	}
}

// Append writes blocks at the end of the file, blocking for the
// striped transfer time. It fails with ErrDiskFull when the placement
// drives lack space.
func (f *File) Append(p *sim.Proc, blks []block.Block) error {
	if f.freed {
		panic(fmt.Sprintf("disk: append to freed file %q", f.name))
	}
	n := int64(len(blks))
	if n == 0 {
		return nil
	}
	off := int64(len(f.blocks))
	if _, err := f.checkFaults(p, off, n, true); err != nil {
		return err
	}
	if err := f.charge(n); err != nil {
		return err
	}
	f.blocks = append(f.blocks, blks...)
	f.doIO(p, off, n, true)
	return nil
}

// charge allocates n blocks of space on the file's drives, filling the
// emptiest drive first so the array stays balanced no matter how many
// small bucket files grow and shrink concurrently. It fails only when
// the placement drives are genuinely out of space in total.
func (f *File) charge(n int64) error {
	k := len(f.disks)
	if f.perDisk == nil {
		f.perDisk = make([]int64, k)
	}
	var free int64
	for _, d := range f.disks {
		if d.dead {
			continue
		}
		free += f.a.cfg.BlocksPerDisk - d.used
	}
	if free < n {
		return fmt.Errorf("%w: file %q needs %d blocks, placement has %d free",
			ErrDiskFull, f.name, n, free)
	}
	wants := make([]int64, k)
	remaining := n
	for remaining > 0 {
		// Pick the drive with the most free space after pending wants.
		best, bestFree := -1, int64(0)
		for i, d := range f.disks {
			if d.dead {
				continue
			}
			df := f.a.cfg.BlocksPerDisk - d.used - wants[i]
			if df > bestFree {
				best, bestFree = i, df
			}
		}
		if best < 0 {
			panic("disk: free accounting inconsistent")
		}
		// Take an even share or whatever levels this drive with the
		// next-fullest, whichever is smaller, to avoid O(n) looping.
		take := remaining / int64(k-countFull(f.disks, wants, f.a.cfg.BlocksPerDisk))
		if take < 1 {
			take = 1
		}
		if take > bestFree {
			take = bestFree
		}
		if take > remaining {
			take = remaining
		}
		wants[best] += take
		remaining -= take
	}
	for i, d := range f.disks {
		d.used += wants[i]
		f.perDisk[i] += wants[i]
	}
	f.a.Used += n
	if f.a.Used > f.a.HighWater {
		f.a.HighWater = f.a.Used
	}
	f.a.met.used.Set(float64(f.a.Used))
	return nil
}

// countFull reports how many placement drives have no free space left
// after pending wants.
func countFull(disks []*dev, wants []int64, capPerDisk int64) int {
	full := 0
	for i, d := range disks {
		if d.dead || capPerDisk-d.used-wants[i] <= 0 {
			full++
		}
	}
	if full >= len(disks) {
		full = len(disks) - 1 // avoid division by zero; caller checked total free
	}
	return full
}

// ReadAt reads n blocks at offset off, blocking for the striped
// transfer time.
func (f *File) ReadAt(p *sim.Proc, off, n int64) ([]block.Block, error) {
	if f.freed {
		panic(fmt.Sprintf("disk: read of freed file %q", f.name))
	}
	if off < 0 || n < 0 || off+n > f.Len() {
		return nil, fmt.Errorf("disk: read [%d,%d) beyond len %d of %q", off, off+n, f.Len(), f.name)
	}
	corrupt, err := f.checkFaults(p, off, n, false)
	if err != nil {
		return nil, err
	}
	out := make([]block.Block, n)
	copy(out, f.blocks[off:off+n])
	f.doIO(p, off, n, false)
	if corrupt && n > 0 {
		// Bit-flip one delivered block without touching the stored
		// copy (block slices alias storage), so a re-read recovers.
		i := n / 2
		bad := append(block.Block(nil), out[i]...)
		bad[len(bad)-1] ^= 0xff
		out[i] = bad
	}
	return out, nil
}

// Free releases the file's space. Freeing costs no virtual time.
func (f *File) Free() {
	if f.freed {
		return
	}
	for i, d := range f.disks {
		if f.perDisk != nil {
			d.used -= f.perDisk[i]
		}
	}
	f.a.Used -= int64(len(f.blocks))
	f.a.met.used.Set(float64(f.a.Used))
	f.blocks = nil
	f.perDisk = nil
	f.freed = true
}
