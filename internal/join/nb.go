package join

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/disk"
	"repro/internal/sim"
)

// nbSplit computes the Section-6 memory split for Nested Block
// methods: 10% of M (at least one block) scans R, the rest buffers S.
func nbSplit(m int64) (mr, ms int64) {
	mr = m / 10
	if mr < 1 {
		mr = 1
	}
	return mr, m - mr
}

// copyRToDisk is Step I of every disk–tape Nested Block method:
// relation R is copied from tape to a striped disk file, staging
// through main memory.
func copyRToDisk(e *env, p *sim.Proc) (*disk.File, error) {
	f, err := e.disks.Create("R", nil)
	if err != nil {
		return nil, err
	}
	e.mem.acquire(e.res.MemoryBlocks)
	defer e.mem.release(e.res.MemoryBlocks)
	keep := e.filterR()
	err = readTape(p, e.driveR, e.spec.R.Region, e.res.MemoryBlocks,
		func(_ int64, blks []block.Block) error {
			blks, _ = filterRepack(blks, keep, e.spec.R.TuplesPerBlock, e.spec.R.Tag)
			return f.Append(p, blks)
		})
	if err != nil {
		return nil, err
	}
	e.stats.RScans++
	return f, nil
}

// scanRAndProbe performs the inner loop of a Nested Block iteration:
// scan the disk-resident R in mr-block requests and probe each R tuple
// against the in-memory table built over the current chunk of S.
func scanRAndProbe(e *env, p *sim.Proc, fR *disk.File, mr int64, table *hashTable) error {
	e.mem.acquire(mr)
	defer e.mem.release(mr)
	for off := int64(0); off < fR.Len(); off += mr {
		n := min64(mr, fR.Len()-off)
		blks, err := fR.ReadAt(p, off, n)
		if err != nil {
			return err
		}
		forEachTuple(blks, func(t block.Tuple) {
			table.probeWithR(p, e.sink, t)
		})
	}
	e.stats.RScans++
	return nil
}

// DTNB is Disk–Tape Nested Block Join (Section 5.1.1): sequential;
// copy R to disk, then for each memory-sized chunk of S, scan R.
type DTNB struct{}

// Name implements Method.
func (DTNB) Name() string { return "Disk-Tape Nested Block Join" }

// Symbol implements Method.
func (DTNB) Symbol() string { return "DT-NB" }

// Check implements Method: D >= |R| (Table 2).
func (DTNB) Check(spec Spec, res Resources) error {
	if res.DiskBlocks < spec.R.Region.N {
		return fmt.Errorf("%w: D=%d < |R|=%d", ErrNeedDiskForR, res.DiskBlocks, spec.R.Region.N)
	}
	if res.MemoryBlocks < 2 {
		return fmt.Errorf("%w: M=%d < 2", ErrNeedMemory, res.MemoryBlocks)
	}
	return nil
}

func (DTNB) run(e *env, p *sim.Proc) error {
	fR, err := copyRToDisk(e, p)
	if err != nil {
		return err
	}
	e.markStepI(p)

	mr, ms := nbSplit(e.res.MemoryBlocks)
	s := e.spec.S.Region
	for off := int64(0); off < s.N; off += ms {
		n := min64(ms, s.N-off)
		e.mem.acquire(n)
		blks, err := e.driveS.ReadAt(p, s.Start+addr(off), n)
		if err != nil {
			return err
		}
		table := newHashTable()
		table.addBlocksFiltered(blks, e.filterS())
		if err := scanRAndProbe(e, p, fR, mr, table); err != nil {
			return err
		}
		e.mem.release(n)
		e.stats.Iterations++
	}
	fR.Free()
	return nil
}

// CDTNBMB is Concurrent Disk–Tape Nested Block Join with memory
// buffering (Section 5.1.3): two memory buffers for S let the next
// chunk stream from tape while the previous chunk joins with R, at the
// price of halving the chunk size.
type CDTNBMB struct{}

// Name implements Method.
func (CDTNBMB) Name() string {
	return "Concurrent Disk-Tape Nested Block Join with Memory Buffering"
}

// Symbol implements Method.
func (CDTNBMB) Symbol() string { return "CDT-NB/MB" }

// Check implements Method: D >= |R|, M splits into Mr plus two chunks.
func (CDTNBMB) Check(spec Spec, res Resources) error {
	if res.DiskBlocks < spec.R.Region.N {
		return fmt.Errorf("%w: D=%d < |R|=%d", ErrNeedDiskForR, res.DiskBlocks, spec.R.Region.N)
	}
	if _, ms := nbSplit(res.MemoryBlocks); ms < 2 {
		return fmt.Errorf("%w: M=%d cannot hold two S buffers", ErrNeedMemory, res.MemoryBlocks)
	}
	return nil
}

func (CDTNBMB) run(e *env, p *sim.Proc) error {
	fR, err := copyRToDisk(e, p)
	if err != nil {
		return err
	}
	e.markStepI(p)

	mr, msTotal := nbSplit(e.res.MemoryBlocks)
	ms := msTotal / 2 // each of the two buffers
	s := e.spec.S.Region

	type chunk struct {
		blks []block.Block
		n    int64
	}
	// Two physical buffers: the reader may fill one while the joiner
	// drains the other. Interleaving is impossible here because the
	// joiner needs its chunk intact for the whole iteration (Section
	// 5.1.3 footnote), hence the buffer-count container.
	bufs := sim.NewContainer(e.k, "nb-bufs", 2, 2)
	q := sim.NewQueue[chunk](e.k, "nb-chunks", 1)

	reader := e.k.Spawn("s-reader", func(rp *sim.Proc) {
		for off := int64(0); off < s.N; off += ms {
			n := min64(ms, s.N-off)
			bufs.Get(rp, 1)
			e.mem.acquire(n)
			blks, err := e.driveS.ReadAt(rp, s.Start+addr(off), n)
			if err != nil {
				panic(err)
			}
			q.Send(rp, chunk{blks, n})
		}
		q.Close(rp)
	})

	for {
		c, ok := q.Recv(p)
		if !ok {
			break
		}
		table := newHashTable()
		table.addBlocksFiltered(c.blks, e.filterS())
		if err := scanRAndProbe(e, p, fR, mr, table); err != nil {
			return err
		}
		e.mem.release(c.n)
		bufs.Put(p, 1)
		e.stats.Iterations++
	}
	if err := p.Wait(reader); err != nil {
		return err
	}
	fR.Free()
	return nil
}

// CDTNBDB is Concurrent Disk–Tape Nested Block Join with disk
// buffering (Section 5.1.3): S is staged through a double-buffered
// disk area, so chunks are full memory size (twice CDT-NB/MB's) while
// tape input still overlaps the join.
type CDTNBDB struct{}

// Name implements Method.
func (CDTNBDB) Name() string {
	return "Concurrent Disk-Tape Nested Block Join with Disk Buffering"
}

// Symbol implements Method.
func (CDTNBDB) Symbol() string { return "CDT-NB/DB" }

// Check implements Method: D >= |R| + |S_i| (Table 2).
func (CDTNBDB) Check(spec Spec, res Resources) error {
	_, ms := nbSplit(res.MemoryBlocks)
	if ms < 1 {
		return fmt.Errorf("%w: M=%d", ErrNeedMemory, res.MemoryBlocks)
	}
	need := spec.R.Region.N + ms
	if res.DiskBlocks < need {
		return fmt.Errorf("%w: D=%d < |R|+|S_i|=%d", ErrNeedDiskForR, res.DiskBlocks, need)
	}
	return nil
}

func (CDTNBDB) run(e *env, p *sim.Proc) error {
	fR, err := copyRToDisk(e, p)
	if err != nil {
		return err
	}
	e.markStepI(p)

	mr, ms := nbSplit(e.res.MemoryBlocks)
	dbuf := e.newDoubleBuffer("s-dbuf", ms)
	chunkCap := dbuf.ChunkCapacity()
	s := e.spec.S.Region

	type chunk struct {
		iter int64
		file *disk.File
		n    int64
	}
	q := sim.NewQueue[chunk](e.k, "db-chunks", 1)

	producer := e.k.Spawn("s-stager", func(rp *sim.Proc) {
		iter := int64(0)
		for off := int64(0); off < s.N; off += chunkCap {
			n := min64(chunkCap, s.N-off)
			f, err := e.disks.Create("schunk", nil)
			if err != nil {
				panic(err)
			}
			// Stage tape -> disk through a small transfer buffer
			// (ignored in M per Section 6), acquiring buffer space as
			// the previous iteration releases it.
			for sub := int64(0); sub < n; sub += e.res.IOChunk {
				g := min64(e.res.IOChunk, n-sub)
				dbuf.Acquire(rp, iter, g)
				blks, err := e.driveS.ReadAt(rp, s.Start+addr(off+sub), g)
				if err != nil {
					panic(err)
				}
				if err := f.Append(rp, blks); err != nil {
					panic(err)
				}
			}
			q.Send(rp, chunk{iter, f, n})
			iter++
		}
		q.Close(rp)
	})

	for {
		c, ok := q.Recv(p)
		if !ok {
			break
		}
		// Read the staged chunk into memory, releasing buffer space
		// as it is consumed so the producer can refill it (the
		// interleaved scheme of Section 4).
		e.mem.acquire(c.n)
		table := newHashTable()
		keepS := e.filterS()
		for sub := int64(0); sub < c.n; sub += e.res.IOChunk {
			g := min64(e.res.IOChunk, c.n-sub)
			blks, err := c.file.ReadAt(p, sub, g)
			if err != nil {
				return err
			}
			table.addBlocksFiltered(blks, keepS)
			dbuf.Release(p, c.iter, g)
		}
		c.file.Free()
		if err := scanRAndProbe(e, p, fR, mr, table); err != nil {
			return err
		}
		e.mem.release(c.n)
		e.stats.Iterations++
	}
	if err := p.Wait(producer); err != nil {
		return err
	}
	fR.Free()
	return nil
}
