package exp

import (
	"fmt"
	"time"

	tapejoin "repro"
)

// WorkloadRow is one policy of the multi-query workload experiment.
type WorkloadRow struct {
	Policy       string
	Makespan     time.Duration
	MeanWait     time.Duration
	Mounts       int
	SharedPasses int
	CacheHitRate float64
	TapeReadMB   float64
}

// workloadBatch builds the experiment's 9-query batch on a fresh
// system: three S cartridges (each holding one S relation), two R
// cartridges with four R relations, and a submission order that
// alternates S cartridges on nearly every query. FIFO therefore pays
// a cartridge exchange per query, while the mount-aware order needs
// one S mount per cartridge, three queries share S1's relation on one
// tape pass, and R1 repeats enough to earn staging-cache hits.
func workloadBatch(scale float64) (*tapejoin.System, []tapejoin.BatchQuery, error) {
	sys, err := newSystem(tapejoin.Config{
		MemoryMB: scaleMBf(16, scale),
		DiskMB:   float64(scaleMB(128, scale)),
	})
	if err != nil {
		return nil, nil, err
	}
	sMB := scaleMB(64, scale)
	rMB := scaleMB(4, scale)

	var sRel [3]*tapejoin.Relation
	for i := range sRel {
		t, err := sys.NewTape(fmt.Sprintf("S%d", i+1), sMB+2)
		if err != nil {
			return nil, nil, err
		}
		sRel[i], err = sys.CreateRelation(t, tapejoin.RelationConfig{
			Name: fmt.Sprintf("S%d", i+1), SizeMB: sMB,
			KeySpace: 1 << 18, Seed: int64(100 + i),
		})
		if err != nil {
			return nil, nil, err
		}
	}
	var rRel [4]*tapejoin.Relation
	for i := range rRel {
		t, err := sys.NewTape(fmt.Sprintf("RA%d", i/2), 4*rMB+2)
		if err != nil {
			return nil, nil, err
		}
		rRel[i], err = sys.CreateRelation(t, tapejoin.RelationConfig{
			Name: fmt.Sprintf("R%d", i+1), SizeMB: rMB,
			KeySpace: 1 << 18, Seed: int64(10 + i),
		})
		if err != nil {
			return nil, nil, err
		}
	}

	mk := func(r, s int) tapejoin.BatchQuery {
		return tapejoin.BatchQuery{
			Method: tapejoin.CDTNBMB, R: rRel[r], S: sRel[s],
		}
	}
	queries := []tapejoin.BatchQuery{
		mk(0, 0), mk(2, 1), mk(0, 0), mk(1, 2), mk(1, 0),
		mk(3, 1), mk(0, 0), mk(2, 2), mk(0, 1),
	}
	return sys, queries, nil
}

// Workload runs the experiment's batch under each scheduling policy
// on identical fresh systems and reports the makespan comparison:
// FIFO thrashes cartridges, mount-aware amortizes mounts, shared-scan
// additionally fuses same-S queries onto single tape passes.
func Workload(scale float64) ([]WorkloadRow, error) {
	policies := []tapejoin.BatchPolicy{
		tapejoin.BatchFIFO, tapejoin.BatchMountAware, tapejoin.BatchSharedScan,
	}
	var rows []WorkloadRow
	for _, policy := range policies {
		sys, queries, err := workloadBatch(scale)
		if err != nil {
			return nil, err
		}
		rep, err := sys.RunBatch(queries, tapejoin.BatchOptions{
			Policy:  policy,
			CacheMB: float64(scaleMB(32, scale)),
		})
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", policy, err)
		}
		var wait time.Duration
		for _, qr := range rep.Queries {
			if qr.Failed {
				return nil, fmt.Errorf("workload %s: query %s failed: %s", policy, qr.ID, qr.Reason)
			}
			wait += qr.Wait
		}
		hitRate := 0.0
		if lookups := rep.CacheHits + rep.CacheMisses; lookups > 0 {
			hitRate = float64(rep.CacheHits) / float64(lookups)
		}
		rows = append(rows, WorkloadRow{
			Policy:       string(rep.Policy),
			Makespan:     rep.Makespan,
			MeanWait:     wait / time.Duration(len(rep.Queries)),
			Mounts:       rep.Mounts,
			SharedPasses: rep.SharedPasses,
			CacheHitRate: hitRate,
			TapeReadMB:   rep.TapeReadMB,
		})
	}
	return rows, nil
}

// FormatWorkload renders the workload experiment as a text table.
func FormatWorkload(rows []WorkloadRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Policy,
			secs(r.Makespan),
			secs(r.MeanWait),
			fmt.Sprintf("%d", r.Mounts),
			fmt.Sprintf("%d", r.SharedPasses),
			fmt.Sprintf("%.0f%%", 100*r.CacheHitRate),
			fmt.Sprintf("%.0f", r.TapeReadMB),
		})
	}
	return FormatTable(
		[]string{"Policy", "Makespan", "Mean wait", "Mounts", "Shared passes", "Cache hits", "Tape read (MB)"},
		out,
	)
}
