// Command tracecheck validates the observability outputs the tools
// export: Chrome trace_event JSON from tapejoin -trace-out (or any
// Perfetto-loadable trace following the same subset), JSON Lines span
// streams, and Prometheus text exposition scraped from the obs
// server. It decodes each file and asserts the structural invariants
// the exporters guarantee. Used by CI to keep the exports loadable
// and scrapable.
//
//	tracecheck trace.json [more.json ...]       # Chrome trace schema
//	tracecheck -wall trace.json                 # + wall-clock span args
//	tracecheck -jsonl [-wall] run.jsonl         # JSON Lines schema
//	tracecheck -prom metrics.txt                # Prometheus text format
//
// -wall requires the dual-clock fields a wall-clocked (file backend)
// run stamps: every phase span must carry wall_start_s/wall_dur_s (or
// wall_start_s/wall_end_s in JSONL), non-negative and monotone in
// span-open order.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	jsonl := flag.Bool("jsonl", false, "validate JSON Lines span/event streams instead of Chrome traces")
	prom := flag.Bool("prom", false, "validate Prometheus text exposition instead of Chrome traces")
	wall := flag.Bool("wall", false, "require wall-clock fields on spans (file-backend runs)")
	flag.Parse()
	if flag.NArg() < 1 || (*jsonl && *prom) {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-jsonl | -prom] [-wall] <file> [...]")
		os.Exit(2)
	}
	check := func(data []byte) error {
		switch {
		case *prom:
			return obs.CheckPromText(data)
		case *jsonl:
			return obs.CheckJSONL(data, *wall)
		default:
			if err := obs.CheckChromeTrace(data); err != nil {
				return err
			}
			if *wall {
				return obs.CheckChromeTraceWall(data)
			}
			return nil
		}
	}
	bad := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			bad = true
			continue
		}
		if err := check(data); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}
