package join

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/block"
	"repro/internal/device/filedev"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/tape"
)

// outputTriple identifies one joined tuple pair by join key and a hash
// of each side's payload, so the oracle compares tuple *instances*,
// not just key cardinalities.
type outputTriple struct {
	key    uint64
	rP, sP uint64
}

// oracleSink records every emitted pair as an outputTriple.
type oracleSink struct {
	triples []outputTriple
}

func (o *oracleSink) Emit(_ *sim.Proc, r, s block.Tuple) {
	h := func(b []byte) uint64 {
		f := fnv.New64a()
		f.Write(b)
		return f.Sum64()
	}
	o.triples = append(o.triples, outputTriple{key: r.Key, rP: h(r.Payload), sP: h(s.Payload)})
}

func (o *oracleSink) Count() int64 { return int64(len(o.triples)) }

// sorted returns the multiset in canonical order.
func (o *oracleSink) sorted() []outputTriple {
	out := append([]outputTriple(nil), o.triples...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.key != b.key {
			return a.key < b.key
		}
		if a.rP != b.rP {
			return a.rP < b.rP
		}
		return a.sP < b.sP
	})
	return out
}

// oracleCase is one generated workload for the cross-method oracle.
type oracleCase struct {
	name                 string
	rBlocks, sBlocks     int64
	tuplesPerBlock       int
	keySpace             uint64
	hotFraction, hotProb float64
	zipfTheta            float64
	skewAware            bool
	memBlocks            int64 // overrides the oracle's default M when nonzero
	seed                 int64
}

// buildCase regenerates the case's relations on fresh media. The
// generators are deterministic in their config, so every method sees
// byte-identical input data even though tape-tape methods consume
// scratch space on their own copy.
func (c oracleCase) build(t *testing.T) Spec {
	t.Helper()
	mR := tape.NewMedia("tapeR", c.rBlocks+c.sBlocks+256)
	mS := tape.NewMedia("tapeS", c.sBlocks+c.rBlocks+256)
	r, err := relation.WriteToTape(relation.Config{
		Name: "R", Tag: 1, Blocks: c.rBlocks, TuplesPerBlock: c.tuplesPerBlock,
		KeySpace: c.keySpace, HotFraction: c.hotFraction, HotProb: c.hotProb,
		ZipfTheta: c.zipfTheta, PayloadBytes: 8, Seed: c.seed,
	}, mR)
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: c.sBlocks, TuplesPerBlock: c.tuplesPerBlock,
		KeySpace: c.keySpace, HotFraction: c.hotFraction, HotProb: c.hotProb,
		ZipfTheta: c.zipfTheta, PayloadBytes: 8, Seed: c.seed + 1,
	}, mS)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{R: r, S: s}
}

// oracleBackends lists the storage backends the oracle exercises: the
// virtual-time simulator and the file backend against real OS files in
// a per-test temp directory. Every backend must yield the identical
// output multiset — the backends move the same blocks, only the
// clocks differ.
func oracleBackends() []struct {
	name string
	res  func(t *testing.T) Resources
} {
	return []struct {
		name string
		res  func(t *testing.T) Resources
	}{
		{"sim", func(t *testing.T) Resources { return fastRes(24, 1024) }},
		{"file", func(t *testing.T) Resources {
			res := fastRes(24, 1024)
			res.Backend = filedev.New(t.TempDir())
			return res
		}},
	}
}

// TestCrossMethodEquivalenceOracle is the equivalence oracle: all
// seven paper methods plus the TT-SM baseline must produce the
// identical multiset of joined tuple pairs on the same input, across
// sizes, skews, seeds and storage backends. Any divergence in
// dataflow — a dropped chunk, a double-probed bucket, an off-by-one
// region, a backend mis-spooling a cartridge — shows up as a multiset
// mismatch.
func TestCrossMethodEquivalenceOracle(t *testing.T) {
	cases := []oracleCase{
		{name: "tiny-dense", rBlocks: 8, sBlocks: 24, tuplesPerBlock: 4, keySpace: 64, seed: 1},
		{name: "small-sparse", rBlocks: 16, sBlocks: 64, tuplesPerBlock: 3, keySpace: 4096, seed: 7},
		{name: "skewed", rBlocks: 16, sBlocks: 48, tuplesPerBlock: 4, keySpace: 256,
			hotFraction: 0.1, hotProb: 0.8, seed: 13},
		{name: "mid", rBlocks: 24, sBlocks: 96, tuplesPerBlock: 5, keySpace: 150, seed: 23},
		// Zipf 0.99 pins correctness under real key skew on both
		// backends: once with the uniform planner (multi-load
		// fallback), once with skew-aware partitioning (sketch,
		// heavy-hitter isolation and bucket splitting) — the output
		// multiset must not move.
		// Memory is squeezed to M=10 so the uniform planner's largest
		// bucket overflows one load and the skew-aware twin really
		// repairs the plan rather than leaving it trivial.
		{name: "zipf99", rBlocks: 64, sBlocks: 192, tuplesPerBlock: 4, keySpace: 4096,
			zipfTheta: 0.99, memBlocks: 10, seed: 41},
		{name: "zipf99-skewaware", rBlocks: 64, sBlocks: 192, tuplesPerBlock: 4, keySpace: 4096,
			zipfTheta: 0.99, skewAware: true, memBlocks: 10, seed: 41},
	}
	// Randomized extension: a fixed-seed generator adds cases so the
	// oracle explores fresh size/skew/seed combinations without losing
	// reproducibility.
	rng := rand.New(rand.NewSource(20260806))
	for i := 0; i < 3; i++ {
		c := oracleCase{
			name:           fmt.Sprintf("rand%d", i),
			rBlocks:        8 + rng.Int63n(24),
			sBlocks:        32 + rng.Int63n(80),
			tuplesPerBlock: 2 + rng.Intn(5),
			keySpace:       uint64(32 + rng.Intn(1000)),
			seed:           rng.Int63n(1 << 30),
		}
		if rng.Intn(2) == 1 {
			c.hotFraction = 0.05 + 0.3*rng.Float64()
			c.hotProb = 0.5 + 0.4*rng.Float64()
		}
		cases = append(cases, c)
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var want []outputTriple
			var wantFrom string
			for _, be := range oracleBackends() {
				for _, m := range AllMethods() {
					spec := c.build(t)
					sink := &oracleSink{}
					// Generous M and D so every method is feasible at every
					// case size (GH needs M >= sqrt(|R|), NB/DB needs
					// D >= |R| + 0.9M).
					res := be.res(t)
					res.SkewAware = c.skewAware
					if c.memBlocks != 0 {
						res.MemoryBlocks = c.memBlocks
					}
					if _, err := Run(m, spec, res, sink); err != nil {
						t.Fatalf("%s/%s: %v", be.name, m.Symbol(), err)
					}
					got := sink.sorted()
					from := be.name + "/" + m.Symbol()
					if want == nil {
						if len(got) == 0 {
							t.Fatalf("%s produced no output; oracle case is degenerate", from)
						}
						want, wantFrom = got, from
						continue
					}
					if len(got) != len(want) {
						t.Fatalf("%s emitted %d pairs, %s emitted %d",
							from, len(got), wantFrom, len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s diverges from %s at pair %d: %+v vs %+v",
								from, wantFrom, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}
