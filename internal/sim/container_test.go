package sim

import (
	"testing"
	"time"
)

func TestContainerGetPutBasics(t *testing.T) {
	k := NewKernel()
	c := NewContainer(k, "pool", 10, 10)
	k.Spawn("a", func(p *Proc) {
		c.Get(p, 4)
		if c.Level() != 6 {
			t.Errorf("level = %d, want 6", c.Level())
		}
		if c.Free() != 4 {
			t.Errorf("free = %d, want 4", c.Free())
		}
		c.Put(p, 4)
		if c.Level() != 10 {
			t.Errorf("level = %d, want 10", c.Level())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 10 || c.Name() != "pool" {
		t.Fatalf("capacity=%d name=%q", c.Capacity(), c.Name())
	}
}

func TestContainerGetBlocksUntilPut(t *testing.T) {
	k := NewKernel()
	c := NewContainer(k, "pool", 10, 0)
	var gotAt Time
	k.Spawn("consumer", func(p *Proc) {
		c.Get(p, 5)
		gotAt = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Hold(3 * time.Second)
		c.Put(p, 5)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAt != Time(3*time.Second) {
		t.Fatalf("got at %v, want 3s", gotAt)
	}
}

func TestContainerPutBlocksUntilRoom(t *testing.T) {
	k := NewKernel()
	c := NewContainer(k, "pool", 10, 10)
	var putAt Time
	k.Spawn("producer", func(p *Proc) {
		c.Put(p, 3)
		putAt = p.Now()
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Hold(2 * time.Second)
		c.Get(p, 3)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if putAt != Time(2*time.Second) {
		t.Fatalf("put at %v, want 2s", putAt)
	}
}

func TestContainerFIFOGetters(t *testing.T) {
	// A large get at the head blocks later smaller gets (no overtaking).
	k := NewKernel()
	c := NewContainer(k, "pool", 10, 0)
	var order []string
	k.Spawn("big", func(p *Proc) {
		c.Get(p, 8)
		order = append(order, "big")
	})
	k.Spawn("small", func(p *Proc) {
		p.Hold(time.Millisecond)
		c.Get(p, 1)
		order = append(order, "small")
	})
	k.Spawn("producer", func(p *Proc) {
		p.Hold(time.Second)
		c.Put(p, 2) // not enough for big; small must still wait
		p.Hold(time.Second)
		c.Put(p, 7) // now big (8) proceeds, then small (1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v", order)
	}
}

func TestContainerPingPong(t *testing.T) {
	// Producer/consumer streaming 100 units through a 10-unit container.
	k := NewKernel()
	c := NewContainer(k, "buf", 10, 0)
	var received int64
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Hold(time.Millisecond)
			c.Put(p, 5)
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		for received < 100 {
			c.Get(p, 5)
			received += 5
			p.Hold(time.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 100 {
		t.Fatalf("received = %d, want 100", received)
	}
	if c.Level() != 0 {
		t.Fatalf("level = %d, want 0", c.Level())
	}
}

func TestContainerHighWater(t *testing.T) {
	k := NewKernel()
	c := NewContainer(k, "pool", 100, 0)
	k.Spawn("a", func(p *Proc) {
		c.Put(p, 30)
		c.Put(p, 40)
		c.Get(p, 60)
		c.Put(p, 10)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.HighWater != 70 {
		t.Fatalf("high water = %d, want 70", c.HighWater)
	}
}

func TestContainerTryGet(t *testing.T) {
	k := NewKernel()
	c := NewContainer(k, "pool", 10, 5)
	k.Spawn("a", func(p *Proc) {
		if !c.TryGet(p, 5) {
			t.Error("TryGet(5) should succeed")
		}
		if c.TryGet(p, 1) {
			t.Error("TryGet(1) on empty should fail")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestContainerZeroOps(t *testing.T) {
	k := NewKernel()
	c := NewContainer(k, "pool", 10, 0)
	k.Spawn("a", func(p *Proc) {
		c.Get(p, 0) // must not block even when empty
		c.Put(p, 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestContainerOversizeRequestPanics(t *testing.T) {
	k := NewKernel()
	c := NewContainer(k, "pool", 10, 0)
	k.Spawn("a", func(p *Proc) { c.Get(p, 11) })
	if err := k.Run(); err == nil {
		t.Fatal("expected captured panic for Get > capacity")
	}
}

func TestContainerGetUnblocksPutter(t *testing.T) {
	// Full container; a blocked Put proceeds when a Get makes room,
	// and that Put's units can satisfy a subsequent Get.
	k := NewKernel()
	c := NewContainer(k, "pool", 10, 10)
	var done []string
	k.Spawn("putter", func(p *Proc) {
		c.Put(p, 4)
		done = append(done, "put")
	})
	k.Spawn("getter", func(p *Proc) {
		p.Hold(time.Second)
		c.Get(p, 4)
		done = append(done, "get1")
		c.Get(p, 4)
		done = append(done, "get2")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Fatalf("done = %v", done)
	}
	if c.Level() != 6 {
		t.Fatalf("level = %d, want 6", c.Level())
	}
}
