// Package trace records device-level I/O events of a simulated join
// run and renders them as a text timeline, making the parallel-I/O
// overlap that the paper's concurrent methods achieve directly
// visible: which device was busy when, with what, and where the
// serialization points are.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind classifies a device event.
type Kind int

// Event kinds.
const (
	TapeRead Kind = iota
	TapeWrite
	TapeSeek
	TapeExchange
	DiskRead
	DiskWrite
	Fault   // an injected fault or device stall hit the run
	Retry   // recovery work: backoff and re-reads after a fault
	Degrade // a permanent device loss forced a re-plan
	Mark    // phase boundaries and other annotations
)

func (k Kind) String() string {
	switch k {
	case TapeRead:
		return "tape-read"
	case TapeWrite:
		return "tape-write"
	case TapeSeek:
		return "tape-seek"
	case TapeExchange:
		return "tape-exchange"
	case DiskRead:
		return "disk-read"
	case DiskWrite:
		return "disk-write"
	case Fault:
		return "fault"
	case Retry:
		return "retry"
	case Degrade:
		return "degrade"
	case Mark:
		return "mark"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// glyph is the timeline character for the kind.
func (k Kind) glyph() byte {
	switch k {
	case TapeRead, DiskRead:
		return 'r'
	case TapeWrite, DiskWrite:
		return 'w'
	case TapeSeek:
		return 's'
	case TapeExchange:
		return 'x'
	case Fault:
		return '!'
	case Retry:
		return '~'
	case Degrade:
		return 'X'
	}
	return '|'
}

// Event is one device activity interval.
type Event struct {
	// Device names the device, e.g. "tape:R" or "disk".
	Device string
	// Kind classifies the activity.
	Kind Kind
	// Start and End bound the interval in virtual time.
	Start, End sim.Time
	// Blocks is the transfer size, when applicable.
	Blocks int64
	// Span is the obs span ID of the join phase that issued the event,
	// or 0 when unattributed.
	Span int64
	// Note annotates marks.
	Note string
}

// Duration returns the event's length.
func (e Event) Duration() sim.Duration { return sim.Duration(e.End - e.Start) }

// SpanSource resolves the phase span currently open on a simulation
// process. It is implemented by obs.Tracker; the interface lives here
// so that devices depend only on trace.
type SpanSource interface {
	ActiveSpan(p *sim.Proc) int64
}

// Recorder accumulates events. A nil *Recorder is valid and records
// nothing, so devices can call it unconditionally.
type Recorder struct {
	Events []Event
	// Spans, when set, stamps events added via AddFor with the issuing
	// process's active phase span.
	Spans SpanSource
}

// Add appends an event. No-op on a nil recorder.
func (r *Recorder) Add(e Event) {
	if r == nil {
		return
	}
	r.Events = append(r.Events, e)
}

// AddFor appends an event issued by process p, stamping it with p's
// active phase span unless the event already carries one. No-op on a
// nil recorder.
func (r *Recorder) AddFor(p *sim.Proc, e Event) {
	if r == nil {
		return
	}
	if e.Span == 0 && r.Spans != nil {
		e.Span = r.Spans.ActiveSpan(p)
	}
	r.Events = append(r.Events, e)
}

// SpanAt returns the phase span open on p, for callers that spawn
// helper processes and must stamp the helpers' events explicitly.
func (r *Recorder) SpanAt(p *sim.Proc) int64 {
	if r == nil || r.Spans == nil {
		return 0
	}
	return r.Spans.ActiveSpan(p)
}

// Mark records a zero-width annotation at time t.
func (r *Recorder) Mark(t sim.Time, note string) {
	r.Add(Event{Device: "-", Kind: Mark, Start: t, End: t, Note: note})
}

// Devices returns the distinct device names, sorted.
func (r *Recorder) Devices() []string {
	if r == nil {
		return nil
	}
	set := map[string]bool{}
	for _, e := range r.Events {
		if e.Kind != Mark {
			set[e.Device] = true
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// BusyTime returns the device's total busy time. Overlapping events —
// a retry backoff spanning the stalled read it re-issues — are merged
// before summing, so busy time never exceeds wall-clock time.
func (r *Recorder) BusyTime(device string) sim.Duration {
	if r == nil {
		return 0
	}
	type iv struct{ s, t sim.Time }
	var ivs []iv
	for _, e := range r.Events {
		if e.Device == device && e.Kind != Mark && e.End > e.Start {
			ivs = append(ivs, iv{e.Start, e.End})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].s != ivs[j].s {
			return ivs[i].s < ivs[j].s
		}
		return ivs[i].t < ivs[j].t
	})
	var total sim.Duration
	var cur iv
	for i, v := range ivs {
		if i == 0 || v.s > cur.t {
			total += sim.Duration(cur.t - cur.s)
			cur = v
			continue
		}
		if v.t > cur.t {
			cur.t = v.t
		}
	}
	total += sim.Duration(cur.t - cur.s)
	return total
}

// Timeline renders the recorded events as a text Gantt chart of width
// columns spanning [0, end]: one row per device, 'r' for reads, 'w'
// for writes, 's' for seeks, 'x' for media exchanges, '.' for idle.
// When multiple kinds land in one cell the busiest kind wins.
// Activity past end is clamped into the last cell, and instantaneous
// events (Start == End, e.g. fault markers) get a one-cell glyph.
func (r *Recorder) Timeline(end sim.Time, width int) string {
	if r == nil || len(r.Events) == 0 || end <= 0 || width < 1 {
		return ""
	}
	devices := r.Devices()
	cell := float64(end) / float64(width)

	var b strings.Builder
	nameW := 0
	for _, d := range devices {
		if len(d) > nameW {
			nameW = len(d)
		}
	}
	for _, dev := range devices {
		// Accumulate busy time per (cell, kind).
		weights := make([]map[Kind]float64, width)
		add := func(c int, k Kind, w float64) {
			if weights[c] == nil {
				weights[c] = make(map[Kind]float64)
			}
			weights[c][k] += w
		}
		for _, e := range r.Events {
			if e.Device != dev || e.Kind == Mark {
				continue
			}
			s, t := float64(e.Start), float64(e.End)
			s = minF(maxF(s, 0), float64(end))
			t = minF(maxF(t, s), float64(end))
			first := int(s / cell)
			if first >= width {
				first = width - 1
			}
			if t <= s {
				// Instantaneous (or entirely past end): a full-cell
				// weight so the glyph renders and outranks partial
				// occupants of the cell.
				add(first, e.Kind, cell)
				continue
			}
			last := int(t / cell)
			if last >= width {
				last = width - 1
			}
			for c := first; c <= last; c++ {
				lo := float64(c) * cell
				hi := lo + cell
				ov := minF(t, hi) - maxF(s, lo)
				if ov <= 0 {
					continue
				}
				add(c, e.Kind, ov)
			}
		}
		row := make([]byte, width)
		for c := range row {
			row[c] = '.'
			var best float64
			// Fixed descending kind order keeps ties deterministic and
			// lets fault/retry/degrade glyphs win them.
			for k := Mark; k >= TapeRead; k-- {
				if w := weights[c][k]; w > best {
					best = w
					row[c] = k.glyph()
				}
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, dev, row)
	}
	fmt.Fprintf(&b, "%-*s  0%*s\n", nameW, "", width, end.String())
	return b.String()
}

// Summary aggregates per-device, per-kind busy time.
func (r *Recorder) Summary(end sim.Time) string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, dev := range r.Devices() {
		perKind := map[Kind]sim.Duration{}
		var kinds []Kind
		for _, e := range r.Events {
			if e.Device != dev || e.Kind == Mark {
				continue
			}
			if _, ok := perKind[e.Kind]; !ok {
				kinds = append(kinds, e.Kind)
			}
			perKind[e.Kind] += e.Duration()
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		busy := r.BusyTime(dev)
		fmt.Fprintf(&b, "%-8s busy %6.1f%%", dev, 100*float64(busy)/float64(end))
		for _, k := range kinds {
			fmt.Fprintf(&b, "  %s %.0fs", k, perKind[k].Seconds())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
