package fault

import (
	"testing"
	"time"
)

func TestStringRoundTrip(t *testing.T) {
	specs := []string{
		"transient=R:100:2",
		"hard=S:42",
		"corrupt=disk:7:3",
		"stall=R:1m30s:2",
		"diskfail=1@40s",
		"drivefail=R@1h10m0s",
		"oserr=S:12:2",
		"torn=disk:5",
		"oswait=disk:200ms:3",
		"flip=disk0:9",
		"transient=R:100:2,oserr=S:12,diskfail=1@40s,oswait=R:1s",
	}
	for _, spec := range specs {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := s.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
	}
}

func TestStringCanonicalizes(t *testing.T) {
	// Non-canonical inputs (count 1 spelled out, "90s" for 1m30s)
	// converge to the canonical form, and that form is a fixed point.
	for in, want := range map[string]string{
		"transient=R:100:1":  "transient=R:100",
		"stall=S:90s:1":      "stall=S:1m30s",
		"oswait=disk:1500ms": "oswait=disk:1.5s",
		"drivefail=S@90m":    "drivefail=S@1h30m0s",
	} {
		s, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got := s.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", in, got, want)
		}
		again, err := Parse(s.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", s.String(), err)
		}
		if got := again.String(); got != want {
			t.Errorf("canonical form not a fixed point: %q -> %q", want, got)
		}
	}
}

func TestStringExpandsRandom(t *testing.T) {
	s, err := Parse("random=7:3")
	if err != nil {
		t.Fatal(err)
	}
	spec := s.String()
	if spec == "" {
		t.Fatal("random schedule rendered empty")
	}
	replay, err := Parse(spec)
	if err != nil {
		t.Fatalf("replaying %q: %v", spec, err)
	}
	if got := replay.String(); got != spec {
		t.Errorf("replayed schedule diverged: %q vs %q", got, spec)
	}
	if replay.Len() != s.Len() {
		t.Errorf("replay has %d rules, want %d", replay.Len(), s.Len())
	}
}

func TestStringSkipsSpentRules(t *testing.T) {
	s, err := Parse("transient=R:5,corrupt=S:9:2")
	if err != nil {
		t.Fatal(err)
	}
	s.Decide(Op{Device: "tape:R", Addr: 5, N: 1}) // spend the transient
	if got, want := s.String(), "corrupt=S:9:2"; got != want {
		t.Errorf("after spending: %q, want %q", got, want)
	}
}

func TestStringProgrammaticBuilders(t *testing.T) {
	s := (&Schedule{}).
		AddWallStall("disk", 50*time.Millisecond, 4).
		AddFlipStored("tape:S", 3, 1)
	if got, want := s.String(), "oswait=disk:50ms:4,flip=S:3"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
