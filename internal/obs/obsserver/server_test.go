package obsserver

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestMetricsEndpoint(t *testing.T) {
	s := New()
	h := s.Handler()

	// Before any run attaches, /metrics still serves the server's own
	// scrape counter as valid Prometheus text.
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if err := obs.CheckPromText(rec.Body.Bytes()); err != nil {
		t.Fatalf("bare /metrics is not valid prom text: %v\n%s", err, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "obs_scrapes_total 1") {
		t.Errorf("scrape counter missing:\n%s", rec.Body)
	}

	// Attach a run registry: its series appear ahead of the server's.
	reg := obs.NewRegistry()
	reg.Gauge("iodev_health", "Device health state.", obs.A("dev", "disk0")).Set(2)
	reg.Counter("iodev_retries_total", "Device-layer retries.", obs.A("dev", "disk0")).Add(3)
	s.SetSources(reg, nil, nil)
	rec = get(t, h, "/metrics")
	if err := obs.CheckPromText(rec.Body.Bytes()); err != nil {
		t.Fatalf("combined /metrics is not valid prom text: %v\n%s", err, rec.Body)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`iodev_health{dev="disk0"} 2`,
		`iodev_retries_total{dev="disk0"} 3`,
		"obs_scrapes_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q:\n%s", want, body)
		}
	}

	// Detaching mid-flight must not panic the next scrape: the nil-safe
	// registry renders empty and the server's own series remain.
	s.SetSources(nil, nil, nil)
	rec = get(t, h, "/metrics")
	if err := obs.CheckPromText(rec.Body.Bytes()); err != nil {
		t.Fatalf("detached /metrics invalid: %v\n%s", err, rec.Body)
	}
}

func TestHealthEndpoint(t *testing.T) {
	s := New()
	h := s.Handler()

	rec := get(t, h, "/health")
	if rec.Code != http.StatusOK {
		t.Fatalf("no-source status %d", rec.Code)
	}
	var body struct {
		Status  string         `json:"status"`
		Devices []DeviceHealth `json:"devices"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body)
	}
	if body.Status != "ok" || len(body.Devices) != 0 {
		t.Fatalf("no-source body = %+v", body)
	}

	rows := []DeviceHealth{
		{Device: "tape:R", State: "healthy"},
		{Device: "disk0", State: "degraded", Timeouts: 1, Retries: 2},
	}
	s.SetSources(nil, nil, func() []DeviceHealth { return rows })
	rec = get(t, h, "/health")
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded status code %d, want 200", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "degraded" || len(body.Devices) != 2 {
		t.Fatalf("degraded body = %+v", body)
	}

	// A tripped breaker turns the endpoint 503 — scrapers and load
	// balancers see the failure without parsing the body.
	rows = append(rows, DeviceHealth{Device: "disk1", State: "failed", Timeouts: 3})
	rec = get(t, h, "/health")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failed status code %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "failed" {
		t.Fatalf("failed body = %+v", body)
	}
}

func TestFlightEndpoint(t *testing.T) {
	s := New()
	h := s.Handler()

	// No recorder attached: empty body, not a panic (nil-safe Snapshot).
	rec := get(t, h, "/flight")
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Fatalf("bare /flight: code %d body %q", rec.Code, rec.Body)
	}

	f := obs.NewFlightRecorder(16)
	f.Record("timeout", "disk", "op exceeded 5ms deadline")
	f.Record("health", "disk", "failed")
	s.SetSources(nil, f, nil)
	rec = get(t, h, "/flight")
	sc := bufio.NewScanner(rec.Body)
	var kinds []string
	for sc.Scan() {
		var ev obs.FlightEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 2 || kinds[0] != "timeout" || kinds[1] != "health" {
		t.Fatalf("flight kinds = %v", kinds)
	}
}

func TestStartServesAndCloses(t *testing.T) {
	s := New()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() != addr {
		t.Errorf("Addr() = %q, want %q", s.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Addr() != "" {
		t.Errorf("Addr() after Close = %q", s.Addr())
	}
	// Closing again is a no-op.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
