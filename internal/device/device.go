// Package device defines the narrow storage interfaces the join code
// runs against: tape-like drives (sequential block transfer with
// positioning cost, forward and reverse region scans, append-only
// scratch), disk-like stores (scratch-file allocate/free with direct
// offsets), and a backend that constructs both. The join methods,
// recovery machinery and workload engine speak only these interfaces;
// the virtual-time simulator (device/simdev) and the real-OS-file
// runtime (device/filedev) are interchangeable backends behind them.
package device

import (
	"errors"

	"repro/internal/block"
	"repro/internal/device/ioengine"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tape"
	"repro/internal/trace"
)

// Type aliases re-export the shared vocabulary types so join code can
// drop its direct tape/disk imports without conversion shims: these
// are identical types, not copies.
type (
	// Addr is a block address on a tape-like medium.
	Addr = tape.Addr
	// Region is a contiguous block range on a tape-like medium.
	Region = tape.Region
	// Medium is the mountable cartridge (or cartridge set) interface.
	Medium = tape.Medium
	// DriveConfig is the drive performance profile.
	DriveConfig = tape.DriveConfig
	// DriveStats is the per-drive activity snapshot.
	DriveStats = tape.DriveStats
	// DiskStats is the per-store activity snapshot.
	DiskStats = disk.Stats
	// StoreConfig describes a scratch store's geometry and rates.
	StoreConfig = disk.Config
)

// ErrDiskFull is the store-out-of-space sentinel shared by every
// backend (the same value as the disk package's, so errors.Is works
// across both).
var ErrDiskFull = disk.ErrDiskFull

// ErrCorrupt marks data that failed checksum verification at the
// device layer: a stored record whose bytes no longer match the
// checksum written with them (torn write, bit rot, truncated tail).
// Retry machinery treats it like a delivered-copy checksum miss —
// worth re-reading — and typed fail-fast when the stored copy really
// is gone.
var ErrCorrupt = errors.New("device: stored record failed checksum verification")

// Wall-clock fault sentinels, re-exported from the I/O engine (same
// values, so errors.Is works without importing ioengine):
var (
	// ErrIOTimeout marks an operation that missed its per-op deadline.
	ErrIOTimeout = ioengine.ErrTimeout
	// ErrDeviceFailed marks a device whose circuit breaker tripped.
	ErrDeviceFailed = ioengine.ErrDeviceFailed
	// ErrWorkerClosed marks an operation submitted to a closed device
	// worker.
	ErrWorkerClosed = ioengine.ErrClosed
	// ErrOpCancelled marks a queued operation aborted by CancelOps
	// before it reached the device. Carries no health consequence.
	ErrOpCancelled = ioengine.ErrCancelled
)

// DLT4000 returns the calibrated drive profile of the paper's
// experimental platform.
func DLT4000() DriveConfig { return tape.DLT4000() }

// Ideal returns the paper's simplified transfer-only drive profile.
func Ideal() DriveConfig { return tape.Ideal() }

// Drive is a tape-like device: one mounted medium, a head position,
// and sequential block transfer with positioning cost. A drive serves
// one request at a time; concurrent processes sharing it serialize.
type Drive interface {
	// Name identifies the drive.
	Name() string
	// Config returns the drive's performance profile.
	Config() DriveConfig
	// Media returns the mounted medium, or nil.
	Media() Medium
	// Load mounts a medium and positions the head at block 0.
	Load(m Medium)
	// ReadAt reads n blocks starting at addr.
	ReadAt(p *sim.Proc, addr Addr, n int64) ([]block.Block, error)
	// ReadRegion reads an entire region front to back.
	ReadRegion(p *sim.Proc, r Region) ([]block.Block, error)
	// ReadRegionReverse reads a region while the head travels
	// backward, returning blocks in forward order. Fails unless the
	// drive profile is BiDirectional.
	ReadRegionReverse(p *sim.Proc, r Region) ([]block.Block, error)
	// Append writes blocks at end of data and returns the region
	// written.
	Append(p *sim.Proc, blks []block.Block) (Region, error)
	// WriteAt overwrites blocks starting at addr, extending end of
	// data when the write runs past it.
	WriteAt(p *sim.Proc, addr Addr, blks []block.Block) error
	// Rewind repositions the head to block 0.
	Rewind(p *sim.Proc)
	// BusyTime is the total time the drive was held.
	BusyTime() sim.Duration
	// DriveStats snapshots the drive's cumulative activity counters.
	DriveStats() DriveStats
	// SetRecorder attaches an I/O event recorder (nil disables).
	SetRecorder(r *trace.Recorder)
	// SetMetrics registers the drive's counters in reg (nil detaches).
	SetMetrics(reg *obs.Registry)
	// SetInjector attaches a fault injector (nil disables).
	SetInjector(inj fault.Injector)
	// Close releases the drive's OS resources (I/O worker, scratch
	// files); a no-op for purely virtual backends. Safe to call more
	// than once.
	Close() error
}

// File is one scratch file on a store: append-only growth, direct
// positioned reads, explicit free.
type File interface {
	// Name identifies the file.
	Name() string
	// Len is the current length in blocks.
	Len() int64
	// Append adds blocks at the end of the file.
	Append(p *sim.Proc, blks []block.Block) error
	// ReadAt reads n blocks starting at block offset off.
	ReadAt(p *sim.Proc, off, n int64) ([]block.Block, error)
	// Free releases the file's space.
	Free()
	// Lost reports whether the file lost extents to a dead drive.
	Lost() bool
}

// Store is the scratch space shared by joins: a bounded pool of
// blocks served as named files, with space accounting and failure
// tracking.
type Store interface {
	// Create allocates an empty file. placement, when non-nil,
	// restricts the file to the given drive indices.
	Create(name string, placement []int) (File, error)
	// Config returns the store's construction-time configuration, for
	// building an equivalent replacement store.
	Config() StoreConfig
	// TotalCapacity is the store's live capacity in blocks (dead
	// drives excluded).
	TotalCapacity() int64
	// Free is the unallocated space in blocks.
	Free() int64
	// Used is the currently allocated space in blocks.
	Used() int64
	// HighWater is the peak allocated space since the last reset.
	HighWater() int64
	// ResetHighWater restarts peak tracking from current usage.
	ResetHighWater()
	// BusyTime is the cumulative busy time across the store's drives.
	BusyTime() sim.Duration
	// DiskStats snapshots the store's cumulative activity counters.
	DiskStats() DiskStats
	// DeadDisks lists permanently failed drive indices.
	DeadDisks() []int
	// LiveDisks counts surviving drives.
	LiveDisks() int
	// SetRecorder attaches an I/O event recorder (nil disables).
	SetRecorder(r *trace.Recorder)
	// SetMetrics registers the store's counters in reg (nil detaches).
	SetMetrics(reg *obs.Registry)
	// SetInjector attaches a fault injector (nil disables).
	SetInjector(inj fault.Injector)
	// Close releases the store's OS resources (I/O worker, scratch
	// files); a no-op for purely virtual backends. Safe to call more
	// than once.
	Close() error
}

// Backend constructs a device complex. Implementations: simdev (the
// paper's virtual-time simulator) and filedev (real OS files with
// wall-clock transfer timing).
type Backend interface {
	// Name identifies the backend ("sim", "file").
	Name() string
	// NewDrive builds a drive attached to the kernel.
	NewDrive(k *sim.Kernel, name string, cfg DriveConfig) (Drive, error)
	// NewSharedDrivePair builds two logical drives behind one shared
	// transport — the degraded single-transport configuration used
	// after a drive loss.
	NewSharedDrivePair(k *sim.Kernel, nameA, nameB string, cfg DriveConfig) (Drive, Drive, error)
	// NewStore builds a scratch store attached to the kernel.
	NewStore(k *sim.Kernel, cfg StoreConfig) (Store, error)
}

// Truncatable is a medium whose scratch tail can be rolled back —
// recovery truncates abandoned tape scratch before a degraded rerun.
type Truncatable interface {
	EOD() Addr
	Truncate(addr Addr)
}

// WallStatser is implemented by backends that perform real OS I/O and
// can report wall-clock device activity: merged busy time per device
// and the fraction of it overlapped across devices (filedev).
type WallStatser interface {
	WallStats() ioengine.WallStats
	// PublishWallMetrics exports the wall stats as obs gauges (nil
	// registry is a no-op).
	PublishWallMetrics(reg *obs.Registry)
}

// HealthReporter is implemented by backends whose devices run the
// ioengine health state machine and can report it live: one row per
// device worker, safe to call from a scrape goroutine mid-run.
type HealthReporter interface {
	DeviceHealths() []ioengine.DeviceHealth
}

// OpCanceller is implemented by backends whose devices queue real OS
// operations and can abort the queued backlog mid-run: every queued op
// completes with ErrOpCancelled (wrapping cause) without reaching the
// device, health state and breakers are untouched, and the workers keep
// serving operations submitted afterwards (filedev). Purely virtual
// backends have no queue to drain and don't implement it — callers
// fall back to cooperative cancellation alone. Safe from any goroutine.
type OpCanceller interface {
	CancelOps(cause error)
}
