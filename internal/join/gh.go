package join

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/disk"
	"repro/internal/hashutil"
	"repro/internal/sim"
	"repro/internal/tape"
)

// addr converts a block offset to a tape address.
func addr(n int64) tape.Addr { return tape.Addr(n) }

// bucketSource abstracts where a hash bucket lives: a disk file or a
// tape region. Reads charge the owning device.
type bucketSource interface {
	blocks() int64
	read(p *sim.Proc, off, n int64) ([]block.Block, error)
}

type diskBucket struct{ f *disk.File }

func (d diskBucket) blocks() int64 { return d.f.Len() }
func (d diskBucket) read(p *sim.Proc, off, n int64) ([]block.Block, error) {
	return d.f.ReadAt(p, off, n)
}

type tapeBucket struct {
	drive  *tape.Drive
	region tape.Region
	// reverse reads the whole bucket backward (paper footnote 2):
	// used by CTT-GH's joiner on alternate iterations so the head
	// never seeks back across the bucket run. Applies only to a
	// full-bucket read; partial reads fall back to forward.
	reverse bool
}

func (t tapeBucket) blocks() int64 { return t.region.N }
func (t tapeBucket) read(p *sim.Proc, off, n int64) ([]block.Block, error) {
	if t.reverse && off == 0 && n == t.region.N {
		return t.drive.ReadRegionReverse(p, t.region)
	}
	return t.drive.ReadAt(p, t.region.Start+addr(off), n)
}

// scanBufFor sizes the S-side streaming buffer for the join phase:
// whatever memory remains next to a full R bucket, aiming for the
// plan's input-buffer size. At minimal memory this is a single block,
// making bucket scans random-I/O-like (the Figure 8 small-M uptick).
func scanBufFor(plan hashutil.Plan, m int64) int64 {
	sb := m - plan.BucketBlocks
	if sb > plan.InBuf {
		sb = plan.InBuf
	}
	if sb < 1 {
		sb = 1
	}
	return sb
}

// joinBucketPair loads the R bucket into a memory hash table and
// streams the matching S bucket through it. Oversized R buckets
// (hash-value skew) fall back to multiple memory loads, each paying a
// full scan of the S bucket.
func joinBucketPair(e *env, p *sim.Proc, r, s bucketSource, maxLoad, scanBuf int64) error {
	if maxLoad < 1 {
		return fmt.Errorf("%w: no memory for R bucket", ErrNeedMemory)
	}
	for roff := int64(0); roff < r.blocks(); roff += maxLoad {
		n := min64(maxLoad, r.blocks()-roff)
		e.mem.acquire(n)
		rBlks, err := r.read(p, roff, n)
		if err != nil {
			return err
		}
		table := newHashTable()
		table.addBlocks(rBlks)

		e.mem.acquire(scanBuf)
		for soff := int64(0); soff < s.blocks(); soff += scanBuf {
			g := min64(scanBuf, s.blocks()-soff)
			sBlks, err := s.read(p, soff, g)
			if err != nil {
				return err
			}
			forEachTuple(sBlks, func(t block.Tuple) {
				table.probeWithS(p, e.sink, t)
			})
		}
		e.mem.release(scanBuf)
		e.mem.release(n)
	}
	return nil
}

// partitionTapeToDisk hash-partitions a tape-resident relation (or a
// chunk of it) into per-bucket striped disk files. Returns the bucket
// files. reserve, when non-nil, is called with the block count of each
// flush before the disk write — concurrent methods use it to acquire
// double-buffer space.
func partitionTapeToDisk(e *env, p *sim.Proc, drive *tape.Drive, region tape.Region,
	tuplesPerBlock int, tag byte, plan hashutil.Plan, namePrefix string,
	keep keepFn, reserve func(p *sim.Proc, n int64)) ([]*disk.File, error) {

	files := make([]*disk.File, plan.B)
	for i := range files {
		f, err := e.disks.Create(fmt.Sprintf("%s%d", namePrefix, i), nil)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	e.mem.acquire(plan.PartitionMemory())
	defer e.mem.release(plan.PartitionMemory())

	pt := newPartitioner(plan.B, plan.WriteBuf, tuplesPerBlock, tag,
		func(fp *sim.Proc, bkt int, blks []block.Block) error {
			if reserve != nil {
				reserve(fp, int64(len(blks)))
			}
			return files[bkt].Append(fp, blks)
		})
	err := readTape(p, drive, region, plan.InBuf, func(_ int64, blks []block.Block) error {
		var addErr error
		forEachTuple(blks, func(t block.Tuple) {
			if addErr != nil || (keep != nil && !keep(t)) {
				return
			}
			addErr = pt.add(p, t)
		})
		return addErr
	})
	if err != nil {
		return nil, err
	}
	if err := pt.finish(p); err != nil {
		return nil, err
	}
	return files, nil
}

// checkGH verifies the shared Grace Hash feasibility: the Table 2
// memory requirement M >= sqrt(|R|) (exact at block granularity) and
// disk room for R's buckets plus at least one block per S bucket.
func checkGH(spec Spec, res Resources) (hashutil.Plan, error) {
	plan, err := hashutil.PlanBuckets(spec.R.Region.N, res.MemoryBlocks)
	if err != nil {
		return plan, fmt.Errorf("%w: %v", ErrNeedMemory, err)
	}
	// R's bucket files may exceed |R| by up to one partial block per
	// bucket; an S chunk needs at least one block plus the same
	// partial-block slack.
	need := spec.R.Region.N + 2*int64(plan.B) + 2
	if res.DiskBlocks < need {
		return plan, fmt.Errorf("%w: D=%d < |R|+2B+2=%d", ErrNeedDiskForR, res.DiskBlocks, need)
	}
	return plan, nil
}

// totalLen sums file lengths.
func totalLen(files []*disk.File) int64 {
	var n int64
	for _, f := range files {
		n += f.Len()
	}
	return n
}

// freeAll frees every file.
func freeAll(files []*disk.File) {
	for _, f := range files {
		f.Free()
	}
}

// DTGH is Disk–Tape Grace Hash Join (Section 5.1.2): sequential; hash
// R from tape into disk buckets, then repeatedly hash a d = D - |R|
// chunk of S to disk and join it bucket by bucket.
type DTGH struct{}

// Name implements Method.
func (DTGH) Name() string { return "Disk-Tape Grace Hash Join" }

// Symbol implements Method.
func (DTGH) Symbol() string { return "DT-GH" }

// Check implements Method.
func (DTGH) Check(spec Spec, res Resources) error {
	_, err := checkGH(spec, res)
	return err
}

func (DTGH) run(e *env, p *sim.Proc) error {
	plan, err := checkGH(e.spec, e.res)
	if err != nil {
		return err
	}
	// Step I: hash R from tape to disk buckets.
	fRB, err := partitionTapeToDisk(e, p, e.driveR, e.spec.R.Region,
		e.spec.R.TuplesPerBlock, e.spec.R.Tag, plan, "rb", e.filterR(), nil)
	if err != nil {
		return err
	}
	e.stats.RScans++
	e.markStepI(p)

	// Partitioning an n-block chunk can emit up to n + B blocks (one
	// partial per bucket), so the chunk leaves that slack in d.
	d := e.res.DiskBlocks - totalLen(fRB)
	chunk := d - int64(plan.B)
	if chunk < 1 {
		return fmt.Errorf("%w: %d blocks left to buffer S over %d buckets", ErrNeedDisk, d, plan.B)
	}
	scanBuf := scanBufFor(plan, e.res.MemoryBlocks)
	maxLoad := e.res.MemoryBlocks - scanBuf

	// Step II: iterate chunks of S sized to the spare disk space.
	s := e.spec.S.Region
	for off := int64(0); off < s.N; off += chunk {
		n := min64(chunk, s.N-off)
		fSB, err := partitionTapeToDisk(e, p, e.driveS, s.Sub(off, n),
			e.spec.S.TuplesPerBlock, e.spec.S.Tag, plan, "sb", e.filterS(), nil)
		if err != nil {
			return err
		}
		for b := 0; b < plan.B; b++ {
			if err := joinBucketPair(e, p, diskBucket{fRB[b]}, diskBucket{fSB[b]}, maxLoad, scanBuf); err != nil {
				return err
			}
		}
		freeAll(fSB)
		e.stats.Iterations++
		e.stats.RScans++
	}
	freeAll(fRB)
	return nil
}

// CDTGH is Concurrent Disk–Tape Grace Hash Join (Section 5.1.4): as
// DT-GH, but the S bucket area on disk is double-buffered so hashing
// chunk i+1 from tape overlaps joining chunk i.
type CDTGH struct{}

// Name implements Method.
func (CDTGH) Name() string { return "Concurrent Disk-Tape Grace Hash Join" }

// Symbol implements Method.
func (CDTGH) Symbol() string { return "CDT-GH" }

// Check implements Method.
func (CDTGH) Check(spec Spec, res Resources) error {
	_, err := checkGH(spec, res)
	return err
}

func (CDTGH) run(e *env, p *sim.Proc) error {
	plan, err := checkGH(e.spec, e.res)
	if err != nil {
		return err
	}
	fRB, err := partitionTapeToDisk(e, p, e.driveR, e.spec.R.Region,
		e.spec.R.TuplesPerBlock, e.spec.R.Tag, plan, "rb", e.filterR(), nil)
	if err != nil {
		return err
	}
	e.stats.RScans++
	e.markStepI(p)

	d := e.res.DiskBlocks - totalLen(fRB)
	scanBuf := scanBufFor(plan, e.res.MemoryBlocks)
	maxLoad := e.res.MemoryBlocks - scanBuf

	dbuf := e.newDoubleBuffer("s-buckets", d)
	// Chunks leave B blocks of slack for partial-block spill.
	chunkCap := dbuf.ChunkCapacity() - int64(plan.B)
	if chunkCap < int64(plan.B) {
		return fmt.Errorf("%w: %d blocks left to buffer S over %d buckets", ErrNeedDisk, d, plan.B)
	}
	s := e.spec.S.Region

	type iterChunk struct {
		iter  int64
		files []*disk.File
	}
	q := sim.NewQueue[iterChunk](e.k, "gh-chunks", 1)

	hasher := e.k.Spawn("s-hasher", func(hp *sim.Proc) {
		iter := int64(0)
		for off := int64(0); off < s.N; off += chunkCap {
			n := min64(chunkCap, s.N-off)
			it := iter // capture for the reserve closure
			files, err := partitionTapeToDisk(e, hp, e.driveS, s.Sub(off, n),
				e.spec.S.TuplesPerBlock, e.spec.S.Tag, plan, "sb", e.filterS(),
				func(fp *sim.Proc, blks int64) { dbuf.Acquire(fp, it, blks) })
			if err != nil {
				panic(err)
			}
			q.Send(hp, iterChunk{iter, files})
			iter++
		}
		q.Close(hp)
	})

	for {
		c, ok := q.Recv(p)
		if !ok {
			break
		}
		for b := 0; b < plan.B; b++ {
			if err := joinBucketPair(e, p, diskBucket{fRB[b]}, diskBucket{c.files[b]}, maxLoad, scanBuf); err != nil {
				return err
			}
			dbuf.Release(p, c.iter, c.files[b].Len())
			c.files[b].Free()
		}
		e.stats.Iterations++
		e.stats.RScans++
	}
	if err := p.Wait(hasher); err != nil {
		return err
	}
	freeAll(fRB)
	return nil
}
