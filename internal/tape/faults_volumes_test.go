package tape

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// mkNamedVolumes builds a volume set with distinct cartridge names, so
// errors can be traced to the cartridge that produced them.
func mkNamedVolumes(t *testing.T, n int, capEach int64) *MultiVolume {
	t.Helper()
	vols := make([]*Media, n)
	for i := range vols {
		vols[i] = NewMedia("vol"+string(rune('A'+i)), capEach)
	}
	mv, err := NewMultiVolume("set", vols...)
	if err != nil {
		t.Fatal(err)
	}
	return mv
}

func TestMultiVolumeMediaErrorNamesCartridge(t *testing.T) {
	mv := mkNamedVolumes(t, 3, 10)
	if _, err := mv.AppendSetup(mkBlocks(1, 25, 0)); err != nil {
		t.Fatal(err)
	}
	// A media error on the SECOND cartridge, at its local block 3
	// (global address 13).
	mediaErr := errors.New("dropout")
	mv.vols[1].InjectReadError(3, mediaErr)

	k := sim.NewKernel()
	d := NewDrive(k, "r", idealCfg())
	d.Load(mv)
	k.Spawn("p", func(p *sim.Proc) {
		// A read inside the healthy first cartridge is fine.
		if _, err := d.ReadAt(p, 0, 10); err != nil {
			t.Errorf("volA read: %v", err)
		}
		// A read covering the bad spot fails, and the error names the
		// cartridge the fault lives on — not just the volume set.
		_, err := d.ReadAt(p, 10, 10)
		if err == nil {
			t.Error("read over injected media error succeeded")
			return
		}
		if !errors.Is(err, mediaErr) {
			t.Errorf("err = %v, want wrapped injected cause", err)
		}
		if !strings.Contains(err.Error(), "volB") {
			t.Errorf("err %q does not identify cartridge volB", err)
		}
		if strings.Contains(err.Error(), "volA") || strings.Contains(err.Error(), "volC") {
			t.Errorf("err %q blames a healthy cartridge", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiVolumeTransientRecoversAcrossBoundary(t *testing.T) {
	mv := mkNamedVolumes(t, 2, 10)
	if _, err := mv.AppendSetup(mkBlocks(1, 20, 0)); err != nil {
		t.Fatal(err)
	}

	// The drive's fault schedule fails the first read covering global
	// address 12 — inside the second cartridge, on a request that
	// crosses the volume boundary — then clears.
	sched := &fault.Schedule{}
	sched.AddTransient("tape:r", 12, 1)

	k := sim.NewKernel()
	d := NewDrive(k, "r", idealCfg())
	d.Load(mv)
	d.SetInjector(sched)
	k.Spawn("p", func(p *sim.Proc) {
		_, err := d.ReadAt(p, 5, 10) // spans blocks 5..14 over both volumes
		if err == nil {
			t.Error("first read should hit the transient fault")
			return
		}
		if !fault.IsTransient(err) {
			t.Errorf("err = %v, want transient classification", err)
		}
		if !strings.Contains(err.Error(), `"r"`) {
			t.Errorf("err %q does not identify the drive", err)
		}
		// Reposition + re-read: the identical request now succeeds and
		// the volume boundary is still crossed correctly.
		blks, err := d.ReadAt(p, 5, 10)
		if err != nil {
			t.Errorf("re-read after transient: %v", err)
			return
		}
		for i, blk := range blks {
			_, tuples := blk.MustDecode()
			if want := uint64(5 + i); tuples[0].Key != want {
				t.Errorf("block %d: key %d, want %d", i, tuples[0].Key, want)
			}
		}
		if d.Stats.InjectedFaults != 1 {
			t.Errorf("InjectedFaults = %d, want 1", d.Stats.InjectedFaults)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
