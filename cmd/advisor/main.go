// Command advisor ranks the seven tertiary join methods for a
// resource configuration using the paper's analytical cost model:
//
//	advisor -r 2500 -s 10000 -mem 16 -disk 500 -rscratch 5000
//
// It prints each method's predicted response time (or why it cannot
// run) and recommends the cheapest feasible one — codifying the
// paper's Section 10 guidance.
package main

import (
	"flag"
	"fmt"
	"os"

	tapejoin "repro"
)

func main() {
	rMB := flag.Int64("r", 100, "size of R, the smaller relation (MB)")
	sMB := flag.Int64("s", 1000, "size of S, the larger relation (MB)")
	memMB := flag.Float64("mem", 16, "main memory M (MB)")
	diskMB := flag.Float64("disk", 100, "disk scratch space D (MB)")
	rScratch := flag.Int64("rscratch", 0, "free tape space on R's cartridge (MB)")
	sScratch := flag.Int64("sscratch", 0, "free tape space on S's cartridge (MB)")
	ratio := flag.Float64("speed-ratio", 2, "disk/tape speed ratio X_D/X_T")
	flag.Parse()

	sys, err := tapejoin.NewSystem(tapejoin.Config{
		MemoryMB:           *memMB,
		DiskMB:             *diskMB,
		DiskTapeSpeedRatio: *ratio,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		os.Exit(1)
	}

	ranked := sys.Advise(*rMB, *sMB, *rScratch, *sScratch)
	fmt.Printf("join of R=%d MB with S=%d MB;  M=%g MB, D=%g MB, tape scratch R/S = %d/%d MB\n\n",
		*rMB, *sMB, *memMB, *diskMB, *rScratch, *sScratch)
	fmt.Printf("%-10s  %-14s  %-14s  %-9s  %s\n", "method", "predicted", "setup (step I)", "rel. cost", "notes")
	for _, e := range ranked {
		if e.Feasible {
			fmt.Printf("%-10s  %-14v  %-14v  %-9.1f\n",
				e.Method, e.Response.Round(0), e.StepI.Round(0), e.RelativeCost)
		} else {
			fmt.Printf("%-10s  %-14s  %-14s  %-9s  %s\n", e.Method, "-", "-", "-", e.Reason)
		}
	}
	if len(ranked) > 0 && ranked[0].Feasible {
		fmt.Printf("\nrecommended: %s\n", ranked[0].Method)
	} else {
		fmt.Println("\nno method is feasible with these resources")
	}
}
