package join

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/tape"
)

func TestCorruptInputSurfacesChecksumError(t *testing.T) {
	mR := tape.NewMedia("tr", 256)
	mS := tape.NewMedia("ts", 256)
	r, err := relation.WriteToTape(relation.Config{
		Name: "R", Tag: 1, Blocks: 24, TuplesPerBlock: 4, KeySpace: 100, Seed: 1,
	}, mR)
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: 96, TuplesPerBlock: 4, KeySpace: 100, Seed: 2,
	}, mS)
	if err != nil {
		t.Fatal(err)
	}
	mS.Corrupt(50) // silent corruption mid-relation

	m, _ := BySymbol("DT-NB")
	_, err = Run(m, Spec{R: r, S: s}, fastRes(10, 64), nil)
	if err == nil {
		t.Fatal("corrupted input should fail the join")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("error should mention the checksum: %v", err)
	}
}

func TestHardMediaErrorSurfaces(t *testing.T) {
	mR := tape.NewMedia("tr", 256)
	mS := tape.NewMedia("ts", 256)
	r, _ := relation.WriteToTape(relation.Config{
		Name: "R", Tag: 1, Blocks: 24, TuplesPerBlock: 2, KeySpace: 100, Seed: 1,
	}, mR)
	s, _ := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: 96, TuplesPerBlock: 2, KeySpace: 100, Seed: 2,
	}, mS)
	mediaErr := errors.New("unrecoverable read error")
	mR.InjectReadError(10, mediaErr)

	m, _ := BySymbol("DT-GH")
	_, err := Run(m, Spec{R: r, S: s}, fastRes(10, 64), nil)
	if err == nil || !strings.Contains(err.Error(), "unrecoverable read error") {
		t.Fatalf("err = %v, want injected media error", err)
	}
}

func TestJoinOverMultiVolumeTapes(t *testing.T) {
	// S spans four cartridges behind a robot; the join must still be
	// exact and charge exchanges.
	vols := make([]*tape.Media, 4)
	for i := range vols {
		vols[i] = tape.NewMedia("sv", 30)
	}
	mvS, err := tape.NewMultiVolume("s-set", vols...)
	if err != nil {
		t.Fatal(err)
	}
	mR := tape.NewMedia("tr", 256)
	r, err := relation.WriteToTape(relation.Config{
		Name: "R", Tag: 1, Blocks: 24, TuplesPerBlock: 4, KeySpace: 200, Seed: 11,
	}, mR)
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: 96, TuplesPerBlock: 4, KeySpace: 200, Seed: 22,
	}, mvS)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.ExpectedMatches(r, s)

	res := fastRes(10, 64)
	res.Tape.ExchangeTime = 30 * time.Second
	sink := &CountSink{}
	result, err := Run(DTNB{}, Spec{R: r, S: s}, res, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Matches != want {
		t.Fatalf("matches = %d, want %d", sink.Matches, want)
	}
	// Reading S end-to-end crosses 3 volume boundaries exactly once.
	if result.Stats.Response <= 0 {
		t.Fatal("no time elapsed")
	}

	// The same join on a single cartridge is faster by exactly the
	// exchange overhead (3 x 30 s), validating the paper's Section
	// 3.2 claim that exchanges are negligible for sequential scans.
	mS1 := tape.NewMedia("ts", 256)
	s1, _ := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: 96, TuplesPerBlock: 4, KeySpace: 200, Seed: 22,
	}, mS1)
	result1, err := Run(DTNB{}, Spec{R: r, S: s1}, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	delta := result.Stats.Response - result1.Stats.Response
	if delta != 3*30*time.Second {
		t.Fatalf("multi-volume overhead = %v, want exactly 90s of exchanges", delta)
	}
}

func TestReverseReadsSpeedUpCTTGH(t *testing.T) {
	run := func(biDir bool) Stats {
		spec := testSpec(t)
		// Memory comfortably above the bucket size, so every bucket
		// loads in one piece and the reverse chain never breaks.
		res := fastRes(12, 24)
		res.Tape.SeekFixed = 10 * time.Second
		res.Tape.SeekPerBlock = 100 * time.Millisecond
		res.Tape.BiDirectional = biDir
		result, err := Run(CTTGH{}, spec, res, nil)
		if err != nil {
			t.Fatal(err)
		}
		return result.Stats
	}
	fwd := run(false)
	rev := run(true)
	if rev.Response >= fwd.Response {
		t.Fatalf("bi-directional (%v) should beat forward-only (%v)", rev.Response, fwd.Response)
	}
	if rev.TapeSeeks >= fwd.TapeSeeks {
		t.Fatalf("bi-directional seeks %d should be below forward-only %d", rev.TapeSeeks, fwd.TapeSeeks)
	}
	// Output must be identical either way.
	if rev.OutputTuples != fwd.OutputTuples {
		t.Fatalf("outputs differ: %d vs %d", rev.OutputTuples, fwd.OutputTuples)
	}
}

func TestGroupCountSinkAggregates(t *testing.T) {
	spec := testSpec(t)
	agg := &GroupCountSink{}
	if _, err := Run(DTNB{}, spec, fastRes(10, 64), agg); err != nil {
		t.Fatal(err)
	}
	// The aggregate must fold exactly the expected matches.
	var total int64
	for _, c := range agg.Counts {
		total += c
	}
	want := relation.ExpectedMatches(spec.R, spec.S)
	if total != want || agg.Count() != want {
		t.Fatalf("aggregated %d (Count %d), want %d", total, agg.Count(), want)
	}
	// Cross-check one key against the generators.
	rCounts := spec.R.KeyCounts()
	sCounts := spec.S.KeyCounts()
	for k, c := range agg.Counts {
		if want := rCounts[k] * sCounts[k]; c != want {
			t.Fatalf("key %d: %d matches, want %d", k, c, want)
		}
	}
}

func TestDeviceUtilizationReported(t *testing.T) {
	spec := testSpec(t)
	result, err := Run(CDTGH{}, spec, fastRes(10, 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := result.Stats
	for name, busy := range map[string]time.Duration{
		"tapeR": st.TapeRBusy, "tapeS": st.TapeSBusy, "disk": st.DiskBusy,
	} {
		if busy <= 0 || busy > st.Response*2 { // disk array may sum 2 drives
			t.Errorf("%s busy = %v vs response %v", name, busy, st.Response)
		}
	}
	// S is read exactly once from tape at full rate: its drive busy
	// time must be meaningfully below the response (it idles between
	// chunks).
	if st.TapeSBusy >= st.Response {
		t.Errorf("S drive busy %v >= response %v", st.TapeSBusy, st.Response)
	}
}
