package join

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/block"
	"repro/internal/fault"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runWith runs method symbol over a fresh small spec with the given
// fault schedule (nil = clean) and returns the result and the expected
// match count.
func runWith(t *testing.T, symbol string, res Resources, sched *fault.Schedule) (*Result, int64, error) {
	t.Helper()
	spec := testSpec(t)
	want := relation.ExpectedMatches(spec.R, spec.S)
	res.Faults = sched
	sink := &CountSink{}
	result, err := Run(mustMethod(t, symbol), spec, res, sink)
	return result, want, err
}

func mustMethod(t *testing.T, symbol string) Method {
	t.Helper()
	m, err := BySymbol(symbol)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTransientFaultsRecoverEveryMethod injects retryable read faults
// on both tapes into every join method and demands a correct join with
// the recovery charged in virtual time.
func TestTransientFaultsRecoverEveryMethod(t *testing.T) {
	for _, m := range Methods() {
		m := m
		t.Run(m.Symbol(), func(t *testing.T) {
			res := fastRes(10, 64)
			clean, want, err := runWith(t, m.Symbol(), res, nil)
			if err != nil {
				t.Fatal(err)
			}

			spec := testSpec(t)
			sched := &fault.Schedule{}
			sched.AddTransient("tape:R", int64(spec.R.Region.Start)+3, 2)
			sched.AddTransient("tape:S", int64(spec.S.Region.Start)+7, 1)
			faulted, _, err := runWith(t, m.Symbol(), res, sched)
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}

			if faulted.Stats.OutputTuples != want {
				t.Fatalf("matches = %d, want %d", faulted.Stats.OutputTuples, want)
			}
			if faulted.Stats.Faults < 3 {
				t.Fatalf("Faults = %d, want >= 3 injected", faulted.Stats.Faults)
			}
			if faulted.Stats.Retries < 3 {
				t.Fatalf("Retries = %d, want >= 3", faulted.Stats.Retries)
			}
			if faulted.Stats.RecoveryTime <= 0 {
				t.Fatal("no recovery time charged")
			}
			if faulted.Stats.Response <= clean.Stats.Response {
				t.Fatalf("faulted response %v not above clean %v",
					faulted.Stats.Response, clean.Stats.Response)
			}
		})
	}
}

// TestCorruptDeliveryRereadRecovers injects delivered-copy corruption:
// the stored blocks are intact, so the checksum failure must trigger a
// re-read that recovers, not a panic or a wrong answer.
func TestCorruptDeliveryRereadRecovers(t *testing.T) {
	for _, symbol := range []string{"DT-NB", "CDT-GH", "CTT-GH"} {
		symbol := symbol
		t.Run(symbol, func(t *testing.T) {
			spec := testSpec(t)
			sched := &fault.Schedule{}
			sched.AddCorrupt("tape:S", int64(spec.S.Region.Start)+5, 2)
			faulted, want, err := runWith(t, symbol, fastRes(10, 64), sched)
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}
			if faulted.Stats.OutputTuples != want {
				t.Fatalf("matches = %d, want %d", faulted.Stats.OutputTuples, want)
			}
			if faulted.Stats.Retries < 2 {
				t.Fatalf("Retries = %d, want >= 2", faulted.Stats.Retries)
			}
		})
	}
}

// TestDiskCorruptionSurfacesTypedError verifies the MustDecode audit:
// corruption on the disk path surfaces as block.ErrBadChecksum, never
// a panic, both with recovery off (typed error returned) and with
// recovery on (re-read absorbs it).
func TestDiskCorruptionSurfacesTypedError(t *testing.T) {
	// Recovery disabled: DT-NB reads R back from disk; a corrupt
	// delivered copy must fail the join with the typed checksum error.
	res := fastRes(10, 64)
	res.Recovery.Disabled = true
	sched := &fault.Schedule{}
	sched.AddCorrupt("disk", 5, 1)
	_, _, err := runWith(t, "DT-NB", res, sched)
	if err == nil {
		t.Fatal("corrupt disk delivery with recovery off should fail the join")
	}
	if !errors.Is(err, block.ErrBadChecksum) {
		t.Fatalf("err = %v, want block.ErrBadChecksum in chain", err)
	}

	// Recovery enabled: the same corruption is absorbed by a re-read.
	sched = &fault.Schedule{}
	sched.AddCorrupt("disk", 5, 1)
	faulted, want, err := runWith(t, "DT-NB", fastRes(10, 64), sched)
	if err != nil {
		t.Fatalf("recovered run: %v", err)
	}
	if faulted.Stats.OutputTuples != want {
		t.Fatalf("matches = %d, want %d", faulted.Stats.OutputTuples, want)
	}
	if faulted.Stats.Retries < 1 {
		t.Fatalf("Retries = %d, want >= 1", faulted.Stats.Retries)
	}
}

// TestRecoveryDisabledFailsFast: with recovery off, the first injected
// fault aborts the join with the transient cause intact.
func TestRecoveryDisabledFailsFast(t *testing.T) {
	spec := testSpec(t)
	res := fastRes(10, 64)
	res.Recovery.Disabled = true
	sched := &fault.Schedule{}
	sched.AddTransient("tape:R", int64(spec.R.Region.Start)+3, 1)
	result, _, err := runWith(t, "DT-GH", res, sched)
	if err == nil {
		t.Fatal("transient fault with recovery off should abort the join")
	}
	if !fault.IsTransient(err) {
		t.Fatalf("err = %v, want transient cause preserved", err)
	}
	if result != nil && result.Stats.Retries != 0 {
		t.Fatalf("Retries = %d with recovery disabled", result.Stats.Retries)
	}
}

// TestRetryBudgetExhausted: a fault that outlives every retry and unit
// restart surfaces as the typed ErrFaultExhausted.
func TestRetryBudgetExhausted(t *testing.T) {
	spec := testSpec(t)
	sched := &fault.Schedule{}
	sched.AddTransient("tape:S", int64(spec.S.Region.Start)+7, 1000)
	_, _, err := runWith(t, "DT-NB", fastRes(10, 64), sched)
	if err == nil {
		t.Fatal("persistent fault should exhaust the retry budget")
	}
	if !errors.Is(err, ErrFaultExhausted) {
		t.Fatalf("err = %v, want ErrFaultExhausted", err)
	}
}

// TestHardMediaErrorNotRetried: hard media errors are terminal — no
// retry budget is spent on them.
func TestHardMediaErrorNotRetried(t *testing.T) {
	spec := testSpec(t)
	sched := &fault.Schedule{}
	sched.AddHard("tape:S", int64(spec.S.Region.Start)+7)
	result, _, err := runWith(t, "DT-NB", fastRes(10, 64), sched)
	if err == nil {
		t.Fatal("hard media error should fail the join")
	}
	if !errors.Is(err, fault.ErrMedia) {
		t.Fatalf("err = %v, want fault.ErrMedia", err)
	}
	if result != nil && result.Stats.Retries != 0 {
		t.Fatalf("Retries = %d on a hard error", result.Stats.Retries)
	}
}

// table3Res is the acceptance-test geometry: Table 3's shape (|S| =
// 2|R|, D = |R|/2, two disks) at test scale, sized so losing one of
// the two disks still leaves an assemblable bucket window.
func table3Spec(t *testing.T) (Spec, Resources) {
	t.Helper()
	spec := specWithSizes(t, 320, 640, 4)
	return spec, fastRes(20, 160)
}

// TestCTTGHFaultedTable3Acceptance is the PR's acceptance scenario: a
// Table-3-shaped CTT-GH join survives a transient tape error plus a
// mid-run disk failure, produces the exact cardinality, and its
// response time exceeds the fault-free run by the charged recovery.
func TestCTTGHFaultedTable3Acceptance(t *testing.T) {
	spec, res := table3Spec(t)
	want := relation.ExpectedMatches(spec.R, spec.S)
	sink := &CountSink{}
	clean, err := Run(mustMethod(t, "CTT-GH"), spec, res, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Matches != want {
		t.Fatalf("clean matches = %d, want %d", sink.Matches, want)
	}

	for _, tc := range []struct {
		name string
		frac float64 // disk death time as a fraction of the clean response
	}{
		{"disk dies in Step I", 0.10},
		{"disk dies in Step II", 0.70},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			spec, res := table3Spec(t)
			sched := &fault.Schedule{}
			sched.AddTransient("tape:R", int64(spec.R.Region.Start)+11, 2)
			sched.AddDiskFail(1, sim.Time(float64(clean.Stats.Response)*tc.frac))
			res.Faults = sched
			sink := &CountSink{}
			faulted, err := Run(mustMethod(t, "CTT-GH"), spec, res, sink)
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}
			if sink.Matches != want {
				t.Fatalf("matches = %d, want %d", sink.Matches, want)
			}
			if faulted.Stats.DisksLost != 1 {
				t.Fatalf("DisksLost = %d, want 1", faulted.Stats.DisksLost)
			}
			if faulted.Stats.Retries < 2 {
				t.Fatalf("Retries = %d, want >= 2 for the transient", faulted.Stats.Retries)
			}
			if faulted.Stats.RecoveryTime <= 0 {
				t.Fatal("no recovery time charged")
			}
			if faulted.Stats.Response <= clean.Stats.Response {
				t.Fatalf("faulted response %v not above clean %v",
					faulted.Stats.Response, clean.Stats.Response)
			}
		})
	}
}

// TestDriveLossDegradesToSequential: a permanent tape-drive failure
// mid-run re-plans onto a shared transport and a feasible sequential
// method, still producing the exact output.
func TestDriveLossDegradesToSequential(t *testing.T) {
	// CDT-GH needs all of R on disk, so give it a roomy array.
	spec := specWithSizes(t, 320, 640, 4)
	res := fastRes(20, 500)
	want := relation.ExpectedMatches(spec.R, spec.S)
	clean, err := Run(mustMethod(t, "CDT-GH"), spec, res, &CountSink{})
	if err != nil {
		t.Fatal(err)
	}

	spec = specWithSizes(t, 320, 640, 4)
	sched := &fault.Schedule{}
	sched.AddDriveFail("tape:S", sim.Time(clean.Stats.Response/3))
	res.Faults = sched
	sink := &CountSink{}
	faulted, err := Run(mustMethod(t, "CDT-GH"), spec, res, sink)
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if sink.Matches != want {
		t.Fatalf("matches = %d, want %d", sink.Matches, want)
	}
	if !faulted.Stats.DriveLost {
		t.Fatal("DriveLost not recorded")
	}
	if faulted.Stats.DegradedTo == "" {
		t.Fatal("DegradedTo empty after drive loss")
	}
	found := false
	for _, c := range degradeCandidates {
		if faulted.Stats.DegradedTo == c {
			found = true
		}
	}
	if !found {
		t.Fatalf("DegradedTo = %q, not a sequential candidate %v",
			faulted.Stats.DegradedTo, degradeCandidates)
	}
	if faulted.Stats.Response <= clean.Stats.Response {
		t.Fatalf("degraded response %v not above clean %v",
			faulted.Stats.Response, clean.Stats.Response)
	}
}

// TestSameFaultSeedIsDeterministic is the seed-determinism regression:
// two runs under the identical seeded random schedule must produce
// byte-identical stats and device traces.
func TestSameFaultSeedIsDeterministic(t *testing.T) {
	run := func() (Stats, string) {
		spec := testSpec(t)
		res := fastRes(10, 64)
		res.Faults = fault.Random(99, 8, fault.RandomConfig{MaxAddr: 20})
		rec := &trace.Recorder{}
		res.Trace = rec
		sink := &CountSink{}
		result, err := Run(mustMethod(t, "CTT-GH"), spec, res, sink)
		if err != nil {
			t.Fatal(err)
		}
		return result.Stats, rec.Timeline(sim.Time(result.Stats.Response), 120)
	}
	statsA, traceA := run()
	statsB, traceB := run()
	if !reflect.DeepEqual(statsA, statsB) {
		t.Fatalf("stats differ across identical seeds:\nA: %+v\nB: %+v", statsA, statsB)
	}
	if traceA != traceB {
		t.Fatal("trace timelines differ across identical seeds")
	}
	if statsA.Faults == 0 {
		t.Fatal("seeded schedule injected nothing; test is vacuous")
	}
}

// TestFaultStatsZeroOnCleanRuns: without a schedule the recovery
// counters stay zero and response time is untouched by recovery code.
func TestFaultStatsZeroOnCleanRuns(t *testing.T) {
	for _, m := range Methods() {
		clean, _, err := runWith(t, m.Symbol(), fastRes(10, 64), nil)
		if err != nil {
			t.Fatal(err)
		}
		st := clean.Stats
		if st.Faults != 0 || st.Retries != 0 || st.UnitRestarts != 0 ||
			st.RecoveryTime != 0 || st.DisksLost != 0 || st.DriveLost || st.DegradedTo != "" {
			t.Fatalf("%s: clean run has recovery stats: %+v", m.Symbol(), st)
		}
	}
}
