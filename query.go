package tapejoin

import (
	"fmt"
	"time"

	"repro/internal/join"
	"repro/internal/query"
)

// ColType is a table column type.
type ColType = query.Type

// Column types.
const (
	Int64Col  = query.Int64
	FloatCol  = query.Float64
	StringCol = query.String
)

// Column is a named, typed table column.
type Column = query.Column

// Value is a column value: int64, float64 or string.
type Value = query.Value

// Row is one tuple's typed values.
type Row = query.Row

// Expr is a scalar expression over a joined row pair; build with Col,
// Lit, Cmp, And, Or, Not.
type Expr = query.Expr

// Expression constructors, re-exported from the query layer.
var (
	// Lit makes a literal operand.
	Lit = query.Lit
	// Cmp compares two same-typed expressions with a CmpOp.
	Cmp = query.Cmp
	// And is true when every operand is non-zero.
	And = query.And
	// Or is true when any operand is non-zero.
	Or = query.Or
	// Not negates a boolean expression.
	Not = query.Not
)

// Comparison operators for Cmp.
const (
	Eq = query.Eq
	Ne = query.Ne
	Lt = query.Lt
	Le = query.Le
	Gt = query.Gt
	Ge = query.Ge
)

// Agg is one aggregate output (function + argument expression).
type Agg = query.Agg

// AggFn is an aggregate function for Agg.
type AggFn = query.AggFn

// Aggregate functions.
const (
	CountAgg = query.Count
	SumAgg   = query.Sum
	MinAgg   = query.Min
	MaxAgg   = query.Max
)

// RCol references a column of the smaller (R) table.
func RCol(name string) Expr { return query.Col(query.SideR, name) }

// SCol references a column of the larger (S) table.
func SCol(name string) Expr { return query.Col(query.SideS, name) }

// TableSpec describes a typed table to generate onto a cartridge.
// Column 0 is the join key and must be Int64Col.
type TableSpec struct {
	// Name identifies the table.
	Name string
	// SizeMB is the table size in megabytes.
	SizeMB int64
	// Columns gives the schema; column 0 is the join key.
	Columns []Column
	// Rows supplies the non-key values of each row from its ordinal
	// and join key; nil derives deterministic defaults.
	Rows func(ordinal int64, key uint64) []Value
	// TuplesPerBlock, KeySpace and Seed mirror RelationConfig.
	TuplesPerBlock int
	KeySpace       uint64
	Seed           int64
}

// Table is a typed relation on tape, queryable with RunQuery.
type Table struct {
	tbl *query.Table
}

// Name returns the table name.
func (t *Table) Name() string { return t.tbl.Rel.Name }

// SizeMB returns the table size.
func (t *Table) SizeMB() int64 { return t.tbl.Rel.Region.N / BlocksPerMB }

// Rows returns the row count.
func (t *Table) Rows() int64 { return t.tbl.Rel.Tuples() }

// CreateTable generates a typed table onto the cartridge.
func (s *System) CreateTable(t *Tape, spec TableSpec) (*Table, error) {
	if spec.TuplesPerBlock == 0 {
		spec.TuplesPerBlock = 4
	}
	if spec.KeySpace == 0 {
		spec.KeySpace = 1_000_000
	}
	s.nextTag++
	tbl, err := query.CreateTable(t.media, query.TableConfig{
		Name:           spec.Name,
		Tag:            s.nextTag,
		Blocks:         MB(spec.SizeMB),
		TuplesPerBlock: spec.TuplesPerBlock,
		KeySpace:       spec.KeySpace,
		Seed:           spec.Seed,
		Schema:         query.Schema(spec.Columns),
		Rows:           spec.Rows,
	})
	if err != nil {
		return nil, err
	}
	return &Table{tbl: tbl}, nil
}

// QuerySpec is an equi-join of two tables on their key columns with an
// optional post-join predicate and projection — the relational face of
// the tertiary join methods.
type QuerySpec struct {
	// R is the smaller table, S the larger.
	R, S *Table
	// Where filters joined pairs (int64-typed, 0 drops); nil keeps all.
	Where Expr
	// Select lists output expressions; empty counts rows only.
	// Mutually exclusive with Aggregates.
	Select []Expr
	// GroupBy and Aggregates fold the filtered join output into
	// grouped aggregates: one result row per group, group-by values
	// first, then one column per aggregate.
	GroupBy    []Expr
	Aggregates []Agg
	// Method forces a join method; empty lets the cost model choose.
	Method Method
	// Limit caps the rows materialized into QueryResult.Rows (default
	// 1000). It is presentation-only: the join still runs to completion
	// and Count stays exact. To stop the join itself, use StopAfter.
	Limit int
	// StopAfter, when positive, terminates the join after n output
	// pairs: a true LIMIT-n execution that stops reading the tapes.
	// The planner then prefers the streaming SYM-H method, Count covers
	// only the delivered prefix, and QueryResult.Stopped reports the
	// early exit. Incompatible with Aggregates.
	StopAfter int64
}

// QueryResult is the outcome of RunQuery.
type QueryResult struct {
	// Method is the join method the planner chose (or was forced).
	Method Method
	// Rows holds up to Limit projected rows.
	Rows []Row
	// Count is the exact number of joined pairs passing Where.
	Count int64
	// JoinMatches is the raw join cardinality before Where.
	JoinMatches int64
	// Stopped reports that StopAfter ended the join early; Count and
	// JoinMatches then cover only the delivered prefix.
	Stopped bool
	// Response is the join's virtual response time.
	Response time.Duration
	// FirstTuple is the virtual time from start to the first delivered
	// pair (zero when the join produced no output).
	FirstTuple time.Duration
}

// RunQuery plans and executes the query on this system: the cost model
// picks the cheapest feasible join method for the device complex, the
// join runs in the simulator, and the predicate and projection are
// evaluated on its output stream.
func (s *System) RunQuery(spec QuerySpec) (*QueryResult, error) {
	if spec.R == nil || spec.S == nil {
		return nil, fmt.Errorf("tapejoin: query needs both tables")
	}
	var forced string
	if spec.Method != "" {
		if _, err := join.BySymbol(string(spec.Method)); err != nil {
			return nil, err
		}
		forced = string(spec.Method)
	}
	res, err := query.Run(query.Query{
		R:          spec.R.tbl,
		S:          spec.S.tbl,
		Where:      spec.Where,
		Select:     spec.Select,
		GroupBy:    spec.GroupBy,
		Aggregates: spec.Aggregates,
		Method:     forced,
		Limit:      spec.Limit,
		StopAfter:  spec.StopAfter,
	}, s.res)
	if err != nil {
		return nil, err
	}
	return &QueryResult{
		Method:      Method(res.Method),
		Rows:        res.Rows,
		Count:       res.Count,
		JoinMatches: res.JoinMatches,
		Stopped:     res.Stopped,
		Response:    res.Stats.Response,
		FirstTuple:  time.Duration(res.Stats.FirstTuple),
	}, nil
}
