package cost

import (
	"math"
	"sort"
)

// Scratch describes the tape scratch space available for tape–tape
// methods, in blocks.
type Scratch struct {
	// RTape is free space on R's cartridge.
	RTape int64
	// STape is free space on S's cartridge.
	STape int64
}

// Advice ranks the join methods for a parameter point.
type Advice struct {
	// Best is the cheapest feasible method, or "" if none is feasible.
	Best string
	// Ranked lists every method's estimate, cheapest first,
	// infeasible last.
	Ranked []Estimate
}

// Advise evaluates all seven methods against the model, rules out
// those whose Table 2 resource requirements are unmet (including tape
// scratch space), and ranks the rest by predicted response time. This
// codifies the paper's conclusion: CTT-GH for very large joins, CDT-GH
// with ample disk but little memory, CDT-NB at the small end.
func Advise(p Params, scratch Scratch) Advice {
	ests := EstimateAll(p)
	for i := range ests {
		if ests[i].Err != nil {
			continue
		}
		switch ests[i].Method {
		case "CTT-GH":
			if scratch.RTape < p.RBlocks {
				ests[i] = infeasible("CTT-GH", "R tape scratch %d < |R|=%d", scratch.RTape, p.RBlocks)
			}
		case "TT-GH":
			if scratch.STape < p.RBlocks {
				ests[i] = infeasible("TT-GH", "S tape scratch %d < |R|=%d", scratch.STape, p.RBlocks)
			} else if scratch.RTape < p.SBlocks {
				ests[i] = infeasible("TT-GH", "R tape scratch %d < |S|=%d", scratch.RTape, p.SBlocks)
			}
		}
	}
	sort.SliceStable(ests, func(i, j int) bool {
		return ests[i].Seconds < ests[j].Seconds
	})
	adv := Advice{Ranked: ests}
	if len(ests) > 0 && !math.IsInf(ests[0].Seconds, 1) {
		adv.Best = ests[0].Method
	}
	return adv
}
