package join

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/hashutil"
	"repro/internal/obs"
	"repro/internal/sim"
)

// symPlan is the partition layout of a symmetric streaming hash join:
// both relations hash into p partitions; the first k stay resident as
// dual in-memory tables and join at arrival, the rest spill both sides
// to disk scratch and join in a cleanup pass.
type symPlan struct {
	p int // total partitions
	k int // resident partitions (0..k-1)
	// perPartR/perPartS estimate one partition's size per side under
	// uniform hashing, rounded up.
	perPartR, perPartS int64
	// batch is the reader batch size in blocks (per drive).
	batch int64
	// writeBuf is the per-spill-partition pending-flush size in blocks.
	writeBuf int64
	// maxLoad/scanBuf size the cleanup pass: R-spill memory loads and
	// the S-spill streaming buffer.
	maxLoad, scanBuf int64
}

func (s symPlan) spillParts() int { return s.p - s.k }

// diskNeed estimates scratch blocks for the spilled partitions, with
// one slack block per side per partition for partial final blocks.
func (s symPlan) diskNeed() int64 {
	return int64(s.spillParts()) * (s.perPartR + s.perPartS + 2)
}

// symPlanFor derives the layout from the resources. Memory splits
// three ways for the streaming phase: half of M hosts the resident
// dual tables, a quarter the spill write buffers (which bounds the
// partition count at M/8 — one pending block per side per partition is
// the floor), and a quarter the two readers' in-flight batches.
//
// The partition count starts at 2|R|/M (an R partition loadable in
// half of memory for the cleanup pass) and is raised — within the M/8
// cap — until one partition of R and S together fits the resident
// budget. Streaming output needs at least one resident partition;
// without the raise, any S much larger than M would defer every match
// to the cleanup pass and the first tuple would arrive no earlier than
// a materializing method's. When even the raised count cannot make a
// partition fit (M < ~4·sqrt(|R|+|S|)), k is 0 and the method degrades
// to a Grace-style two-phase join.
func symPlanFor(spec Spec, res Resources) symPlan {
	m := res.MemoryBlocks
	rN, sN := spec.R.Region.N, spec.S.Region.N
	pCap := int(m / 8)
	if pCap < 2 {
		pCap = 2
	}
	p := int((2*rN + m - 1) / m)
	if p < 2 {
		p = 2
	}
	budget := m / 2
	denom := budget - 2 // ceil rounding can cost a block per side
	if denom < 1 {
		denom = 1
	}
	if need := int((rN + sN + denom - 1) / denom); p < need {
		p = need
	}
	if p > pCap {
		p = pCap
	}
	perR := (rN + int64(p) - 1) / int64(p)
	perS := (sN + int64(p) - 1) / int64(p)
	k := 0
	if per := perR + perS; per > 0 {
		k = int(budget / per)
	}
	if k > p {
		k = p
	}
	batch := res.IOChunk
	if cap := m / 16; batch > cap {
		batch = cap
	}
	if batch < 1 {
		batch = 1
	}
	wb := int64(1)
	if spill := p - k; spill > 0 {
		wb = (m / 4) / int64(2*spill)
		if wb < 1 {
			wb = 1
		}
	}
	scanBuf := batch
	maxLoad := m - scanBuf
	if maxLoad < 1 {
		maxLoad = 1
	}
	return symPlan{
		p: p, k: k, perPartR: perR, perPartS: perS,
		batch: batch, writeBuf: wb, maxLoad: maxLoad, scanBuf: scanBuf,
	}
}

// SymHash is the symmetric streaming hash join (SYM-H): both relations
// stream concurrently from their drives, hash-partitioned on arrival.
// Resident partitions keep dual in-memory hash tables — each arriving
// tuple probes the other side's table and then inserts into its own,
// so every match is emitted exactly once, by whichever tuple of the
// pair arrives later. The method therefore produces its first output
// pair as soon as two matching tuples have streamed in, instead of
// after a full Step I — the time-to-first-tuple method of the
// streaming-execution experiments. Partitions that do not fit the
// memory budget spill both sides to disk scratch and join in a
// Grace-style cleanup pass after the streams drain.
//
// Recovery is narrower than for the staged methods: the pipelined
// phase delivers output as it happens, so there is no unit restart for
// it — readDev's in-place read retries still apply, but a drive loss
// mid-stream cannot transparently re-plan once pairs have been
// delivered (Exec fails with a typed error instead). The cleanup pass
// joins spilled partitions under the normal staged/runUnit discipline.
type SymHash struct{}

// Name implements Method.
func (SymHash) Name() string { return "Symmetric Streaming Hash Join" }

// Symbol implements Method.
func (SymHash) Symbol() string { return "SYM-H" }

// Check implements Method: M >= 4 for the reader batches plus a
// minimal resident budget, and disk scratch for the spilled share of
// both relations when the resident budget cannot hold everything.
func (SymHash) Check(spec Spec, res Resources) error {
	if res.MemoryBlocks < 4 {
		return fmt.Errorf("%w: M=%d < 4", ErrNeedMemory, res.MemoryBlocks)
	}
	pl := symPlanFor(spec, res)
	if pl.spillParts() > 0 && res.DiskBlocks < pl.diskNeed() {
		return fmt.Errorf("%w: D=%d < %d for %d spilled partitions",
			ErrNeedDisk, res.DiskBlocks, pl.diskNeed(), pl.spillParts())
	}
	return nil
}

// symChunk is one reader batch (or error / end-of-stream marker) on
// the shared reader→joiner queue.
type symChunk struct {
	fromR bool
	blks  []block.Block
	n     int64
	err   error
	eof   bool
}

func (SymHash) run(e *env, p *sim.Proc) error {
	pl := symPlanFor(e.spec, e.res)
	sp := e.span(p, "sym-stream",
		obs.AInt("partitions", int64(pl.p)), obs.AInt("resident", int64(pl.k)))

	// Resident dual tables for partitions 0..k-1.
	rTabs := make([]*hashTable, pl.k)
	sTabs := make([]*hashTable, pl.k)
	for i := 0; i < pl.k; i++ {
		rTabs[i] = newHashTable()
		sTabs[i] = newHashTable()
	}

	// Spill files for partitions k..p-1, created lazily on first flush
	// and freed exactly once whether the run completes, stops early or
	// fails.
	rFiles := make([]device.File, pl.p)
	sFiles := make([]device.File, pl.p)
	freeAt := func(i int) {
		if rFiles[i] != nil {
			rFiles[i].Free()
			rFiles[i] = nil
		}
		if sFiles[i] != nil {
			sFiles[i].Free()
			sFiles[i] = nil
		}
	}
	defer func() {
		for i := range rFiles {
			freeAt(i)
		}
	}()
	flushTo := func(files []device.File, prefix string) flushFn {
		return func(fp *sim.Proc, bkt int, blks []block.Block) error {
			if files[bkt] == nil {
				f, err := e.disks.Create(fmt.Sprintf("%s%d", prefix, bkt), nil)
				if err != nil {
					return err
				}
				files[bkt] = f
			}
			return files[bkt].Append(fp, blks)
		}
	}
	deferredOnly := func(bkt int) bool { return bkt >= pl.k }
	spillR := newPartitioner(pl.p, pl.writeBuf, e.spec.R.TuplesPerBlock, e.spec.R.Tag, flushTo(rFiles, "symR"))
	spillR.only = deferredOnly
	spillS := newPartitioner(pl.p, pl.writeBuf, e.spec.S.TuplesPerBlock, e.spec.S.Tag, flushTo(sFiles, "symS"))
	spillS.only = deferredOnly

	// Memory budget for the streaming phase: resident tables plus the
	// spill write buffers. The reader batches are ledgered separately
	// by the readers below (acquired on read, released after routing).
	streamMem := min64(e.res.MemoryBlocks*3/4, int64(pl.k)*(pl.perPartR+pl.perPartS))
	if pl.spillParts() > 0 {
		streamMem += 2 * int64(pl.spillParts()) * pl.writeBuf
	}
	e.mem.acquire(streamMem)
	streamMemHeld := true
	releaseStreamMem := func() {
		if streamMemHeld {
			streamMemHeld = false
			e.mem.release(streamMem)
		}
	}
	defer releaseStreamMem()

	// Both drives stream concurrently; per-side buffer containers keep
	// each reader at most two batches ahead so neither side can starve
	// the other of memory. The queue is never closed — two producers
	// can't both close it — so each reader sends an eof marker instead
	// and the joiner drains until it has seen both.
	q := sim.NewQueue[symChunk](e.k, "sym-chunks", 1)
	bufsR := sim.NewContainer(e.k, "sym-bufs-R", 2, 2)
	bufsS := sim.NewContainer(e.k, "sym-bufs-S", 2, 2)
	spawnReader := func(name string, fromR bool, bufs *sim.Container, drive device.Drive, region device.Region) *sim.Proc {
		return e.k.Spawn(name, func(rp *sim.Proc) {
			for off := int64(0); off < region.N && !e.abort; off += pl.batch {
				n := min64(pl.batch, region.N-off)
				bufs.Get(rp, 1)
				e.mem.acquire(n)
				rsp := e.span(rp, "stream-"+name, obs.AInt("off", off))
				blks, err := e.tapeRead(rp, drive, region.Start+addr(off), n)
				rsp.Close(rp)
				if err != nil {
					e.mem.release(n)
					bufs.Put(rp, 1)
					q.Send(rp, symChunk{fromR: fromR, err: err})
					break
				}
				q.Send(rp, symChunk{fromR: fromR, blks: blks, n: n})
			}
			q.Send(rp, symChunk{fromR: fromR, eof: true})
		})
	}
	readR := spawnReader("R", true, bufsR, e.driveR, e.spec.R.Region)
	readS := spawnReader("S", false, bufsS, e.driveS, e.spec.S.Region)

	keepR, keepS := e.filterR(), e.filterS()
	route := func(fromR bool, t block.Tuple) error {
		bkt := hashutil.Bucket(t.Key, pl.p)
		if bkt < pl.k {
			if fromR {
				sTabs[bkt].probeWithR(e, p, t)
				rTabs[bkt].m[t.Key] = append(rTabs[bkt].m[t.Key], t)
			} else {
				rTabs[bkt].probeWithS(e, p, t)
				sTabs[bkt].m[t.Key] = append(sTabs[bkt].m[t.Key], t)
			}
			return nil
		}
		if fromR {
			return spillR.add(p, t)
		}
		return spillS.add(p, t)
	}

	var pipeErr error
	eofs := 0
	for eofs < 2 {
		c, _ := q.Recv(p)
		if c.eof {
			eofs++
			continue
		}
		if c.err != nil || pipeErr != nil {
			if c.err != nil && pipeErr == nil {
				pipeErr = c.err
				e.abort = true
			}
			if c.blks != nil {
				e.mem.release(c.n)
				if c.fromR {
					bufsR.Put(p, 1)
				} else {
					bufsS.Put(p, 1)
				}
			}
			continue
		}
		keep := keepS
		if c.fromR {
			keep = keepR
		}
		var routeErr error
		err := forEachTuple(c.blks, func(t block.Tuple) {
			if routeErr != nil {
				return
			}
			if keep != nil && !keep(t) {
				return
			}
			routeErr = route(c.fromR, t)
		})
		e.mem.release(c.n)
		if c.fromR {
			bufsR.Put(p, 1)
		} else {
			bufsS.Put(p, 1)
		}
		if err == nil {
			err = routeErr
		}
		if err == nil {
			err = e.checkStop()
		}
		if err != nil {
			pipeErr = err
			e.abort = true
		}
	}
	if err := p.Wait(readR); err != nil {
		sp.Close(p)
		return err
	}
	if err := p.Wait(readS); err != nil {
		sp.Close(p)
		return err
	}
	e.abort = false
	sp.Close(p)
	if pipeErr != nil {
		return pipeErr
	}
	e.stats.RScans++

	// Flush spill tails, drop the resident tables, and hand the whole
	// memory budget to the cleanup pass.
	if err := spillR.finish(p); err != nil {
		return err
	}
	if err := spillS.finish(p); err != nil {
		return err
	}
	rTabs, sTabs = nil, nil
	releaseStreamMem()
	e.markStepI(p)

	// Cleanup pass: join each spilled partition pair Grace-style, one
	// restartable unit with staged output per partition. A partition
	// with either side empty cannot produce pairs and is skipped.
	for i := pl.k; i < pl.p; i++ {
		rf, sf := rFiles[i], sFiles[i]
		if rf == nil || sf == nil {
			freeAt(i)
			continue
		}
		err := e.runUnit(p, fmt.Sprintf("sym-part@%d", i), func(up *sim.Proc) error {
			if rf.Lost() || sf.Lost() {
				// The stream that fed the spill is consumed; there is no
				// input left to re-stage from, so this is terminal.
				return fmt.Errorf("join: SYM-H spill for partition %d lost; stream already consumed", i)
			}
			return e.staged(up, func() error {
				return joinBucketPair(e, up, diskBucket{rf}, diskBucket{sf}, pl.maxLoad, pl.scanBuf)
			})
		})
		freeAt(i)
		if err != nil {
			return err
		}
		e.stats.Iterations++
	}
	return nil
}
