package fault

import (
	"fmt"
	"strings"
	"time"
)

// String renders the schedule back into the Parse grammar, so a
// schedule logged at startup can be replayed verbatim with -faults.
// The output is canonical: counts of 1 are omitted, device names use
// their short spec form (R, S, disk, diskN), and random= directives
// appear expanded into the concrete rules they generated — replaying
// the string reproduces the schedule without needing the seed.
//
// Rules whose firings are already spent are omitted, so String called
// mid-run describes the *remaining* schedule; call it before running
// to capture the full one.
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	for _, r := range s.rules {
		if r.count == 0 {
			continue
		}
		dev := specDevice(r.device)
		switch r.kind {
		case kindTransient:
			parts = append(parts, addrSpec("transient", dev, r.addr, r.count))
		case kindHard:
			parts = append(parts, fmt.Sprintf("hard=%s:%d", dev, r.addr))
		case kindCorrupt:
			parts = append(parts, addrSpec("corrupt", dev, r.addr, r.count))
		case kindStall:
			parts = append(parts, durSpec("stall", dev, time.Duration(r.stall), r.count))
		case kindDeviceLost:
			parts = append(parts, fmt.Sprintf("diskfail=%s@%s",
				strings.TrimPrefix(r.device, "disk"), time.Duration(r.at)))
		case kindDriveLost:
			parts = append(parts, fmt.Sprintf("drivefail=%s@%s", dev, time.Duration(r.at)))
		case kindOSErr:
			parts = append(parts, addrSpec("oserr", dev, r.addr, r.count))
		case kindTornWrite:
			parts = append(parts, addrSpec("torn", dev, r.addr, r.count))
		case kindWallStall:
			parts = append(parts, durSpec("oswait", dev, r.wall, r.count))
		case kindFlipStored:
			parts = append(parts, addrSpec("flip", dev, r.addr, r.count))
		}
	}
	return strings.Join(parts, ",")
}

// specDevice maps a canonical device name back to its short spec form.
func specDevice(dev string) string {
	if short, ok := strings.CutPrefix(dev, "tape:"); ok && (short == "R" || short == "S") {
		return short
	}
	return dev
}

func addrSpec(key, dev string, addr int64, count int) string {
	if count == 1 {
		return fmt.Sprintf("%s=%s:%d", key, dev, addr)
	}
	return fmt.Sprintf("%s=%s:%d:%d", key, dev, addr, count)
}

func durSpec(key, dev string, d time.Duration, count int) string {
	if count == 1 {
		return fmt.Sprintf("%s=%s:%s", key, dev, d)
	}
	return fmt.Sprintf("%s=%s:%s:%d", key, dev, d, count)
}
