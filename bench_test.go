package tapejoin_test

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates the artifact through the experiment harness and
// reports the headline metric of the corresponding chart as a custom
// benchmark metric (virtual seconds, relative cost, utilization %, or
// overhead %), so `go test -bench=.` reproduces the whole evaluation.
//
// Benches run at reduced workload scales to keep wall time modest; the
// scaling rules (internal/exp) preserve each experiment's geometry.
// `go run ./cmd/paperbench -scale 1` runs the paper-size versions.

import (
	"testing"

	tapejoin "repro"
	"repro/internal/exp"
)

// benchScale keeps a single full experiment under ~1 s of wall time.
const benchScale = 0.15

func BenchmarkFig1SmallR(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		points := exp.AnalyticFigure(1)
		last = points[len(points)-1].Relative["DT-NB"]
	}
	b.ReportMetric(last, "relcost-DT-NB@5M")
}

func BenchmarkFig2MediumR(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		points := exp.AnalyticFigure(2)
		last = points[len(points)-1].Relative["CTT-GH"]
	}
	b.ReportMetric(last, "relcost-CTT-GH@31M")
}

func BenchmarkFig3LargeR(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		points := exp.AnalyticFigure(3)
		last = points[len(points)-1].Relative["CTT-GH"]
	}
	b.ReportMetric(last, "relcost-CTT-GH@150M")
}

// table3Join benches one row of Table 3 (Experiment 1) by running the
// CTT-GH join at that row's scaled parameters.
func table3Join(b *testing.B, sMB, rMB int64) {
	b.Helper()
	var rel float64
	for i := 0; i < b.N; i++ {
		sys, err := tapejoin.NewSystem(tapejoin.Config{
			MemoryMB: 16 * 0.4, // sqrt-scaled with benchScale ~ 0.16
			DiskMB:   float64(rMB) * benchScale / 5,
			Profile:  tapejoin.DLT4000,
		})
		if err != nil {
			b.Fatal(err)
		}
		rs := int64(float64(rMB) * benchScale)
		ss := int64(float64(sMB) * benchScale)
		// Scratch for the hashed copy of R: |R| plus bucket slack.
		tR, _ := sys.NewTape("r", rs*2+8)
		tS, _ := sys.NewTape("s", ss+2)
		r, err := sys.CreateRelation(tR, tapejoin.RelationConfig{Name: "R", SizeMB: rs, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		s, err := sys.CreateRelation(tS, tapejoin.RelationConfig{Name: "S", SizeMB: ss, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Join(tapejoin.CTTGH, r, s)
		if err != nil {
			b.Fatal(err)
		}
		rel = float64(res.Stats.Response) / float64(sys.BareReadTime(float64(rs+ss)))
	}
	b.ReportMetric(rel, "relcost")
}

func BenchmarkTable3JoinI(b *testing.B)   { table3Join(b, 1000, 500) }
func BenchmarkTable3JoinII(b *testing.B)  { table3Join(b, 2500, 1250) }
func BenchmarkTable3JoinIII(b *testing.B) { table3Join(b, 5000, 2500) }
func BenchmarkTable3JoinIV(b *testing.B)  { table3Join(b, 10000, 2500) }

func BenchmarkFig4Utilization(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		points, err := exp.Figure4(0.05)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := len(points)/10, len(points)*9/10
		var sum float64
		for _, p := range points[lo:hi] {
			sum += p.TotalPct
		}
		mean = sum / float64(hi-lo)
	}
	b.ReportMetric(mean, "util-%")
}

func BenchmarkFig5DiskSpace(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: CDT-GH response at the last feasible (smallest) D,
		// the blow-up the figure demonstrates.
		for _, r := range rows {
			if r.CDTGHOk {
				worst = r.CDTGH.Seconds()
			}
		}
	}
	b.ReportMetric(worst, "vsec-CDT-GH@minD")
}

// exp3Bench runs the Experiment 3 sweep once per iteration and reports
// one chart's headline number.
func exp3Bench(b *testing.B, comp tapejoin.Compression, headline func([]exp.Exp3Row) (float64, string)) {
	b.Helper()
	var v float64
	var unit string
	for i := 0; i < b.N; i++ {
		rows, err := exp.Experiment3(benchScale, comp)
		if err != nil {
			b.Fatal(err)
		}
		v, unit = headline(rows)
	}
	b.ReportMetric(v, unit)
}

// at returns the row of a method at a memory fraction.
func at(rows []exp.Exp3Row, m tapejoin.Method, frac float64) exp.Exp3Row {
	for _, r := range rows {
		if r.Method == m && r.MemFrac == frac {
			return r
		}
	}
	return exp.Exp3Row{}
}

func BenchmarkFig6DiskSpace(b *testing.B) {
	exp3Bench(b, tapejoin.Compress25, func(rows []exp.Exp3Row) (float64, string) {
		return at(rows, tapejoin.CDTNBDB, 1.0).DiskSpaceMB, "MB-CDT-NB/DB@M=R"
	})
}

func BenchmarkFig7DiskTraffic(b *testing.B) {
	exp3Bench(b, tapejoin.Compress25, func(rows []exp.Exp3Row) (float64, string) {
		return at(rows, tapejoin.DTNB, 0.1).DiskIOMB, "MB-DT-NB@0.1R"
	})
}

func BenchmarkFig8Response(b *testing.B) {
	exp3Bench(b, tapejoin.Compress25, func(rows []exp.Exp3Row) (float64, string) {
		return at(rows, tapejoin.CDTGH, 0.3).Response.Seconds(), "vsec-CDT-GH@0.3R"
	})
}

func BenchmarkFig9Overhead(b *testing.B) {
	exp3Bench(b, tapejoin.Compress25, func(rows []exp.Exp3Row) (float64, string) {
		return 100 * at(rows, tapejoin.CDTGH, 0.5).Overhead, "ovh%-CDT-GH@0.5R"
	})
}

func BenchmarkFig10SlowTape(b *testing.B) {
	exp3Bench(b, tapejoin.Compress0, func(rows []exp.Exp3Row) (float64, string) {
		return 100 * at(rows, tapejoin.CDTGH, 0.5).Overhead, "ovh%-CDT-GH@0.5R"
	})
}

func BenchmarkFig11FastTape(b *testing.B) {
	exp3Bench(b, tapejoin.Compress50, func(rows []exp.Exp3Row) (float64, string) {
		return 100 * at(rows, tapejoin.CDTGH, 0.5).Overhead, "ovh%-CDT-GH@0.5R"
	})
}

// BenchmarkFirstTuple runs the streaming experiment's CI subset and
// reports the virtual time-to-first-tuple of SYM-H next to the best
// materializing method's. benchreg records first_tuple* metrics in
// snapshots for the history but never gates them: the first pair's
// arrival is a point event that legitimately shifts with any change to
// partition layout or batch sizing, so a drift gate would flag every
// intentional plan tweak.
func BenchmarkFirstTuple(b *testing.B) {
	var sym, best float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.FirstTuple(benchScale, true)
		if err != nil {
			b.Fatal(err)
		}
		sym, best = 0, 0
		for _, r := range rows {
			if !r.Feasible || r.FirstTuple <= 0 {
				continue
			}
			v := r.FirstTuple.Seconds()
			if r.Method == tapejoin.SYMH {
				sym = v
			} else if best == 0 || v < best {
				best = v
			}
		}
	}
	b.ReportMetric(sym, "first_tuple-SYM-H")
	b.ReportMetric(best, "first_tuple-best-materializing")
}

// BenchmarkAblationInterleavedVsSplit quantifies Section 4's claim:
// the naive split double-buffer doubles the iteration count of
// CDT-NB/DB. Reported metric: split time / interleaved time.
func BenchmarkAblationInterleavedVsSplit(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		run := func(split bool) float64 {
			sys, err := tapejoin.NewSystem(tapejoin.Config{
				MemoryMB: 2, DiskMB: 24, Profile: tapejoin.DLT4000, SplitBuffering: split,
			})
			if err != nil {
				b.Fatal(err)
			}
			tR, _ := sys.NewTape("r", 40)
			tS, _ := sys.NewTape("s", 170)
			r, _ := sys.CreateRelation(tR, tapejoin.RelationConfig{Name: "R", SizeMB: 18, Seed: 1})
			s, _ := sys.CreateRelation(tS, tapejoin.RelationConfig{Name: "S", SizeMB: 150, Seed: 2})
			res, err := sys.Join(tapejoin.CDTNBDB, r, s)
			if err != nil {
				b.Fatal(err)
			}
			return res.Stats.Response.Seconds()
		}
		ratio = run(true) / run(false)
	}
	b.ReportMetric(ratio, "split/interleaved")
}

// BenchmarkAblationReverseReads quantifies footnote 2: CTT-GH with a
// bi-directional drive versus forward-only scanning with seek-backs.
func BenchmarkAblationReverseReads(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		run := func(biDir bool) float64 {
			sys, err := tapejoin.NewSystem(tapejoin.Config{
				MemoryMB: 6, DiskMB: 54, BiDirectionalTape: biDir,
			})
			if err != nil {
				b.Fatal(err)
			}
			tR, _ := sys.NewTape("r", 60)
			tS, _ := sys.NewTape("s", 170)
			r, _ := sys.CreateRelation(tR, tapejoin.RelationConfig{Name: "R", SizeMB: 18, Seed: 1})
			s, _ := sys.CreateRelation(tS, tapejoin.RelationConfig{Name: "S", SizeMB: 150, Seed: 2})
			res, err := sys.Join(tapejoin.CTTGH, r, s)
			if err != nil {
				b.Fatal(err)
			}
			return res.Stats.Response.Seconds()
		}
		ratio = run(false) / run(true)
	}
	b.ReportMetric(ratio, "forward/bidir")
}

// BenchmarkAblationMultiVolume validates the Section 3.2 negligibility
// claim: S spanning 5 cartridges (robot exchanges) versus one.
func BenchmarkAblationMultiVolume(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		run := func(volumes int) float64 {
			sys, err := tapejoin.NewSystem(tapejoin.Config{MemoryMB: 4, DiskMB: 24})
			if err != nil {
				b.Fatal(err)
			}
			tR, _ := sys.NewTape("r", 30)
			var tS *tapejoin.Tape
			if volumes == 1 {
				tS, _ = sys.NewTape("s", 160)
			} else {
				tS, err = sys.NewTapeSet("s", volumes, 160/int64(volumes)+1)
				if err != nil {
					b.Fatal(err)
				}
			}
			r, _ := sys.CreateRelation(tR, tapejoin.RelationConfig{Name: "R", SizeMB: 18, Seed: 1})
			s, _ := sys.CreateRelation(tS, tapejoin.RelationConfig{Name: "S", SizeMB: 150, Seed: 2})
			res, err := sys.Join(tapejoin.DTNB, r, s)
			if err != nil {
				b.Fatal(err)
			}
			return res.Stats.Response.Seconds()
		}
		ratio = run(5) / run(1)
	}
	b.ReportMetric(ratio, "5vol/1vol")
}

// BenchmarkAblationStopStartPenalty quantifies the cost of losing
// streaming mode: the same CTT-GH join under the calibrated DLT-4000
// profile versus the paper's idealized drive.
func BenchmarkAblationStopStartPenalty(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		run := func(profile tapejoin.TapeProfile) float64 {
			sys, err := tapejoin.NewSystem(tapejoin.Config{
				MemoryMB: 6, DiskMB: 50, Profile: profile,
			})
			if err != nil {
				b.Fatal(err)
			}
			tR, _ := sys.NewTape("r", 600)
			tS, _ := sys.NewTape("s", 600)
			r, _ := sys.CreateRelation(tR, tapejoin.RelationConfig{Name: "R", SizeMB: 250, Seed: 1})
			s, _ := sys.CreateRelation(tS, tapejoin.RelationConfig{Name: "S", SizeMB: 500, Seed: 2})
			res, err := sys.Join(tapejoin.CTTGH, r, s)
			if err != nil {
				b.Fatal(err)
			}
			return res.Stats.Response.Seconds()
		}
		ratio = run(tapejoin.DLT4000) / run(tapejoin.IdealTape)
	}
	b.ReportMetric(ratio, "dlt/ideal")
}

// BenchmarkBaselineSortMerge pits the classical tape sort-merge join
// against CTT-GH on the calibrated drive: seek-bound merge passes make
// the baseline lose by an order of magnitude or more, the reason the
// paper builds on hashing.
func BenchmarkBaselineSortMerge(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		run := func(method tapejoin.Method) float64 {
			sys, err := tapejoin.NewSystem(tapejoin.Config{MemoryMB: 3, DiskMB: 54})
			if err != nil {
				b.Fatal(err)
			}
			tR, _ := sys.NewTape("r", 400)
			tS, _ := sys.NewTape("s", 500)
			r, _ := sys.CreateRelation(tR, tapejoin.RelationConfig{Name: "R", SizeMB: 18, Seed: 1})
			s, _ := sys.CreateRelation(tS, tapejoin.RelationConfig{Name: "S", SizeMB: 150, Seed: 2})
			res, err := sys.Join(method, r, s)
			if err != nil {
				b.Fatal(err)
			}
			return res.Stats.Response.Seconds()
		}
		ratio = run(tapejoin.TTSM) / run(tapejoin.CTTGH)
	}
	b.ReportMetric(ratio, "sortmerge/hash")
}

// BenchmarkFileBackendOverlap runs CDT-GH through the file backend's
// async I/O engine with paced device emulation and reports the
// measured wall-clock elapsed time and cross-device overlap fraction.
// Both units start with "wall", so benchreg records them in snapshots
// but excludes them from the regression compare — they vary with the
// machine and the moment, unlike every virtual metric.
func BenchmarkFileBackendOverlap(b *testing.B) {
	var overlap, secs float64
	for i := 0; i < b.N; i++ {
		sys, err := tapejoin.NewSystem(tapejoin.Config{
			Backend:    "file",
			BackendDir: b.TempDir(),
			FilePace:   100,
			MemoryMB:   2,
			DiskMB:     16,
		})
		if err != nil {
			b.Fatal(err)
		}
		tR, _ := sys.NewTape("r", 12)
		tS, _ := sys.NewTape("s", 24)
		r, _ := sys.CreateRelation(tR, tapejoin.RelationConfig{Name: "R", SizeMB: 4, Seed: 1})
		s, _ := sys.CreateRelation(tS, tapejoin.RelationConfig{Name: "S", SizeMB: 16, Seed: 2})
		res, err := sys.Join(tapejoin.CDTGH, r, s)
		if err != nil {
			b.Fatal(err)
		}
		overlap = res.Stats.WallOverlap
		secs = res.Stats.WallElapsed.Seconds()
	}
	b.ReportMetric(overlap, "wall-overlap")
	b.ReportMetric(secs, "wall-sec")
}

// BenchmarkPushdownSelectivity measures how a pushed-down R-side
// selection shrinks a DT-NB join: response with a 25%-selective filter
// over response without one.
func BenchmarkPushdownSelectivity(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		run := func(where tapejoin.Expr) float64 {
			sys, err := tapejoin.NewSystem(tapejoin.Config{MemoryMB: 4, DiskMB: 40})
			if err != nil {
				b.Fatal(err)
			}
			tR, _ := sys.NewTape("r", 40)
			tS, _ := sys.NewTape("s", 170)
			r, err := sys.CreateTable(tR, tapejoin.TableSpec{
				Name: "R", SizeMB: 18, Seed: 1,
				Columns: []tapejoin.Column{{Name: "id", Type: tapejoin.Int64Col}},
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := sys.CreateTable(tS, tapejoin.TableSpec{
				Name: "S", SizeMB: 150, Seed: 2,
				Columns: []tapejoin.Column{{Name: "key", Type: tapejoin.Int64Col}},
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := sys.RunQuery(tapejoin.QuerySpec{
				R: r, S: s, Where: where, Method: tapejoin.DTNB,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Response.Seconds()
		}
		quarter := tapejoin.Cmp(tapejoin.Eq,
			tapejoin.Cmp(tapejoin.Lt, tapejoin.RCol("id"), tapejoin.Lit(int64(1<<20/4))),
			tapejoin.Lit(int64(1)))
		ratio = run(nil) / run(quarter)
	}
	b.ReportMetric(ratio, "full/filtered")
}

// BenchmarkSkewJoin runs the skew experiment's CI subset and reports
// each Grace Hash method's virtual response on Zipf(0.99) keys under
// the uniform planner (skew_zipf-*) and under skew-aware partitioning
// (skew_aware-*). All eight metrics come from the deterministic
// simulator, so benchreg gates them: a skew_aware regression means
// the planner stopped absorbing the multi-load penalty.
func BenchmarkSkewJoin(b *testing.B) {
	track := map[tapejoin.Method]bool{
		tapejoin.DTGH: true, tapejoin.CDTGH: true,
		tapejoin.CTTGH: true, tapejoin.TTGH: true,
	}
	var rows []exp.SkewRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Skew(benchScale, true)
		if err != nil {
			b.Fatal(err)
		}
		if err := exp.SkewVerdict(rows); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Backend != "sim" || !track[r.Method] {
			continue
		}
		b.ReportMetric(r.Zipf.Seconds(), "skew_zipf-"+string(r.Method))
		b.ReportMetric(r.ZipfAware.Seconds(), "skew_aware-"+string(r.Method))
	}
}
