// Package obs is the structured observability layer of the simulator:
// hierarchical phase spans opened and closed in virtual time, a
// metrics registry with Prometheus-style text exposition, exporters to
// a JSONL event stream and Chrome trace_event JSON (loadable in
// Perfetto or chrome://tracing), and a critical-path analyzer that
// turns span and device intervals into a per-phase bottleneck and
// overlap table — the paper's Figures 7–9 argument as a computed
// number.
//
// Everything is nil-tolerant in the style of trace.Recorder: a nil
// *Tracker or nil *Registry (and the nil *Counter etc. they hand out)
// records nothing, so instrumented code calls unconditionally.
package obs

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Attr is one key/value annotation on a span or one label on a metric
// series.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A builds a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// AInt builds an integer attribute.
func AInt(key string, v int64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", v)} }

// Span is one phase of a join run, bounded in virtual time. Spans form
// a tree per simulation process: a span opened while another is open
// on the same process becomes its child.
type Span struct {
	// ID is unique within the tracker; 0 is "no span".
	ID int64
	// Parent is the enclosing span's ID, or 0 for a top-level phase.
	Parent int64
	// Name is the phase name, e.g. "stage-S" or "bucket-pair".
	Name string
	// Proc names the simulation process that opened the span.
	Proc string
	// Start and End bound the span in virtual time.
	Start, End sim.Time
	// WallStart and WallEnd bound the span in wall-clock time, as
	// offsets from the tracker's wall epoch. They are populated only
	// when the tracker's wall clock is enabled (a wall-clocked backend
	// is in use); both zero means "not stamped".
	WallStart, WallEnd time.Duration
	// Attrs are the span's key/value annotations.
	Attrs []Attr

	t    *Tracker
	open bool
}

// SetAttr adds (or replaces) an annotation on an open span. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Duration returns the span's length in virtual time.
func (s *Span) Duration() sim.Duration {
	if s == nil || s.End < s.Start {
		return 0
	}
	return sim.Duration(s.End - s.Start)
}

// HasWall reports whether the span carries wall-clock stamps.
func (s *Span) HasWall() bool {
	return s != nil && (s.WallStart != 0 || s.WallEnd != 0)
}

// WallDuration returns the span's wall-clock length, or 0 when the
// span was never wall-stamped (virtual-only backend).
func (s *Span) WallDuration() time.Duration {
	if !s.HasWall() || s.WallEnd < s.WallStart {
		return 0
	}
	return s.WallEnd - s.WallStart
}

// Close ends the span at p's current virtual time. Children still open
// on the same process (skipped by an error path) are closed first.
// Nil-safe and idempotent.
func (s *Span) Close(p *sim.Proc) {
	if s == nil || !s.open {
		return
	}
	now := p.Now()
	wall := s.t.wallNow()
	stack := s.t.active[p]
	for i := len(stack) - 1; i >= 0; i-- {
		sp := stack[i]
		sp.End = now
		sp.WallEnd = wall
		sp.open = false
		s.t.flight.RecordV(now, "span-close", sp.Name, sp.Proc)
		if sp == s {
			s.t.active[p] = stack[:i]
			return
		}
	}
	// Closed from a process other than the opener: end it alone.
	s.End = now
	s.WallEnd = wall
	s.open = false
	s.t.flight.RecordV(now, "span-close", s.Name, s.Proc)
}

// Tracker records spans. The simulation kernel runs one process at a
// time, so no locking is needed; a nil *Tracker records nothing.
type Tracker struct {
	nextID int64
	spans  []*Span
	active map[*sim.Proc][]*Span

	wallOn    bool
	wallEpoch time.Time
	flight    *FlightRecorder
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{active: map[*sim.Proc][]*Span{}}
}

// EnableWallClock turns on wall-clock span stamping: every span opened
// or closed from now on carries WallStart/WallEnd as offsets from the
// epoch set here (the first call; later calls are no-ops). Callers
// enable it exactly when the backend is wall-clocked, so virtual-only
// runs keep zero wall fields. Nil-safe.
func (t *Tracker) EnableWallClock() {
	if t == nil || t.wallOn {
		return
	}
	t.wallOn = true
	t.wallEpoch = time.Now()
}

// WallEpoch returns the wall-clock origin of the tracker's wall
// stamps, or the zero time when the wall clock is disabled.
func (t *Tracker) WallEpoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.wallEpoch
}

// SetFlight routes span open/close events into a flight recorder.
// Nil-safe on both sides.
func (t *Tracker) SetFlight(f *FlightRecorder) {
	if t == nil {
		return
	}
	t.flight = f
}

// wallNow returns the wall offset to stamp now, or 0 when disabled.
func (t *Tracker) wallNow() time.Duration {
	if t == nil || !t.wallOn {
		return 0
	}
	return time.Since(t.wallEpoch)
}

// Begin opens a span named name on process p at the current virtual
// time. The innermost open span on p becomes its parent. Nil-safe:
// returns nil (whose Close is a no-op) on a nil tracker.
func (t *Tracker) Begin(p *sim.Proc, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.nextID++
	s := &Span{
		ID: t.nextID, Name: name, Proc: p.Name(),
		Start: p.Now(), WallStart: t.wallNow(), Attrs: attrs,
		t: t, open: true,
	}
	if stack := t.active[p]; len(stack) > 0 {
		s.Parent = stack[len(stack)-1].ID
	}
	t.active[p] = append(t.active[p], s)
	t.spans = append(t.spans, s)
	t.flight.RecordV(s.Start, "span-open", name, s.Proc)
	return s
}

// ActiveSpan returns the innermost open span's ID on process p, or 0.
// It implements trace.SpanSource, which is how device events get
// stamped with the phase that issued them.
func (t *Tracker) ActiveSpan(p *sim.Proc) int64 {
	if t == nil {
		return 0
	}
	stack := t.active[p]
	if len(stack) == 0 {
		return 0
	}
	return stack[len(stack)-1].ID
}

// Finish closes every span still open at virtual time now — a safety
// net for error paths that unwound past their Close calls. Nil-safe.
func (t *Tracker) Finish(now sim.Time) {
	if t == nil {
		return
	}
	wall := t.wallNow()
	for _, s := range t.spans {
		if s.open {
			s.End = now
			s.WallEnd = wall
			s.open = false
		}
	}
	t.active = map[*sim.Proc][]*Span{}
}

// Spans returns every span recorded so far, in open order.
func (t *Tracker) Spans() []*Span {
	if t == nil {
		return nil
	}
	return t.spans
}
