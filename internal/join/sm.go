package join

import (
	"fmt"
	"sort"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TTSM is Tape–Tape Sort-Merge Join: the classical alternative the
// paper's hashing methods displace (Knuth's tape sorting, cited in the
// paper's footnote 2). Both relations are sorted on tape — run
// formation in memory-sized loads, then k-way merge passes ping-ponging
// between fixed workspaces on the two cartridges — and joined with a
// streaming merge join. It is implemented as the comparison baseline:
// merge passes read runs interleaved, which costs a tape seek per
// buffer refill, and the whole of |R| + |S| must be rewritten log_k
// times. Even with overwrite-in-place workspaces (an idealization in
// its favor), it loses badly to the Grace Hash methods on real tape.
type TTSM struct{}

// Name implements Method.
func (TTSM) Name() string { return "Tape-Tape Sort-Merge Join (baseline)" }

// Symbol implements Method.
func (TTSM) Symbol() string { return "TT-SM" }

// smFanIn splits M blocks of memory into a merge fan-in k, a per-run
// input buffer of inBuf blocks and an outBuf-block output buffer.
// Larger input buffers amortize the tape seek each refill costs, at
// the price of a smaller fan-in (more passes) — the fundamental
// tension that makes tape sort-merge lose to hashing.
func smFanIn(m, ioChunk int64) (k int, inBuf, outBuf int64) {
	outBuf = ioChunk
	if outBuf > m/3 {
		outBuf = m / 3
	}
	if outBuf < 1 {
		outBuf = 1
	}
	avail := m - outBuf
	// Prefer input buffers near the request-size threshold, but keep
	// at least a 4-way merge when memory allows.
	inBuf = ioChunk
	for inBuf > 1 && avail/inBuf < 4 {
		inBuf /= 2
	}
	if inBuf < 1 {
		inBuf = 1
	}
	k = int(avail / inBuf)
	if k < 2 {
		k = 2
		inBuf = max64(1, avail/2)
	}
	return k, inBuf, outBuf
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Check implements Method: M >= 4 blocks (two merge inputs, an output
// block and slack), and both cartridges need workspace for sorting
// both relations: the away copy of each relation's runs plus ping-pong
// room — |R| + |S| per cartridge, with per-run partial-block slack.
func (TTSM) Check(spec Spec, res Resources) error {
	if res.MemoryBlocks < 4 {
		return fmt.Errorf("%w: M=%d < 4 blocks for a 2-way tape merge", ErrNeedMemory, res.MemoryBlocks)
	}
	r, s := spec.R.Region.N, spec.S.Region.N
	slack := r/res.MemoryBlocks + s/res.MemoryBlocks + 16
	need := r + s + slack
	if free := spec.R.Media.Free(); free < need {
		return fmt.Errorf("%w: R tape has %d free, sort workspaces need ~%d", ErrNeedTapeScratch, free, need)
	}
	if free := spec.S.Media.Free(); free < need {
		return fmt.Errorf("%w: S tape has %d free, sort workspaces need ~%d", ErrNeedTapeScratch, free, need)
	}
	return nil
}

// smWorkspace is a fixed, reusable region of tape scratch. The first
// write appends (establishing the region); later passes overwrite in
// place.
type smWorkspace struct {
	drive device.Drive
	base  device.Addr
	used  int64 // blocks written by the current pass
	live  bool  // base established
}

// reset starts a new pass over the workspace.
func (w *smWorkspace) reset() { w.used = 0 }

// write appends blocks to the workspace's current pass.
func (w *smWorkspace) write(p *sim.Proc, blks []block.Block) (device.Region, error) {
	n := int64(len(blks))
	if !w.live {
		reg, err := w.drive.Append(p, blks)
		if err != nil {
			return device.Region{}, err
		}
		if w.used == 0 {
			w.base = reg.Start
			w.live = true
		}
		w.used += n
		return reg, nil
	}
	start := w.base + device.Addr(w.used)
	if err := w.drive.WriteAt(p, start, blks); err != nil {
		return device.Region{}, err
	}
	w.used += n
	return device.Region{Start: start, N: n}, nil
}

// tupleStream reads a sorted tape region sequentially, bufBlocks at a
// time. Reads go through the env's retrying device-read path; TT-SM
// has no checkpoints (a failed read aborts the sort), so retries are
// its only recovery.
type tupleStream struct {
	e      *env
	drive  device.Drive
	region device.Region
	buf    int64

	off  int64
	cur  []block.Tuple
	idx  int
	done bool
}

// next returns the stream's next tuple.
func (ts *tupleStream) next(p *sim.Proc) (block.Tuple, bool, error) {
	for ts.idx >= len(ts.cur) {
		if ts.off >= ts.region.N {
			ts.done = true
			return block.Tuple{}, false, nil
		}
		n := min64(ts.buf, ts.region.N-ts.off)
		blks, err := ts.e.tapeRead(p, ts.drive, ts.region.Start+device.Addr(ts.off), n)
		if err != nil {
			return block.Tuple{}, false, err
		}
		ts.off += n
		ts.cur = ts.cur[:0]
		ts.idx = 0
		if err := forEachTuple(blks, func(t block.Tuple) { ts.cur = append(ts.cur, t) }); err != nil {
			return block.Tuple{}, false, err
		}
	}
	t := ts.cur[ts.idx]
	ts.idx++
	return t, true, nil
}

// blockPacker packs tuples into blocks and flushes them to a workspace
// in outBuf-block batches.
type blockPacker struct {
	ws      *smWorkspace
	builder *block.Builder
	pending []block.Block
	perBlk  int
	outBuf  int64

	start   device.Addr
	written int64

	// collect, when set, records the first key of every packed block —
	// the run's empirical CDF at block granularity, used by the
	// probe-narrowing merge join. Index i is block i of the run.
	collect bool
	fences  []uint64
}

func newBlockPacker(ws *smWorkspace, tag byte, perBlk int, outBuf int64) *blockPacker {
	return &blockPacker{ws: ws, builder: block.NewBuilder(tag), perBlk: perBlk, outBuf: outBuf}
}

func (bp *blockPacker) add(p *sim.Proc, t block.Tuple) error {
	if bp.collect && bp.builder.Len() == 0 {
		bp.fences = append(bp.fences, t.Key)
	}
	bp.builder.Append(t)
	if bp.builder.Len() < bp.perBlk {
		return nil
	}
	bp.pending = append(bp.pending, bp.builder.Finish())
	if int64(len(bp.pending)) >= bp.outBuf {
		return bp.flush(p)
	}
	return nil
}

func (bp *blockPacker) flush(p *sim.Proc) error {
	if len(bp.pending) == 0 {
		return nil
	}
	reg, err := bp.ws.write(p, bp.pending)
	if err != nil {
		return err
	}
	if bp.written == 0 {
		bp.start = reg.Start
	}
	bp.written += reg.N
	bp.pending = bp.pending[:0]
	return nil
}

// finish flushes the partial block and pending buffer and returns the
// run's region.
func (bp *blockPacker) finish(p *sim.Proc) (device.Region, error) {
	if bp.builder.Len() > 0 {
		bp.pending = append(bp.pending, bp.builder.Finish())
	}
	if err := bp.flush(p); err != nil {
		return device.Region{}, err
	}
	return device.Region{Start: bp.start, N: bp.written}, nil
}

// sortOnTape sorts one relation: run formation from the source region,
// then k-way merge passes ping-ponging between a workspace on each
// cartridge. Returns the drive and region of the final sorted copy,
// plus — when probe narrowing is on — the final run's block fence
// index (first key of each block), collected for free during the last
// write pass. scans counts full passes over the relation's data.
func sortOnTape(e *env, p *sim.Proc, src device.Drive, region device.Region,
	perBlk int, tag byte, wsHome, wsAway *smWorkspace, keep keepFn, scans *int) (device.Drive, device.Region, []uint64, error) {

	m := e.res.MemoryBlocks
	k, inBuf, outBuf := smFanIn(m, e.res.IOChunk)

	// Run formation: memory-loads of the source, sorted and written to
	// the away workspace.
	wsAway.reset()
	var runs []device.Region
	var fences [][]uint64
	sp := e.span(p, "sort-runs", obs.AInt("blocks", region.N))
	err := func() error {
		e.mem.acquire(m)
		defer e.mem.release(m)
		for off := int64(0); off < region.N; off += m {
			n := min64(m, region.N-off)
			blks, err := e.tapeRead(p, src, region.Start+device.Addr(off), n)
			if err != nil {
				return err
			}
			var tuples []block.Tuple
			err = forEachTuple(blks, func(t block.Tuple) {
				if keep != nil && !keep(t) {
					return
				}
				tuples = append(tuples, t)
			})
			if err != nil {
				return err
			}
			sort.SliceStable(tuples, func(i, j int) bool { return tuples[i].Key < tuples[j].Key })
			bp := newBlockPacker(wsAway, tag, perBlk, outBuf)
			bp.collect = e.res.ProbeNarrow
			for _, t := range tuples {
				if err := bp.add(p, t); err != nil {
					return err
				}
			}
			run, err := bp.finish(p)
			if err != nil {
				return err
			}
			runs = append(runs, run)
			fences = append(fences, bp.fences)
		}
		return nil
	}()
	sp.Close(p)
	if err != nil {
		return nil, device.Region{}, nil, err
	}
	*scans++

	// Merge passes: read k runs interleaved from one workspace, write
	// merged runs to the other.
	cur, other := wsAway, wsHome
	for len(runs) > 1 {
		other.reset()
		var merged []device.Region
		var mergedFences [][]uint64
		sp := e.span(p, "merge-pass", obs.AInt("runs", int64(len(runs))))
		for lo := 0; lo < len(runs); lo += k {
			hi := lo + k
			if hi > len(runs) {
				hi = len(runs)
			}
			run, fence, err := mergeRuns(e, p, cur.drive, runs[lo:hi], other, perBlk, tag, inBuf, outBuf)
			if err != nil {
				sp.Close(p)
				return nil, device.Region{}, nil, err
			}
			merged = append(merged, run)
			mergedFences = append(mergedFences, fence)
		}
		sp.Close(p)
		runs, fences = merged, mergedFences
		cur, other = other, cur
		e.stats.Iterations++
		*scans++
	}
	return cur.drive, runs[0], fences[0], nil
}

// mergeRuns k-way merges sorted runs living on one drive into a single
// run on the destination workspace.
func mergeRuns(e *env, p *sim.Proc, src device.Drive, runs []device.Region,
	dst *smWorkspace, perBlk int, tag byte, inBuf, outBuf int64) (device.Region, []uint64, error) {

	e.mem.acquire(int64(len(runs))*inBuf + outBuf)
	defer e.mem.release(int64(len(runs))*inBuf + outBuf)

	streams := make([]*tupleStream, len(runs))
	heads := make([]block.Tuple, len(runs))
	alive := make([]bool, len(runs))
	for i, run := range runs {
		streams[i] = &tupleStream{e: e, drive: src, region: run, buf: inBuf}
		t, ok, err := streams[i].next(p)
		if err != nil {
			return device.Region{}, nil, err
		}
		heads[i], alive[i] = t, ok
	}
	bp := newBlockPacker(dst, tag, perBlk, outBuf)
	bp.collect = e.res.ProbeNarrow
	for {
		best := -1
		for i := range heads {
			if alive[i] && (best < 0 || heads[i].Key < heads[best].Key) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		if err := bp.add(p, heads[best]); err != nil {
			return device.Region{}, nil, err
		}
		t, ok, err := streams[best].next(p)
		if err != nil {
			return device.Region{}, nil, err
		}
		heads[best], alive[best] = t, ok
	}
	reg, err := bp.finish(p)
	return reg, bp.fences, err
}

func (TTSM) run(e *env, p *sim.Proc) error {
	// Workspaces: each relation sorts between a workspace on its own
	// cartridge and one on the other. R sorts first; S's workspaces
	// are established after, so they never collide.
	wsRonS := &smWorkspace{drive: e.driveS} // R's away workspace
	wsRonR := &smWorkspace{drive: e.driveR} // R's home workspace
	rDrive, rSorted, rFences, err := sortOnTape(e, p, e.driveR, e.spec.R.Region,
		e.spec.R.TuplesPerBlock, e.spec.R.Tag, wsRonR, wsRonS, e.filterR(), &e.stats.RScans)
	if err != nil {
		return err
	}

	sScans := 0
	wsSonR := &smWorkspace{drive: e.driveR}
	wsSonS := &smWorkspace{drive: e.driveS}
	sDrive, sSorted, sFences, err := sortOnTape(e, p, e.driveS, e.spec.S.Region,
		e.spec.S.TuplesPerBlock, e.spec.S.Tag, wsSonS, wsSonR, e.filterS(), &sScans)
	if err != nil {
		return err
	}

	// The merge join streams both sorted copies concurrently, so they
	// must sit on different drives; relocate R's if they collided. The
	// copy preserves block boundaries, so the fence index stays valid.
	if rDrive == sDrive {
		dst := e.driveR
		if rDrive == e.driveR {
			dst = e.driveS
		}
		ws := &smWorkspace{drive: dst}
		moved, err := copySorted(e, p, rDrive, rSorted, ws)
		if err != nil {
			return err
		}
		rDrive, rSorted = dst, moved
		e.stats.RScans++
	}
	e.markStepI(p)

	return mergeJoin(e, p, rDrive, rSorted, rFences, sDrive, sSorted, sFences)
}

// copySorted moves a sorted region to a workspace on another drive.
func copySorted(e *env, p *sim.Proc, src device.Drive, region device.Region, dst *smWorkspace) (device.Region, error) {
	var out device.Region
	for off := int64(0); off < region.N; off += e.res.IOChunk {
		n := min64(e.res.IOChunk, region.N-off)
		blks, err := e.tapeRead(p, src, region.Start+device.Addr(off), n)
		if err != nil {
			return device.Region{}, err
		}
		reg, err := dst.write(p, blks)
		if err != nil {
			return device.Region{}, err
		}
		if off == 0 {
			out = reg
		} else {
			out.N += reg.N
		}
	}
	return out, nil
}

// narrowTo jumps a trailing sorted stream forward to the last block
// whose fence key is still below target, when the fence index — the
// run's block-granularity CDF — predicts the gap is worth a fresh
// seek. Safe by construction: every skipped block starts at or before
// a fence key strictly below target, and a sorted run's block can hold
// nothing greater than the next block's first key.
func narrowTo(e *env, ts *tupleStream, fences []uint64, target uint64) {
	if len(fences) == 0 {
		return
	}
	i := sort.Search(len(fences), func(i int) bool { return fences[i] >= target })
	dst := int64(i - 1)
	// Only jump well past the read-ahead window: a short hop costs a
	// seek and saves nothing the streaming buffer wouldn't.
	if dst <= ts.off+2*ts.buf {
		return
	}
	e.stats.ProbeJumps++
	e.stats.ProbeSkippedBlocks += dst - ts.off
	ts.off = dst
	ts.cur = ts.cur[:0]
	ts.idx = 0
}

// mergeJoin streams the two sorted relations and emits every matching
// pair, buffering each R key group in memory (R is the smaller side;
// groups are its key multiplicities). Non-empty fence indexes enable
// probe narrowing: whichever stream trails skips straight past blocks
// that cannot contain the other stream's current key.
func mergeJoin(e *env, p *sim.Proc, rDrive device.Drive, rReg device.Region, rFences []uint64,
	sDrive device.Drive, sReg device.Region, sFences []uint64) error {

	sp := e.span(p, "merge-join")
	defer sp.Close(p)
	buf := min64(e.res.IOChunk, e.res.MemoryBlocks/3)
	if buf < 1 {
		buf = 1
	}
	e.mem.acquire(2 * buf)
	defer e.mem.release(2 * buf)
	rs := &tupleStream{e: e, drive: rDrive, region: rReg, buf: buf}
	ss := &tupleStream{e: e, drive: sDrive, region: sReg, buf: buf}

	rT, rOK, err := rs.next(p)
	if err != nil {
		return err
	}
	sT, sOK, err := ss.next(p)
	if err != nil {
		return err
	}
	var group []block.Tuple
	for rOK && sOK {
		switch {
		case rT.Key < sT.Key:
			narrowTo(e, rs, rFences, sT.Key)
			rT, rOK, err = rs.next(p)
		case rT.Key > sT.Key:
			narrowTo(e, ss, sFences, rT.Key)
			sT, sOK, err = ss.next(p)
		default:
			key := rT.Key
			group = group[:0]
			for rOK && rT.Key == key {
				group = append(group, rT)
				rT, rOK, err = rs.next(p)
				if err != nil {
					return err
				}
			}
			for sOK && sT.Key == key {
				for _, g := range group {
					e.emit(p, g, sT)
				}
				if err := e.checkStop(); err != nil {
					return err
				}
				sT, sOK, err = ss.next(p)
				if err != nil {
					return err
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
