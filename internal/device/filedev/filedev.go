// Package filedev is the real-I/O backend: cartridges and disk
// scratch map to OS files, and transfers cost the wall-clock time the
// OS actually took, charged into the simulation clock so phase spans
// and stats report honest hardware numbers.
//
// Tape files are sequential-only: every read and write streams
// length-prefixed block records through an OS file, and head
// repositioning charges the drive profile's modeled seek latency
// (SeekFixed + distance * SeekPerBlock) — an OS file seeks for free,
// a tape transport does not, so the position model is the one part of
// the virtual cost model that survives into this backend. Disk
// scratch files are direct-offset: any block is one pread away and
// only the measured transfer time is charged.
//
// The mounted tape.Medium stays authoritative for content: appends
// and overwrites dual-write through the medium's setup interface, and
// Load respools the medium's current contents into the drive's
// spool file. That keeps media state consistent across unload/reload,
// shared-transport degrades, and the workload engine's mount
// scheduling, while every in-run transfer still moves real bytes
// through the OS.
package filedev

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/sim"
)

// Backend builds file-backed drives and stores rooted in one scratch
// directory. The zero Dir uses the process temp directory.
type Backend struct {
	// Dir is the root scratch directory; it is created on demand.
	Dir string
}

var _ device.Backend = &Backend{}

// New returns a backend rooted at dir.
func New(dir string) *Backend { return &Backend{Dir: dir} }

// Name implements device.Backend.
func (b *Backend) Name() string { return "file" }

// scratch makes a fresh unique directory for one device under the
// backend root.
func (b *Backend) scratch(kind, name string) (string, error) {
	root := b.Dir
	if root == "" {
		root = os.TempDir()
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return "", err
	}
	return os.MkdirTemp(root, fmt.Sprintf("%s-%s-", kind, sanitize(name)))
}

// sanitize keeps device names path-safe.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// NewDrive implements device.Backend.
func (b *Backend) NewDrive(k *sim.Kernel, name string, cfg device.DriveConfig) (device.Drive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dir, err := b.scratch("tape", name)
	if err != nil {
		return nil, err
	}
	return &Drive{name: name, k: k, cfg: cfg, dir: dir,
		res: sim.NewResource(k, "tape:"+name, 1)}, nil
}

// NewSharedDrivePair implements device.Backend: two logical drives
// serialized on one transport resource, for the post-drive-loss
// degraded configuration. Switching the transport between the drives
// forces a reposition on the next request, like moving one physical
// head between two mounted cartridges.
func (b *Backend) NewSharedDrivePair(k *sim.Kernel, nameA, nameB string, cfg device.DriveConfig) (device.Drive, device.Drive, error) {
	da, err := b.NewDrive(k, nameA, cfg)
	if err != nil {
		return nil, nil, err
	}
	db, err := b.NewDrive(k, nameB, cfg)
	if err != nil {
		return nil, nil, err
	}
	a, bb := da.(*Drive), db.(*Drive)
	t := &transport{res: a.res}
	a.shared, bb.shared = t, t
	bb.res = a.res
	return a, bb, nil
}

// NewStore implements device.Backend.
func (b *Backend) NewStore(k *sim.Kernel, cfg device.StoreConfig) (device.Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dir, err := b.scratch("disk", "store")
	if err != nil {
		return nil, err
	}
	return &Store{k: k, cfg: cfg, dir: dir}, nil
}

// transport is the shared-head state of a degraded drive pair.
type transport struct {
	res  *sim.Resource
	last *Drive
}

// recFile is a length-prefixed block-record file with an in-memory
// index: record i of the logical device lives at index[i] with length
// lens[i]. Overwrites append a fresh record and repoint the index —
// the file itself is append-only, like a tape with block remapping.
type recFile struct {
	f     *os.File
	index []int64
	lens  []int32
	end   int64 // append offset
}

func createRecFile(path string) (*recFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &recFile{f: f}, nil
}

// appendRecords writes blks as new records and registers them at
// logical positions pos, pos+1, ...; pos may repoint existing entries
// or extend the index by exactly one record at a time.
func (r *recFile) appendRecords(pos int64, blks []block.Block) error {
	var hdr [4]byte
	for _, blk := range blks {
		off := r.end
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(blk)))
		if _, err := r.f.WriteAt(hdr[:], off); err != nil {
			return err
		}
		if _, err := r.f.WriteAt(blk, off+4); err != nil {
			return err
		}
		r.end = off + 4 + int64(len(blk))
		switch {
		case pos < int64(len(r.index)):
			r.index[pos], r.lens[pos] = off, int32(len(blk))
		case pos == int64(len(r.index)):
			r.index = append(r.index, off)
			r.lens = append(r.lens, int32(len(blk)))
		default:
			return fmt.Errorf("filedev: write at %d leaves a gap (len %d)", pos, len(r.index))
		}
		pos++
	}
	return nil
}

// readRecords reads n records starting at logical position off.
func (r *recFile) readRecords(off, n int64) ([]block.Block, error) {
	if off < 0 || n < 0 || off+n > int64(len(r.index)) {
		return nil, fmt.Errorf("filedev: read [%d,%d) out of range [0,%d)", off, off+n, len(r.index))
	}
	out := make([]block.Block, 0, n)
	for i := off; i < off+n; i++ {
		buf := make([]byte, r.lens[i])
		if _, err := r.f.ReadAt(buf, r.index[i]+4); err != nil {
			return nil, fmt.Errorf("filedev: record %d: %w", i, err)
		}
		out = append(out, block.Block(buf))
	}
	return out, nil
}

// truncate drops all records from logical position n onward.
func (r *recFile) truncate(n int64) {
	if n < int64(len(r.index)) {
		r.index = r.index[:n]
		r.lens = r.lens[:n]
	}
}

func (r *recFile) close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// hold charges the measured wall-clock duration of a completed OS
// operation into the simulation clock.
func hold(p *sim.Proc, t0 time.Time) sim.Duration {
	d := sim.Duration(time.Since(t0))
	if d > 0 {
		p.Hold(d)
	}
	return d
}

// remove deletes a device's scratch directory, ignoring errors — the
// OS temp cleaner is the backstop.
func remove(dir string) {
	if dir != "" && dir != string(filepath.Separator) {
		os.RemoveAll(dir)
	}
}
