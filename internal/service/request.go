package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"unicode/utf8"
)

// Request is the wire form of one join query POSTed to /join. The
// decoder is strict: unknown fields, malformed JSON, out-of-range
// values and oversized identifiers are all rejected before anything
// reaches the scheduler, so the daemon's admission path cannot be
// wedged by a hostile body (FuzzServiceRequest pins this).
type Request struct {
	// ID labels the query in the response; empty lets the daemon
	// assign one. At most MaxIDLen bytes, valid UTF-8.
	ID string `json:"id,omitempty"`
	// Tenant is the quota-accounting principal (default "default").
	Tenant string `json:"tenant,omitempty"`
	// Method requests a join method symbol; empty lets the cost
	// advisor pick.
	Method string `json:"method,omitempty"`
	// R and S name catalog relations (required). R is the smaller side.
	R string `json:"r"`
	S string `json:"s"`
	// Priority orders the queue: higher first, within [-100, 100].
	Priority int `json:"priority,omitempty"`
	// DeadlineMS expires the query if service has not started within
	// this many wall-clock milliseconds of admission (0 = no deadline).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Stream asks for the matched pairs to be streamed back as JSONL
	// ahead of the final result line.
	Stream bool `json:"stream,omitempty"`
	// StopAfter, when positive, stops the join after this many output
	// pairs (a true LIMIT-n: tape reading stops, the result line carries
	// stopped=true and an exact prefix count). Combine with Stream to
	// receive the prefix as pair lines. StopAfter queries always run
	// solo — never as shared-scan riders.
	StopAfter int64 `json:"stop_after,omitempty"`
}

// Wire-format bounds enforced by DecodeRequest.
const (
	// MaxRequestBytes bounds the /join body.
	MaxRequestBytes = 1 << 20
	// MaxIDLen bounds Request.ID and the relation names.
	MaxIDLen = 128
	// MaxTenantLen bounds Request.Tenant.
	MaxTenantLen = 64
	// MaxPriority bounds |Request.Priority|.
	MaxPriority = 100
	// MaxDeadlineMS bounds Request.DeadlineMS (24 h).
	MaxDeadlineMS = 24 * 60 * 60 * 1000
)

// ErrBadRequest classifies every decode rejection; errors.Is lets the
// handler map them all to one 400 path.
var ErrBadRequest = errors.New("bad request")

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// DecodeRequest parses and validates one /join body.
func DecodeRequest(data []byte) (*Request, error) {
	if len(data) == 0 {
		return nil, badf("empty body")
	}
	if len(data) > MaxRequestBytes {
		return nil, badf("body %d bytes exceeds %d", len(data), MaxRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, badf("decode: %v", err)
	}
	// Reject trailing garbage after the document: a second Decode must
	// hit EOF.
	if dec.More() {
		return nil, badf("trailing data after request document")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate checks the request's field bounds (decode-independent, so
// programmatic submitters get the same contract).
func (r *Request) Validate() error {
	check := func(field, v string, max int, required bool) error {
		switch {
		case v == "" && required:
			return badf("%s is required", field)
		case len(v) > max:
			return badf("%s is %d bytes (max %d)", field, len(v), max)
		case !utf8.ValidString(v):
			return badf("%s is not valid UTF-8", field)
		}
		return nil
	}
	if err := check("r", r.R, MaxIDLen, true); err != nil {
		return err
	}
	if err := check("s", r.S, MaxIDLen, true); err != nil {
		return err
	}
	if err := check("id", r.ID, MaxIDLen, false); err != nil {
		return err
	}
	if err := check("tenant", r.Tenant, MaxTenantLen, false); err != nil {
		return err
	}
	if err := check("method", r.Method, MaxIDLen, false); err != nil {
		return err
	}
	if r.Priority < -MaxPriority || r.Priority > MaxPriority {
		return badf("priority %d outside [%d, %d]", r.Priority, -MaxPriority, MaxPriority)
	}
	if r.DeadlineMS < 0 || r.DeadlineMS > MaxDeadlineMS {
		return badf("deadline_ms %d outside [0, %d]", r.DeadlineMS, MaxDeadlineMS)
	}
	if r.StopAfter < 0 {
		return badf("stop_after %d is negative", r.StopAfter)
	}
	return nil
}
