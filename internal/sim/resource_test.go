package sim

import (
	"testing"
	"time"
)

func TestResourceMutualExclusion(t *testing.T) {
	// Two 5s holds on a capacity-1 resource serialize: total 10s.
	k := NewKernel()
	r := NewResource(k, "drive", 1)
	work := func(p *Proc) {
		r.Acquire(p)
		p.Hold(5 * time.Second)
		r.Release(p)
	}
	k.Spawn("a", work)
	k.Spawn("b", work)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != Time(10*time.Second) {
		t.Fatalf("now = %v, want 10s", k.Now())
	}
	if r.BusyTime != 10*time.Second {
		t.Fatalf("busy = %v, want 10s", r.BusyTime)
	}
	if r.Acquisitions != 2 {
		t.Fatalf("acquisitions = %d, want 2", r.Acquisitions)
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "disks", 2)
	work := func(p *Proc) {
		r.Acquire(p)
		p.Hold(5 * time.Second)
		r.Release(p)
	}
	k.Spawn("a", work)
	k.Spawn("b", work)
	k.Spawn("c", work)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// a,b run [0,5); c runs [5,10).
	if k.Now() != Time(10*time.Second) {
		t.Fatalf("now = %v, want 10s", k.Now())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "dev", 1)
	var order []string
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Hold(time.Second)
		r.Release(p)
	})
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, name)
			p.Hold(time.Second)
			r.Release(p)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "w1" || order[1] != "w2" || order[2] != "w3" {
		t.Fatalf("order = %v", order)
	}
}

func TestTryAcquire(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "dev", 1)
	k.Spawn("a", func(p *Proc) {
		if !r.TryAcquire(p) {
			t.Error("first TryAcquire should succeed")
		}
		if r.TryAcquire(p) {
			t.Error("second TryAcquire should fail")
		}
		r.Release(p)
		if !r.TryAcquire(p) {
			t.Error("TryAcquire after release should succeed")
		}
		r.Release(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceUse(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "dev", 1)
	k.Spawn("a", func(p *Proc) {
		r.Use(p, func() {
			if r.InUse() != 1 {
				t.Errorf("inUse = %d, want 1", r.InUse())
			}
			p.Hold(time.Second)
		})
		if r.InUse() != 0 {
			t.Errorf("inUse after Use = %d, want 0", r.InUse())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseIdleResourcePanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "dev", 1)
	k.Spawn("a", func(p *Proc) { r.Release(p) })
	err := k.Run()
	if err == nil {
		t.Fatal("expected captured panic")
	}
}

func TestNewResourceBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResource(NewKernel(), "dev", 0)
}

func TestResourceBusyTimeFractional(t *testing.T) {
	// Capacity-2 resource held by one proc for 10s accrues 5s of
	// capacity-weighted busy time.
	k := NewKernel()
	r := NewResource(k, "pair", 2)
	k.Spawn("a", func(p *Proc) {
		r.Acquire(p)
		p.Hold(10 * time.Second)
		r.Release(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.BusyTime != 5*time.Second {
		t.Fatalf("busy = %v, want 5s", r.BusyTime)
	}
}
