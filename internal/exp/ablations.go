package exp

import (
	"fmt"
	"time"

	"repro/internal/join"
	"repro/internal/relation"
	"repro/internal/tape"
)

// AblationRow compares one design choice: the paper's choice as
// baseline against the alternative.
type AblationRow struct {
	// Name identifies the design choice.
	Name string
	// Baseline is the paper's design; Variant the alternative.
	Baseline, Variant time.Duration
	// Ratio is Variant / Baseline (> 1 means the paper's choice wins).
	Ratio float64
	// Note explains what was varied.
	Note string
}

// ablationSpec builds a fresh R/S pair for one ablation run.
func ablationSpec(rBlocks, sBlocks int64, scratch int64) (join.Spec, error) {
	mR := tape.NewMedia("abl-r", rBlocks+scratch)
	mS := tape.NewMedia("abl-s", sBlocks+scratch)
	r, err := relation.WriteToTape(relation.Config{
		Name: "R", Tag: 1, Blocks: rBlocks, TuplesPerBlock: 2, KeySpace: 1 << 20, Seed: 7,
	}, mR)
	if err != nil {
		return join.Spec{}, err
	}
	s, err := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: sBlocks, TuplesPerBlock: 2, KeySpace: 1 << 20, Seed: 8,
	}, mS)
	if err != nil {
		return join.Spec{}, err
	}
	return join.Spec{R: r, S: s}, nil
}

// ablationRes is the base device complex for the ablations: the
// Experiment 3 geometry on the calibrated drive.
func ablationRes(rBlocks int64) join.Resources {
	return join.Resources{
		MemoryBlocks: rBlocks / 6,
		DiskBlocks:   rBlocks * 3,
		Tape:         tape.DLT4000(),
	}.WithDefaults()
}

// runOnce builds a fresh spec and runs one method. Tape scratch is
// sized for the hash methods; the sort-merge row overrides it.
func runOnce(m join.Method, rBlocks, sBlocks int64, mutate func(*join.Resources)) (time.Duration, error) {
	scratch := rBlocks + 64
	if _, isSM := m.(join.TTSM); isSM {
		scratch = rBlocks + sBlocks + sBlocks/8 + 256 // sort workspaces + per-run partial blocks
	}
	spec, err := ablationSpec(rBlocks, sBlocks, scratch)
	if err != nil {
		return 0, err
	}
	res := ablationRes(rBlocks)
	if mutate != nil {
		mutate(&res)
	}
	result, err := join.Run(m, spec, res, nil)
	if err != nil {
		return 0, err
	}
	return result.Stats.Response, nil
}

// Ablations quantifies the design choices DESIGN.md calls out, at the
// given workload scale (1.0 = |R| = 18 MB, |S| = 1000 MB).
func Ablations(scale float64) ([]AblationRow, error) {
	rBlocks := int64(18 * 16) // fixed geometry (|R| = 18 MB); |S| scales
	sBlocks := MBblocks(scaleMB(1000, scale))
	var rows []AblationRow

	add := func(name, note string, base, variant time.Duration) {
		rows = append(rows, AblationRow{
			Name: name, Baseline: base, Variant: variant,
			Ratio: float64(variant) / float64(base), Note: note,
		})
	}

	// 1. Interleaved vs split double-buffering (Section 4's claim).
	inter, err := runOnce(join.CDTNBDB{}, rBlocks, sBlocks, nil)
	if err != nil {
		return nil, fmt.Errorf("interleaved: %w", err)
	}
	split, err := runOnce(join.CDTNBDB{}, rBlocks, sBlocks, func(r *join.Resources) {
		r.Discipline = join.SplitHalves
	})
	if err != nil {
		return nil, fmt.Errorf("split: %w", err)
	}
	add("double-buffering", "CDT-NB/DB: interleaved (paper) vs split halves", inter, split)

	// 2. Bi-directional bucket scans (footnote 2) vs forward-only.
	rev, err := runOnce(join.CTTGH{}, rBlocks, sBlocks, func(r *join.Resources) {
		r.Tape.BiDirectional = true
		r.MemoryBlocks = rBlocks / 3 // buckets must fit memory in one load
	})
	if err != nil {
		return nil, fmt.Errorf("reverse: %w", err)
	}
	fwd, err := runOnce(join.CTTGH{}, rBlocks, sBlocks, func(r *join.Resources) {
		r.MemoryBlocks = rBlocks / 3
	})
	if err != nil {
		return nil, fmt.Errorf("forward: %w", err)
	}
	add("scan direction", "CTT-GH: bi-directional bucket scans vs forward-only with seek-back", rev, fwd)

	// 3. Idealized drive vs the calibrated DLT-4000 penalties.
	ideal, err := runOnce(join.CTTGH{}, rBlocks, sBlocks, func(r *join.Resources) {
		r.Tape = tape.Ideal()
		r.DiskOverhead = time.Nanosecond
	})
	if err != nil {
		return nil, fmt.Errorf("ideal: %w", err)
	}
	dlt, err := runOnce(join.CTTGH{}, rBlocks, sBlocks, nil)
	if err != nil {
		return nil, fmt.Errorf("dlt: %w", err)
	}
	add("device penalties", "CTT-GH: paper's ideal cost model vs calibrated DLT-4000 (seeks, stop/start)", ideal, dlt)

	// 4. Disk positioning overhead at minimal Grace Hash memory,
	// where bucket write buffers shrink to one block and bucket
	// writes degrade into random I/O (the Section 9 / Figure 8
	// small-M uptick). Free positioning vs the calibrated 18 ms.
	minM := func(r *join.Resources) { r.MemoryBlocks = 20 } // wb = 1 block
	free, err := runOnce(join.DTGH{}, rBlocks, sBlocks, func(r *join.Resources) {
		minM(r)
		r.DiskOverhead = time.Nanosecond
	})
	if err != nil {
		return nil, fmt.Errorf("free positioning: %w", err)
	}
	paid, err := runOnce(join.DTGH{}, rBlocks, sBlocks, minM)
	if err != nil {
		return nil, fmt.Errorf("paid positioning: %w", err)
	}
	add("random bucket I/O", "DT-GH at M~sqrt(|R|): free disk positioning vs 18 ms per request", free, paid)

	// 5. Hashing vs the classical alternative: CTT-GH vs the tape
	// sort-merge baseline, both on the calibrated drive.
	hash, err := runOnce(join.CTTGH{}, rBlocks, sBlocks, nil)
	if err != nil {
		return nil, fmt.Errorf("ctt-gh: %w", err)
	}
	sm, err := runOnce(join.TTSM{}, rBlocks, sBlocks, nil)
	if err != nil {
		return nil, fmt.Errorf("tt-sm: %w", err)
	}
	add("hashing vs sorting", "CTT-GH vs the tape sort-merge baseline (Knuth-style runs + k-way merges)", hash, sm)

	// 6. Multi-volume S with robot exchanges vs one cartridge
	// (Section 3.2's negligibility claim).
	single, err := runOnce(join.DTNB{}, rBlocks, sBlocks, func(r *join.Resources) {
		r.DiskBlocks = rBlocks + r.MemoryBlocks + 8
	})
	if err != nil {
		return nil, fmt.Errorf("single volume: %w", err)
	}
	multi, err := runMultiVolume(rBlocks, sBlocks)
	if err != nil {
		return nil, fmt.Errorf("multi volume: %w", err)
	}
	add("media exchanges", "DT-NB: S on one cartridge vs spanning 5 cartridges (robot exchanges)", single, multi)

	return rows, nil
}

// MBblocks converts MB to blocks (local helper mirroring the public
// constant without importing the root package here).
func MBblocks(mb int64) int64 { return mb * 16 }

// runMultiVolume runs DT-NB with S spanning five cartridges.
func runMultiVolume(rBlocks, sBlocks int64) (time.Duration, error) {
	mR := tape.NewMedia("abl-r", rBlocks+8)
	perVol := sBlocks/5 + 1
	vols := make([]*tape.Media, 5)
	for i := range vols {
		vols[i] = tape.NewMedia("abl-sv", perVol)
	}
	mS, err := tape.NewMultiVolume("abl-s-set", vols...)
	if err != nil {
		return 0, err
	}
	r, err := relation.WriteToTape(relation.Config{
		Name: "R", Tag: 1, Blocks: rBlocks, TuplesPerBlock: 2, KeySpace: 1 << 20, Seed: 7,
	}, mR)
	if err != nil {
		return 0, err
	}
	s, err := relation.WriteToTape(relation.Config{
		Name: "S", Tag: 2, Blocks: sBlocks, TuplesPerBlock: 2, KeySpace: 1 << 20, Seed: 8,
	}, mS)
	if err != nil {
		return 0, err
	}
	res := ablationRes(rBlocks)
	res.DiskBlocks = rBlocks + res.MemoryBlocks + 8
	result, err := join.Run(join.DTNB{}, join.Spec{R: r, S: s}, res, nil)
	if err != nil {
		return 0, err
	}
	return result.Stats.Response, nil
}

// FormatAblations renders the ablation table.
func FormatAblations(rows []AblationRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%.0f s", r.Baseline.Seconds()),
			fmt.Sprintf("%.0f s", r.Variant.Seconds()),
			fmt.Sprintf("%.2fx", r.Ratio),
			r.Note,
		})
	}
	return FormatTable([]string{"choice", "paper's design", "alternative", "alt/paper", "what varied"}, out)
}
