// Package relation defines synthetic relations written to simulated
// tape, matching the paper's experimental setup ("all with synthetic
// data stored in relations S and R"). Generators are seeded and
// deterministic, so the exact join cardinality of any R-S pair is
// computable and every experiment can verify its output.
package relation

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/block"
	"repro/internal/hashutil"
	"repro/internal/tape"
)

// Config describes a synthetic relation.
type Config struct {
	// Name identifies the relation in logs and errors.
	Name string
	// Tag is the relation tag stamped into every block.
	Tag byte
	// Blocks is the relation size in paper blocks (the paper's |R| or
	// |S|).
	Blocks int64
	// TuplesPerBlock is the real data density: how many tuples each
	// paper block carries. Density does not affect timing, only how
	// much real data flows through the simulated devices.
	TuplesPerBlock int
	// KeySpace draws join keys uniformly from [0, KeySpace). Smaller
	// key spaces give more matches.
	KeySpace uint64
	// HotFraction and HotProb introduce two-level skew: with
	// probability HotProb a key is drawn from the first HotFraction of
	// the key space. Zero values mean uniform keys; setting one
	// without the other is rejected by Validate.
	HotFraction float64
	HotProb     float64
	// ZipfTheta, when in (0, 1), draws keys with rank-frequency
	// following Zipf(theta) over [0, KeySpace) — key 0 most frequent.
	// theta = 0.99 is the YCSB-style heavy skew the skew experiments
	// use. Mutually exclusive with HotFraction/HotProb.
	ZipfTheta float64
	// PayloadBytes is the per-tuple payload size (real bytes).
	PayloadBytes int
	// PayloadGen, when non-nil, supplies each tuple's payload from its
	// ordinal and join key instead of the PayloadBytes filler. Used by
	// the query layer to store typed rows. It must be deterministic.
	PayloadGen func(ordinal int64, key uint64) []byte
	// Seed makes the key sequence reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Blocks < 1 {
		return fmt.Errorf("relation %q: %d blocks", c.Name, c.Blocks)
	}
	if c.TuplesPerBlock < 1 {
		return fmt.Errorf("relation %q: %d tuples per block", c.Name, c.TuplesPerBlock)
	}
	if c.KeySpace < 1 {
		return fmt.Errorf("relation %q: empty key space", c.Name)
	}
	if c.HotFraction < 0 || c.HotFraction > 1 || c.HotProb < 0 || c.HotProb > 1 {
		return fmt.Errorf("relation %q: bad skew (%v, %v)", c.Name, c.HotFraction, c.HotProb)
	}
	if (c.HotFraction > 0) != (c.HotProb > 0) {
		// One knob without the other silently generates uniform keys —
		// exactly the failure mode that makes a skew experiment lie.
		return fmt.Errorf("relation %q: inconsistent skew: HotFraction=%v with HotProb=%v (set both or neither)",
			c.Name, c.HotFraction, c.HotProb)
	}
	if c.ZipfTheta < 0 || c.ZipfTheta >= 1 {
		return fmt.Errorf("relation %q: ZipfTheta %v outside [0, 1)", c.Name, c.ZipfTheta)
	}
	if c.ZipfTheta > 0 && c.HotProb > 0 {
		return fmt.Errorf("relation %q: ZipfTheta and HotFraction/HotProb are mutually exclusive", c.Name)
	}
	if c.PayloadBytes < 0 {
		return fmt.Errorf("relation %q: negative payload", c.Name)
	}
	return nil
}

// Tuples returns the total tuple count.
func (c Config) Tuples() int64 { return c.Blocks * int64(c.TuplesPerBlock) }

// keyStream yields the relation's deterministic key sequence.
type keyStream struct {
	cfg  Config
	rng  *rand.Rand
	zipf *hashutil.ZipfGen
}

func newKeyStream(cfg Config) *keyStream {
	s := &keyStream{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.ZipfTheta > 0 {
		s.zipf = hashutil.NewZipfGen(cfg.KeySpace, cfg.ZipfTheta)
	}
	return s
}

// uniform draws from [0, bound). The Int63n path is kept for every
// bound it can represent so historical key sequences (and therefore
// output hashes and bench snapshots) are unchanged; larger bounds take
// a rejection-sampled full-width draw instead of overflowing int64.
func (s *keyStream) uniform(bound uint64) uint64 {
	if bound <= math.MaxInt64 {
		return uint64(s.rng.Int63n(int64(bound)))
	}
	// bound > 2^63: a raw Uint64 lands inside [0, bound) with
	// probability >= 1/2, so plain rejection is unbiased and cheap.
	for {
		if v := s.rng.Uint64(); v < bound {
			return v
		}
	}
}

func (s *keyStream) next() uint64 {
	space := s.cfg.KeySpace
	if s.zipf != nil {
		return s.zipf.Next(s.rng)
	}
	if s.cfg.HotProb > 0 && s.rng.Float64() < s.cfg.HotProb {
		hot := uint64(float64(space) * s.cfg.HotFraction)
		if hot < 1 {
			hot = 1
		}
		return s.uniform(hot)
	}
	return s.uniform(space)
}

// Relation is a synthetic relation materialized on a tape cartridge.
type Relation struct {
	Config
	// Media is the cartridge (or volume set) holding the relation.
	Media tape.Medium
	// Region is where the relation lives on the cartridge.
	Region tape.Region
}

// WriteToTape generates the relation and appends it to m outside of
// simulated time (input tapes exist before the join begins).
func WriteToTape(cfg Config, m tape.Medium) (*Relation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m.Free() < cfg.Blocks {
		return nil, fmt.Errorf("relation %q: %d blocks exceed free tape %d", cfg.Name, cfg.Blocks, m.Free())
	}
	stream := newKeyStream(cfg)
	filler := make([]byte, cfg.PayloadBytes)
	for i := range filler {
		filler[i] = byte(i)
	}
	builder := block.NewBuilder(cfg.Tag)
	blks := make([]block.Block, 0, cfg.Blocks)
	ordinal := int64(0)
	for b := int64(0); b < cfg.Blocks; b++ {
		for t := 0; t < cfg.TuplesPerBlock; t++ {
			key := stream.next()
			payload := filler
			if cfg.PayloadGen != nil {
				payload = cfg.PayloadGen(ordinal, key)
			}
			builder.Append(block.Tuple{Key: key, Payload: payload})
			ordinal++
		}
		blks = append(blks, builder.Finish())
	}
	region, err := m.AppendSetup(blks)
	if err != nil {
		return nil, fmt.Errorf("relation %q: %w", cfg.Name, err)
	}
	return &Relation{Config: cfg, Media: m, Region: region}, nil
}

// KeyCounts replays the generator and returns the multiplicity of each
// key in the relation. Cost is O(tuples) time and O(distinct keys)
// space.
func (r *Relation) KeyCounts() map[uint64]int64 {
	stream := newKeyStream(r.Config)
	counts := make(map[uint64]int64)
	for i := int64(0); i < r.Tuples(); i++ {
		counts[stream.next()]++
	}
	return counts
}

// ExpectedMatches returns the exact equi-join cardinality |r ⋈ s|,
// computed by replaying both key streams: sum over S tuples of the
// R-side multiplicity of their key.
func ExpectedMatches(r, s *Relation) int64 {
	rCounts := r.KeyCounts()
	stream := newKeyStream(s.Config)
	var total int64
	for i := int64(0); i < s.Tuples(); i++ {
		total += rCounts[stream.next()]
	}
	return total
}
