package ioengine

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestCancelAbortsQueuedOps: a Cancel while the worker is busy aborts
// the queued backlog with ErrCancelled wrapping the cause, without
// executing the ops or touching health, and the worker serves
// later-generation submissions normally.
func TestCancelAbortsQueuedOps(t *testing.T) {
	e := New(0)
	k := sim.NewKernel()
	w := e.Worker("tape:R")
	defer w.Close()
	cause := errors.New("stream satisfied")
	started, gate := make(chan struct{}), make(chan struct{})
	executed := 0
	k.Spawn("p", func(p *sim.Proc) {
		// First op holds the worker so the next two sit in the queue.
		c0 := w.Submit(p, func() error { close(started); <-gate; executed++; return nil })
		c1 := w.Submit(p, func() error { executed++; return nil })
		c2 := w.Submit(p, func() error { executed++; return nil })
		<-started // op 0 is in flight, not queued, when Cancel lands
		w.Cancel(cause)
		close(gate)
		if _, err := w.Await(p, c0); err != nil {
			t.Errorf("in-flight op: %v (should run to completion)", err)
		}
		for i, c := range []*sim.Completion{c1, c2} {
			_, err := w.Await(p, c)
			if !errors.Is(err, ErrCancelled) || !errors.Is(err, cause) {
				t.Errorf("queued op %d: err = %v, want ErrCancelled wrapping cause", i+1, err)
			}
		}
		// Post-cancel submissions carry the new generation and execute.
		if _, err := w.Do(p, func() error { executed++; return nil }); err != nil {
			t.Errorf("post-cancel op: %v (worker should be reusable)", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if executed != 2 {
		t.Errorf("executed %d ops, want 2 (in-flight + post-cancel)", executed)
	}
	if got := w.Cancelled(); got != 2 {
		t.Errorf("Cancelled() = %d, want 2", got)
	}
	if w.Health() != Healthy {
		t.Errorf("health = %v after cancel, want Healthy", w.Health())
	}
	if w.Timeouts() != 0 {
		t.Errorf("timeouts = %d after cancel, want 0", w.Timeouts())
	}
}

// TestCancelAllCoversEveryWorker: Engine.CancelAll reaches every
// worker the engine has created.
func TestCancelAllCoversEveryWorker(t *testing.T) {
	e := New(0)
	k := sim.NewKernel()
	wa, wb := e.Worker("tape:R"), e.Worker("disk")
	defer wa.Close()
	defer wb.Close()
	startA, startB := make(chan struct{}), make(chan struct{})
	gateA, gateB := make(chan struct{}), make(chan struct{})
	k.Spawn("p", func(p *sim.Proc) {
		ca0 := wa.Submit(p, func() error { close(startA); <-gateA; return nil })
		ca1 := wa.Submit(p, func() error { t.Error("queued op on R executed"); return nil })
		cb0 := wb.Submit(p, func() error { close(startB); <-gateB; return nil })
		cb1 := wb.Submit(p, func() error { t.Error("queued op on disk executed"); return nil })
		<-startA
		<-startB
		e.CancelAll(nil)
		close(gateA)
		close(gateB)
		if _, err := wa.Await(p, ca0); err != nil {
			t.Errorf("in-flight R: %v", err)
		}
		if _, err := wb.Await(p, cb0); err != nil {
			t.Errorf("in-flight disk: %v", err)
		}
		if _, err := wa.Await(p, ca1); !errors.Is(err, ErrCancelled) {
			t.Errorf("queued R: err = %v, want ErrCancelled", err)
		}
		if _, err := wb.Await(p, cb1); !errors.Is(err, ErrCancelled) {
			t.Errorf("queued disk: err = %v, want ErrCancelled", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wa.Cancelled() != 1 || wb.Cancelled() != 1 {
		t.Errorf("Cancelled() = (%d,%d), want (1,1)", wa.Cancelled(), wb.Cancelled())
	}
}

// TestCancelNilWorker: nil-safe like the other Worker methods.
func TestCancelNilWorker(t *testing.T) {
	var w *Worker
	w.Cancel(errors.New("x"))
	if w.Cancelled() != 0 {
		t.Error("nil worker Cancelled() != 0")
	}
}

// TestCancelWakesBlockedAwaitViaKernel: the full teardown path a
// streamed query uses — kernel cancel aborts the sim-side completion
// while engine cancel drains the device-side queue, and both the
// awaiting proc and the worker goroutine come out clean, quickly.
func TestCancelWakesBlockedAwaitViaKernel(t *testing.T) {
	e := New(0)
	k := sim.NewKernel()
	w := e.Worker("tape:S")
	defer w.Close()
	cause := errors.New("client went away")
	release := make(chan struct{})
	defer close(release)
	var got error
	k.Spawn("p", func(p *sim.Proc) {
		c := w.Submit(p, func() error { <-release; return nil })
		_, got = w.Await(p, c)
	})
	go func() {
		time.Sleep(5 * time.Millisecond)
		k.Cancel(cause)
		e.CancelAll(cause)
	}()
	done := make(chan error, 1)
	go func() { done <- k.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run wedged waiting for a cancelled op")
	}
	if !errors.Is(got, cause) {
		t.Errorf("Await err = %v, want cause", got)
	}
	if w.Health() != Healthy {
		t.Errorf("health = %v, want Healthy", w.Health())
	}
}
