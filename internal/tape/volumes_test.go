package tape

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func mkVolumes(t *testing.T, name string, n int, capEach int64) *MultiVolume {
	t.Helper()
	vols := make([]*Media, n)
	for i := range vols {
		vols[i] = NewMedia(name+"-v", capEach)
	}
	mv, err := NewMultiVolume(name, vols...)
	if err != nil {
		t.Fatal(err)
	}
	return mv
}

func TestMultiVolumeAppendSpansVolumes(t *testing.T) {
	mv := mkVolumes(t, "set", 3, 10)
	if mv.Capacity() != 30 || mv.Volumes() != 3 || mv.Free() != 30 {
		t.Fatalf("capacity=%d vols=%d free=%d", mv.Capacity(), mv.Volumes(), mv.Free())
	}
	reg, err := mv.AppendSetup(mkBlocks(1, 25, 0))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Start != 0 || reg.N != 25 {
		t.Fatalf("region = %+v", reg)
	}
	if mv.EOD() != 25 || mv.Free() != 5 {
		t.Fatalf("EOD=%d free=%d", mv.EOD(), mv.Free())
	}
	// Read back across all three volumes and verify contents.
	blks, err := mv.ReadSetup(reg)
	if err != nil {
		t.Fatal(err)
	}
	for i, blk := range blks {
		_, tuples := blk.MustDecode()
		if tuples[0].Key != uint64(i) {
			t.Fatalf("block %d: key %d", i, tuples[0].Key)
		}
	}
}

func TestMultiVolumeFull(t *testing.T) {
	mv := mkVolumes(t, "set", 2, 5)
	if _, err := mv.AppendSetup(mkBlocks(1, 11, 0)); err == nil {
		t.Fatal("want ErrTapeFull")
	}
}

func TestMultiVolumeAddressMapping(t *testing.T) {
	mv := mkVolumes(t, "set", 3, 10)
	cases := []struct {
		addr Addr
		vol  int
	}{{0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {29, 2}}
	for _, c := range cases {
		if got := mv.volumeOf(c.addr); got != c.vol {
			t.Errorf("volumeOf(%d) = %d, want %d", c.addr, got, c.vol)
		}
	}
	span := mv.volumeSpan(1)
	if span.Start != 10 || span.N != 10 {
		t.Fatalf("span(1) = %+v", span)
	}
}

func TestNewMultiVolumeValidation(t *testing.T) {
	if _, err := NewMultiVolume("empty"); err == nil {
		t.Fatal("want error for no volumes")
	}
	v1 := NewMedia("a", 10) // half-full first volume
	v1.AppendSetup(mkBlocks(1, 3, 0))
	v2 := NewMedia("b", 10)
	v2.AppendSetup(mkBlocks(1, 3, 0)) // data behind free space
	if _, err := NewMultiVolume("bad", v1, v2); err == nil {
		t.Fatal("want error for data behind free space")
	}
}

func TestDriveChargesMediaExchange(t *testing.T) {
	cfg := idealCfg()
	cfg.ExchangeTime = 30 * time.Second
	mv := mkVolumes(t, "set", 2, 10)
	mv.AppendSetup(mkBlocks(1, 20, 0))

	k := sim.NewKernel()
	d := NewDrive(k, "r", cfg)
	d.Load(mv)
	k.Spawn("p", func(p *sim.Proc) {
		// Read 20 blocks across the boundary: 20 s of transfer plus
		// one 30 s exchange at block 10.
		blks, err := d.ReadAt(p, 0, 20)
		if err != nil {
			t.Error(err)
		}
		if len(blks) != 20 {
			t.Errorf("read %d blocks", len(blks))
		}
		if p.Now() != sim.Time(50*time.Second) {
			t.Errorf("now = %v, want 50s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Exchanges != 1 || d.Stats.ExchangeTime != 30*time.Second {
		t.Fatalf("exchange stats = %+v", d.Stats)
	}
}

func TestDriveExchangeBackAndForth(t *testing.T) {
	cfg := idealCfg()
	cfg.ExchangeTime = 30 * time.Second
	mv := mkVolumes(t, "set", 2, 10)
	mv.AppendSetup(mkBlocks(1, 20, 0))

	k := sim.NewKernel()
	d := NewDrive(k, "r", cfg)
	d.Load(mv)
	k.Spawn("p", func(p *sim.Proc) {
		d.ReadAt(p, 12, 3) // exchange to vol 1 (+30), read 3
		d.ReadAt(p, 2, 3)  // exchange back (+30), read 3
		if p.Now() != sim.Time(66*time.Second) {
			t.Errorf("now = %v, want 66s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Exchanges != 2 {
		t.Fatalf("exchanges = %d, want 2", d.Stats.Exchanges)
	}
}

func TestReadRegionReverseAvoidsSeek(t *testing.T) {
	cfg := idealCfg()
	cfg.SeekFixed = 10 * time.Second
	cfg.SeekPerBlock = time.Second
	cfg.BiDirectional = true
	m := NewMedia("t", 100)
	m.AppendSetup(mkBlocks(1, 40, 0))

	k := sim.NewKernel()
	d := NewDrive(k, "r", cfg)
	d.Load(m)
	k.Spawn("p", func(p *sim.Proc) {
		// Forward read of [0,40): head at 40, t=40.
		if _, err := d.ReadAt(p, 0, 40); err != nil {
			t.Error(err)
		}
		// Reverse read of the same region: head already at its end,
		// so no seek — just 40 s of transfer. Head returns to 0.
		blks, err := d.ReadRegionReverse(p, Region{Start: 0, N: 40})
		if err != nil {
			t.Error(err)
		}
		if len(blks) != 40 {
			t.Errorf("reverse read %d blocks", len(blks))
		}
		// Blocks come back in forward order.
		_, tuples := blks[0].MustDecode()
		if tuples[0].Key != 0 {
			t.Errorf("first block key = %d", tuples[0].Key)
		}
		if p.Now() != sim.Time(80*time.Second) {
			t.Errorf("now = %v, want 80s (no seek)", p.Now())
		}
		// Forward again from 0: head is at 0 after the reverse pass.
		d.ReadAt(p, 0, 40)
		if p.Now() != sim.Time(120*time.Second) {
			t.Errorf("now = %v, want 120s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Seeks != 0 {
		t.Fatalf("seeks = %d, want 0", d.Stats.Seeks)
	}
}

func TestReverseReadRequiresBiDirectionalDrive(t *testing.T) {
	m := NewMedia("t", 10)
	m.AppendSetup(mkBlocks(1, 5, 0))
	k := sim.NewKernel()
	d := NewDrive(k, "r", idealCfg())
	d.Load(m)
	k.Spawn("p", func(p *sim.Proc) {
		if _, err := d.ReadRegionReverse(p, Region{Start: 0, N: 5}); err == nil {
			t.Error("reverse read on uni-directional drive should fail")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestForwardReadAfterReverseSeeksOnce(t *testing.T) {
	cfg := idealCfg()
	cfg.SeekFixed = 5 * time.Second
	cfg.BiDirectional = true
	m := NewMedia("t", 100)
	m.AppendSetup(mkBlocks(1, 20, 0))
	k := sim.NewKernel()
	d := NewDrive(k, "r", cfg)
	d.Load(m)
	k.Spawn("p", func(p *sim.Proc) {
		d.ReadAt(p, 0, 20)                               // t=20, head at 20
		d.ReadRegionReverse(p, Region{Start: 10, N: 10}) // no seek, t=30, head at 10
		// Turning around at the current position is free on a
		// serpentine drive: forward read from 10 costs transfer only.
		if _, err := d.ReadAt(p, 10, 5); err != nil {
			t.Error(err)
		}
		if p.Now() != sim.Time(35*time.Second) {
			t.Errorf("now = %v, want 35s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Seeks != 0 {
		t.Fatalf("seeks = %d, want 0 (turnarounds are free)", d.Stats.Seeks)
	}
}
