package workload

import (
	"sort"

	"repro/internal/device"
	"repro/internal/relation"
)

// cacheEntry is one retained R partition.
type cacheEntry struct {
	rel    *relation.Relation
	file   device.File
	blocks int64
	// pins counts queries currently using the entry; pinned entries
	// cannot be evicted (their blocks are live on the array).
	pins int
	// stamp is a logical clock tick recording last use, for LRU.
	stamp int64
}

// stagingCache retains copied-R partitions on the disk array across
// queries, LRU-evicted under a block budget. It tracks which relation
// each disk file holds; the files themselves live on the session's
// array, so an eviction frees real simulated disk space.
type stagingCache struct {
	budget  int64
	used    int64
	clock   int64
	entries map[*relation.Relation]*cacheEntry

	Hits, Misses, Evictions int64
}

func newStagingCache(budget int64) *stagingCache {
	return &stagingCache{budget: budget, entries: make(map[*relation.Relation]*cacheEntry)}
}

// lookup returns the live entry for r, dropping entries whose file was
// lost to a disk fault. Every lookup counts as a hit or a miss.
func (c *stagingCache) lookup(r *relation.Relation) *cacheEntry {
	ce := c.entries[r]
	if ce != nil && ce.file.Lost() {
		c.drop(ce)
		ce = nil
	}
	if ce == nil {
		c.Misses++
		return nil
	}
	c.clock++
	ce.stamp = c.clock
	c.Hits++
	return ce
}

func (c *stagingCache) pin(ce *cacheEntry)   { ce.pins++ }
func (c *stagingCache) unpin(ce *cacheEntry) { ce.pins-- }

// makeRoom evicts unpinned LRU entries until n blocks fit in the
// budget, returning the names of evicted relations. Eviction happens
// BEFORE the new partition is staged so the array never physically
// overflows. Reports false when pinned entries block the way.
func (c *stagingCache) makeRoom(n int64) (evicted []string, ok bool) {
	if n > c.budget {
		return nil, false
	}
	for c.used+n > c.budget {
		victim := c.lruVictim()
		if victim == nil {
			return evicted, false
		}
		evicted = append(evicted, victim.rel.Name)
		victim.file.Free()
		c.drop(victim)
		c.Evictions++
	}
	return evicted, true
}

// lruVictim picks the least-recently-used unpinned entry.
func (c *stagingCache) lruVictim() *cacheEntry {
	var victim *cacheEntry
	for _, ce := range c.entries {
		if ce.pins > 0 {
			continue
		}
		if victim == nil || ce.stamp < victim.stamp {
			victim = ce
		}
	}
	return victim
}

// insert records a freshly staged partition. The caller must have made
// room first; the entry arrives unpinned at the current clock.
func (c *stagingCache) insert(r *relation.Relation, f device.File) *cacheEntry {
	c.clock++
	ce := &cacheEntry{rel: r, file: f, blocks: f.Len(), stamp: c.clock}
	c.entries[r] = ce
	c.used += ce.blocks
	return ce
}

// flush drops every unpinned entry, freeing its file — called when the
// disk array is replaced mid-batch, which strands cached files on the
// retired store. Returns the dropped relation names, sorted, so the
// schedule log stays deterministic.
func (c *stagingCache) flush() []string {
	var dropped []string
	for _, ce := range c.entries {
		if ce.pins > 0 {
			continue
		}
		dropped = append(dropped, ce.rel.Name)
		ce.file.Free()
		c.drop(ce)
	}
	sort.Strings(dropped)
	return dropped
}

// drop removes an entry's bookkeeping without freeing its file.
func (c *stagingCache) drop(ce *cacheEntry) {
	delete(c.entries, ce.rel)
	c.used -= ce.blocks
}
