package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// CheckChromeTraceWall asserts the dual-clock invariants of a Chrome
// trace exported from a wall-clocked run: every phase slice carries
// wall_start_s/wall_dur_s args, wall stamps are non-negative, and
// wall_start_s is non-decreasing in span-ID order (spans are stamped
// at open under the simulation token, so open order is wall order).
// Run after CheckChromeTrace.
func CheckChromeTraceWall(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("tracecheck: not valid JSON: %w", err)
	}
	type stamped struct {
		id   float64
		wall float64
	}
	var phases []stamped
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Cat != "phase" {
			continue
		}
		id, ok := ev.Args["span"].(float64)
		if !ok {
			return fmt.Errorf("tracecheck: phase slice %d (%s) has no span arg", i, ev.Name)
		}
		ws, ok := ev.Args["wall_start_s"].(float64)
		if !ok {
			return fmt.Errorf("tracecheck: phase slice %d (%s) missing wall_start_s", i, ev.Name)
		}
		wd, ok := ev.Args["wall_dur_s"].(float64)
		if !ok {
			return fmt.Errorf("tracecheck: phase slice %d (%s) missing wall_dur_s", i, ev.Name)
		}
		if ws < 0 || wd < 0 {
			return fmt.Errorf("tracecheck: phase slice %d (%s) has negative wall stamp", i, ev.Name)
		}
		phases = append(phases, stamped{id, ws})
	}
	if len(phases) == 0 {
		return fmt.Errorf("tracecheck: no wall-stamped phase slices (was the run wall-clocked?)")
	}
	return checkWallMonotone(phases, func(s stamped) (float64, float64) { return s.id, s.wall })
}

// checkWallMonotone sorts by span ID and asserts wall starts never go
// backwards.
func checkWallMonotone[T any](items []T, get func(T) (id, wall float64)) error {
	byID := map[float64]float64{}
	var ids []float64
	for _, it := range items {
		id, wall := get(it)
		byID[id] = wall
		ids = append(ids, id)
	}
	// insertion sort: trace exports are already near-sorted and small
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	prev := -1.0
	for _, id := range ids {
		if byID[id] < prev {
			return fmt.Errorf("tracecheck: wall_start_s goes backwards at span %v (%.6f < %.6f)", id, byID[id], prev)
		}
		prev = byID[id]
	}
	return nil
}

// CheckJSONL validates an exported JSONL event stream: every line is a
// JSON object typed "span" or "event" with coherent virtual bounds.
// With requireWall, every span line must also carry wall_start_s /
// wall_end_s with wall_end_s >= wall_start_s and wall starts
// non-decreasing in span-ID order — the file-backend contract.
func CheckJSONL(data []byte, requireWall bool) error {
	type spanStamp struct{ id, wall float64 }
	var stamps []spanStamp
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n, spans, events := 0, 0, 0
	for sc.Scan() {
		n++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			return fmt.Errorf("jsonl line %d: not valid JSON: %w", n, err)
		}
		typ, _ := obj["type"].(string)
		switch typ {
		case "span":
			spans++
			id, ok := obj["id"].(float64)
			if !ok || id <= 0 {
				return fmt.Errorf("jsonl line %d: span has bad id", n)
			}
			if name, _ := obj["name"].(string); name == "" {
				return fmt.Errorf("jsonl line %d: span has no name", n)
			}
			start, ok1 := obj["start_s"].(float64)
			end, ok2 := obj["end_s"].(float64)
			if !ok1 || !ok2 || start < 0 || end < start {
				return fmt.Errorf("jsonl line %d: span has bad virtual bounds", n)
			}
			ws, hasWS := obj["wall_start_s"].(float64)
			we, hasWE := obj["wall_end_s"].(float64)
			if requireWall && !hasWS && !hasWE {
				return fmt.Errorf("jsonl line %d: span %v missing wall stamps on a wall-clocked run", n, id)
			}
			if hasWS {
				if ws < 0 {
					return fmt.Errorf("jsonl line %d: negative wall_start_s", n)
				}
				if hasWE && we < ws {
					return fmt.Errorf("jsonl line %d: wall_end_s before wall_start_s", n)
				}
				stamps = append(stamps, spanStamp{id, ws})
			}
		case "event":
			events++
			start, ok1 := obj["start_s"].(float64)
			end, ok2 := obj["end_s"].(float64)
			if !ok1 || !ok2 || start < 0 || end < start {
				return fmt.Errorf("jsonl line %d: event has bad bounds", n)
			}
		default:
			return fmt.Errorf("jsonl line %d: unknown type %q", n, typ)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if spans == 0 {
		return fmt.Errorf("jsonl: no span lines")
	}
	if requireWall {
		return checkWallMonotone(stamps, func(s spanStamp) (float64, float64) { return s.id, s.wall })
	}
	_ = events
	return nil
}

// CheckPromText lints data against the Prometheus text exposition
// format: # HELP / # TYPE comments with known types, sample lines of
// the form name{labels} value with metric names matching the
// Prometheus grammar and values parsing as floats, histogram series
// (_bucket/_sum/_count) tied back to a declared histogram, _bucket
// samples carrying an le label, and at least one sample overall.
func CheckPromText(data []byte) error {
	typed := map[string]string{}
	samples := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if fields[0] == "" || !validMetricName(fields[0]) {
				return fmt.Errorf("prom line %d: bad HELP metric name", n)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !validMetricName(fields[0]) {
				return fmt.Errorf("prom line %d: malformed TYPE line", n)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("prom line %d: unknown type %q", n, fields[1])
			}
			if _, dup := typed[fields[0]]; dup {
				return fmt.Errorf("prom line %d: duplicate TYPE for %s", n, fields[0])
			}
			typed[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		name, labels, value, err := splitPromSample(line)
		if err != nil {
			return fmt.Errorf("prom line %d: %w", n, err)
		}
		if !validMetricName(name) {
			return fmt.Errorf("prom line %d: bad metric name %q", n, name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("prom line %d: bad sample value %q", n, value)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if typed[trimmed] == "histogram" || typed[trimmed] == "summary" {
					base = trimmed
				}
				break
			}
		}
		if _, ok := typed[base]; !ok {
			return fmt.Errorf("prom line %d: sample %s has no preceding TYPE", n, name)
		}
		if typed[base] == "histogram" && strings.HasSuffix(name, "_bucket") &&
			!strings.Contains(labels, `le=`) {
			return fmt.Errorf("prom line %d: histogram bucket without le label", n)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("prom: no samples")
	}
	return nil
}

// splitPromSample splits `name{labels} value` (or `name value`) into
// its parts, validating brace and quote structure loosely.
func splitPromSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", "", fmt.Errorf("malformed sample %q", line)
		}
		return fields[0], "", fields[1], nil
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", "", "", fmt.Errorf("sample %q has no value", line)
	}
	return name, labels, fields[0], nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
