package tapejoin

import (
	"testing"
	"time"
)

// quickSystem returns a small ideal-model system.
func quickSystem(t *testing.T, memMB, diskMB float64) *System {
	t.Helper()
	sys, err := NewSystem(Config{
		MemoryMB: memMB,
		DiskMB:   diskMB,
		Profile:  IdealTape,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// makeRelations creates a 2 MB R and an 8 MB S on separate cartridges
// with room for tape-tape scratch.
func makeRelations(t *testing.T, sys *System) (*Relation, *Relation) {
	t.Helper()
	tR, err := sys.NewTape("R-tape", 32)
	if err != nil {
		t.Fatal(err)
	}
	tS, err := sys.NewTape("S-tape", 32)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.CreateRelation(tR, RelationConfig{
		Name: "R", SizeMB: 2, KeySpace: 4000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.CreateRelation(tS, RelationConfig{
		Name: "S", SizeMB: 8, KeySpace: 4000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, s
}

func TestSystemJoinAllMethods(t *testing.T) {
	var want int64
	for _, m := range Methods() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			sys := quickSystem(t, 1, 8)
			r, s := makeRelations(t, sys)
			if want == 0 {
				want = ExpectedMatches(r, s)
				if want == 0 {
					t.Fatal("no expected matches")
				}
			}
			res, err := sys.Join(m, r, s)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Matches != want {
				t.Fatalf("matches = %d, want %d", res.Stats.Matches, want)
			}
			if res.Stats.Response <= 0 {
				t.Fatal("no response time")
			}
		})
	}
}

func TestRelationAccessors(t *testing.T) {
	sys := quickSystem(t, 1, 8)
	r, _ := makeRelations(t, sys)
	if r.Name() != "R" || r.SizeMB() != 2 || r.Blocks() != 32 || r.Tuples() != 128 {
		t.Fatalf("accessors: %s %d %d %d", r.Name(), r.SizeMB(), r.Blocks(), r.Tuples())
	}
}

func TestTapeScratchAccounting(t *testing.T) {
	sys := quickSystem(t, 1, 8)
	tp, err := sys.NewTape("t", 10)
	if err != nil {
		t.Fatal(err)
	}
	if tp.FreeMB() != 10 {
		t.Fatalf("free = %d", tp.FreeMB())
	}
	if _, err := sys.CreateRelation(tp, RelationConfig{Name: "x", SizeMB: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if tp.FreeMB() != 6 {
		t.Fatalf("free after create = %d", tp.FreeMB())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MemoryMB: 0, DiskMB: 8},
		{MemoryMB: 1, DiskMB: 0},
		{MemoryMB: 1, DiskMB: 8, NumDisks: -1},
		{MemoryMB: 1, DiskMB: 8, DiskTapeSpeedRatio: -2},
	}
	for i, cfg := range bad {
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	if _, err := NewSystem(Config{MemoryMB: 16, DiskMB: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionChangesSpeed(t *testing.T) {
	run := func(c Compression) time.Duration {
		sys, err := NewSystem(Config{MemoryMB: 1, DiskMB: 8, Profile: IdealTape, Compression: c})
		if err != nil {
			t.Fatal(err)
		}
		r, s := makeRelations(t, sys)
		res, err := sys.Join(DTNB, r, s)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Response
	}
	slow, base, fast := run(Compress0), run(Compress25), run(Compress50)
	if !(fast < base && base < slow) {
		t.Fatalf("compression ordering wrong: 0%%=%v 25%%=%v 50%%=%v", slow, base, fast)
	}
}

func TestCheckFeasible(t *testing.T) {
	sys := quickSystem(t, 1, 1) // D = 1 MB < |R| = 2 MB
	r, s := makeRelations(t, sys)
	if err := sys.CheckFeasible(DTNB, r, s); err == nil {
		t.Fatal("DT-NB should be infeasible with D < |R|")
	}
	if err := sys.CheckFeasible(CTTGH, r, s); err != nil {
		t.Fatalf("CTT-GH should run with D < |R|: %v", err)
	}
	if err := sys.CheckFeasible("bogus", r, s); err == nil {
		t.Fatal("unknown method should fail")
	}
}

func TestEstimateAndAdvise(t *testing.T) {
	sys := quickSystem(t, 16, 500)
	e := sys.Estimate(CTTGH, 2500, 10000)
	if !e.Feasible || e.Response <= 0 || e.RelativeCost <= 1 {
		t.Fatalf("estimate = %+v", e)
	}
	// The paper's Experiment 1 regime: |R| far beyond D. Only CTT-GH
	// (with scratch) is feasible.
	ranked := sys.Advise(2500, 10000, 5000, 0)
	if len(ranked) != 7 {
		t.Fatalf("ranked %d", len(ranked))
	}
	if ranked[0].Method != CTTGH || !ranked[0].Feasible {
		t.Fatalf("best = %+v, want CTT-GH", ranked[0])
	}
	for _, e := range ranked[1:] {
		if e.Method != CTTGH && e.Feasible && e.Response < ranked[0].Response {
			t.Fatalf("ranking violated: %+v", e)
		}
	}
	// Infeasible methods carry a reason.
	last := ranked[len(ranked)-1]
	if last.Feasible || last.Reason == "" {
		t.Fatalf("last = %+v, want infeasible with reason", last)
	}
}

func TestEstimateAgreesWithSimulationShape(t *testing.T) {
	// The analytic model and the ideal-profile simulation should
	// agree within a factor of two on a mid-size CDT-GH join.
	sys := quickSystem(t, 2, 24)
	r, s := makeRelations(t, sys)
	sim, err := sys.Join(CDTGH, r, s)
	if err != nil {
		t.Fatal(err)
	}
	est := sys.Estimate(CDTGH, r.SizeMB(), s.SizeMB())
	ratio := float64(sim.Stats.Response) / float64(est.Response)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("sim %v vs model %v (ratio %.2f); want within 2x", sim.Stats.Response, est.Response, ratio)
	}
}

func TestSplitBufferingAblation(t *testing.T) {
	run := func(split bool) time.Duration {
		sys, err := NewSystem(Config{MemoryMB: 1, DiskMB: 8, Profile: IdealTape, SplitBuffering: split})
		if err != nil {
			t.Fatal(err)
		}
		r, s := makeRelations(t, sys)
		res, err := sys.Join(CDTNBDB, r, s)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Response
	}
	inter, split := run(false), run(true)
	if split <= inter {
		t.Fatalf("split buffering (%v) should be slower than interleaved (%v)", split, inter)
	}
}

func TestBufferTraceInResult(t *testing.T) {
	sys := quickSystem(t, 1, 4)
	r, s := makeRelations(t, sys)
	res, err := sys.Join(CTTGH, r, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BufferTrace) == 0 || res.BufferCapacityMB <= 0 {
		t.Fatal("CTT-GH should expose a buffer trace")
	}
	for _, smp := range res.BufferTrace {
		if smp.EvenMB+smp.OddMB > res.BufferCapacityMB+1e-9 {
			t.Fatalf("sample %+v exceeds capacity %v", smp, res.BufferCapacityMB)
		}
	}
}

func TestMBConversion(t *testing.T) {
	if BlocksPerMB != 16 {
		t.Fatalf("BlocksPerMB = %d, want 16 (64 KB blocks)", BlocksPerMB)
	}
	if MB(3) != 48 {
		t.Fatalf("MB(3) = %d", MB(3))
	}
}
