package exp

import (
	"fmt"
	"math"
	"time"

	tapejoin "repro"
)

// RecoveryRow is one fault-injected join of the recovery experiment:
// the same join run clean and then under an injected fault schedule,
// with the recovery counters and the time the faults cost.
type RecoveryRow struct {
	Scenario   string
	Method     string
	Faults     string // the injected schedule spec
	Clean      time.Duration
	Faulted    time.Duration
	Injected   int64
	Retries    int64
	Restarts   int64
	Recovery   time.Duration
	DisksLost  int
	DegradedTo string // non-empty when a tape-drive loss forced a re-plan
	Verified   bool   // faulted run produced the expected cardinality
}

// recoveryScenarios are the fault-injection points: one per fault
// class, each paired with the method whose recovery path it exercises.
var recoveryScenarios = []struct {
	name   string
	method tapejoin.Method
	rMB    int64
	sMB    int64
	memMB  float64
	dMB    float64
	faults string
}{
	{"transient tape errors", tapejoin.CTTGH, 100, 400, 16, 200,
		"transient=R:50:2,transient=S:200:1"},
	{"corrupt delivered blocks", tapejoin.CDTGH, 50, 200, 16, 100,
		"corrupt=S:100:2,corrupt=disk:20:1"},
	{"disk drive death", tapejoin.CTTGH, 100, 400, 16, 200,
		"diskfail=1@40s"},
	{"tape drive loss", tapejoin.CDTGH, 50, 200, 16, 100,
		"drivefail=S@60s"},
	{"seeded random burst", tapejoin.DTNB, 20, 100, 8, 40,
		"random=4:6"},
}

// FaultRecovery runs each recovery scenario twice — clean, then under
// its fault schedule — and reports the recovery counters and the
// response-time cost of the faults. Every faulted run must still
// produce the correct join cardinality; Verified records the check.
func FaultRecovery(scale float64) ([]RecoveryRow, error) {
	rows := make([]RecoveryRow, 0, len(recoveryScenarios))
	for _, sc := range recoveryScenarios {
		rMB := scaleMB(sc.rMB, scale)
		sMB := scaleMB(sc.sMB, scale)
		cfg := tapejoin.Config{
			MemoryMB: scaleMBf(sc.memMB, math.Sqrt(scale)),
			DiskMB:   scaleMBf(sc.dMB, scale),
		}
		run := func(faults string) (*tapejoin.Result, int64, error) {
			cfg := cfg
			cfg.Faults = faults
			sys, r, s, err := buildJoin(cfg, rMB, sMB, 77)
			if err != nil {
				return nil, 0, err
			}
			res, err := sys.Join(sc.method, r, s)
			if err != nil {
				return nil, 0, err
			}
			return res, tapejoin.ExpectedMatches(r, s), nil
		}
		clean, _, err := run("")
		if err != nil {
			return nil, fmt.Errorf("%s (clean): %w", sc.name, err)
		}
		faulted, want, err := run(sc.faults)
		if err != nil {
			return nil, fmt.Errorf("%s (faulted): %w", sc.name, err)
		}
		st := faulted.Stats
		rows = append(rows, RecoveryRow{
			Scenario:   sc.name,
			Method:     string(sc.method),
			Faults:     sc.faults,
			Clean:      clean.Stats.Response,
			Faulted:    st.Response,
			Injected:   st.Faults,
			Retries:    st.Retries,
			Restarts:   st.UnitRestarts,
			Recovery:   st.RecoveryTime,
			DisksLost:  st.DisksLost,
			DegradedTo: st.DegradedTo,
			Verified:   st.Matches == want,
		})
	}
	return rows, nil
}

// FormatRecovery renders the fault-recovery experiment as a table.
func FormatRecovery(rows []RecoveryRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		degraded := r.DegradedTo
		if degraded == "" {
			degraded = "-"
		}
		verdict := "FAILED"
		if r.Verified {
			verdict = "ok"
		}
		out = append(out, []string{
			r.Scenario,
			r.Method,
			secs(r.Clean),
			secs(r.Faulted),
			fmt.Sprintf("%d", r.Injected),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Restarts),
			secs(r.Recovery),
			fmt.Sprintf("%d", r.DisksLost),
			degraded,
			verdict,
		})
	}
	return FormatTable(
		[]string{"Scenario", "Join", "Clean", "Faulted", "Faults", "Retries", "Restarts", "Recovery", "Disks lost", "Degraded to", "Output"},
		out)
}
