package obs

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func secs(s int) sim.Time { return sim.Time(time.Duration(s) * time.Second) }

func TestTrackerSpanTree(t *testing.T) {
	k := sim.NewKernel()
	tr := NewTracker()
	k.Spawn("worker", func(p *sim.Proc) {
		a := tr.Begin(p, "outer", A("k", "v"))
		if tr.ActiveSpan(p) != a.ID {
			t.Errorf("active = %d, want %d", tr.ActiveSpan(p), a.ID)
		}
		p.Hold(sim.Duration(2 * time.Second))
		b := tr.Begin(p, "inner")
		if b.Parent != a.ID {
			t.Errorf("inner parent = %d, want %d", b.Parent, a.ID)
		}
		p.Hold(sim.Duration(3 * time.Second))
		b.Close(p)
		b.Close(p) // idempotent
		p.Hold(sim.Duration(1 * time.Second))
		a.Close(p)
		if tr.ActiveSpan(p) != 0 {
			t.Errorf("active after close = %d", tr.ActiveSpan(p))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	a, b := spans[0], spans[1]
	if a.Name != "outer" || a.Start != 0 || a.End != secs(6) || a.Parent != 0 {
		t.Errorf("outer = %+v", a)
	}
	if b.Name != "inner" || b.Start != secs(2) || b.End != secs(5) {
		t.Errorf("inner = %+v", b)
	}
	if a.Duration() != sim.Duration(6*time.Second) {
		t.Errorf("outer duration = %v", a.Duration())
	}
	if len(a.Attrs) != 1 || a.Attrs[0] != A("k", "v") {
		t.Errorf("outer attrs = %v", a.Attrs)
	}
}

func TestSpanCloseUnwindsSkippedChildren(t *testing.T) {
	k := sim.NewKernel()
	tr := NewTracker()
	k.Spawn("worker", func(p *sim.Proc) {
		outer := tr.Begin(p, "outer")
		tr.Begin(p, "leaked") // an error path never closes this
		p.Hold(sim.Duration(4 * time.Second))
		outer.Close(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Spans() {
		if s.End != secs(4) {
			t.Errorf("%s end = %v, want 4s", s.Name, s.End)
		}
	}
}

func TestTrackerFinishClosesStragglers(t *testing.T) {
	k := sim.NewKernel()
	tr := NewTracker()
	k.Spawn("worker", func(p *sim.Proc) {
		tr.Begin(p, "abandoned")
		p.Hold(sim.Duration(time.Second))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tr.Finish(secs(7))
	if s := tr.Spans()[0]; s.End != secs(7) {
		t.Errorf("end = %v, want 7s", s.End)
	}
}

func TestNilObservabilityIsSafe(t *testing.T) {
	var tr *Tracker
	k := sim.NewKernel()
	k.Spawn("worker", func(p *sim.Proc) {
		s := tr.Begin(p, "x")
		s.SetAttr("a", "b")
		s.Close(p)
		if tr.ActiveSpan(p) != 0 || s.Duration() != 0 {
			t.Error("nil tracker should observe nothing")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tr.Finish(0)
	if tr.Spans() != nil {
		t.Error("nil tracker has spans")
	}

	var reg *Registry
	c := reg.Counter("c", "help")
	g := reg.Gauge("g", "help")
	h := reg.Histogram("h", "help", DeviceLatencyBuckets)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil registry handles should observe nothing")
	}
	if reg.Exposition() != "" {
		t.Error("nil registry exposition should be empty")
	}
}
