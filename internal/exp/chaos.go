package exp

import (
	"errors"
	"fmt"
	"strings"
	"time"

	tapejoin "repro"
	"repro/internal/device"
	"repro/internal/join"
)

// ChaosRow is one scenario of the wall-clock fault-tolerance
// experiment: a join or batch run on the file backend under an
// injected fault schedule, classified against the robustness
// contract — every scenario must either complete with the exact
// payload-hash output of a clean reference run, or fail fast with a
// typed error. It must never hang and never deliver wrong tuples.
type ChaosRow struct {
	Scenario string
	Mode     string // method symbol, or "batch <policy>"
	Faults   string
	Expect   string // "complete" or "fail-fast"
	Outcome  string
	Detail   string
	Elapsed  time.Duration // wall clock, measured
	Pass     bool
}

// chaosDeadline bounds each scenario's wall-clock time. A scenario
// that overruns is reported as HANG — the one outcome the fault
// taxonomy must make impossible.
const chaosDeadline = 90 * time.Second

// chaosScenario is one entry of the fault matrix. run returns a
// human-readable detail string on success; a scenario expecting
// fail-fast instead returns the join's error for typed-ness checks.
type chaosScenario struct {
	name   string
	mode   string
	faults string
	expect string
	quick  bool // included in the -quick CI smoke matrix
	// wantErrs are the sentinels a fail-fast scenario's error chain
	// must carry.
	wantErrs []error
	run      func(scale float64) (string, error)
}

// chaosJoin runs one method on the file backend under the given
// config mutations and verifies cardinality and payload hash against
// a clean sim-backend reference of the same seed — the cross-backend
// equivalence oracle.
func chaosJoin(scale float64, method tapejoin.Method, faults string,
	mutate func(*tapejoin.Config)) (string, error) {
	rMB := scaleMB(10, scale)
	sMB := scaleMB(40, scale)
	base := tapejoin.Config{
		MemoryMB: scaleMBf(8, scale),
		DiskMB:   scaleMBf(64, scale),
	}
	runOne := func(cfg tapejoin.Config) (*tapejoin.Result, error) {
		sys, r, s, err := chaosBuild(cfg, rMB, sMB)
		if err != nil {
			return nil, err
		}
		return sys.Join(method, r, s)
	}
	ref, err := runOne(base)
	if err != nil {
		return "", fmt.Errorf("sim reference: %w", err)
	}
	if ref.Stats.Matches == 0 {
		return "", errors.New("sim reference produced no matches: the payload oracle would be vacuous")
	}
	cfg := base
	cfg.Backend = "file"
	cfg.Faults = faults
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := runOne(cfg)
	if err != nil {
		return "", err
	}
	st := res.Stats
	if st.Matches != ref.Stats.Matches {
		return "", fmt.Errorf("wrong cardinality: %d matches, reference %d",
			st.Matches, ref.Stats.Matches)
	}
	if st.OutputHash != ref.Stats.OutputHash {
		return "", fmt.Errorf("payload hash mismatch: %#x, reference %#x",
			st.OutputHash, ref.Stats.OutputHash)
	}
	return fmt.Sprintf("hash=%#x retries=%d restarts=%d",
		st.OutputHash, st.Retries, st.UnitRestarts), nil
}

// chaosBuild is buildJoin with a key space dense enough that the
// chaos-sized relations join to a non-trivial output — the payload
// oracle needs real pairs to digest.
func chaosBuild(cfg tapejoin.Config, rMB, sMB int64) (*tapejoin.System, *tapejoin.Relation, *tapejoin.Relation, error) {
	sys, err := newSystem(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	tR, err := sys.NewTape("tape-R", rMB+sMB+2)
	if err != nil {
		return nil, nil, nil, err
	}
	tS, err := sys.NewTape("tape-S", sMB+rMB+2)
	if err != nil {
		return nil, nil, nil, err
	}
	r, err := sys.CreateRelation(tR, tapejoin.RelationConfig{
		Name: "R", SizeMB: rMB, KeySpace: 1 << 12, Seed: 31,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := sys.CreateRelation(tS, tapejoin.RelationConfig{
		Name: "S", SizeMB: sMB, KeySpace: 1 << 12, Seed: 32,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, r, s, nil
}

// chaosBatch runs a small multi-query batch on the file backend with
// a device fault persistent enough to kill one query's device
// mid-batch, and verifies the containment contract: the batch always
// completes, failed queries carry typed reasons, and every surviving
// query delivers its exact cardinality.
func chaosBatch(scale float64, faults string) (string, error) {
	sys, err := newSystem(tapejoin.Config{
		Backend:  "file",
		MemoryMB: scaleMBf(16, scale),
		DiskMB:   scaleMBf(96, scale),
		Faults:   faults,
	})
	if err != nil {
		return "", err
	}
	sMB := scaleMB(16, scale)
	rMB := scaleMB(4, scale)
	tS, err := sys.NewTape("S1", 2*sMB+2)
	if err != nil {
		return "", err
	}
	s, err := sys.CreateRelation(tS, tapejoin.RelationConfig{
		Name: "S1", SizeMB: sMB, KeySpace: 1 << 12, Seed: 101,
	})
	if err != nil {
		return "", err
	}
	tR, err := sys.NewTape("RA0", 4*rMB+2)
	if err != nil {
		return "", err
	}
	var queries []tapejoin.BatchQuery
	want := make(map[int]int64)
	for i := 0; i < 4; i++ {
		r, err := sys.CreateRelation(tR, tapejoin.RelationConfig{
			Name: fmt.Sprintf("R%d", i+1), SizeMB: rMB,
			KeySpace: 1 << 12, Seed: int64(11 + i),
		})
		if err != nil {
			return "", err
		}
		queries = append(queries, tapejoin.BatchQuery{
			Method: tapejoin.CDTNBMB, R: r, S: s,
		})
		want[i] = tapejoin.ExpectedMatches(r, s)
		if want[i] == 0 {
			return "", fmt.Errorf("query %d expects no matches: the oracle would be vacuous", i)
		}
	}
	rep, err := sys.RunBatch(queries, tapejoin.BatchOptions{Policy: tapejoin.BatchFIFO})
	if err != nil {
		return "", fmt.Errorf("batch aborted (containment broken): %w", err)
	}
	if len(rep.Queries) != len(queries) {
		return "", fmt.Errorf("results for %d of %d queries", len(rep.Queries), len(queries))
	}
	failed := 0
	for i, qr := range rep.Queries {
		if qr.Failed {
			failed++
			if qr.Reason == "" {
				return "", fmt.Errorf("query %s failed without a typed reason", qr.ID)
			}
			continue
		}
		if qr.Matches != want[i] {
			return "", fmt.Errorf("query %s: %d matches, want %d", qr.ID, qr.Matches, want[i])
		}
	}
	if failed == 0 && rep.Requeues == 0 {
		return "", errors.New("fault schedule never bit: no failure, no requeue")
	}
	return fmt.Sprintf("failed=%d requeues=%d demotions=%d (typed, batch completed)",
		failed, rep.Requeues, rep.Demotions), nil
}

// chaosScenarios is the fault matrix: one scenario per wall-clock
// fault class of DESIGN.md §12, each pinned to the recovery (or
// typed fail-fast) path it must take.
var chaosScenarios = []chaosScenario{
	{
		name: "clean baseline", mode: "DT-GH", faults: "",
		expect: "complete", quick: true,
		run: func(scale float64) (string, error) {
			return chaosJoin(scale, tapejoin.DTGH, "", nil)
		},
	},
	{
		// Syscall-level EIO on both store and spool: the device
		// worker's retries absorb them below the join.
		name: "transient syscall EIO", mode: "DT-GH",
		faults: "oserr=disk:2,oserr=R:1",
		expect: "complete", quick: true,
		run: func(scale float64) (string, error) {
			return chaosJoin(scale, tapejoin.DTGH, "oserr=disk:2,oserr=R:1", nil)
		},
	},
	{
		// One stuck syscall outlives the op deadline; the watchdog
		// fails the op with ErrIOTimeout and the device-layer retry
		// reissues it clean.
		name: "stuck worker healed by deadline", mode: "DT-GH",
		faults: "oswait=disk:60ms:1",
		expect: "complete", quick: true,
		run: func(scale float64) (string, error) {
			return chaosJoin(scale, tapejoin.DTGH, "oswait=disk:60ms:1",
				func(cfg *tapejoin.Config) { cfg.FileOpTimeout = 5 * time.Millisecond })
		},
	},
	{
		// Every disk op stalls past the deadline with device-layer
		// retries disabled: the first overrun must surface typed
		// ErrIOTimeout and abort immediately — never hang.
		name: "stuck worker fails fast", mode: "DT-GH",
		faults: "oswait=disk:60ms:200",
		expect: "fail-fast", quick: true,
		wantErrs: []error{device.ErrIOTimeout},
		run: func(scale float64) (string, error) {
			return chaosJoin(scale, tapejoin.DTGH, "oswait=disk:60ms:200",
				func(cfg *tapejoin.Config) {
					cfg.FileOpTimeout = 5 * time.Millisecond
					cfg.FileRetryMax = -1
					cfg.DisableRecovery = true
				})
		},
	},
	{
		// A stored scratch block is bit-flipped on disk: every re-read
		// fails its checksum with typed ErrCorrupt, the read budget
		// drains, and the unit restart re-stages the scratch from tape.
		name: "corrupt block re-staged", mode: "CTT-GH",
		faults: "flip=disk:0",
		expect: "complete", quick: true,
		run: func(scale float64) (string, error) {
			return chaosJoin(scale, tapejoin.CTTGH, "flip=disk:0", nil)
		},
	},
	{
		// The same stored flip through a method whose staging is not
		// inside a restartable unit: typed fail-fast, wrong tuples
		// never delivered.
		name: "corrupt block fails fast", mode: "DT-NB",
		faults: "flip=disk:0",
		expect: "fail-fast", quick: true,
		wantErrs: []error{join.ErrFaultExhausted, device.ErrCorrupt},
		run: func(scale float64) (string, error) {
			return chaosJoin(scale, tapejoin.DTNB, "flip=disk:0", nil)
		},
	},
	{
		// A torn (short) final write leaves a truncated record whose
		// CRC cannot verify; recovery is the same re-stage path.
		name: "torn final write re-staged", mode: "CTT-GH",
		faults: "torn=disk:0",
		expect: "complete", quick: false,
		run: func(scale float64) (string, error) {
			return chaosJoin(scale, tapejoin.CTTGH, "torn=disk:0", nil)
		},
	},
	{
		// A drive fault persistent enough to outlive one query's whole
		// retry pyramid and its requeue: the workload engine must
		// contain the failure — typed per-query reasons, exact results
		// for the survivors, batch never aborts.
		name: "dead device mid-batch", mode: "batch fifo",
		faults: "transient=R:3:40",
		expect: "complete", quick: true,
		run: func(scale float64) (string, error) {
			return chaosBatch(scale, "transient=R:3:40")
		},
	},
}

// Chaos runs the wall-clock fault-tolerance matrix on the file
// backend. Each scenario runs under a hard wall-clock deadline and is
// classified: a scenario expecting completion must reproduce the
// clean sim-backend reference's cardinality and payload hash; a
// scenario expecting fail-fast must surface every listed error
// sentinel in its chain. quick restricts the matrix to the CI smoke
// subset.
func Chaos(scale float64, quick bool) []ChaosRow {
	rows := make([]ChaosRow, 0, len(chaosScenarios))
	for _, sc := range chaosScenarios {
		if quick && !sc.quick {
			continue
		}
		rows = append(rows, runChaosScenario(sc, scale))
	}
	return rows
}

// runChaosScenario executes one scenario under the wall-clock
// deadline and classifies the outcome. A timed-out scenario leaks its
// goroutine — by then the run has already failed the no-hang
// contract, and the process is about to exit nonzero anyway.
func runChaosScenario(sc chaosScenario, scale float64) ChaosRow {
	row := ChaosRow{
		Scenario: sc.name, Mode: sc.mode, Faults: sc.faults, Expect: sc.expect,
	}
	type result struct {
		detail string
		err    error
	}
	done := make(chan result, 1)
	start := time.Now()
	go func() {
		detail, err := sc.run(scale)
		done <- result{detail, err}
	}()
	var res result
	select {
	case res = <-done:
	case <-time.After(chaosDeadline):
		row.Elapsed = time.Since(start)
		row.Outcome = "HANG"
		row.Detail = fmt.Sprintf("no result within %s", chaosDeadline)
		return row
	}
	row.Elapsed = time.Since(start)
	switch {
	case sc.expect == "complete" && res.err == nil:
		row.Outcome, row.Pass = "ok", true
		row.Detail = res.detail
	case sc.expect == "complete":
		row.Outcome = "FAILED"
		row.Detail = res.err.Error()
	case res.err == nil: // expected fail-fast, got success
		row.Outcome = "UNEXPECTED SUCCESS"
		row.Detail = res.detail
	default:
		var missing []string
		for _, want := range sc.wantErrs {
			if !errors.Is(res.err, want) {
				missing = append(missing, want.Error())
			}
		}
		if len(missing) > 0 {
			row.Outcome = "UNTYPED ERROR"
			row.Detail = fmt.Sprintf("%v (missing: %s)", res.err, strings.Join(missing, "; "))
		} else {
			row.Outcome, row.Pass = "fail-fast", true
			row.Detail = res.err.Error()
		}
	}
	return row
}

// ChaosVerdict returns a non-nil error when any scenario failed its
// contract, so callers can exit nonzero after printing the table.
func ChaosVerdict(rows []ChaosRow) error {
	bad := 0
	for _, r := range rows {
		if !r.Pass {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("chaos: %d of %d scenarios failed", bad, len(rows))
	}
	return nil
}

// FormatChaos renders the chaos matrix as a table.
func FormatChaos(rows []ChaosRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		faults := r.Faults
		if faults == "" {
			faults = "-"
		}
		out = append(out, []string{
			r.Scenario,
			r.Mode,
			faults,
			r.Expect,
			r.Outcome,
			fmt.Sprintf("%.2fs", r.Elapsed.Seconds()),
			r.Detail,
		})
	}
	return FormatTable(
		[]string{"Scenario", "Mode", "Faults", "Expect", "Outcome", "Wall", "Detail"},
		out)
}
