package tapejoin

import (
	"strings"
	"testing"
)

// buildTypedTables makes a small accounts/events pair through the
// public API.
func buildTypedTables(t *testing.T, sys *System) (*Table, *Table) {
	t.Helper()
	tapeA, err := sys.NewTape("acc", 64)
	if err != nil {
		t.Fatal(err)
	}
	tapeE, err := sys.NewTape("ev", 64)
	if err != nil {
		t.Fatal(err)
	}
	accounts, err := sys.CreateTable(tapeA, TableSpec{
		Name: "accounts", SizeMB: 2, KeySpace: 500, Seed: 5,
		Columns: []Column{
			{Name: "id", Type: Int64Col},
			{Name: "tier", Type: StringCol},
		},
		Rows: func(ordinal int64, key uint64) []Value {
			if key%2 == 0 {
				return []Value{"pro"}
			}
			return []Value{"free"}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := sys.CreateTable(tapeE, TableSpec{
		Name: "events", SizeMB: 8, KeySpace: 500, Seed: 6,
		Columns: []Column{
			{Name: "account", Type: Int64Col},
			{Name: "bytes", Type: FloatCol},
		},
		Rows: func(ordinal int64, key uint64) []Value {
			return []Value{float64(ordinal % 1000)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return accounts, events
}

func TestRunQueryEndToEnd(t *testing.T) {
	sys := quickSystem(t, 1, 16)
	accounts, events := buildTypedTables(t, sys)

	res, err := sys.RunQuery(QuerySpec{
		R: accounts, S: events,
		Where: And(
			Cmp(Eq, RCol("tier"), Lit("pro")),
			Cmp(Ge, SCol("bytes"), Lit(200.0)),
		),
		Select: []Expr{RCol("id"), SCol("bytes")},
		Limit:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method == "" || res.Response <= 0 {
		t.Fatalf("incomplete result: %+v", res)
	}
	// Single-sided conjuncts are pushed into the join, so the joined
	// pairs all pass and the join itself shrinks.
	if res.Count == 0 || res.Count != res.JoinMatches {
		t.Fatalf("count = %d of %d", res.Count, res.JoinMatches)
	}
	if len(res.Rows) > 4 {
		t.Fatalf("limit ignored: %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[0].(int64)%2 != 0 {
			t.Fatalf("row %v violates tier predicate", row)
		}
		if row[1].(float64) < 200 {
			t.Fatalf("row %v violates bytes predicate", row)
		}
	}
}

func TestRunQueryUnfilteredMatchesExpected(t *testing.T) {
	sys := quickSystem(t, 1, 16)
	accounts, events := buildTypedTables(t, sys)
	res, err := sys.RunQuery(QuerySpec{R: accounts, S: events})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != res.JoinMatches || res.Count == 0 {
		t.Fatalf("count = %d, joined = %d", res.Count, res.JoinMatches)
	}
}

func TestRunQueryForcedAndBadMethod(t *testing.T) {
	sys := quickSystem(t, 1, 16)
	accounts, events := buildTypedTables(t, sys)
	res, err := sys.RunQuery(QuerySpec{R: accounts, S: events, Method: CTTGH})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != CTTGH {
		t.Fatalf("method = %s", res.Method)
	}
	if _, err := sys.RunQuery(QuerySpec{R: accounts, S: events, Method: "NOPE"}); err == nil {
		t.Fatal("bad method should fail")
	}
	if _, err := sys.RunQuery(QuerySpec{R: accounts}); err == nil {
		t.Fatal("missing table should fail")
	}
}

func TestTableAccessors(t *testing.T) {
	sys := quickSystem(t, 1, 16)
	accounts, _ := buildTypedTables(t, sys)
	if accounts.Name() != "accounts" || accounts.SizeMB() != 2 {
		t.Fatalf("accessors: %s %d", accounts.Name(), accounts.SizeMB())
	}
	if accounts.Rows() != 2*BlocksPerMB*4 {
		t.Fatalf("rows = %d", accounts.Rows())
	}
}

func TestRunQueryBadExpression(t *testing.T) {
	sys := quickSystem(t, 1, 16)
	accounts, events := buildTypedTables(t, sys)
	_, err := sys.RunQuery(QuerySpec{
		R: accounts, S: events,
		Where: Cmp(Eq, RCol("ghost"), Lit(int64(1))),
	})
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v, want unknown-column", err)
	}
}

func TestMultiVolumeTapeSetThroughPublicAPI(t *testing.T) {
	sys := quickSystem(t, 1, 16)
	set, err := sys.NewTapeSet("archive", 4, 8) // 4 x 8 MB
	if err != nil {
		t.Fatal(err)
	}
	if set.FreeMB() != 32 {
		t.Fatalf("free = %d", set.FreeMB())
	}
	single, _ := sys.NewTape("r", 16)
	r, err := sys.CreateRelation(single, RelationConfig{Name: "R", SizeMB: 2, KeySpace: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.CreateRelation(set, RelationConfig{Name: "S", SizeMB: 20, KeySpace: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Join(DTNB, r, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Matches != ExpectedMatches(r, s) {
		t.Fatalf("matches = %d, want %d", res.Stats.Matches, ExpectedMatches(r, s))
	}
	if _, err := sys.NewTapeSet("bad", 0, 8); err == nil {
		t.Fatal("0 volumes should fail")
	}
}

func TestBiDirectionalTapeSpeedsCTTGH(t *testing.T) {
	run := func(biDir bool) *Result {
		sys, err := NewSystem(Config{
			MemoryMB: 1, DiskMB: 4, BiDirectionalTape: biDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, s := makeRelations(t, sys)
		res, err := sys.Join(CTTGH, r, s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fwd, rev := run(false), run(true)
	if rev.Stats.Response >= fwd.Stats.Response {
		t.Fatalf("bi-directional %v should beat %v", rev.Stats.Response, fwd.Stats.Response)
	}
	if rev.Stats.Matches != fwd.Stats.Matches {
		t.Fatalf("outputs differ")
	}
}

func TestOutputDiskShareSlowsDiskBoundJoin(t *testing.T) {
	run := func(share float64) *Result {
		sys, err := NewSystem(Config{
			MemoryMB: 1, DiskMB: 16, Profile: IdealTape, OutputDiskShare: share,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, s := makeRelations(t, sys)
		res, err := sys.Join(CDTGH, r, s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pipelined, stored := run(0), run(0.5)
	if stored.Stats.Response <= pipelined.Stats.Response {
		t.Fatalf("storing output (%v) should cost more than pipelining (%v)",
			stored.Stats.Response, pipelined.Stats.Response)
	}
	if _, err := NewSystem(Config{MemoryMB: 1, DiskMB: 4, OutputDiskShare: 1.5}); err == nil {
		t.Fatal("OutputDiskShare >= 1 should fail")
	}
}

func TestUtilizationInPublicStats(t *testing.T) {
	sys := quickSystem(t, 1, 8)
	r, s := makeRelations(t, sys)
	res, err := sys.Join(CDTGH, r, s)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	for name, u := range map[string]float64{
		"tapeR": st.TapeRUtil, "tapeS": st.TapeSUtil, "disk": st.DiskUtil,
	} {
		if u <= 0 || u > 2 {
			t.Errorf("%s utilization = %v", name, u)
		}
	}
}

func TestRunQueryAggregates(t *testing.T) {
	sys := quickSystem(t, 1, 16)
	accounts, events := buildTypedTables(t, sys)
	res, err := sys.RunQuery(QuerySpec{
		R: accounts, S: events,
		GroupBy: []Expr{RCol("tier")},
		Aggregates: []Agg{
			{Fn: CountAgg},
			{Fn: SumAgg, Arg: SCol("bytes")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2 (free, pro)", len(res.Rows))
	}
	var total int64
	for _, row := range res.Rows {
		total += row[1].(int64)
	}
	if total != res.JoinMatches {
		t.Fatalf("counts sum to %d, want %d", total, res.JoinMatches)
	}
}
