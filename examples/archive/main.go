// Scientific archive scan: a satellite-telemetry archive (S) is
// joined with an instrument-calibration table (R), both tape-resident.
// The example compares all feasible join methods on the same inputs
// and shows how the data's compressibility — which changes the tape
// drive's effective speed — moves the balance between tape-bound and
// disk-bound methods (Section 9 of the paper).
//
//	go run ./examples/archive
package main

import (
	"fmt"
	"log"

	tapejoin "repro"
)

func run(comp tapejoin.Compression, label string) {
	sys, err := tapejoin.NewSystem(tapejoin.Config{
		MemoryMB:    12,
		DiskMB:      100,
		Compression: comp,
	})
	if err != nil {
		log.Fatal(err)
	}
	calib := mustRelation(sys, "calibration", 18, 401)
	telem := mustRelation(sys, "telemetry", 800, 402)

	fmt.Printf("%s (optimum = bare read of telemetry: %v)\n",
		label, sys.BareReadTime(800).Round(0))
	for _, m := range tapejoin.Methods() {
		if err := sys.CheckFeasible(m, calib, telem); err != nil {
			continue
		}
		// Tape-tape methods consume scratch space; give each method
		// fresh cartridges.
		sys2, _ := tapejoin.NewSystem(sys.Config())
		c2 := mustRelation(sys2, "calibration", 18, 401)
		t2 := mustRelation(sys2, "telemetry", 800, 402)
		res, err := sys2.Join(m, c2, t2)
		if err != nil {
			fmt.Printf("  %-10s %v\n", m, err)
			continue
		}
		overhead := float64(res.Stats.Response)/float64(sys2.BareReadTime(800)) - 1
		fmt.Printf("  %-10s %10v  (+%3.0f%% over optimum, %d passes over R)\n",
			m, res.Stats.Response.Round(0), 100*overhead, res.Stats.RScans)
	}
	fmt.Println()
}

var tapeSeq int

func mustRelation(sys *tapejoin.System, name string, sizeMB int64, seed int64) *tapejoin.Relation {
	tapeSeq++
	t, err := sys.NewTape(fmt.Sprintf("%s-%d", name, tapeSeq), sizeMB*3+900)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := sys.CreateRelation(t, tapejoin.RelationConfig{
		Name: name, SizeMB: sizeMB, KeySpace: 100_000, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rel
}

func main() {
	run(tapejoin.Compress0, "incompressible telemetry (slow tape, 1.26 MB/s)")
	run(tapejoin.Compress25, "typical telemetry (base case, 1.68 MB/s)")
	run(tapejoin.Compress50, "highly compressible telemetry (fast tape, 2.51 MB/s)")
	fmt.Println("note how the concurrent methods' overhead grows with tape speed:")
	fmt.Println("they are disk-bound, so a faster tape only shrinks the baseline.")
}
