package tapejoin

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

func observedJoin(t *testing.T, m Method, cfg Config) *Result {
	t.Helper()
	cfg.Observe = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, s := makeRelations(t, sys)
	res, err := sys.Join(m, r, s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestObserveReport(t *testing.T) {
	res := observedJoin(t, CDTGH, Config{MemoryMB: 1, DiskMB: 4, Profile: IdealTape})
	rep := res.Report
	if rep == nil {
		t.Fatal("Observe set but Report is nil")
	}
	if rep.Total.Wall <= 0 || rep.Total.Bottleneck == "" {
		t.Fatalf("total = %+v", rep.Total)
	}
	phases := map[string]PhaseReport{}
	for _, p := range rep.Phases {
		phases[p.Name] = p
		if p.Wall <= 0 || p.Count < 1 {
			t.Errorf("degenerate phase %+v", p)
		}
		if p.Overlap < 0 || p.Overlap >= 1 {
			t.Errorf("phase %s overlap %v outside [0, 1)", p.Name, p.Overlap)
		}
		if p.BottleneckBusy > p.Wall {
			t.Errorf("phase %s busy %v exceeds wall %v", p.Name, p.BottleneckBusy, p.Wall)
		}
	}
	for _, want := range []string{"hash-R", "stage-S", "join-chunk"} {
		if _, ok := phases[want]; !ok {
			t.Errorf("CDT-GH run missing phase %q (have %v)", want, rep.Phases)
		}
	}
	if s := rep.String(); !strings.Contains(s, "TOTAL") || !strings.Contains(s, "stage-S") {
		t.Errorf("phase table:\n%s", s)
	}
}

func TestObserveExporters(t *testing.T) {
	res := observedJoin(t, CDTGH, Config{MemoryMB: 1, DiskMB: 4, Profile: IdealTape})
	rep := res.Report

	data, err := rep.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckChromeTrace(data); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"type":"span"`) || !strings.Contains(buf.String(), `"type":"event"`) {
		t.Error("JSONL stream missing spans or events")
	}

	text := rep.MetricsText()
	for _, want := range []string{
		`tape_blocks_read_total{drive="S"}`,
		"disk_blocks_written_total",
		"# TYPE tape_request_seconds histogram",
		"buffer_occupancy_ratio",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	js, err := rep.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(js, []byte("tape_blocks_read_total")) {
		t.Error("metrics JSON missing tape counter")
	}
}

func TestObserveOffLeavesReportNil(t *testing.T) {
	sys := quickSystem(t, 1, 4)
	r, s := makeRelations(t, sys)
	res, err := sys.Join(CDTGH, r, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != nil {
		t.Fatal("Report should be nil without Observe")
	}
}

func TestObserveWithFaultsCountsDecisions(t *testing.T) {
	res := observedJoin(t, CTTGH, Config{
		MemoryMB: 1, DiskMB: 4, Profile: IdealTape,
		Faults: "transient=R:5:2",
	})
	text := res.Report.MetricsText()
	if !strings.Contains(text, `fault_decisions_total{outcome="transient"} 2`) {
		t.Errorf("fault decisions not counted:\n%s", grepLines(text, "fault"))
	}
	if !strings.Contains(text, "join_retry_backoff_seconds_count") {
		t.Errorf("retry backoff histogram missing:\n%s", grepLines(text, "retry"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
