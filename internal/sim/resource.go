package sim

import "fmt"

// Resource is a FIFO resource with fixed capacity, used to model device
// arms, buses and other units of mutual exclusion. Acquire blocks in
// virtual time until a unit is free; Release hands the unit to the
// longest-waiting process.
type Resource struct {
	k        *Kernel
	name     string
	capacity int
	inUse    int
	waiters  []*Proc

	// Accounting, exposed for device statistics.
	Acquisitions int64
	// BusyTime accumulates capacity-weighted busy virtual time. For a
	// capacity-1 resource it is exactly the total time the resource was
	// held.
	BusyTime   Duration
	lastChange Time
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{k: k, name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

func (r *Resource) accrue() {
	now := r.k.now
	if r.inUse > 0 {
		r.BusyTime += Duration(now-r.lastChange) * Duration(r.inUse) / Duration(r.capacity)
	}
	r.lastChange = now
}

// Acquire obtains one unit of the resource, blocking FIFO until one is
// available.
func (r *Resource) Acquire(p *Proc) {
	r.Acquisitions++
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.accrue()
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.state = stateBlocked
	p.blockedOn = "resource:" + r.name
	p.block()
	// The releasing process already transferred the unit to us.
}

// TryAcquire obtains a unit if one is immediately available and reports
// whether it did.
func (r *Resource) TryAcquire(p *Proc) bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.Acquisitions++
		r.accrue()
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit. If processes are waiting, the unit is
// transferred to the head waiter, which becomes runnable at the current
// virtual time.
func (r *Resource) Release(p *Proc) {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	if len(r.waiters) > 0 {
		// Transfer the unit: inUse is unchanged.
		w := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.k.makeReady(w)
		return
	}
	r.accrue()
	r.inUse--
}

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release(p)
	fn()
}
