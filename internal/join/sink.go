package join

import (
	"encoding/binary"
	"hash/fnv"

	"repro/internal/block"
	"repro/internal/sim"
)

// Sink receives join output. The paper's default cost model pipelines
// output to a downstream consumer at no I/O cost (Section 3.2); to
// model locally stored output, reduce Resources.DiskRate as the paper
// prescribes.
type Sink interface {
	// Emit delivers one matching pair (r ⋈ s).
	Emit(p *sim.Proc, r, s block.Tuple)
	// Count returns the number of pairs emitted so far.
	Count() int64
}

// CountSink counts matches and keeps an order-independent checksum of
// the matched keys so runs of different methods can be compared
// exactly.
type CountSink struct {
	Matches int64
	KeySum  uint64 // sum of matched keys mod 2^64; order-independent
	// PairSum is an order-independent digest of the full output
	// payload: the sum mod 2^64 of an FNV-1a hash over each pair's
	// keys and payload bytes. Equal PairSums mean the runs emitted the
	// same multiset of pairs, byte for byte — the end-to-end integrity
	// oracle across methods, backends and fault schedules.
	PairSum uint64
}

// Emit implements Sink.
func (c *CountSink) Emit(_ *sim.Proc, r, s block.Tuple) {
	c.Matches++
	c.KeySum += r.Key
	c.PairSum += pairHash(r, s)
}

// pairHash digests one output pair, keys and payloads included.
func pairHash(r, s block.Tuple) uint64 {
	h := fnv.New64a()
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], r.Key)
	h.Write(k[:])
	h.Write(r.Payload)
	binary.LittleEndian.PutUint64(k[:], s.Key)
	h.Write(k[:])
	h.Write(s.Payload)
	return h.Sum64()
}

// Count implements Sink.
func (c *CountSink) Count() int64 { return c.Matches }

// Hash implements Hasher.
func (c *CountSink) Hash() uint64 { return c.PairSum }

// Hasher is implemented by sinks that maintain an order-independent
// digest of the emitted pairs (CountSink.PairSum). Schedulers use it to
// surface a per-query OutputHash without knowing the sink's concrete
// type, so online-, batch- and solo-served runs of the same query can
// be compared byte for byte.
type Hasher interface {
	Hash() uint64
}

// StreamSink is a Sink with a backpressure/stop signal: once Satisfied
// reports true, the join stops reading input, unwinds its pipelines
// cleanly, and returns with Stats.Stopped set. Satisfied is polled at
// emission points and before device reads, so a few extra pairs may be
// emitted between the flip and the stop — consumers that need an exact
// cut-off should use ExecOptions.StopAfter, which counts emissions
// inside the join itself. Note that while a recoverable unit's output
// is staged (see Recovery), pairs reach the sink only at unit commit,
// so a Satisfied signal derived from delivered pairs flips at unit
// granularity.
type StreamSink interface {
	Sink
	// Satisfied reports that the consumer needs no more output.
	Satisfied() bool
}

// StopSink wraps a sink with an emission cap, turning it into a
// StreamSink that is satisfied after N pairs: the canonical way to run
// a top-k / LIMIT-n query against the streaming methods. A
// non-positive N never satisfies.
type StopSink struct {
	Inner Sink
	N     int64
}

// Emit implements Sink.
func (s *StopSink) Emit(p *sim.Proc, r, t block.Tuple) { s.Inner.Emit(p, r, t) }

// Count implements Sink.
func (s *StopSink) Count() int64 { return s.Inner.Count() }

// Satisfied implements StreamSink.
func (s *StopSink) Satisfied() bool { return s.N > 0 && s.Inner.Count() >= s.N }

// Hash implements Hasher when the inner sink does (0 otherwise).
func (s *StopSink) Hash() uint64 {
	if h, ok := s.Inner.(Hasher); ok {
		return h.Hash()
	}
	return 0
}

// GroupCountSink is a pipelined aggregate consumer (the Section 3.2
// case where "the join operator pipelines its output to an aggregate
// operator"): it folds each match into a per-key count instead of
// materializing pairs, so output costs nothing beyond the fold.
type GroupCountSink struct {
	Counts map[uint64]int64
	total  int64
}

// Emit implements Sink.
func (g *GroupCountSink) Emit(_ *sim.Proc, r, _ block.Tuple) {
	if g.Counts == nil {
		g.Counts = make(map[uint64]int64)
	}
	g.Counts[r.Key]++
	g.total++
}

// Count implements Sink.
func (g *GroupCountSink) Count() int64 { return g.total }

// PairSink records every output pair's keys, for small correctness
// tests.
type PairSink struct {
	Pairs [][2]uint64
}

// Emit implements Sink.
func (s *PairSink) Emit(_ *sim.Proc, r, t block.Tuple) {
	s.Pairs = append(s.Pairs, [2]uint64{r.Key, t.Key})
}

// Count implements Sink.
func (s *PairSink) Count() int64 { return int64(len(s.Pairs)) }
