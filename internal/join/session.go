package join

import (
	"errors"
	"fmt"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/sim"
)

// Session hosts a sequence of joins on one simulation kernel and one
// shared device complex — two tape drives and a disk array — so state
// that outlives a single join carries across queries: tape-drive head
// positions (later mounts of the same cartridge resume where the head
// stopped) and disk-resident staging files (the workload engine's
// cross-query cache). Run wraps a Session around one join; the
// workload engine runs a whole batch inside one.
//
// A Session is single-threaded in simulation terms: Exec, ExecShared
// and StageR must be called from a proc of the session's kernel, one
// at a time.
type Session struct {
	k              *sim.Kernel
	res            Resources
	driveR, driveS device.Drive
	disks          device.Store
	inj            fault.Injector
	retryBackoff   *obs.Histogram
	unitRestarts   *obs.Counter
	// retired holds devices swapped out by a mid-run degrade; they are
	// kept until Close so their OS resources (I/O workers, scratch
	// dirs) are released exactly once.
	retired []interface{ Close() error }
}

// NewSession builds the device complex described by res: two tape
// drives named "R" and "S" and a striped disk array, with trace,
// metrics and fault-injection wiring attached.
func NewSession(res Resources) (*Session, error) {
	res = res.WithDefaults()
	if err := res.Validate(); err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	driveR, err := res.Backend.NewDrive(k, "R", res.Tape)
	if err != nil {
		return nil, err
	}
	driveS, err := res.Backend.NewDrive(k, "S", res.Tape)
	if err != nil {
		driveR.Close()
		return nil, err
	}
	array, err := res.Backend.NewStore(k, device.StoreConfig{
		NumDisks:        res.NumDisks,
		AggregateRate:   res.DiskRate,
		RequestOverhead: res.DiskOverhead,
		BlocksPerDisk:   (res.DiskBlocks + int64(res.NumDisks) - 1) / int64(res.NumDisks),
	})
	if err != nil {
		driveR.Close()
		driveS.Close()
		return nil, err
	}

	if res.Trace != nil {
		res.Trace.Spans = res.Spans
		driveR.SetRecorder(res.Trace)
		driveS.SetRecorder(res.Trace)
		array.SetRecorder(res.Trace)
	}
	// Wall-clocked backends get dual-clock spans; virtual-only runs
	// keep zero wall fields. The flight recorder sees span boundaries
	// either way.
	if _, ok := res.Backend.(device.WallStatser); ok {
		res.Spans.EnableWallClock()
	}
	res.Spans.SetFlight(res.Flight)
	if res.Metrics != nil {
		driveR.SetMetrics(res.Metrics)
		driveS.SetMetrics(res.Metrics)
		array.SetMetrics(res.Metrics)
	}
	var inj fault.Injector
	if res.Faults != nil {
		inj = fault.Instrument(res.Faults, res.Metrics, res.Flight)
		driveR.SetInjector(inj)
		driveS.SetInjector(inj)
		array.SetInjector(inj)
	}
	return &Session{
		k: k, res: res,
		driveR: driveR, driveS: driveS, disks: array,
		inj: inj,
		retryBackoff: res.Metrics.Histogram("join_retry_backoff_seconds",
			"Backoff waits before fault-recovery re-reads.", obs.BackoffBuckets),
		unitRestarts: res.Metrics.Counter("join_unit_restarts_total",
			"Work units restarted from a checkpoint after a fault."),
	}, nil
}

// Kernel returns the session's simulation kernel.
func (s *Session) Kernel() *sim.Kernel { return s.k }

// DriveR returns the R-side tape drive.
func (s *Session) DriveR() device.Drive { return s.driveR }

// DriveS returns the S-side tape drive.
func (s *Session) DriveS() device.Drive { return s.driveS }

// Disks returns the shared disk array.
func (s *Session) Disks() device.Store { return s.disks }

// Resources returns the session's resource configuration (defaults
// filled).
func (s *Session) Resources() Resources { return s.res }

// Finish closes the observability tracker at the kernel's final time.
// Call once after the kernel has drained.
func (s *Session) Finish() { s.res.Spans.Finish(s.k.Now()) }

// Close releases the session's devices — current and retired — and
// their OS resources (file-backend I/O workers and scratch
// directories). A no-op on the virtual backend. Safe to call more
// than once; call it after the kernel has drained.
func (s *Session) Close() error {
	var errs []error
	for _, c := range s.retired {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	s.retired = nil
	for _, c := range []interface{ Close() error }{s.driveR, s.driveS, s.disks} {
		if c != nil {
			if err := c.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// ExecOptions tune one join executed inside a Session.
type ExecOptions struct {
	// MemoryBlocks and DiskBlocks, when non-zero, override the
	// session's M and D for this run: the workload engine's admission
	// control partitions the shared budgets across concurrent queries
	// this way. The physical array keeps the session's capacity; the
	// override only bounds what this run's method plans with.
	MemoryBlocks, DiskBlocks int64
	// StagedR, when non-nil, is a disk-resident unfiltered-or-
	// equivalently-filtered copy of R staged by an earlier run (the
	// workload staging cache). Methods that begin by plain-copying R
	// to disk — the Nested Block family — use it directly and skip
	// their Step I tape read. Ownership stays with the caller: the
	// run never frees the file. Hash-partitioning methods ignore it
	// (their Step I layout depends on M).
	StagedR device.File
	// StopAfter, when positive, stops the join once that many output
	// pairs have been emitted: the run unwinds cleanly (pipelines
	// drain, scratch frees) and succeeds with Stats.Stopped set. The
	// emitted pairs are a prefix of the full result — a sub-multiset
	// of what the complete run would produce. Distinct from any
	// materialization limit a caller's sink applies: StopAfter stops
	// device work, a sink-side cap merely discards.
	//
	// StopAfter (and any StreamSink-typed sink) puts the run in
	// streaming mode: output flows to the sink as units commit instead
	// of being staged until run end, which is what makes time-to-first-
	// tuple real. The trade-off is that a drive-loss degrade can no
	// longer transparently re-plan once pairs have been delivered —
	// such a run fails with the loss error instead.
	StopAfter int64
}

// devSnapshot records cumulative device counters at exec start so
// per-run stats can be reported as deltas on the shared devices.
type devSnapshot struct {
	driveR, driveS device.Drive
	rStats, sStats device.DriveStats
	rBusy, sBusy   sim.Duration
	array          device.Store
	aStats         device.DiskStats
	aBusy          sim.Duration
}

func (s *Session) snapshot() devSnapshot {
	return devSnapshot{
		driveR: s.driveR, driveS: s.driveS,
		rStats: s.driveR.DriveStats(), sStats: s.driveS.DriveStats(),
		rBusy: s.driveR.BusyTime(), sBusy: s.driveS.BusyTime(),
		array:  s.disks,
		aStats: s.disks.DiskStats(), aBusy: s.disks.BusyTime(),
	}
}

// newEnv builds a method runtime context on the session's devices.
func (s *Session) newEnv(t0 sim.Time, spec Spec, res Resources, sink Sink) *env {
	return &env{
		k: s.k, spec: spec, res: res,
		driveR: s.driveR, driveS: s.driveS, disks: s.disks,
		mem: &ledger{}, sink: sink, stats: &Stats{}, t0: t0,
		eodR: spec.R.Media.EOD(), eodS: spec.S.Media.EOD(),
		inj:          s.inj,
		retryBackoff: s.retryBackoff,
		unitRestarts: s.unitRestarts,
	}
}

// ensureLoaded mounts the spec's cartridges into drives that hold
// different media. Loading itself is free of virtual time — the paper
// assumes pre-mounted input tapes — so a scheduler that wants mount
// delays charged must hold for them before calling Exec (the workload
// engine does).
func (s *Session) ensureLoaded(spec Spec) {
	if s.driveR.Media() != spec.R.Media {
		s.driveR.Load(spec.R.Media)
	}
	if s.driveS.Media() != spec.S.Media {
		s.driveS.Load(spec.S.Media)
	}
}

// Exec runs one join on the session's devices from within a proc of
// the session's kernel. Stats are per-run: device counters are
// reported as deltas, Response is the run's own duration, and disk
// high water restarts from the space currently held (staging-cache
// files included). On a drive-loss degrade the replacement devices
// become the session's devices for subsequent runs.
func (s *Session) Exec(p *sim.Proc, m Method, spec Spec, sink Sink, opts ExecOptions) (*Result, error) {
	res := s.res
	if opts.MemoryBlocks > 0 {
		res.MemoryBlocks = opts.MemoryBlocks
	}
	if opts.DiskBlocks > 0 {
		res.DiskBlocks = opts.DiskBlocks
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := m.Check(spec, res); err != nil {
		return nil, fmt.Errorf("%s: %w", m.Symbol(), err)
	}
	if sink == nil {
		sink = &CountSink{}
	}
	s.ensureLoaded(spec)

	snap := s.snapshot()
	s.disks.ResetHighWater()
	e := s.newEnv(p.Now(), spec, res, sink)
	e.stagedR = opts.StagedR
	e.stopAfter = opts.StopAfter
	if ss, ok := sink.(StreamSink); ok {
		e.streamSink = ss
	}
	streaming := e.stopAfter > 0 || e.streamSink != nil
	// The first-tuple stamp sits beneath any staging, so it records
	// when a pair actually reached the caller's sink.
	e.sink = &firstTupleSink{e: e, inner: sink}
	// Stage the run's output so a drive-loss re-plan can discard the
	// failed attempt's emissions and start over without
	// double-delivering. Streaming runs skip the whole-run staging —
	// the point is that pairs reach the sink as units commit — and
	// give up the transparent re-plan in exchange (see
	// ExecOptions.StopAfter).
	if !res.Recovery.Disabled && !streaming {
		e.outer = &stagedSink{inner: e.sink}
		e.sink = e.outer
	}

	runErr := m.run(e, p)
	if errors.Is(runErr, ErrStopped) {
		e.stats.Stopped = true
		runErr = nil
	}
	if runErr != nil && !res.Recovery.Disabled &&
		errors.Is(runErr, fault.ErrDriveLost) && !e.stats.DriveLost {
		if streaming && e.emitted > 0 {
			runErr = fmt.Errorf("join: drive lost after %d pairs streamed; cannot re-plan delivered output: %w",
				e.emitted, runErr)
		} else {
			runErr = e.degradeRerun(p, runErr)
			if errors.Is(runErr, ErrStopped) {
				e.stats.Stopped = true
				runErr = nil
			}
		}
	}
	// A degrade swapped in replacement devices; they are the session's
	// devices from here on. The replaced originals are kept until
	// Close so their OS resources are released exactly once.
	for _, d := range e.retiredDrives {
		s.retired = append(s.retired, d)
	}
	for _, a := range e.retiredArrays {
		s.retired = append(s.retired, a)
	}
	s.driveR, s.driveS, s.disks = e.driveR, e.driveS, e.disks
	if runErr != nil {
		return nil, fmt.Errorf("%s: %w", m.Symbol(), runErr)
	}
	if e.outer != nil {
		e.outer.commit(p)
	}

	s.finishStats(e, p.Now(), snap)
	result := &Result{Method: m.Symbol(), Stats: *e.stats}
	if e.dbuf != nil {
		result.BufferTrace = e.dbuf.Trace()
		result.BufferCapacity = e.dbufCap
	}
	return result, nil
}

// finishStats fills the run's device stats as deltas against the
// exec-start snapshot. Devices created during the run (degrade
// replacements) contribute their full counters; the snapshotted
// originals — whether still active or retired mid-run — contribute
// what the run added.
func (s *Session) finishStats(e *env, now sim.Time, snap devSnapshot) {
	st := e.stats
	st.Response = sim.Duration(now - e.t0)
	for _, d := range append([]device.Drive{e.driveR, e.driveS}, e.retiredDrives...) {
		ds := d.DriveStats()
		st.TapeBlocksRead += ds.BlocksRead
		st.TapeBlocksWritten += ds.BlocksWritten
		st.TapeSeeks += ds.Seeks
		st.Faults += ds.InjectedFaults
	}
	st.TapeBlocksRead -= snap.rStats.BlocksRead + snap.sStats.BlocksRead
	st.TapeBlocksWritten -= snap.rStats.BlocksWritten + snap.sStats.BlocksWritten
	st.TapeSeeks -= snap.rStats.Seeks + snap.sStats.Seeks
	st.Faults -= snap.rStats.InjectedFaults + snap.sStats.InjectedFaults

	deadIDs := map[int]bool{}
	for _, a := range append([]device.Store{e.disks}, e.retiredArrays...) {
		as := a.DiskStats()
		st.DiskBlocksRead += as.BlocksRead
		st.DiskBlocksWritten += as.BlocksWritten
		st.Faults += as.Faults
		if hw := a.HighWater(); hw > st.DiskHighWater {
			st.DiskHighWater = hw
		}
		st.DiskBusy += a.BusyTime()
		for _, id := range a.DeadDisks() {
			deadIDs[id] = true
		}
	}
	st.DiskBlocksRead -= snap.aStats.BlocksRead
	st.DiskBlocksWritten -= snap.aStats.BlocksWritten
	st.Faults -= snap.aStats.Faults
	st.DiskBusy -= snap.aBusy
	st.DisksLost = len(deadIDs)

	st.MemHighWater = e.mem.high
	st.OutputTuples = e.sink.Count()
	st.TapeRBusy = e.driveR.BusyTime()
	st.TapeSBusy = e.driveS.BusyTime()
	if e.driveR == snap.driveR {
		st.TapeRBusy -= snap.rBusy
	}
	if e.driveS == snap.driveS {
		st.TapeSBusy -= snap.sBusy
	}
}

// StageR copies relation r from the R-side drive to a striped disk
// file without running a join — the workload engine's staging cache
// fills itself through this path, then hands the file to later runs
// via ExecOptions.StagedR. keep, when non-nil, filters tuples during
// the copy (a filtered copy must only serve queries with the same
// predicate). Returns the file and the copy's virtual duration.
func (s *Session) StageR(p *sim.Proc, r *relation.Relation, keep func(block.Tuple) bool) (device.File, sim.Duration, error) {
	if s.driveR.Media() != r.Media {
		s.driveR.Load(r.Media)
	}
	t0 := p.Now()
	e := s.newEnv(t0, Spec{R: r, S: r, FilterR: keep}, s.res, &CountSink{})
	f, err := copyRToDisk(e, p)
	if err != nil {
		return nil, 0, err
	}
	return f, sim.Duration(p.Now() - t0), nil
}
