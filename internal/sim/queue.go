package sim

import "fmt"

// Queue is a bounded FIFO channel in virtual time, used to connect
// producer and consumer processes in a join pipeline. Send blocks when
// the queue is full, Recv blocks when it is empty. After Close, Recv
// drains remaining items and then reports ok=false.
type Queue[T any] struct {
	k      *Kernel
	name   string
	cap    int
	items  []T
	closed bool

	sendWait []*Proc
	recvWait []*Proc
}

// NewQueue returns a queue with the given capacity (>= 1).
func NewQueue[T any](k *Kernel, name string, capacity int) *Queue[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: queue %q capacity %d < 1", name, capacity))
	}
	return &Queue[T]{k: k, name: name, cap: capacity}
}

// Name returns the queue name.
func (q *Queue[T]) Name() string { return q.name }

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Send enqueues v, blocking in virtual time while the queue is full.
// Send panics if the queue is closed.
func (q *Queue[T]) Send(p *Proc, v T) {
	for len(q.items) >= q.cap {
		if q.closed {
			panic(fmt.Sprintf("sim: send on closed queue %q", q.name))
		}
		q.sendWait = append(q.sendWait, p)
		p.state = stateBlocked
		p.blockedOn = "queue-send:" + q.name
		p.block()
	}
	if q.closed {
		panic(fmt.Sprintf("sim: send on closed queue %q", q.name))
	}
	q.items = append(q.items, v)
	q.wakeRecv()
}

// Recv dequeues the next item. ok is false when the queue is closed
// and drained.
func (q *Queue[T]) Recv(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.recvWait = append(q.recvWait, p)
		p.state = stateBlocked
		p.blockedOn = "queue-recv:" + q.name
		p.block()
	}
	v = q.items[0]
	var zero T
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = zero // release the moved-out slot
	q.items = q.items[:len(q.items)-1]
	q.wakeSend()
	return v, true
}

// Close marks the queue closed. Blocked receivers wake and observe the
// drained queue; further Sends panic.
func (q *Queue[T]) Close(p *Proc) {
	if q.closed {
		return
	}
	q.closed = true
	q.wakeRecv()
}

func (q *Queue[T]) wakeRecv() {
	for _, w := range q.recvWait {
		q.k.makeReady(w)
	}
	q.recvWait = q.recvWait[:0]
}

func (q *Queue[T]) wakeSend() {
	for _, w := range q.sendWait {
		q.k.makeReady(w)
	}
	q.sendWait = q.sendWait[:0]
}
