package workload

// Device-failure containment: a query whose service dies with a
// device-class error is re-admitted once on the surviving complex, a
// failed shared pass demotes its riders to solo service, and a query
// that fails again is marked Failed with a typed reason — the batch
// always completes.

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/join"
)

// faultedBatch is a two-query FIFO batch with sched injected.
func faultedBatch(t *testing.T, policy Policy, n int, spec string) (*batch, *BatchResult) {
	t.Helper()
	b := makeBatch(t, policy, 0)
	b.queries = b.queries[:n]
	sched, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	b.cfg.Resources.Faults = sched
	out, err := Run(b.cfg, b.queries)
	if err != nil {
		t.Fatalf("batch aborted: %v", err)
	}
	return b, out
}

// TestRequeueRecoversQuery injects a transient fault persistent enough
// to exhaust q0's read retries AND unit restarts (5 reads × 4 unit
// attempts = 20 firings), but spent by the time the scheduler
// re-admits the query: the requeue runs clean and delivers the exact
// join, and the rest of the batch is untouched.
func TestRequeueRecoversQuery(t *testing.T) {
	b, out := faultedBatch(t, FIFO, 2, "transient=R:3:20")
	if out.Requeues != 1 {
		t.Fatalf("Requeues = %d, want 1", out.Requeues)
	}
	q0, q1 := out.Queries[0], out.Queries[1]
	if q0.Failed || !q0.Requeued {
		t.Fatalf("q0: failed=%v requeued=%v, want recovered requeue", q0.Failed, q0.Requeued)
	}
	if q0.Matches != b.expect["q0"] {
		t.Fatalf("q0 matches = %d, want %d", q0.Matches, b.expect["q0"])
	}
	if q1.Failed || q1.Requeued || q1.Matches != b.expect["q1"] {
		t.Fatalf("q1 disturbed: %+v", q1)
	}
}

// TestRequeueExhaustedFailsTyped makes the fault outlive the requeue
// too: the query must be marked Failed with the typed exhaustion
// reason — and the batch must keep going and serve the next query.
func TestRequeueExhaustedFailsTyped(t *testing.T) {
	b, out := faultedBatch(t, FIFO, 2, "transient=R:3:40")
	q0, q1 := out.Queries[0], out.Queries[1]
	if !q0.Failed || !q0.Requeued {
		t.Fatalf("q0: failed=%v requeued=%v, want failed after requeue", q0.Failed, q0.Requeued)
	}
	if !strings.Contains(q0.Reason, "retries exhausted") {
		t.Fatalf("q0 reason %q lacks typed exhaustion cause", q0.Reason)
	}
	if q0.Matches != 0 {
		t.Fatalf("failed query delivered %d matches", q0.Matches)
	}
	if q1.Failed || q1.Matches != b.expect["q1"] {
		t.Fatalf("batch did not continue past failed query: %+v", q1)
	}
}

// TestSharedPassDemotesRiders fails a shared S-scan with a transient
// burst that is spent by the time the riders rerun solo: every rider
// must be demoted (Requeued), deliver its exact cardinality, and —
// because the pass's output was held, not delivered — the user-visible
// sink must see each pair exactly once.
func TestSharedPassDemotesRiders(t *testing.T) {
	b := makeBatch(t, SharedScan, 0)
	sched, err := fault.Parse("transient=S:40:5")
	if err != nil {
		t.Fatal(err)
	}
	b.cfg.Resources.Faults = sched
	sinks := make(map[string]*join.CountSink)
	for i := range b.queries {
		cs := &join.CountSink{}
		sinks[b.queries[i].ID] = cs
		b.queries[i].Sink = cs
	}
	out, err := Run(b.cfg, b.queries)
	if err != nil {
		t.Fatalf("batch aborted: %v", err)
	}
	if out.Demotions == 0 {
		t.Fatal("no riders demoted despite failed shared pass")
	}
	demoted := 0
	for _, qr := range out.Queries {
		if qr.Failed {
			t.Fatalf("query %s failed: %s", qr.ID, qr.Reason)
		}
		if want := b.expect[qr.ID]; qr.Matches != want {
			t.Fatalf("%s matches = %d, want %d", qr.ID, qr.Matches, want)
		}
		// No double delivery: the real sink holds exactly the reported
		// pairs, whether the query rode a pass or was demoted.
		if got := sinks[qr.ID].Count(); got != qr.Matches {
			t.Fatalf("%s sink saw %d pairs, result reports %d", qr.ID, got, qr.Matches)
		}
		if qr.Requeued {
			demoted++
		}
	}
	if demoted != out.Demotions {
		t.Fatalf("per-query demotions %d != batch Demotions %d", demoted, out.Demotions)
	}
}

// TestPersistentFaultNeverAbortsBatch runs the whole shared-scan batch
// against an unbounded device fault: every query may fail, but each
// failure must be typed and the batch must run to completion — the
// containment guarantee.
func TestPersistentFaultNeverAbortsBatch(t *testing.T) {
	b, out := faultedBatch(t, SharedScan, 9, "transient=S:40:1000")
	if len(out.Queries) != len(b.queries) {
		t.Fatalf("results for %d of %d queries", len(out.Queries), len(b.queries))
	}
	for _, qr := range out.Queries {
		if !qr.Failed {
			continue
		}
		if qr.Reason == "" || !strings.Contains(qr.Reason, "retries exhausted") {
			t.Fatalf("%s failed without a typed reason: %q", qr.ID, qr.Reason)
		}
	}
}
