package fault

import (
	"errors"

	"repro/internal/obs"
)

// instrumented wraps an Injector, counting its decisions by outcome in
// an obs.Registry and recording injected stall durations.
type instrumented struct {
	inner  Injector
	flight *obs.FlightRecorder

	ok, transient, media, deviceLost, driveLost, corrupt, stall *obs.Counter

	osErr, tornWrite, osStall, flipStored *obs.Counter

	stallSeconds *obs.Histogram
}

// Instrument wraps inj so every decision is counted in reg under
// fault_decisions_total{outcome=...} and stall durations land in a
// fault_stall_seconds histogram; non-clean decisions are additionally
// recorded in flight (which may be nil). Returns inj unchanged when
// inj or reg is nil.
func Instrument(inj Injector, reg *obs.Registry, flight *obs.FlightRecorder) Injector {
	if inj == nil || reg == nil {
		return inj
	}
	c := func(outcome string) *obs.Counter {
		return reg.Counter("fault_decisions_total",
			"Fault-injector decisions by outcome.", obs.A("outcome", outcome))
	}
	return &instrumented{
		inner:      inj,
		flight:     flight,
		ok:         c("ok"),
		transient:  c("transient"),
		media:      c("media"),
		deviceLost: c("device-lost"),
		driveLost:  c("drive-lost"),
		corrupt:    c("corrupt"),
		stall:      c("stall"),
		osErr:      c("os-error"),
		tornWrite:  c("torn-write"),
		osStall:    c("os-stall"),
		flipStored: c("flip-stored"),
		stallSeconds: reg.Histogram("fault_stall_seconds",
			"Injected device stall durations.", obs.BackoffBuckets),
	}
}

// Decide implements Injector.
func (i *instrumented) Decide(op Op) Decision {
	d := i.inner.Decide(op)
	switch {
	case errors.Is(d.Err, ErrDriveLost):
		i.driveLost.Inc()
		i.flight.Record("fault", op.Device, "drive-lost")
	case errors.Is(d.Err, ErrDeviceLost):
		i.deviceLost.Inc()
		i.flight.Record("fault", op.Device, "device-lost")
	case errors.Is(d.Err, ErrMedia):
		i.media.Inc()
		i.flight.Record("fault", op.Device, "media")
	case d.Err != nil:
		i.transient.Inc()
		i.flight.Record("fault", op.Device, "transient")
	case d.Corrupt:
		i.corrupt.Inc()
		i.flight.Record("fault", op.Device, "corrupt")
	case d.Stall > 0:
		i.stall.Inc()
		i.flight.Record("fault", op.Device, "stall")
	default:
		i.ok.Inc()
	}
	if d.Stall > 0 {
		i.stallSeconds.Observe(d.Stall.Seconds())
	}
	return d
}

// DecideOS implements OSInjector, forwarding to the inner injector's
// OS side (if any) and counting non-clean verdicts. Clean OS consults
// are not counted as "ok": every file operation consults both levels,
// and the ok counter tracks device-level decisions only.
func (i *instrumented) DecideOS(op Op) OSDecision {
	d := DecideOS(i.inner, op)
	switch {
	case d.Err != nil:
		i.osErr.Inc()
		i.flight.Record("fault", op.Device, "os-error")
	case d.Torn:
		i.tornWrite.Inc()
		i.flight.Record("fault", op.Device, "torn-write")
	case d.Flip:
		i.flipStored.Inc()
		i.flight.Record("fault", op.Device, "flip-stored")
	case d.Stall > 0:
		i.osStall.Inc()
		i.flight.Record("fault", op.Device, "os-stall")
	}
	return d
}
