package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Parse builds a Schedule from a compact comma-separated spec, the
// grammar behind the -faults flag of both CLIs. One grammar covers
// both fault levels: *device*-level rules fire inside the device model
// on every backend, while *OS*-level rules fire at the syscall layer
// and therefore only on -backend=file.
//
//	directive                    level   fires on              effect
//	─────────────────────────    ──────  ────────────────────  ─────────────────────────────
//	transient=DEV:ADDR[:COUNT]   device  reads of ADDR         retryable error
//	hard=DEV:ADDR                device  reads of ADDR         unrecoverable media error
//	corrupt=DEV:ADDR[:COUNT]     device  reads of ADDR         bit-flip the delivered copy
//	stall=DEV:DUR[:COUNT]        device  reads                 virtual-time hiccup of DUR
//	diskfail=N@TIME              device  all ops on disk N     device permanently lost
//	drivefail=DEV@TIME           device  all ops on drive DEV  tape transport permanently lost
//	oserr=DEV:ADDR[:COUNT]       OS      file ops at ADDR      EIO-style retryable error
//	torn=DEV:ADDR[:COUNT]        OS      file writes at ADDR   short (torn) write, silent
//	oswait=DEV:DUR[:COUNT]       OS      file ops              wall-clock stall of DUR
//	flip=DEV:ADDR[:COUNT]        OS      file writes at ADDR   bit-flip the stored bytes
//	random=SEED[:COUNT]          device  —                     COUNT seeded recoverable faults
//
// DEV is R or S (the tape drives), disk (the array-wide transfer
// path), or diskN (one drive of the array). DUR and TIME use Go
// duration syntax ("90s", "1h10m"); COUNT defaults to 1. Schedule's
// String method renders the inverse mapping, so a parsed (or randomly
// generated) schedule round-trips through its log line. Example:
//
//	-faults "transient=S:1000:2,oswait=disk:200ms:3,diskfail=1@30m"
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: directive %q is not key=value", part)
		}
		var err error
		switch key {
		case "transient":
			err = parseAddrRule(val, true, func(dev string, addr int64, count int) {
				s.AddTransient(dev, addr, count)
			})
		case "hard":
			err = parseAddrRule(val, false, func(dev string, addr int64, _ int) {
				s.AddHard(dev, addr)
			})
		case "corrupt":
			err = parseAddrRule(val, true, func(dev string, addr int64, count int) {
				s.AddCorrupt(dev, addr, count)
			})
		case "stall":
			err = parseStall(val, func(dev string, d time.Duration, count int) {
				s.AddStall(dev, sim.Duration(d), count)
			})
		case "oserr":
			err = parseAddrRule(val, true, func(dev string, addr int64, count int) {
				s.AddOSError(dev, addr, count)
			})
		case "torn":
			err = parseAddrRule(val, true, func(dev string, addr int64, count int) {
				s.AddTornWrite(dev, addr, count)
			})
		case "oswait":
			err = parseStall(val, func(dev string, d time.Duration, count int) {
				s.AddWallStall(dev, d, count)
			})
		case "flip":
			err = parseAddrRule(val, true, func(dev string, addr int64, count int) {
				s.AddFlipStored(dev, addr, count)
			})
		case "diskfail":
			err = parseDiskFail(s, val)
		case "drivefail":
			err = parseDriveFail(s, val)
		case "random":
			err = parseRandom(s, val)
		default:
			err = fmt.Errorf("fault: unknown directive %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: %q: %w", part, err)
		}
	}
	return s, nil
}

// device canonicalizes a spec device name.
func device(name string) (string, error) {
	switch {
	case name == "R" || name == "S":
		return "tape:" + name, nil
	case name == "disk" || strings.HasPrefix(name, "disk"):
		return name, nil
	case strings.HasPrefix(name, "tape:"):
		return name, nil
	}
	return "", fmt.Errorf("unknown device %q (want R, S, disk or diskN)", name)
}

func parseAddrRule(val string, hasCount bool, add func(dev string, addr int64, count int)) error {
	fields := strings.Split(val, ":")
	if len(fields) < 2 || (!hasCount && len(fields) != 2) || len(fields) > 3 {
		return fmt.Errorf("want DEV:ADDR%s", map[bool]string{true: "[:COUNT]", false: ""}[hasCount])
	}
	dev, err := device(fields[0])
	if err != nil {
		return err
	}
	addr, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad address %q", fields[1])
	}
	count := 1
	if len(fields) == 3 {
		if count, err = strconv.Atoi(fields[2]); err != nil || count <= 0 {
			return fmt.Errorf("bad count %q", fields[2])
		}
	}
	add(dev, addr, count)
	return nil
}

func parseStall(val string, add func(dev string, d time.Duration, count int)) error {
	fields := strings.Split(val, ":")
	if len(fields) < 2 || len(fields) > 3 {
		return fmt.Errorf("want DEV:DUR[:COUNT]")
	}
	dev, err := device(fields[0])
	if err != nil {
		return err
	}
	d, err := time.ParseDuration(fields[1])
	if err != nil || d <= 0 {
		return fmt.Errorf("bad duration %q", fields[1])
	}
	count := 1
	if len(fields) == 3 {
		if count, err = strconv.Atoi(fields[2]); err != nil || count <= 0 {
			return fmt.Errorf("bad count %q", fields[2])
		}
	}
	add(dev, d, count)
	return nil
}

func parseDiskFail(s *Schedule, val string) error {
	numStr, atStr, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want N@TIME")
	}
	n, err := strconv.Atoi(numStr)
	if err != nil || n < 0 {
		return fmt.Errorf("bad disk number %q", numStr)
	}
	at, err := time.ParseDuration(atStr)
	if err != nil || at < 0 {
		return fmt.Errorf("bad time %q", atStr)
	}
	s.AddDiskFail(n, sim.Time(at))
	return nil
}

func parseDriveFail(s *Schedule, val string) error {
	devStr, atStr, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want DEV@TIME")
	}
	dev, err := device(devStr)
	if err != nil {
		return err
	}
	at, err := time.ParseDuration(atStr)
	if err != nil || at < 0 {
		return fmt.Errorf("bad time %q", atStr)
	}
	s.AddDriveFail(dev, sim.Time(at))
	return nil
}

func parseRandom(s *Schedule, val string) error {
	seedStr, countStr, hasCount := strings.Cut(val, ":")
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return fmt.Errorf("bad seed %q", seedStr)
	}
	count := 3
	if hasCount {
		if count, err = strconv.Atoi(countStr); err != nil || count <= 0 {
			return fmt.Errorf("bad count %q", countStr)
		}
	}
	appendRandom(s, seed, count, RandomConfig{})
	return nil
}

// RandomConfig bounds the faults a seeded random schedule generates.
type RandomConfig struct {
	// Devices to target; default tape:R, tape:S and disk.
	Devices []string
	// MaxAddr bounds fault addresses; default 4096 blocks.
	MaxAddr int64
	// MaxRetries bounds how many retries a transient needs; default 3.
	MaxRetries int
}

// Random builds a deterministic schedule of count recoverable faults
// (transients, delivered-copy corruptions and short stalls) from seed.
// The same seed always yields the same schedule.
func Random(seed int64, count int, cfg RandomConfig) *Schedule {
	s := &Schedule{}
	appendRandom(s, seed, count, cfg)
	return s
}

func appendRandom(s *Schedule, seed int64, count int, cfg RandomConfig) {
	if len(cfg.Devices) == 0 {
		cfg.Devices = []string{"tape:R", "tape:S", "disk"}
	}
	if cfg.MaxAddr <= 0 {
		cfg.MaxAddr = 4096
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < count; i++ {
		dev := cfg.Devices[rng.Intn(len(cfg.Devices))]
		addr := rng.Int63n(cfg.MaxAddr)
		switch rng.Intn(3) {
		case 0:
			s.AddTransient(dev, addr, 1+rng.Intn(cfg.MaxRetries))
		case 1:
			s.AddCorrupt(dev, addr, 1+rng.Intn(cfg.MaxRetries))
		default:
			stall := sim.Duration(1+rng.Intn(10)) * sim.Duration(time.Second)
			s.AddStall(dev, stall, 1)
		}
	}
}
