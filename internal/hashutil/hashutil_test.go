package hashutil

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestHashIsDeterministicAndMixing(t *testing.T) {
	if Hash(1) != Hash(1) {
		t.Fatal("hash not deterministic")
	}
	// Sequential keys must not collide and should differ in many bits.
	seen := map[uint64]bool{}
	for k := uint64(0); k < 10000; k++ {
		h := Hash(k)
		if seen[h] {
			t.Fatalf("collision at key %d", k)
		}
		seen[h] = true
	}
}

func TestBucketRangeAndBalance(t *testing.T) {
	const b = 16
	counts := make([]int, b)
	for k := uint64(0); k < 16000; k++ {
		i := Bucket(k, b)
		if i < 0 || i >= b {
			t.Fatalf("bucket %d out of range", i)
		}
		counts[i]++
	}
	// Uniform hashing: each bucket within 20% of the mean.
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d has %d of 16000 keys; want ~1000", i, c)
		}
	}
}

func TestBucketPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bucket(1, 0)
}

func TestPlanBucketsSmallCase(t *testing.T) {
	// |R| = 100 blocks, M = 20: B = ceil(100/19) = 6, bucket = 17.
	p, err := PlanBuckets(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if p.B != 6 {
		t.Fatalf("B = %d, want 6", p.B)
	}
	if p.BucketBlocks != 17 {
		t.Fatalf("bucket = %d, want 17", p.BucketBlocks)
	}
	if p.BucketBlocks > 20-1 {
		t.Fatal("bucket does not fit in memory with an input block")
	}
	if p.PartitionMemory() > 20 {
		t.Fatalf("partition memory %d exceeds M", p.PartitionMemory())
	}
	if p.WriteBuf < 1 || p.InBuf < 1 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestPlanBucketsAtSqrtBoundary(t *testing.T) {
	// |R| = 288 (the paper's Experiment 3 R of 18 MB), M = 18 blocks:
	// B = ceil(288/17) = 17, needs 17 write buffers + 1 input = 18 = M.
	p, err := PlanBuckets(288, 18)
	if err != nil {
		t.Fatal(err)
	}
	if p.B != 17 || p.WriteBuf != 1 || p.InBuf != 1 {
		t.Fatalf("plan = %+v", p)
	}
	// One block less is infeasible.
	if _, err := PlanBuckets(288, 17); !errors.Is(err, ErrInsufficientMemory) {
		t.Fatalf("err = %v, want ErrInsufficientMemory", err)
	}
}

func TestPlanBucketsAmpleMemoryWidensWriteBuffers(t *testing.T) {
	p, err := PlanBuckets(1000, 600)
	if err != nil {
		t.Fatal(err)
	}
	if p.B != 2 {
		t.Fatalf("B = %d, want 2", p.B)
	}
	if p.WriteBuf < 100 {
		t.Fatalf("write buffer %d should use spare memory", p.WriteBuf)
	}
	if p.PartitionMemory() > 600 {
		t.Fatalf("partition memory %d exceeds M", p.PartitionMemory())
	}
}

func TestPlanBucketsErrors(t *testing.T) {
	if _, err := PlanBuckets(0, 10); err == nil {
		t.Fatal("want error for empty relation")
	}
	if _, err := PlanBuckets(100, 1); !errors.Is(err, ErrInsufficientMemory) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuickPlanInvariants(t *testing.T) {
	f := func(rSeed, mSeed uint16) bool {
		r := int64(rSeed)%5000 + 1
		m := int64(mSeed)%500 + 2
		p, err := PlanBuckets(r, m)
		if err != nil {
			// Infeasible is fine; the error must be the typed one.
			return errors.Is(err, ErrInsufficientMemory)
		}
		if p.B < 1 || p.WriteBuf < 1 || p.InBuf < 1 {
			return false
		}
		// Join phase: bucket + one input block fit in memory.
		if p.BucketBlocks+1 > m {
			return false
		}
		// Partition phase fits in memory.
		if p.PartitionMemory() > m {
			return false
		}
		// Buckets cover the relation.
		return int64(p.B)*p.BucketBlocks >= r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPlanBoundedInvariants(t *testing.T) {
	// Property sweep over (rBlocks, mBlocks, maxBucket), including
	// maxBucket = 0 (unbounded, must equal PlanBuckets) and the tight
	// case maxBucket < M-1 where the largest-fitting-bucket fallback
	// is intentionally skipped: relaxing the bucket target to M-1
	// would violate the caller's disk-assembly bound, so the planner
	// must either honor maxBucket or fail typed.
	f := func(rSeed, mSeed uint16, bSeed uint8) bool {
		r := int64(rSeed)%5000 + 1
		m := int64(mSeed)%500 + 2
		var maxBucket int64
		switch bSeed % 4 {
		case 0:
			maxBucket = 0 // unbounded
		case 1:
			maxBucket = int64(bSeed)%(m-1) + 1 // tight: below M-1
		case 2:
			maxBucket = m - 1 // exactly the join-phase bound
		default:
			maxBucket = m + int64(bSeed) // loose: above M-1
		}
		p, err := PlanBucketsBounded(r, m, maxBucket)
		if err != nil {
			return errors.Is(err, ErrInsufficientMemory)
		}
		if p.B < 1 || p.WriteBuf < 1 || p.InBuf < 1 {
			return false
		}
		// B write buffers plus the input buffer fit: B+1 <= M at
		// minimum widths.
		if int64(p.B)+1 > m || p.PartitionMemory() > m {
			return false
		}
		// Join phase: bucket + one input block fit in memory.
		if p.BucketBlocks+1 > m {
			return false
		}
		// The caller's bound is honored whenever one was given.
		if maxBucket > 0 && p.BucketBlocks > maxBucket {
			return false
		}
		// Buckets cover the relation.
		if int64(p.B)*p.BucketBlocks < r {
			return false
		}
		// maxBucket = 0 must degenerate to PlanBuckets exactly.
		if maxBucket == 0 {
			q, qErr := PlanBuckets(r, m)
			if qErr != nil || q != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanBoundedTightMaxBucketSkipsFallback(t *testing.T) {
	// 288 blocks at M = 18 is feasible unbounded (bucket 17 = M-1 via
	// the fallback), but a disk-assembly bound of 8 blocks forces
	// B = 36 buckets, which need 37 > 18 memory blocks — the fallback
	// must NOT fire (it would breach the bound) and the typed error
	// must surface instead.
	if _, err := PlanBucketsBounded(288, 18, 8); !errors.Is(err, ErrInsufficientMemory) {
		t.Fatalf("err = %v, want ErrInsufficientMemory (fallback must stay skipped)", err)
	}
	// With memory to spare the same bound is honored with more,
	// smaller buckets.
	p, err := PlanBucketsBounded(288, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.BucketBlocks > 8 {
		t.Fatalf("bucket = %d exceeds bound 8", p.BucketBlocks)
	}
	if p.B != 36 {
		t.Fatalf("B = %d, want 36", p.B)
	}
}
