package workload

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/join"
	"repro/internal/relation"
	"repro/internal/tape"
)

// relOfBlocks fabricates a relation descriptor of the given size —
// admission control reads only Region.N, so no tape write is needed.
func relOfBlocks(name string, blocks int64) *relation.Relation {
	return &relation.Relation{
		Config: relation.Config{Name: name, Blocks: blocks, TuplesPerBlock: 4},
		Media:  tape.NewMedia("m-"+name, blocks),
		Region: tape.Region{N: blocks},
	}
}

// TestAdmitSharedBoundaries drives admitShared to its exact budget
// edges: the M/k memory split, a zero-memory complex, and disk
// exhausted by the cache carve-out. Greedy packing is deterministic,
// so the admitted/rejected partition is pinned exactly.
func TestAdmitSharedBoundaries(t *testing.T) {
	res := func(mem, disk, chunk int64) join.Resources {
		return join.Resources{
			MemoryBlocks: mem, DiskBlocks: disk, NumDisks: 2,
			DiskRate: 2 * tape.Ideal().EffectiveRate(),
			Tape:     tape.Ideal(), IOChunk: chunk,
		}
	}
	qs := func(rBlocks ...int64) []Query {
		out := make([]Query, len(rBlocks))
		s := relOfBlocks("S", 96)
		for i, rb := range rBlocks {
			out[i] = Query{ID: string(rune('a' + i)), R: relOfBlocks("R", rb), S: s}
		}
		return out
	}
	idx := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}

	cases := []struct {
		name         string
		cfg          Config
		res          join.Resources
		queries      []Query
		wantAdmitted []int
		wantRejected []int
	}{
		{
			// Disk budget met exactly: 16+16 staged R blocks == the 32
			// free disk blocks. The boundary itself admits; one more
			// rider would overflow and is rejected.
			name:         "exactly at disk budget",
			cfg:          Config{MaxShared: 4},
			res:          res(20, 32, 8),
			queries:      qs(16, 16, 16),
			wantAdmitted: []int{0, 1},
			wantRejected: []int{2},
		},
		{
			// M/k split at its edge: M=4 and an uncapped chunk give
			// mr=2, msLeft=1 for the seed (admit), mr=1, msLeft=1 for a
			// second rider (admit), and k=3 drives msLeft to 0 — the
			// third rider must fall back to solo service.
			name:         "exactly at M/k budget",
			cfg:          Config{MaxShared: 4},
			res:          res(4, 400, 100),
			queries:      qs(4, 4, 4),
			wantAdmitted: []int{0, 1},
			wantRejected: []int{2},
		},
		{
			// Zero memory: no rider can hold even one R buffer plus two
			// S buffers, so nothing is admitted.
			name:         "zero-memory budget",
			cfg:          Config{MaxShared: 4},
			res:          res(0, 400, 8),
			queries:      qs(16, 16),
			wantAdmitted: nil,
			wantRejected: []int{0, 1},
		},
		{
			// Cache carve-out exhausts the disk: D=400 would fit all
			// three staged copies, but CacheBlocks=360 leaves 40 free —
			// exactly two 16-block R copies plus change.
			name:         "cache-budget exhaustion",
			cfg:          Config{MaxShared: 4, CacheBlocks: 360},
			res:          res(20, 400, 8),
			queries:      qs(16, 16, 16),
			wantAdmitted: []int{0, 1},
			wantRejected: []int{2},
		},
		{
			// Same complex without the carve-out: all three fit.
			name:         "no carve-out control",
			cfg:          Config{MaxShared: 4},
			res:          res(20, 400, 8),
			queries:      qs(16, 16, 16),
			wantAdmitted: []int{0, 1, 2},
			wantRejected: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			admitted, rejected := admitShared(tc.cfg, tc.res.WithDefaults(), tc.queries, idx(len(tc.queries)))
			if !reflect.DeepEqual(admitted, tc.wantAdmitted) {
				t.Errorf("admitted = %v, want %v", admitted, tc.wantAdmitted)
			}
			if !reflect.DeepEqual(rejected, tc.wantRejected) {
				t.Errorf("rejected = %v, want %v", rejected, tc.wantRejected)
			}
		})
	}
}

// TestRejectionReasonsTyped pins the typed-reason contract on the
// engine's rejection paths under every policy: a query no method can
// serve fails with Reason "<kind>: <detail>" where kind is
// ReasonInfeasible — never free text.
func TestRejectionReasonsTyped(t *testing.T) {
	for _, policy := range []Policy{FIFO, MountAware, SharedScan} {
		t.Run(policy.String(), func(t *testing.T) {
			b := makeBatch(t, policy, 0)
			// Starve the complex: 2 memory blocks cannot run any method
			// over a 16-block R.
			b.cfg.Resources.MemoryBlocks = 2
			b.cfg.Resources.DiskBlocks = 4
			out, err := Run(b.cfg, b.queries[:3])
			if err != nil {
				t.Fatal(err)
			}
			for _, qr := range out.Queries {
				if !qr.Failed {
					t.Fatalf("query %s served on a starved complex", qr.ID)
				}
				if !strings.HasPrefix(qr.Reason, ReasonInfeasible+": ") {
					t.Errorf("query %s: reason %q lacks typed prefix %q", qr.ID, qr.Reason, ReasonInfeasible)
				}
			}
		})
	}
}
