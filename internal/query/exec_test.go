package query

import (
	"strings"
	"testing"

	"repro/internal/join"
	"repro/internal/relation"
	"repro/internal/tape"
)

// buildTables creates a small typed customers (R) and orders (S) pair.
func buildTables(t *testing.T) (*Table, *Table) {
	t.Helper()
	mR := tape.NewMedia("tr", 512)
	mS := tape.NewMedia("ts", 512)
	customers, err := CreateTable(mR, TableConfig{
		Name: "customers", Tag: 1, Blocks: 24, TuplesPerBlock: 4,
		KeySpace: 200, Seed: 11,
		Schema: Schema{
			{Name: "id", Type: Int64},
			{Name: "tier", Type: String},
		},
		Rows: func(ordinal int64, key uint64) []Value {
			tier := "basic"
			if key%3 == 0 {
				tier = "gold"
			}
			return []Value{tier}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := CreateTable(mS, TableConfig{
		Name: "orders", Tag: 2, Blocks: 96, TuplesPerBlock: 4,
		KeySpace: 200, Seed: 22,
		Schema: Schema{
			{Name: "cust", Type: Int64},
			{Name: "amount", Type: Float64},
			{Name: "region", Type: String},
		},
		Rows: func(ordinal int64, key uint64) []Value {
			region := "emea"
			if ordinal%2 == 0 {
				region = "apac"
			}
			return []Value{float64(ordinal % 50), region}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return customers, orders
}

func execRes(m, d int64) join.Resources {
	return join.Resources{
		MemoryBlocks: m,
		DiskBlocks:   d,
		NumDisks:     2,
		DiskRate:     2 * tape.Ideal().EffectiveRate(),
		Tape:         tape.Ideal(),
		IOChunk:      8,
	}
}

func TestQueryCountMatchesExpectedJoin(t *testing.T) {
	customers, orders := buildTables(t)
	res, err := Run(Query{R: customers, S: orders}, execRes(10, 64))
	if err != nil {
		t.Fatal(err)
	}
	want := relation.ExpectedMatches(customers.Rel, orders.Rel)
	if res.JoinMatches != want || res.Count != want {
		t.Fatalf("matches = %d/%d, want %d", res.JoinMatches, res.Count, want)
	}
	if res.Method == "" || res.Stats.Response <= 0 {
		t.Fatalf("result incomplete: %+v", res)
	}
}

func TestQueryWhereFiltersExactly(t *testing.T) {
	customers, orders := buildTables(t)
	// gold customers with amount >= 25.
	q := Query{
		R: customers, S: orders,
		Where: And(
			Cmp(Eq, Col(SideR, "tier"), Lit("gold")),
			Cmp(Ge, Col(SideS, "amount"), Lit(25.0)),
		),
		Select: []Expr{Col(SideR, "id"), Col(SideS, "amount"), Col(SideS, "region")},
	}
	res, err := Run(q, execRes(10, 64))
	if err != nil {
		t.Fatal(err)
	}
	// Both conjuncts are single-sided, so they are pushed into the
	// join: every joined pair passes, and the join itself is smaller.
	if res.Count == 0 || res.Count != res.JoinMatches {
		t.Fatalf("pushed-down query: count %d of %d joined", res.Count, res.JoinMatches)
	}
	unfiltered, err := Run(Query{R: q.R, S: q.S}, execRes(10, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinMatches >= unfiltered.JoinMatches {
		t.Fatalf("pushdown did not shrink the join: %d vs %d", res.JoinMatches, unfiltered.JoinMatches)
	}
	// Every materialized row satisfies the predicate structurally.
	for _, row := range res.Rows {
		if len(row) != 3 {
			t.Fatalf("row = %v", row)
		}
		id, amount := row[0].(int64), row[1].(float64)
		if id%3 != 0 {
			t.Fatalf("row %v: id not a gold customer", row)
		}
		if amount < 25 {
			t.Fatalf("row %v: amount below predicate", row)
		}
	}
	// Cross-check the count: count S tuples with amount >= 25 whose
	// key is a gold customer, weighted by the R-side multiplicity of
	// the key. Amount is ordinal%50; replicate the generator.
	rCounts := customers.Rel.KeyCounts()
	var want int64
	tuples := orders.Rel.Tuples()
	keys := replayKeys(orders.Rel, tuples)
	for ordinal := int64(0); ordinal < tuples; ordinal++ {
		key := keys[ordinal]
		if key%3 != 0 {
			continue
		}
		if float64(ordinal%50) < 25 {
			continue
		}
		want += rCounts[key]
	}
	if res.Count != want {
		t.Fatalf("count = %d, want %d", res.Count, want)
	}
}

// replayKeys regenerates a relation's key sequence via KeyCounts-style
// replay: WriteToTape and KeyCounts share the seeded stream, so a
// second relation with the same config yields the same keys. We read
// them back from the tape blocks instead, which also exercises decode.
func replayKeys(rel *relation.Relation, n int64) []uint64 {
	blks, err := rel.Media.ReadSetup(rel.Region)
	if err != nil {
		panic(err)
	}
	keys := make([]uint64, 0, n)
	for _, blk := range blks {
		_, tuples := blk.MustDecode()
		for _, tp := range tuples {
			keys = append(keys, tp.Key)
		}
	}
	return keys
}

func TestQueryLimitCapsRowsNotCount(t *testing.T) {
	customers, orders := buildTables(t)
	q := Query{
		R: customers, S: orders,
		Select: []Expr{Col(SideR, "id")},
		Limit:  5,
	}
	res, err := Run(q, execRes(10, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	if res.Count != res.JoinMatches || res.Count <= 5 {
		t.Fatalf("count %d should be exact and above the limit", res.Count)
	}
}

func TestQueryAdvisorPicksTapeTapeWhenDiskTiny(t *testing.T) {
	customers, orders := buildTables(t)
	res, err := Run(Query{R: customers, S: orders}, execRes(10, 16)) // D < |R| = 24 blocks
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "CTT-GH" {
		t.Fatalf("method = %s, want CTT-GH with D < |R|", res.Method)
	}
}

func TestQueryForcedMethod(t *testing.T) {
	customers, orders := buildTables(t)
	res, err := Run(Query{R: customers, S: orders, Method: "DT-NB"}, execRes(10, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "DT-NB" {
		t.Fatalf("method = %s", res.Method)
	}
	if _, err := Run(Query{R: customers, S: orders, Method: "XX"}, execRes(10, 64)); err == nil {
		t.Fatal("unknown method should fail")
	}
}

func TestQueryCompileErrors(t *testing.T) {
	customers, orders := buildTables(t)
	cases := []Query{
		{R: customers, S: orders, Where: Col(SideR, "nope")},
		{R: customers, S: orders, Where: Col(SideR, "tier")}, // non-boolean
		{R: customers, S: orders, Select: []Expr{Col(SideS, "ghost")}},
		{R: nil, S: orders},
		{R: orders, S: customers}, // R larger than S
	}
	for i, q := range cases {
		if _, err := Run(q, execRes(10, 64)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestCreateTableErrors(t *testing.T) {
	m := tape.NewMedia("t", 64)
	if _, err := CreateTable(m, TableConfig{
		Name: "bad", Tag: 1, Blocks: 4, TuplesPerBlock: 2, KeySpace: 10, Seed: 1,
		Schema: Schema{{Name: "k", Type: Float64}},
	}); err == nil {
		t.Fatal("bad schema should fail")
	}
	if _, err := CreateTable(m, TableConfig{
		Name: "bad", Tag: 1, Blocks: 4, TuplesPerBlock: 2, KeySpace: 10, Seed: 1,
		Schema: Schema{{Name: "k", Type: Int64}, {Name: "v", Type: String}},
		Rows:   func(int64, uint64) []Value { return []Value{int64(3)} }, // wrong type
	}); err == nil {
		t.Fatal("row generator type mismatch should fail")
	}
}

func TestQueryNoFeasibleMethod(t *testing.T) {
	// Tiny cartridges with no scratch and D too small for anything.
	mR := tape.NewMedia("tr", 24)
	mS := tape.NewMedia("ts", 96)
	customers, err := CreateTable(mR, TableConfig{
		Name: "c", Tag: 1, Blocks: 24, TuplesPerBlock: 2, KeySpace: 50, Seed: 1,
		Schema: Schema{{Name: "id", Type: Int64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := CreateTable(mS, TableConfig{
		Name: "o", Tag: 2, Blocks: 96, TuplesPerBlock: 2, KeySpace: 50, Seed: 2,
		Schema: Schema{{Name: "cust", Type: Int64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Query{R: customers, S: orders}, execRes(10, 4))
	if err == nil || !strings.Contains(err.Error(), "no feasible") {
		t.Fatalf("err = %v, want no-feasible-method", err)
	}
}
