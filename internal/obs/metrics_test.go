package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentLookup(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("ops_total", "ops", A("dev", "R"))
	b := reg.Counter("ops_total", "ops", A("dev", "R"))
	other := reg.Counter("ops_total", "ops", A("dev", "S"))
	a.Inc()
	b.Add(2)
	other.Inc()
	if a.Value() != 3 {
		t.Errorf("same series should share state, got %v", a.Value())
	}
	if other.Value() != 1 {
		t.Errorf("distinct labels should not share state, got %v", other.Value())
	}
	// Counters ignore negative increments.
	a.Add(-5)
	if a.Value() != 3 {
		t.Errorf("counter went backwards: %v", a.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	text := reg.Exposition()
	for _, want := range []string{
		"# HELP lat_seconds latency",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="1"} 2`, // cumulative: 0.5 and the exact bound 1
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="100"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 556.5",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestExpositionHeadersOncePerName(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x", A("dev", "R")).Inc()
	reg.Counter("x_total", "x", A("dev", "S")).Inc()
	reg.Gauge("y", "y").Set(2.5)
	text := reg.Exposition()
	if strings.Count(text, "# TYPE x_total counter") != 1 {
		t.Errorf("TYPE header should appear once:\n%s", text)
	}
	if !strings.Contains(text, `x_total{dev="R"} 1`) || !strings.Contains(text, `x_total{dev="S"} 1`) {
		t.Errorf("labelled samples missing:\n%s", text)
	}
	if !strings.Contains(text, "y 2.5") {
		t.Errorf("gauge sample missing:\n%s", text)
	}
}

func TestRegistryJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c", A("dev", "R")).Add(7)
	h := reg.Histogram("h_seconds", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	data, err := reg.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out []MetricJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(out) != 2 {
		t.Fatalf("got %d series", len(out))
	}
	if out[0].Name != "c_total" || out[0].Value != 7 || out[0].Labels["dev"] != "R" {
		t.Errorf("counter = %+v", out[0])
	}
	if out[1].Count != 2 || out[1].Sum != 2.5 || len(out[1].Buckets) != 2 {
		t.Errorf("histogram = %+v", out[1])
	}
	if out[1].Buckets[1].LE != "+Inf" || out[1].Buckets[1].Count != 2 {
		t.Errorf("+Inf bucket = %+v", out[1].Buckets[1])
	}
}

// TestRegistryConcurrentScrape hammers a registry with writers while
// other goroutines render Exposition and JSON — the scrape-during-run
// shape the obs server creates. Run under -race this is the proof the
// registry's read paths are safe against live updates.
func TestRegistryConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	// Register one series up front so scrapers that win the race to the
	// first render still see a non-empty exposition.
	reg.Gauge("inflight", "in-flight ops").Set(0)
	var writers, scrapers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := reg.Counter("ops_total", "ops", A("writer", string(rune('A'+w))))
			g := reg.Gauge("inflight", "in-flight ops")
			h := reg.Histogram("lat_seconds", "latency", []float64{0.001, 0.01})
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) / 1000)
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if text := reg.Exposition(); text == "" {
					t.Error("empty exposition mid-run")
					return
				}
				if _, err := reg.JSON(); err != nil {
					t.Errorf("JSON: %v", err)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	scrapers.Wait()
	var total float64
	for _, w := range []string{"A", "B", "C", "D"} {
		total += reg.Counter("ops_total", "ops", A("writer", w)).Value()
	}
	if total != 4000 {
		t.Fatalf("counter total = %v, want 4000", total)
	}
}

// TestExpositionIsValidPromText closes the loop between the producer
// and the checker CI uses on scraped output.
func TestExpositionIsValidPromText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_total", "ops", A("dev", "R")).Inc()
	reg.Gauge("iodev_health", "health state", A("dev", "disk0")).Set(2)
	h := reg.Histogram("lat_seconds", "latency", []float64{0.01, 0.1})
	h.Observe(0.05)
	if err := CheckPromText([]byte(reg.Exposition())); err != nil {
		t.Fatalf("own exposition fails the prom checker: %v\n%s", err, reg.Exposition())
	}
}
