package tapejoin_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	tapejoin "repro"
	"repro/internal/service"
)

// loadCatalog builds the daemon's deterministic dataset: three 6 MB S
// relations on one cartridge each, four 1 MB R relations. Identical
// creation order on every call, so relations — and join output hashes
// — are byte-identical across the systems built for each policy and
// for the reference runs.
func loadCatalog(t testing.TB, sys *tapejoin.System) map[string]*tapejoin.Relation {
	t.Helper()
	cat := make(map[string]*tapejoin.Relation)
	for i := 0; i < 3; i++ {
		tp, err := sys.NewTape(fmt.Sprintf("tape-S%d", i+1), 8)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("S%d", i+1)
		rel, err := sys.CreateRelation(tp, tapejoin.RelationConfig{
			Name: name, SizeMB: 6, KeySpace: 500, Seed: int64(142 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		cat[name] = rel
	}
	for i := 0; i < 4; i++ {
		tp, err := sys.NewTape(fmt.Sprintf("tape-R%d", i/2+1), 4)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("R%d", i+1)
		rel, err := sys.CreateRelation(tp, tapejoin.RelationConfig{
			Name: name, SizeMB: 1, KeySpace: 500, Seed: int64(42 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		cat[name] = rel
	}
	return cat
}

func loadSystem(t testing.TB) *tapejoin.System {
	t.Helper()
	sys, err := tapejoin.NewSystem(tapejoin.Config{MemoryMB: 8, DiskMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestServiceLoadReplay is the daemon's proof: a deterministic seeded
// workload replayed by 500 concurrent clients against the resident
// service under each online policy. It asserts the full service
// contract — zero lost, duplicated or errored queries — and the
// equivalence oracle: every served query's output hash is
// byte-identical to the same (R, S) join run solo via System.Join and
// as a batch via System.RunBatch. The per-policy log lines report
// p50/p99 latency and mount churn, fifo vs mount-aware vs shared-scan.
func TestServiceLoadReplay(t *testing.T) {
	const clients = 500
	queries := 750
	if testing.Short() {
		queries = 120
	}

	// Reference hashes per distinct (R, S) pair: once solo, once
	// batch, on fresh identical systems. The facade's OutputHash
	// plumbing is pinned here too — solo and batch must already agree.
	refHash := make(map[string]string)
	refMatches := make(map[string]int64)
	func() {
		sys := loadSystem(t)
		defer sys.Close()
		cat := loadCatalog(t, sys)
		var bq []tapejoin.BatchQuery
		for ri := 1; ri <= 4; ri++ {
			for si := 1; si <= 3; si++ {
				r, s := cat[fmt.Sprintf("R%d", ri)], cat[fmt.Sprintf("S%d", si)]
				pair := r.Name() + "|" + s.Name()
				res, err := sys.Join(tapejoin.CDTNBMB, r, s)
				if err != nil {
					t.Fatalf("solo join %s: %v", pair, err)
				}
				if res.Stats.OutputHash == 0 {
					t.Fatalf("solo join %s: zero output hash", pair)
				}
				refHash[pair] = fmt.Sprintf("%016x", res.Stats.OutputHash)
				refMatches[pair] = res.Stats.Matches
				if want := tapejoin.ExpectedMatches(r, s); res.Stats.Matches != want {
					t.Fatalf("solo join %s: %d matches, want %d", pair, res.Stats.Matches, want)
				}
				bq = append(bq, tapejoin.BatchQuery{ID: pair, R: r, S: s})
			}
		}
		rep, err := sys.RunBatch(bq, tapejoin.BatchOptions{Policy: tapejoin.BatchMountAware})
		if err != nil {
			t.Fatal(err)
		}
		for _, qr := range rep.Queries {
			if qr.Failed {
				t.Fatalf("batch reference %s failed: %s", qr.ID, qr.Reason)
			}
			if got := fmt.Sprintf("%016x", qr.OutputHash); got != refHash[qr.ID] {
				t.Fatalf("batch hash %s != solo hash %s for %s", got, refHash[qr.ID], qr.ID)
			}
		}
	}()

	spec := service.LoadSpec{
		Seed: 7, Queries: queries, Tenants: 8,
		StreamEvery: 7, PriorityLevels: 3,
	}
	rNames := []string{"R1", "R2", "R3", "R4"}
	sNames := []string{"S1", "S2", "S3"}
	reqs := service.GenLoad(spec, rNames, sNames)
	pairOf := make(map[string]string, len(reqs))
	for _, q := range reqs {
		pairOf[q.ID] = q.R + "|" + q.S
	}

	for _, policy := range []tapejoin.BatchPolicy{
		tapejoin.BatchFIFO, tapejoin.BatchMountAware, tapejoin.BatchSharedScan,
	} {
		t.Run(string(policy), func(t *testing.T) {
			sys := loadSystem(t)
			defer sys.Close()
			svc, err := sys.StartService(tapejoin.ServiceOptions{
				Policy:      policy,
				CacheMB:     4,
				MergeWindow: 5 * time.Millisecond,
				Catalog:     loadCatalog(t, sys),
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := service.Replay(svc.URL(), clients, reqs)
			st := svc.Stats()
			if err := svc.Drain(); err != nil {
				t.Fatalf("drain: %v", err)
			}

			if rep.Sent != queries || len(rep.Outcomes) != queries {
				t.Fatalf("accounting: sent %d, outcomes %d, want %d", rep.Sent, len(rep.Outcomes), queries)
			}
			for id, o := range rep.Outcomes {
				if o.Err != "" {
					t.Fatalf("query %s broken: %s", id, o.Err)
				}
				if o.Failed {
					t.Fatalf("query %s failed: %s", id, o.Reason)
				}
				pair := pairOf[id]
				if o.OutputHash != refHash[pair] {
					t.Errorf("query %s (%s): hash %s, want %s", id, pair, o.OutputHash, refHash[pair])
				}
				if o.Matches != refMatches[pair] {
					t.Errorf("query %s (%s): %d matches, want %d", id, pair, o.Matches, refMatches[pair])
				}
			}
			if rep.OK != queries {
				t.Errorf("ok = %d, want %d", rep.OK, queries)
			}
			if st.Engine.Served != int64(queries) {
				t.Errorf("engine served %d, want %d", st.Engine.Served, queries)
			}
			if policy == tapejoin.BatchSharedScan && st.Engine.SharedPasses == 0 {
				t.Error("shared-scan policy ran no shared passes")
			}
			t.Logf("%-12s %s", policy, strings.ReplaceAll(rep.Summary(), "\n", "  "))
			t.Logf("%-12s mounts=%d (R %d, S %d) shared-passes=%d riders=%d cache-hits=%d",
				policy, st.Engine.Mounts, st.Engine.RMounts, st.Engine.SMounts,
				st.Engine.SharedPasses, st.Engine.SharedRiders, st.Engine.CacheHits)
		})
	}
}

// TestBatchRejectionReasonTyped pins the facade half of the typed
// reason contract: a batch query rejected by admission control always
// reports Reason "<kind>: <detail>" with an exported kind constant.
func TestBatchRejectionReasonTyped(t *testing.T) {
	// 2 memory blocks and 4 disk blocks cannot serve a 16-block R by
	// any method.
	sys, err := tapejoin.NewSystem(tapejoin.Config{MemoryMB: 0.125, DiskMB: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cat := loadCatalog(t, sys)
	rep, err := sys.RunBatch([]tapejoin.BatchQuery{
		{ID: "starved", R: cat["R1"], S: cat["S1"]},
	}, tapejoin.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qr := rep.Queries[0]
	if !qr.Failed {
		t.Fatal("starved query served")
	}
	if !strings.HasPrefix(qr.Reason, tapejoin.ReasonInfeasible+": ") {
		t.Errorf("reason %q lacks typed prefix %q", qr.Reason, tapejoin.ReasonInfeasible)
	}
	if qr.OutputHash != 0 {
		t.Errorf("failed query has output hash %#x", qr.OutputHash)
	}
	// Sanity on the other side: reason kinds are distinct non-empty
	// strings (the exported constants are the public contract).
	kinds := []string{
		tapejoin.ReasonInfeasible, tapejoin.ReasonDeviceFailed,
		tapejoin.ReasonDeadline, tapejoin.ReasonShutdown,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if k == "" || seen[k] {
			t.Errorf("reason kind %q empty or duplicated", k)
		}
		seen[k] = true
	}
}
