package fault

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestOSRulesInvisibleToDecide(t *testing.T) {
	s := (&Schedule{}).
		AddOSError("disk", 5, 3).
		AddTornWrite("disk", 5, 3).
		AddWallStall("disk", time.Second, 3).
		AddFlipStored("disk", 5, 3)
	for _, w := range []bool{false, true} {
		if d := s.Decide(Op{Device: "disk", Addr: 0, N: 10, Write: w}); d != (Decision{}) {
			t.Fatalf("Decide(write=%v) fired an OS-level rule: %+v", w, d)
		}
	}
	// No firings spent: the OS side still sees all of them.
	if d := s.DecideOS(Op{Device: "disk", Addr: 5, N: 1}); d.Err == nil {
		t.Fatal("DecideOS should fire the oserr rule")
	}
}

func TestDeviceRulesInvisibleToDecideOS(t *testing.T) {
	s := (&Schedule{}).AddTransient("disk", 5, 1).AddHard("disk", 5)
	if d := s.DecideOS(Op{Device: "disk", Addr: 5, N: 1}); !d.Zero() {
		t.Fatalf("DecideOS fired a device-level rule: %+v", d)
	}
	if d := s.Decide(Op{Device: "disk", Addr: 5, N: 1}); !IsTransient(d.Err) {
		t.Fatalf("device-level transient should still fire, got %v", d.Err)
	}
}

func TestOSErrorMatchesReadsAndWrites(t *testing.T) {
	s := (&Schedule{}).AddOSError("tape:R", 7, 2)
	if d := s.DecideOS(Op{Device: "tape:R", Addr: 0, N: 10, Write: true}); !IsTransient(d.Err) {
		t.Fatalf("write covering addr 7: want transient OS error, got %+v", d)
	}
	if d := s.DecideOS(Op{Device: "tape:R", Addr: 7, N: 1}); !IsTransient(d.Err) {
		t.Fatalf("read at addr 7: want transient OS error, got %+v", d)
	}
	if d := s.DecideOS(Op{Device: "tape:R", Addr: 7, N: 1}); !d.Zero() {
		t.Fatalf("count spent, want clean decision, got %+v", d)
	}
}

func TestTornAndFlipMatchWritesOnly(t *testing.T) {
	s := (&Schedule{}).AddTornWrite("disk", 3, 1).AddFlipStored("disk", 4, 1)
	for addr := int64(3); addr <= 4; addr++ {
		if d := s.DecideOS(Op{Device: "disk", Addr: addr, N: 1}); !d.Zero() {
			t.Fatalf("read at %d should not match write-only rules: %+v", addr, d)
		}
	}
	if d := s.DecideOS(Op{Device: "disk", Addr: 3, N: 1, Write: true}); !d.Torn {
		t.Fatalf("want torn write, got %+v", d)
	}
	if d := s.DecideOS(Op{Device: "disk", Addr: 4, N: 1, Write: true}); !d.Flip {
		t.Fatalf("want flipped store, got %+v", d)
	}
}

func TestWallStallAnyAddressAndTime(t *testing.T) {
	s := (&Schedule{}).AddWallStall("tape:S", 250*time.Millisecond, 2)
	d := s.DecideOS(Op{Device: "tape:S", Addr: 999, N: 1, Now: sim.Time(time.Hour)})
	if d.Stall != 250*time.Millisecond {
		t.Fatalf("want 250ms wall stall, got %+v", d)
	}
	if d := s.DecideOS(Op{Device: "tape:R", Addr: 0, N: 1, Write: true}); !d.Zero() {
		t.Fatalf("wrong device should not stall: %+v", d)
	}
	if d := s.DecideOS(Op{Device: "tape:S", Write: true}); d.Stall == 0 {
		t.Fatalf("second firing should stall writes too, got %+v", d)
	}
	if d := s.DecideOS(Op{Device: "tape:S"}); !d.Zero() {
		t.Fatalf("count spent, got %+v", d)
	}
}

func TestDecideOSToleratesPlainInjectors(t *testing.T) {
	if d := DecideOS(nil, Op{Device: "disk"}); !d.Zero() {
		t.Fatalf("nil injector: %+v", d)
	}
	plain := plainInjector{}
	if d := DecideOS(plain, Op{Device: "disk"}); !d.Zero() {
		t.Fatalf("plain injector: %+v", d)
	}
}

type plainInjector struct{}

func (plainInjector) Decide(Op) Decision { return Decision{} }

func TestInstrumentForwardsDecideOS(t *testing.T) {
	s := (&Schedule{}).AddOSError("disk", 1, 1)
	inj := Instrument(s, nil, nil) // nil registry: Instrument returns s unchanged
	if inj != Injector(s) {
		t.Fatal("nil registry should return the inner injector")
	}
	s2 := (&Schedule{}).AddOSError("disk", 1, 1)
	wrapped := Instrument(s2, obs.NewRegistry(), obs.NewFlightRecorder(16))
	if d := DecideOS(wrapped, Op{Device: "disk", Addr: 1, N: 1}); !errors.Is(d.Err, ErrTransient) {
		t.Fatalf("instrumented injector should forward DecideOS, got %+v", d)
	}
}
