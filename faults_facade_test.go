package tapejoin

import (
	"strings"
	"testing"
)

func TestConfigFaultsRecoverAndReport(t *testing.T) {
	clean := func() *Result {
		sys := quickSystem(t, 1, 4)
		r, s := makeRelations(t, sys)
		res, err := sys.Join(CTTGH, r, s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	sys, err := NewSystem(Config{
		MemoryMB: 1, DiskMB: 4, Profile: IdealTape,
		// R is 2 MB = 32 blocks, S is 8 MB = 128 blocks, both at the
		// start of their cartridges.
		Faults: "transient=R:5:2,corrupt=S:40:1",
	})
	if err != nil {
		t.Fatal(err)
	}
	r, s := makeRelations(t, sys)
	want := ExpectedMatches(r, s)
	res, err := sys.Join(CTTGH, r, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Matches != want {
		t.Fatalf("matches = %d, want %d", res.Stats.Matches, want)
	}
	if res.Stats.Faults < 3 {
		t.Fatalf("Faults = %d, want >= 3", res.Stats.Faults)
	}
	if res.Stats.Retries < 3 {
		t.Fatalf("Retries = %d, want >= 3", res.Stats.Retries)
	}
	if res.Stats.RecoveryTime <= 0 {
		t.Fatal("no recovery time charged")
	}
	if res.Stats.Response <= clean.Stats.Response {
		t.Fatalf("faulted response %v not above clean %v",
			res.Stats.Response, clean.Stats.Response)
	}

	// Each Join parses a fresh schedule, so a second join on the same
	// system hits the same faults again (runs stay reproducible).
	r2, s2 := makeRelations(t, sys)
	res2, err := sys.Join(CTTGH, r2, s2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Faults != res.Stats.Faults || res2.Stats.Retries != res.Stats.Retries {
		t.Fatalf("second join saw different faults: %d/%d vs %d/%d",
			res2.Stats.Faults, res2.Stats.Retries, res.Stats.Faults, res.Stats.Retries)
	}
}

func TestConfigFaultsParseErrorSurfaces(t *testing.T) {
	sys, err := NewSystem(Config{
		MemoryMB: 1, DiskMB: 4, Profile: IdealTape,
		Faults: "bogus=1",
	})
	if err != nil {
		t.Fatal(err) // spec errors surface at Join, when parsing happens
	}
	r, s := makeRelations(t, sys)
	if _, err := sys.Join(DTNB, r, s); err == nil ||
		!strings.Contains(err.Error(), "unknown directive") {
		t.Fatalf("err = %v, want fault-spec parse error", err)
	}
}

func TestConfigDisableRecoveryMakesFaultsFatal(t *testing.T) {
	sys, err := NewSystem(Config{
		MemoryMB: 1, DiskMB: 4, Profile: IdealTape,
		Faults:          "transient=R:5:1",
		DisableRecovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, s := makeRelations(t, sys)
	if _, err := sys.Join(DTNB, r, s); err == nil {
		t.Fatal("transient fault with recovery disabled should fail the join")
	}
}
