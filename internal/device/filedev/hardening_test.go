package filedev

import (
	"errors"
	"fmt"
	"os"
	"slices"
	"testing"

	"repro/internal/device"
	"repro/internal/device/faultfile"
	"repro/internal/sim"
	"repro/internal/tape"
)

// countScratchDirs counts leftover device scratch directories under a
// backend root — the leak detector for the cleanup satellites.
func countScratchDirs(t *testing.T, root string) int {
	t.Helper()
	ents, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if e.IsDir() {
			n++
		}
	}
	return n
}

// TestFreedFileReturnsErrors: operations on a freed scratch file must
// be errors, not panics, so a fault-injected join that races recovery
// against cleanup degrades instead of crashing the process.
func TestFreedFileReturnsErrors(t *testing.T) {
	b := New(t.TempDir())
	k := sim.NewKernel()
	st, err := b.NewStore(k, device.StoreConfig{NumDisks: 1, AggregateRate: 4, BlocksPerDisk: 50})
	if err != nil {
		t.Fatal(err)
	}
	run(t, k, func(p *sim.Proc) {
		f, err := st.Create("victim", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(p, mkBlocks(3, 3, 0)); err != nil {
			t.Fatal(err)
		}
		f.Free()
		f.Free() // double free stays a no-op
		if err := f.Append(p, mkBlocks(3, 1, 0)); !errors.Is(err, ErrFreed) {
			t.Errorf("Append after Free: err = %v, want ErrFreed", err)
		}
		if _, err := f.ReadAt(p, 0, 1); !errors.Is(err, ErrFreed) {
			t.Errorf("ReadAt after Free: err = %v, want ErrFreed", err)
		}
	})
}

// TestSharedPairConstructorLeak: when the second drive of a shared
// pair fails to construct, the first drive's scratch directory (and
// its I/O worker) must be released, not leaked.
func TestSharedPairConstructorLeak(t *testing.T) {
	root := t.TempDir()
	b := New(root)
	k := sim.NewKernel()

	calls := 0
	orig := mkdirTemp
	mkdirTemp = func(dir, pattern string) (string, error) {
		calls++
		if calls == 2 {
			return "", fmt.Errorf("injected mkdir failure")
		}
		return orig(dir, pattern)
	}
	defer func() { mkdirTemp = orig }()

	if _, _, err := b.NewSharedDrivePair(k, "A", "B", device.Ideal()); err == nil {
		t.Fatal("want constructor error")
	}
	if n := countScratchDirs(t, root); n != 0 {
		t.Errorf("%d scratch dirs leaked after failed pair construction", n)
	}
}

// TestCloseRemovesScratchDirs: Close on drives and stores — including
// ones that were never loaded or used, and repeated Close — must leave
// no scratch directories behind.
func TestCloseRemovesScratchDirs(t *testing.T) {
	root := t.TempDir()
	b := New(root)
	k := sim.NewKernel()
	d1, err := b.NewDrive(k, "R", device.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	d2, d3, err := b.NewSharedDrivePair(k, "A", "B", device.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.NewStore(k, device.StoreConfig{NumDisks: 1, AggregateRate: 4, BlocksPerDisk: 10})
	if err != nil {
		t.Fatal(err)
	}
	d1.Load(tape.NewMedia("t1", 100))
	run(t, k, func(p *sim.Proc) {
		if _, err := d1.Append(p, mkBlocks(1, 4, 0)); err != nil {
			t.Fatal(err)
		}
		f, err := st.Create("s", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Append(p, mkBlocks(3, 2, 0)); err != nil {
			t.Fatal(err)
		}
	})
	if n := countScratchDirs(t, root); n != 4 {
		t.Fatalf("%d scratch dirs before close, want 4", n)
	}
	for _, c := range []interface{ Close() error }{d1, d2, d3, st} {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := c.Close(); err != nil { // idempotent
			t.Errorf("second Close: %v", err)
		}
	}
	if n := countScratchDirs(t, root); n != 0 {
		t.Errorf("%d scratch dirs leaked after Close", n)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"", SyncInterval, false},
		{"interval", SyncInterval, false},
		{"none", SyncNone, false},
		{"always", SyncAlways, false},
		{"fsync", 0, true},
	} {
		got, err := ParseSyncPolicy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", c.in, got, err)
		}
	}
	if SyncAlways.String() != "always" || SyncNone.String() != "none" || SyncInterval.String() != "interval" {
		t.Error("SyncPolicy.String mismatch")
	}
}

// TestSyncPolicies drives writes through each fsync policy; they must
// all round-trip content, and the syncer's interval counter must
// reset after a flush.
func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncNone, SyncInterval, SyncAlways} {
		t.Run(pol.String(), func(t *testing.T) {
			b := New(t.TempDir())
			b.Sync = pol
			b.SyncBytes = 256 // tiny threshold: interval mode flushes mid-test
			k := sim.NewKernel()
			d, err := b.NewDrive(k, "R", device.Ideal())
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			d.Load(tape.NewMedia("t1", 1000))
			run(t, k, func(p *sim.Proc) {
				for i := 0; i < 8; i++ {
					if _, err := d.Append(p, mkBlocks(1, 4, uint64(i*4))); err != nil {
						t.Fatal(err)
					}
				}
				blks, err := d.ReadAt(p, 0, 32)
				if err != nil || len(blks) != 32 {
					t.Fatalf("ReadAt: %d blocks, err %v", len(blks), err)
				}
				if keyOf(t, blks[31]) != 31 {
					t.Errorf("block 31 key = %d", keyOf(t, blks[31]))
				}
			})
		})
	}
}

func TestSyncerIntervalResets(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(dir + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ff := faultfile.Wrap(f)
	s := syncer{policy: SyncInterval, every: 100}
	if err := s.wrote(ff, 60); err != nil || s.dirty != 60 {
		t.Fatalf("dirty = %d, err %v", s.dirty, err)
	}
	if err := s.wrote(ff, 60); err != nil || s.dirty != 0 {
		t.Fatalf("after flush: dirty = %d, err %v", s.dirty, err)
	}
	if err := s.flush(ff); err != nil {
		t.Fatal(err)
	}
}

// runWorkload exercises one backend with two drives and a store doing
// interleaved transfers from two procs, returning the keys read back.
func runWorkload(t *testing.T, b *Backend) []uint64 {
	t.Helper()
	k := sim.NewKernel()
	dR, err := b.NewDrive(k, "R", biDirCfg())
	if err != nil {
		t.Fatal(err)
	}
	dS, err := b.NewDrive(k, "S", biDirCfg())
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.NewStore(k, device.StoreConfig{NumDisks: 2, AggregateRate: 4, BlocksPerDisk: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		dR.Close()
		dS.Close()
		st.Close()
	}()
	dR.Load(tape.NewMedia("tR", 1000))
	dS.Load(tape.NewMedia("tS", 1000))

	var keys []uint64
	collect := func(drive device.Drive, tag byte, base uint64) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			f, err := st.Create(fmt.Sprintf("spill-%d", tag), nil)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 4; i++ {
				if _, err := drive.Append(p, mkBlocks(tag, 8, base+uint64(i*8))); err != nil {
					t.Error(err)
					return
				}
			}
			blks, err := drive.ReadAt(p, 0, 32)
			if err != nil {
				t.Error(err)
				return
			}
			if err := f.Append(p, blks); err != nil {
				t.Error(err)
				return
			}
			out, err := f.ReadAt(p, 0, int64(len(blks)))
			if err != nil {
				t.Error(err)
				return
			}
			for _, blk := range out {
				keys = append(keys, keyOf(t, blk))
			}
			f.Free()
		}
	}
	k.Spawn("r", collect(dR, 1, 0))
	k.Spawn("s", collect(dS, 2, 1000))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return keys
}

// TestSyncAsyncEquivalence: the async submit path must deliver the
// same bytes as the inline synchronous path for an interleaved
// two-drive workload. The two procs' results are compared as sets:
// async mode legitimately interleaves their completions differently
// (that is the point), but every block must arrive intact.
func TestSyncAsyncEquivalence(t *testing.T) {
	async := runWorkload(t, New(t.TempDir()))
	syncb := New(t.TempDir())
	syncb.Synchronous = true
	syncKeys := runWorkload(t, syncb)
	slices.Sort(async)
	slices.Sort(syncKeys)
	if len(async) != len(syncKeys) {
		t.Fatalf("async read %d keys, sync %d", len(async), len(syncKeys))
	}
	for i := range async {
		if async[i] != syncKeys[i] {
			t.Fatalf("key %d: async %d vs sync %d", i, async[i], syncKeys[i])
		}
	}
	if len(async) != 64 {
		t.Fatalf("read %d keys, want 64", len(async))
	}
}

// TestWallStatsExposure: an async backend reports per-device wall
// busy time through the WallStatser interface; a synchronous backend
// reports zeros.
func TestWallStatsExposure(t *testing.T) {
	b := New(t.TempDir())
	runWorkload(t, b)
	var ws device.WallStatser = b
	st := ws.WallStats()
	if st.Busy <= 0 || st.Union <= 0 {
		t.Fatalf("WallStats = %+v, want nonzero busy", st)
	}
	devs := map[string]bool{}
	for _, d := range st.PerDevice {
		devs[d.Device] = true
	}
	for _, want := range []string{"tape:R", "tape:S", "disk"} {
		if !devs[want] {
			t.Errorf("WallStats missing device %q (have %v)", want, st.PerDevice)
		}
	}
	if o := st.Overlap(); o < 0 || o >= 1 {
		t.Errorf("Overlap() = %v, want [0,1)", o)
	}

	syncb := New(t.TempDir())
	syncb.Synchronous = true
	runWorkload(t, syncb)
	if st := syncb.WallStats(); st.Busy != 0 {
		t.Errorf("synchronous backend WallStats = %+v, want zero", st)
	}
}
