package block

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	b := NewBuilder(7)
	in := []Tuple{
		{Key: 1, Payload: []byte("alpha")},
		{Key: 2, Payload: nil},
		{Key: 1 << 63, Payload: []byte{0, 1, 2, 255}},
	}
	for _, tp := range in {
		b.Append(tp)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	blk := b.Finish()
	tag, out, err := blk.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if tag != 7 {
		t.Fatalf("tag = %d, want 7", tag)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d tuples, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Key != in[i].Key || !bytes.Equal(out[i].Payload, in[i].Payload) {
			t.Fatalf("tuple %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestBuilderResetsAfterFinish(t *testing.T) {
	b := NewBuilder(1)
	b.Append(Tuple{Key: 1})
	b.Finish()
	if b.Len() != 0 {
		t.Fatalf("Len after Finish = %d, want 0", b.Len())
	}
	blk := b.Finish()
	_, tuples, err := blk.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 0 {
		t.Fatalf("empty block decoded %d tuples", len(tuples))
	}
}

func TestTag(t *testing.T) {
	b := NewBuilder(42)
	b.Append(Tuple{Key: 9})
	blk := b.Finish()
	tag, err := blk.Tag()
	if err != nil || tag != 42 {
		t.Fatalf("Tag = %d, %v", tag, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	b := NewBuilder(1)
	b.Append(Tuple{Key: 5, Payload: []byte("hello")})
	blk := b.Finish()

	t.Run("truncated header", func(t *testing.T) {
		if _, _, err := Block(blk[:4]).Decode(); err == nil {
			t.Fatal("want error")
		}
		if _, err := Block(blk[:4]).Tag(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append(Block(nil), blk...)
		bad[0] = 'X'
		if _, _, err := bad.Decode(); err != ErrBadMagic {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append(Block(nil), blk...)
		bad[2] = 99
		if _, _, err := bad.Decode(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("corrupt body", func(t *testing.T) {
		bad := append(Block(nil), blk...)
		bad[len(bad)-1] ^= 0xff
		if _, _, err := bad.Decode(); err != ErrBadChecksum {
			t.Fatalf("err = %v, want ErrBadChecksum", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		bad := append(Block(nil), blk[:len(blk)-2]...)
		if _, _, err := bad.Decode(); err == nil {
			t.Fatal("want error")
		}
	})
}

func TestMustDecodePanicsOnCorruption(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Block([]byte{1, 2, 3}).MustDecode()
}

func TestOversizePayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(1).Append(Tuple{Payload: make([]byte, maxPayload+1)})
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(keys []uint64, payloads [][]byte, tag byte) bool {
		b := NewBuilder(tag)
		n := len(keys)
		if len(payloads) < n {
			n = len(payloads)
		}
		want := make([]Tuple, 0, n)
		for i := 0; i < n; i++ {
			p := payloads[i]
			if len(p) > 1024 {
				p = p[:1024]
			}
			tp := Tuple{Key: keys[i], Payload: p}
			want = append(want, tp)
			b.Append(tp)
		}
		gotTag, got, err := b.Finish().Decode()
		if err != nil || gotTag != tag || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Key != want[i].Key || !bytes.Equal(got[i].Payload, want[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
