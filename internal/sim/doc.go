// Package sim implements a process-oriented discrete-event simulation
// kernel used to model the tertiary-storage device complex of the paper.
//
// A Kernel owns a virtual clock and a set of Procs. Each Proc is a
// goroutine, but the kernel runs exactly one Proc at a time and hands
// control between them through channels, so a simulation is fully
// deterministic: device models advance the virtual clock, and
// overlapping I/O on independent devices overlaps in virtual time
// without any wall-clock sleeping.
//
// Procs block on three families of primitives:
//
//   - Proc.Hold advances the virtual clock (models a device transfer or
//     any other latency),
//   - Resource provides FIFO mutual exclusion with capacity (models a
//     device arm or a bus),
//   - Container provides a blocking counting store (models memory pools
//     and shared buffer space), and Queue[T] a bounded FIFO channel in
//     virtual time (models producer/consumer pipelines),
//   - Proc.StartIO / Proc.Await (async.go) let a proc hand a real OS
//     operation to a worker goroutine and yield the control token
//     until the worker posts its completion — the file backend's
//     bridge between wall-clock transfers and the virtual clock.
//
// The kernel detects deadlock: if live processes remain but no process
// is runnable and no event is pending, Run returns an error naming the
// blocked processes.
package sim
