// Package join implements the seven tertiary join methods of the
// paper: the disk–tape methods DT-NB, CDT-NB/MB, CDT-NB/DB, DT-GH and
// CDT-GH, and the tape–tape methods CTT-GH and TT-GH. Each method
// moves real tuple blocks through the simulated tape drives and disk
// array, producing verified join output while the simulation kernel
// accounts virtual response time under the paper's transfer-only cost
// model.
package join

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/block"
	"repro/internal/buffer"
	"repro/internal/device"
	"repro/internal/device/simdev"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Discipline selects the double-buffering scheme for methods that
// stage S through disk (Section 4).
type Discipline int

const (
	// Interleaved shares one physical buffer between consecutive
	// iterations (the paper's scheme).
	Interleaved Discipline = iota
	// SplitHalves is the naive two-halves baseline, kept for
	// ablation.
	SplitHalves
)

// DefaultDiskTapeSpeedRatio is the paper's X_D = 2 X_T assumption
// (Section 5.3): the disk array's aggregate rate defaults to twice
// the effective tape rate. The facade and WithDefaults both derive
// disk rates from this one constant.
const DefaultDiskTapeSpeedRatio = 2.0

// Resources describes the device complex available to a join: the
// paper's M, D, n, X_D and X_T.
type Resources struct {
	// Backend constructs the device complex: simdev (virtual-time
	// simulator, the default) or filedev (real OS files, wall-clock
	// transfer timing).
	Backend device.Backend
	// MemoryBlocks is M, the main memory allocated to the join.
	MemoryBlocks int64
	// DiskBlocks is D, total disk scratch space across all drives.
	DiskBlocks int64
	// NumDisks is n.
	NumDisks int
	// DiskRate is X_D, aggregate disk bytes/second.
	DiskRate float64
	// DiskOverhead is the per-request positioning cost.
	DiskOverhead sim.Duration
	// Tape is the drive profile for both tape drives (X_T etc.).
	Tape device.DriveConfig
	// IOChunk is the preferred transfer request size in blocks;
	// defaults to 32 (>= the 30 blocks that make positioning
	// negligible, Section 3.2).
	IOChunk int64
	// Discipline selects the double-buffering scheme.
	Discipline Discipline
	// SkewAware enables skew-aware partitioning in the Grace-Hash
	// methods: a key-frequency sketch is built while R streams through
	// the partitioner, and buckets the uniform plan left oversized are
	// repaired on disk — heavy-hitter keys get dedicated partitions,
	// residual collision pileups are split by a secondary hash — so
	// every partition fits a single memory load where the key
	// distribution allows it. Off by default: the uniform path is
	// byte-for-byte the paper's plan.
	SkewAware bool
	// SkewSketchK caps the sketch's tracked keys; 0 means
	// hashutil.DefaultSketchK.
	SkewSketchK int
	// ProbeNarrow enables CDF-model probe-range narrowing in the
	// sort-merge path: sparse (first key, block) samples collected
	// while the sorted runs are written let the merge join seek past
	// provably matchless stretches of either input instead of
	// streaming through them. Off by default.
	ProbeNarrow bool
	// Trace, when non-nil, records every device I/O event of the run
	// for timeline rendering.
	Trace *trace.Recorder
	// Faults, when non-nil, is the deterministic fault schedule
	// injected into the tape drives and disk array.
	Faults *fault.Schedule
	// Recovery is the retry/checkpoint/degrade policy.
	Recovery Recovery
	// Spans, when non-nil, records hierarchical phase spans; device
	// events in Trace are stamped with the issuing phase.
	Spans *obs.Tracker
	// Metrics, when non-nil, receives device/buffer/fault counters,
	// gauges and histograms.
	Metrics *obs.Registry
	// Flight, when non-nil, is the always-on flight recorder: span
	// boundaries, fault decisions, device health transitions and
	// retries land in its ring buffer for live snapshots.
	Flight *obs.FlightRecorder
}

// WithDefaults fills zero fields with the calibrated defaults used in
// the paper's experiments.
func (r Resources) WithDefaults() Resources {
	if r.Backend == nil {
		r.Backend = simdev.Backend{}
	}
	if r.NumDisks == 0 {
		r.NumDisks = 2
	}
	if r.DiskRate == 0 {
		r.DiskRate = DefaultDiskTapeSpeedRatio * device.DLT4000().EffectiveRate()
	}
	if r.DiskOverhead == 0 {
		r.DiskOverhead = 18 * time.Millisecond
	}
	if r.Tape == (device.DriveConfig{}) {
		r.Tape = device.DLT4000()
	}
	if r.IOChunk == 0 {
		r.IOChunk = 32
	}
	r.Recovery = r.Recovery.withDefaults()
	return r
}

// Validate reports resource configuration errors.
func (r Resources) Validate() error {
	if r.MemoryBlocks < 2 {
		return fmt.Errorf("join: M = %d blocks; need at least 2", r.MemoryBlocks)
	}
	if r.DiskBlocks < 1 {
		return fmt.Errorf("join: D = %d blocks", r.DiskBlocks)
	}
	if r.NumDisks < 1 {
		return fmt.Errorf("join: %d disks", r.NumDisks)
	}
	if r.IOChunk < 1 {
		return fmt.Errorf("join: IOChunk = %d", r.IOChunk)
	}
	return r.Tape.Validate()
}

// Spec names the two relations to join. R must be the smaller
// relation and the relations must live on distinct cartridges (the
// paper's two-drive configuration).
type Spec struct {
	R, S *relation.Relation

	// FilterR and FilterS, when non-nil, drop input tuples before the
	// join — pushed-down selections. Filtering happens at the first
	// staging step of each relation, so a selective FilterR shrinks
	// R's disk or tape copy and every later scan of it.
	FilterR, FilterS func(block.Tuple) bool
}

// Validate reports spec errors.
func (s Spec) Validate() error {
	if s.R == nil || s.S == nil {
		return errors.New("join: nil relation")
	}
	if s.R.Media == s.S.Media {
		return errors.New("join: R and S must be on separate tapes")
	}
	if s.R.Region.N > s.S.Region.N {
		return fmt.Errorf("join: |R| = %d > |S| = %d; R must be the smaller relation",
			s.R.Region.N, s.S.Region.N)
	}
	return nil
}

// Typed feasibility errors, used by the advisor to rule methods out.
var (
	// ErrNeedDiskForR marks disk–tape methods when D < |R| (+ buffer).
	ErrNeedDiskForR = errors.New("join: disk space cannot hold R")
	// ErrNeedMemory marks methods whose memory requirement (Table 2)
	// is unmet.
	ErrNeedMemory = errors.New("join: insufficient memory")
	// ErrNeedTapeScratch marks tape–tape methods lacking scratch tape
	// space for the hashed copies.
	ErrNeedTapeScratch = errors.New("join: insufficient scratch tape space")
	// ErrNeedDisk marks methods whose minimum disk requirement is
	// unmet.
	ErrNeedDisk = errors.New("join: insufficient disk space")
)

// Stats reports what a join did and what it cost.
type Stats struct {
	// Response is the virtual wall-clock of the whole join.
	Response sim.Duration
	// StepI is the virtual time when the setup phase (copying or
	// hashing R, plus hashing S for TT-GH) finished.
	StepI sim.Duration
	// Iterations counts Step II iterations (pieces S_i of S).
	Iterations int
	// RScans counts complete passes over R's data from any device,
	// including the initial read.
	RScans int
	// TapeBlocksRead/Written aggregate both drives.
	TapeBlocksRead    int64
	TapeBlocksWritten int64
	// TapeSeeks counts head repositionings across both drives.
	TapeSeeks int64
	// DiskBlocksRead/Written aggregate the array ("disk I/O traffic",
	// Figure 7).
	DiskBlocksRead    int64
	DiskBlocksWritten int64
	// DiskHighWater is the peak disk space used in blocks (Figure 6).
	DiskHighWater int64
	// MemHighWater is the peak accounted memory in blocks. For
	// concurrent methods this reports the true combined peak, which
	// the paper's Table 2 idealizes (see package doc).
	MemHighWater int64
	// OutputTuples is the join result cardinality.
	OutputTuples int64
	// RFiltered and SFiltered count input tuples dropped by the
	// pushed-down selections.
	RFiltered, SFiltered int64
	// TapeRBusy, TapeSBusy and DiskBusy are the devices' total busy
	// times, for utilization analysis (busy / Response). After a
	// drive-loss degrade both tape figures report the shared
	// transport.
	TapeRBusy sim.Duration
	TapeSBusy sim.Duration
	DiskBusy  sim.Duration

	// Fault-recovery accounting (see Resources.Faults and Recovery).
	// Faults counts injected faults the run hit; Retries the re-read
	// attempts; UnitRestarts the restarted work units; RecoveryTime
	// the virtual time spent in retry backoff (included in Response).
	Faults       int64
	Retries      int64
	UnitRestarts int64
	RecoveryTime sim.Duration
	// DisksLost counts permanently failed disk drives; DriveLost
	// reports a permanent tape-drive failure; DegradedTo names the
	// sequential method the join re-planned to after a drive loss
	// (empty when no degrade happened).
	DisksLost  int
	DriveLost  bool
	DegradedTo string

	// HeavyHitters is the number of keys the skew-aware planner
	// isolated into dedicated partitions; SkewPartitions is the final
	// partition count after repair. Both are zero when SkewAware is
	// off or the uniform plan needed no repair.
	HeavyHitters   int
	SkewPartitions int
	// ProbeJumps counts the merge-join probe-range jumps taken via the
	// CDF model (Resources.ProbeNarrow); ProbeSkippedBlocks is the
	// block reads those jumps avoided.
	ProbeJumps         int64
	ProbeSkippedBlocks int64

	// FirstTuple is the virtual time from run start to the first pair
	// delivered to the sink (zero when the join produced no output —
	// check OutputTuples to distinguish "instant" from "never"). For
	// runs whose output is staged for recovery, delivery means the
	// commit that made the pair visible to the caller's sink.
	FirstTuple sim.Duration
	// Stopped reports that the run terminated early because its output
	// was satisfied (ExecOptions.StopAfter reached or the StreamSink
	// reported Satisfied) rather than by exhausting its inputs.
	Stopped bool

	// WallElapsed is the real elapsed time of the kernel run and
	// WallOverlap the fraction of wall-clock device busy time that ran
	// concurrently across devices. Both are zero on the purely virtual
	// backend, and — unlike every field above — they are measured, not
	// simulated: they vary run to run and are excluded from regression
	// comparisons.
	WallElapsed sim.Duration
	WallOverlap float64
}

// DiskTraffic returns total disk blocks moved (Figure 7's metric).
func (s Stats) DiskTraffic() int64 { return s.DiskBlocksRead + s.DiskBlocksWritten }

// Result is the outcome of a join run.
type Result struct {
	Method string
	Stats  Stats
	// BufferTrace is the disk-buffer utilization trace (Figure 4) for
	// methods that double-buffer S through disk; nil otherwise.
	BufferTrace []buffer.Sample
	// BufferCapacity is the traced buffer's capacity in blocks.
	BufferCapacity int64
}

// Method is a tertiary join method.
type Method interface {
	// Name is the long name, e.g. "Concurrent Tape-Tape Grace Hash Join".
	Name() string
	// Symbol is the paper's abbreviation, e.g. "CTT-GH".
	Symbol() string
	// Check reports whether the method can run with the given
	// resources, per Table 2, returning a typed error when not.
	Check(spec Spec, res Resources) error
	// run executes the join inside the simulation.
	run(e *env, p *sim.Proc) error
}

// ledger tracks memory usage without blocking. Chunk sizes are derived
// from M structurally, so the ledger verifies rather than enforces;
// see Stats.MemHighWater.
type ledger struct {
	used, high int64
}

func (l *ledger) acquire(n int64) {
	if n < 0 {
		panic("join: negative ledger acquire")
	}
	l.used += n
	if l.used > l.high {
		l.high = l.used
	}
}

func (l *ledger) release(n int64) {
	l.used -= n
	if l.used < 0 {
		panic("join: ledger under-release")
	}
}

// env is the runtime context handed to a method.
type env struct {
	k      *sim.Kernel
	spec   Spec
	res    Resources
	driveR device.Drive
	driveS device.Drive
	disks  device.Store
	mem    *ledger
	sink   Sink
	stats  *Stats
	// t0 is the virtual time the run started; Response and StepI are
	// measured from it so runs inside a shared Session report their
	// own durations.
	t0 sim.Time
	// stagedR, when non-nil, is a caller-owned disk copy of R
	// (ExecOptions.StagedR): copyRToDisk returns it instead of reading
	// tape, and freeR leaves it alone.
	stagedR device.File

	dbuf    buffer.DoubleBuffer // set by methods that stage S on disk
	dbufCap int64

	// inj is the (possibly metrics-wrapped) fault injector shared by
	// the original devices and any replacements built during recovery.
	inj fault.Injector
	// Recovery-path metric handles (nil-safe when Metrics is unset).
	retryBackoff *obs.Histogram
	unitRestarts *obs.Counter

	// Recovery state. outer stages the whole run's output so a
	// drive-loss re-plan can discard and restart it; abort asks
	// concurrent producer procs to wind down; retired devices keep
	// contributing to final stats after a degrade swaps them out.
	outer         *stagedSink
	abort         bool
	retiredDrives []device.Drive
	retiredArrays []device.Store
	eodR, eodS    device.Addr // media EODs at run start, for scratch rollback

	// Streaming state. All emissions funnel through e.emit so the run
	// can count pairs, stamp the first-tuple time, and stop early.
	// stopAfter caps emitted pairs (ExecOptions.StopAfter); streamSink
	// is the caller's sink when it implements StreamSink, polled for
	// Satisfied; emitted counts pairs the funnel has passed on (rolled
	// back with a failed staged unit, so it tracks what will actually
	// be delivered); firstEmitSet guards the FirstTuple stamp.
	stopAfter    int64
	streamSink   StreamSink
	emitted      int64
	firstEmitSet bool
}

// emit is the single emission funnel: every method delivers output
// pairs through it, never straight to e.sink, so the run can count
// pairs for the StopAfter cut-off (and roll the count back with a
// failed staged unit).
func (e *env) emit(p *sim.Proc, r, s block.Tuple) {
	if e.stopAfter > 0 && e.emitted >= e.stopAfter {
		// The cut-off is exact: a probe batch that keeps matching past
		// the cap delivers nothing beyond it, and the next checkStop
		// poll unwinds the run. Delivered output is min(n, |R ⋈ S|).
		return
	}
	e.sink.Emit(p, r, s)
	e.emitted++
}

// firstTupleSink sits at the bottom of the run's sink stack — beneath
// any staging — and stamps Stats.FirstTuple when the first pair
// actually reaches the caller's sink. Staged runs therefore report the
// commit time, streaming runs the live emission time: honest delivery
// either way.
type firstTupleSink struct {
	e     *env
	inner Sink
}

// Emit implements Sink.
func (f *firstTupleSink) Emit(p *sim.Proc, r, s block.Tuple) {
	if !f.e.firstEmitSet {
		f.e.firstEmitSet = true
		f.e.stats.FirstTuple = sim.Duration(p.Now() - f.e.t0)
	}
	f.inner.Emit(p, r, s)
}

// Count implements Sink.
func (f *firstTupleSink) Count() int64 { return f.inner.Count() }

// ErrStopped is the internal control signal for a satisfied run: a
// method returns it (via checkStop) when the output cut-off is reached,
// every layer unwinds cleanly — pipelines drain, scratch frees — and
// Exec converts it into a successful result with Stats.Stopped set. It
// never escapes the package as an error.
var ErrStopped = errors.New("join: output satisfied; stopped early")

// checkStop is polled at emission points and before device reads. It
// returns the kernel's cancellation cause when the whole simulation is
// being torn down (a real error: the run is abandoned, not satisfied),
// or ErrStopped when the run's output cut-off has been reached.
func (e *env) checkStop() error {
	if cause := e.k.CancelCause(); cause != nil {
		return cause
	}
	if e.stopAfter > 0 && e.emitted >= e.stopAfter {
		return ErrStopped
	}
	if e.streamSink != nil && e.streamSink.Satisfied() {
		return ErrStopped
	}
	return nil
}

// newDoubleBuffer builds the configured double-buffer discipline over
// capacity blocks and records it for the result trace.
func (e *env) newDoubleBuffer(name string, capacity int64) buffer.DoubleBuffer {
	var b buffer.DoubleBuffer
	if e.res.Discipline == SplitHalves {
		b = buffer.NewSplit(e.k, name, capacity)
	} else {
		b = buffer.NewInterleaved(e.k, name, capacity)
	}
	b.SetMetrics(e.res.Metrics)
	e.dbuf = b
	e.dbufCap = capacity
	return b
}

// span opens a phase span on p; a no-op returning nil when no tracker
// is attached.
func (e *env) span(p *sim.Proc, name string, attrs ...obs.Attr) *obs.Span {
	return e.res.Spans.Begin(p, name, attrs...)
}

// markStepI records the end of the setup phase, relative to the
// run's start.
func (e *env) markStepI(p *sim.Proc) {
	e.stats.StepI = sim.Duration(p.Now() - e.t0)
}

// Run executes method m on spec with the given resources, returning
// the measured result. The sink receives every output tuple pair; a
// nil sink counts matches only. Run is the single-join entry point: it
// builds a one-shot Session, executes the join, and drains the kernel.
func Run(m Method, spec Spec, res Resources, sink Sink) (*Result, error) {
	return RunWith(m, spec, res, sink, ExecOptions{})
}

// RunWith is Run with execution options — the one-shot entry point for
// streaming runs (ExecOptions.StopAfter, StreamSink early termination).
func RunWith(m Method, spec Spec, res Resources, sink Sink, opts ExecOptions) (*Result, error) {
	s, err := NewSession(res)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	var result *Result
	var runErr error
	s.k.Spawn("join:"+m.Symbol(), func(p *sim.Proc) {
		result, runErr = s.Exec(p, m, spec, sink, opts)
	})
	wall0 := time.Now()
	if err := s.k.Run(); err != nil {
		return nil, fmt.Errorf("%s: simulation: %w", m.Symbol(), err)
	}
	wallElapsed := time.Since(wall0)
	s.Finish()
	if runErr != nil {
		return nil, runErr
	}
	// On a real-I/O backend, report the honest wall-clock figures next
	// to the virtual ones: how long the run actually took, and how much
	// of the devices' OS time overlapped.
	if ws, ok := s.res.Backend.(device.WallStatser); ok {
		result.Stats.WallElapsed = wallElapsed
		result.Stats.WallOverlap = ws.WallStats().Overlap()
		ws.PublishWallMetrics(s.res.Metrics)
	}
	return result, nil
}

// Methods returns the seven join methods in the paper's presentation
// order.
func Methods() []Method {
	return []Method{
		DTNB{}, CDTNBMB{}, CDTNBDB{}, DTGH{}, CDTGH{}, CTTGH{}, TTGH{},
	}
}

// AllMethods returns the paper's seven methods plus the sort-merge
// baseline and the symmetric streaming hash join.
func AllMethods() []Method {
	return append(Methods(), TTSM{}, SymHash{})
}

// BySymbol returns the method with the given abbreviation
// (case-sensitive, e.g. "CDT-NB/DB"); the paper's seven plus the
// "TT-SM" baseline and the streaming "SYM-H".
func BySymbol(symbol string) (Method, error) {
	for _, m := range AllMethods() {
		if m.Symbol() == symbol {
			return m, nil
		}
	}
	return nil, fmt.Errorf("join: unknown method %q", symbol)
}
