package exp

import (
	"fmt"
	"math"
	"time"

	tapejoin "repro"
)

// FirstTupleRow is one (selectivity, method) point of the streaming
// experiment: how long until the first output pair, and how long until
// the k-th, when the join is allowed to stop there.
type FirstTupleRow struct {
	Method tapejoin.Method
	// KeySpace is the generator key space; smaller spaces make denser
	// joins. ExpectedMatches is the analytic full cardinality.
	KeySpace        uint64
	ExpectedMatches int64
	// K is the StopAfter target of the run.
	K int64
	// FirstTuple is the virtual time to the first delivered pair and
	// TimeToK the run's total virtual response with StopAfter=K — the
	// time until the query returns having delivered min(K, total)
	// pairs. Stopped reports whether K was actually reached.
	FirstTuple time.Duration
	TimeToK    time.Duration
	Matches    int64
	Stopped    bool
	// Feasible is false when the method cannot run on the experiment's
	// resources; Reason explains.
	Feasible bool
	Reason   string
}

// firstTupleMethods contrasts the streaming symmetric hash join with
// the materializing families: Grace Hash, Nested Block, and the
// sort-merge baseline. Every materializing method pays its Step I
// (staging R, or sorting both inputs) before the first pair can exist;
// SYM-H emits matches while both tapes are still streaming.
var firstTupleMethods = []tapejoin.Method{
	tapejoin.SYMH, tapejoin.CDTGH, tapejoin.CDTNBMB, tapejoin.TTSM,
}

// FirstTuple runs the time-to-first-tuple experiment: each method
// executes with StopAfter=k across a selectivity sweep (key space
// 2^20 → 2^12, sparse to dense), on identical inputs. Dense joins let
// SYM-H stop after a sliver of the tapes; sparse joins force every
// method toward a full scan — the crossover where streaming stops
// paying. quick restricts the sweep to one mid-density point for CI.
func FirstTuple(scale float64, quick bool) ([]FirstTupleRow, error) {
	const k = 10
	rMB := int64(18) // the geometry is the experiment; only |S| scales
	sMB := scaleMB(1000, scale)
	keySpaces := []uint64{1 << 20, 1 << 16, 1 << 12}
	if quick {
		sMB = scaleMB(200, scale)
		keySpaces = []uint64{1 << 14}
	}

	// SYM-H streams matches only while at least one partition pair is
	// memory-resident, which needs M ≳ 4·sqrt(|R|+|S|) blocks: the
	// spill write buffers cap the partition count at M/8, and one
	// partition of R and S together must fit half of M. Every method
	// gets the same memory, sized for the sweep's |S|.
	memMB := math.Ceil(4 * math.Sqrt(float64((rMB+sMB)*16)) / 16)
	memMB += 4 // headroom over the exact residency threshold
	if memMB < 8 {
		memMB = 8
	}

	var rows []FirstTupleRow
	for _, ks := range keySpaces {
		for _, method := range firstTupleMethods {
			cfg := tapejoin.Config{
				MemoryMB: memMB,
				// SYM-H spills both sides of its deferred partitions, so
				// the disk budget covers |R|+|S| plus per-partition slack.
				DiskMB:  float64(rMB+sMB) + memMB,
				Profile: tapejoin.DLT4000,
			}
			sys, err := newSystem(cfg)
			if err != nil {
				return nil, err
			}
			// TT-SM sorts in place on tape: its workspaces need roughly
			// 1.5×(|R|+|S|) free beyond the resident relation.
			tR, err := sys.NewTape("tape-R", 3*(rMB+sMB))
			if err != nil {
				return nil, err
			}
			tS, err := sys.NewTape("tape-S", 3*(rMB+sMB))
			if err != nil {
				return nil, err
			}
			r, err := sys.CreateRelation(tR, tapejoin.RelationConfig{
				Name: "R", SizeMB: rMB, TuplesPerBlock: 4, KeySpace: ks, Seed: 4000,
			})
			if err != nil {
				return nil, err
			}
			s, err := sys.CreateRelation(tS, tapejoin.RelationConfig{
				Name: "S", SizeMB: sMB, TuplesPerBlock: 4, KeySpace: ks, Seed: 4001,
			})
			if err != nil {
				return nil, err
			}
			row := FirstTupleRow{
				Method: method, KeySpace: ks, K: k,
				ExpectedMatches: tapejoin.ExpectedMatches(r, s),
			}
			res, err := sys.JoinWith(method, r, s, tapejoin.JoinOptions{StopAfter: k})
			if err != nil {
				row.Reason = err.Error()
				rows = append(rows, row)
				continue
			}
			row.Feasible = true
			row.FirstTuple = res.Stats.FirstTuple
			row.TimeToK = res.Stats.Response
			row.Matches = res.Stats.Matches
			row.Stopped = res.Stats.Stopped
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatFirstTuple renders the streaming experiment as a text table.
func FormatFirstTuple(rows []FirstTupleRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		if !r.Feasible {
			out = append(out, []string{
				string(r.Method), fmt.Sprintf("2^%d", log2(r.KeySpace)),
				fmt.Sprintf("%d", r.ExpectedMatches),
				"-", "-", fmt.Sprintf("%d", r.K),
				"infeasible: " + r.Reason,
			})
			continue
		}
		ttft := "-"
		if r.FirstTuple > 0 {
			ttft = secs(r.FirstTuple)
		}
		stopped := "full scan"
		if r.Stopped {
			stopped = fmt.Sprintf("stopped @%d", r.Matches)
		}
		out = append(out, []string{
			string(r.Method), fmt.Sprintf("2^%d", log2(r.KeySpace)),
			fmt.Sprintf("%d", r.ExpectedMatches),
			ttft, secs(r.TimeToK),
			fmt.Sprintf("%d", r.K), stopped,
		})
	}
	return FormatTable(
		[]string{"Method", "Key space", "Full matches", "First tuple", "Time to k", "k", "Outcome"},
		out,
	)
}

// log2 returns the bit position of a power-of-two key space.
func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
