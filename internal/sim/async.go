package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file extends the kernel with external completions: the bridge
// that lets a Proc hand a real (wall-clock) operation to a worker
// goroutine, yield the control token while the OS does the work, and
// be resumed deterministically when the worker posts the result.
//
// The protocol has three steps, split across two goroutines:
//
//  1. The proc, holding the control token, calls StartIO and hands the
//     returned Completion to a worker (typically through a channel).
//  2. The worker performs the operation off the token and calls Post
//     exactly once with the measured duration and error. Post never
//     blocks and never touches kernel state: it appends to a
//     mutex-guarded inbox and nudges a notification channel.
//  3. The proc calls Await, which yields the token until the kernel
//     loop has integrated the posted result, then charges the
//     operation's virtual time and returns.
//
// Integration happens only on the kernel goroutine: the Run loop
// drains the inbox before every scheduling decision, and blocks on the
// inbox (in wall-clock time) when no process is runnable, no event is
// pending, and completions are outstanding — that wall-clock wait is
// exactly where independent device workers overlap.
//
// Determinism: a simulation that never calls StartIO (the simdev
// backend) takes none of these paths, so its schedule is byte-
// identical to the pre-async kernel. With external completions the
// *virtual timestamps* inherit the measured wall durations — already
// nondeterministic by construction — but resumption still flows
// through the ordinary ready queue and event heap, so all ordering
// between procs remains a pure function of the virtual timestamps.

// Completion is the handle for one in-flight external operation
// performed on behalf of a Proc. Create it with Proc.StartIO, hand it
// to the worker that performs the operation, and reap it with
// Proc.Await. A Completion is single-use.
type Completion struct {
	k     *Kernel
	proc  *Proc
	desc  string
	start Time // virtual time of StartIO; the op occupies [start, start+d]

	// Written by the kernel goroutine when the posted result is
	// integrated; read by the proc after Await unblocks. The kernel's
	// token handoff orders these accesses.
	posted bool
	// aborted marks a completion the kernel cancelled before its worker
	// posted: the late Post is absorbed silently.
	aborted bool
	d       Duration
	err     error
	waiter  *Proc
}

// Aborted reports whether the kernel cancelled this completion before
// its worker posted. Valid after Await returns; ordered by the token.
func (c *Completion) Aborted() bool { return c.aborted }

// ioPost carries one worker-posted result into the kernel.
type ioPost struct {
	c   *Completion
	d   Duration
	err error
}

// StartIO registers an external operation started at the current
// virtual time on behalf of p and returns its Completion. Must be
// called while p holds the control token. Every StartIO must be paired
// with exactly one worker-side Post; Await is optional but without it
// the operation's duration is never charged to p.
func (p *Proc) StartIO(desc string) *Completion {
	k := p.k
	c := &Completion{k: k, proc: p, desc: desc, start: k.now}
	if k.cancelCause != nil {
		// Cancelled kernel: fail fast without reaching a worker. The
		// caller's Await returns the cause immediately, and the paired
		// Post (if the caller still hands the completion out) is
		// absorbed like any other late post.
		c.posted, c.aborted, c.err = true, true, k.cancelCause
		return c
	}
	k.ioPending++
	if k.ioOutstanding == nil {
		k.ioOutstanding = make(map[*Completion]struct{})
	}
	k.ioOutstanding[c] = struct{}{}
	return c
}

// Post delivers the operation's measured wall-clock duration and error.
// It is safe to call from any goroutine, never blocks, and must be
// called exactly once per Completion.
func (c *Completion) Post(d Duration, err error) {
	k := c.k
	k.ioMu.Lock()
	k.ioInbox = append(k.ioInbox, ioPost{c: c, d: d, err: err})
	k.ioMu.Unlock()
	select {
	case k.ioNotify <- struct{}{}:
	default:
	}
}

// Await blocks p until c's result has been posted and integrated, then
// advances the virtual clock so the operation spans [start, start+d]
// in virtual time — clamped to the present if other processes already
// pushed the clock past that end — and returns the measured duration
// and the worker's error. Must be called from p while it holds the
// control token.
func (p *Proc) Await(c *Completion) (Duration, error) {
	if c.proc != p {
		panic(fmt.Sprintf("sim: proc %q awaiting completion of %q", p.name, c.proc.name))
	}
	if !c.posted {
		c.waiter = p
		p.state = stateBlocked
		p.blockedOn = "io:" + c.desc
		p.block()
		if !c.posted {
			panic("sim: proc resumed before completion was integrated")
		}
	}
	if end := c.start + Time(c.d); end > p.k.now {
		p.Hold(Duration(end - p.k.now))
	}
	return c.d, c.err
}

// IOPending reports the number of outstanding external operations
// (started but not yet integrated).
func (k *Kernel) IOPending() int { return k.ioPending }

// asyncState is the kernel's external-completion plumbing, zero-cost
// when unused.
type asyncState struct {
	ioPending int // StartIO'd but not yet integrated
	ioMu      sync.Mutex
	ioInbox   []ioPost
	ioNotify  chan struct{} // cap 1; nudged by Post and Cancel
	// ioOutstanding tracks StartIO'd completions not yet integrated, so
	// integrateCancel can abort them. Kernel-goroutine/token-side only.
	ioOutstanding map[*Completion]struct{}

	// Cancellation plumbing (see cancel.go). cancelPending and
	// cancelReq carry the cross-goroutine request; cancelCause is the
	// integrated cause, written only on the kernel goroutine.
	cancelPending atomic.Bool
	cancelMu      sync.Mutex
	cancelReq     error
	cancelCause   error
}

// drainIO integrates every posted completion: record the result, count
// the operation done, and make any awaiting process ready. Returns the
// number integrated. Runs only on the kernel goroutine.
func (k *Kernel) drainIO() int {
	k.ioMu.Lock()
	posts := k.ioInbox
	k.ioInbox = nil
	k.ioMu.Unlock()
	for _, po := range posts {
		c := po.c
		if c.aborted {
			// The kernel cancelled this completion; the worker's post
			// arrives late and has already been accounted for.
			continue
		}
		if c.posted {
			panic(fmt.Sprintf("sim: completion %q posted twice", c.desc))
		}
		c.posted, c.d, c.err = true, po.d, po.err
		k.ioPending--
		delete(k.ioOutstanding, c)
		if c.waiter != nil {
			k.makeReady(c.waiter)
			c.waiter = nil
		}
	}
	return len(posts)
}

// waitIO blocks in wall-clock time until at least one posted
// completion has been integrated, or a cancellation request arrives.
// Runs only on the kernel goroutine, and only while ioPending > 0 (so
// a Post — or the cancel that aborts it — is guaranteed to arrive).
func (k *Kernel) waitIO() {
	for k.drainIO() == 0 {
		if k.cancelPending.Load() {
			return
		}
		<-k.ioNotify
	}
}
