package query

import (
	"strings"
	"testing"
)

func exprSchemas() (Schema, Schema) {
	r := Schema{{Name: "id", Type: Int64}, {Name: "tier", Type: String}}
	s := Schema{{Name: "cust", Type: Int64}, {Name: "amount", Type: Float64}, {Name: "region", Type: String}}
	return r, s
}

// evalBound checks and binds an expression, then evaluates it.
func evalBound(t *testing.T, e Expr, rRow, sRow Row) Value {
	t.Helper()
	rs, ss := exprSchemas()
	if _, err := e.Check(rs, ss); err != nil {
		t.Fatalf("check %v: %v", e, err)
	}
	bound, err := bindExpr(e, rs, ss)
	if err != nil {
		t.Fatalf("bind %v: %v", e, err)
	}
	v, err := bound.Eval(rRow, sRow)
	if err != nil {
		t.Fatalf("eval %v: %v", e, err)
	}
	return v
}

func TestColAndLit(t *testing.T) {
	rRow := Row{int64(7), "gold"}
	sRow := Row{int64(7), 12.5, "emea"}
	if v := evalBound(t, Col(SideR, "tier"), rRow, sRow); v != "gold" {
		t.Fatalf("R.tier = %v", v)
	}
	if v := evalBound(t, Col(SideS, "amount"), rRow, sRow); v != 12.5 {
		t.Fatalf("S.amount = %v", v)
	}
	if v := evalBound(t, Lit(int64(3)), rRow, sRow); v != int64(3) {
		t.Fatalf("lit = %v", v)
	}
}

func TestCmpOperators(t *testing.T) {
	rRow := Row{int64(7), "gold"}
	sRow := Row{int64(7), 12.5, "emea"}
	cases := []struct {
		e    Expr
		want int64
	}{
		{Cmp(Eq, Col(SideR, "id"), Col(SideS, "cust")), 1},
		{Cmp(Ne, Col(SideR, "id"), Col(SideS, "cust")), 0},
		{Cmp(Gt, Col(SideS, "amount"), Lit(10.0)), 1},
		{Cmp(Le, Col(SideS, "amount"), Lit(10.0)), 0},
		{Cmp(Lt, Col(SideS, "region"), Lit("zzz")), 1},
		{Cmp(Ge, Col(SideR, "tier"), Lit("gold")), 1},
	}
	for _, c := range cases {
		if v := evalBound(t, c.e, rRow, sRow); v != c.want {
			t.Errorf("%v = %v, want %d", c.e, v, c.want)
		}
	}
}

func TestBooleanOperators(t *testing.T) {
	rRow := Row{int64(7), "gold"}
	sRow := Row{int64(7), 12.5, "emea"}
	tr := Cmp(Eq, Lit(int64(1)), Lit(int64(1)))
	fa := Cmp(Eq, Lit(int64(1)), Lit(int64(2)))
	cases := []struct {
		e    Expr
		want int64
	}{
		{And(tr, tr), 1},
		{And(tr, fa), 0},
		{Or(fa, tr), 1},
		{Or(fa, fa), 0},
		{Not(fa), 1},
		{Not(tr), 0},
		{And(tr, Or(fa, Not(fa))), 1},
	}
	for _, c := range cases {
		if v := evalBound(t, c.e, rRow, sRow); v != c.want {
			t.Errorf("%v = %v, want %d", c.e, v, c.want)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	rs, ss := exprSchemas()
	cases := []Expr{
		Col(SideR, "nope"),
		Cmp(Eq, Col(SideR, "id"), Col(SideS, "amount")), // int vs float
		Cmp(Eq, Col(SideR, "tier"), Lit(int64(1))),      // string vs int
		And(),
		And(Col(SideR, "tier")), // non-boolean operand
		Not(Col(SideS, "region")),
		Lit(uint8(1)),
	}
	for _, e := range cases {
		if _, err := e.Check(rs, ss); err == nil {
			t.Errorf("%v should fail Check", e)
		}
	}
}

func TestExprStrings(t *testing.T) {
	e := And(Cmp(Gt, Col(SideS, "amount"), Lit(10.0)), Not(Cmp(Eq, Col(SideR, "tier"), Lit("basic"))))
	str := e.String()
	for _, want := range []string{"S.amount", ">", "NOT", "R.tier", "AND"} {
		if !strings.Contains(str, want) {
			t.Fatalf("%q missing %q", str, want)
		}
	}
}

func TestUnboundColEvalFails(t *testing.T) {
	c := Col(SideR, "id")
	if _, err := c.Eval(Row{int64(1)}, nil); err == nil {
		t.Fatal("unbound Eval should fail")
	}
}
