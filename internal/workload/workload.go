// Package workload schedules batches of join queries over the shared
// tertiary device complex — two tape drives and one disk array. The
// paper treats one ad hoc join at a time; under multi-query traffic
// the dominant cost becomes cartridge mounts and repeated tape passes,
// so the engine adds what a single join cannot have:
//
//   - a tape-mount scheduler that orders queries to minimize cartridge
//     switches (FIFO vs. mount-aware policies),
//   - shared S-scans: queries joining the same S relation piggyback on
//     one tape pass, fanning streamed chunks to per-query operators,
//   - admission control partitioning M and D across the riders of a
//     shared pass with the internal/cost model, so every admitted
//     query still satisfies its method's Table 2 row,
//   - a disk staging cache retaining copied-R partitions across
//     queries with LRU eviction, so repeated joins skip the tape.
//
// The whole batch runs inside one join.Session: a single simulation
// kernel whose drive head positions and disk files persist across
// queries, which is what makes mounts, seeks and cache hits real
// effects rather than bookkeeping.
package workload

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/block"
	"repro/internal/cost"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/sim"
)

// Query is one join request in a batch.
type Query struct {
	// ID labels the query in results and the schedule log; defaults to
	// "q<index>".
	ID string
	// Method is the requested join method symbol ("CDT-NB/MB", ...).
	// Empty lets the cost advisor pick the cheapest feasible method.
	// An infeasible request is substituted by the advisor's choice;
	// the cross-method equivalence oracle (internal/join) is what
	// licenses swapping one method for another.
	Method string
	// R is the smaller relation, S the larger.
	R, S *relation.Relation
	// FilterR and FilterS are pushed-down selections. A query with a
	// FilterR never uses the staging cache (its R copy is
	// predicate-specific).
	FilterR, FilterS func(block.Tuple) bool
	// Sink receives the query's output pairs; nil counts matches only.
	Sink join.Sink
	// StopAfter, when positive, stops the join after this many output
	// pairs. A StopAfter query always runs solo — its partial prefix
	// cannot be subsumed by a shared pass, whose riders see the whole
	// scan — and the scheduler prefers the streaming SYM-H method for
	// it. It is never requeued after a device failure: pairs may already
	// have been streamed to its sink, and a rerun would double-deliver.
	StopAfter int64
}

// Policy selects the batch scheduling policy.
type Policy int

const (
	// FIFO runs queries in submission order, mounting whatever each
	// one needs — the baseline that thrashes cartridges.
	FIFO Policy = iota
	// MountAware reorders the batch to group queries by S cartridge
	// (then by R cartridge within a group), minimizing mounts; every
	// query still runs as its own join.
	MountAware
	// SharedScan is MountAware plus shared S-passes: same-S queries
	// admitted by the cost model join on a single tape pass of S.
	SharedScan
)

// String returns the policy's CLI name.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case MountAware:
		return "mount-aware"
	case SharedScan:
		return "shared-scan"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy converts a CLI name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "mount-aware":
		return MountAware, nil
	case "shared-scan":
		return SharedScan, nil
	}
	return 0, fmt.Errorf("workload: unknown policy %q (want fifo, mount-aware or shared-scan)", s)
}

// Config describes the shared system and the scheduling policy.
type Config struct {
	// Resources is the device complex every query shares (one M, one
	// D, two drives, n disks).
	Resources join.Resources
	// Policy selects the scheduler.
	Policy Policy
	// CacheBlocks carves this much of D out as the staging cache for
	// copied-R partitions (LRU). Methods plan with D - CacheBlocks.
	// Zero disables the cache.
	CacheBlocks int64
	// MountTime is the virtual cost of switching a cartridge in a
	// drive (robot exchange + load + thread); default 30 s.
	MountTime sim.Duration
	// MaxShared caps riders per shared S-pass (default 4).
	MaxShared int
	// ScheduleCap bounds the schedule log to its most recent lines
	// (0 = unbounded, the batch default). The resident online engine
	// sets a cap so a long-lived service does not grow the log without
	// bound; ScheduleDropped counts what fell off.
	ScheduleCap int
}

func (c Config) withDefaults() Config {
	if c.MountTime == 0 {
		c.MountTime = 30 * time.Second
	}
	if c.MaxShared == 0 {
		c.MaxShared = 4
	}
	return c
}

// QueryResult reports one query of a batch.
type QueryResult struct {
	// ID echoes the query.
	ID string
	// Requested is the method asked for ("" = advisor's choice);
	// Method is what actually ran. A shared-pass rider reports
	// "SHARED" — its join work was subsumed by the group's scan.
	Requested, Method string
	// Substituted marks a requested method replaced by the scheduler
	// (infeasible on the query's resource partition, or subsumed by a
	// shared pass).
	Substituted bool
	// Shared marks a rider of a shared S-scan.
	Shared bool
	// CacheHit marks a query whose R copy came from the staging cache
	// instead of tape.
	CacheHit bool
	// Failed marks a query no feasible method could serve — or one that
	// failed again after a device-failure requeue; Reason explains.
	// Failed queries produce no output but do not abort the batch.
	// Reason is always typed: "<kind>: <detail>" with kind one of the
	// Reason* constants, so callers can switch on the class without
	// parsing free text.
	Failed bool
	Reason string
	// Requeued marks a query re-admitted after a device-class failure:
	// its first service attempt (solo or as a shared-pass rider) died
	// with a lost drive, a tripped breaker or unrecoverable corruption,
	// and the scheduler ran it again on the surviving device complex.
	Requeued bool
	// Start and End bound the query's service in virtual time; Wait is
	// the queue wait (the batch arrives at t=0, so Wait = Start).
	Start, End, Wait sim.Duration
	// Matches is the output cardinality.
	Matches int64
	// Stopped marks a StopAfter query the join terminated early; Matches
	// then counts only the delivered prefix. FirstTuple is the virtual
	// time from service start to the first delivered pair (zero when the
	// query produced no output or its method does not stream).
	Stopped    bool
	FirstTuple sim.Duration
	// OutputHash is the order-independent digest of the query's emitted
	// pairs, when its sink maintains one (the default CountSink does;
	// see join.Hasher). Equal hashes mean the same multiset of pairs,
	// byte for byte — the cross-schedule equivalence oracle between
	// online, batch and solo service of the same query.
	OutputHash uint64
}

// Reason kinds. Every Failed QueryResult carries a Reason of the form
// "<kind>: <detail>" using one of these prefixes; the online engine and
// service layer add admission-time kinds of their own.
const (
	// ReasonInfeasible marks a query no method could serve within its
	// resource partition (the M/k and D budgets of admission control).
	ReasonInfeasible = "infeasible"
	// ReasonDeviceFailed marks a query that failed again on the
	// surviving device complex after a device-class requeue.
	ReasonDeviceFailed = "device-failed"
	// ReasonDeadline marks a query whose deadline expired before
	// service started (online scheduling only).
	ReasonDeadline = "deadline-exceeded"
	// ReasonShutdown marks a query the engine could not serve because
	// the service stopped underneath it (kernel failure or close).
	ReasonShutdown = "shutdown"
)

// typedReason renders a classified failure reason.
func typedReason(kind string, err error) string {
	return kind + ": " + err.Error()
}

// BatchResult reports a whole batch run.
type BatchResult struct {
	// Policy echoes the scheduler used.
	Policy Policy
	// Makespan is the virtual time from batch arrival to the last
	// query's completion.
	Makespan sim.Duration
	// Mounts counts cartridge switches charged (RMounts + SMounts).
	Mounts, RMounts, SMounts int
	// SharedPasses counts shared S-scans executed.
	SharedPasses int
	// Requeues counts device-failure re-admissions of single queries;
	// Demotions counts riders of failed shared passes that fell back to
	// solo service.
	Requeues, Demotions int
	// Staging-cache activity.
	CacheHits, CacheMisses, CacheEvictions int64
	// Tape traffic across both drives for the whole batch.
	TapeBlocksRead, TapeBlocksWritten int64
	// DiskHighWater is the batch's peak disk footprint, cache included.
	DiskHighWater int64
	// Queries holds per-query results in submission order.
	Queries []QueryResult
	// Schedule is the deterministic, human-readable schedule log: one
	// line per scheduling action with virtual timestamps. When
	// Config.ScheduleCap is set only the most recent lines are kept and
	// ScheduleDropped counts the ones that fell off.
	Schedule        []string
	ScheduleDropped int64
}

// engine is the per-batch runtime state.
type engine struct {
	cfg     Config
	session *join.Session
	cache   *stagingCache
	queries []Query
	results []QueryResult
	out     *BatchResult
	// array is the disk store the cache's files live on; when a query
	// swaps in a rebuilt array, the cache is flushed (its files are
	// stranded on the retired store).
	array device.Store

	queueWait *obs.Histogram
	mountsC   *obs.Counter
	hitsC     *obs.Counter
	missesC   *obs.Counter
	sharedC   *obs.Counter
}

// Run executes the batch under the configured policy and returns
// per-query and batch-level results. The run is deterministic: the
// same config and queries produce byte-identical schedules, traces
// and results.
func Run(cfg Config, queries []Query) (*BatchResult, error) {
	cfg = cfg.withDefaults()
	if len(queries) == 0 {
		return nil, errors.New("workload: empty batch")
	}
	session, err := join.NewSession(cfg.Resources)
	if err != nil {
		return nil, err
	}
	defer session.Close()
	res := session.Resources()
	if cfg.CacheBlocks < 0 || cfg.CacheBlocks >= res.DiskBlocks {
		return nil, fmt.Errorf("workload: CacheBlocks %d outside [0, D=%d)", cfg.CacheBlocks, res.DiskBlocks)
	}
	for i := range queries {
		if queries[i].ID == "" {
			queries[i].ID = fmt.Sprintf("q%d", i)
		}
		spec := join.Spec{R: queries[i].R, S: queries[i].S}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("workload: query %s: %w", queries[i].ID, err)
		}
	}

	reg := res.Metrics
	en := &engine{
		cfg: cfg, session: session, queries: queries,
		array:   session.Disks(),
		cache:   newStagingCache(cfg.CacheBlocks),
		results: make([]QueryResult, len(queries)),
		out:     &BatchResult{Policy: cfg.Policy},
		queueWait: reg.Histogram("workload_queue_wait_seconds",
			"Virtual time queries waited before service started.", obs.BackoffBuckets),
		mountsC: reg.Counter("workload_mounts_total", "Cartridge switches charged by the scheduler."),
		hitsC:   reg.Counter("workload_cache_hits_total", "Staging-cache hits (R copies served from disk)."),
		missesC: reg.Counter("workload_cache_misses_total", "Staging-cache misses (R copies read from tape)."),
		sharedC: reg.Counter("workload_shared_passes_total", "Shared S-scan passes executed."),
	}
	steps := plan(cfg, res, queries)

	var runErr error
	session.Kernel().Spawn("workload", func(p *sim.Proc) {
		for _, st := range steps {
			if st.shared {
				runErr = en.runShared(p, st.indices)
			} else {
				runErr = en.runSingle(p, st.indices[0])
			}
			if runErr != nil {
				return
			}
		}
	})
	if err := session.Kernel().Run(); err != nil {
		return nil, fmt.Errorf("workload: simulation: %w", err)
	}
	session.Finish()
	if runErr != nil {
		return nil, runErr
	}

	en.out.Makespan = sim.Duration(session.Kernel().Now())
	en.out.Queries = en.results
	en.out.CacheHits = en.cache.Hits
	en.out.CacheMisses = en.cache.Misses
	en.out.CacheEvictions = en.cache.Evictions
	rStats, sStats := session.DriveR().DriveStats(), session.DriveS().DriveStats()
	en.out.TapeBlocksRead = rStats.BlocksRead + sStats.BlocksRead
	en.out.TapeBlocksWritten = rStats.BlocksWritten + sStats.BlocksWritten
	en.out.DiskHighWater = session.Disks().HighWater()
	return en.out, nil
}

// logf appends one line to the deterministic schedule log, stamped
// with the current virtual time.
func (en *engine) logf(p *sim.Proc, format string, args ...any) {
	line := fmt.Sprintf("t=%08.1fs %s", sim.Duration(p.Now()).Seconds(), fmt.Sprintf(format, args...))
	if cap := en.cfg.ScheduleCap; cap > 0 && len(en.out.Schedule) >= cap {
		n := copy(en.out.Schedule, en.out.Schedule[len(en.out.Schedule)-cap+1:])
		en.out.Schedule = en.out.Schedule[:n]
		en.out.ScheduleDropped++
	}
	en.out.Schedule = append(en.out.Schedule, line)
}

// mount switches the given drive to medium m, charging MountTime when
// the cartridge actually changes. The first load of an empty drive is
// charged too: a batch system owns its robot time, unlike the paper's
// single pre-mounted join.
func (en *engine) mount(p *sim.Proc, drive device.Drive, m device.Medium, side string) {
	if drive.Media() == m {
		return
	}
	sp := en.session.Resources().Spans.Begin(p, "mount",
		obs.A("side", side), obs.A("media", m.Name()))
	p.Hold(en.cfg.MountTime)
	drive.Load(m)
	sp.Close(p)
	en.out.Mounts++
	if side == "R" {
		en.out.RMounts++
	} else {
		en.out.SMounts++
	}
	en.mountsC.Inc()
	en.logf(p, "mount %s drive <- %s", side, m.Name())
}

// methodDiskBudget is the disk partition a query's method plans with:
// the array minus the staging-cache carve-out, plus the blocks of its
// own staged R when that copy lives inside the cache (the method's
// Table 2 check counts R's copy against its budget).
func (en *engine) methodDiskBudget(staged int64) int64 {
	return en.session.Resources().DiskBlocks - en.cfg.CacheBlocks + staged
}

// usesCopiedR reports whether a method's Step I is a plain copy of R
// to disk — the Nested Block family. Only these can consume a staged
// (cached) R partition; the Grace Hash methods lay R out in an
// M-dependent bucket structure instead.
func usesCopiedR(symbol string) bool {
	switch symbol {
	case "DT-NB", "CDT-NB/MB", "CDT-NB/DB":
		return true
	}
	return false
}

// chooseMethod picks the method a single query runs: the requested one
// when feasible on the query's resource partition, otherwise the cost
// advisor's cheapest feasible alternative.
func (en *engine) chooseMethod(q Query, spec join.Spec, dBudget int64) (join.Method, bool, error) {
	res := en.session.Resources()
	res.DiskBlocks = dBudget
	if q.Method != "" {
		m, err := join.BySymbol(q.Method)
		if err != nil {
			return nil, false, err
		}
		if err := m.Check(spec, res); err == nil {
			return m, false, nil
		}
	}
	if q.StopAfter > 0 {
		// The cost model ranks whole-run response and would never pick a
		// streaming method; for a prefix query, time-to-first-tuple is
		// what matters, so prefer SYM-H whenever it is feasible.
		if m, err := join.BySymbol("SYM-H"); err == nil && m.Check(spec, res) == nil {
			return m, q.Method != "" && q.Method != "SYM-H", nil
		}
	}
	params := cost.Params{
		RBlocks: spec.R.Region.N, SBlocks: spec.S.Region.N,
		MBlocks: res.MemoryBlocks, DBlocks: dBudget,
		TapeRate: res.Tape.EffectiveRate(), DiskRate: res.DiskRate,
	}
	adv := cost.Advise(params, cost.Scratch{
		RTape: spec.R.Media.Free(), STape: spec.S.Media.Free(),
	})
	for _, est := range adv.Ranked {
		if est.Err != nil {
			continue
		}
		m, err := join.BySymbol(est.Method)
		if err != nil {
			continue
		}
		if err := m.Check(spec, res); err != nil {
			continue
		}
		return m, q.Method != "" && est.Method != q.Method, nil
	}
	return nil, false, fmt.Errorf("no feasible method for %s (M=%d, D=%d)",
		q.ID, res.MemoryBlocks, dBudget)
}

// staged is a resolved disk-resident R handle: either a pinned cache
// entry or a pass-owned copy to free after use.
type staged struct {
	file   device.File
	pinned *cacheEntry
	owned  device.File
	hit    bool
}

// stagedR resolves a query's disk-resident R copy: a cache hit, a
// fresh cache fill, or — when forceStage is set and the cache cannot
// serve — a pass-owned copy staged outside the cache. A nil file with
// nil error means the query should read R from tape itself.
func (en *engine) stagedR(p *sim.Proc, q Query, forceStage bool) (*staged, error) {
	out := &staged{}
	cacheable := q.FilterR == nil && en.cfg.CacheBlocks > 0
	if cacheable {
		if ce := en.cache.lookup(q.R); ce != nil {
			en.cache.pin(ce)
			out.pinned = ce
			out.file = ce.file
			out.hit = true
			en.hitsC.Inc()
			en.logf(p, "cache hit: R=%s (%d blocks)", q.R.Name, ce.blocks)
			return out, nil
		}
		en.missesC.Inc()
		if q.R.Region.N <= en.cfg.CacheBlocks {
			evicted, ok := en.cache.makeRoom(q.R.Region.N)
			for _, name := range evicted {
				en.logf(p, "cache evict: R=%s", name)
			}
			if ok {
				en.mount(p, en.session.DriveR(), q.R.Media, "R")
				f, d, err := en.session.StageR(p, q.R, nil)
				if err != nil {
					return nil, err
				}
				ce := en.cache.insert(q.R, f)
				en.cache.pin(ce)
				out.pinned = ce
				out.file = f
				en.logf(p, "cache fill: R=%s (%d blocks, %.1fs)", q.R.Name, f.Len(), d.Seconds())
				return out, nil
			}
		}
	}
	if forceStage {
		// Shared riders need a disk-resident R even when it cannot be
		// cached: stage a pass-owned (possibly filtered) copy.
		en.mount(p, en.session.DriveR(), q.R.Media, "R")
		f, d, err := en.session.StageR(p, q.R, q.FilterR)
		if err != nil {
			return nil, err
		}
		out.file = f
		out.owned = f
		en.logf(p, "stage R=%s for shared pass (%d blocks, %.1fs)", q.R.Name, f.Len(), d.Seconds())
		return out, nil
	}
	return out, nil
}

// release unpins or frees whatever stagedR resolved.
func (en *engine) release(s *staged) {
	if s == nil {
		return
	}
	if s.pinned != nil {
		en.cache.unpin(s.pinned)
	}
	if s.owned != nil {
		s.owned.Free()
	}
}

// deviceFailure classifies errors that indict the device complex
// rather than the query: lost drives and stores, tripped wall-clock
// breakers, unrecoverable stored corruption, and exhausted fault-retry
// budgets. A query failing this way is re-admitted once on whatever
// survives; anything else (infeasible plans, simulator bugs) aborts
// the batch as before.
func deviceFailure(err error) bool {
	return errors.Is(err, fault.ErrDriveLost) || errors.Is(err, fault.ErrDeviceLost) ||
		errors.Is(err, device.ErrDeviceFailed) || errors.Is(err, device.ErrCorrupt) ||
		errors.Is(err, join.ErrFaultExhausted)
}

// syncDevices reconciles engine state after a query that may have
// swapped session devices: a drive-loss degrade or a disk rebuild
// installs replacements, stranding the staging cache's files on the
// retired array, so the cache is flushed when the array identity
// changes.
func (en *engine) syncDevices(p *sim.Proc) {
	if en.session.Disks() == en.array {
		return
	}
	en.array = en.session.Disks()
	for _, name := range en.cache.flush() {
		en.logf(p, "cache flush: R=%s (disk array replaced)", name)
	}
}

// runSingle serves one query as its own join, re-admitting it once on
// the surviving device complex when a device-class failure escapes the
// join layer's own recovery. A second device failure marks the query
// Failed — with a typed reason — without aborting the batch.
func (en *engine) runSingle(p *sim.Proc, qi int) error {
	q := en.queries[qi]
	start := sim.Duration(p.Now())
	sp := en.session.Resources().Spans.Begin(p, "query", obs.A("id", q.ID))
	defer sp.Close(p)
	en.queueWait.Observe(start.Seconds())

	for attempt := 0; ; attempt++ {
		err := en.tryQuery(p, qi, start, attempt > 0)
		en.syncDevices(p)
		if err == nil {
			return nil
		}
		if !deviceFailure(err) {
			return fmt.Errorf("workload: query %s: %w", q.ID, err)
		}
		if attempt == 0 && q.StopAfter == 0 {
			en.out.Requeues++
			en.logf(p, "requeue %s on surviving devices after: %v", q.ID, err)
			continue
		}
		// StopAfter queries are never requeued: part of their prefix may
		// already have been streamed to the sink, and a rerun would
		// double-deliver it.
		en.results[qi] = QueryResult{
			ID: q.ID, Requested: q.Method, Requeued: attempt > 0,
			Failed: true, Reason: typedReason(ReasonDeviceFailed, err),
			Start: start, End: sim.Duration(p.Now()), Wait: start,
		}
		en.logf(p, "query %s: failed (%v)", q.ID, err)
		return nil
	}
}

// tryQuery is one service attempt of a single query: mount, choose a
// method on the current (possibly degraded) resources, resolve staged
// R, execute. It records the result itself on success (and on an
// infeasible plan, which fails the query without retrying); device and
// simulator errors propagate to runSingle for classification.
func (en *engine) tryQuery(p *sim.Proc, qi int, start sim.Duration, requeued bool) error {
	q := en.queries[qi]
	spec := join.Spec{R: q.R, S: q.S, FilterR: q.FilterR, FilterS: q.FilterS}
	en.mount(p, en.session.DriveS(), q.S.Media, "S")

	m, substituted, err := en.chooseMethod(q, spec, en.methodDiskBudget(0))
	if err != nil {
		en.results[qi] = QueryResult{
			ID: q.ID, Requested: q.Method, Requeued: requeued,
			Failed: true, Reason: typedReason(ReasonInfeasible, err),
			Start: start, End: start, Wait: start,
		}
		en.logf(p, "query %s: failed (%v)", q.ID, err)
		return nil
	}

	var st *staged
	opts := join.ExecOptions{DiskBlocks: en.methodDiskBudget(0), StopAfter: q.StopAfter}
	if usesCopiedR(m.Symbol()) {
		st, err = en.stagedR(p, q, false)
		if err != nil {
			return err
		}
		if st.file != nil {
			opts.StagedR = st.file
			opts.DiskBlocks = en.methodDiskBudget(st.file.Len())
		}
	}
	if opts.StagedR == nil {
		en.mount(p, en.session.DriveR(), q.R.Media, "R")
	}

	sink := q.Sink
	if sink == nil {
		sink = &join.CountSink{}
	}
	cached := ""
	if st != nil && st.hit {
		cached = ", cached R"
	}
	en.logf(p, "run %s: %s (R=%s, S=%s%s)", q.ID, m.Symbol(), q.R.Name, q.S.Name, cached)
	result, err := en.session.Exec(p, m, spec, sink, opts)
	en.release(st)
	if err != nil {
		return err
	}
	en.results[qi] = QueryResult{
		ID: q.ID, Requested: q.Method, Method: m.Symbol(),
		Substituted: substituted, CacheHit: st != nil && st.hit,
		Requeued: requeued,
		Start:    start, End: sim.Duration(p.Now()), Wait: start,
		Matches:    result.Stats.OutputTuples,
		Stopped:    result.Stats.Stopped,
		FirstTuple: result.Stats.FirstTuple,
		OutputHash: sinkHash(sink),
	}
	return nil
}

// sinkHash surfaces a sink's order-independent output digest, when it
// keeps one.
func sinkHash(s join.Sink) uint64 {
	if h, ok := s.(join.Hasher); ok {
		return h.Hash()
	}
	return 0
}

// holdSink buffers a shared rider's output until the pass commits, so
// a failed pass can demote its riders to solo service without
// double-delivering pairs already emitted mid-scan.
type holdSink struct {
	inner join.Sink
	pairs [][2]block.Tuple
}

// Emit implements join.Sink.
func (s *holdSink) Emit(_ *sim.Proc, r, t block.Tuple) {
	s.pairs = append(s.pairs, [2]block.Tuple{r, t})
}

// Count implements join.Sink.
func (s *holdSink) Count() int64 { return int64(len(s.pairs)) }

// commit replays the held pairs into the rider's real sink.
func (s *holdSink) commit(p *sim.Proc) {
	for _, pr := range s.pairs {
		s.inner.Emit(p, pr[0], pr[1])
	}
	s.pairs = nil
}

// demote falls back from a failed shared pass to solo service: each
// rider re-enters as a single query — with its own requeue budget — on
// the surviving devices. The pass's held output was discarded with it,
// so no pair is double-delivered.
func (en *engine) demote(p *sim.Proc, indices []int, cause error) error {
	en.logf(p, "shared pass failed (%v); demoting %d riders to singles", cause, len(indices))
	en.out.Demotions += len(indices)
	for _, qi := range indices {
		if err := en.runSingle(p, qi); err != nil {
			return err
		}
		en.results[qi].Requeued = true
	}
	return nil
}

// runShared serves a group of same-S queries on one shared tape pass.
// A device-class failure demotes the riders to solo service instead of
// aborting the batch.
func (en *engine) runShared(p *sim.Proc, indices []int) error {
	start := sim.Duration(p.Now())
	bigS := en.queries[indices[0]].S
	sp := en.session.Resources().Spans.Begin(p, "shared-pass",
		obs.A("s", bigS.Name), obs.AInt("riders", int64(len(indices))))
	defer sp.Close(p)

	res := en.session.Resources()
	mShare := res.MemoryBlocks / int64(len(indices))
	riders := make([]join.SharedQuery, 0, len(indices))
	handles := make([]*staged, 0, len(indices))
	held := make([]*holdSink, 0, len(indices))
	for _, qi := range indices {
		q := en.queries[qi]
		en.queueWait.Observe(start.Seconds())
		st, err := en.stagedR(p, q, true)
		if err != nil {
			for _, h := range handles {
				en.release(h)
			}
			en.syncDevices(p)
			if deviceFailure(err) {
				return en.demote(p, indices, err)
			}
			return fmt.Errorf("workload: query %s: %w", q.ID, err)
		}
		handles = append(handles, st)
		sink := q.Sink
		if sink == nil {
			sink = &join.CountSink{}
		}
		hs := &holdSink{inner: sink}
		held = append(held, hs)
		sink = hs
		// The rider's R-scan buffer: IOChunk-sized when the share
		// allows, so per-chunk R re-scans amortize the disk's
		// per-request positioning overhead; at most half the share, so
		// the S double buffers keep the larger part of memory (bigger S
		// chunks mean fewer R re-scans, which dominates traffic).
		mr := mShare / 2
		if mr > res.IOChunk {
			mr = res.IOChunk
		}
		if mr < 1 {
			mr = 1
		}
		riders = append(riders, join.SharedQuery{
			R: q.R, StagedR: st.file, FilterS: q.FilterS,
			Sink: sink, MrBlocks: mr,
		})
	}

	en.mount(p, en.session.DriveS(), bigS.Media, "S")
	en.logf(p, "shared pass over S=%s with %d riders", bigS.Name, len(riders))
	shared, err := en.session.ExecShared(p, bigS, riders, res.MemoryBlocks)
	for _, h := range handles {
		en.release(h)
	}
	en.syncDevices(p)
	if err != nil {
		if deviceFailure(err) {
			return en.demote(p, indices, err)
		}
		return fmt.Errorf("workload: shared pass over %s: %w", bigS.Name, err)
	}
	for _, hs := range held {
		hs.commit(p)
	}
	en.out.SharedPasses++
	en.sharedC.Inc()
	end := sim.Duration(p.Now())
	for i, qi := range indices {
		q := en.queries[qi]
		en.results[qi] = QueryResult{
			ID: q.ID, Requested: q.Method, Method: "SHARED",
			Substituted: q.Method != "", Shared: true,
			CacheHit: handles[i].hit,
			Start:    start, End: end, Wait: start,
			Matches:    shared.Matches[i],
			OutputHash: sinkHash(held[i].inner),
		}
	}
	return nil
}
