package join

import (
	"testing"

	"repro/internal/block"
	"repro/internal/relation"
)

// expectedFiltered replays both generators with key filters applied.
func expectedFiltered(r, s *relation.Relation, keepR, keepS func(uint64) bool) int64 {
	rCounts := map[uint64]int64{}
	for k, c := range r.KeyCounts() {
		if keepR == nil || keepR(k) {
			rCounts[k] = c
		}
	}
	var total int64
	for k, c := range s.KeyCounts() {
		if keepS == nil || keepS(k) {
			total += rCounts[k] * c
		}
	}
	return total
}

func TestPushdownFiltersAllMethodsExact(t *testing.T) {
	keepR := func(k uint64) bool { return k%2 == 0 }
	keepS := func(k uint64) bool { return k%3 != 0 }

	for _, m := range AllMethods() {
		m := m
		t.Run(m.Symbol(), func(t *testing.T) {
			var spec Spec
			if m.Symbol() == "TT-SM" {
				spec = smSpec(t, 24, 96)
			} else {
				spec = testSpec(t)
			}
			want := expectedFiltered(spec.R, spec.S, keepR, keepS)
			if want == 0 {
				t.Fatal("filters leave no matches; bad test setup")
			}
			spec.FilterR = func(tp block.Tuple) bool { return keepR(tp.Key) }
			spec.FilterS = func(tp block.Tuple) bool { return keepS(tp.Key) }
			sink := &CountSink{}
			res := fastRes(10, 64)
			if m.Symbol() == "SYM-H" {
				// SYM-H spills both sides of its deferred partitions, so
				// it needs scratch for |R|+|S|, not just R.
				res = fastRes(10, 256)
			}
			result, err := Run(m, spec, res, sink)
			if err != nil {
				t.Fatal(err)
			}
			if sink.Matches != want {
				t.Fatalf("matches = %d, want %d", sink.Matches, want)
			}
			st := result.Stats
			if st.RFiltered == 0 || st.SFiltered == 0 {
				t.Fatalf("filter accounting empty: %d/%d", st.RFiltered, st.SFiltered)
			}
		})
	}
}

func TestPushdownShrinksRStagingIO(t *testing.T) {
	// A selective R filter must shrink R's disk copy and every later
	// scan: DT-NB's disk traffic drops roughly with the selectivity.
	run := func(filter bool) Stats {
		spec := testSpec(t)
		if filter {
			spec.FilterR = func(tp block.Tuple) bool { return tp.Key%4 == 0 } // ~25%
		}
		result, err := Run(DTNB{}, spec, fastRes(10, 64), nil)
		if err != nil {
			t.Fatal(err)
		}
		return result.Stats
	}
	full := run(false)
	filtered := run(true)
	if filtered.DiskHighWater >= full.DiskHighWater/2 {
		t.Fatalf("disk peak %d vs %d; filter should shrink R's copy", filtered.DiskHighWater, full.DiskHighWater)
	}
	if filtered.DiskTraffic() >= full.DiskTraffic()/2 {
		t.Fatalf("disk traffic %d vs %d; R scans should shrink", filtered.DiskTraffic(), full.DiskTraffic())
	}
	if filtered.Response >= full.Response {
		t.Fatalf("filtered response %v not faster than %v", filtered.Response, full.Response)
	}
}

func TestPushdownShrinksGHBuckets(t *testing.T) {
	run := func(filter bool) Stats {
		spec := testSpec(t)
		if filter {
			spec.FilterS = func(tp block.Tuple) bool { return tp.Key%4 == 0 }
		}
		result, err := Run(CDTGH{}, spec, fastRes(10, 64), nil)
		if err != nil {
			t.Fatal(err)
		}
		return result.Stats
	}
	full := run(false)
	filtered := run(true)
	// S buckets hold ~25% of the tuples: bucket writes + reads shrink.
	if filtered.DiskTraffic() >= full.DiskTraffic()*3/4 {
		t.Fatalf("disk traffic %d vs %d; S filter should shrink buckets", filtered.DiskTraffic(), full.DiskTraffic())
	}
}

func TestNilFiltersUnchanged(t *testing.T) {
	// The no-filter path must be byte-identical to pre-pushdown
	// behaviour: same output, same stats.
	spec := testSpec(t)
	sink := &CountSink{}
	result, err := Run(DTGH{}, spec, fastRes(10, 64), sink)
	if err != nil {
		t.Fatal(err)
	}
	if result.Stats.RFiltered != 0 || result.Stats.SFiltered != 0 {
		t.Fatalf("filter counters moved with nil filters: %+v", result.Stats)
	}
	if sink.Matches != relation.ExpectedMatches(spec.R, spec.S) {
		t.Fatalf("matches = %d", sink.Matches)
	}
}
