package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Some CPU @ 2.70GHz
BenchmarkFig1SmallR-8         	       1	     35366 ns/op	         3.950 relcost-DT-NB@5M
BenchmarkFig4Utilization-8    	       1	  43828083 ns/op	        98.60 util-%
BenchmarkPlain-8              	     100	      1234 ns/op
BenchmarkWithAllocs-8         	     100	      1234 ns/op	     512 B/op	       3 allocs/op
not a benchmark line
PASS
ok  	repro	12.007s
`

func TestParse(t *testing.T) {
	s, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(s.Benchmarks), s.Benchmarks)
	}
	fig1, ok := s.Benchmarks["BenchmarkFig1SmallR"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if fig1.NsPerOp != 35366 {
		t.Errorf("ns/op = %v, want 35366", fig1.NsPerOp)
	}
	if got := fig1.Metrics["relcost-DT-NB@5M"]; got != 3.950 {
		t.Errorf("custom metric = %v, want 3.950", got)
	}
	if got := s.Benchmarks["BenchmarkFig4Utilization"].Metrics["util-%"]; got != 98.60 {
		t.Errorf("util metric = %v, want 98.60", got)
	}
	if m := s.Benchmarks["BenchmarkPlain"].Metrics; m != nil {
		t.Errorf("plain benchmark grew metrics: %v", m)
	}
	// Memory counters are standard tooling output, not tracked metrics.
	if m := s.Benchmarks["BenchmarkWithAllocs"].Metrics; len(m) != 0 {
		t.Errorf("B/op and allocs/op leaked into metrics: %v", m)
	}
}

func TestDiff(t *testing.T) {
	old := &Snapshot{Benchmarks: map[string]Bench{
		"A": {NsPerOp: 100, Metrics: map[string]float64{"vsec": 50}},
		"B": {NsPerOp: 100},
		"C": {NsPerOp: 100, Metrics: map[string]float64{"vsec": 10}},
	}}
	cur := &Snapshot{Benchmarks: map[string]Bench{
		"A": {NsPerOp: 105, Metrics: map[string]float64{"vsec": 80}}, // metric drift 60%
		"B": {NsPerOp: 300},                                          // ns/op regression 200%
		// C missing entirely
	}}

	warnings := diff(old, cur, 15, 60, true)
	if len(warnings) != 3 {
		t.Fatalf("got %d warnings, want 3:\n%s", len(warnings), strings.Join(warnings, "\n"))
	}
	for _, want := range []string{"A: vsec drifted", "B: ns/op regressed", "C: benchmark missing"} {
		found := false
		for _, w := range warnings {
			if strings.Contains(w, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no warning matching %q in:\n%s", want, strings.Join(warnings, "\n"))
		}
	}

	// Same snapshots, wall-clock comparison off: only the deterministic
	// metric and the missing benchmark should fire.
	warnings = diff(old, cur, 15, 60, false)
	for _, w := range warnings {
		if strings.Contains(w, "ns/op") {
			t.Errorf("ns/op warning with -ns=false: %s", w)
		}
	}
	if len(warnings) != 2 {
		t.Fatalf("got %d warnings with -ns=false, want 2:\n%s", len(warnings), strings.Join(warnings, "\n"))
	}

	// Within threshold: quiet.
	if w := diff(old, old, 15, 60, true); len(w) != 0 {
		t.Fatalf("self-diff produced warnings: %v", w)
	}
}

// TestDiffExcludesWallClockMetrics: wall metrics outside the compared
// set ("wall-sec" and friends — pure durations of the machine the run
// happened on) are recorded in snapshots but never compared — not for
// drift, not for missing-from-snapshot, not for missing-from-current.
func TestDiffExcludesWallClockMetrics(t *testing.T) {
	old := &Snapshot{Benchmarks: map[string]Bench{
		"A": {Metrics: map[string]float64{"vsec": 50, "wall-sec": 0.2}},
	}}
	cur := &Snapshot{Benchmarks: map[string]Bench{
		// wall-sec drifted 10x; vsec drifted too, and an excluded wall
		// metric appeared that the snapshot lacks.
		"A": {Metrics: map[string]float64{"vsec": 80, "wall-sec": 2.0, "wall-new": 1}},
	}}

	warnings := diff(old, cur, 15, 60, false)
	for _, w := range warnings {
		if strings.Contains(w, "wall") {
			t.Errorf("wall-clock metric produced a warning: %s", w)
		}
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "vsec drifted") {
		t.Fatalf("want exactly the vsec drift warning, got:\n%s", strings.Join(warnings, "\n"))
	}
}

// TestDiffExcludesFirstTupleMetrics: first_tuple* metrics are
// deterministic but point-like — the first pair's arrival moves with
// any intentional plan change — so, like pure wall durations, they are
// recorded in snapshots but never compared in any direction.
func TestDiffExcludesFirstTupleMetrics(t *testing.T) {
	old := &Snapshot{Benchmarks: map[string]Bench{
		"A": {Metrics: map[string]float64{"vsec": 50, "first_tuple-SYM-H": 3.0}},
	}}
	cur := &Snapshot{Benchmarks: map[string]Bench{
		// first_tuple drifted 10x and a new first_tuple metric appeared;
		// neither may warn. The vsec drift still must.
		"A": {Metrics: map[string]float64{"vsec": 80, "first_tuple-SYM-H": 30.0,
			"first_tuple-best-materializing": 25.0}},
	}}

	warnings := diff(old, cur, 15, 60, false)
	for _, w := range warnings {
		if strings.Contains(w, "first_tuple") {
			t.Errorf("first_tuple metric produced a warning: %s", w)
		}
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "vsec drifted") {
		t.Fatalf("want exactly the vsec drift warning, got:\n%s", strings.Join(warnings, "\n"))
	}

	// Vanishing first_tuple metrics are also quiet.
	cur = &Snapshot{Benchmarks: map[string]Bench{
		"A": {Metrics: map[string]float64{"vsec": 50}},
	}}
	if w := diff(old, cur, 15, 60, false); len(w) != 0 {
		t.Fatalf("missing first_tuple metric warned:\n%s", strings.Join(w, "\n"))
	}
}

// TestDiffComparesWallOverlap: the wall-overlap ratio is in the
// compared set — stable run to run (paperbench -exp obsload measures
// its variance under 10%), so a collapse past the wide wall threshold
// is a real concurrency regression, not machine noise.
func TestDiffComparesWallOverlap(t *testing.T) {
	old := &Snapshot{Benchmarks: map[string]Bench{
		"A": {Metrics: map[string]float64{"wall-overlap": 0.40}},
	}}

	// Drift within the wall threshold: quiet, even though it would trip
	// the ordinary 15% gate.
	cur := &Snapshot{Benchmarks: map[string]Bench{
		"A": {Metrics: map[string]float64{"wall-overlap": 0.30}},
	}}
	if w := diff(old, cur, 15, 60, false); len(w) != 0 {
		t.Fatalf("25%% wall-overlap drift should pass the 60%% wall gate:\n%s", strings.Join(w, "\n"))
	}

	// Overlap collapse: flagged.
	cur = &Snapshot{Benchmarks: map[string]Bench{
		"A": {Metrics: map[string]float64{"wall-overlap": 0.05}},
	}}
	w := diff(old, cur, 15, 60, false)
	if len(w) != 1 || !strings.Contains(w[0], "wall-overlap drifted") {
		t.Fatalf("want the wall-overlap drift warning, got:\n%s", strings.Join(w, "\n"))
	}

	// Vanishing from the current run is a coverage hole, not noise.
	cur = &Snapshot{Benchmarks: map[string]Bench{
		"A": {Metrics: map[string]float64{}},
	}}
	w = diff(old, cur, 15, 60, false)
	if len(w) != 1 || !strings.Contains(w[0], `metric "wall-overlap" missing from current run`) {
		t.Fatalf("want the missing wall-overlap warning, got:\n%s", strings.Join(w, "\n"))
	}
}

// TestParseRecordsWallClockMetrics: excluded from comparison does not
// mean dropped — snapshots keep the wall numbers for human history.
func TestParseRecordsWallClockMetrics(t *testing.T) {
	out := "BenchmarkFileBackendOverlap-8 \t 1 \t 150000000 ns/op \t 0.35 wall-overlap \t 0.15 wall-sec\n"
	s, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	m := s.Benchmarks["BenchmarkFileBackendOverlap"].Metrics
	if m["wall-overlap"] != 0.35 || m["wall-sec"] != 0.15 {
		t.Fatalf("wall metrics not recorded: %v", m)
	}
}

// TestDiffWarnsOnSnapshotGaps guards the guard: a benchmark or metric
// present in the current run but absent from the snapshot used to pass
// silently — every comparison loop iterated the snapshot's keys only —
// so a newly added quantity was never under regression watch.
func TestDiffWarnsOnSnapshotGaps(t *testing.T) {
	old := &Snapshot{Benchmarks: map[string]Bench{
		"A": {NsPerOp: 100, Metrics: map[string]float64{"vsec": 50}},
	}}
	cur := &Snapshot{Benchmarks: map[string]Bench{
		"A":   {NsPerOp: 100, Metrics: map[string]float64{"vsec": 50, "relcost": 2.5}},
		"New": {NsPerOp: 100},
	}}

	warnings := diff(old, cur, 15, 60, true)
	if len(warnings) != 2 {
		t.Fatalf("got %d warnings, want 2:\n%s", len(warnings), strings.Join(warnings, "\n"))
	}
	for _, want := range []string{
		`A: metric "relcost" missing from snapshot`,
		"New: benchmark missing from snapshot",
	} {
		found := false
		for _, w := range warnings {
			if strings.Contains(w, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no warning matching %q in:\n%s", want, strings.Join(warnings, "\n"))
		}
	}

	// Identical key sets stay quiet — the gap warnings must not fire on
	// an up-to-date snapshot.
	if w := diff(old, old, 15, 60, true); len(w) != 0 {
		t.Fatalf("self-diff produced warnings: %v", w)
	}
}
