// Capacity planning: which join method should a site deploy, given
// its memory and disk budget? This example sweeps the analytical cost
// model over a grid of (memory, disk) configurations for a fixed
// workload and prints the method-selection map — the paper's Section
// 10 conclusions, made operational. No simulation runs; the model
// answers instantly.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	tapejoin "repro"
)

func main() {
	const (
		rMB = 400  // smaller relation
		sMB = 4000 // larger relation
	)
	memories := []float64{2, 4, 8, 16, 32, 64, 128, 256, 512}
	disks := []float64{50, 100, 200, 400, 500, 800, 1600}

	fmt.Printf("cheapest feasible method for R=%d MB ⋈ S=%d MB\n", rMB, sMB)
	fmt.Printf("(tape scratch available on both cartridges)\n\n")
	fmt.Printf("%10s", "mem \\ disk")
	for _, d := range disks {
		fmt.Printf("  %9.0fMB", d)
	}
	fmt.Println()

	for _, m := range memories {
		fmt.Printf("%8.0fMB", m)
		for _, d := range disks {
			sys, err := tapejoin.NewSystem(tapejoin.Config{MemoryMB: m, DiskMB: d})
			if err != nil {
				log.Fatal(err)
			}
			ranked := sys.Advise(rMB, sMB, rMB*2, sMB)
			cell := "-"
			if len(ranked) > 0 && ranked[0].Feasible {
				cell = string(ranked[0].Method)
			}
			fmt.Printf("  %11s", cell)
		}
		fmt.Println()
	}

	fmt.Println("\nreading the map:")
	fmt.Println("  - tiny disk        -> CTT-GH (tape-tape) is the only option")
	fmt.Println("  - disk >= |R|,     -> CDT-GH exploits parallel tape/disk I/O")
	fmt.Println("    modest memory")
	fmt.Println("  - memory ~ |R|     -> CDT-NB/MB approaches the bare-read optimum")

	// Zoom in on one column: predicted response versus memory.
	fmt.Printf("\npredicted response at D=500 MB as memory grows:\n")
	for _, m := range memories {
		sys, _ := tapejoin.NewSystem(tapejoin.Config{MemoryMB: m, DiskMB: 500})
		ranked := sys.Advise(rMB, sMB, rMB*2, sMB)
		if ranked[0].Feasible {
			fmt.Printf("  M=%5.0f MB: %-10s %v (%.1fx bare read)\n",
				m, ranked[0].Method, ranked[0].Response.Round(0), ranked[0].RelativeCost)
		}
	}
}
