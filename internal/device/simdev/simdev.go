// Package simdev adapts the virtual-time tape and disk simulators to
// the device interfaces. It is the default backend: all timing is
// virtual, fully deterministic, and calibrated to the paper's
// experimental platform.
package simdev

import (
	"repro/internal/device"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/tape"
)

// Drive wraps the simulated tape drive. Everything promotes from the
// embedded drive; only the stats snapshot needs an accessor method
// over the public Stats field.
type Drive struct {
	*tape.Drive
}

// DriveStats implements device.Drive.
func (d Drive) DriveStats() device.DriveStats { return d.Drive.Stats }

// Close implements device.Drive: a simulated drive holds no OS
// resources.
func (d Drive) Close() error { return nil }

// Store wraps the simulated striped disk array. The accessor methods
// shadow the array's public accounting fields so the interface stays
// read-only, and Create rewraps the concrete file type.
type Store struct {
	*disk.Array
}

// Create implements device.Store.
func (s Store) Create(name string, placement []int) (device.File, error) {
	f, err := s.Array.Create(name, placement)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Used implements device.Store.
func (s Store) Used() int64 { return s.Array.Used }

// HighWater implements device.Store.
func (s Store) HighWater() int64 { return s.Array.HighWater }

// DiskStats implements device.Store.
func (s Store) DiskStats() device.DiskStats { return s.Array.Stats }

// Close implements device.Store: a simulated array holds no OS
// resources.
func (s Store) Close() error { return nil }

// Backend builds simulated drives and arrays.
type Backend struct{}

var _ device.Backend = Backend{}

// Name implements device.Backend.
func (Backend) Name() string { return "sim" }

// NewDrive implements device.Backend.
func (Backend) NewDrive(k *sim.Kernel, name string, cfg device.DriveConfig) (device.Drive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return Drive{tape.NewDrive(k, name, cfg)}, nil
}

// NewSharedDrivePair implements device.Backend.
func (Backend) NewSharedDrivePair(k *sim.Kernel, nameA, nameB string, cfg device.DriveConfig) (device.Drive, device.Drive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	a, b := tape.NewSharedDrivePair(k, nameA, nameB, cfg)
	return Drive{a}, Drive{b}, nil
}

// NewStore implements device.Backend.
func (Backend) NewStore(k *sim.Kernel, cfg device.StoreConfig) (device.Store, error) {
	a, err := disk.NewArray(k, cfg)
	if err != nil {
		return nil, err
	}
	return Store{a}, nil
}
