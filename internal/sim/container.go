package sim

import "fmt"

// Container is a blocking counting store: a pool of identical units
// (blocks of memory, blocks of buffer space) with a fixed capacity.
// Get blocks until the requested amount is available; Put blocks until
// the store has room. Waiters on each side are served strictly FIFO,
// which keeps simulations deterministic and starvation-free: a large
// request at the head of the queue blocks smaller requests behind it.
type Container struct {
	k        *Kernel
	name     string
	capacity int64
	level    int64
	getters  []contWait
	putters  []contWait

	// HighWater tracks the maximum level reached, for space accounting.
	HighWater int64
}

type contWait struct {
	p *Proc
	n int64
}

// NewContainer returns a container with the given capacity and initial
// level.
func NewContainer(k *Kernel, name string, capacity, initial int64) *Container {
	if capacity < 0 || initial < 0 || initial > capacity {
		panic(fmt.Sprintf("sim: container %q bad capacity=%d initial=%d", name, capacity, initial))
	}
	return &Container{k: k, name: name, capacity: capacity, level: initial, HighWater: initial}
}

// Name returns the container name.
func (c *Container) Name() string { return c.name }

// Level returns the current number of units in the container.
func (c *Container) Level() int64 { return c.level }

// Capacity returns the container capacity.
func (c *Container) Capacity() int64 { return c.capacity }

// Free returns capacity minus level.
func (c *Container) Free() int64 { return c.capacity - c.level }

// Get removes n units, blocking until they are available.
func (c *Container) Get(p *Proc, n int64) {
	if n < 0 || n > c.capacity {
		panic(fmt.Sprintf("sim: container %q Get(%d) with capacity %d", c.name, n, c.capacity))
	}
	if n == 0 {
		return
	}
	if len(c.getters) == 0 && c.level >= n {
		c.level -= n
		c.service()
		return
	}
	c.getters = append(c.getters, contWait{p, n})
	p.state = stateBlocked
	p.blockedOn = "container-get:" + c.name
	p.block()
	// The waking side already applied our transaction.
}

// Put adds n units, blocking until there is room.
func (c *Container) Put(p *Proc, n int64) {
	if n < 0 || n > c.capacity {
		panic(fmt.Sprintf("sim: container %q Put(%d) with capacity %d", c.name, n, c.capacity))
	}
	if n == 0 {
		return
	}
	if len(c.putters) == 0 && c.level+n <= c.capacity {
		c.bump(n)
		c.service()
		return
	}
	c.putters = append(c.putters, contWait{p, n})
	p.state = stateBlocked
	p.blockedOn = "container-put:" + c.name
	p.block()
}

// TryGet removes n units if immediately available and reports whether
// it did.
func (c *Container) TryGet(p *Proc, n int64) bool {
	if n < 0 {
		panic(fmt.Sprintf("sim: container %q TryGet(%d)", c.name, n))
	}
	if len(c.getters) == 0 && c.level >= n {
		c.level -= n
		c.service()
		return true
	}
	return false
}

func (c *Container) bump(n int64) {
	c.level += n
	if c.level > c.HighWater {
		c.HighWater = c.level
	}
}

// service drains both wait queues head-first for as long as either head
// can proceed. A completed Get can make room for the head Put and vice
// versa, so the loop alternates until neither makes progress.
func (c *Container) service() {
	for {
		progressed := false
		if len(c.putters) > 0 && c.level+c.putters[0].n <= c.capacity {
			w := c.putters[0]
			copy(c.putters, c.putters[1:])
			c.putters = c.putters[:len(c.putters)-1]
			c.bump(w.n)
			c.k.makeReady(w.p)
			progressed = true
		}
		if len(c.getters) > 0 && c.level >= c.getters[0].n {
			w := c.getters[0]
			copy(c.getters, c.getters[1:])
			c.getters = c.getters[:len(c.getters)-1]
			c.level -= w.n
			c.k.makeReady(w.p)
			progressed = true
		}
		if !progressed {
			return
		}
	}
}
