// Package block defines the unit of storage accounting and transfer in
// the tertiary join system: the paper block.
//
// All device space and bandwidth accounting is done in paper blocks of
// VirtualSize bytes (64 KB), matching the transfer-only cost model of
// the paper. The number of real tuples carried per block is a density
// knob (relation.Config.TuplesPerBlock): experiments at paper scale use
// sparse blocks so a simulated 10 GB relation moves megabytes of real
// tuple data, while correctness tests use dense blocks. Density never
// changes timing — timing depends only on block counts.
package block

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// VirtualSize is the size of one paper block in bytes. Device transfer
// times are computed from virtual bytes = blocks * VirtualSize.
const VirtualSize = 64 * 1024

// Tuple is a relation tuple: a 64-bit join key plus an opaque payload.
type Tuple struct {
	Key     uint64
	Payload []byte
}

// maxPayload bounds payload length so it encodes in a uint16.
const maxPayload = 1<<16 - 1

// Block is an encoded block: a header followed by packed tuples. It is
// what the simulated devices store and move.
type Block []byte

// Encoding layout:
//
//	[0:2)   magic "TB"
//	[2:3)   version (1)
//	[3:4)   relation tag
//	[4:8)   tuple count, little endian
//	[8:12)  crc32 (IEEE) of the body
//	[12:)   body: per tuple key(8) payloadLen(2) payload
const (
	headerSize = 12
	magic0     = 'T'
	magic1     = 'B'
	version    = 1
)

// Builder accumulates tuples and encodes them into a Block.
type Builder struct {
	tag  byte
	body []byte
	n    uint32
}

// NewBuilder returns a builder for blocks of the relation identified by
// tag.
func NewBuilder(tag byte) *Builder {
	return &Builder{tag: tag}
}

// Append adds a tuple to the block under construction.
func (b *Builder) Append(t Tuple) {
	if len(t.Payload) > maxPayload {
		panic(fmt.Sprintf("block: payload %d bytes exceeds max %d", len(t.Payload), maxPayload))
	}
	var kb [10]byte
	binary.LittleEndian.PutUint64(kb[0:8], t.Key)
	binary.LittleEndian.PutUint16(kb[8:10], uint16(len(t.Payload)))
	b.body = append(b.body, kb[:]...)
	b.body = append(b.body, t.Payload...)
	b.n++
}

// Len reports the number of tuples appended so far.
func (b *Builder) Len() int { return int(b.n) }

// Finish encodes the accumulated tuples into a Block and resets the
// builder for reuse.
func (b *Builder) Finish() Block {
	out := make([]byte, headerSize+len(b.body))
	out[0], out[1], out[2], out[3] = magic0, magic1, version, b.tag
	binary.LittleEndian.PutUint32(out[4:8], b.n)
	binary.LittleEndian.PutUint32(out[8:12], crc32.ChecksumIEEE(b.body))
	copy(out[headerSize:], b.body)
	b.body = b.body[:0]
	b.n = 0
	return out
}

// Errors returned by Decode.
var (
	ErrBadMagic    = errors.New("block: bad magic")
	ErrBadVersion  = errors.New("block: unsupported version")
	ErrBadChecksum = errors.New("block: checksum mismatch")
	ErrTruncated   = errors.New("block: truncated")
)

// Tag returns the relation tag without fully decoding the block.
func (blk Block) Tag() (byte, error) {
	if len(blk) < headerSize {
		return 0, ErrTruncated
	}
	if blk[0] != magic0 || blk[1] != magic1 {
		return 0, ErrBadMagic
	}
	return blk[3], nil
}

// Decode unpacks a block into its tuples, verifying the checksum.
// Payload slices alias the block's storage; callers that retain tuples
// past the block's lifetime must copy.
func (blk Block) Decode() (tag byte, tuples []Tuple, err error) {
	if len(blk) < headerSize {
		return 0, nil, ErrTruncated
	}
	if blk[0] != magic0 || blk[1] != magic1 {
		return 0, nil, ErrBadMagic
	}
	if blk[2] != version {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, blk[2])
	}
	tag = blk[3]
	n := binary.LittleEndian.Uint32(blk[4:8])
	sum := binary.LittleEndian.Uint32(blk[8:12])
	body := blk[headerSize:]
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, ErrBadChecksum
	}
	tuples = make([]Tuple, 0, n)
	off := 0
	for i := uint32(0); i < n; i++ {
		if off+10 > len(body) {
			return 0, nil, ErrTruncated
		}
		key := binary.LittleEndian.Uint64(body[off : off+8])
		plen := int(binary.LittleEndian.Uint16(body[off+8 : off+10]))
		off += 10
		if off+plen > len(body) {
			return 0, nil, ErrTruncated
		}
		tuples = append(tuples, Tuple{Key: key, Payload: body[off : off+plen]})
		off += plen
	}
	if off != len(body) {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(body)-off)
	}
	return tag, tuples, nil
}

// Verify checks the header and body checksum without building tuples.
// Device read paths use it to turn silent corruption into a typed
// error at the point of transfer — cheap enough to run on every block
// read back from disk or tape.
func (blk Block) Verify() error {
	if len(blk) < headerSize {
		return ErrTruncated
	}
	if blk[0] != magic0 || blk[1] != magic1 {
		return ErrBadMagic
	}
	if blk[2] != version {
		return fmt.Errorf("%w: %d", ErrBadVersion, blk[2])
	}
	sum := binary.LittleEndian.Uint32(blk[8:12])
	if crc32.ChecksumIEEE(blk[headerSize:]) != sum {
		return ErrBadChecksum
	}
	return nil
}

// MustDecode decodes and panics on corruption. Used internally by join
// operators where a decode failure indicates a simulator bug, not an
// input condition.
func (blk Block) MustDecode() (byte, []Tuple) {
	tag, tuples, err := blk.Decode()
	if err != nil {
		panic(err)
	}
	return tag, tuples
}
