package workload

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// collectOnline submits every query of b to the engine and returns the
// delivered results keyed by ID, failing the test on lost or
// duplicated deliveries.
func collectOnline(t *testing.T, e *OnlineEngine, b *batch) map[string]OnlineResult {
	t.Helper()
	chans := make(map[string]<-chan OnlineResult, len(b.queries))
	for _, q := range b.queries {
		ch, err := e.Submit(OnlineQuery{Query: q})
		if err != nil {
			t.Fatalf("submit %s: %v", q.ID, err)
		}
		chans[q.ID] = ch
	}
	out := make(map[string]OnlineResult, len(chans))
	for id, ch := range chans {
		res, ok := <-ch
		if !ok {
			t.Fatalf("query %s: channel closed without a result", id)
		}
		if res.ID != id {
			t.Fatalf("query %s: got result for %s", id, res.ID)
		}
		if _, dup := out[id]; dup {
			t.Fatalf("query %s: duplicate result", id)
		}
		out[id] = res
		if _, again := <-ch; again {
			t.Fatalf("query %s: second result delivered", id)
		}
	}
	return out
}

// TestOnlineMatchesBatch is the online half of the equivalence oracle:
// the same nine queries served by the resident engine must produce the
// same cardinalities and output hashes as a one-shot batch run, under
// every policy.
func TestOnlineMatchesBatch(t *testing.T) {
	for _, policy := range []Policy{FIFO, MountAware, SharedScan} {
		t.Run(policy.String(), func(t *testing.T) {
			ref := runBatch(t, policy, 64)
			refByID := make(map[string]QueryResult)
			for _, qr := range ref.Queries {
				refByID[qr.ID] = qr
			}

			b := makeBatch(t, policy, 64)
			cfg := OnlineConfig{Config: b.cfg}
			e, err := StartOnline(cfg)
			if err != nil {
				t.Fatal(err)
			}
			results := collectOnline(t, e, b)
			if err := e.Drain(); err != nil {
				t.Fatalf("drain: %v", err)
			}

			for id, res := range results {
				if res.Failed {
					t.Fatalf("query %s failed online: %s", id, res.Reason)
				}
				if want := b.expect[id]; res.Matches != want {
					t.Errorf("query %s: %d matches online, want %d", id, res.Matches, want)
				}
				refQR, ok := refByID[id]
				if !ok {
					t.Fatalf("query %s missing from batch reference", id)
				}
				if res.OutputHash == 0 || refQR.OutputHash == 0 {
					t.Fatalf("query %s: zero output hash (online %#x, batch %#x)", id, res.OutputHash, refQR.OutputHash)
				}
				if res.OutputHash != refQR.OutputHash {
					t.Errorf("query %s: online hash %#x != batch hash %#x", id, res.OutputHash, refQR.OutputHash)
				}
			}
			st := e.Stats()
			if st.Served != int64(len(results)) {
				t.Errorf("stats served = %d, want %d", st.Served, len(results))
			}
			if st.Queued != 0 || st.InFlight != 0 {
				t.Errorf("drained engine still has queued=%d inflight=%d", st.Queued, st.InFlight)
			}
		})
	}
}

// TestOnlineSharedMerge pins the merge window: three same-S queries
// submitted together under shared-scan ride one shared pass.
func TestOnlineSharedMerge(t *testing.T) {
	b := makeBatch(t, SharedScan, 0)
	// Keep only the three queries over S1's relation (q0, q2, q6).
	var same []Query
	for _, q := range b.queries {
		if q.S == b.queries[0].S {
			same = append(same, q)
		}
	}
	if len(same) < 3 {
		t.Fatalf("batch fixture lost its same-S run: %d", len(same))
	}
	e, err := StartOnline(OnlineConfig{
		Config:      b.cfg,
		MergeWindow: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var chans []<-chan OnlineResult
	for _, q := range same {
		ch, err := e.Submit(OnlineQuery{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	shared := 0
	for i, ch := range chans {
		res := <-ch
		if res.Failed {
			t.Fatalf("query %d failed: %s", i, res.Reason)
		}
		if res.Shared {
			shared++
		}
		if want := b.expect[res.ID]; res.Matches != want {
			t.Errorf("query %s: %d matches, want %d", res.ID, res.Matches, want)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if shared < 2 {
		t.Errorf("merge window fused %d riders, want >= 2", shared)
	}
	if st := e.Stats(); st.SharedPasses < 1 {
		t.Errorf("SharedPasses = %d, want >= 1", st.SharedPasses)
	}
}

// TestOnlineDeadlineExpiry pins the typed deadline reason: a query
// whose deadline has already passed fails without occupying a drive.
func TestOnlineDeadlineExpiry(t *testing.T) {
	b := makeBatch(t, FIFO, 0)
	e, err := StartOnline(OnlineConfig{Config: b.cfg})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Submit(OnlineQuery{
		Query:    b.queries[0],
		Deadline: time.Now().Add(-time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if !res.Failed {
		t.Fatalf("expired query served: %+v", res)
	}
	if !strings.HasPrefix(res.Reason, ReasonDeadline+":") {
		t.Errorf("reason %q lacks typed prefix %q", res.Reason, ReasonDeadline)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Expired != 1 {
		t.Errorf("Expired = %d, want 1", st.Expired)
	}
}

// TestOnlinePriority: a high-priority arrival overtakes a queued
// default-priority one.
func TestOnlinePriority(t *testing.T) {
	b := makeBatch(t, FIFO, 0)
	e, err := StartOnline(OnlineConfig{Config: b.cfg})
	if err != nil {
		t.Fatal(err)
	}
	// The first submission may begin service immediately; the two that
	// follow are queued behind it, and the high-priority one must start
	// first regardless of submission order.
	chFirst, err := e.Submit(OnlineQuery{Query: b.queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	qLow, qHigh := b.queries[1], b.queries[2]
	qLow.ID, qHigh.ID = "low", "high"
	chLow, err := e.Submit(OnlineQuery{Query: qLow})
	if err != nil {
		t.Fatal(err)
	}
	chHigh, err := e.Submit(OnlineQuery{Query: qHigh, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	<-chFirst
	low, high := <-chLow, <-chHigh
	if low.Failed || high.Failed {
		t.Fatalf("unexpected failures: low=%q high=%q", low.Reason, high.Reason)
	}
	if high.Started.After(low.Started) {
		t.Errorf("high-priority query started %v after the low-priority one", high.Started.Sub(low.Started))
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineDrainRejects pins ErrDraining and double-Drain safety.
func TestOnlineDrainRejects(t *testing.T) {
	b := makeBatch(t, MountAware, 0)
	e, err := StartOnline(OnlineConfig{Config: b.cfg})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Submit(OnlineQuery{Query: b.queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Failed {
		t.Fatalf("pre-drain query failed: %s", res.Reason)
	}
	if _, err := e.Submit(OnlineQuery{Query: b.queries[1]}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit error = %v, want ErrDraining", err)
	}
	if err := e.Drain(); err != nil {
		t.Errorf("second drain: %v", err)
	}
}
