package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func secs(s int) sim.Time { return sim.Time(time.Duration(s) * time.Second) }

func sampleRecorder() *Recorder {
	r := &Recorder{}
	r.Add(Event{Device: "tape:R", Kind: TapeRead, Start: 0, End: secs(40), Blocks: 40})
	r.Add(Event{Device: "tape:R", Kind: TapeSeek, Start: secs(40), End: secs(50)})
	r.Add(Event{Device: "disk0", Kind: DiskWrite, Start: secs(10), End: secs(30), Blocks: 20})
	r.Add(Event{Device: "disk0", Kind: DiskRead, Start: secs(60), End: secs(100), Blocks: 40})
	r.Mark(secs(50), "step I done")
	return r
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Event{Device: "x", Kind: TapeRead})
	if r.Devices() != nil {
		t.Fatal("nil recorder should have no devices")
	}
	if r.Timeline(secs(10), 10) != "" || r.Summary(secs(10)) != "" {
		t.Fatal("nil recorder renders empty")
	}
}

func TestDevicesAndBusyTime(t *testing.T) {
	r := sampleRecorder()
	devs := r.Devices()
	if len(devs) != 2 || devs[0] != "disk0" || devs[1] != "tape:R" {
		t.Fatalf("devices = %v", devs)
	}
	if got := r.BusyTime("tape:R"); got != 50*time.Second {
		t.Fatalf("tape busy = %v, want 50s", got)
	}
	if got := r.BusyTime("disk0"); got != 60*time.Second {
		t.Fatalf("disk busy = %v, want 60s", got)
	}
}

func TestTimelineRendering(t *testing.T) {
	r := sampleRecorder()
	tl := r.Timeline(secs(100), 10)
	lines := strings.Split(strings.TrimRight(tl, "\n"), "\n")
	if len(lines) != 3 { // disk0, tape:R, axis
		t.Fatalf("timeline:\n%s", tl)
	}
	// disk0: write covers cells 1-2, read covers 6-9.
	disk := lines[0]
	if !strings.HasPrefix(disk, "disk0") {
		t.Fatalf("first row = %q", disk)
	}
	body := disk[strings.Index(disk, "|")+1 : strings.LastIndex(disk, "|")]
	if len(body) != 10 {
		t.Fatalf("row width = %d", len(body))
	}
	if body[0] != '.' || body[1] != 'w' || body[2] != 'w' || body[7] != 'r' || body[9] != 'r' {
		t.Fatalf("disk row = %q", body)
	}
	// tape:R: read covers cells 0-3, seek cell 4, idle after.
	tapeRow := lines[1]
	tBody := tapeRow[strings.Index(tapeRow, "|")+1 : strings.LastIndex(tapeRow, "|")]
	if tBody[0] != 'r' || tBody[3] != 'r' || tBody[4] != 's' || tBody[9] != '.' {
		t.Fatalf("tape row = %q", tBody)
	}
}

func TestTimelineCellDominance(t *testing.T) {
	// A cell containing 7s of read and 3s of write renders as read.
	r := &Recorder{}
	r.Add(Event{Device: "d", Kind: DiskRead, Start: 0, End: secs(7)})
	r.Add(Event{Device: "d", Kind: DiskWrite, Start: secs(7), End: secs(10)})
	tl := r.Timeline(secs(10), 1)
	if !strings.Contains(tl, "|r|") {
		t.Fatalf("timeline = %q", tl)
	}
}

func TestSummary(t *testing.T) {
	r := sampleRecorder()
	sum := r.Summary(secs(100))
	if !strings.Contains(sum, "tape:R") || !strings.Contains(sum, "tape-read 40s") {
		t.Fatalf("summary:\n%s", sum)
	}
	if !strings.Contains(sum, "50.0%") { // tape busy 50 of 100
		t.Fatalf("summary lacks busy%%:\n%s", sum)
	}
	if !strings.Contains(sum, "disk-write 20s") {
		t.Fatalf("summary:\n%s", sum)
	}
}

func TestKindStringsAndGlyphs(t *testing.T) {
	for k, want := range map[Kind]string{
		TapeRead: "tape-read", TapeWrite: "tape-write", TapeSeek: "tape-seek",
		TapeExchange: "tape-exchange", DiskRead: "disk-read", DiskWrite: "disk-write",
		Mark: "mark",
	} {
		if k.String() != want {
			t.Errorf("%d -> %q, want %q", int(k), k.String(), want)
		}
	}
	if TapeExchange.glyph() != 'x' || TapeSeek.glyph() != 's' {
		t.Fatal("glyphs wrong")
	}
}

func TestEmptyTimelineEdgeCases(t *testing.T) {
	r := &Recorder{}
	if r.Timeline(secs(10), 10) != "" {
		t.Fatal("no events should render empty")
	}
	r.Add(Event{Device: "d", Kind: DiskRead, Start: 0, End: secs(1)})
	if r.Timeline(0, 10) != "" || r.Timeline(secs(10), 0) != "" {
		t.Fatal("degenerate dimensions should render empty")
	}
}
