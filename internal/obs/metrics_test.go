package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryIdempotentLookup(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("ops_total", "ops", A("dev", "R"))
	b := reg.Counter("ops_total", "ops", A("dev", "R"))
	other := reg.Counter("ops_total", "ops", A("dev", "S"))
	a.Inc()
	b.Add(2)
	other.Inc()
	if a.Value() != 3 {
		t.Errorf("same series should share state, got %v", a.Value())
	}
	if other.Value() != 1 {
		t.Errorf("distinct labels should not share state, got %v", other.Value())
	}
	// Counters ignore negative increments.
	a.Add(-5)
	if a.Value() != 3 {
		t.Errorf("counter went backwards: %v", a.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	text := reg.Exposition()
	for _, want := range []string{
		"# HELP lat_seconds latency",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="1"} 2`, // cumulative: 0.5 and the exact bound 1
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="100"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 556.5",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestExpositionHeadersOncePerName(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x", A("dev", "R")).Inc()
	reg.Counter("x_total", "x", A("dev", "S")).Inc()
	reg.Gauge("y", "y").Set(2.5)
	text := reg.Exposition()
	if strings.Count(text, "# TYPE x_total counter") != 1 {
		t.Errorf("TYPE header should appear once:\n%s", text)
	}
	if !strings.Contains(text, `x_total{dev="R"} 1`) || !strings.Contains(text, `x_total{dev="S"} 1`) {
		t.Errorf("labelled samples missing:\n%s", text)
	}
	if !strings.Contains(text, "y 2.5") {
		t.Errorf("gauge sample missing:\n%s", text)
	}
}

func TestRegistryJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c", A("dev", "R")).Add(7)
	h := reg.Histogram("h_seconds", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	data, err := reg.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out []MetricJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(out) != 2 {
		t.Fatalf("got %d series", len(out))
	}
	if out[0].Name != "c_total" || out[0].Value != 7 || out[0].Labels["dev"] != "R" {
		t.Errorf("counter = %+v", out[0])
	}
	if out[1].Count != 2 || out[1].Sum != 2.5 || len(out[1].Buckets) != 2 {
		t.Errorf("histogram = %+v", out[1])
	}
	if out[1].Buckets[1].LE != "+Inf" || out[1].Buckets[1].Count != 2 {
		t.Errorf("+Inf bucket = %+v", out[1].Buckets[1])
	}
}
