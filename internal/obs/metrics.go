package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Bucket presets for the simulator's histograms, in seconds (virtual
// time) or ratios. Chosen to straddle the device model's constants:
// tape seeks are tens of seconds, disk ops are milliseconds, retry
// backoff is 1s·2^attempt, occupancy is a [0,1] ratio.
var (
	DeviceLatencyBuckets = []float64{0.001, 0.01, 0.1, 1, 5, 20, 60, 180, 600}
	BackoffBuckets       = []float64{0.5, 1, 2, 4, 8, 16, 32, 64}
	OccupancyBuckets     = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1}
)

// series is one named+labelled time series in a Registry. mu points at
// the owning registry's lock and guards every mutable field, so a
// scrape (Exposition/JSON) can run concurrently with writers.
type series struct {
	mu              *sync.Mutex
	name, help, typ string
	labels          []Attr

	value float64 // counter / gauge

	buckets []float64 // histogram upper bounds
	counts  []int64   // observations per bucket (len(buckets)+1, last is +Inf)
	sum     float64
	count   int64
}

// Counter is a monotonically increasing value. Nil-safe.
type Counter struct{ s *series }

// Add increases the counter by v (negative v is ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.s.mu.Lock()
	c.s.value += v
	c.s.mu.Unlock()
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.value
}

// Gauge is a value that can go up and down. Nil-safe.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.mu.Lock()
	g.s.value = v
	g.s.mu.Unlock()
}

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.s.mu.Lock()
	g.s.value += v
	g.s.mu.Unlock()
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.value
}

// Histogram counts observations into fixed buckets. Nil-safe.
type Histogram struct{ s *series }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	s := h.s
	s.mu.Lock()
	i := sort.SearchFloat64s(s.buckets, v) // first bucket with bound >= v
	s.counts[i]++
	s.sum += v
	s.count++
	s.mu.Unlock()
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.count
}

// Registry holds named metric series in registration order. Unlike the
// tracker it is safe for concurrent use: one registry-wide mutex
// guards registration and every series' values, so Exposition/JSON can
// be scraped from an HTTP handler while a run is writing. (Writers are
// token-serialized, so the lock is contended only during a scrape.)
// Nil-safe: every lookup on a nil *Registry returns a nil handle whose
// methods do nothing.
type Registry struct {
	mu     sync.Mutex
	series []*series
	index  map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*series{}}
}

func seriesKey(name string, labels []Attr) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + labelString(labels) + "}"
}

func labelString(labels []Attr) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return strings.Join(parts, ",")
}

// lookup finds or registers a series; callers must hold r.mu.
func (r *Registry) lookup(name, help, typ string, labels []Attr) *series {
	key := seriesKey(name, labels)
	if s, ok := r.index[key]; ok {
		return s
	}
	s := &series{mu: &r.mu, name: name, help: help, typ: typ, labels: labels}
	r.index[key] = s
	r.series = append(r.series, s)
	return s
}

// Counter returns (registering on first use) the counter with the
// given name and labels.
func (r *Registry) Counter(name, help string, labels ...Attr) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Counter{s: r.lookup(name, help, "counter", labels)}
}

// Gauge returns (registering on first use) the gauge with the given
// name and labels.
func (r *Registry) Gauge(name, help string, labels ...Attr) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Gauge{s: r.lookup(name, help, "gauge", labels)}
}

// Histogram returns (registering on first use) the histogram with the
// given name, bucket upper bounds, and labels.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Attr) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, "histogram", labels)
	if s.counts == nil {
		s.buckets = buckets
		s.counts = make([]int64, len(buckets)+1)
	}
	return &Histogram{s: s}
}

// Exposition renders the registry in the Prometheus text format.
// Series appear in registration order; # HELP / # TYPE headers are
// emitted once per metric name. Safe to call while writers are live.
func (r *Registry) Exposition() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	seen := map[string]bool{}
	for _, s := range r.series {
		if !seen[s.name] {
			seen[s.name] = true
			fmt.Fprintf(&b, "# HELP %s %s\n", s.name, s.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.typ)
		}
		switch s.typ {
		case "histogram":
			cum := int64(0)
			for i, ub := range s.buckets {
				cum += s.counts[i]
				fmt.Fprintf(&b, "%s_bucket{%s} %d\n", s.name,
					labelString(append(append([]Attr{}, s.labels...), A("le", formatBound(ub)))), cum)
			}
			cum += s.counts[len(s.buckets)]
			fmt.Fprintf(&b, "%s_bucket{%s} %d\n", s.name,
				labelString(append(append([]Attr{}, s.labels...), A("le", "+Inf"))), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, labelSuffix(s.labels), formatValue(s.sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.name, labelSuffix(s.labels), s.count)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, labelSuffix(s.labels), formatValue(s.value))
		}
	}
	return b.String()
}

func labelSuffix(labels []Attr) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + labelString(labels) + "}"
}

func formatBound(v float64) string { return formatValue(v) }

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// MetricJSON is one series in the registry's JSON dump.
type MetricJSON struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Count   int64             `json:"count,omitempty"`
	Buckets []BucketJSON      `json:"buckets,omitempty"`
}

// BucketJSON is one cumulative histogram bucket.
type BucketJSON struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// JSON renders the registry as a JSON array of series, in registration
// order. Safe to call while writers are live.
func (r *Registry) JSON() ([]byte, error) {
	out := []MetricJSON{}
	if r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		for _, s := range r.series {
			m := MetricJSON{Name: s.name, Type: s.typ}
			if len(s.labels) > 0 {
				m.Labels = map[string]string{}
				for _, l := range s.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			if s.typ == "histogram" {
				m.Sum, m.Count = s.sum, s.count
				cum := int64(0)
				for i, ub := range s.buckets {
					cum += s.counts[i]
					m.Buckets = append(m.Buckets, BucketJSON{LE: formatBound(ub), Count: cum})
				}
				cum += s.counts[len(s.buckets)]
				m.Buckets = append(m.Buckets, BucketJSON{LE: "+Inf", Count: cum})
			} else {
				m.Value = s.value
			}
			out = append(out, m)
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
