package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Some CPU @ 2.70GHz
BenchmarkFig1SmallR-8         	       1	     35366 ns/op	         3.950 relcost-DT-NB@5M
BenchmarkFig4Utilization-8    	       1	  43828083 ns/op	        98.60 util-%
BenchmarkPlain-8              	     100	      1234 ns/op
BenchmarkWithAllocs-8         	     100	      1234 ns/op	     512 B/op	       3 allocs/op
not a benchmark line
PASS
ok  	repro	12.007s
`

func TestParse(t *testing.T) {
	s, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(s.Benchmarks), s.Benchmarks)
	}
	fig1, ok := s.Benchmarks["BenchmarkFig1SmallR"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if fig1.NsPerOp != 35366 {
		t.Errorf("ns/op = %v, want 35366", fig1.NsPerOp)
	}
	if got := fig1.Metrics["relcost-DT-NB@5M"]; got != 3.950 {
		t.Errorf("custom metric = %v, want 3.950", got)
	}
	if got := s.Benchmarks["BenchmarkFig4Utilization"].Metrics["util-%"]; got != 98.60 {
		t.Errorf("util metric = %v, want 98.60", got)
	}
	if m := s.Benchmarks["BenchmarkPlain"].Metrics; m != nil {
		t.Errorf("plain benchmark grew metrics: %v", m)
	}
	// Memory counters are standard tooling output, not tracked metrics.
	if m := s.Benchmarks["BenchmarkWithAllocs"].Metrics; len(m) != 0 {
		t.Errorf("B/op and allocs/op leaked into metrics: %v", m)
	}
}

func TestDiff(t *testing.T) {
	old := &Snapshot{Benchmarks: map[string]Bench{
		"A": {NsPerOp: 100, Metrics: map[string]float64{"vsec": 50}},
		"B": {NsPerOp: 100},
		"C": {NsPerOp: 100, Metrics: map[string]float64{"vsec": 10}},
	}}
	cur := &Snapshot{Benchmarks: map[string]Bench{
		"A": {NsPerOp: 105, Metrics: map[string]float64{"vsec": 80}}, // metric drift 60%
		"B": {NsPerOp: 300},                                          // ns/op regression 200%
		// C missing entirely
	}}

	warnings := diff(old, cur, 15, true)
	if len(warnings) != 3 {
		t.Fatalf("got %d warnings, want 3:\n%s", len(warnings), strings.Join(warnings, "\n"))
	}
	for _, want := range []string{"A: vsec drifted", "B: ns/op regressed", "C: benchmark missing"} {
		found := false
		for _, w := range warnings {
			if strings.Contains(w, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no warning matching %q in:\n%s", want, strings.Join(warnings, "\n"))
		}
	}

	// Same snapshots, wall-clock comparison off: only the deterministic
	// metric and the missing benchmark should fire.
	warnings = diff(old, cur, 15, false)
	for _, w := range warnings {
		if strings.Contains(w, "ns/op") {
			t.Errorf("ns/op warning with -ns=false: %s", w)
		}
	}
	if len(warnings) != 2 {
		t.Fatalf("got %d warnings with -ns=false, want 2:\n%s", len(warnings), strings.Join(warnings, "\n"))
	}

	// Within threshold: quiet.
	if w := diff(old, old, 15, true); len(w) != 0 {
		t.Fatalf("self-diff produced warnings: %v", w)
	}
}

// TestDiffWarnsOnSnapshotGaps guards the guard: a benchmark or metric
// present in the current run but absent from the snapshot used to pass
// silently — every comparison loop iterated the snapshot's keys only —
// so a newly added quantity was never under regression watch.
func TestDiffWarnsOnSnapshotGaps(t *testing.T) {
	old := &Snapshot{Benchmarks: map[string]Bench{
		"A": {NsPerOp: 100, Metrics: map[string]float64{"vsec": 50}},
	}}
	cur := &Snapshot{Benchmarks: map[string]Bench{
		"A":   {NsPerOp: 100, Metrics: map[string]float64{"vsec": 50, "relcost": 2.5}},
		"New": {NsPerOp: 100},
	}}

	warnings := diff(old, cur, 15, true)
	if len(warnings) != 2 {
		t.Fatalf("got %d warnings, want 2:\n%s", len(warnings), strings.Join(warnings, "\n"))
	}
	for _, want := range []string{
		`A: metric "relcost" missing from snapshot`,
		"New: benchmark missing from snapshot",
	} {
		found := false
		for _, w := range warnings {
			if strings.Contains(w, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no warning matching %q in:\n%s", want, strings.Join(warnings, "\n"))
		}
	}

	// Identical key sets stay quiet — the gap warnings must not fire on
	// an up-to-date snapshot.
	if w := diff(old, old, 15, true); len(w) != 0 {
		t.Fatalf("self-diff produced warnings: %v", w)
	}
}
