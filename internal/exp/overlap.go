package exp

import (
	"fmt"
	"math"
	"time"

	tapejoin "repro"
)

// OverlapRow is one line of the device-overlap experiment: a method's
// whole-run critical path ("TOTAL") or one of its phases, with the
// bottleneck device and the fraction of device busy time hidden behind
// other devices. Concurrent methods earn their "C" by overlapping tape
// and disk I/O; sequential methods should report near-zero overlap
// outside the striped disk array's internal parallelism.
type OverlapRow struct {
	Method     string
	Phase      string // "TOTAL" or the phase (span) name
	Count      int    // span instances merged into the phase
	Wall       time.Duration
	Bottleneck string
	Busy       time.Duration // the bottleneck device's busy time
	Overlap    float64       // fraction of busy time overlapped, in [0, 1)

	// RealElapsed and RealOverlap are the measured wall-clock figures
	// on the file backend: how long the run actually took, and the
	// fraction of OS device busy time that ran concurrently across
	// devices. Zero on the virtual backend, and set only on TOTAL
	// rows. Unlike every virtual column they vary run to run.
	RealElapsed time.Duration
	RealOverlap float64
}

// overlapPace is the file-backend device-emulation speedup for the
// overlap experiment: the DLT4000's ~1.7 MB/s becomes ~170 MB/s, so
// a scaled-down run finishes in seconds while transfers still occupy
// enough wall-clock time to measure overlap above OS noise.
const overlapPace = 100

// Overlap runs all seven methods with the observability layer enabled
// and reports each method's per-phase critical path: which device
// bounds each phase, and how much device work the method overlaps.
// This is the structural claim behind the paper's Section 5
// "concurrent" variants, made measurable: CDT-* and CTT-GH should
// report higher whole-run overlap than DT-* and TT-GH.
//
// backend selects the storage backend ("sim" or "file"; "" means
// sim). On the file backend every transfer moves real bytes through
// per-device I/O workers, and the TOTAL rows additionally report real
// elapsed time and the measured wall-clock overlap fraction — the
// concurrent methods must then beat their sequential counterparts in
// actual seconds, not just virtual ones. File-backend runs pace the
// workers at the modeled device bandwidths sped up overlapPace×:
// local files are page-cache fast, so unpaced transfers finish in
// microseconds and there is nothing to overlap.
func Overlap(scale float64, backend string) ([]OverlapRow, error) {
	rMB := scaleMB(50, scale)
	sMB := scaleMB(200, scale)
	cfg := tapejoin.Config{
		Backend:  backend,
		MemoryMB: scaleMBf(16, math.Sqrt(scale)),
		DiskMB:   scaleMBf(120, scale),
		Observe:  true,
	}
	if backend == "file" {
		cfg.FilePace = overlapPace
	}
	var rows []OverlapRow
	for _, m := range tapejoin.Methods() {
		sys, r, s, err := buildJoin(cfg, rMB, sMB, 99)
		if err != nil {
			return nil, err
		}
		res, err := sys.Join(m, r, s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		rep := res.Report
		add := func(p tapejoin.PhaseReport) {
			row := OverlapRow{
				Method:     string(m),
				Phase:      p.Name,
				Count:      p.Count,
				Wall:       p.Wall,
				Bottleneck: p.Bottleneck,
				Busy:       p.BottleneckBusy,
				Overlap:    p.Overlap,
			}
			if p.Name == "TOTAL" {
				row.RealElapsed = res.Stats.WallElapsed
				row.RealOverlap = res.Stats.WallOverlap
			}
			rows = append(rows, row)
		}
		add(rep.Total)
		for _, p := range rep.Phases {
			add(p)
		}
	}
	return rows, nil
}

// FormatOverlap renders the overlap experiment as a table. Runs on
// the file backend grow two extra columns with the measured real
// elapsed time and wall-clock overlap of each TOTAL row.
func FormatOverlap(rows []OverlapRow) string {
	real := false
	for _, r := range rows {
		if r.RealElapsed > 0 {
			real = true
			break
		}
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		method := r.Method
		if r.Phase != "TOTAL" {
			method = "" // group phases under their method's TOTAL line
		}
		row := []string{
			method,
			r.Phase,
			fmt.Sprintf("%d", r.Count),
			secs(r.Wall),
			r.Bottleneck,
			secs(r.Busy),
			fmt.Sprintf("%.1f%%", r.Overlap*100),
		}
		if real {
			if r.RealElapsed > 0 {
				row = append(row,
					fmt.Sprintf("%.2fs", r.RealElapsed.Seconds()),
					fmt.Sprintf("%.1f%%", r.RealOverlap*100))
			} else {
				row = append(row, "", "")
			}
		}
		out = append(out, row)
	}
	hdr := []string{"Join", "Phase", "Count", "Wall", "Bottleneck", "Busy", "Overlap"}
	if real {
		hdr = append(hdr, "RealWall", "RealOvl")
	}
	return FormatTable(hdr, out)
}
