package sim

import (
	"errors"
	"testing"
	"time"
)

// worker stands in for a device worker: it performs op off the control
// token and posts the measured duration.
func worker(c *Completion, op func() error) {
	go func() {
		t0 := time.Now()
		err := op()
		c.Post(Duration(time.Since(t0)), err)
	}()
}

func TestAwaitChargesVirtualTime(t *testing.T) {
	k := NewKernel()
	var got Duration
	k.Spawn("io", func(p *Proc) {
		c := p.StartIO("read")
		worker(c, func() error { time.Sleep(5 * time.Millisecond); return nil })
		d, err := p.Await(c)
		if err != nil {
			t.Errorf("Await err = %v", err)
		}
		got = d
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got < 5*time.Millisecond {
		t.Errorf("measured %v, want >= 5ms", got)
	}
	if Duration(k.Now()) != got {
		t.Errorf("virtual clock %v, want the measured duration %v", k.Now(), got)
	}
	if k.IOPending() != 0 {
		t.Errorf("IOPending = %d after drain", k.IOPending())
	}
}

func TestAwaitPropagatesError(t *testing.T) {
	k := NewKernel()
	boom := errors.New("boom")
	k.Spawn("io", func(p *Proc) {
		c := p.StartIO("write")
		worker(c, func() error { return boom })
		if _, err := p.Await(c); !errors.Is(err, boom) {
			t.Errorf("Await err = %v, want boom", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestAwaitAfterPost covers the proc doing other work between StartIO
// and Await: the completion is integrated while the proc holds or
// runs, and Await must still charge the operation's [start, start+d]
// window — here entirely covered by the longer Hold, so Await adds
// nothing.
func TestAwaitAfterPost(t *testing.T) {
	k := NewKernel()
	k.Spawn("io", func(p *Proc) {
		c := p.StartIO("prefetch")
		worker(c, func() error { time.Sleep(2 * time.Millisecond); return nil })
		p.Hold(time.Hour) // wall I/O finishes long before this virtual hold
		before := p.Now()
		if _, err := p.Await(c); err != nil {
			t.Errorf("Await err = %v", err)
		}
		if p.Now() != before {
			t.Errorf("Await advanced the clock %v past the covering hold", p.Now()-before)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestAwaitOverlapsWallClock is the point of the whole extension: two
// procs awaiting I/O on independent workers must overlap in wall-clock
// time, so the elapsed wall time is near max(a, b), not a+b.
func TestAwaitOverlapsWallClock(t *testing.T) {
	k := NewKernel()
	const d = 40 * time.Millisecond
	io := func(name string) {
		k.Spawn(name, func(p *Proc) {
			c := p.StartIO(name)
			worker(c, func() error { time.Sleep(d); return nil })
			if _, err := p.Await(c); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		})
	}
	io("devA")
	io("devB")
	t0 := time.Now()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(t0); wall > 2*d-5*time.Millisecond {
		t.Errorf("wall elapsed %v: the two %v operations did not overlap", wall, d)
	}
	// In virtual time both ops start at t=0, so the clock ends at the
	// slower one, not the sum.
	if now := Duration(k.Now()); now < d || now > 2*d-5*time.Millisecond {
		t.Errorf("virtual clock %v, want within [%v, <%v)", now, d, 2*d)
	}
}

// TestUnawaitedCompletionStillDrains: a proc that starts I/O and exits
// without awaiting must not wedge Run — the kernel waits for the
// outstanding post, integrates it, and finishes.
func TestUnawaitedCompletionStillDrains(t *testing.T) {
	k := NewKernel()
	k.Spawn("fire-and-forget", func(p *Proc) {
		c := p.StartIO("flush")
		worker(c, func() error { time.Sleep(2 * time.Millisecond); return nil })
	})
	done := make(chan error, 1)
	go func() { done <- k.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not finish with an unawaited completion outstanding")
	}
}

// TestAsyncDoesNotPerturbPureVirtualRuns: a simulation with no
// external I/O must schedule byte-identically to the pre-async kernel
// (guarded here by event count + final clock against a mixed workload
// run twice).
func TestAsyncDeterministicWithoutIO(t *testing.T) {
	runOnce := func() (Time, int64) {
		k := NewKernel()
		r := NewResource(k, "dev", 1)
		for i := 0; i < 3; i++ {
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 4; j++ {
					r.Acquire(p)
					p.Hold(time.Duration(j+1) * time.Second)
					r.Release(p)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now(), k.EventsProcessed
	}
	t1, e1 := runOnce()
	t2, e2 := runOnce()
	if t1 != t2 || e1 != e2 {
		t.Errorf("nondeterministic schedule: (%v,%d) vs (%v,%d)", t1, e1, t2, e2)
	}
}
