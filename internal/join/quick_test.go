package join

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/tape"
)

// TestQuickAllMethodsAgreeOnRandomConfigs drives randomized relation
// sizes, key spaces and resource budgets through every join method:
// all feasible methods must produce the identical match count and
// order-independent key checksum, equal to the generator's analytic
// expectation. Infeasible configurations must fail with a typed error,
// never a deadlock or wrong answer.
func TestQuickAllMethodsAgreeOnRandomConfigs(t *testing.T) {
	f := func(rSeed, sSeed uint8, mSeed, dSeed uint16, keySeed uint16) bool {
		rBlocks := int64(rSeed%20) + 4 // 4..23
		sBlocks := rBlocks * (2 + int64(sSeed%3))
		m := int64(mSeed%24) + 4 // 4..27
		d := int64(dSeed%96) + 8 // 8..103
		keySpace := uint64(keySeed%500) + 20

		mkSpec := func() Spec {
			mR := tape.NewMedia("qr", rBlocks+sBlocks+64)
			mS := tape.NewMedia("qs", sBlocks+rBlocks+64)
			r, err := relation.WriteToTape(relation.Config{
				Name: "R", Tag: 1, Blocks: rBlocks, TuplesPerBlock: 3,
				KeySpace: keySpace, Seed: int64(rSeed) + 1,
			}, mR)
			if err != nil {
				t.Fatal(err)
			}
			s, err := relation.WriteToTape(relation.Config{
				Name: "S", Tag: 2, Blocks: sBlocks, TuplesPerBlock: 3,
				KeySpace: keySpace, Seed: int64(sSeed) + 1000,
			}, mS)
			if err != nil {
				t.Fatal(err)
			}
			return Spec{R: r, S: s}
		}
		want := relation.ExpectedMatches(mkSpec().R, mkSpec().S)

		var keySum uint64
		haveKeySum := false
		for _, m2 := range Methods() {
			spec := mkSpec()
			res := fastRes(m, d)
			sink := &CountSink{}
			_, err := Run(m2, spec, res, sink)
			if err != nil {
				// Must be a typed feasibility error.
				if errors.Is(err, ErrNeedDiskForR) || errors.Is(err, ErrNeedMemory) ||
					errors.Is(err, ErrNeedTapeScratch) || errors.Is(err, ErrNeedDisk) {
					continue
				}
				t.Logf("%s on R=%d S=%d M=%d D=%d key=%d: %v",
					m2.Symbol(), rBlocks, sBlocks, m, d, keySpace, err)
				return false
			}
			if sink.Matches != want {
				t.Logf("%s: %d matches, want %d (R=%d S=%d M=%d D=%d)",
					m2.Symbol(), sink.Matches, want, rBlocks, sBlocks, m, d)
				return false
			}
			if haveKeySum && sink.KeySum != keySum {
				t.Logf("%s: checksum mismatch", m2.Symbol())
				return false
			}
			keySum, haveKeySum = sink.KeySum, true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSkewedConfigsStayExact repeats the agreement check with
// heavily skewed keys, exercising the bucket-overflow fallback.
func TestQuickSkewedConfigsStayExact(t *testing.T) {
	f := func(seed uint8, hotP uint8) bool {
		// Strictly positive: Validate rejects HotFraction > 0 with
		// HotProb == 0 as an inconsistent skew spec.
		hotProb := float64(hotP%90+1) / 100
		mkSpec := func() Spec {
			mR := tape.NewMedia("qr", 512)
			mS := tape.NewMedia("qs", 512)
			r, err := relation.WriteToTape(relation.Config{
				Name: "R", Tag: 1, Blocks: 20, TuplesPerBlock: 4, KeySpace: 300,
				HotFraction: 0.01, HotProb: hotProb, Seed: int64(seed),
			}, mR)
			if err != nil {
				t.Fatal(err)
			}
			s, err := relation.WriteToTape(relation.Config{
				Name: "S", Tag: 2, Blocks: 80, TuplesPerBlock: 4, KeySpace: 300,
				HotFraction: 0.01, HotProb: hotProb / 2, Seed: int64(seed) + 99,
			}, mS)
			if err != nil {
				t.Fatal(err)
			}
			return Spec{R: r, S: s}
		}
		want := relation.ExpectedMatches(mkSpec().R, mkSpec().S)
		for _, sym := range []string{"DT-GH", "CDT-GH", "CTT-GH"} {
			m, _ := BySymbol(sym)
			sink := &CountSink{}
			if _, err := Run(m, mkSpec(), fastRes(8, 80), sink); err != nil {
				t.Logf("%s: %v", sym, err)
				return false
			}
			if sink.Matches != want {
				t.Logf("%s: %d != %d (hotProb %.2f)", sym, sink.Matches, want, hotProb)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
