package tape

import (
	"fmt"

	"repro/internal/block"
)

// Medium is what a tape drive mounts: one cartridge, or an ordered set
// of cartridges behind a media robot presenting a single linear block
// address space. The paper assumes each relation fits on one tape
// "without loss of generality" because exchanges (~30 s) are
// negligible against multi-hour scans; MultiVolume lets that
// assumption be tested rather than taken.
type Medium interface {
	// Name identifies the medium.
	Name() string
	// Capacity is the total block capacity.
	Capacity() int64
	// EOD is the end-of-data address.
	EOD() Addr
	// Free is the remaining scratch space in blocks.
	Free() int64
	// ReadSetup, AppendSetup and WriteSetup move data outside
	// simulated time (preparing inputs, verifying outputs, and the
	// file backend's medium-of-record bookkeeping).
	ReadSetup(r Region) ([]block.Block, error)
	AppendSetup(blks []block.Block) (Region, error)
	WriteSetup(addr Addr, blks []block.Block) error

	// read, append and writeAt are the in-simulation accessors used
	// by Drive.
	read(addr Addr, n int64) ([]block.Block, error)
	append(blks []block.Block) (Region, error)
	writeAt(addr Addr, blks []block.Block) error
	// volumeOf maps a block address to the cartridge holding it, and
	// volumeSpan returns that cartridge's address range. A single
	// cartridge is volume 0 spanning everything.
	volumeOf(addr Addr) int
	volumeSpan(vol int) Region
}

var _ Medium = (*Media)(nil)

// volumeOf implements Medium: a single cartridge is one volume.
func (m *Media) volumeOf(Addr) int { return 0 }

// volumeSpan implements Medium.
func (m *Media) volumeSpan(int) Region { return Region{Start: 0, N: m.capacity} }

// MultiVolume is an ordered set of cartridges presenting one linear
// address space: block a lives on the volume whose capacity prefix
// contains a, and appends fill volumes in order. A Drive mounted on a
// MultiVolume charges a media-exchange delay whenever a request moves
// the head across a cartridge boundary.
type MultiVolume struct {
	name string
	vols []*Media
	// prefix[i] is the first address of volume i; prefix[len] = total.
	prefix []Addr
}

var _ Medium = (*MultiVolume)(nil)

// NewMultiVolume builds a volume set over the given cartridges.
func NewMultiVolume(name string, vols ...*Media) (*MultiVolume, error) {
	if len(vols) == 0 {
		return nil, fmt.Errorf("tape: volume set %q needs at least one cartridge", name)
	}
	mv := &MultiVolume{name: name, vols: vols}
	mv.prefix = make([]Addr, len(vols)+1)
	for i, v := range vols {
		if v.EOD() != 0 && i > 0 && vols[i-1].Free() != 0 {
			return nil, fmt.Errorf("tape: volume set %q: volume %d has data behind free space", name, i)
		}
		mv.prefix[i+1] = mv.prefix[i] + Addr(v.Capacity())
	}
	return mv, nil
}

// Name implements Medium.
func (mv *MultiVolume) Name() string { return mv.name }

// Volumes returns the number of cartridges.
func (mv *MultiVolume) Volumes() int { return len(mv.vols) }

// Capacity implements Medium.
func (mv *MultiVolume) Capacity() int64 {
	return int64(mv.prefix[len(mv.vols)])
}

// EOD implements Medium: total data across volumes. Volumes fill in
// order, so EOD is the filled prefix plus the first non-full volume's
// data.
func (mv *MultiVolume) EOD() Addr {
	var eod Addr
	for i, v := range mv.vols {
		eod = mv.prefix[i] + v.EOD()
		if v.Free() > 0 {
			break
		}
	}
	return eod
}

// Free implements Medium.
func (mv *MultiVolume) Free() int64 { return int64(mv.Capacity()) - int64(mv.EOD()) }

// volumeOf implements Medium.
func (mv *MultiVolume) volumeOf(addr Addr) int {
	for i := 1; i <= len(mv.vols); i++ {
		if addr < mv.prefix[i] {
			return i - 1
		}
	}
	return len(mv.vols) - 1
}

// volumeSpan implements Medium.
func (mv *MultiVolume) volumeSpan(vol int) Region {
	return Region{Start: mv.prefix[vol], N: int64(mv.prefix[vol+1] - mv.prefix[vol])}
}

// read implements Medium, splitting across volumes as needed.
func (mv *MultiVolume) read(addr Addr, n int64) ([]block.Block, error) {
	if addr < 0 || n < 0 || addr+Addr(n) > mv.EOD() {
		return nil, fmt.Errorf("tape: read [%d,%d) beyond EOD %d on %q", addr, addr+Addr(n), mv.EOD(), mv.name)
	}
	out := make([]block.Block, 0, n)
	for n > 0 {
		vol := mv.volumeOf(addr)
		local := addr - mv.prefix[vol]
		take := n
		if rest := int64(mv.vols[vol].Capacity()) - int64(local); take > rest {
			take = rest
		}
		blks, err := mv.vols[vol].read(local, take)
		if err != nil {
			return nil, err
		}
		out = append(out, blks...)
		addr += Addr(take)
		n -= take
	}
	return out, nil
}

// append implements Medium, filling volumes in order.
func (mv *MultiVolume) append(blks []block.Block) (Region, error) {
	if int64(len(blks)) > mv.Free() {
		return Region{}, fmt.Errorf("%w: %q has %d free, need %d", ErrTapeFull, mv.name, mv.Free(), len(blks))
	}
	start := mv.EOD()
	rest := blks
	for len(rest) > 0 {
		vol := mv.volumeOf(mv.EOD())
		v := mv.vols[vol]
		take := int64(len(rest))
		if free := v.Free(); take > free {
			take = free
		}
		if take == 0 {
			return Region{}, fmt.Errorf("tape: volume set %q: no space on volume %d", mv.name, vol)
		}
		if _, err := v.append(rest[:take]); err != nil {
			return Region{}, err
		}
		rest = rest[take:]
	}
	return Region{Start: start, N: int64(len(blks))}, nil
}

// writeAt implements Medium, splitting across volumes. Overwrites may
// not leave gaps within any volume.
func (mv *MultiVolume) writeAt(addr Addr, blks []block.Block) error {
	if addr < 0 || addr > mv.EOD() {
		return fmt.Errorf("tape: write at %d beyond EOD %d on %q", addr, mv.EOD(), mv.name)
	}
	rest := blks
	for len(rest) > 0 {
		vol := mv.volumeOf(addr)
		local := addr - mv.prefix[vol]
		take := int64(len(rest))
		if room := int64(mv.vols[vol].Capacity()) - int64(local); take > room {
			take = room
		}
		if take == 0 {
			return fmt.Errorf("%w: %q write past capacity", ErrTapeFull, mv.name)
		}
		if err := mv.vols[vol].writeAt(local, rest[:take]); err != nil {
			return err
		}
		rest = rest[take:]
		addr += Addr(take)
	}
	return nil
}

// ReadSetup implements Medium.
func (mv *MultiVolume) ReadSetup(r Region) ([]block.Block, error) {
	return mv.read(r.Start, r.N)
}

// AppendSetup implements Medium.
func (mv *MultiVolume) AppendSetup(blks []block.Block) (Region, error) {
	return mv.append(blks)
}

// WriteSetup implements Medium.
func (mv *MultiVolume) WriteSetup(addr Addr, blks []block.Block) error {
	return mv.writeAt(addr, blks)
}
