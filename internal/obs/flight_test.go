package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record("health", "disk", "failed")
	f.RecordV(sim.Time(time.Second), "span-open", "stage-S", "p1")
	if got := f.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot = %v", got)
	}
	if f.Total() != 0 {
		t.Fatalf("nil recorder total = %d", f.Total())
	}
}

func TestFlightRecorderOrderingBeforeWrap(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		f.Record("retry", "disk", fmt.Sprintf("attempt %d", i))
	}
	evs := f.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Detail != fmt.Sprintf("attempt %d", i) {
			t.Errorf("event %d out of order: %+v", i, ev)
		}
		if i > 0 && ev.WallS < evs[i-1].WallS {
			t.Errorf("wall time went backwards at %d: %v < %v", i, ev.WallS, evs[i-1].WallS)
		}
	}
	if f.Total() != 5 {
		t.Errorf("total = %d, want 5", f.Total())
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	const capacity = 8
	f := NewFlightRecorder(capacity)
	const n = 3*capacity + 5 // wrap a few times, land mid-ring
	for i := 0; i < n; i++ {
		f.RecordV(sim.Time(i)*sim.Time(time.Millisecond), "span-open", "phase", fmt.Sprintf("%d", i))
	}
	evs := f.Snapshot()
	if len(evs) != capacity {
		t.Fatalf("got %d events, want the ring's %d", len(evs), capacity)
	}
	// The snapshot is the newest `capacity` events, oldest-first, with
	// contiguous sequence numbers ending at the total.
	for i, ev := range evs {
		want := uint64(n - capacity + i + 1)
		if ev.Seq != want {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, want)
		}
		if ev.Detail != fmt.Sprintf("%d", want-1) {
			t.Errorf("event %d: detail %q does not match seq %d", i, ev.Detail, ev.Seq)
		}
	}
	if f.Total() != n {
		t.Errorf("total = %d, want %d", f.Total(), n)
	}
	// Drop count is recoverable: Total - len(Snapshot).
	if dropped := f.Total() - uint64(len(evs)); dropped != n-capacity {
		t.Errorf("dropped = %d, want %d", dropped, n-capacity)
	}
}

func TestFlightRecorderConcurrentWritersAndSnapshots(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record("retry", fmt.Sprintf("disk%d", w), "concurrent write")
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				evs := f.Snapshot()
				for j := 1; j < len(evs); j++ {
					if evs[j].Seq <= evs[j-1].Seq {
						t.Errorf("snapshot not seq-ordered: %d after %d", evs[j].Seq, evs[j-1].Seq)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if f.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", f.Total())
	}
}

func TestWriteFlightJSONL(t *testing.T) {
	f := NewFlightRecorder(4)
	f.RecordV(sim.Time(2*time.Second), "health", "disk0", "degraded")
	f.Record("timeout", "disk0", "op exceeded 5ms deadline")
	var buf bytes.Buffer
	if err := WriteFlightJSONL(&buf, f.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var ev FlightEvent
	if err := json.Unmarshal(lines[0], &ev); err != nil {
		t.Fatalf("line 0 invalid JSON: %v", err)
	}
	if ev.Kind != "health" || ev.Name != "disk0" || ev.VirtualS != 2 {
		t.Errorf("decoded event = %+v", ev)
	}
	// Off-token events carry no virtual stamp: the field is omitted.
	if bytes.Contains(lines[1], []byte("virtual_s")) {
		t.Errorf("wall-only event leaked a virtual stamp: %s", lines[1])
	}
}
