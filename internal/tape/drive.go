package tape

import (
	"fmt"
	"time"

	"repro/internal/block"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DriveConfig sets the performance model of a simulated tape drive.
type DriveConfig struct {
	// NativeRate is the sustained transfer rate in bytes per second at
	// compression factor 1.0.
	NativeRate float64
	// CompressionFactor scales the effective rate: data that is 25%
	// compressible streams ~1.33x faster, 50% compressible ~2x faster
	// (Section 9 of the paper). Must be >= 1.
	CompressionFactor float64
	// SeekFixed is the fixed component of a repositioning seek
	// (locate command issue, head settle).
	SeekFixed sim.Duration
	// SeekPerBlock is the distance-dependent seek component per block
	// of travel. On serpentine drives long files rewind fast, so this
	// is small but nonzero.
	SeekPerBlock sim.Duration
	// StartStopPenalty is charged when a sequential transfer resumes
	// after the drive has stopped streaming. The paper's model assumes
	// the drive buffer hides these (zero); the calibrated DLT-4000
	// profile charges them.
	StartStopPenalty sim.Duration
	// StartStopHide is the longest idle gap the drive's internal
	// read-ahead buffer absorbs; only gaps beyond it break streaming
	// and incur StartStopPenalty (the Section 3.2 assumption that
	// "the tape drive has enough buffer memory to hide these delays",
	// bounded by a real buffer size).
	StartStopHide sim.Duration
	// ExchangeTime is the robot media-exchange delay charged when a
	// request moves the head to a different cartridge of a
	// MultiVolume medium (the paper's ~30 s per exchange, Section
	// 3.2).
	ExchangeTime sim.Duration
	// BiDirectional enables ReadReverse: reading toward the beginning
	// of tape without repositioning, the optional SCSI READ REVERSE
	// of the paper's footnote 2.
	BiDirectional bool
}

// EffectiveRate returns bytes/second after compression scaling.
func (c DriveConfig) EffectiveRate() float64 { return c.NativeRate * c.CompressionFactor }

// Validate reports configuration errors.
func (c DriveConfig) Validate() error {
	if c.NativeRate <= 0 {
		return fmt.Errorf("tape: NativeRate %v <= 0", c.NativeRate)
	}
	if c.CompressionFactor < 1 {
		return fmt.Errorf("tape: CompressionFactor %v < 1", c.CompressionFactor)
	}
	if c.SeekFixed < 0 || c.SeekPerBlock < 0 || c.StartStopPenalty < 0 ||
		c.StartStopHide < 0 || c.ExchangeTime < 0 {
		return fmt.Errorf("tape: negative delay in config")
	}
	return nil
}

// DLT4000 returns a drive profile calibrated against the paper's
// experimental platform (Quantum DLT-4000, 20 GB mode). The native
// rate is chosen so that 25%-compressible data streams at ~1.676 MB/s,
// which reproduces the bare-read times of Table 3.
func DLT4000() DriveConfig {
	return DriveConfig{
		NativeRate:        1.257e6,
		CompressionFactor: 1.33,
		SeekFixed:         20 * time.Second,
		SeekPerBlock:      150 * time.Microsecond, // ~48 s across a full 20 GB tape
		StartStopPenalty:  1500 * time.Millisecond,
		StartStopHide:     2 * time.Second,
		ExchangeTime:      30 * time.Second,
	}
}

// Ideal returns a drive profile implementing the paper's simplified
// cost model exactly: pure transfer cost, no seeks, no stop/start
// penalties, free media exchanges. Rate matches DLT4000 at the same
// compression factor.
func Ideal() DriveConfig {
	return DriveConfig{NativeRate: 1.257e6, CompressionFactor: 1.33}
}

// DriveStats accumulates device activity for a run.
type DriveStats struct {
	BlocksRead    int64
	BlocksWritten int64
	Requests      int64
	Seeks         int64
	SeekTime      sim.Duration
	TransferTime  sim.Duration
	StartStops    int64
	StartStopTime sim.Duration
	Exchanges     int64
	ExchangeTime  sim.Duration
	// Fault-injection activity (see internal/fault).
	Stalls         int64
	StallTime      sim.Duration
	InjectedFaults int64
}

// Drive is a simulated tape drive. A drive serves one request at a
// time (FIFO): concurrent processes sharing a drive serialize on it,
// which is how read/append contention on one cartridge costs time.
type Drive struct {
	name  string
	k     *sim.Kernel
	cfg   DriveConfig
	res   *sim.Resource
	media Medium

	pos     Addr     // head position
	curVol  int      // cartridge currently in the drive
	lastEnd sim.Time // virtual time the last transfer finished
	started bool     // at least one transfer has run
	reverse bool     // head is oriented for reverse reading

	inj    fault.Injector // optional fault schedule
	lost   bool           // an injected drive failure killed the transport
	shared *transport     // non-nil when two drives share one transport

	rec   *trace.Recorder
	met   driveMetrics
	Stats DriveStats
}

// driveMetrics are the per-drive series exported to an obs.Registry.
// The handles are nil-safe, so instrumentation calls unconditionally.
type driveMetrics struct {
	blocksRead    *obs.Counter
	blocksWritten *obs.Counter
	seeks         *obs.Counter
	exchanges     *obs.Counter
	latency       *obs.Histogram
}

// NewDrive returns a drive attached to the kernel with the given
// profile and no cartridge loaded.
func NewDrive(k *sim.Kernel, name string, cfg DriveConfig) *Drive {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Drive{name: name, k: k, cfg: cfg, res: sim.NewResource(k, "tape:"+name, 1)}
}

// Name returns the drive name.
func (d *Drive) Name() string { return d.name }

// Config returns the drive profile.
func (d *Drive) Config() DriveConfig { return d.cfg }

// Media returns the mounted medium, or nil.
func (d *Drive) Media() Medium { return d.media }

// Load mounts a medium and positions the head at block 0. The paper
// assumes tapes are loaded before the join begins, so Load costs no
// virtual time.
func (d *Drive) Load(m Medium) {
	d.media = m
	d.pos = 0
	d.curVol = 0
	d.started = false
	d.reverse = false
}

// SetRecorder attaches an event recorder (nil disables tracing).
func (d *Drive) SetRecorder(r *trace.Recorder) { d.rec = r }

// SetMetrics registers this drive's counters and request-latency
// histogram in reg (nil detaches).
func (d *Drive) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		d.met = driveMetrics{}
		return
	}
	l := obs.A("drive", d.name)
	d.met = driveMetrics{
		blocksRead:    reg.Counter("tape_blocks_read_total", "Blocks read from tape.", l),
		blocksWritten: reg.Counter("tape_blocks_written_total", "Blocks written to tape.", l),
		seeks:         reg.Counter("tape_seeks_total", "Head repositioning seeks.", l),
		exchanges:     reg.Counter("tape_exchanges_total", "Robot cartridge exchanges.", l),
		latency: reg.Histogram("tape_request_seconds",
			"Virtual latency of tape requests, queueing included.", obs.DeviceLatencyBuckets, l),
	}
}

// observe records a completed request's latency, measured from entry
// (queueing on the drive included) to completion.
func (d *Drive) observe(p *sim.Proc, t0 sim.Time) {
	d.met.latency.Observe(sim.Duration(p.Now() - t0).Seconds())
}

// record emits a trace event spanning [from, now], stamped with the
// issuing process's phase span.
func (d *Drive) record(p *sim.Proc, kind trace.Kind, from sim.Time, blocks int64) {
	d.rec.AddFor(p, trace.Event{
		Device: "tape:" + d.name, Kind: kind,
		Start: from, End: p.Now(), Blocks: blocks,
	})
}

// BusyTime returns total virtual time the drive was held.
func (d *Drive) BusyTime() sim.Duration { return d.res.BusyTime }

// TransferTime returns the virtual time for moving n blocks at the
// effective rate.
func (d *Drive) TransferTime(n int64) sim.Duration {
	bytes := float64(n) * block.VirtualSize
	return sim.Duration(bytes / d.cfg.EffectiveRate() * float64(time.Second))
}

// exchangeTo swaps cartridges when addr lives on a different volume,
// charging the robot exchange delay.
func (d *Drive) exchangeTo(p *sim.Proc, addr Addr) {
	vol := d.media.volumeOf(addr)
	if vol == d.curVol {
		return
	}
	if d.cfg.ExchangeTime > 0 {
		t0 := p.Now()
		p.Hold(d.cfg.ExchangeTime)
		d.record(p, trace.TapeExchange, t0, 0)
	}
	d.Stats.Exchanges++
	d.Stats.ExchangeTime += d.cfg.ExchangeTime
	d.met.exchanges.Inc()
	d.curVol = vol
	// A fresh cartridge starts at its first block.
	d.pos = d.media.volumeSpan(vol).Start
	d.started = false
}

// seekWithin charges a head repositioning within the current volume.
func (d *Drive) seekWithin(p *sim.Proc, addr Addr) {
	if addr == d.pos {
		return
	}
	dist := int64(addr - d.pos)
	if dist < 0 {
		dist = -dist
	}
	st := d.cfg.SeekFixed + sim.Duration(dist)*d.cfg.SeekPerBlock
	if st > 0 {
		d.Stats.Seeks++
		d.Stats.SeekTime += st
		d.met.seeks.Inc()
		t0 := p.Now()
		p.Hold(st)
		d.record(p, trace.TapeSeek, t0, 0)
	}
	d.pos = addr
}

// position moves the head to addr (exchanging cartridges if needed)
// and charges a stop/start penalty when a forward stream resumes after
// an idle gap the drive buffer cannot hide.
func (d *Drive) position(p *sim.Proc, addr Addr, wantReverse bool) {
	d.exchangeTo(p, addr)
	if addr != d.pos || d.reverse != wantReverse {
		d.seekWithin(p, addr)
		d.reverse = wantReverse
		return
	}
	if d.started && d.cfg.StartStopPenalty > 0 &&
		p.Now() > d.lastEnd+sim.Time(d.cfg.StartStopHide) {
		d.Stats.StartStops++
		d.Stats.StartStopTime += d.cfg.StartStopPenalty
		p.Hold(d.cfg.StartStopPenalty)
	}
}

// transferSegments walks the volume-contiguous segments of [addr,
// addr+n), charging exchanges between them and the transfer time of
// each.
func (d *Drive) transferSegments(p *sim.Proc, addr Addr, n int64, kind trace.Kind) {
	for n > 0 {
		d.position(p, addr, false)
		span := d.media.volumeSpan(d.curVol)
		take := n
		if rest := int64(span.End() - addr); take > rest {
			take = rest
		}
		t := d.TransferTime(take)
		t0 := p.Now()
		p.Hold(t)
		d.record(p, kind, t0, take)
		d.Stats.TransferTime += t
		addr += Addr(take)
		n -= take
		d.pos = addr
		d.lastEnd = p.Now()
		d.started = true
	}
}

// checkRead validates a read request against the mounted medium: the
// requested range must lie entirely within recorded data. Returning a
// typed error here (rather than trusting the medium to reject it)
// keeps out-of-range requests from reaching the positioning model,
// and gives file-backed drives the same contract without relying on
// OS short-read behavior.
func (d *Drive) checkRead(addr Addr, n int64) error {
	if d.media == nil {
		return fmt.Errorf("tape: drive %q has no cartridge", d.name)
	}
	if eod := d.media.EOD(); addr < 0 || n < 0 || addr+Addr(n) > eod {
		return fmt.Errorf("tape: drive %q read [%d,%d) out of range [0,%d)",
			d.name, addr, addr+Addr(n), eod)
	}
	return nil
}

// ReadAt reads n blocks starting at addr, holding the drive for
// seeks, exchanges and transfer time, and returns the block data.
func (d *Drive) ReadAt(p *sim.Proc, addr Addr, n int64) ([]block.Block, error) {
	if err := d.checkRead(addr, n); err != nil {
		return nil, err
	}
	t0 := p.Now()
	d.res.Acquire(p)
	defer d.res.Release(p)
	d.switchIn(p)
	corrupt, err := d.consult(p, false, addr, n)
	if err != nil {
		return nil, err
	}
	data, err := d.media.read(addr, n)
	if err != nil {
		return nil, err
	}
	d.transferSegments(p, addr, n, trace.TapeRead)
	d.Stats.Requests++
	d.Stats.BlocksRead += n
	d.met.blocksRead.Add(float64(n))
	d.observe(p, t0)
	if corrupt {
		corruptDelivered(data)
	}
	return data, nil
}

// ReadRegion reads an entire region.
func (d *Drive) ReadRegion(p *sim.Proc, r Region) ([]block.Block, error) {
	return d.ReadAt(p, r.Start, r.N)
}

// ReadRegionReverse reads a region while the head travels backward,
// avoiding the repositioning seek when the head already sits at the
// region's end — the paper's footnote-2 optimization for algorithms
// that are independent of scan direction. The blocks are returned in
// forward order. Requires a BiDirectional drive.
func (d *Drive) ReadRegionReverse(p *sim.Proc, r Region) ([]block.Block, error) {
	if err := d.checkRead(r.Start, r.N); err != nil {
		return nil, err
	}
	if !d.cfg.BiDirectional {
		return nil, fmt.Errorf("tape: drive %q cannot read in reverse", d.name)
	}
	t0 := p.Now()
	d.res.Acquire(p)
	defer d.res.Release(p)
	d.switchIn(p)
	corrupt, err := d.consult(p, false, r.Start, r.N)
	if err != nil {
		return nil, err
	}
	data, err := d.media.read(r.Start, r.N)
	if err != nil {
		return nil, err
	}
	if corrupt {
		defer corruptDelivered(data)
	}
	// Reverse reading starts at the region's end: position there
	// (free when the head is already there) and stream backward.
	end := r.End()
	d.exchangeTo(p, end)
	if d.pos != end || !d.reverse {
		// Turning around is free on a serpentine drive; moving isn't.
		if d.pos != end {
			d.seekWithin(p, end)
		}
		d.reverse = true
	}
	t := d.TransferTime(r.N)
	tx := p.Now()
	p.Hold(t)
	d.record(p, trace.TapeRead, tx, r.N)
	d.Stats.TransferTime += t
	d.pos = r.Start
	d.lastEnd = p.Now()
	d.started = true
	d.Stats.Requests++
	d.Stats.BlocksRead += r.N
	d.met.blocksRead.Add(float64(r.N))
	d.observe(p, t0)
	return data, nil
}

// Append writes blocks at the end of data (the tape's scratch space),
// holding the drive for the seek to EOD plus the transfer, and returns
// the region written.
func (d *Drive) Append(p *sim.Proc, blks []block.Block) (Region, error) {
	if d.media == nil {
		return Region{}, fmt.Errorf("tape: drive %q has no cartridge", d.name)
	}
	t0 := p.Now()
	d.res.Acquire(p)
	defer d.res.Release(p)
	d.switchIn(p)
	eod := d.media.EOD()
	if _, err := d.consult(p, true, eod, int64(len(blks))); err != nil {
		return Region{}, err
	}
	reg, err := d.media.append(blks)
	if err != nil {
		return Region{}, err
	}
	d.transferSegments(p, eod, reg.N, trace.TapeWrite)
	d.Stats.Requests++
	d.Stats.BlocksWritten += reg.N
	d.met.blocksWritten.Add(float64(reg.N))
	d.observe(p, t0)
	return reg, nil
}

// WriteAt overwrites n blocks starting at addr (extending end of data
// when the write runs past it), charging seeks, exchanges and transfer
// time. Used by algorithms that reuse fixed tape workspaces, e.g. the
// sort-merge baseline's ping-pong merge passes.
func (d *Drive) WriteAt(p *sim.Proc, addr Addr, blks []block.Block) error {
	if d.media == nil {
		return fmt.Errorf("tape: drive %q has no cartridge", d.name)
	}
	t0 := p.Now()
	d.res.Acquire(p)
	defer d.res.Release(p)
	d.switchIn(p)
	if _, err := d.consult(p, true, addr, int64(len(blks))); err != nil {
		return err
	}
	if err := d.media.writeAt(addr, blks); err != nil {
		return err
	}
	d.transferSegments(p, addr, int64(len(blks)), trace.TapeWrite)
	d.Stats.Requests++
	d.Stats.BlocksWritten += int64(len(blks))
	d.met.blocksWritten.Add(float64(int64(len(blks))))
	d.observe(p, t0)
	return nil
}

// Rewind repositions the head to block 0 of the current cartridge,
// charging seek time.
func (d *Drive) Rewind(p *sim.Proc) {
	d.res.Acquire(p)
	defer d.res.Release(p)
	start := d.media.volumeSpan(d.curVol).Start
	d.seekWithin(p, start)
	d.reverse = false
}
